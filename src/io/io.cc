#include "io/io.h"

#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdlib>
#include <utility>

#include "util/check.h"

namespace galloper::io {

namespace {

bool env_truthy(const char* name) {
  const char* v = std::getenv(name);
  if (!v) return false;
  const std::string s(v);
  return s == "1" || s == "on" || s == "ON" || s == "true";
}

}  // namespace

bool direct_requested() {
  static const bool requested = env_truthy("GALLOPER_ODIRECT");
  return requested;
}

void read_full(int fd, uint8_t* dst, size_t n, uint64_t off,
               const std::string& path) {
  size_t done = 0;
  while (done < n) {
    const ssize_t got = ::pread(fd, dst + done, n - done,
                                static_cast<off_t>(off + done));
    if (got < 0) {
      if (errno == EINTR) continue;
      GALLOPER_CHECK_MSG(false, "pread of " << path << " failed at offset "
                                            << off + done << ": "
                                            << strerror(errno));
    }
    GALLOPER_CHECK_MSG(got > 0, "short read from "
                                    << path << " (wanted " << n
                                    << " bytes at offset " << off << ", got "
                                    << done << ")");
    done += static_cast<size_t>(got);
  }
}

size_t read_some(int fd, uint8_t* dst, size_t n, uint64_t off,
                 const std::string& path) {
  for (;;) {
    const ssize_t got = ::pread(fd, dst, n, static_cast<off_t>(off));
    if (got >= 0) return static_cast<size_t>(got);
    if (errno == EINTR) continue;
    GALLOPER_CHECK_MSG(false, "pread of " << path << " failed at offset "
                                          << off << ": " << strerror(errno));
  }
}

void write_full(int fd, const uint8_t* src, size_t n, uint64_t off,
                const std::string& path) {
  size_t done = 0;
  while (done < n) {
    const ssize_t put = ::pwrite(fd, src + done, n - done,
                                 static_cast<off_t>(off + done));
    if (put < 0) {
      if (errno == EINTR) continue;
      GALLOPER_CHECK_MSG(false, "pwrite of " << path << " failed at offset "
                                             << off + done << ": "
                                             << strerror(errno));
    }
    // pwrite returning 0 for n > 0 would loop forever; treat as an error.
    GALLOPER_CHECK_MSG(put > 0, "short write on " << path << " at offset "
                                                  << off + done);
    done += static_cast<size_t>(put);
  }
}

File::~File() { close(); }

File::File(File&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      direct_fd_(std::exchange(other.direct_fd_, -1)),
      path_(std::move(other.path_)) {}

File& File::operator=(File&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    direct_fd_ = std::exchange(other.direct_fd_, -1);
    path_ = std::move(other.path_);
  }
  return *this;
}

File File::open_impl(const std::filesystem::path& path, int flags,
                     Direct direct) {
  const bool want_direct =
      direct == Direct::kTry ||
      (direct == Direct::kAuto && direct_requested());
  // The buffered descriptor is opened unconditionally: it is the fallback
  // for unaligned operations and for filesystems that refuse O_DIRECT.
  const int fd = ::open(path.c_str(), flags, 0644);
  GALLOPER_CHECK_MSG(fd >= 0, "cannot open " << path.string() << ": "
                                             << strerror(errno));
  int direct_fd = -1;
  if (want_direct) {
#ifdef O_DIRECT
    // A refused O_DIRECT (tmpfs and friends fail the open with EINVAL) is
    // the documented fallback, not an error. When creating, the buffered
    // open above already made the file, so drop O_CREAT|O_TRUNC here —
    // truncating twice would race a concurrent writer and is pointless.
    direct_fd = ::open(path.c_str(), (flags & ~(O_CREAT | O_TRUNC)) | O_DIRECT,
                       0644);
#endif
  }
  return File(fd, direct_fd, path.string());
}

File File::open_read(const std::filesystem::path& path, Direct direct) {
  return open_impl(path, O_RDONLY, direct);
}

File File::create(const std::filesystem::path& path, Direct direct) {
  return open_impl(path, O_WRONLY | O_CREAT | O_TRUNC, direct);
}

File File::open_rw(const std::filesystem::path& path, Direct direct) {
  return open_impl(path, O_RDWR, direct);
}

uint64_t File::size() const {
  struct stat st;
  GALLOPER_CHECK_MSG(::fstat(fd_ >= 0 ? fd_ : direct_fd_, &st) == 0,
                     "cannot stat " << path_ << ": " << strerror(errno));
  return static_cast<uint64_t>(st.st_size);
}

int File::fd_for(const void* buf, size_t n, uint64_t off) const {
  if (direct_fd_ >= 0 &&
      reinterpret_cast<uintptr_t>(buf) % kDirectAlign == 0 &&
      n % kDirectAlign == 0 && off % kDirectAlign == 0)
    return direct_fd_;
  return fd_;
}

void File::pread_full(uint8_t* dst, size_t n, uint64_t off) const {
  GALLOPER_CHECK_MSG(is_open(), "read on a closed handle for " << path_);
  read_full(fd_for(dst, n, off), dst, n, off, path_);
}

size_t File::pread_some(uint8_t* dst, size_t n, uint64_t off) const {
  GALLOPER_CHECK_MSG(is_open(), "read on a closed handle for " << path_);
  // Sizing is unknown here (EOF expected), so always use the buffered
  // descriptor: a direct read must not fail on a short unaligned tail.
  return read_some(fd_, dst, n, off, path_);
}

void File::pwrite_full(const uint8_t* src, size_t n, uint64_t off) {
  GALLOPER_CHECK_MSG(is_open(), "write on a closed handle for " << path_);
  write_full(fd_for(src, n, off), src, n, off, path_);
}

void File::sync() {
  GALLOPER_CHECK_MSG(is_open(), "fsync on a closed handle for " << path_);
  GALLOPER_CHECK_MSG(::fsync(fd_ >= 0 ? fd_ : direct_fd_) == 0,
                     "fsync failed on " << path_ << ": " << strerror(errno));
}

void File::close() {
  if (fd_ >= 0) ::close(std::exchange(fd_, -1));
  if (direct_fd_ >= 0) ::close(std::exchange(direct_fd_, -1));
}

}  // namespace galloper::io
