#include "io/fetch.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>

namespace galloper::io {

void FetchSet::fetch(size_t key, double stall_s, std::function<bool()> probe,
                     bool hedge) {
  size_t index;
  {
    std::lock_guard<std::mutex> lock(mu_);
    index = entries_.size();
    entries_.push_back(Entry{key, hedge, nullptr, false});
    keys_.try_emplace(key);  // registers the key as pending
  }
  auto body = [this, index, stall_s, probe = std::move(probe)](Op& op) {
    if (!op.stall(stall_s)) {  // cancelled while parked in injected latency
      record(index, /*ran=*/false, false, nullptr);
      return;
    }
    bool clean = false;
    std::exception_ptr err;
    try {
      clean = probe();
    } catch (...) {
      err = std::current_exception();
    }
    record(index, /*ran=*/true, clean, err);
  };
  OpRef op = io_.submit(OpKind::kFetch, 0, std::move(body));
  if (hedge) io_.note_hedge_issued();
  std::lock_guard<std::mutex> lock(mu_);
  entries_[index].op = std::move(op);
}

void FetchSet::record(size_t index, bool ran, bool clean,
                      std::exception_ptr err) {
  std::vector<OpRef> losers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Entry& entry = entries_[index];
    entry.completed = true;
    ++completed_;
    if (ran) {
      KeyState& ks = keys_[entry.key];
      if (ks.state == Outcome::kPending) {  // first result per key wins
        ks.state = err ? Outcome::kFailed
                       : (clean ? Outcome::kClean : Outcome::kCorrupt);
        ks.error = std::move(err);
        // The key is resolved: siblings (hedge loser or hedged original)
        // have nothing left to contribute — wake their stalls.
        bool primary_was_pending = false;
        for (Entry& other : entries_) {
          if (other.key != entry.key || other.completed || !other.op) continue;
          if (!other.hedge) primary_was_pending = true;
          losers.push_back(other.op);
        }
        if (entry.hedge && ks.state == Outcome::kClean && primary_was_pending)
          io_.note_hedge_won();
      }
    }
    cv_.notify_all();
  }
  // Cancel outside mu_ — losers' bodies re-enter record() on this mutex.
  for (const auto& op : losers) op->cancel();
}

std::vector<size_t> FetchSet::clean_keys_locked() const {
  std::vector<size_t> keys;
  for (const auto& [key, ks] : keys_)
    if (ks.state == Outcome::kClean) keys.push_back(key);
  return keys;  // std::map iteration → already sorted
}

std::vector<size_t> FetchSet::pending_keys_locked() const {
  std::vector<size_t> keys;
  for (const auto& [key, ks] : keys_)
    if (ks.state == Outcome::kPending) keys.push_back(key);
  return keys;
}

void FetchSet::await(
    const std::function<bool(const std::vector<size_t>&)>& ready,
    const std::function<void(const std::vector<size_t>&)>& on_slow) {
  const double deadline_s = io_.hedge_deadline_s();
  const bool can_hedge = on_slow && std::isfinite(deadline_s);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(
                            can_hedge ? deadline_s : 0.0);
  bool hedged = false;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (ready(clean_keys_locked())) return;
    if (completed_ == entries_.size()) return;
    if (can_hedge && !hedged) {
      if (cv_.wait_until(lock, deadline) == std::cv_status::timeout &&
          std::chrono::steady_clock::now() >= deadline) {
        hedged = true;
        const auto pending = pending_keys_locked();
        lock.unlock();
        // On the CALLING thread by design: on_slow may consult the fault
        // injector and call fetch() to hedge the slow keys.
        on_slow(pending);
        lock.lock();
      }
    } else {
      cv_.wait(lock);
    }
  }
}

void FetchSet::join() {
  std::vector<OpRef> ops;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Entry& entry : entries_)
      if (entry.op) ops.push_back(entry.op);
  }
  for (const auto& op : ops) op->wait_nothrow();
}

void FetchSet::cancel_and_join() {
  std::vector<OpRef> ops;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Entry& entry : entries_)
      if (entry.op) ops.push_back(entry.op);
  }
  for (const auto& op : ops) op->cancel();
  for (const auto& op : ops) op->wait_nothrow();
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, ks] : keys_)
    if (ks.state == Outcome::kPending) ks.state = Outcome::kCancelled;
}

FetchSet::Outcome FetchSet::outcome(size_t key) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = keys_.find(key);
  return it == keys_.end() ? Outcome::kPending : it->second.state;
}

std::exception_ptr FetchSet::error(size_t key) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = keys_.find(key);
  return it == keys_.end() ? nullptr : it->second.error;
}

std::vector<size_t> FetchSet::clean_keys() const {
  std::lock_guard<std::mutex> lock(mu_);
  return clean_keys_locked();
}

void FetchSet::rethrow_any_failure() const {
  std::exception_ptr err;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [key, ks] : keys_)
      if (ks.state == Outcome::kFailed && ks.error) {
        err = ks.error;
        break;
      }
  }
  if (err) std::rethrow_exception(err);
}

}  // namespace galloper::io
