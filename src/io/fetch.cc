#include "io/fetch.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>

namespace galloper::io {

bool FetchSet::fetch(size_t key, double stall_s, std::function<bool()> probe,
                     bool hedge, size_t bytes) {
  // Budget gate BEFORE any state is created: a denied hedge leaves the set
  // exactly as if the caller had never tried (no entry, no pending key).
  if (hedge) {
    if (!io_.try_charge_hedge(bytes)) return false;
  } else {
    io_.note_fetched(bytes);
  }
  OpRef op;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const size_t index = entries_.size();
    auto body = [this, index, stall_s, probe = std::move(probe)](Op& op) {
      if (!op.stall(stall_s)) {  // cancelled while parked in injected latency
        record(index, /*ran=*/false, false, nullptr);
        return;
      }
      bool clean = false;
      std::exception_ptr err;
      try {
        clean = probe();
      } catch (...) {
        err = std::current_exception();
      }
      record(index, /*ran=*/true, clean, err);
    };
    // prepare-then-enqueue: the op handle must be visible in the entry
    // before the op can run, so a sibling resolving this key mid-submission
    // finds it in record()'s loser scan instead of letting the duplicate
    // park for its full stall.
    op = io_.prepare(OpKind::kFetch, bytes, std::move(body));
    entries_.push_back(Entry{key, hedge, op, false});
    keys_.try_emplace(key);  // registers the key as pending
  }
  if (hedge) io_.note_hedge_issued();
  io_.enqueue(std::move(op));
  return true;
}

void FetchSet::record(size_t index, bool ran, bool clean,
                      std::exception_ptr err) {
  std::vector<std::pair<size_t, OpRef>> losers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Entry& entry = entries_[index];
    entry.completed = true;
    ++completed_;
    if (ran) {
      KeyState& ks = keys_[entry.key];
      if (ks.state == Outcome::kPending) {  // first result per key wins
        ks.state = err ? Outcome::kFailed
                       : (clean ? Outcome::kClean : Outcome::kCorrupt);
        ks.error = std::move(err);
        // The key is resolved: siblings (hedge loser or hedged original)
        // have nothing left to contribute — wake their stalls.
        bool primary_was_pending = false;
        for (size_t i = 0; i < entries_.size(); ++i) {
          const Entry& other = entries_[i];
          if (other.key != entry.key || other.completed) continue;
          if (!other.hedge) primary_was_pending = true;
          losers.emplace_back(i, other.op);
        }
        if (entry.hedge && ks.state == Outcome::kClean && primary_was_pending)
          io_.note_hedge_won();
      }
    }
    cv_.notify_all();
  }
  // Cancel outside mu_ — a RUNNING loser's body re-enters record() on this
  // mutex. A loser cancelled while still QUEUED never runs its body, so its
  // record() never fires: account its completion here, or an exhaustive
  // await (termination on completed_ == entries_.size()) would hang
  // forever. cancelled() is true exactly when the kQueued→kCancelled
  // transition beat try_start, so the two completion paths are mutually
  // exclusive and complete_unran's completed-flag check closes the
  // remaining double-account window.
  for (const auto& [i, op] : losers) {
    op->cancel();
    if (op->cancelled()) complete_unran(i);
  }
}

void FetchSet::complete_unran(size_t index) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = entries_[index];
  if (entry.completed) return;
  entry.completed = true;
  ++completed_;
  cv_.notify_all();
}

std::vector<size_t> FetchSet::clean_keys_locked() const {
  std::vector<size_t> keys;
  for (const auto& [key, ks] : keys_)
    if (ks.state == Outcome::kClean) keys.push_back(key);
  return keys;  // std::map iteration → already sorted
}

std::vector<size_t> FetchSet::pending_keys_locked() const {
  std::vector<size_t> keys;
  for (const auto& [key, ks] : keys_)
    if (ks.state == Outcome::kPending) keys.push_back(key);
  return keys;
}

void FetchSet::await(
    const std::function<bool(const std::vector<size_t>&)>& ready,
    const std::function<void(const std::vector<size_t>&)>& on_slow) {
  const double deadline_s = io_.hedge_deadline_s();
  const bool can_hedge = on_slow && std::isfinite(deadline_s);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(
                            can_hedge ? deadline_s : 0.0);
  bool hedged = false;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (ready(clean_keys_locked())) return;
    if (completed_ == entries_.size()) return;
    if (can_hedge && !hedged) {
      if (cv_.wait_until(lock, deadline) == std::cv_status::timeout &&
          std::chrono::steady_clock::now() >= deadline) {
        hedged = true;
        const auto pending = pending_keys_locked();
        lock.unlock();
        // On the CALLING thread by design: on_slow may consult the fault
        // injector and call fetch() to hedge the slow keys.
        on_slow(pending);
        lock.lock();
      }
    } else {
      cv_.wait(lock);
    }
  }
}

void FetchSet::join() {
  std::vector<OpRef> ops;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Entry& entry : entries_)
      if (entry.op) ops.push_back(entry.op);
  }
  for (const auto& op : ops) op->wait_nothrow();
}

void FetchSet::cancel_and_join() {
  std::vector<std::pair<size_t, OpRef>> ops;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < entries_.size(); ++i)
      if (entries_[i].op) ops.emplace_back(i, entries_[i].op);
  }
  // Same queued-cancel accounting as record()'s loser path: an op whose
  // body never runs must still count toward completed_, so a later (or
  // concurrent) exhaustive await terminates.
  for (const auto& [i, op] : ops) {
    op->cancel();
    if (op->cancelled()) complete_unran(i);
  }
  for (const auto& [i, op] : ops) op->wait_nothrow();
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, ks] : keys_)
    if (ks.state == Outcome::kPending) ks.state = Outcome::kCancelled;
}

FetchSet::Outcome FetchSet::outcome(size_t key) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = keys_.find(key);
  return it == keys_.end() ? Outcome::kPending : it->second.state;
}

std::exception_ptr FetchSet::error(size_t key) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = keys_.find(key);
  return it == keys_.end() ? nullptr : it->second.error;
}

std::vector<size_t> FetchSet::clean_keys() const {
  std::lock_guard<std::mutex> lock(mu_);
  return clean_keys_locked();
}

void FetchSet::rethrow_any_failure() const {
  std::exception_ptr err;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [key, ks] : keys_)
      if (ks.state == Outcome::kFailed && ks.error) {
        err = ks.error;
        break;
      }
  }
  if (err) std::rethrow_exception(err);
}

}  // namespace galloper::io
