#include "io/async.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <limits>
#include <string>

#include "util/check.h"

namespace galloper::io {

// ---- Op ------------------------------------------------------------------

void Op::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] {
    return state_ == State::kDone || state_ == State::kCancelled;
  });
  if (error_) std::rethrow_exception(error_);
}

void Op::wait_nothrow() noexcept {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] {
    return state_ == State::kDone || state_ == State::kCancelled;
  });
}

bool Op::done() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_ == State::kDone || state_ == State::kCancelled;
}

void Op::cancel() {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == State::kQueued) {
    state_ = State::kCancelled;
    if (cancel_counter_)
      cancel_counter_->fetch_add(1, std::memory_order_relaxed);
    cv_.notify_all();
    return;
  }
  cancel_requested_ = true;
  cv_.notify_all();  // wakes a body parked in stall()
}

bool Op::cancelled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_ == State::kCancelled;
}

bool Op::cancel_requested() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cancel_requested_;
}

bool Op::stall(double seconds) {
  if (seconds <= 0) return !cancel_requested();
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait_for(lock, std::chrono::duration<double>(seconds),
               [&] { return cancel_requested_; });
  return !cancel_requested_;
}

bool Op::try_start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ != State::kQueued) return false;
  state_ = State::kRunning;
  return true;
}

void Op::finish(std::exception_ptr error, uint64_t latency_ns) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    state_ = State::kDone;
    error_ = std::move(error);
  }
  latency_ns_.store(latency_ns, std::memory_order_release);
  cv_.notify_all();
}

// ---- AsyncIo -------------------------------------------------------------

AsyncIo& AsyncIo::global() {
  static AsyncIo* pool = new AsyncIo();  // leaked: outlives static dtors
  return *pool;
}

size_t AsyncIo::default_threads() {
  if (const char* env = std::getenv("GALLOPER_IO_THREADS")) {
    const long n = std::strtol(env, nullptr, 10);
    if (n >= 1) return std::min<size_t>(static_cast<size_t>(n), 64);
  }
  return 4;
}

AsyncIo::AsyncIo(size_t threads) {
  if (const char* env = std::getenv("GALLOPER_HEDGE")) {
    const std::string v(env);
    if (v == "off" || v == "0") {
      hedge_.enabled = false;
    } else {
      const double q = std::strtod(env, nullptr);
      if (q > 0 && q < 1) hedge_.quantile = q;
    }
  }
  if (const char* env = std::getenv("GALLOPER_HEDGE_BUDGET")) {
    const std::string v(env);
    if (v == "off" || v == "OFF") {
      hedge_.budget_pct = -1;  // unlimited
    } else {
      const double pct = std::strtod(env, nullptr);
      if (pct >= 0) hedge_.budget_pct = pct;
    }
  }
  hedge_tokens_ = static_cast<double>(hedge_.budget_burst_bytes);
  const size_t n = threads > 0 ? threads : default_threads();
  threads_.reserve(n);
  for (size_t i = 0; i < n; ++i)
    threads_.emplace_back([this] { worker_loop(); });
}

AsyncIo::~AsyncIo() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  // Workers only exit once the queue is empty (see worker_loop), so the
  // join doubles as a drain: everything submitted before the destructor
  // has completed — or been discarded as cancelled — when it returns.
  for (auto& t : threads_) t.join();
}

OpRef AsyncIo::prepare(OpKind kind, size_t bytes, Op::Body body) {
  OpRef op(new Op(kind, bytes, std::move(body)));
  op->cancel_counter_ = &cancelled_;
  return op;
}

void AsyncIo::enqueue(OpRef op) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    GALLOPER_CHECK_MSG(!stop_, "submit on a stopped AsyncIo");
    queue_.push_back(std::move(op));
    queue_peak_ = std::max(queue_peak_, queue_.size() + running_);
  }
  cv_.notify_one();
}

OpRef AsyncIo::submit(OpKind kind, size_t bytes, Op::Body body) {
  OpRef op = prepare(kind, bytes, std::move(body));
  enqueue(op);
  return op;
}

std::vector<OpRef> AsyncIo::submit_many(
    std::vector<std::tuple<OpKind, size_t, Op::Body>> batch) {
  std::vector<OpRef> ops;
  ops.reserve(batch.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    GALLOPER_CHECK_MSG(!stop_, "submit on a stopped AsyncIo");
    for (auto& [kind, bytes, body] : batch) {
      ops.emplace_back(new Op(kind, bytes, std::move(body)));
      ops.back()->cancel_counter_ = &cancelled_;
      queue_.push_back(ops.back());
    }
    queue_peak_ = std::max(queue_peak_, queue_.size() + running_);
  }
  cv_.notify_all();
  return ops;
}

OpRef AsyncIo::submit_read(const File& file, uint8_t* dst, size_t n,
                           uint64_t off) {
  return submit(OpKind::kRead, n,
                [&file, dst, n, off](Op&) { file.pread_full(dst, n, off); });
}

OpRef AsyncIo::submit_write(File& file, const uint8_t* src, size_t n,
                            uint64_t off) {
  return submit(OpKind::kWrite, n,
                [&file, src, n, off](Op&) { file.pwrite_full(src, n, off); });
}

void AsyncIo::wait_all(const std::vector<OpRef>& ops) {
  // Join everything FIRST: an op's buffer must not be freed (by the
  // rethrow unwinding the caller) while a sibling op still writes into its
  // own buffer.
  for (const auto& op : ops) op->wait_nothrow();
  for (const auto& op : ops) op->wait();  // now instant; rethrows first error
}

void AsyncIo::worker_loop() {
  for (;;) {
    OpRef op;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      op = std::move(queue_.front());
      queue_.pop_front();
      ++running_;
    }
    if (op->try_start()) {
      const auto start = std::chrono::steady_clock::now();
      std::exception_ptr error;
      try {
        op->body_(*op);
      } catch (...) {
        error = std::current_exception();
      }
      const auto ns = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - start)
              .count());
      op->body_ = nullptr;  // release captured resources before waiters run
      // Account BEFORE finish(): finish wakes waiters, and a caller must be
      // able to read stats() right after wait_all() without racing us.
      ops_.fetch_add(1, std::memory_order_relaxed);
      switch (op->kind()) {
        case OpKind::kRead:
          reads_.fetch_add(1, std::memory_order_relaxed);
          bytes_read_.fetch_add(op->bytes(), std::memory_order_relaxed);
          break;
        case OpKind::kFetch:
          fetches_.fetch_add(1, std::memory_order_relaxed);
          bytes_read_.fetch_add(op->bytes(), std::memory_order_relaxed);
          break;
        case OpKind::kWrite:
          writes_.fetch_add(1, std::memory_order_relaxed);
          bytes_written_.fetch_add(op->bytes(), std::memory_order_relaxed);
          break;
      }
      latency_hist_.record_ns(ns);
      op->finish(std::move(error), ns);
    } else {
      // Cancelled while queued: cancel() already counted it.
      op->body_ = nullptr;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --running_;
    }
  }
}

double AsyncIo::latency_quantile_s(double q) const {
  return latency_hist_.quantile_s(q);
}

IoStats AsyncIo::stats() const {
  IoStats s;
  s.ops = ops_.load(std::memory_order_relaxed);
  s.reads = reads_.load(std::memory_order_relaxed);
  s.writes = writes_.load(std::memory_order_relaxed);
  s.fetches = fetches_.load(std::memory_order_relaxed);
  s.bytes_read = bytes_read_.load(std::memory_order_relaxed);
  s.bytes_written = bytes_written_.load(std::memory_order_relaxed);
  s.cancelled = cancelled_.load(std::memory_order_relaxed);
  s.hedges_issued = hedges_issued_.load(std::memory_order_relaxed);
  s.hedges_won = hedges_won_.load(std::memory_order_relaxed);
  s.hedge_bytes_granted =
      hedge_bytes_granted_.load(std::memory_order_relaxed);
  s.hedge_denied = hedge_denied_.load(std::memory_order_relaxed);
  s.hedge_bytes_denied = hedge_bytes_denied_.load(std::memory_order_relaxed);
  s.hedge_budget_pct = hedge_policy().budget_pct;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.queue_peak = queue_peak_;
  }
  s.p50_s = latency_quantile_s(0.50);
  s.p99_s = latency_quantile_s(0.99);
  s.threads = threads_.size();
  s.odirect = direct_requested();
  return s;
}

HedgePolicy AsyncIo::hedge_policy() const {
  std::lock_guard<std::mutex> lock(hedge_mu_);
  return hedge_;
}

void AsyncIo::set_hedge_policy(const HedgePolicy& policy) {
  std::lock_guard<std::mutex> lock(hedge_mu_);
  hedge_ = policy;
  // Re-seed the bucket at the new burst: tests that pin a policy want the
  // budget in a known state, and a shrinking burst must clamp immediately.
  hedge_tokens_ = static_cast<double>(hedge_.budget_burst_bytes);
}

double AsyncIo::hedge_deadline_s() const {
  const HedgePolicy policy = hedge_policy();
  if (!policy.enabled) return std::numeric_limits<double>::infinity();
  if (policy.fixed_deadline_s > 0) return policy.fixed_deadline_s;
  // Cold histogram: too few samples for a meaningful tail quantile, so use
  // a generous stand-in — hedging exists for multi-ms stalls, not warmup.
  if (ops_.load(std::memory_order_relaxed) < 64) return 0.25;
  return std::max(0.010, 3.0 * latency_quantile_s(policy.quantile));
}

void AsyncIo::note_hedge_issued() {
  hedges_issued_.fetch_add(1, std::memory_order_relaxed);
}

void AsyncIo::note_hedge_won() {
  hedges_won_.fetch_add(1, std::memory_order_relaxed);
}

void AsyncIo::note_fetched(size_t bytes) {
  if (bytes == 0) return;
  std::lock_guard<std::mutex> lock(hedge_mu_);
  if (hedge_.budget_pct < 0) return;  // unlimited — no accounting needed
  hedge_tokens_ = std::min(
      hedge_tokens_ + static_cast<double>(bytes) * hedge_.budget_pct / 100.0,
      static_cast<double>(hedge_.budget_burst_bytes));
}

bool AsyncIo::try_charge_hedge(size_t bytes) {
  if (bytes > 0) {
    std::lock_guard<std::mutex> lock(hedge_mu_);
    if (hedge_.budget_pct >= 0) {
      if (hedge_tokens_ < static_cast<double>(bytes)) {
        hedge_denied_.fetch_add(1, std::memory_order_relaxed);
        hedge_bytes_denied_.fetch_add(bytes, std::memory_order_relaxed);
        return false;
      }
      hedge_tokens_ -= static_cast<double>(bytes);
    }
  }
  hedge_bytes_granted_.fetch_add(bytes, std::memory_order_relaxed);
  return true;
}

}  // namespace galloper::io
