// Asynchronous I/O: a submission/completion API over a dedicated I/O
// thread pool.
//
// The codec pool (rt::ThreadPool) is sized for CPU work — parking a worker
// on a blocking pread would starve the encode. This pool is the opposite:
// its threads are EXPECTED to block (positional syscalls, injected fault
// stalls), so the store and archive paths can keep k+l+g block fetches in
// flight while the codec overlaps decode with the stragglers.
//
//   AsyncIo::submit(kind, bytes, body) → Op handle. The body runs on an
//   I/O thread; wait() blocks for completion and rethrows anything the
//   body threw (fault::CrashError from an async crash point propagates to
//   the submitter this way). submit_many hands a whole scatter-gather
//   batch to the pool under one lock.
//
//   Cancellation: cancel() on a queued op means it never runs; on a
//   running op it sets a flag and wakes Op::stall(), the cancellable
//   sleep op bodies use for injected latency — so a hedged read's loser,
//   parked in a 10s fault stall, unparks immediately instead of holding
//   its buffer hostage. Bodies observe cancel_requested() and bail.
//
//   Accounting: per-op latency lands in a log2-ns histogram
//   (latency_quantile_s gives p50/p99 for --stats and for the hedge
//   deadline), plus ops/bytes/cancelled/queue-peak counters.
//
//   Hedging policy: GALLOPER_HEDGE=off disables; a float in (0,1) sets the
//   deadline quantile (default 0.99). hedge_deadline_s() is the time a
//   fetch may stay pending before the caller issues a duplicate to a spare
//   helper; tests pin it with set_hedge_policy({.fixed_deadline_s=...}).
//   GALLOPER_HEDGE_BUDGET caps hedged bytes at N% of fetched bytes
//   (default 10, "off" = unlimited) — see HedgePolicy below.
//
// Determinism contract: this layer only APPLIES fault decisions — callers
// pre-draw every injector decision on the submitting thread in block
// order, so the injector's rng sequence never depends on I/O timing.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "io/io.h"
#include "util/stats.h"

namespace galloper::io {

// What an op moves, for the stats breakdown. kFetch marks store block
// fetches (CRC probe + read) as opposed to raw archive reads.
enum class OpKind { kRead, kWrite, kFetch };

class AsyncIo;

// Shared completion handle for one submitted operation.
class Op {
 public:
  using Body = std::function<void(Op&)>;

  // Blocks until the op completes (or is cancelled before running), then
  // rethrows anything the body threw.
  void wait();
  // wait() that swallows the body's exception (teardown paths that must
  // join every op before buffers die, error or not).
  void wait_nothrow() noexcept;
  bool done() const;

  // Queued op: never runs. Running op: sets cancel_requested() and wakes
  // any stall(). Completion still happens (wait() returns) either way.
  void cancel();
  bool cancelled() const;
  bool cancel_requested() const;

  // Cancellable sleep for op bodies (injected fault latency). Returns
  // false when woken by cancel() — the body should bail without touching
  // its buffers further.
  bool stall(double seconds);

  // Wall time the body took, 0 until done.
  uint64_t latency_ns() const { return latency_ns_.load(std::memory_order_acquire); }
  OpKind kind() const { return kind_; }
  size_t bytes() const { return bytes_; }

 private:
  friend class AsyncIo;
  Op(OpKind kind, size_t bytes, Body body)
      : kind_(kind), bytes_(bytes), body_(std::move(body)) {}

  enum class State { kQueued, kRunning, kDone, kCancelled };

  // Pool-side transitions. try_start loses to a prior cancel().
  bool try_start();
  void finish(std::exception_ptr error, uint64_t latency_ns);

  const OpKind kind_;
  const size_t bytes_;
  Body body_;
  // Pool's cancelled-before-run counter, bumped at the kQueued→kCancelled
  // transition so stats() is coherent the moment wait() returns.
  std::atomic<uint64_t>* cancel_counter_ = nullptr;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  State state_ = State::kQueued;
  bool cancel_requested_ = false;
  std::exception_ptr error_;
  std::atomic<uint64_t> latency_ns_{0};
};

using OpRef = std::shared_ptr<Op>;

// Completion-side counters, snapshotted by stats().
struct IoStats {
  uint64_t ops = 0;            // completed (cancelled-before-run excluded)
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t fetches = 0;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  uint64_t cancelled = 0;      // cancelled before the body ran
  uint64_t hedges_issued = 0;
  uint64_t hedges_won = 0;
  uint64_t hedge_bytes_granted = 0;  // hedged bytes the budget admitted
  uint64_t hedge_denied = 0;         // hedge submissions the budget refused
  uint64_t hedge_bytes_denied = 0;
  double hedge_budget_pct = 0;       // echoed policy (< 0 = unlimited)
  size_t queue_peak = 0;       // max in-flight (queued + running) seen
  double p50_s = 0;            // op latency quantiles over all completions
  double p99_s = 0;
  size_t threads = 0;
  bool odirect = false;        // direct_requested() — echoed for --stats
};

// When to duplicate a slow fetch to a spare helper, and how much duplicate
// traffic the tail-chase may add. The budget is a token bucket: every
// PRIMARY fetched byte refills budget_pct% of a token, hedged bytes spend
// them, and the bucket is capped (and seeded) at budget_burst_bytes — so
// over any window, hedge bytes ≤ burst + budget_pct% of fetched bytes.
// The burst keeps small-block hedging (tests, KB-sized stripes) free while
// still capping a sustained tail-chase under load; budget_pct < 0 lifts
// the cap entirely (GALLOPER_HEDGE_BUDGET=off).
struct HedgePolicy {
  bool enabled = true;
  double quantile = 0.99;      // deadline = max(floor, 3 × p(quantile))
  double fixed_deadline_s = 0; // > 0 overrides the quantile rule (tests)
  double budget_pct = 10.0;    // max hedged bytes as % of fetched bytes
  uint64_t budget_burst_bytes = uint64_t{8} << 20;
};

class AsyncIo {
 public:
  // 0 → default_threads().
  explicit AsyncIo(size_t threads = 0);
  // Drains the queue and joins the workers: every op submitted before the
  // destructor has completed (or, if cancelled while queued, been
  // discarded by a worker) when this returns.
  ~AsyncIo();

  AsyncIo(const AsyncIo&) = delete;
  AsyncIo& operator=(const AsyncIo&) = delete;

  // Process-wide pool the store and archive paths share (so --stats sees
  // one coherent ledger). Tests build private instances for isolation.
  static AsyncIo& global();
  // GALLOPER_IO_THREADS when set to a positive integer (clamped to 64),
  // else 4: enough in-flight syscalls to overlap a stripe's fetches
  // without oversubscribing the 1-CPU CI container.
  static size_t default_threads();

  size_t threads() const { return threads_.size(); }

  OpRef submit(OpKind kind, size_t bytes, Op::Body body);
  // Two-phase submission (submit = prepare + enqueue): prepare() builds
  // the Op handle without making it runnable, so a caller can publish the
  // handle (e.g. into a FetchSet entry) BEFORE enqueue() lets workers pick
  // it up — a completion racing the submission then cannot miss the op.
  // Cancelling a prepared-but-unenqueued op is fine; the worker discards
  // it at try_start.
  OpRef prepare(OpKind kind, size_t bytes, Op::Body body);
  void enqueue(OpRef op);
  // Scatter-gather: the whole batch is enqueued under one lock, in order.
  std::vector<OpRef> submit_many(
      std::vector<std::tuple<OpKind, size_t, Op::Body>> batch);

  // Positional conveniences over io::File.
  OpRef submit_read(const File& file, uint8_t* dst, size_t n, uint64_t off);
  OpRef submit_write(File& file, const uint8_t* src, size_t n, uint64_t off);

  // Waits for every op, then rethrows the FIRST error in submission order
  // (all ops are joined first so no buffer outlives its op).
  static void wait_all(const std::vector<OpRef>& ops);

  IoStats stats() const;
  // Latency quantile over completed ops, in seconds (log2-bucket upper
  // bound). 0 when nothing has completed.
  double latency_quantile_s(double q) const;

  // ---- Hedging ----------------------------------------------------------
  HedgePolicy hedge_policy() const;
  void set_hedge_policy(const HedgePolicy& policy);
  // Seconds a fetch may stay pending before a hedge: fixed_deadline_s when
  // set; otherwise max(10 ms, 3 × latency_quantile_s(quantile)), with a
  // 250 ms stand-in until 64 ops have completed (cold histogram). +inf
  // when hedging is off.
  double hedge_deadline_s() const;
  void note_hedge_issued();
  void note_hedge_won();
  // SLO hedge budget (see HedgePolicy). note_fetched(bytes) credits the
  // bucket for a primary fetch; try_charge_hedge(bytes) debits it for a
  // hedge, returning false — and counting a denial — when the bucket can't
  // cover the bytes. Zero-byte charges are always granted.
  void note_fetched(size_t bytes);
  bool try_charge_hedge(size_t bytes);

 private:
  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<OpRef> queue_;
  bool stop_ = false;
  size_t running_ = 0;
  size_t queue_peak_ = 0;
  std::vector<std::thread> threads_;

  mutable std::mutex hedge_mu_;
  HedgePolicy hedge_;
  double hedge_tokens_ = 0;  // budget bucket, guarded by hedge_mu_

  std::atomic<uint64_t> ops_{0}, reads_{0}, writes_{0}, fetches_{0};
  std::atomic<uint64_t> bytes_read_{0}, bytes_written_{0}, cancelled_{0};
  std::atomic<uint64_t> hedges_issued_{0}, hedges_won_{0};
  std::atomic<uint64_t> hedge_bytes_granted_{0}, hedge_denied_{0};
  std::atomic<uint64_t> hedge_bytes_denied_{0};
  // Per-op latency in log2-ns buckets (util::LatencyHistogram holds the
  // math; latency_quantile_s delegates to it).
  util::LatencyHistogram latency_hist_;
};

}  // namespace galloper::io
