// Low-level file I/O for the store and archive data paths: positional
// pread/pwrite with EINTR/short-transfer retry in ONE place, and an RAII
// file handle with optional O_DIRECT.
//
// Every byte the archive pipelines move used to go through per-call-site
// iostream loops, each with its own notion of "short read" and none of them
// EINTR-safe. This header is the single home for that logic:
//
//   read_full / write_full — positional syscall loops. A transfer split
//     across several pread/pwrite calls (signal, pipe-sized kernel buffers,
//     RLIMIT) is retried until the count is satisfied; EINTR restarts the
//     call; a genuine short read (EOF inside the requested range) or an
//     errno fails loudly with the path and the counts.
//
//   File — RAII fd. Opens optionally with O_DIRECT (GALLOPER_ODIRECT=1|on
//     requests it archive-wide): when the filesystem refuses O_DIRECT
//     outright (tmpfs → EINVAL at open) the handle transparently falls
//     back to buffered I/O, and an individual operation whose offset,
//     length, or buffer address misses the 4096-byte alignment O_DIRECT
//     demands is routed to a plain fallback descriptor on the same file —
//     callers never see alignment as an error. direct_active() reports
//     what actually happened (the --stats I/O section prints it).
//
// All operations here are positional (no shared file-offset state), which
// is what lets the async layer (io/async.h) issue many reads/writes against
// one File from many threads with no coordination.
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <string>

namespace galloper::io {

// Positional read of exactly [off, off + n) from `fd` into dst. Retries
// EINTR and short transfers; throws CheckError (tagged with `path`) on a
// syscall error or when EOF truncates the range.
void read_full(int fd, uint8_t* dst, size_t n, uint64_t off,
               const std::string& path);

// Positional read of AT MOST n bytes; returns the count actually read
// (0 at EOF). Retries EINTR; only a syscall error throws. The streaming
// CRC loops use this to walk a file of unknown remaining length.
size_t read_some(int fd, uint8_t* dst, size_t n, uint64_t off,
                 const std::string& path);

// Positional write of exactly [off, off + n). Retries EINTR and short
// transfers; throws CheckError on error (ENOSPC included).
void write_full(int fd, const uint8_t* src, size_t n, uint64_t off,
                const std::string& path);

// Whether GALLOPER_ODIRECT requests O_DIRECT block-file I/O ("1"/"on",
// default off). Read once per process.
bool direct_requested();

class File {
 public:
  // O_DIRECT selection per handle. kAuto follows direct_requested().
  enum class Direct { kAuto, kNever, kTry };

  File() = default;
  ~File();
  File(File&& other) noexcept;
  File& operator=(File&& other) noexcept;
  File(const File&) = delete;
  File& operator=(const File&) = delete;

  static File open_read(const std::filesystem::path& path,
                        Direct direct = Direct::kAuto);
  // Create-or-truncate for writing (mode 0644).
  static File create(const std::filesystem::path& path,
                     Direct direct = Direct::kAuto);
  // Read-write on an existing file (in-place archive updates).
  static File open_rw(const std::filesystem::path& path,
                      Direct direct = Direct::kAuto);

  bool is_open() const { return fd_ >= 0 || direct_fd_ >= 0; }
  // True when the handle holds an O_DIRECT descriptor (aligned operations
  // bypass the page cache; unaligned ones still use the fallback fd).
  bool direct_active() const { return direct_fd_ >= 0; }
  const std::string& path() const { return path_; }

  uint64_t size() const;

  // Positional full-range ops (see the free functions). Thread-safe: no
  // handle state is mutated, so concurrent calls from the async pool are
  // fine.
  void pread_full(uint8_t* dst, size_t n, uint64_t off) const;
  size_t pread_some(uint8_t* dst, size_t n, uint64_t off) const;
  void pwrite_full(const uint8_t* src, size_t n, uint64_t off);

  // fsync (throws CheckError on failure).
  void sync();

  // Closes both descriptors (idempotent). The destructor closes too;
  // explicit close lets callers sequence close-before-rename.
  void close();

  // O_DIRECT alignment contract (offset, length, and buffer address must
  // all be multiples of this for an op to use the direct descriptor).
  static constexpr size_t kDirectAlign = 4096;

 private:
  File(int fd, int direct_fd, std::string path)
      : fd_(fd), direct_fd_(direct_fd), path_(std::move(path)) {}
  static File open_impl(const std::filesystem::path& path, int flags,
                        Direct direct);
  // The descriptor an op with this alignment should use.
  int fd_for(const void* buf, size_t n, uint64_t off) const;

  int fd_ = -1;         // buffered descriptor (always present when open)
  int direct_fd_ = -1;  // O_DIRECT descriptor when granted
  std::string path_;
};

}  // namespace galloper::io
