// FetchSet: a completion coordinator for one logical "gather these blocks"
// operation, with quantile-deadline hedging.
//
// The store paths submit one CRC-probe fetch per candidate block and then
// block in await() until a caller-supplied readiness predicate holds over
// the CLEAN keys (e.g. "the erasure pattern is decodable"), not until every
// fetch finishes — decode starts while stragglers are still in flight.
//
// Hedging: if the set is neither ready nor finished by the pool's
// hedge_deadline_s(), await() invokes on_slow(pending keys) ONCE, on the
// CALLING thread. The callback typically verifies a spare helper there
// (keeping injector draws on the submitting thread — see the determinism
// contract in io/async.h) and re-issues the slow keys via
// fetch(..., hedge = true). The first result per key wins; when a result
// lands, sibling fetches for the same key are cancelled (the hedged
// loser, parked in an injected stall, wakes and bails; a loser still
// QUEUED never runs and is accounted completed by the canceller, so
// exhaustive awaits terminate even under a saturated pool). A hedge that
// resolves its key while the primary is still pending counts as a win
// (hedges_won in the pool stats).
//
// Teardown is explicit and MUST happen before the fetched-into buffers or
// the probed state can be mutated:
//   join()            waits for every fetch (un-won stalls run to term)
//   cancel_and_join() cancels everything still pending, then waits
// Only after one of these may the caller quarantine blocks or write
// repaired data — a probe may still be reading until the join returns.
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <map>
#include <mutex>
#include <vector>

#include "io/async.h"

namespace galloper::io {

class FetchSet {
 public:
  enum class Outcome { kPending, kClean, kCorrupt, kFailed, kCancelled };

  explicit FetchSet(AsyncIo& io = AsyncIo::global()) : io_(io) {}
  ~FetchSet() { cancel_and_join(); }

  FetchSet(const FetchSet&) = delete;
  FetchSet& operator=(const FetchSet&) = delete;

  // Submits one fetch for `key`. The body stalls for `stall_s` seconds
  // (cancellable — pre-drawn injected latency goes here), then runs
  // `probe` on the I/O thread: return true for a clean block, false for a
  // corrupt one; a throw records kFailed and keeps the exception (the
  // async crash-point path). Duplicate keys are allowed; the first result
  // recorded wins and the losers are cancelled.
  //
  // `bytes` is what the fetch moves (a block, the planned pieces). A
  // primary fetch credits the pool's hedge budget with it; a hedge CHARGES
  // it, and may be DENIED — returns false WITHOUT submitting — when the
  // sliding budget (HedgePolicy::budget_pct of fetched bytes) is spent.
  // Callers treat a denied hedge like one that never fired: the primary
  // still completes (or is cancelled) normally, so tail latency degrades
  // to the stall instead of hedge traffic doubling under load. Primaries
  // always submit (returns true).
  bool fetch(size_t key, double stall_s, std::function<bool()> probe,
             bool hedge = false, size_t bytes = 0);

  // Blocks until ready(sorted clean keys) returns true or every fetch has
  // completed. Fires on_slow(sorted pending keys) once if the pool's hedge
  // deadline passes first; pass nullptr to disable hedging for this await.
  void await(const std::function<bool(const std::vector<size_t>&)>& ready,
             const std::function<void(const std::vector<size_t>&)>& on_slow);

  // Waits for every fetch to complete. Keys can keep resolving during the
  // join (a straggler probe finding a corrupt block still records it).
  void join();
  // Cancels every pending fetch, waits for all of them, then marks still
  // unresolved keys kCancelled.
  void cancel_and_join();

  Outcome outcome(size_t key) const;
  // The exception a kFailed key's probe threw (null otherwise).
  std::exception_ptr error(size_t key) const;
  // Sorted keys currently kClean.
  std::vector<size_t> clean_keys() const;
  // Rethrows the first kFailed key's exception, if any (key order).
  void rethrow_any_failure() const;

 private:
  struct KeyState {
    Outcome state = Outcome::kPending;
    std::exception_ptr error;
  };
  struct Entry {
    size_t key;
    bool hedge;
    OpRef op;
    bool completed = false;
  };

  void record(size_t index, bool ran, bool clean, std::exception_ptr err);
  // Completion accounting for an entry whose op was cancelled while still
  // queued — its body never runs, so record() never fires for it.
  void complete_unran(size_t index);
  std::vector<size_t> clean_keys_locked() const;
  std::vector<size_t> pending_keys_locked() const;

  AsyncIo& io_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Entry> entries_;
  std::map<size_t, KeyState> keys_;
  size_t completed_ = 0;
};

}  // namespace galloper::io
