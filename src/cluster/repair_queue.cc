#include "cluster/repair_queue.h"

#include <algorithm>
#include <chrono>

#include "fault/fault.h"
#include "util/check.h"

namespace galloper::cluster {

RepairQueue::RepairQueue(store::FileStore& store,
                         const std::vector<std::unique_ptr<DataNode>>& nodes,
                         RepairQueueOptions opt)
    : store_(store), nodes_(nodes), opt_(opt) {
  GALLOPER_CHECK(opt_.workers >= 1);
  workers_.reserve(opt_.workers);
  for (size_t w = 0; w < opt_.workers; ++w)
    workers_.emplace_back([this] { worker_loop(); });
}

RepairQueue::~RepairQueue() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void RepairQueue::enqueue(store::FileId file, size_t block) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!queued_.insert({file, block}).second) return;  // already scheduled
    pending_.push_back(Task{file, block, next_seq_++});
  }
  cv_.notify_one();
}

size_t RepairQueue::enqueue_lost() {
  size_t scheduled = 0;
  const size_t files = store_.num_files();
  for (store::FileId id = 0; id < files; ++id) {
    for (size_t b : store_.lost_blocks(id)) {
      if (!store_.cluster().server(store_.server_of(b)).alive()) continue;
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (unrecoverable_.count({id, b})) continue;
        if (!queued_.insert({id, b}).second) continue;
        pending_.push_back(Task{id, b, next_seq_++});
      }
      ++scheduled;
      cv_.notify_one();
    }
  }
  return scheduled;
}

void RepairQueue::clear_unrecoverable() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.unrecoverable = 0;
  unrecoverable_.clear();
}

size_t RepairQueue::deficit(store::FileId file, size_t block) const {
  size_t d = 0;
  for (size_t h : store_.code().repair_helpers(block))
    if (!store_.block_available(file, h)) ++d;
  return d;
}

size_t RepairQueue::pick_locked() const {
  // Live priority: (helper deficit desc, file's total lost blocks desc,
  // seq asc). Recomputed per pop because repairs and kills since enqueue
  // change both components. O(pending) scan — the queue is maintenance
  // traffic, not a data path.
  size_t best = SIZE_MAX;
  size_t best_deficit = 0, best_lost = 0;
  for (size_t i = 0; i < pending_.size(); ++i) {
    const Task& t = pending_[i];
    const size_t d = deficit(t.file, t.block);
    const size_t lost = store_.lost_blocks(t.file).size();
    if (best == SIZE_MAX || d > best_deficit ||
        (d == best_deficit && lost > best_lost) ||
        (d == best_deficit && lost == best_lost &&
         t.seq < pending_[best].seq)) {
      best = i;
      best_deficit = d;
      best_lost = lost;
    }
  }
  return best;
}

void RepairQueue::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [this] { return stop_ || !pending_.empty(); });
    if (stop_) return;
    const size_t i = pick_locked();
    if (i == SIZE_MAX) continue;
    Task task = pending_[i];
    pending_.erase(pending_.begin() + static_cast<ptrdiff_t>(i));
    const size_t deficit_at_pop = deficit(task.file, task.block);
    ++in_flight_;
    lock.unlock();

    enum class Outcome { kDone, kStale, kDead, kRequeue, kUnrecoverable };
    Outcome outcome;
    ++task.attempts;
    const size_t server = store_.server_of(task.block);
    if (store_.block_available(task.file, task.block)) {
      outcome = Outcome::kStale;  // healed since enqueue (reader self-heal)
    } else if (!store_.cluster().server(server).alive()) {
      // Target died while queued: drop — the node's restart re-enqueues
      // its slots, and drain()'s closing scan self-corrects any race.
      outcome = Outcome::kDead;
    } else {
      DataNode* node = server < nodes_.size() ? nodes_[server].get() : nullptr;
      const size_t bytes = store_.block_bytes(task.file);
      // Charge the throttle BEFORE the repair: the bucket paces admission
      // into the rebuild, so a backlog on a throttled node stays IN the
      // queue, where priority keeps reordering it.
      if (node != nullptr) node->acquire_repair_bandwidth(bytes);
      try {
        const auto helpers =
            store_.repair(task.file, task.block,
                          node != nullptr ? &node->io() : nullptr);
        if (helpers.has_value()) {
          if (node != nullptr) node->record_repair(bytes);
          outcome = Outcome::kDone;
        } else if (!store_.cluster().server(server).alive()) {
          outcome = Outcome::kDead;  // killed mid-repair; epoch check held
        } else if (task.attempts < opt_.max_attempts) {
          // Structurally unrecoverable NOW — but a concurrent revive or a
          // peer's repair can change that; retry within the budget.
          outcome = Outcome::kRequeue;
        } else {
          outcome = Outcome::kUnrecoverable;
        }
      } catch (const fault::TransientError&) {
        outcome = task.attempts < opt_.max_attempts ? Outcome::kRequeue
                                                    : Outcome::kUnrecoverable;
      }
    }

    lock.lock();
    --in_flight_;
    switch (outcome) {
      case Outcome::kDone:
        ++stats_.completed;
        completions_.push_back(
            Completion{task.file, task.block, deficit_at_pop, task.attempts});
        queued_.erase({task.file, task.block});
        break;
      case Outcome::kStale:
        ++stats_.dropped_stale;
        queued_.erase({task.file, task.block});
        break;
      case Outcome::kDead:
        ++stats_.dropped_dead;
        queued_.erase({task.file, task.block});
        break;
      case Outcome::kRequeue:
        ++stats_.requeued;
        pending_.push_back(Task{task.file, task.block, next_seq_++,
                                task.attempts});
        break;
      case Outcome::kUnrecoverable:
        ++stats_.unrecoverable;
        unrecoverable_.insert({task.file, task.block});
        queued_.erase({task.file, task.block});
        break;
    }
    if (outcome == Outcome::kRequeue) cv_.notify_one();
    idle_cv_.notify_all();
  }
}

bool RepairQueue::drain(double timeout_s) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      const bool idle = idle_cv_.wait_until(lock, deadline, [this] {
        return pending_.empty() && in_flight_ == 0;
      });
      if (!idle) return false;
    }
    // Closing scan: anything still lost with an alive target is work the
    // queue owes (a dropped-task race, or a revive since the last pass).
    if (enqueue_lost() == 0) return true;
    if (std::chrono::steady_clock::now() >= deadline) return false;
  }
}

RepairQueue::Stats RepairQueue::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  s.pending = pending_.size();
  s.in_flight = in_flight_;
  return s;
}

std::vector<RepairQueue::Completion> RepairQueue::completions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return completions_;
}

}  // namespace galloper::cluster
