// Coordinator: the control plane of the multi-node cluster.
//
// Owns one DataNode per simulated server, the block→node placement (a
// store::place_blocks layout installed into the FileStore, so every
// existing data path — read_range, the striped client, mr::StoreRunner,
// the soak harness — runs against the multi-node layout unchanged), and
// the prioritized background RepairQueue. A plain FileStore with no
// Coordinator is exactly the single-node degenerate case: identity
// placement, no throttles, foreground-only repair.
//
// Node lifecycle:
//  * fail_node(n)    — whole-node kill: the server's liveness epoch goes
//                      odd and every slot it hosts is swept lost (the
//                      FileStore sweep), for every file at once.
//  * restart_node(n) — revive EMPTY (new epoch, blocks stay lost) and
//                      enqueue every slot the node hosts for background
//                      repair; un-parks unrecoverable tasks, since fresh
//                      liveness may have made them repairable.
//  * decommission(n) — drain WITHOUT degraded reads: each slot the node
//                      hosts is cut over to a spare Active node via
//                      FileStore::reassign_block. Resident bytes stay
//                      resident across the cutover (the slot is readable
//                      on the old node before the flip and on the new one
//                      after — no read ever degrades); slots that were
//                      LOST are enqueued so they rebuild onto their new
//                      home. The node ends kDecommissioned and hosts
//                      nothing.
//
// Concurrency: lifecycle calls may race client traffic and the repair
// workers — that is the point. They serialize against each other on an
// internal mutex; everything data-path-visible goes through the
// FileStore's own locks and the server liveness epochs.
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

#include "cluster/node.h"
#include "cluster/repair_queue.h"
#include "store/file_store.h"
#include "store/placement.h"

namespace galloper::cluster {

struct CoordinatorOptions {
  // Placement over this topology (defaulted to one rack spanning the whole
  // sim::Cluster when left zeroed).
  store::Topology topology{0, 0};
  store::PlacementPolicy policy = store::PlacementPolicy::kSpread;

  size_t node_io_threads = 2;       // each node's private async pool
  double repair_bytes_per_s = 0;    // per-node repair throttle; 0 = off
  size_t repair_workers = 1;
  size_t repair_max_attempts = 16;
};

class Coordinator {
 public:
  // `store` must outlive the coordinator. Installs the topology placement
  // into the store — call before writing files or concurrent traffic.
  explicit Coordinator(store::FileStore& store, CoordinatorOptions opt = {});
  ~Coordinator();  // stops the repair workers

  store::FileStore& store() { return store_; }
  RepairQueue& repair_queue() { return *queue_; }

  size_t num_nodes() const { return nodes_.size(); }
  DataNode& node(size_t n);

  // Slots node n currently hosts (empty once decommissioned).
  std::vector<size_t> blocks_on(size_t n) const;

  void fail_node(size_t n);
  void restart_node(size_t n);

  // Drains node n onto spare Active nodes; returns the slots moved.
  // Requires enough spare capacity (one free Active node per hosted slot).
  std::vector<size_t> decommission(size_t n);

  struct NodeHealth {
    size_t id = 0;
    bool alive = false;
    uint64_t epoch = 0;
    NodeState state = NodeState::kActive;
    size_t slots = 0;            // block slots this node hosts
    size_t lost_blocks = 0;      // lost (file, slot) instances on it
    size_t repairs_completed = 0;
    size_t repair_bytes = 0;
  };
  std::vector<NodeHealth> health() const;

 private:
  store::FileStore& store_;
  std::vector<std::unique_ptr<DataNode>> nodes_;
  std::unique_ptr<RepairQueue> queue_;
  std::mutex lifecycle_mu_;  // serializes fail/restart/decommission
};

}  // namespace galloper::cluster
