#include "cluster/node.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace galloper::cluster {

DataNode::DataNode(sim::Server& server, size_t io_threads,
                   double repair_bytes_per_s)
    : server_(server),
      io_(io_threads),
      rate_(repair_bytes_per_s),
      last_refill_(std::chrono::steady_clock::now()) {}

void DataNode::set_repair_bandwidth(double bytes_per_s) {
  std::lock_guard<std::mutex> lock(throttle_mu_);
  rate_ = bytes_per_s;
  tokens_ = 0;
  last_refill_ = std::chrono::steady_clock::now();
}

double DataNode::repair_bandwidth() const {
  std::lock_guard<std::mutex> lock(throttle_mu_);
  return rate_;
}

void DataNode::acquire_repair_bandwidth(size_t bytes) {
  for (;;) {
    double wait_s = 0;
    {
      std::lock_guard<std::mutex> lock(throttle_mu_);
      if (rate_ <= 0) return;
      const auto now = std::chrono::steady_clock::now();
      const double elapsed =
          std::chrono::duration<double>(now - last_refill_).count();
      last_refill_ = now;
      // Burst cap: one second of budget. A transfer larger than the burst
      // still proceeds (tokens go negative on the charge below), it just
      // forces the NEXT acquisition to wait the transfer out — bytes/s
      // holds over any window longer than one transfer.
      tokens_ = std::min(tokens_ + elapsed * rate_, rate_);
      if (tokens_ >= 0) {
        tokens_ -= static_cast<double>(bytes);
        return;
      }
      wait_s = -tokens_ / rate_;
    }
    std::this_thread::sleep_for(std::chrono::duration<double>(
        std::min(wait_s, 0.05)));  // re-check: rate may change mid-wait
  }
}

}  // namespace galloper::cluster
