#include "cluster/coordinator.h"

#include <algorithm>

#include "util/check.h"

namespace galloper::cluster {

Coordinator::Coordinator(store::FileStore& store, CoordinatorOptions opt)
    : store_(store) {
  sim::Cluster& cluster = store.cluster();
  store::Topology topo = opt.topology;
  if (topo.servers() == 0) topo = store::Topology{1, cluster.size()};
  GALLOPER_CHECK_MSG(topo.servers() <= cluster.size(),
                     "topology larger than the simulated cluster");
  store_.set_placement(
      store::place_blocks(store.code(), topo, opt.policy));

  nodes_.reserve(cluster.size());
  for (size_t s = 0; s < cluster.size(); ++s)
    nodes_.push_back(std::make_unique<DataNode>(
        cluster.server(s), opt.node_io_threads, opt.repair_bytes_per_s));

  RepairQueueOptions qopt;
  qopt.workers = opt.repair_workers;
  qopt.max_attempts = opt.repair_max_attempts;
  queue_ = std::make_unique<RepairQueue>(store_, nodes_, qopt);
}

Coordinator::~Coordinator() = default;  // ~RepairQueue joins the workers

DataNode& Coordinator::node(size_t n) {
  GALLOPER_CHECK(n < nodes_.size());
  return *nodes_[n];
}

std::vector<size_t> Coordinator::blocks_on(size_t n) const {
  GALLOPER_CHECK(n < nodes_.size());
  std::vector<size_t> out;
  const auto placement = store_.placement();
  for (size_t b = 0; b < placement.size(); ++b)
    if (placement[b] == n) out.push_back(b);
  return out;
}

void Coordinator::fail_node(size_t n) {
  GALLOPER_CHECK(n < nodes_.size());
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  store_.fail_server(n);
}

void Coordinator::restart_node(size_t n) {
  GALLOPER_CHECK(n < nodes_.size());
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  store_.revive_server(n);
  // Fresh liveness: tasks parked unrecoverable may now have enough
  // helpers, and every slot this node hosts needs a rebuild (revive is
  // EMPTY by contract — the epoch fix in FileStore::repair is what makes
  // that contract hold against in-flight repairs).
  queue_->clear_unrecoverable();
  const size_t files = store_.num_files();
  for (size_t b : blocks_on(n))
    for (store::FileId id = 0; id < files; ++id)
      if (!store_.block_available(id, b)) queue_->enqueue(id, b);
}

std::vector<size_t> Coordinator::decommission(size_t n) {
  GALLOPER_CHECK(n < nodes_.size());
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  DataNode& src = *nodes_[n];
  GALLOPER_CHECK_MSG(src.alive(), "decommission wants a live node to drain");
  src.set_state(NodeState::kDraining);

  const std::vector<size_t> moved = blocks_on(n);
  for (size_t b : moved) {
    // A spare: an alive Active node hosting no slot. Recomputed per block
    // so consecutive cutovers spread over distinct spares (placement keeps
    // its one-slot-per-server invariant).
    size_t spare = SIZE_MAX;
    const auto placement = store_.placement();
    for (size_t s = 0; s < nodes_.size(); ++s) {
      if (s == n || !nodes_[s]->alive()) continue;
      if (nodes_[s]->state() != NodeState::kActive) continue;
      if (std::find(placement.begin(), placement.end(), s) != placement.end())
        continue;
      spare = s;
      break;
    }
    GALLOPER_CHECK_MSG(spare != SIZE_MAX,
                       "no spare node to drain slot " << b << " onto");
    // The cutover: resident bytes stay resident (readable on the old node
    // until this line, on the new node after — never degraded), and a slot
    // that was LOST rebuilds onto its new home via the queue.
    store_.reassign_block(b, spare);
    const size_t files = store_.num_files();
    for (store::FileId id = 0; id < files; ++id)
      if (!store_.block_available(id, b)) queue_->enqueue(id, b);
  }
  src.set_state(NodeState::kDecommissioned);
  return moved;
}

std::vector<Coordinator::NodeHealth> Coordinator::health() const {
  std::vector<NodeHealth> out;
  out.reserve(nodes_.size());
  const auto placement = store_.placement();
  const size_t files = store_.num_files();
  for (size_t s = 0; s < nodes_.size(); ++s) {
    NodeHealth h;
    h.id = s;
    h.alive = nodes_[s]->alive();
    h.epoch = nodes_[s]->epoch();
    h.state = nodes_[s]->state();
    h.repairs_completed = nodes_[s]->repairs_completed();
    h.repair_bytes = nodes_[s]->repair_bytes();
    for (size_t b = 0; b < placement.size(); ++b) {
      if (placement[b] != s) continue;
      ++h.slots;
      for (store::FileId id = 0; id < files; ++id)
        if (!store_.block_available(id, b)) ++h.lost_blocks;
    }
    out.push_back(h);
  }
  return out;
}

}  // namespace galloper::cluster
