// DataNode: one member of the multi-node cluster — the promotion of "a
// server" from a liveness flag inside FileStore to a real node with its
// own identity, I/O pool, lifecycle state, and repair-bandwidth budget.
//
// A node wraps exactly one sim::Server (node id == server id). Its block
// directory — which slots it currently hosts — is the Coordinator's
// placement restricted to this server; the node itself owns the two things
// that are per-node RESOURCES rather than per-node metadata:
//
//  * an io::AsyncIo pool: repairs targeting this node gather their helpers
//    through the node's own pool (FileStore::repair's `io` parameter), so
//    a repair storm on one node queues behind that node's disks instead of
//    occupying the process-wide client pool;
//  * a repair-bandwidth throttle: a token bucket over real wall time.
//    Production repair schedulers cap per-node rebuild traffic so repairs
//    do not starve foreground reads (cf. the ytsaurus chunk_replicator's
//    per-node replication budgets); acquire_repair_bandwidth(bytes) blocks
//    the repair worker until the budget allows the transfer.
//
// Thread safety: state() transitions and throttle acquisitions may race
// chaos actors and repair workers; both are internally synchronized.
// Liveness itself stays on the sim::Server epoch (see sim/cluster.h) —
// the node adds no second liveness flag to get out of sync with it.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>

#include "io/async.h"
#include "sim/cluster.h"

namespace galloper::cluster {

enum class NodeState {
  kActive,          // serving + repair target
  kDraining,        // decommission in progress: no NEW blocks placed here
  kDecommissioned,  // drained: hosts no slots, receives nothing
};

class DataNode {
 public:
  // `server` must outlive the node. io_threads sizes the node's private
  // async pool (0 = the pool's own default). repair_bytes_per_s caps
  // repair traffic INTO this node; 0 = unthrottled.
  DataNode(sim::Server& server, size_t io_threads, double repair_bytes_per_s);

  size_t id() const { return server_.id(); }
  sim::Server& server() { return server_; }
  const sim::Server& server() const { return server_; }
  io::AsyncIo& io() { return io_; }

  bool alive() const { return server_.alive(); }
  uint64_t epoch() const { return server_.epoch(); }

  NodeState state() const { return state_.load(std::memory_order_acquire); }
  void set_state(NodeState s) { state_.store(s, std::memory_order_release); }

  // Blocks the caller until `bytes` of repair bandwidth are available,
  // then charges them. Token bucket: refills at repair_bytes_per_s, burst
  // capped at one second of budget, so a long-idle node cannot dump an
  // unbounded backlog in one instant. No-op when unthrottled.
  void acquire_repair_bandwidth(size_t bytes);
  void set_repair_bandwidth(double bytes_per_s);
  double repair_bandwidth() const;

  // Repair traffic accounting (completed installs targeting this node).
  void record_repair(size_t bytes) {
    repairs_completed_.fetch_add(1, std::memory_order_relaxed);
    repair_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }
  size_t repairs_completed() const {
    return repairs_completed_.load(std::memory_order_relaxed);
  }
  size_t repair_bytes() const {
    return repair_bytes_.load(std::memory_order_relaxed);
  }

 private:
  sim::Server& server_;
  io::AsyncIo io_;
  std::atomic<NodeState> state_{NodeState::kActive};

  mutable std::mutex throttle_mu_;
  double rate_ = 0;    // bytes/s; 0 = unthrottled
  double tokens_ = 0;  // available bytes
  std::chrono::steady_clock::time_point last_refill_;

  std::atomic<size_t> repairs_completed_{0};
  std::atomic<size_t> repair_bytes_{0};
};

}  // namespace galloper::cluster
