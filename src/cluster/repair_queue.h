// Prioritized background repair queue — the cluster's chunk replicator.
//
// Every lost block is a task. Priority is the task's SURVIVING-HELPER
// DEFICIT: how many of the block's preferred repair helpers are themselves
// unavailable right now. A deficit-0 task is a routine local repair (all
// helpers up, cheapest possible rebuild); a high-deficit task belongs to a
// stripe that is one or two more failures from unrecoverable, so it jumps
// the queue — exactly the "most endangered chunks first" policy production
// replicators run (cf. ytsaurus chunk_replicator's priority-by-remaining-
// replicas), specialized to locality: the deficit is measured against the
// PREFERRED helper set, so it also prices how far the repair has degraded
// from the cheap local path toward a global decode.
//
// Priorities are live: they are recomputed from current block availability
// at every pop (a helper healed since enqueue lowers the deficit; a fresh
// kill raises it), with total-lost-blocks-in-file then FIFO order breaking
// ties. Executing a task re-checks everything — still lost? target server
// alive? — because chaos does not wait for the queue: a task whose target
// died is dropped (the node's restart re-enqueues its slots), a stale task
// whose block healed is dropped, a transiently failing repair is requeued
// with a bounded attempt budget, and a structurally unrecoverable task is
// parked in an `unrecoverable` set that node lifecycle events clear (a
// revive can make it recoverable again).
//
// The gather I/O of a repair runs on the TARGET node's own async pool, and
// its bytes are charged against the target node's repair-bandwidth
// throttle BEFORE the repair runs — so a throttled node's queue visibly
// reorders by priority while the bucket refills (bench/macro_cluster's
// CI-gated cell).
//
// drain() is the maintenance barrier the soak tests gate on: it returns
// true only when the queue is empty, nothing is in flight, AND a fresh
// store scan finds no lost block that has an alive target and is not
// parked unrecoverable — so "drained" means "no repair work exists", not
// merely "the queue happens to be momentarily empty".
#pragma once

#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "cluster/node.h"
#include "store/file_store.h"

namespace galloper::cluster {

struct RepairQueueOptions {
  size_t workers = 1;       // >1 only helps distinct target nodes
  size_t max_attempts = 16; // requeues per task before parking unrecoverable
};

class RepairQueue {
 public:
  struct Completion {
    store::FileId file = 0;
    size_t block = 0;
    size_t deficit = 0;   // surviving-helper deficit when popped
    size_t attempts = 0;  // executions this task took
  };

  struct Stats {
    size_t completed = 0;      // repairs that installed bytes
    size_t requeued = 0;       // transient / not-now failures retried
    size_t dropped_stale = 0;  // popped tasks whose block had healed
    size_t dropped_dead = 0;   // popped tasks whose target server was dead
    size_t unrecoverable = 0;  // tasks parked as structurally unrecoverable
    size_t pending = 0;
    size_t in_flight = 0;
  };

  // `store` and `nodes` must outlive the queue; nodes[s] hosts server s.
  RepairQueue(store::FileStore& store,
              const std::vector<std::unique_ptr<DataNode>>& nodes,
              RepairQueueOptions opt = {});
  ~RepairQueue();  // stops and joins the workers

  // Schedules (file, block) for repair. Duplicates of a task already
  // queued or in flight are absorbed.
  void enqueue(store::FileId file, size_t block);

  // Scans the store and enqueues every lost block whose target server is
  // alive and that is not parked unrecoverable. Returns tasks enqueued.
  size_t enqueue_lost();

  // Un-parks every unrecoverable task (cluster liveness changed — what was
  // structurally unrecoverable may not be anymore).
  void clear_unrecoverable();

  // Blocks until no repair work exists (see the header comment) or
  // timeout_s elapses. Lost blocks found by the closing scan are enqueued
  // and waited for, so drain self-corrects dropped-task races.
  bool drain(double timeout_s = 30.0);

  // Surviving-helper deficit of (file, block) measured NOW.
  size_t deficit(store::FileId file, size_t block) const;

  Stats stats() const;
  std::vector<Completion> completions() const;

 private:
  struct Task {
    store::FileId file;
    size_t block;
    uint64_t seq;        // FIFO tiebreak
    size_t attempts = 0;
  };

  void worker_loop();
  // Highest-priority pending index, or SIZE_MAX. Caller holds mu_.
  size_t pick_locked() const;

  store::FileStore& store_;
  const std::vector<std::unique_ptr<DataNode>>& nodes_;
  const RepairQueueOptions opt_;

  mutable std::mutex mu_;
  std::condition_variable cv_;       // workers: work available / stop
  std::condition_variable idle_cv_;  // drain(): pending/in-flight changed
  bool stop_ = false;
  uint64_t next_seq_ = 0;
  std::vector<Task> pending_;
  std::set<std::pair<store::FileId, size_t>> queued_;  // pending ∪ in-flight
  std::set<std::pair<store::FileId, size_t>> unrecoverable_;
  size_t in_flight_ = 0;
  Stats stats_;
  std::vector<Completion> completions_;

  std::vector<std::thread> workers_;
};

}  // namespace galloper::cluster
