#include "codes/reed_solomon.h"

#include <sstream>

#include "la/builders.h"
#include "util/check.h"

namespace galloper::codes {

namespace {

CodecEngine make_engine(size_t k, size_t r) {
  std::vector<StripeRef> chunk_pos(k);
  for (size_t i = 0; i < k; ++i) chunk_pos[i] = {i, 0};
  return CodecEngine(la::systematic_mds(k, r), k + r, /*stripes=*/1,
                     std::move(chunk_pos));
}

}  // namespace

ReedSolomonCode::ReedSolomonCode(size_t k, size_t r)
    : k_(k), r_(r), engine_(make_engine(k, r)) {}

std::string ReedSolomonCode::name() const {
  std::ostringstream os;
  os << "(" << k_ << "," << r_ << ") Reed-Solomon";
  return os.str();
}

std::vector<size_t> ReedSolomonCode::repair_helpers(size_t block) const {
  GALLOPER_CHECK(block < k_ + r_);
  // Any k surviving blocks work; the canonical plan takes the k
  // lowest-indexed survivors.
  std::vector<size_t> helpers;
  for (size_t b = 0; b < k_ + r_ && helpers.size() < k_; ++b)
    if (b != block) helpers.push_back(b);
  return helpers;
}

}  // namespace galloper::codes
