// CodecEngine: the generic linear-code execution engine.
//
// Every code in this library (Reed-Solomon, Pyramid, Carousel, Galloper) is
// fully described by
//   * a stripe-granularity generator matrix  E : (n·N) × (k·N)  over
//     GF(2^8), whose row (b·N + p) gives the coefficients of physical
//     stripe p of block b over the k·N original data chunks, and
//   * the systematic positions: for each data chunk, the stripe that stores
//     it verbatim (E has a unit row there).
//
// Given that description the engine implements encoding, whole-file
// decoding from any sufficient subset of blocks, single-block repair from
// an arbitrary helper set, and the decodability/repairability oracles the
// tests use to verify the paper's failure-tolerance claims. Code classes
// only *construct* matrices; they never reimplement data paths.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "codes/layout.h"
#include "codes/plan.h"
#include "la/matrix.h"
#include "util/bytes.h"

namespace galloper::codes {

class CodecEngine {
 public:
  // `chunk_pos[c]` is the stripe holding data chunk c; the corresponding row
  // of `stripe_generator` must be the unit vector e_c (checked).
  CodecEngine(la::Matrix stripe_generator, size_t num_blocks,
              size_t stripes_per_block, std::vector<StripeRef> chunk_pos);

  size_t num_blocks() const { return num_blocks_; }
  size_t stripes_per_block() const { return stripes_per_block_; }
  size_t num_chunks() const { return chunk_pos_.size(); }
  const la::Matrix& generator() const { return generator_; }
  const std::vector<StripeRef>& chunk_positions() const { return chunk_pos_; }

  // Number of data (original) stripes in a block.
  size_t data_stripes_in_block(size_t block) const;

  // For each physical position in `block`: the chunk index stored there, or
  // SIZE_MAX for a parity stripe.
  const std::vector<size_t>& chunks_of_block(size_t block) const;

  // ---- Data paths -------------------------------------------------------

  // Every data path below comes in a serial form and a `_parallel(...,
  // threads)` form. The parallel forms run on the process-wide persistent
  // work-stealing pool (rt::ThreadPool::global()): work splits across
  // output rows and cache-line-aligned byte slices (every output byte at
  // chunk offset i depends only on input bytes at offset i), so runners own
  // disjoint 64-byte-granular regions — no locks, no false sharing. All
  // parallel results are bit-identical to their serial counterpart for any
  // thread count; threads must be ≥ 1 (CheckError otherwise).

  // Encodes a file of size num_chunks·c (any c ≥ 1) into num_blocks blocks
  // of stripes_per_block·c bytes each. Output buffers are never zero-filled:
  // data stripes are copied and parity stripes written by the
  // overwrite-mode fused kernel, so output memory is touched exactly once.
  std::vector<Buffer> encode(ConstByteSpan file) const;
  std::vector<Buffer> encode_parallel(ConstByteSpan file,
                                      size_t threads) const;

  // Recovers the original file from the given blocks (block id → contents).
  // nullopt if the available set is insufficient. Every chunk — even one
  // sitting verbatim in an available block — is computed as a linear
  // combination, mirroring the decode the paper measures in Fig. 7b.
  std::optional<Buffer> decode(
      const std::map<size_t, ConstByteSpan>& blocks) const;
  std::optional<Buffer> decode_parallel(
      const std::map<size_t, ConstByteSpan>& blocks, size_t threads) const;

  // Bit-identical to decode(), but copies verbatim every chunk whose
  // systematic stripe is available and solves only for the missing ones —
  // the optimization the paper hints at in Sec. VII-A ("we can expect a
  // lower completion time…"). With striped codes most chunks are direct
  // copies, so this touches far fewer bytes.
  std::optional<Buffer> decode_fast(
      const std::map<size_t, ConstByteSpan>& blocks) const;
  std::optional<Buffer> decode_fast_parallel(
      const std::map<size_t, ConstByteSpan>& blocks, size_t threads) const;

  // Rebuilds the contents of `failed` from helper blocks.
  // nullopt if the helper set cannot determine the block.
  std::optional<Buffer> repair_block(
      size_t failed, const std::map<size_t, ConstByteSpan>& helpers) const;
  std::optional<Buffer> repair_block_parallel(
      size_t failed, const std::map<size_t, ConstByteSpan>& helpers,
      size_t threads) const;

  // Reads bytes [offset, offset+length) of the original file from the
  // given blocks without a full decode: available chunks are copied,
  // missing ones reconstructed individually (only the overlapping bytes —
  // never a full scratch chunk). nullopt if some needed chunk is not
  // recoverable from the provided blocks.
  std::optional<Buffer> read_range(
      const std::map<size_t, ConstByteSpan>& blocks, size_t offset,
      size_t length) const;
  std::optional<Buffer> read_range_parallel(
      const std::map<size_t, ConstByteSpan>& blocks, size_t offset,
      size_t length, size_t threads) const;

  // Overwrites data chunk `chunk` with `new_data` (one chunk's worth of
  // bytes) and patches every parity stripe that depends on it via the
  // delta: parity' = parity ⊕ coeff·(old ⊕ new). `blocks` must hold ALL
  // current blocks (they are modified in place). Returns the ids of the
  // blocks that were touched — the write I/O set of a systematic in-place
  // update.
  std::vector<size_t> update_chunk(std::vector<Buffer>& blocks, size_t chunk,
                                   ConstByteSpan new_data) const;
  std::vector<size_t> update_chunk_parallel(std::vector<Buffer>& blocks,
                                            size_t chunk,
                                            ConstByteSpan new_data,
                                            size_t threads) const;

  // ---- Batched (multi-stripe) forms ---------------------------------------

  // Each *_batch form runs ONE compiled plan over `batch` logically
  // independent stripes at once. Inputs and outputs use the position-major
  // layout of util/bytes.h interleave_stripes: the file (for encode/decode)
  // holds, per chunk index, the chunk of stripe 0 then stripe 1 … then
  // stripe B-1 contiguously; blocks likewise per stripe position. Because
  // the GF region kernels are bytewise, the results are BIT-IDENTICAL to
  // calling the per-stripe form `batch` times on the deinterleaved data —
  // but every fused kernel call covers batch·chunk contiguous bytes, so at
  // small chunk sizes the per-call fixed costs (validation, plan lookup,
  // span setup, dispatch) amortize over the whole batch and the kernels run
  // in their wide-region sweet spot. batch == 1 is exactly the plain form.

  // `file` holds num_chunks()·batch·c bytes (position-major); returns
  // blocks of stripes_per_block()·batch·c bytes each (position-major).
  std::vector<Buffer> encode_batch(ConstByteSpan file, size_t batch,
                                   size_t threads = 1) const;
  // Blocks are position-major with cell = batch·c; the returned file is
  // position-major (deinterleave with cell_bytes = c to recover stripes).
  std::optional<Buffer> decode_batch(
      const std::map<size_t, ConstByteSpan>& blocks, size_t batch,
      size_t threads = 1) const;
  std::optional<Buffer> decode_fast_batch(
      const std::map<size_t, ConstByteSpan>& blocks, size_t batch,
      size_t threads = 1) const;
  // Rebuilds `failed` for all `batch` stripes at once from position-major
  // helper blocks; the result is the failed block in position-major layout.
  std::optional<Buffer> repair_block_batch(
      size_t failed, const std::map<size_t, ConstByteSpan>& helpers,
      size_t batch, size_t threads = 1) const;

  // ---- Plans (pattern-compiled schedules) -------------------------------

  // Every data path above runs in two phases: PLAN (Gaussian elimination +
  // kernel-batch layout, byte-independent) and EXECUTE (pure kernel
  // dispatch). Plans are memoized in the process-wide PlanCache keyed by
  // (engine, op, available set, failed block) — a recovery storm or a
  // degraded-read workload that hits one erasure pattern thousands of times
  // pays the elimination once. The methods below expose the plan objects so
  // callers with a long-lived pattern (FileStore repairs, storm waves) can
  // pin one shared_ptr and stay immune to cache eviction or
  // GALLOPER_PLAN_CACHE=off.
  //
  // A returned plan is immutable and valid as long as the shared_ptr lives,
  // even after eviction. Plans encode solvability: decode/repair plans with
  // !fully_solvable() make the corresponding call return nullopt.

  // Plan for decode()/decode_parallel() from exactly the blocks `available`.
  std::shared_ptr<const CodecPlan> plan_decode(
      const std::vector<size_t>& available) const;
  // Plan for decode_fast() AND read_range() (they share one schedule: per
  // chunk, copy-from-systematic-stripe or solved combination).
  std::shared_ptr<const CodecPlan> plan_decode_fast(
      const std::vector<size_t>& available) const;
  // Plan for repair_block() of `failed` from exactly `helpers`.
  std::shared_ptr<const CodecPlan> plan_repair(
      size_t failed, const std::vector<size_t>& helpers) const;
  // The encode schedule, compiled once at engine construction.
  const CodecPlan& encode_plan() const { return *encode_plan_; }

  // Executes a pinned repair plan. `helpers` must cover the plan's
  // source_blocks() with equal-sized blocks; the plan must come from
  // plan_repair(failed, ...) on this engine (same pattern — checked via the
  // source set). Bit-identical to repair_block(failed, helpers).
  std::optional<Buffer> repair_block_with_plan(
      const CodecPlan& plan, const std::map<size_t, ConstByteSpan>& helpers,
      size_t threads = 1) const;

  // ---- Oracles (structure only, no data) --------------------------------

  bool decodable(const std::vector<size_t>& available_blocks) const;
  bool can_repair(size_t failed, const std::vector<size_t>& helpers) const;

  // Per-stripe nonzero coefficient count (sparsity diagnostic; parity
  // stripes of an LRC touch few chunks).
  size_t row_support(size_t block, size_t pos) const;

 private:
  la::Matrix rows_of_blocks(const std::vector<size_t>& blocks) const;

  // Cache key for a pattern plan on this engine.
  PlanKey make_key(PlanOp op, const std::vector<size_t>& ids,
                   size_t failed) const;
  // Compiles a pattern plan (no cache involvement). ids must be sorted.
  std::shared_ptr<const CodecPlan> compile_plan(PlanOp op,
                                                const std::vector<size_t>& ids,
                                                size_t failed) const;
  // Cache-through plan lookup: global PlanCache hit, else compile + insert.
  std::shared_ptr<const CodecPlan> pattern_plan(PlanOp op,
                                                const std::vector<size_t>& ids,
                                                size_t failed) const;
  // Validates a block map (equal sizes, multiple of N) and returns the
  // sorted ids + chunk size.
  std::vector<size_t> validate_blocks(
      const std::map<size_t, ConstByteSpan>& blocks, size_t* chunk) const;
  // Executes plan rows r in [0, plan.num_rows()) via
  // CodecPlan::execute_batch into a freshly allocated block buffer.
  std::optional<Buffer> repair_execute(
      const CodecPlan& plan, const std::map<size_t, ConstByteSpan>& helpers,
      size_t chunk, size_t threads) const;

  // Shared serial/parallel implementations (threads == 1 is the serial
  // path: no pool dispatch, plain loops).
  std::vector<Buffer> encode_impl(ConstByteSpan file, size_t threads) const;
  std::optional<Buffer> decode_impl(
      const std::map<size_t, ConstByteSpan>& blocks, size_t threads) const;
  std::optional<Buffer> decode_fast_impl(
      const std::map<size_t, ConstByteSpan>& blocks, size_t threads) const;
  std::optional<Buffer> repair_block_impl(
      size_t failed, const std::map<size_t, ConstByteSpan>& helpers,
      size_t threads) const;
  std::optional<Buffer> read_range_impl(
      const std::map<size_t, ConstByteSpan>& blocks, size_t offset,
      size_t length, size_t threads) const;
  std::vector<size_t> update_chunk_impl(std::vector<Buffer>& blocks,
                                        size_t chunk, ConstByteSpan new_data,
                                        size_t threads) const;

  la::Matrix generator_;
  size_t num_blocks_;
  size_t stripes_per_block_;
  // Process-unique id for plan-cache keying. Copies share the id — they
  // carry the same (immutable) generator, so their plans are interchangeable.
  uint64_t engine_id_;
  std::vector<StripeRef> chunk_pos_;
  // block → physical pos → chunk id (SIZE_MAX if parity).
  std::vector<std::vector<size_t>> block_chunks_;
  // Sparse form of generator rows (col, coeff), for the encoder.
  struct Term {
    uint32_t col;
    gf::Elem coeff;
  };
  std::vector<std::vector<Term>> sparse_rows_;
  // Transposed sparsity: for each chunk, the parity stripes touching it
  // (row index + coefficient) — drives update_chunk().
  std::vector<std::vector<Term>> chunk_consumers_;
  // The encode schedule, compiled once here instead of re-derived per call:
  // one row per output stripe, sources addressed as (slot 0 = the file,
  // pos = chunk index).
  std::shared_ptr<const CodecPlan> encode_plan_;
};

}  // namespace galloper::codes
