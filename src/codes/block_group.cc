#include "codes/block_group.h"

#include "util/check.h"

namespace galloper::codes {

BlockGroupCodec::BlockGroupCodec(const ErasureCode& code,
                                 size_t group_data_bytes)
    : code_(code), group_data_bytes_(group_data_bytes) {
  GALLOPER_CHECK_MSG(
      group_data_bytes > 0 &&
          group_data_bytes % code.engine().num_chunks() == 0,
      "group data size must be a positive multiple of the chunk count "
          << code.engine().num_chunks());
}

size_t BlockGroupCodec::block_bytes() const {
  return group_data_bytes_ / code_.engine().num_chunks() *
         code_.stripes_per_block();
}

size_t BlockGroupCodec::num_groups(size_t file_bytes) const {
  GALLOPER_CHECK(file_bytes > 0);
  return (file_bytes + group_data_bytes_ - 1) / group_data_bytes_;
}

BlockGroupCodec::EncodedFile BlockGroupCodec::encode(
    ConstByteSpan file) const {
  GALLOPER_CHECK_MSG(!file.empty(), "cannot encode an empty file");
  EncodedFile out;
  out.original_bytes = file.size();
  const size_t groups = num_groups(file.size());
  out.groups.reserve(groups);
  Buffer padded;  // reused scratch for the (padded) last group
  for (size_t g = 0; g < groups; ++g) {
    const size_t offset = g * group_data_bytes_;
    const size_t len = std::min(group_data_bytes_, file.size() - offset);
    if (len == group_data_bytes_) {
      out.groups.push_back(code_.encode(file.subspan(offset, len)));
    } else {
      padded.assign(file.begin() + static_cast<ptrdiff_t>(offset),
                    file.end());
      padded.resize(group_data_bytes_, 0);
      out.groups.push_back(code_.encode(padded));
    }
  }
  return out;
}

std::optional<Buffer> BlockGroupCodec::decode(
    size_t original_bytes,
    const std::vector<std::map<size_t, ConstByteSpan>>& available) const {
  GALLOPER_CHECK(original_bytes > 0);
  GALLOPER_CHECK_MSG(available.size() == num_groups(original_bytes),
                     "expected " << num_groups(original_bytes)
                                 << " groups, got " << available.size());
  Buffer file;
  file.reserve(num_groups(original_bytes) * group_data_bytes_);
  for (const auto& group : available) {
    auto data = code_.decode(group);
    if (!data) return std::nullopt;
    file.insert(file.end(), data->begin(), data->end());
  }
  file.resize(original_bytes);
  return file;
}

std::optional<Buffer> BlockGroupCodec::repair(
    size_t group, size_t block,
    const std::map<size_t, ConstByteSpan>& helpers) const {
  (void)group;  // groups are iid; the id only matters to the caller
  return code_.repair_block(block, helpers);
}

}  // namespace galloper::codes
