// Symbol remapping (Sec. III-C / IV-B of the paper): the change-of-basis
// machinery that "moves" original data from data blocks into all blocks.
//
// These primitives are shared by the Carousel baseline (uniform weights over
// a Reed-Solomon base) and by both steps of the Galloper construction
// (weighted step over the RS base, then per-local-group steps).
#pragma once

#include <vector>

#include "codes/layout.h"
#include "la/matrix.h"

namespace galloper::codes {

// Expands a block-level generator G (n × k) to stripe granularity with N
// stripes per block. Rows are block-major ((b, p) → b·N + p); the entry at
// row (b, p), column (m, p) is G[b][m] — i.e. each stripe row p is encoded
// independently by G across blocks.
la::Matrix expand_generator(const la::Matrix& g, size_t n_stripes);

// Result of the sequential stripe choice of Sec. IV-B.
struct Selection {
  // Chosen stripes in choice order. This order defines the chunk order of
  // the remapped code (chunk i lives at refs[i]).
  std::vector<StripeRef> refs;
  // For each block, the row at which its run of choices starts (the rotation
  // shift that brings its chosen stripes to the top), and the count chosen.
  std::vector<size_t> run_start;
  std::vector<size_t> count;
};

// Sweeps the given blocks in order, choosing counts[i] consecutive rows from
// block blocks[i] starting where the previous block's run ended, wrapping
// modulo `window` (rows are restricted to [0, window)). A shared row cursor
// guarantees each row in the window is chosen exactly (Σ counts) / window
// times. Requires counts[i] ≤ window and window | Σ counts.
Selection sequential_selection(const std::vector<size_t>& blocks,
                               const std::vector<size_t>& counts,
                               size_t window);

// Change of basis: returns E' = E · (E restricted to the selected rows)⁻¹.
// The resulting code is linearly equivalent to E (same dependency structure
// between stripes) and systematic exactly on the selection, in selection
// order. Throws CheckError if the selected rows do not form a basis — which
// by the paper's row-counting argument cannot happen for a valid selection.
la::Matrix remap_to_selection(const la::Matrix& e,
                              const std::vector<StripeRef>& selection,
                              size_t n_stripes);

// Cyclically rotates the rows of `block` inside positions [0, window) so
// that the physical position p now holds what was at (p + shift) % window
// ("rotate stripes upwards"). Rows at positions ≥ window are untouched.
void rotate_block_rows(la::Matrix& e, size_t block, size_t n_stripes,
                       size_t window, size_t shift);

// Applies the same rotation to any stripe refs that point into the window.
void rotate_refs(std::vector<StripeRef>& refs, size_t block, size_t window,
                 size_t shift);

// Convenience bundle: remap an (n × k) systematic MDS base to stripe
// granularity with the given per-block data-stripe counts (Σ = k·N), then
// rotate every block's data to the top. Used by Carousel (uniform counts)
// and the l = 0 Galloper construction (weighted counts).
struct RemappedCode {
  la::Matrix generator;             // (n·N) × (k·N), rotated
  std::vector<StripeRef> chunk_pos;  // chunk order = choice order
};
RemappedCode remap_mds(const la::Matrix& base, size_t n_stripes,
                       const std::vector<size_t>& counts);

}  // namespace galloper::codes
