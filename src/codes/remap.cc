#include "codes/remap.h"

#include <numeric>

#include "la/solve.h"
#include "util/check.h"

namespace galloper::codes {

la::Matrix expand_generator(const la::Matrix& g, size_t n_stripes) {
  GALLOPER_CHECK(n_stripes > 0);
  la::Matrix out(g.rows() * n_stripes, g.cols() * n_stripes);
  for (size_t b = 0; b < g.rows(); ++b)
    for (size_t m = 0; m < g.cols(); ++m) {
      const gf::Elem coeff = g.at(b, m);
      if (coeff == 0) continue;
      for (size_t p = 0; p < n_stripes; ++p)
        out.at(b * n_stripes + p, m * n_stripes + p) = coeff;
    }
  return out;
}

Selection sequential_selection(const std::vector<size_t>& blocks,
                               const std::vector<size_t>& counts,
                               size_t window) {
  GALLOPER_CHECK(blocks.size() == counts.size());
  GALLOPER_CHECK(window > 0);
  const size_t total = std::accumulate(counts.begin(), counts.end(), size_t{0});
  GALLOPER_CHECK_MSG(total % window == 0,
                     "selection total " << total
                                        << " must be a multiple of window "
                                        << window);
  Selection sel;
  sel.refs.reserve(total);
  sel.run_start.resize(blocks.size());
  sel.count = counts;
  size_t cursor = 0;
  for (size_t i = 0; i < blocks.size(); ++i) {
    GALLOPER_CHECK_MSG(counts[i] <= window,
                       "block weight exceeds the selection window");
    sel.run_start[i] = cursor % window;
    for (size_t c = 0; c < counts[i]; ++c) {
      sel.refs.push_back({blocks[i], cursor % window});
      ++cursor;
    }
  }
  return sel;
}

la::Matrix remap_to_selection(const la::Matrix& e,
                              const std::vector<StripeRef>& selection,
                              size_t n_stripes) {
  GALLOPER_CHECK_MSG(selection.size() == e.cols(),
                     "selection size " << selection.size()
                                       << " != generator cols " << e.cols());
  std::vector<size_t> rows(selection.size());
  for (size_t i = 0; i < selection.size(); ++i)
    rows[i] = selection[i].block * n_stripes + selection[i].pos;
  const la::Matrix chosen = e.select_rows(rows);
  const auto inv = la::inverse(chosen);
  GALLOPER_CHECK_MSG(inv.has_value(),
                     "selected stripes do not form a basis — invalid "
                     "selection for symbol remapping");
  return e * *inv;
}

void rotate_block_rows(la::Matrix& e, size_t block, size_t n_stripes,
                       size_t window, size_t shift) {
  GALLOPER_CHECK(window <= n_stripes);
  if (window == 0 || shift % window == 0) return;
  shift %= window;
  // Copy out the window, write back rotated.
  std::vector<std::vector<gf::Elem>> saved(window);
  for (size_t p = 0; p < window; ++p) {
    auto row = e.row(block * n_stripes + p);
    saved[p].assign(row.begin(), row.end());
  }
  for (size_t p = 0; p < window; ++p) {
    auto dst = e.row(block * n_stripes + p);
    const auto& src = saved[(p + shift) % window];
    std::copy(src.begin(), src.end(), dst.begin());
  }
}

void rotate_refs(std::vector<StripeRef>& refs, size_t block, size_t window,
                 size_t shift) {
  if (window == 0) return;
  shift %= window;
  for (auto& ref : refs) {
    if (ref.block != block || ref.pos >= window) continue;
    // Row (p + shift) % window moved to p, i.e. p moved to
    // (p - shift) mod window.
    ref.pos = (ref.pos + window - shift) % window;
  }
}

RemappedCode remap_mds(const la::Matrix& base, size_t n_stripes,
                       const std::vector<size_t>& counts) {
  GALLOPER_CHECK(base.rows() == counts.size());
  const la::Matrix expanded = expand_generator(base, n_stripes);
  std::vector<size_t> blocks(base.rows());
  std::iota(blocks.begin(), blocks.end(), size_t{0});
  const Selection sel = sequential_selection(blocks, counts, n_stripes);

  RemappedCode out;
  out.generator = remap_to_selection(expanded, sel.refs, n_stripes);
  out.chunk_pos = sel.refs;
  for (size_t b = 0; b < base.rows(); ++b) {
    rotate_block_rows(out.generator, b, n_stripes, n_stripes,
                      sel.run_start[b]);
    rotate_refs(out.chunk_pos, b, n_stripes, sel.run_start[b]);
  }
  return out;
}

}  // namespace galloper::codes
