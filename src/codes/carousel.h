// (k, r) Carousel code (Li & Li, ICDCS 2017; Sec. III-C of the paper) —
// the data-parallelism baseline Galloper codes are compared against.
//
// A Carousel code is a Reed-Solomon code symbol-remapped with uniform
// weights w_i = k/(k+r): each of the k+r blocks is split into N = k+r
// stripes, k of which hold original data. Data parallelism reaches all
// blocks, but the code is linearly equivalent to Reed-Solomon, so repair
// still reads k whole blocks (the disk-I/O drawback Galloper removes), and
// the uniform spread cannot adapt to heterogeneous servers.
#pragma once

#include "codes/erasure_code.h"

namespace galloper::codes {

class CarouselCode final : public ErasureCode {
 public:
  // Requires k ≥ 1, r ≥ 0, k + r ≤ 256.
  CarouselCode(size_t k, size_t r);

  std::string name() const override;
  size_t k() const override { return k_; }
  size_t r() const { return r_; }
  std::vector<size_t> repair_helpers(size_t block) const override;
  size_t guaranteed_tolerance() const override { return r_; }
  const CodecEngine& engine() const override { return engine_; }

 private:
  size_t k_;
  size_t r_;
  CodecEngine engine_;
};

}  // namespace galloper::codes
