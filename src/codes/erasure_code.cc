#include "codes/erasure_code.h"

#include "util/check.h"

namespace galloper::codes {

size_t ErasureCode::original_bytes_in_block(size_t block,
                                            size_t block_bytes) const {
  const auto& e = engine();
  GALLOPER_CHECK(block_bytes % e.stripes_per_block() == 0);
  const size_t chunk = block_bytes / e.stripes_per_block();
  return e.data_stripes_in_block(block) * chunk;
}

bool ErasureCode::verify_tolerance() const {
  const size_t n = num_blocks();
  const size_t t = guaranteed_tolerance();
  GALLOPER_CHECK_MSG(n <= 24, "verify_tolerance is exponential in n");
  // Decodability is monotone in the available set (rank never drops when
  // rows are added), so checking exactly the (n−t)-subsets suffices.
  for (uint64_t mask = 0; mask < (uint64_t{1} << n); ++mask) {
    const size_t live = static_cast<size_t>(__builtin_popcountll(mask));
    if (live != n - t) continue;
    std::vector<size_t> available;
    for (size_t b = 0; b < n; ++b)
      if (mask & (uint64_t{1} << b)) available.push_back(b);
    if (!decodable(available)) return false;
  }
  return true;
}

}  // namespace galloper::codes
