#include "codes/pyramid.h"

#include <sstream>

#include "la/builders.h"
#include "util/check.h"

namespace galloper::codes {

la::Matrix pyramid_generator(size_t k, size_t l, size_t g, size_t variant) {
  GALLOPER_CHECK(k >= 1);
  GALLOPER_CHECK_MSG(l == 0 || k % l == 0, "l must divide k");
  GALLOPER_CHECK_MSG(k + g + 1 + variant <= 256,
                     "k + g + 1 + variant must fit in GF(256)");
  const size_t n = k + l + g;

  if (l == 0) {
    // Degenerates to a (k, g) Reed-Solomon code.
    return la::systematic_mds(k, g, variant);
  }

  // (k, g+1) MDS base: g rows become globals, the last row is split.
  const la::Matrix rs = la::systematic_mds(k, g + 1, variant);

  la::Matrix gen(n, k);
  // Data rows: identity.
  for (size_t i = 0; i < k; ++i) gen.at(i, i) = 1;
  // Local parity rows: the split row restricted to each group.
  const size_t group = k / l;
  for (size_t j = 0; j < l; ++j)
    for (size_t m = 0; m < group; ++m) {
      const size_t col = j * group + m;
      gen.at(k + j, col) = rs.at(k + g, col);
    }
  // Global parity rows from the MDS base.
  for (size_t j = 0; j < g; ++j)
    for (size_t m = 0; m < k; ++m) gen.at(k + l + j, m) = rs.at(k + j, m);
  return gen;
}

namespace {

CodecEngine make_engine(size_t k, size_t l, size_t g) {
  la::Matrix gen = pyramid_generator(k, l, g);
  std::vector<StripeRef> chunk_pos(k);
  for (size_t i = 0; i < k; ++i) chunk_pos[i] = {i, 0};
  return CodecEngine(std::move(gen), k + l + g, /*stripes=*/1,
                     std::move(chunk_pos));
}

}  // namespace

PyramidCode::PyramidCode(size_t k, size_t l, size_t g)
    : k_(k), l_(l), g_(g), engine_(make_engine(k, l, g)) {}

std::string PyramidCode::name() const {
  std::ostringstream os;
  os << "(" << k_ << "," << l_ << "," << g_ << ") Pyramid";
  return os.str();
}

size_t PyramidCode::group_of(size_t block) const {
  GALLOPER_CHECK(block < num_blocks());
  if (block < k_) return l_ > 0 ? block / (k_ / l_) : SIZE_MAX;
  if (block < k_ + l_) return block - k_;
  return SIZE_MAX;
}

std::vector<size_t> PyramidCode::group_blocks(size_t group) const {
  GALLOPER_CHECK(l_ > 0 && group < l_);
  const size_t size = k_ / l_;
  std::vector<size_t> blocks;
  for (size_t m = 0; m < size; ++m) blocks.push_back(group * size + m);
  blocks.push_back(k_ + group);
  return blocks;
}

std::vector<size_t> PyramidCode::repair_helpers(size_t block) const {
  GALLOPER_CHECK(block < num_blocks());
  const size_t group = group_of(block);
  if (group != SIZE_MAX) {
    // Locally repairable: the other k/l blocks of the group.
    std::vector<size_t> helpers;
    for (size_t b : group_blocks(group))
      if (b != block) helpers.push_back(b);
    return helpers;
  }
  // Global parity (or any block when l = 0): needs k blocks; canonically
  // the k lowest-indexed surviving blocks.
  std::vector<size_t> helpers;
  for (size_t b = 0; b < num_blocks() && helpers.size() < k_; ++b)
    if (b != block) helpers.push_back(b);
  return helpers;
}

}  // namespace galloper::codes
