// Stripe-level layout descriptions shared by all codes.
#pragma once

#include <cstddef>
#include <vector>

namespace galloper::codes {

// Identifies one stripe: `pos` is the physical position (0 = top) inside
// block `block`. Blocks are written to servers top-down, so original data
// rotated to the top of a block is sequentially readable.
struct StripeRef {
  size_t block = 0;
  size_t pos = 0;

  bool operator==(const StripeRef&) const = default;
};

}  // namespace galloper::codes
