#include "codes/carousel.h"

#include <sstream>

#include "codes/remap.h"
#include "la/builders.h"
#include "util/check.h"

namespace galloper::codes {

namespace {

CodecEngine make_engine(size_t k, size_t r) {
  GALLOPER_CHECK(k >= 1);
  GALLOPER_CHECK_MSG(k + r <= 256, "k + r must fit in GF(256)");
  const size_t n = k + r;
  // Uniform weights k/(k+r): N = k+r stripes per block, k of them data.
  RemappedCode rc =
      remap_mds(la::systematic_mds(k, r), n, std::vector<size_t>(n, k));
  return CodecEngine(std::move(rc.generator), n, n, std::move(rc.chunk_pos));
}

}  // namespace

CarouselCode::CarouselCode(size_t k, size_t r)
    : k_(k), r_(r), engine_(make_engine(k, r)) {}

std::string CarouselCode::name() const {
  std::ostringstream os;
  os << "(" << k_ << "," << r_ << ") Carousel";
  return os.str();
}

std::vector<size_t> CarouselCode::repair_helpers(size_t block) const {
  GALLOPER_CHECK(block < k_ + r_);
  // Linearly equivalent to Reed-Solomon: k whole blocks are required.
  std::vector<size_t> helpers;
  for (size_t b = 0; b < k_ + r_ && helpers.size() < k_; ++b)
    if (b != block) helpers.push_back(b);
  return helpers;
}

}  // namespace galloper::codes
