// Systematic (k, r) Reed-Solomon code (Sec. III-A of the paper).
//
// k data blocks, r parity blocks; any k of the k+r blocks decode the
// original data (MDS). Repairing any single block reads k whole blocks —
// the disk-I/O cost the paper's locally repairable codes attack.
#pragma once

#include "codes/erasure_code.h"

namespace galloper::codes {

class ReedSolomonCode final : public ErasureCode {
 public:
  // Requires k ≥ 1, r ≥ 0, k + r ≤ 256.
  ReedSolomonCode(size_t k, size_t r);

  std::string name() const override;
  size_t k() const override { return k_; }
  size_t r() const { return r_; }
  std::vector<size_t> repair_helpers(size_t block) const override;
  size_t guaranteed_tolerance() const override { return r_; }
  const CodecEngine& engine() const override { return engine_; }

 private:
  size_t k_;
  size_t r_;
  CodecEngine engine_;
};

}  // namespace galloper::codes
