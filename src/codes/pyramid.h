// (k, l, g) Pyramid code (Huang et al.; Sec. III-B of the paper) — the
// locally repairable baseline Galloper codes are constructed from.
//
// Block order: k data blocks, then l local parity blocks, then g global
// parity blocks. l must divide k; local group j contains data blocks
// [j·k/l, (j+1)·k/l) and local parity block k+j, whose content is the XOR
// of its group (a (k/l, 1) Reed-Solomon parity). Global parities are rows
// of a systematic (k, g) MDS generator over all data blocks.
//
// Properties (asserted in tests):
//  * any g+1 block failures are tolerable (information locality);
//  * each of the first k+l blocks is repairable from its k/l group peers;
//  * the g global parities need k blocks to repair.
#pragma once

#include "codes/erasure_code.h"

namespace galloper::codes {

// Block-level (k+l+g) × k generator of the (k, l, g) Pyramid code, built by
// the classic construction: take a systematic (k, g+1) MDS code, keep its
// first g parity rows as global parities, and split its last parity row
// into the l local parities (each restricted to one group's columns).
// Splitting — rather than inventing independent local rows — is what
// guarantees the g+1 failure tolerance. Shared with the Galloper
// construction, which must mimic exactly this dependency structure.
//
// `variant` selects alternative (equally valid) MDS coefficients; the
// Galloper construction iterates it when a coefficient set interacts
// degenerately with its stripe rotations. Every variant yields a Pyramid
// code with identical decodable-pattern structure.
la::Matrix pyramid_generator(size_t k, size_t l, size_t g,
                             size_t variant = 0);

class PyramidCode final : public ErasureCode {
 public:
  // Requires k ≥ 1, l ≥ 0, l | k (l = 0 degenerates to Reed-Solomon),
  // k + g ≤ 256.
  PyramidCode(size_t k, size_t l, size_t g);

  std::string name() const override;
  size_t k() const override { return k_; }
  size_t l() const { return l_; }
  size_t g() const { return g_; }
  std::vector<size_t> repair_helpers(size_t block) const override;
  // g+1 when local groups exist; the l = 0 degenerate case is a (k, g)
  // Reed-Solomon code and tolerates exactly g.
  size_t guaranteed_tolerance() const override {
    return l_ > 0 ? g_ + 1 : g_;
  }
  const CodecEngine& engine() const override { return engine_; }

  // Group id of a data or local-parity block (SIZE_MAX for globals).
  size_t group_of(size_t block) const;

  // Blocks of local group j: the k/l data blocks followed by the local
  // parity block.
  std::vector<size_t> group_blocks(size_t group) const;

 private:
  size_t k_;
  size_t l_;
  size_t g_;
  CodecEngine engine_;
};

}  // namespace galloper::codes
