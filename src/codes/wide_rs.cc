#include "codes/wide_rs.h"

#include <cstring>
#include <sstream>

#include "util/check.h"

namespace galloper::codes {

namespace {

using gf16::Elem;

std::vector<Elem> to_symbols(ConstByteSpan bytes) {
  GALLOPER_CHECK_MSG(bytes.size() % 2 == 0,
                     "GF(2^16) data must be an even number of bytes");
  std::vector<Elem> out(bytes.size() / 2);
  std::memcpy(out.data(), bytes.data(), bytes.size());
  return out;
}

Buffer to_bytes(const std::vector<Elem>& symbols) {
  Buffer out(symbols.size() * 2);
  std::memcpy(out.data(), symbols.data(), out.size());
  return out;
}

}  // namespace

WideReedSolomonCode::WideReedSolomonCode(size_t k, size_t r) : k_(k), r_(r) {
  GALLOPER_CHECK(k >= 1);
  GALLOPER_CHECK_MSG(k + r <= 65536, "k + r must fit in GF(2^16)");
}

std::string WideReedSolomonCode::name() const {
  std::ostringstream os;
  os << "(" << k_ << "," << r_ << ") wide Reed-Solomon [GF(2^16)]";
  return os.str();
}

gf16::Elem WideReedSolomonCode::coefficient(size_t block, size_t j) const {
  GALLOPER_CHECK(block < k_ + r_ && j < k_);
  if (block < k_) return block == j ? 1 : 0;
  // Cauchy points: x_i = k + i for parity rows, y_j = j for data columns.
  const Elem x = static_cast<Elem>(block);
  const Elem y = static_cast<Elem>(j);
  return gf16::inv(gf16::add(x, y));
}

std::vector<Buffer> WideReedSolomonCode::encode(ConstByteSpan file) const {
  GALLOPER_CHECK_MSG(!file.empty() && file.size() % (2 * k_) == 0,
                     "file size must be a positive multiple of 2k bytes");
  const size_t symbols = file.size() / 2 / k_;
  const std::vector<Elem> data = to_symbols(file);

  std::vector<Buffer> blocks;
  blocks.reserve(k_ + r_);
  for (size_t i = 0; i < k_; ++i)
    blocks.emplace_back(file.begin() + static_cast<ptrdiff_t>(i * symbols * 2),
                        file.begin() +
                            static_cast<ptrdiff_t>((i + 1) * symbols * 2));
  for (size_t i = 0; i < r_; ++i) {
    std::vector<Elem> parity(symbols, 0);
    for (size_t j = 0; j < k_; ++j) {
      gf16::mul_acc_region(
          parity, coefficient(k_ + i, j),
          std::span<const Elem>(data.data() + j * symbols, symbols));
    }
    blocks.push_back(to_bytes(parity));
  }
  return blocks;
}

std::optional<std::vector<std::vector<gf16::Elem>>>
WideReedSolomonCode::decode_rows(const std::vector<size_t>& ids) const {
  if (ids.size() < k_) return std::nullopt;
  // Select k independent rows by Gaussian elimination with row tracking,
  // then invert the selected k×k submatrix.
  const size_t m = ids.size();
  std::vector<std::vector<Elem>> work(m, std::vector<Elem>(k_));
  for (size_t t = 0; t < m; ++t)
    for (size_t j = 0; j < k_; ++j) work[t][j] = coefficient(ids[t], j);

  std::vector<size_t> selected;  // indices into ids
  std::vector<bool> used(m, false);
  for (size_t col = 0; col < k_; ++col) {
    size_t pivot = SIZE_MAX;
    for (size_t t = 0; t < m; ++t) {
      if (!used[t] && work[t][col] != 0) {
        pivot = t;
        break;
      }
    }
    if (pivot == SIZE_MAX) return std::nullopt;
    used[pivot] = true;
    selected.push_back(pivot);
    const Elem pi = gf16::inv(work[pivot][col]);
    for (size_t j = col; j < k_; ++j)
      work[pivot][j] = gf16::mul(work[pivot][j], pi);
    for (size_t t = 0; t < m; ++t) {
      if (t == pivot || work[t][col] == 0) continue;
      const Elem f = work[t][col];
      for (size_t j = col; j < k_; ++j)
        work[t][j] = gf16::add(work[t][j], gf16::mul(f, work[pivot][j]));
    }
  }

  // Invert the selected submatrix (k×k Gauss-Jordan with identity).
  std::vector<std::vector<Elem>> a(k_, std::vector<Elem>(k_));
  std::vector<std::vector<Elem>> inv(k_, std::vector<Elem>(k_, 0));
  for (size_t t = 0; t < k_; ++t) {
    inv[t][t] = 1;
    for (size_t j = 0; j < k_; ++j)
      a[t][j] = coefficient(ids[selected[t]], j);
  }
  for (size_t col = 0; col < k_; ++col) {
    size_t pivot = col;
    while (pivot < k_ && a[pivot][col] == 0) ++pivot;
    if (pivot == k_) return std::nullopt;  // cannot happen post-selection
    std::swap(a[pivot], a[col]);
    std::swap(inv[pivot], inv[col]);
    const Elem pi = gf16::inv(a[col][col]);
    for (size_t j = 0; j < k_; ++j) {
      a[col][j] = gf16::mul(a[col][j], pi);
      inv[col][j] = gf16::mul(inv[col][j], pi);
    }
    for (size_t t = 0; t < k_; ++t) {
      if (t == col || a[t][col] == 0) continue;
      const Elem f = a[t][col];
      for (size_t j = 0; j < k_; ++j) {
        a[t][j] = gf16::add(a[t][j], gf16::mul(f, a[col][j]));
        inv[t][j] = gf16::add(inv[t][j], gf16::mul(f, inv[col][j]));
      }
    }
  }

  // Data row j = Σ_t inv[j][t] · blocks[selected[t]], expanded to the full
  // id list (zeros elsewhere).
  std::vector<std::vector<Elem>> rows(k_, std::vector<Elem>(m, 0));
  for (size_t j = 0; j < k_; ++j)
    for (size_t t = 0; t < k_; ++t) rows[j][selected[t]] = inv[j][t];
  return rows;
}

std::optional<Buffer> WideReedSolomonCode::decode(
    const std::map<size_t, ConstByteSpan>& blocks) const {
  if (blocks.size() < k_) return std::nullopt;
  std::vector<size_t> ids;
  size_t block_bytes = SIZE_MAX;
  for (const auto& [id, data] : blocks) {
    GALLOPER_CHECK(id < k_ + r_);
    ids.push_back(id);
    if (block_bytes == SIZE_MAX) block_bytes = data.size();
    GALLOPER_CHECK(data.size() == block_bytes);
  }
  const auto rows = decode_rows(ids);
  if (!rows) return std::nullopt;

  const size_t symbols = block_bytes / 2;
  std::vector<std::vector<Elem>> block_symbols;
  block_symbols.reserve(ids.size());
  for (size_t id : ids) block_symbols.push_back(to_symbols(blocks.at(id)));

  std::vector<Elem> file(k_ * symbols, 0);
  for (size_t j = 0; j < k_; ++j) {
    std::span<Elem> dst(file.data() + j * symbols, symbols);
    for (size_t t = 0; t < ids.size(); ++t)
      gf16::mul_acc_region(dst, (*rows)[j][t], block_symbols[t]);
  }
  return to_bytes(file);
}

std::optional<Buffer> WideReedSolomonCode::repair_block(
    size_t failed, const std::map<size_t, ConstByteSpan>& helpers) const {
  GALLOPER_CHECK(failed < k_ + r_);
  GALLOPER_CHECK(helpers.find(failed) == helpers.end());
  const auto file = decode(helpers);
  if (!file) return std::nullopt;
  if (failed < k_) {
    const size_t block_bytes = file->size() / k_;
    return Buffer(file->begin() + static_cast<ptrdiff_t>(failed * block_bytes),
                  file->begin() +
                      static_cast<ptrdiff_t>((failed + 1) * block_bytes));
  }
  auto blocks = encode(*file);
  return std::move(blocks[failed]);
}

}  // namespace galloper::codes
