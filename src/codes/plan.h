// Compiled codec plans and the process-wide plan cache.
//
// A CodecPlan is everything byte-INDEPENDENT about one engine data path for
// one erasure pattern, computed once: the Gaussian-elimination solve of the
// combination matrix, the per-output-row source lists pre-filtered down to
// nonzero terms (ready for the fused mul_region_multi kernel), and the
// verbatim copy map. Executing a plan is pure kernel dispatch — no linear
// algebra, no submatrix materialization, no per-row coefficient scans.
//
// Why it matters: a degraded read or a recovery storm hits the SAME erasure
// pattern thousands of times (every stripe of every file lost with a
// server), and at small chunk sizes the ~O((kN)³) elimination dominates the
// O(kN·chunk) byte work. Plans live in a sharded, thread-safe LRU keyed by
// engine × op × available-block set × failed block; generator matrices are
// immutable after engine construction, so cached plans never need
// invalidation.
//
// GALLOPER_PLAN_CACHE sizes the cache: unset → 1024 entries, an integer →
// that many entries, "off"/"0" → caching disabled (every call plans
// fresh — the pre-PR-3 behavior, kept reachable for benchmarking).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "gf/gf256.h"
#include "util/bytes.h"

namespace galloper::codes {

// The data paths a plan can compile. kDecodeFast doubles as the read_range
// plan (same per-chunk copy-or-solve schedule; read_range just executes the
// rows overlapping the request). kUpdate never hits the pattern cache (its
// schedule — the per-chunk parity consumer list — is built at engine
// construction); it exists so the per-op timing counters cover all paths.
enum class PlanOp : uint8_t {
  kEncode = 0,
  kDecode = 1,
  kDecodeFast = 2,
  kRepair = 3,
  kUpdate = 4,
};
inline constexpr size_t kNumPlanOps = 5;

const char* plan_op_name(PlanOp op);

// Cache key: which engine (identity, not parameters — generators are
// immutable, so identity implies content), which path, which blocks were
// available, and — for repair — which block is being rebuilt.
struct PlanKey {
  uint64_t engine_id = 0;
  PlanOp op = PlanOp::kDecode;
  uint64_t failed = UINT64_MAX;     // repair target; UINT64_MAX when n/a
  std::vector<uint64_t> available;  // block-id bitset, 64 ids per word

  bool operator==(const PlanKey&) const = default;
};

struct PlanKeyHash {
  size_t operator()(const PlanKey& k) const;
};

// One compiled schedule. Rows are outputs (chunks for decode paths, stripe
// positions for repair, n·N stripes for encode); each is either a verbatim
// copy or a run of (coefficient, source) terms into the fused kernel.
// Sources address as bases[slot] + pos·chunk + offset, where `bases` is the
// per-call table of block base pointers (for encode: one slot, the file,
// with pos = chunk index). Plans are immutable once built — execution is
// lock-free and allocation-free (a thread-local span scratch aside).
class CodecPlan {
 public:
  struct Source {
    uint32_t slot;  // index into source_blocks() / the bases table
    uint32_t pos;   // stripe position within the block (chunk id for encode)
  };
  struct Row {
    uint32_t out = 0;          // output row index (chunk id or stripe pos)
    int32_t copy_slot = -1;    // ≥ 0: verbatim copy from (copy_slot, copy_pos)
    uint32_t copy_pos = 0;
    uint32_t begin = 0;        // combo terms [begin, end) when copy_slot < 0
    uint32_t end = 0;
    bool solvable = true;      // false: this output is outside the row space
  };

  CodecPlan() = default;

  size_t num_rows() const { return rows_.size(); }
  const Row& row(size_t r) const { return rows_[r]; }
  // True when every output row is solvable; decode/repair require this,
  // read_range only needs the rows overlapping the request.
  bool fully_solvable() const { return unsolvable_ == 0; }
  // Block ids whose bytes execution reads, in bases-table order. For the
  // engine-owned encode plan this is empty (the single source is the file).
  const std::vector<size_t>& source_blocks() const { return src_blocks_; }
  // The combo terms one row reads (empty for verbatim-copy rows, whose only
  // source is (copy_slot, copy_pos)). Lets a caller that stages blocks
  // itself — the striped client — fetch exactly the (slot, pos) ranges a
  // row will touch before handing run_row a bases table.
  std::span<const Source> row_sources(const Row& row) const {
    if (row.copy_slot >= 0) return {};
    return std::span<const Source>(srcs_.data() + row.begin,
                                   row.end - row.begin);
  }
  // Wall-clock seconds spent compiling (solve + layout), for the counters.
  double plan_seconds() const { return plan_seconds_; }

  // Executes one row over `len` bytes: reads sources at chunk offset
  // `src_off`, writes dst[0, len). The copy/combo branch and the zero-term
  // zeroing case match the uncached path byte-for-byte.
  void run_row(const Row& row, uint8_t* dst, const uint8_t* const* bases,
               size_t chunk, size_t src_off, size_t len) const;

  // Work-unit byte cap for execute_batch: rows split into tiles of at most
  // this many bytes, so a huge cell still load-balances across pool
  // runners.
  static constexpr size_t kExecTile = 256 * 1024;
  // Cache budget for one tile's source working set: the tile shrinks below
  // kExecTile until (max sources per row + 1) · tile fits this budget, and
  // units run slice-major, so a tile's sources are fetched once and reused
  // by every row instead of each row streaming the whole cell from memory.
  static constexpr size_t kExecSourceBudget = size_t{512} << 10;

  // Executes EVERY row of the plan over cells of `cell` bytes, fanning
  // rows × cache-line-aligned tiles (≤ kExecTile bytes each) over the
  // rt:: work-stealing pool. dst_of(row) returns the base pointer of that
  // row's output cell; sources address as bases[slot] + pos·cell + offset.
  //
  // This is THE batched execution layer: a batch of B stripes of chunk c
  // is one execute_batch call with cell = B·c over position-major buffers
  // (util/bytes.h interleave_stripes) — each fused mul_region_multi call
  // then covers up to kExecTile contiguous bytes of B stripes instead of
  // B per-stripe calls of c bytes, which is where the SIMD kernels' 64 KiB
  // sweet spot lives. Because the GF kernels are bytewise, the result is
  // bit-identical to executing each stripe alone, for any cell/batch/
  // thread count. All engine data paths (batch of 1 included) route
  // through here; threads == 1 degrades to a plain serial loop over the
  // same tiles. Rows must all be solvable (checked by callers).
  void execute_batch(const uint8_t* const* bases, size_t cell, size_t threads,
                     const std::function<uint8_t*(const Row&)>& dst_of) const;

 private:
  friend class CodecEngine;  // sole builder

  std::vector<Row> rows_;
  std::vector<gf::Elem> coeffs_;  // flattened terms, parallel to srcs_
  std::vector<Source> srcs_;
  std::vector<size_t> src_blocks_;
  size_t unsolvable_ = 0;
  double plan_seconds_ = 0;
};

struct PlanCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;       // lookups that had to compile (cache enabled)
  uint64_t evictions = 0;
  uint64_t entries = 0;      // currently resident plans
  uint64_t capacity = 0;     // 0 = caching disabled
};

// Sharded, thread-safe LRU over shared_ptr<const CodecPlan>. Shards cut
// lock contention when many threads decode concurrently (a recovery storm
// on the pool); within a shard, a plain mutex + intrusive list LRU.
// Entries pin nothing: callers hold shared_ptrs, so an evicted plan stays
// valid for in-flight executions and is freed when the last user drops it.
class PlanCache {
 public:
  explicit PlanCache(size_t capacity, size_t shards = 8);
  ~PlanCache();

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  bool enabled() const { return capacity_ > 0; }
  size_t capacity() const { return capacity_; }

  // The cached plan, or nullptr (also when disabled). Promotes to MRU.
  std::shared_ptr<const CodecPlan> get(const PlanKey& key);

  // Inserts (or replaces) a plan, evicting LRU entries past capacity.
  // No-op when disabled.
  void put(const PlanKey& key, std::shared_ptr<const CodecPlan> plan);

  PlanCacheStats stats() const;

  // Drops every entry and zeroes the counters; with `capacity` ≥ 0 also
  // resizes (0 disables). Tests and benchmarks use this to compare cached
  // vs uncached planning within one process; not safe against concurrent
  // get/put on the same instance mid-resize… it locks all shards, so it is
  // safe, just not meaningful while a storm is running.
  void reset(size_t capacity);
  void clear() { reset(capacity_); }

  // Process-wide cache shared by every engine. First use reads
  // GALLOPER_PLAN_CACHE ("off"/"0" disables, integer sets the entry
  // capacity, default 1024).
  static PlanCache& global();

 private:
  struct Shard;
  Shard& shard_of(const PlanKey& key);

  size_t capacity_;            // total entries across shards
  size_t per_shard_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

// Per-op plan-vs-execute accounting (process-wide, monotone): how long was
// spent compiling plans vs moving bytes on each path. The CLI --stats flag
// and the benches read these; engines record into them unconditionally —
// two steady_clock reads per call, noise next to the byte work.
struct PlanOpStats {
  uint64_t plan_ns = 0;
  uint64_t plans = 0;   // plans compiled (cache misses + uncached builds)
  uint64_t exec_ns = 0;
  uint64_t execs = 0;   // data-path executions
};

PlanOpStats plan_op_stats(PlanOp op);
void record_plan_time(PlanOp op, uint64_t ns);
void record_exec_time(PlanOp op, uint64_t ns);
void reset_plan_op_stats();

// Batched-execution accounting (process-wide, monotone): every
// execute_batch call records how many plan rows it dispatched and how many
// output bytes it wrote. calls vs rows shows the fan-in (rows per kernel
// dispatch round); bytes/ns is the executor's aggregate throughput. The
// CLI prints these under --stats.
struct BatchExecStats {
  uint64_t calls = 0;  // execute_batch invocations
  uint64_t rows = 0;   // plan rows executed
  uint64_t bytes = 0;  // output bytes written
  uint64_t ns = 0;     // wall time inside execute_batch
};

BatchExecStats batch_exec_stats();
void reset_batch_exec_stats();

}  // namespace galloper::codes
