// WideReedSolomonCode: a systematic (k, r) Reed-Solomon code over GF(2^16),
// for deployments wider than the 256-block limit of GF(2^8) (the paper's
// Sec. VI remark: "For larger values of k, l, g, we can also increase the
// size of the finite field").
//
// Built on a Cauchy matrix (any square submatrix of a Cauchy matrix is
// invertible, so [I; C] is MDS without needing a kN×kN systematization
// step). Data are interpreted as 16-bit symbols, so all sizes are in whole
// symbols (block bytes must be even).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "gf/gf65536.h"
#include "util/bytes.h"

namespace galloper::codes {

class WideReedSolomonCode {
 public:
  // Requires k ≥ 1, k + r ≤ 65536.
  WideReedSolomonCode(size_t k, size_t r);

  std::string name() const;
  size_t k() const { return k_; }
  size_t r() const { return r_; }
  size_t num_blocks() const { return k_ + r_; }
  size_t guaranteed_tolerance() const { return r_; }

  // File size must be a positive multiple of 2k bytes.
  std::vector<Buffer> encode(ConstByteSpan file) const;

  // Decode from any ≥ k blocks.
  std::optional<Buffer> decode(
      const std::map<size_t, ConstByteSpan>& blocks) const;

  // Rebuild one block from any ≥ k helpers.
  std::optional<Buffer> repair_block(
      size_t failed, const std::map<size_t, ConstByteSpan>& helpers) const;

  // Coefficient of data block j in block i's contents (identity rows for
  // i < k, Cauchy rows otherwise). Exposed for tests.
  gf16::Elem coefficient(size_t block, size_t j) const;

 private:
  // Solves for the k data symbol-vectors from the given blocks; returns
  // per-data-block coefficient rows over the provided block order.
  std::optional<std::vector<std::vector<gf16::Elem>>> decode_rows(
      const std::vector<size_t>& ids) const;

  size_t k_;
  size_t r_;
};

}  // namespace galloper::codes
