#include "codes/engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <functional>

#include "gf/region.h"
#include "la/solve.h"
#include "rt/pool.h"
#include "rt/slicer.h"
#include "util/check.h"

namespace galloper::codes {

namespace {

// Cache-tile granularity for delta-propagation in update_chunk; matches the
// fused kernels' internal tiling so a delta tile stays in L1 while every
// dependent parity tile is patched.
constexpr size_t kUpdateTile = 32 * 1024;

// Plan-cache keys carry the engine's identity, assigned once per
// construction (copies share it: same immutable generator, same plans).
std::atomic<uint64_t> g_next_engine_id{1};

uint64_t now_ns() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Records the byte-moving phase of a data path into the per-op counters on
// scope exit. Constructed AFTER planning/solvability checks so plan and
// execute time never mix.
class ExecTimer {
 public:
  explicit ExecTimer(PlanOp op) : op_(op), t0_(now_ns()) {}
  ~ExecTimer() { record_exec_time(op_, now_ns() - t0_); }

 private:
  PlanOp op_;
  uint64_t t0_;
};

// Fans body(row, lo, hi) over `threads` pool runners: `rows` output rows ×
// cache-line-aligned byte slices of [0, chunk). With rows >= threads each
// row is one unit (no intra-row split needed); otherwise every row splits
// into enough slices to feed all runners. threads == 1 degrades to a plain
// nested loop over the same units, so serial and parallel results are
// byte-identical by construction. Only read_range still uses this (its rows
// are clipped to the request); the whole-row paths run through
// CodecPlan::execute_batch.
void for_rows_sliced(size_t rows, size_t chunk, size_t threads,
                     const std::function<void(size_t, size_t, size_t)>& body) {
  if (rows == 0 || chunk == 0) return;
  const size_t per_row = rows >= threads ? 1 : (threads + rows - 1) / rows;
  const auto slices = rt::slice_ranges(chunk, per_row, rt::kCacheLine);
  rt::parallel_for(rt::ThreadPool::global(), rows * slices.size(), threads,
                   [&](size_t unit) {
                     const rt::SliceRange& s = slices[unit % slices.size()];
                     body(unit / slices.size(), s.lo, s.hi);
                   });
}

// Base-pointer table for a pattern plan: one entry per source block, in
// source_blocks() order. The only per-call setup execution needs.
std::vector<const uint8_t*> bases_of(
    const CodecPlan& plan, const std::map<size_t, ConstByteSpan>& blocks) {
  std::vector<const uint8_t*> bases;
  bases.reserve(plan.source_blocks().size());
  for (size_t b : plan.source_blocks()) {
    const auto it = blocks.find(b);
    GALLOPER_CHECK_MSG(it != blocks.end(),
                       "plan needs block " << b << " which is not provided");
    bases.push_back(it->second.data());
  }
  return bases;
}

}  // namespace

CodecEngine::CodecEngine(la::Matrix stripe_generator, size_t num_blocks,
                         size_t stripes_per_block,
                         std::vector<StripeRef> chunk_pos)
    : generator_(std::move(stripe_generator)),
      num_blocks_(num_blocks),
      stripes_per_block_(stripes_per_block),
      engine_id_(g_next_engine_id.fetch_add(1, std::memory_order_relaxed)),
      chunk_pos_(std::move(chunk_pos)) {
  GALLOPER_CHECK(num_blocks_ > 0 && stripes_per_block_ > 0);
  GALLOPER_CHECK_MSG(
      generator_.rows() == num_blocks_ * stripes_per_block_,
      "generator rows " << generator_.rows() << " != n·N "
                        << num_blocks_ * stripes_per_block_);
  GALLOPER_CHECK_MSG(generator_.cols() == chunk_pos_.size(),
                     "generator cols " << generator_.cols()
                                       << " != chunk count "
                                       << chunk_pos_.size());
  block_chunks_.assign(num_blocks_,
                       std::vector<size_t>(stripes_per_block_, SIZE_MAX));
  for (size_t c = 0; c < chunk_pos_.size(); ++c) {
    const StripeRef ref = chunk_pos_[c];
    GALLOPER_CHECK(ref.block < num_blocks_ && ref.pos < stripes_per_block_);
    GALLOPER_CHECK_MSG(block_chunks_[ref.block][ref.pos] == SIZE_MAX,
                       "two chunks mapped to the same stripe");
    block_chunks_[ref.block][ref.pos] = c;
    // The systematic property: chunk c's stripe row must be the unit e_c.
    const auto row = generator_.row(ref.block * stripes_per_block_ + ref.pos);
    for (size_t j = 0; j < row.size(); ++j)
      GALLOPER_CHECK_MSG(row[j] == (j == c ? 1 : 0),
                         "chunk " << c << " stripe row is not systematic");
  }

  sparse_rows_.resize(generator_.rows());
  chunk_consumers_.resize(chunk_pos_.size());
  for (size_t r = 0; r < generator_.rows(); ++r) {
    const auto row = generator_.row(r);
    for (size_t j = 0; j < row.size(); ++j)
      if (row[j] != 0)
        sparse_rows_[r].push_back({static_cast<uint32_t>(j), row[j]});
  }
  // Column view over PARITY stripes only (the data stripe of a chunk is
  // updated directly, not via delta).
  for (size_t b = 0; b < num_blocks_; ++b) {
    for (size_t p = 0; p < stripes_per_block_; ++p) {
      if (block_chunks_[b][p] != SIZE_MAX) continue;
      const size_t r = b * stripes_per_block_ + p;
      for (const Term& t : sparse_rows_[r])
        chunk_consumers_[t.col].push_back(
            {static_cast<uint32_t>(r), t.coeff});
    }
  }

  // Compile the encode schedule once: sources address the file as slot 0
  // with pos = chunk index, so execution is the same run_row dispatch every
  // other path uses.
  const uint64_t t0 = now_ns();
  auto plan = std::make_shared<CodecPlan>();
  plan->rows_.reserve(generator_.rows());
  for (size_t r = 0; r < generator_.rows(); ++r) {
    CodecPlan::Row row;
    row.out = static_cast<uint32_t>(r);
    const size_t direct =
        block_chunks_[r / stripes_per_block_][r % stripes_per_block_];
    if (direct != SIZE_MAX) {
      row.copy_slot = 0;
      row.copy_pos = static_cast<uint32_t>(direct);
    } else {
      row.begin = static_cast<uint32_t>(plan->srcs_.size());
      for (const Term& t : sparse_rows_[r]) {
        plan->coeffs_.push_back(t.coeff);
        plan->srcs_.push_back({0, t.col});
      }
      row.end = static_cast<uint32_t>(plan->srcs_.size());
    }
    plan->rows_.push_back(row);
  }
  const uint64_t ns = now_ns() - t0;
  plan->plan_seconds_ = static_cast<double>(ns) * 1e-9;
  record_plan_time(PlanOp::kEncode, ns);
  encode_plan_ = std::move(plan);
}

size_t CodecEngine::data_stripes_in_block(size_t block) const {
  GALLOPER_CHECK(block < num_blocks_);
  size_t n = 0;
  for (size_t c : block_chunks_[block])
    if (c != SIZE_MAX) ++n;
  return n;
}

const std::vector<size_t>& CodecEngine::chunks_of_block(size_t block) const {
  GALLOPER_CHECK(block < num_blocks_);
  return block_chunks_[block];
}

// ---- Plan compilation -----------------------------------------------------

la::Matrix CodecEngine::rows_of_blocks(
    const std::vector<size_t>& blocks) const {
  std::vector<size_t> rows;
  rows.reserve(blocks.size() * stripes_per_block_);
  for (size_t b : blocks) {
    GALLOPER_CHECK(b < num_blocks_);
    for (size_t p = 0; p < stripes_per_block_; ++p)
      rows.push_back(b * stripes_per_block_ + p);
  }
  return generator_.select_rows(rows);
}

PlanKey CodecEngine::make_key(PlanOp op, const std::vector<size_t>& ids,
                              size_t failed) const {
  PlanKey key;
  key.engine_id = engine_id_;
  key.op = op;
  key.failed = failed == SIZE_MAX ? UINT64_MAX : static_cast<uint64_t>(failed);
  key.available.assign((num_blocks_ + 63) / 64, 0);
  for (size_t b : ids) key.available[b >> 6] |= uint64_t{1} << (b & 63);
  return key;
}

std::shared_ptr<const CodecPlan> CodecEngine::compile_plan(
    PlanOp op, const std::vector<size_t>& ids, size_t failed) const {
  const uint64_t t0 = now_ns();
  auto plan = std::make_shared<CodecPlan>();
  plan->src_blocks_ = ids;
  // Slot of each available block in the bases table (== its index in ids;
  // basis rows are laid out in the same order, so combination index s maps
  // to slot s / N directly).
  std::vector<uint32_t> slot(num_blocks_, UINT32_MAX);
  for (size_t i = 0; i < ids.size(); ++i)
    slot[ids[i]] = static_cast<uint32_t>(i);

  // The one Gaussian elimination of the pattern; every output row below is
  // a cheap back-substitution query against it.
  const la::RowspaceSolver solver(rows_of_blocks(ids));

  const auto add_combo = [&](uint32_t out, std::span<const gf::Elem> target) {
    CodecPlan::Row row;
    row.out = out;
    row.begin = row.end = static_cast<uint32_t>(plan->srcs_.size());
    if (const auto coeffs = solver.express(target)) {
      for (size_t s = 0; s < coeffs->size(); ++s) {
        if ((*coeffs)[s] == 0) continue;
        plan->coeffs_.push_back((*coeffs)[s]);
        plan->srcs_.push_back(
            {static_cast<uint32_t>(s / stripes_per_block_),
             static_cast<uint32_t>(s % stripes_per_block_)});
      }
      row.end = static_cast<uint32_t>(plan->srcs_.size());
    } else {
      row.solvable = false;
      ++plan->unsolvable_;
    }
    plan->rows_.push_back(row);
  };

  switch (op) {
    case PlanOp::kDecode: {
      // Every chunk is a combination — even one sitting verbatim in an
      // available block — mirroring the full decode the paper measures.
      std::vector<gf::Elem> unit(num_chunks(), 0);
      for (size_t c = 0; c < num_chunks(); ++c) {
        unit[c] = 1;
        add_combo(static_cast<uint32_t>(c), unit);
        unit[c] = 0;
      }
      break;
    }
    case PlanOp::kDecodeFast: {
      // Copy when the chunk's systematic stripe is available, solve
      // otherwise. Solvability is tracked per row so read_range can serve
      // a recoverable range even when some other chunk of the pattern is
      // not recoverable.
      std::vector<gf::Elem> unit(num_chunks(), 0);
      for (size_t c = 0; c < num_chunks(); ++c) {
        const StripeRef ref = chunk_pos_[c];
        if (slot[ref.block] != UINT32_MAX) {
          CodecPlan::Row row;
          row.out = static_cast<uint32_t>(c);
          row.copy_slot = static_cast<int32_t>(slot[ref.block]);
          row.copy_pos = static_cast<uint32_t>(ref.pos);
          plan->rows_.push_back(row);
          continue;
        }
        unit[c] = 1;
        add_combo(static_cast<uint32_t>(c), unit);
        unit[c] = 0;
      }
      break;
    }
    case PlanOp::kRepair: {
      for (size_t p = 0; p < stripes_per_block_; ++p)
        add_combo(static_cast<uint32_t>(p),
                  generator_.row(failed * stripes_per_block_ + p));
      break;
    }
    default:
      GALLOPER_CHECK_MSG(false, "not a pattern-compiled op");
  }

  const uint64_t ns = now_ns() - t0;
  plan->plan_seconds_ = static_cast<double>(ns) * 1e-9;
  record_plan_time(op, ns);
  return plan;
}

std::shared_ptr<const CodecPlan> CodecEngine::pattern_plan(
    PlanOp op, const std::vector<size_t>& ids, size_t failed) const {
  PlanCache& cache = PlanCache::global();
  if (!cache.enabled()) return compile_plan(op, ids, failed);
  const PlanKey key = make_key(op, ids, failed);
  if (auto hit = cache.get(key)) return hit;
  auto plan = compile_plan(op, ids, failed);
  cache.put(key, plan);
  return plan;
}

std::vector<size_t> CodecEngine::validate_blocks(
    const std::map<size_t, ConstByteSpan>& blocks, size_t* chunk) const {
  std::vector<size_t> ids;
  ids.reserve(blocks.size());
  size_t block_bytes = SIZE_MAX;
  for (const auto& [id, data] : blocks) {
    GALLOPER_CHECK(id < num_blocks_);
    ids.push_back(id);
    if (block_bytes == SIZE_MAX) block_bytes = data.size();
    GALLOPER_CHECK_MSG(data.size() == block_bytes,
                       "blocks of unequal size");
  }
  GALLOPER_CHECK(block_bytes % stripes_per_block_ == 0);
  *chunk = block_bytes / stripes_per_block_;
  return ids;  // std::map keys: already sorted
}

std::shared_ptr<const CodecPlan> CodecEngine::plan_decode(
    const std::vector<size_t>& available) const {
  std::vector<size_t> ids = available;
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return pattern_plan(PlanOp::kDecode, ids, SIZE_MAX);
}

std::shared_ptr<const CodecPlan> CodecEngine::plan_decode_fast(
    const std::vector<size_t>& available) const {
  std::vector<size_t> ids = available;
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return pattern_plan(PlanOp::kDecodeFast, ids, SIZE_MAX);
}

std::shared_ptr<const CodecPlan> CodecEngine::plan_repair(
    size_t failed, const std::vector<size_t>& helpers) const {
  GALLOPER_CHECK(failed < num_blocks_);
  std::vector<size_t> ids = helpers;
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  GALLOPER_CHECK_MSG(
      !std::binary_search(ids.begin(), ids.end(), failed),
      "failed block offered as its own helper");
  return pattern_plan(PlanOp::kRepair, ids, failed);
}

// ---- Encode ---------------------------------------------------------------

std::vector<Buffer> CodecEngine::encode_impl(ConstByteSpan file,
                                             size_t threads) const {
  GALLOPER_CHECK_MSG(!file.empty() && file.size() % num_chunks() == 0,
                     "file size " << file.size()
                                  << " must be a positive multiple of "
                                  << num_chunks());
  const size_t chunk = file.size() / num_chunks();
  // Uninitialized output: every plan row writes its bytes exactly once
  // (data stripes copied, parity stripes via the overwrite-mode kernel).
  std::vector<Buffer> blocks;
  blocks.reserve(num_blocks_);
  for (size_t b = 0; b < num_blocks_; ++b)
    blocks.emplace_back(stripes_per_block_ * chunk);

  const CodecPlan& plan = *encode_plan_;
  const uint8_t* const bases[1] = {file.data()};
  const ExecTimer timer(PlanOp::kEncode);
  plan.execute_batch(bases, chunk, threads, [&](const CodecPlan::Row& row) {
    return blocks[row.out / stripes_per_block_].data() +
           (row.out % stripes_per_block_) * chunk;
  });
  return blocks;
}

std::vector<Buffer> CodecEngine::encode(ConstByteSpan file) const {
  return encode_impl(file, 1);
}

std::vector<Buffer> CodecEngine::encode_parallel(ConstByteSpan file,
                                                 size_t threads) const {
  GALLOPER_CHECK_MSG(threads >= 1, "need at least one thread");
  return encode_impl(file, threads);
}

// ---- Decode ---------------------------------------------------------------

std::optional<Buffer> CodecEngine::decode_impl(
    const std::map<size_t, ConstByteSpan>& blocks, size_t threads) const {
  if (blocks.empty()) return std::nullopt;
  size_t chunk = 0;
  const std::vector<size_t> ids = validate_blocks(blocks, &chunk);

  const auto plan = pattern_plan(PlanOp::kDecode, ids, SIZE_MAX);
  if (!plan->fully_solvable()) return std::nullopt;

  const auto bases = bases_of(*plan, blocks);
  Buffer file(num_chunks() * chunk);  // every row written below
  const ExecTimer timer(PlanOp::kDecode);
  plan->execute_batch(bases.data(), chunk, threads,
                      [&](const CodecPlan::Row& row) {
                        return file.data() + row.out * chunk;
                      });
  return file;
}

std::optional<Buffer> CodecEngine::decode(
    const std::map<size_t, ConstByteSpan>& blocks) const {
  return decode_impl(blocks, 1);
}

std::optional<Buffer> CodecEngine::decode_parallel(
    const std::map<size_t, ConstByteSpan>& blocks, size_t threads) const {
  GALLOPER_CHECK_MSG(threads >= 1, "need at least one thread");
  return decode_impl(blocks, threads);
}

std::optional<Buffer> CodecEngine::decode_fast_impl(
    const std::map<size_t, ConstByteSpan>& blocks, size_t threads) const {
  if (blocks.empty()) return std::nullopt;
  size_t chunk = 0;
  const std::vector<size_t> ids = validate_blocks(blocks, &chunk);

  // The plan resolves solvability BEFORE the (uninitialized) output is
  // touched, so an undecodable set returns nullopt without wasted copying.
  const auto plan = pattern_plan(PlanOp::kDecodeFast, ids, SIZE_MAX);
  if (!plan->fully_solvable()) return std::nullopt;

  // One pass over all chunks: verbatim copies (which dominate — the copy
  // path is memory-bandwidth-bound and still gains on multi-socket parts)
  // and solved combinations execute in the same row fan-out.
  const auto bases = bases_of(*plan, blocks);
  Buffer file(num_chunks() * chunk);
  const ExecTimer timer(PlanOp::kDecodeFast);
  plan->execute_batch(bases.data(), chunk, threads,
                      [&](const CodecPlan::Row& row) {
                        return file.data() + row.out * chunk;
                      });
  return file;
}

std::optional<Buffer> CodecEngine::decode_fast(
    const std::map<size_t, ConstByteSpan>& blocks) const {
  return decode_fast_impl(blocks, 1);
}

std::optional<Buffer> CodecEngine::decode_fast_parallel(
    const std::map<size_t, ConstByteSpan>& blocks, size_t threads) const {
  GALLOPER_CHECK_MSG(threads >= 1, "need at least one thread");
  return decode_fast_impl(blocks, threads);
}

// ---- Repair ---------------------------------------------------------------

std::optional<Buffer> CodecEngine::repair_execute(
    const CodecPlan& plan, const std::map<size_t, ConstByteSpan>& helpers,
    size_t chunk, size_t threads) const {
  if (!plan.fully_solvable()) return std::nullopt;
  const auto bases = bases_of(plan, helpers);
  Buffer out(stripes_per_block_ * chunk);  // every stripe written below
  const ExecTimer timer(PlanOp::kRepair);
  plan.execute_batch(bases.data(), chunk, threads,
                     [&](const CodecPlan::Row& row) {
                       return out.data() + row.out * chunk;
                     });
  return out;
}

std::optional<Buffer> CodecEngine::repair_block_impl(
    size_t failed, const std::map<size_t, ConstByteSpan>& helpers,
    size_t threads) const {
  GALLOPER_CHECK(failed < num_blocks_);
  GALLOPER_CHECK_MSG(helpers.find(failed) == helpers.end(),
                     "failed block offered as its own helper");
  if (helpers.empty()) return std::nullopt;
  size_t chunk = 0;
  const std::vector<size_t> ids = validate_blocks(helpers, &chunk);
  const auto plan = pattern_plan(PlanOp::kRepair, ids, failed);
  return repair_execute(*plan, helpers, chunk, threads);
}

std::optional<Buffer> CodecEngine::repair_block(
    size_t failed, const std::map<size_t, ConstByteSpan>& helpers) const {
  return repair_block_impl(failed, helpers, 1);
}

std::optional<Buffer> CodecEngine::repair_block_parallel(
    size_t failed, const std::map<size_t, ConstByteSpan>& helpers,
    size_t threads) const {
  GALLOPER_CHECK_MSG(threads >= 1, "need at least one thread");
  return repair_block_impl(failed, helpers, threads);
}

std::optional<Buffer> CodecEngine::repair_block_with_plan(
    const CodecPlan& plan, const std::map<size_t, ConstByteSpan>& helpers,
    size_t threads) const {
  GALLOPER_CHECK_MSG(threads >= 1, "need at least one thread");
  if (helpers.empty()) return std::nullopt;
  size_t chunk = 0;
  (void)validate_blocks(helpers, &chunk);
  return repair_execute(plan, helpers, chunk, threads);
}

// ---- Batched forms --------------------------------------------------------
//
// The per-stripe implementations are already cell-size-agnostic: a batch of
// B stripes in position-major layout IS a single "stripe" whose chunk is
// B·c, and the bytewise GF kernels make the two readings coincide. The
// wrappers therefore only validate the batch geometry (so a size mismatch
// fails here, with a batch-aware message, instead of producing a misaligned
// interleave) and delegate.

std::vector<Buffer> CodecEngine::encode_batch(ConstByteSpan file, size_t batch,
                                              size_t threads) const {
  GALLOPER_CHECK_MSG(batch >= 1 && threads >= 1,
                     "batch and threads must be >= 1");
  GALLOPER_CHECK_MSG(
      !file.empty() && file.size() % (num_chunks() * batch) == 0,
      "batched file size " << file.size()
                           << " must be a positive multiple of num_chunks·"
                              "batch = "
                           << num_chunks() * batch);
  return encode_impl(file, threads);
}

std::optional<Buffer> CodecEngine::decode_batch(
    const std::map<size_t, ConstByteSpan>& blocks, size_t batch,
    size_t threads) const {
  GALLOPER_CHECK_MSG(batch >= 1 && threads >= 1,
                     "batch and threads must be >= 1");
  if (blocks.empty()) return std::nullopt;
  GALLOPER_CHECK_MSG(
      blocks.begin()->second.size() % (stripes_per_block_ * batch) == 0,
      "batched block size " << blocks.begin()->second.size()
                            << " must be a multiple of stripes_per_block·"
                               "batch = "
                            << stripes_per_block_ * batch);
  return decode_impl(blocks, threads);
}

std::optional<Buffer> CodecEngine::decode_fast_batch(
    const std::map<size_t, ConstByteSpan>& blocks, size_t batch,
    size_t threads) const {
  GALLOPER_CHECK_MSG(batch >= 1 && threads >= 1,
                     "batch and threads must be >= 1");
  if (blocks.empty()) return std::nullopt;
  GALLOPER_CHECK_MSG(
      blocks.begin()->second.size() % (stripes_per_block_ * batch) == 0,
      "batched block size " << blocks.begin()->second.size()
                            << " must be a multiple of stripes_per_block·"
                               "batch = "
                            << stripes_per_block_ * batch);
  return decode_fast_impl(blocks, threads);
}

std::optional<Buffer> CodecEngine::repair_block_batch(
    size_t failed, const std::map<size_t, ConstByteSpan>& helpers,
    size_t batch, size_t threads) const {
  GALLOPER_CHECK_MSG(batch >= 1 && threads >= 1,
                     "batch and threads must be >= 1");
  if (helpers.empty()) return std::nullopt;
  GALLOPER_CHECK_MSG(
      helpers.begin()->second.size() % (stripes_per_block_ * batch) == 0,
      "batched helper size " << helpers.begin()->second.size()
                             << " must be a multiple of stripes_per_block·"
                                "batch = "
                             << stripes_per_block_ * batch);
  return repair_block_impl(failed, helpers, threads);
}

// ---- Ranged read ----------------------------------------------------------

std::optional<Buffer> CodecEngine::read_range_impl(
    const std::map<size_t, ConstByteSpan>& blocks, size_t offset,
    size_t length, size_t threads) const {
  if (blocks.empty()) return std::nullopt;
  size_t chunk = 0;
  const std::vector<size_t> ids = validate_blocks(blocks, &chunk);
  const size_t file_bytes = num_chunks() * chunk;
  GALLOPER_CHECK_MSG(offset + length <= file_bytes,
                     "range [" << offset << ", " << offset + length
                               << ") beyond file size " << file_bytes);
  if (length == 0) return Buffer{};

  const size_t first_chunk = offset / chunk;
  const size_t last_chunk = (offset + length - 1) / chunk;

  // Shares the decode_fast plan (identical per-chunk schedule). Solvability
  // is per row, so only the chunks OVERLAPPING the request gate the read —
  // an unrecoverable chunk elsewhere in the file is irrelevant.
  const auto plan = pattern_plan(PlanOp::kDecodeFast, ids, SIZE_MAX);
  for (size_t c = first_chunk; c <= last_chunk; ++c)
    if (!plan->row(c).solvable) return std::nullopt;

  // One pass over the covered chunks: available ones copy their overlap
  // with the request, missing ones reconstruct ONLY the overlapping bytes
  // straight into the output (no full-chunk scratch buffer).
  const auto bases = bases_of(*plan, blocks);
  Buffer range(length);  // every byte covered by exactly one chunk overlap
  const ExecTimer timer(PlanOp::kDecodeFast);
  for_rows_sliced(
      last_chunk - first_chunk + 1, chunk, threads,
      [&](size_t r, size_t slo, size_t shi) {
        const size_t c = first_chunk + r;
        // Intersection of this byte slice with the requested range, in
        // file coordinates.
        const size_t lo = std::max(offset, c * chunk + slo);
        const size_t hi = std::min(offset + length, c * chunk + shi);
        if (lo >= hi) return;
        plan->run_row(plan->row(c), range.data() + (lo - offset),
                      bases.data(), chunk, lo - c * chunk, hi - lo);
      });
  return range;
}

std::optional<Buffer> CodecEngine::read_range(
    const std::map<size_t, ConstByteSpan>& blocks, size_t offset,
    size_t length) const {
  return read_range_impl(blocks, offset, length, 1);
}

std::optional<Buffer> CodecEngine::read_range_parallel(
    const std::map<size_t, ConstByteSpan>& blocks, size_t offset,
    size_t length, size_t threads) const {
  GALLOPER_CHECK_MSG(threads >= 1, "need at least one thread");
  return read_range_impl(blocks, offset, length, threads);
}

// ---- In-place update ------------------------------------------------------

std::vector<size_t> CodecEngine::update_chunk_impl(std::vector<Buffer>& blocks,
                                                   size_t chunk,
                                                   ConstByteSpan new_data,
                                                   size_t threads) const {
  GALLOPER_CHECK(chunk < num_chunks());
  GALLOPER_CHECK_MSG(blocks.size() == num_blocks_,
                     "update needs all current blocks");
  const size_t chunk_bytes = blocks[0].size() / stripes_per_block_;
  for (const auto& b : blocks)
    GALLOPER_CHECK_MSG(b.size() == stripes_per_block_ * chunk_bytes,
                       "blocks of unequal size in update");
  GALLOPER_CHECK_MSG(new_data.size() == chunk_bytes,
                     "update data must be exactly one chunk: "
                         << new_data.size() << " vs " << chunk_bytes);

  const StripeRef home = chunk_pos_[chunk];
  ByteSpan stored(blocks[home.block].data() + home.pos * chunk_bytes,
                  chunk_bytes);
  // delta = old ⊕ new, then parity' = parity ⊕ coeff·delta. The schedule —
  // which parity stripes consume this chunk, with which coefficients — is
  // chunk_consumers_, compiled at engine construction.
  Buffer delta(new_data.begin(), new_data.end());
  gf::xor_region(delta, stored);
  if (std::all_of(delta.begin(), delta.end(),
                  [](uint8_t b) { return b == 0; }))
    return {};  // no change, no I/O

  std::vector<size_t> touched{home.block};
  std::copy(new_data.begin(), new_data.end(), stored.begin());
  for (const Term& t : chunk_consumers_[chunk])
    touched.push_back(t.col / stripes_per_block_);  // Term reused: col = row
  // Each runner owns a cache-line-aligned byte slice of the chunk and
  // patches EVERY dependent parity stripe within it (same-offset bytes of
  // different stripes never overlap, so slices are the only partition
  // needed). Inside a slice the delta propagation is tiled so one
  // L1-resident piece of delta patches all dependents before moving on.
  const ExecTimer timer(PlanOp::kUpdate);
  const auto slices = rt::slice_ranges(chunk_bytes, threads, rt::kCacheLine);
  rt::parallel_for(
      rt::ThreadPool::global(), slices.size(), threads, [&](size_t si) {
        const rt::SliceRange& s = slices[si];
        for (size_t off = s.lo; off < s.hi; off += kUpdateTile) {
          const size_t len = std::min(kUpdateTile, s.hi - off);
          const ConstByteSpan dslice(delta.data() + off, len);
          for (const Term& t : chunk_consumers_[chunk]) {
            const size_t b = t.col / stripes_per_block_;
            const size_t p = t.col % stripes_per_block_;
            gf::mul_acc_region(
                ByteSpan(blocks[b].data() + p * chunk_bytes + off, len),
                t.coeff, dslice);
          }
        }
      });
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  return touched;
}

std::vector<size_t> CodecEngine::update_chunk(std::vector<Buffer>& blocks,
                                              size_t chunk,
                                              ConstByteSpan new_data) const {
  return update_chunk_impl(blocks, chunk, new_data, 1);
}

std::vector<size_t> CodecEngine::update_chunk_parallel(
    std::vector<Buffer>& blocks, size_t chunk, ConstByteSpan new_data,
    size_t threads) const {
  GALLOPER_CHECK_MSG(threads >= 1, "need at least one thread");
  return update_chunk_impl(blocks, chunk, new_data, threads);
}

// ---- Oracles --------------------------------------------------------------

bool CodecEngine::decodable(
    const std::vector<size_t>& available_blocks) const {
  if (available_blocks.empty()) return num_chunks() == 0;
  return la::rank(rows_of_blocks(available_blocks)) == num_chunks();
}

bool CodecEngine::can_repair(size_t failed,
                             const std::vector<size_t>& helpers) const {
  GALLOPER_CHECK(failed < num_blocks_);
  if (helpers.empty()) return false;
  const la::Matrix basis = rows_of_blocks(helpers);
  const la::Matrix targets = rows_of_blocks({failed});
  return la::express_in_rowspace(basis, targets).has_value();
}

size_t CodecEngine::row_support(size_t block, size_t pos) const {
  GALLOPER_CHECK(block < num_blocks_ && pos < stripes_per_block_);
  return sparse_rows_[block * stripes_per_block_ + pos].size();
}

}  // namespace galloper::codes
