#include "codes/engine.h"

#include <algorithm>
#include <functional>

#include "gf/region.h"
#include "la/solve.h"
#include "rt/pool.h"
#include "rt/slicer.h"
#include "util/check.h"

namespace galloper::codes {

namespace {

// Cache-tile granularity for delta-propagation in update_chunk; matches the
// fused kernels' internal tiling so a delta tile stays in L1 while every
// dependent parity tile is patched.
constexpr size_t kUpdateTile = 32 * 1024;

// dst = Σ_s row[s]·stripe(s) for the nonzero entries of a dense combination
// row, batched through the overwrite-mode fused multi-source kernel: dst is
// written once per group of up to four terms without ever being read, so
// output buffers need no prior zero-fill. An all-zero row zeroes dst.
template <typename StripeFn>
void apply_combo_row(ByteSpan dst, std::span<const gf::Elem> row,
                     StripeFn stripe) {
  thread_local std::vector<gf::Elem> coeffs;
  thread_local std::vector<ConstByteSpan> srcs;
  coeffs.clear();
  srcs.clear();
  for (size_t s = 0; s < row.size(); ++s) {
    if (row[s] == 0) continue;
    coeffs.push_back(row[s]);
    srcs.push_back(stripe(s));
  }
  gf::mul_region_multi(dst, coeffs, srcs.data(), srcs.size());
}

// Fans body(row, lo, hi) over `threads` pool runners: `rows` output rows ×
// cache-line-aligned byte slices of [0, chunk). With rows >= threads each
// row is one unit (no intra-row split needed); otherwise every row splits
// into enough slices to feed all runners. threads == 1 degrades to a plain
// nested loop over the same units, so serial and parallel results are
// byte-identical by construction.
void for_rows_sliced(size_t rows, size_t chunk, size_t threads,
                     const std::function<void(size_t, size_t, size_t)>& body) {
  if (rows == 0 || chunk == 0) return;
  const size_t per_row = rows >= threads ? 1 : (threads + rows - 1) / rows;
  const auto slices = rt::slice_ranges(chunk, per_row, rt::kCacheLine);
  rt::parallel_for(rt::ThreadPool::global(), rows * slices.size(), threads,
                   [&](size_t unit) {
                     const rt::SliceRange& s = slices[unit % slices.size()];
                     body(unit / slices.size(), s.lo, s.hi);
                   });
}

}  // namespace

CodecEngine::CodecEngine(la::Matrix stripe_generator, size_t num_blocks,
                         size_t stripes_per_block,
                         std::vector<StripeRef> chunk_pos)
    : generator_(std::move(stripe_generator)),
      num_blocks_(num_blocks),
      stripes_per_block_(stripes_per_block),
      chunk_pos_(std::move(chunk_pos)) {
  GALLOPER_CHECK(num_blocks_ > 0 && stripes_per_block_ > 0);
  GALLOPER_CHECK_MSG(
      generator_.rows() == num_blocks_ * stripes_per_block_,
      "generator rows " << generator_.rows() << " != n·N "
                        << num_blocks_ * stripes_per_block_);
  GALLOPER_CHECK_MSG(generator_.cols() == chunk_pos_.size(),
                     "generator cols " << generator_.cols()
                                       << " != chunk count "
                                       << chunk_pos_.size());
  block_chunks_.assign(num_blocks_,
                       std::vector<size_t>(stripes_per_block_, SIZE_MAX));
  for (size_t c = 0; c < chunk_pos_.size(); ++c) {
    const StripeRef ref = chunk_pos_[c];
    GALLOPER_CHECK(ref.block < num_blocks_ && ref.pos < stripes_per_block_);
    GALLOPER_CHECK_MSG(block_chunks_[ref.block][ref.pos] == SIZE_MAX,
                       "two chunks mapped to the same stripe");
    block_chunks_[ref.block][ref.pos] = c;
    // The systematic property: chunk c's stripe row must be the unit e_c.
    const auto row = generator_.row(ref.block * stripes_per_block_ + ref.pos);
    for (size_t j = 0; j < row.size(); ++j)
      GALLOPER_CHECK_MSG(row[j] == (j == c ? 1 : 0),
                         "chunk " << c << " stripe row is not systematic");
  }

  sparse_rows_.resize(generator_.rows());
  chunk_consumers_.resize(chunk_pos_.size());
  for (size_t r = 0; r < generator_.rows(); ++r) {
    const auto row = generator_.row(r);
    for (size_t j = 0; j < row.size(); ++j)
      if (row[j] != 0)
        sparse_rows_[r].push_back({static_cast<uint32_t>(j), row[j]});
  }
  // Column view over PARITY stripes only (the data stripe of a chunk is
  // updated directly, not via delta).
  for (size_t b = 0; b < num_blocks_; ++b) {
    for (size_t p = 0; p < stripes_per_block_; ++p) {
      if (block_chunks_[b][p] != SIZE_MAX) continue;
      const size_t r = b * stripes_per_block_ + p;
      for (const Term& t : sparse_rows_[r])
        chunk_consumers_[t.col].push_back(
            {static_cast<uint32_t>(r), t.coeff});
    }
  }
}

size_t CodecEngine::data_stripes_in_block(size_t block) const {
  GALLOPER_CHECK(block < num_blocks_);
  size_t n = 0;
  for (size_t c : block_chunks_[block])
    if (c != SIZE_MAX) ++n;
  return n;
}

const std::vector<size_t>& CodecEngine::chunks_of_block(size_t block) const {
  GALLOPER_CHECK(block < num_blocks_);
  return block_chunks_[block];
}

void CodecEngine::encode_slice(ConstByteSpan file,
                               std::vector<Buffer>& blocks, size_t chunk,
                               size_t lo, size_t hi) const {
  if (lo >= hi) return;
  const size_t len = hi - lo;
  std::vector<gf::Elem> coeffs;
  std::vector<ConstByteSpan> srcs;
  for (size_t b = 0; b < num_blocks_; ++b) {
    for (size_t p = 0; p < stripes_per_block_; ++p) {
      ByteSpan dst(blocks[b].data() + p * chunk + lo, len);
      const size_t direct = block_chunks_[b][p];
      if (direct != SIZE_MAX) {
        std::copy_n(file.data() + direct * chunk + lo, len, dst.data());
        continue;
      }
      // All of the stripe's generator terms in one fused, tiled pass: the
      // parity stripe is streamed once per group of ≤4 sources rather than
      // once per source, and written in overwrite mode — the buffer was
      // never zero-filled.
      coeffs.clear();
      srcs.clear();
      for (const Term& t : sparse_rows_[b * stripes_per_block_ + p]) {
        coeffs.push_back(t.coeff);
        srcs.push_back(file.subspan(t.col * chunk + lo, len));
      }
      gf::mul_region_multi(dst, coeffs, srcs.data(), srcs.size());
    }
  }
}

std::vector<Buffer> CodecEngine::encode_impl(ConstByteSpan file,
                                             size_t threads) const {
  GALLOPER_CHECK_MSG(!file.empty() && file.size() % num_chunks() == 0,
                     "file size " << file.size()
                                  << " must be a positive multiple of "
                                  << num_chunks());
  const size_t chunk = file.size() / num_chunks();
  // Uninitialized output: encode_slice writes every byte exactly once
  // (data stripes copied, parity stripes via the overwrite-mode kernel).
  std::vector<Buffer> blocks;
  blocks.reserve(num_blocks_);
  for (size_t b = 0; b < num_blocks_; ++b)
    blocks.emplace_back(stripes_per_block_ * chunk);
  // Balanced cache-line-aligned slices: boundaries are 64-byte multiples
  // (no two runners share a line) and sizes differ by at most one line —
  // the old ceil(chunk/threads) split left the last worker a short or
  // empty tail.
  const auto slices = rt::slice_ranges(chunk, threads, rt::kCacheLine);
  rt::parallel_for(
      rt::ThreadPool::global(), slices.size(), threads, [&](size_t s) {
        encode_slice(file, blocks, chunk, slices[s].lo, slices[s].hi);
      });
  return blocks;
}

std::vector<Buffer> CodecEngine::encode(ConstByteSpan file) const {
  return encode_impl(file, 1);
}

std::vector<Buffer> CodecEngine::encode_parallel(ConstByteSpan file,
                                                 size_t threads) const {
  GALLOPER_CHECK_MSG(threads >= 1, "need at least one thread");
  return encode_impl(file, threads);
}

la::Matrix CodecEngine::rows_of_blocks(
    const std::vector<size_t>& blocks) const {
  std::vector<size_t> rows;
  rows.reserve(blocks.size() * stripes_per_block_);
  for (size_t b : blocks) {
    GALLOPER_CHECK(b < num_blocks_);
    for (size_t p = 0; p < stripes_per_block_; ++p)
      rows.push_back(b * stripes_per_block_ + p);
  }
  return generator_.select_rows(rows);
}

std::optional<Buffer> CodecEngine::decode_impl(
    const std::map<size_t, ConstByteSpan>& blocks, size_t threads) const {
  if (blocks.empty()) return std::nullopt;
  std::vector<size_t> ids;
  ids.reserve(blocks.size());
  size_t block_bytes = SIZE_MAX;
  for (const auto& [id, data] : blocks) {
    ids.push_back(id);
    if (block_bytes == SIZE_MAX) block_bytes = data.size();
    GALLOPER_CHECK_MSG(data.size() == block_bytes,
                       "blocks of unequal size in decode");
  }
  GALLOPER_CHECK(block_bytes % stripes_per_block_ == 0);
  const size_t chunk = block_bytes / stripes_per_block_;

  const la::Matrix basis = rows_of_blocks(ids);
  const auto combo =
      la::express_in_rowspace(basis, la::Matrix::identity(num_chunks()));
  if (!combo) return std::nullopt;

  Buffer file(num_chunks() * chunk);  // every row written below
  for_rows_sliced(
      num_chunks(), chunk, threads, [&](size_t c, size_t lo, size_t hi) {
        apply_combo_row(
            ByteSpan(file.data() + c * chunk + lo, hi - lo), combo->row(c),
            [&](size_t s) {
              return blocks.at(ids[s / stripes_per_block_])
                  .subspan((s % stripes_per_block_) * chunk + lo, hi - lo);
            });
      });
  return file;
}

std::optional<Buffer> CodecEngine::decode(
    const std::map<size_t, ConstByteSpan>& blocks) const {
  return decode_impl(blocks, 1);
}

std::optional<Buffer> CodecEngine::decode_parallel(
    const std::map<size_t, ConstByteSpan>& blocks, size_t threads) const {
  GALLOPER_CHECK_MSG(threads >= 1, "need at least one thread");
  return decode_impl(blocks, threads);
}

std::optional<Buffer> CodecEngine::decode_fast_impl(
    const std::map<size_t, ConstByteSpan>& blocks, size_t threads) const {
  if (blocks.empty()) return std::nullopt;
  std::vector<size_t> ids;
  size_t block_bytes = SIZE_MAX;
  for (const auto& [id, data] : blocks) {
    ids.push_back(id);
    if (block_bytes == SIZE_MAX) block_bytes = data.size();
    GALLOPER_CHECK_MSG(data.size() == block_bytes,
                       "blocks of unequal size in decode");
  }
  GALLOPER_CHECK(block_bytes % stripes_per_block_ == 0);
  const size_t chunk = block_bytes / stripes_per_block_;

  // Solve for the chunks whose systematic stripe is unavailable BEFORE
  // touching the (uninitialized) output, so an undecodable set returns
  // nullopt without wasted copying.
  std::vector<size_t> missing;
  for (size_t c = 0; c < num_chunks(); ++c)
    if (blocks.find(chunk_pos_[c].block) == blocks.end())
      missing.push_back(c);
  std::optional<la::Matrix> combo;
  if (!missing.empty()) {
    la::Matrix targets(missing.size(), num_chunks());
    for (size_t t = 0; t < missing.size(); ++t)
      targets.at(t, missing[t]) = 1;
    combo = la::express_in_rowspace(rows_of_blocks(ids), targets);
    if (!combo) return std::nullopt;
  }

  // Verbatim copies dominate (most chunks sit in an available block), so
  // they are fanned out too — the copy path is memory-bandwidth-bound and
  // still gains on multi-socket parts.
  Buffer file(num_chunks() * chunk);
  for_rows_sliced(num_chunks(), chunk, threads,
                  [&](size_t c, size_t lo, size_t hi) {
                    const StripeRef ref = chunk_pos_[c];
                    const auto it = blocks.find(ref.block);
                    if (it == blocks.end()) return;  // solved below
                    std::copy_n(it->second.data() + ref.pos * chunk + lo,
                                hi - lo, file.data() + c * chunk + lo);
                  });
  if (missing.empty()) return file;

  for_rows_sliced(
      missing.size(), chunk, threads, [&](size_t t, size_t lo, size_t hi) {
        apply_combo_row(
            ByteSpan(file.data() + missing[t] * chunk + lo, hi - lo),
            combo->row(t), [&](size_t s) {
              return blocks.at(ids[s / stripes_per_block_])
                  .subspan((s % stripes_per_block_) * chunk + lo, hi - lo);
            });
      });
  return file;
}

std::optional<Buffer> CodecEngine::decode_fast(
    const std::map<size_t, ConstByteSpan>& blocks) const {
  return decode_fast_impl(blocks, 1);
}

std::optional<Buffer> CodecEngine::decode_fast_parallel(
    const std::map<size_t, ConstByteSpan>& blocks, size_t threads) const {
  GALLOPER_CHECK_MSG(threads >= 1, "need at least one thread");
  return decode_fast_impl(blocks, threads);
}

std::optional<Buffer> CodecEngine::repair_block_impl(
    size_t failed, const std::map<size_t, ConstByteSpan>& helpers,
    size_t threads) const {
  GALLOPER_CHECK(failed < num_blocks_);
  GALLOPER_CHECK_MSG(helpers.find(failed) == helpers.end(),
                     "failed block offered as its own helper");
  if (helpers.empty()) return std::nullopt;
  std::vector<size_t> ids;
  size_t block_bytes = SIZE_MAX;
  for (const auto& [id, data] : helpers) {
    ids.push_back(id);
    if (block_bytes == SIZE_MAX) block_bytes = data.size();
    GALLOPER_CHECK_MSG(data.size() == block_bytes,
                       "blocks of unequal size in repair");
  }
  GALLOPER_CHECK(block_bytes % stripes_per_block_ == 0);
  const size_t chunk = block_bytes / stripes_per_block_;

  const la::Matrix basis = rows_of_blocks(ids);
  const la::Matrix targets = rows_of_blocks({failed});
  const auto combo = la::express_in_rowspace(basis, targets);
  if (!combo) return std::nullopt;

  Buffer out(stripes_per_block_ * chunk);  // every stripe written below
  for_rows_sliced(
      stripes_per_block_, chunk, threads, [&](size_t p, size_t lo,
                                              size_t hi) {
        apply_combo_row(
            ByteSpan(out.data() + p * chunk + lo, hi - lo), combo->row(p),
            [&](size_t s) {
              return helpers.at(ids[s / stripes_per_block_])
                  .subspan((s % stripes_per_block_) * chunk + lo, hi - lo);
            });
      });
  return out;
}

std::optional<Buffer> CodecEngine::repair_block(
    size_t failed, const std::map<size_t, ConstByteSpan>& helpers) const {
  return repair_block_impl(failed, helpers, 1);
}

std::optional<Buffer> CodecEngine::repair_block_parallel(
    size_t failed, const std::map<size_t, ConstByteSpan>& helpers,
    size_t threads) const {
  GALLOPER_CHECK_MSG(threads >= 1, "need at least one thread");
  return repair_block_impl(failed, helpers, threads);
}

std::optional<Buffer> CodecEngine::read_range_impl(
    const std::map<size_t, ConstByteSpan>& blocks, size_t offset,
    size_t length, size_t threads) const {
  if (blocks.empty()) return std::nullopt;
  size_t block_bytes = SIZE_MAX;
  std::vector<size_t> ids;
  for (const auto& [id, data] : blocks) {
    ids.push_back(id);
    if (block_bytes == SIZE_MAX) block_bytes = data.size();
    GALLOPER_CHECK(data.size() == block_bytes);
  }
  GALLOPER_CHECK(block_bytes % stripes_per_block_ == 0);
  const size_t chunk = block_bytes / stripes_per_block_;
  const size_t file_bytes = num_chunks() * chunk;
  GALLOPER_CHECK_MSG(offset + length <= file_bytes,
                     "range [" << offset << ", " << offset + length
                               << ") beyond file size " << file_bytes);
  if (length == 0) return Buffer{};

  const size_t first_chunk = offset / chunk;
  const size_t last_chunk = (offset + length - 1) / chunk;

  // Index of each missing chunk in the combination matrix (SIZE_MAX for
  // chunks copied verbatim); the solve happens before any byte moves so an
  // unrecoverable range returns nullopt without wasted work.
  std::vector<size_t> missing;
  std::vector<size_t> combo_row_of(last_chunk - first_chunk + 1, SIZE_MAX);
  for (size_t c = first_chunk; c <= last_chunk; ++c) {
    if (blocks.find(chunk_pos_[c].block) != blocks.end()) continue;
    combo_row_of[c - first_chunk] = missing.size();
    missing.push_back(c);
  }
  std::optional<la::Matrix> combo;
  if (!missing.empty()) {
    la::Matrix targets(missing.size(), num_chunks());
    for (size_t t = 0; t < missing.size(); ++t)
      targets.at(t, missing[t]) = 1;
    combo = la::express_in_rowspace(rows_of_blocks(ids), targets);
    if (!combo) return std::nullopt;
  }

  // One pass over the covered chunks: available ones copy their overlap
  // with the request, missing ones reconstruct ONLY the overlapping bytes
  // straight into the output (no full-chunk scratch buffer).
  Buffer range(length);  // every byte covered by exactly one chunk overlap
  for_rows_sliced(
      last_chunk - first_chunk + 1, chunk, threads,
      [&](size_t row, size_t slo, size_t shi) {
        const size_t c = first_chunk + row;
        // Intersection of this byte slice with the requested range, in
        // file coordinates.
        const size_t lo = std::max(offset, c * chunk + slo);
        const size_t hi = std::min(offset + length, c * chunk + shi);
        if (lo >= hi) return;
        const size_t in_chunk = lo - c * chunk;
        ByteSpan dst(range.data() + (lo - offset), hi - lo);
        const auto it = blocks.find(chunk_pos_[c].block);
        if (it != blocks.end()) {
          std::copy_n(it->second.data() + chunk_pos_[c].pos * chunk +
                          in_chunk,
                      dst.size(), dst.data());
          return;
        }
        const size_t t = combo_row_of[row];
        apply_combo_row(dst, combo->row(t), [&](size_t s) {
          return blocks.at(ids[s / stripes_per_block_])
              .subspan((s % stripes_per_block_) * chunk + in_chunk,
                       dst.size());
        });
      });
  return range;
}

std::optional<Buffer> CodecEngine::read_range(
    const std::map<size_t, ConstByteSpan>& blocks, size_t offset,
    size_t length) const {
  return read_range_impl(blocks, offset, length, 1);
}

std::optional<Buffer> CodecEngine::read_range_parallel(
    const std::map<size_t, ConstByteSpan>& blocks, size_t offset,
    size_t length, size_t threads) const {
  GALLOPER_CHECK_MSG(threads >= 1, "need at least one thread");
  return read_range_impl(blocks, offset, length, threads);
}

std::vector<size_t> CodecEngine::update_chunk_impl(std::vector<Buffer>& blocks,
                                                   size_t chunk,
                                                   ConstByteSpan new_data,
                                                   size_t threads) const {
  GALLOPER_CHECK(chunk < num_chunks());
  GALLOPER_CHECK_MSG(blocks.size() == num_blocks_,
                     "update needs all current blocks");
  const size_t chunk_bytes = blocks[0].size() / stripes_per_block_;
  for (const auto& b : blocks)
    GALLOPER_CHECK_MSG(b.size() == stripes_per_block_ * chunk_bytes,
                       "blocks of unequal size in update");
  GALLOPER_CHECK_MSG(new_data.size() == chunk_bytes,
                     "update data must be exactly one chunk: "
                         << new_data.size() << " vs " << chunk_bytes);

  const StripeRef home = chunk_pos_[chunk];
  ByteSpan stored(blocks[home.block].data() + home.pos * chunk_bytes,
                  chunk_bytes);
  // delta = old ⊕ new, then parity' = parity ⊕ coeff·delta.
  Buffer delta(new_data.begin(), new_data.end());
  gf::xor_region(delta, stored);
  if (std::all_of(delta.begin(), delta.end(),
                  [](uint8_t b) { return b == 0; }))
    return {};  // no change, no I/O

  std::vector<size_t> touched{home.block};
  std::copy(new_data.begin(), new_data.end(), stored.begin());
  for (const Term& t : chunk_consumers_[chunk])
    touched.push_back(t.col / stripes_per_block_);  // Term reused: col = row
  // Each runner owns a cache-line-aligned byte slice of the chunk and
  // patches EVERY dependent parity stripe within it (same-offset bytes of
  // different stripes never overlap, so slices are the only partition
  // needed). Inside a slice the delta propagation is tiled so one
  // L1-resident piece of delta patches all dependents before moving on.
  const auto slices = rt::slice_ranges(chunk_bytes, threads, rt::kCacheLine);
  rt::parallel_for(
      rt::ThreadPool::global(), slices.size(), threads, [&](size_t si) {
        const rt::SliceRange& s = slices[si];
        for (size_t off = s.lo; off < s.hi; off += kUpdateTile) {
          const size_t len = std::min(kUpdateTile, s.hi - off);
          const ConstByteSpan dslice(delta.data() + off, len);
          for (const Term& t : chunk_consumers_[chunk]) {
            const size_t b = t.col / stripes_per_block_;
            const size_t p = t.col % stripes_per_block_;
            gf::mul_acc_region(
                ByteSpan(blocks[b].data() + p * chunk_bytes + off, len),
                t.coeff, dslice);
          }
        }
      });
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  return touched;
}

std::vector<size_t> CodecEngine::update_chunk(std::vector<Buffer>& blocks,
                                              size_t chunk,
                                              ConstByteSpan new_data) const {
  return update_chunk_impl(blocks, chunk, new_data, 1);
}

std::vector<size_t> CodecEngine::update_chunk_parallel(
    std::vector<Buffer>& blocks, size_t chunk, ConstByteSpan new_data,
    size_t threads) const {
  GALLOPER_CHECK_MSG(threads >= 1, "need at least one thread");
  return update_chunk_impl(blocks, chunk, new_data, threads);
}

bool CodecEngine::decodable(
    const std::vector<size_t>& available_blocks) const {
  if (available_blocks.empty()) return num_chunks() == 0;
  return la::rank(rows_of_blocks(available_blocks)) == num_chunks();
}

bool CodecEngine::can_repair(size_t failed,
                             const std::vector<size_t>& helpers) const {
  GALLOPER_CHECK(failed < num_blocks_);
  if (helpers.empty()) return false;
  const la::Matrix basis = rows_of_blocks(helpers);
  const la::Matrix targets = rows_of_blocks({failed});
  return la::express_in_rowspace(basis, targets).has_value();
}

size_t CodecEngine::row_support(size_t block, size_t pos) const {
  GALLOPER_CHECK(block < num_blocks_ && pos < stripes_per_block_);
  return sparse_rows_[block * stripes_per_block_ + pos].size();
}

}  // namespace galloper::codes
