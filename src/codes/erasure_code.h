// The public interface every code in this library implements.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "codes/engine.h"
#include "util/bytes.h"

namespace galloper::codes {

class ErasureCode {
 public:
  virtual ~ErasureCode() = default;

  // Human-readable, e.g. "(4,2) Reed-Solomon" or "(4,2,1) Galloper".
  virtual std::string name() const = 0;

  // Number of data blocks of the underlying code (the `k` parameter).
  virtual size_t k() const = 0;

  // Total number of blocks produced by encode().
  size_t num_blocks() const { return engine().num_blocks(); }

  // Stripes per block (1 for unstriped codes like plain RS / Pyramid).
  size_t stripes_per_block() const { return engine().stripes_per_block(); }

  // The preferred (cheapest) helper set to rebuild `block` when it is the
  // only missing block. Its size is the paper's notion of repair locality:
  // k for RS, k/l for the locally repairable blocks of Pyramid/Galloper.
  virtual std::vector<size_t> repair_helpers(size_t block) const = 0;

  // Number of simultaneous block failures that are ALWAYS tolerable
  // (r for RS; g+1 for Pyramid/Galloper).
  virtual size_t guaranteed_tolerance() const = 0;

  // The execution engine (generator matrix + systematic layout).
  virtual const CodecEngine& engine() const = 0;

  // ---- Conveniences forwarding to the engine ----------------------------

  std::vector<Buffer> encode(ConstByteSpan file) const {
    return engine().encode(file);
  }
  std::optional<Buffer> decode(
      const std::map<size_t, ConstByteSpan>& blocks) const {
    return engine().decode(blocks);
  }
  std::optional<Buffer> repair_block(
      size_t failed, const std::map<size_t, ConstByteSpan>& helpers) const {
    return engine().repair_block(failed, helpers);
  }
  bool decodable(const std::vector<size_t>& available) const {
    return engine().decodable(available);
  }

  // Original-data bytes stored in `block` when each block is `block_bytes`
  // long. This is what a data-parallel job can mapped over locally.
  size_t original_bytes_in_block(size_t block, size_t block_bytes) const;

  // Exhaustively verifies that every failure pattern of size
  // ≤ guaranteed_tolerance() is decodable. Used by tests; exponential in
  // num_blocks, so only call on small codes.
  bool verify_tolerance() const;
};

}  // namespace galloper::codes
