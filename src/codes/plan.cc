#include "codes/plan.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdlib>

#include "gf/region.h"
#include "rt/pool.h"
#include "rt/slicer.h"
#include "util/check.h"

namespace galloper::codes {

const char* plan_op_name(PlanOp op) {
  switch (op) {
    case PlanOp::kEncode:
      return "encode";
    case PlanOp::kDecode:
      return "decode";
    case PlanOp::kDecodeFast:
      return "decode_fast";
    case PlanOp::kRepair:
      return "repair";
    case PlanOp::kUpdate:
      return "update";
  }
  return "?";
}

size_t PlanKeyHash::operator()(const PlanKey& k) const {
  // FNV-1a over the key fields; the bitset words carry most of the entropy.
  uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(k.engine_id);
  mix(static_cast<uint64_t>(k.op));
  mix(k.failed);
  for (uint64_t w : k.available) mix(w);
  return static_cast<size_t>(h);
}

void CodecPlan::run_row(const Row& row, uint8_t* dst,
                        const uint8_t* const* bases, size_t chunk,
                        size_t src_off, size_t len) const {
  if (len == 0) return;
  if (row.copy_slot >= 0) {
    std::copy_n(bases[row.copy_slot] + row.copy_pos * chunk + src_off, len,
                dst);
    return;
  }
  GALLOPER_DCHECK(row.solvable);
  // Materialize the row's source spans for the fused kernel. The terms were
  // filtered to nonzero coefficients at plan time, so there is no per-call
  // scan of a dense combination row; the scratch is thread-local and grows
  // to the widest row once, then never allocates again.
  thread_local std::vector<ConstByteSpan> srcs;
  const size_t nterms = row.end - row.begin;
  srcs.clear();
  for (uint32_t t = row.begin; t < row.end; ++t) {
    const Source& s = srcs_[t];
    srcs.emplace_back(bases[s.slot] + size_t{s.pos} * chunk + src_off, len);
  }
  gf::mul_region_multi(
      ByteSpan(dst, len),
      std::span<const gf::Elem>(coeffs_.data() + row.begin, nterms),
      srcs.data(), nterms);
}

namespace {

struct BatchCounters {
  std::atomic<uint64_t> calls{0};
  std::atomic<uint64_t> rows{0};
  std::atomic<uint64_t> bytes{0};
  std::atomic<uint64_t> ns{0};
};

BatchCounters& batch_counters() {
  static BatchCounters counters;
  return counters;
}

}  // namespace

void CodecPlan::execute_batch(
    const uint8_t* const* bases, size_t cell, size_t threads,
    const std::function<uint8_t*(const Row&)>& dst_of) const {
  if (rows_.empty() || cell == 0) return;
  const auto t0 = std::chrono::steady_clock::now();

  const size_t nrows = rows_.size();
  // Tiles per row: enough to keep every runner busy when there are fewer
  // rows than runners, never a kernel call wider than kExecTile, and —
  // the locality bound — small enough that one tile's worth of EVERY
  // source fits in L2 together. Units run slice-major (all rows of tile 0,
  // then all rows of tile 1, …): rows of a combo-heavy plan largely read
  // the same source cells, so each tile's sources are pulled from memory
  // once and served from cache for the remaining rows, instead of every
  // row re-streaming the whole cell. A whole-cell tile stays one fused
  // kernel call — the common case for per-stripe chunks.
  size_t max_srcs = 1;
  for (const Row& r : rows_)
    if (r.copy_slot < 0)
      max_srcs = std::max(max_srcs, static_cast<size_t>(r.end - r.begin));
  const size_t tile =
      std::min(kExecTile, std::max(kExecSourceBudget / (max_srcs + 1),
                                   size_t{4} << 10));
  size_t per_row = (cell + tile - 1) / tile;
  if (threads > nrows)
    per_row = std::max(per_row, (threads + nrows - 1) / nrows);
  const std::vector<rt::SliceRange> slices =
      rt::slice_ranges(cell, per_row, rt::kCacheLine);
  const size_t nslices = slices.size();

  const auto run_unit = [&](size_t u) {
    const Row& row = rows_[u % nrows];
    const rt::SliceRange s = slices[u / nrows];
    run_row(row, dst_of(row) + s.lo, bases, cell, s.lo, s.hi - s.lo);
  };
  const size_t units = nrows * nslices;
  if (threads <= 1 || units <= 1) {
    for (size_t u = 0; u < units; ++u) run_unit(u);
  } else {
    rt::parallel_for(rt::ThreadPool::global(), units, threads, run_unit);
  }

  BatchCounters& c = batch_counters();
  c.calls.fetch_add(1, std::memory_order_relaxed);
  c.rows.fetch_add(nrows, std::memory_order_relaxed);
  c.bytes.fetch_add(static_cast<uint64_t>(nrows) * cell,
                    std::memory_order_relaxed);
  c.ns.fetch_add(static_cast<uint64_t>(
                     std::chrono::duration_cast<std::chrono::nanoseconds>(
                         std::chrono::steady_clock::now() - t0)
                         .count()),
                 std::memory_order_relaxed);
}

// ---- PlanCache ------------------------------------------------------------

struct PlanCache::Shard {
  std::mutex mu;
  // Front = most recently used. The map holds iterators into the list.
  std::list<std::pair<PlanKey, std::shared_ptr<const CodecPlan>>> lru;
  std::unordered_map<PlanKey, decltype(lru)::iterator, PlanKeyHash> index;
};

PlanCache::PlanCache(size_t capacity, size_t shards) : capacity_(capacity) {
  GALLOPER_CHECK(shards >= 1);
  shards_.reserve(shards);
  for (size_t s = 0; s < shards; ++s)
    shards_.push_back(std::make_unique<Shard>());
  per_shard_ = (capacity_ + shards - 1) / shards;
}

PlanCache::~PlanCache() = default;

PlanCache::Shard& PlanCache::shard_of(const PlanKey& key) {
  return *shards_[PlanKeyHash{}(key) % shards_.size()];
}

std::shared_ptr<const CodecPlan> PlanCache::get(const PlanKey& key) {
  if (!enabled()) return nullptr;
  Shard& s = shard_of(key);
  std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.index.find(key);
  if (it == s.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  s.lru.splice(s.lru.begin(), s.lru, it->second);  // promote to MRU
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->second;
}

void PlanCache::put(const PlanKey& key, std::shared_ptr<const CodecPlan> plan) {
  if (!enabled()) return;
  Shard& s = shard_of(key);
  std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.index.find(key);
  if (it != s.index.end()) {
    // A racing builder got here first; keep its entry (the plans are
    // identical — same key, immutable generator) and just refresh recency.
    s.lru.splice(s.lru.begin(), s.lru, it->second);
    return;
  }
  s.lru.emplace_front(key, std::move(plan));
  s.index.emplace(key, s.lru.begin());
  while (s.lru.size() > per_shard_) {
    s.index.erase(s.lru.back().first);
    s.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

PlanCacheStats PlanCache::stats() const {
  PlanCacheStats st;
  st.hits = hits_.load(std::memory_order_relaxed);
  st.misses = misses_.load(std::memory_order_relaxed);
  st.evictions = evictions_.load(std::memory_order_relaxed);
  st.capacity = capacity_;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    st.entries += s->lru.size();
  }
  return st;
}

void PlanCache::reset(size_t capacity) {
  // Lock every shard so a concurrent get/put sees either the old or the
  // new configuration, never a partial one.
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (auto& s : shards_) locks.emplace_back(s->mu);
  for (auto& s : shards_) {
    s->lru.clear();
    s->index.clear();
  }
  capacity_ = capacity;
  per_shard_ = (capacity_ + shards_.size() - 1) / shards_.size();
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
}

PlanCache& PlanCache::global() {
  static PlanCache* cache = [] {
    size_t capacity = 1024;
    if (const char* env = std::getenv("GALLOPER_PLAN_CACHE")) {
      const std::string v(env);
      if (v == "off" || v == "OFF" || v == "0") {
        capacity = 0;
      } else {
        char* end = nullptr;
        const long parsed = std::strtol(env, &end, 10);
        GALLOPER_CHECK_MSG(end && *end == '\0' && parsed >= 0,
                           "GALLOPER_PLAN_CACHE must be 'off' or a "
                           "non-negative entry count, got: "
                               << v);
        capacity = static_cast<size_t>(parsed);
      }
    }
    return new PlanCache(capacity);  // leaked: lives for the process
  }();
  return *cache;
}

// ---- Per-op timing counters ----------------------------------------------

namespace {

struct OpCounters {
  std::atomic<uint64_t> plan_ns{0};
  std::atomic<uint64_t> plans{0};
  std::atomic<uint64_t> exec_ns{0};
  std::atomic<uint64_t> execs{0};
};

std::array<OpCounters, kNumPlanOps>& op_counters() {
  static std::array<OpCounters, kNumPlanOps> counters;
  return counters;
}

}  // namespace

PlanOpStats plan_op_stats(PlanOp op) {
  const OpCounters& c = op_counters()[static_cast<size_t>(op)];
  PlanOpStats st;
  st.plan_ns = c.plan_ns.load(std::memory_order_relaxed);
  st.plans = c.plans.load(std::memory_order_relaxed);
  st.exec_ns = c.exec_ns.load(std::memory_order_relaxed);
  st.execs = c.execs.load(std::memory_order_relaxed);
  return st;
}

void record_plan_time(PlanOp op, uint64_t ns) {
  OpCounters& c = op_counters()[static_cast<size_t>(op)];
  c.plan_ns.fetch_add(ns, std::memory_order_relaxed);
  c.plans.fetch_add(1, std::memory_order_relaxed);
}

void record_exec_time(PlanOp op, uint64_t ns) {
  OpCounters& c = op_counters()[static_cast<size_t>(op)];
  c.exec_ns.fetch_add(ns, std::memory_order_relaxed);
  c.execs.fetch_add(1, std::memory_order_relaxed);
}

void reset_plan_op_stats() {
  for (auto& c : op_counters()) {
    c.plan_ns.store(0, std::memory_order_relaxed);
    c.plans.store(0, std::memory_order_relaxed);
    c.exec_ns.store(0, std::memory_order_relaxed);
    c.execs.store(0, std::memory_order_relaxed);
  }
}

BatchExecStats batch_exec_stats() {
  const BatchCounters& c = batch_counters();
  BatchExecStats st;
  st.calls = c.calls.load(std::memory_order_relaxed);
  st.rows = c.rows.load(std::memory_order_relaxed);
  st.bytes = c.bytes.load(std::memory_order_relaxed);
  st.ns = c.ns.load(std::memory_order_relaxed);
  return st;
}

void reset_batch_exec_stats() {
  BatchCounters& c = batch_counters();
  c.calls.store(0, std::memory_order_relaxed);
  c.rows.store(0, std::memory_order_relaxed);
  c.bytes.store(0, std::memory_order_relaxed);
  c.ns.store(0, std::memory_order_relaxed);
}

}  // namespace galloper::codes
