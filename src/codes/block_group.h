// BlockGroupCodec: encodes files of arbitrary size as a sequence of
// independent coded groups, the way HDFS erasure coding and Azure both
// deploy a fixed (k, l, g) code in practice. Each group is one codeword of
// the underlying code over `group_data_bytes` of the file; the last group
// is zero-padded (original size kept so decode returns exact bytes).
//
// Group independence keeps repair I/O proportional to the damaged group
// only, and lets groups be repaired in parallel.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "codes/erasure_code.h"

namespace galloper::codes {

class BlockGroupCodec {
 public:
  // `group_data_bytes` must be a positive multiple of the code's chunk
  // count; `code` must outlive the codec.
  BlockGroupCodec(const ErasureCode& code, size_t group_data_bytes);

  const ErasureCode& code() const { return code_; }
  size_t group_data_bytes() const { return group_data_bytes_; }
  size_t block_bytes() const;  // per-group block size

  // Number of groups a file of `file_bytes` occupies.
  size_t num_groups(size_t file_bytes) const;

  struct EncodedFile {
    size_t original_bytes = 0;
    // groups[g][b] = block b of group g.
    std::vector<std::vector<Buffer>> groups;
  };

  EncodedFile encode(ConstByteSpan file) const;

  // Decodes from per-group available blocks; available[g] maps block id to
  // contents. nullopt if any group is undecodable.
  std::optional<Buffer> decode(
      size_t original_bytes,
      const std::vector<std::map<size_t, ConstByteSpan>>& available) const;

  // Rebuilds one block of one group.
  std::optional<Buffer> repair(
      size_t group, size_t block,
      const std::map<size_t, ConstByteSpan>& helpers) const;

 private:
  const ErasureCode& code_;
  size_t group_data_bytes_;
};

}  // namespace galloper::codes
