#include "gf/region.h"

#include "util/check.h"

namespace galloper::gf {

void xor_region(std::span<uint8_t> dst, std::span<const uint8_t> src) {
  GALLOPER_CHECK(dst.size() == src.size());
  size_t i = 0;
  // Word-at-a-time XOR; memcpy-based loads keep this UB-free under strict
  // aliasing while compiling to single 64-bit ops.
  for (; i + 8 <= dst.size(); i += 8) {
    uint64_t a, b;
    __builtin_memcpy(&a, dst.data() + i, 8);
    __builtin_memcpy(&b, src.data() + i, 8);
    a ^= b;
    __builtin_memcpy(dst.data() + i, &a, 8);
  }
  for (; i < dst.size(); ++i) dst[i] ^= src[i];
}

void mul_region(std::span<uint8_t> dst, Elem c,
                std::span<const uint8_t> src) {
  GALLOPER_CHECK(dst.size() == src.size());
  if (c == 0) {
    std::fill(dst.begin(), dst.end(), uint8_t{0});
    return;
  }
  if (c == 1) {
    std::copy(src.begin(), src.end(), dst.begin());
    return;
  }
  const Elem* row = mul_row(c);
  for (size_t i = 0; i < dst.size(); ++i) dst[i] = row[src[i]];
}

void mul_acc_region(std::span<uint8_t> dst, Elem c,
                    std::span<const uint8_t> src) {
  GALLOPER_CHECK(dst.size() == src.size());
  if (c == 0) return;
  if (c == 1) {
    xor_region(dst, src);
    return;
  }
  const Elem* row = mul_row(c);
  for (size_t i = 0; i < dst.size(); ++i) dst[i] ^= row[src[i]];
}

void scale_region(std::span<uint8_t> dst, Elem c) {
  if (c == 1) return;
  if (c == 0) {
    std::fill(dst.begin(), dst.end(), uint8_t{0});
    return;
  }
  const Elem* row = mul_row(c);
  for (auto& b : dst) b = row[b];
}

Elem dot(std::span<const Elem> a, std::span<const Elem> b) {
  GALLOPER_CHECK(a.size() == b.size());
  Elem acc = 0;
  for (size_t i = 0; i < a.size(); ++i) acc ^= mul(a[i], b[i]);
  return acc;
}

}  // namespace galloper::gf
