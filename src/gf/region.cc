#include "gf/region.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "gf/cpuid.h"
#include "gf/region_dispatch.h"
#include "gf/region_impl.h"
#include "util/check.h"

namespace galloper::gf {

// ---- Scalar reference backend -------------------------------------------

namespace detail {
namespace {

void scalar_xor(uint8_t* dst, const uint8_t* src, size_t n) {
  size_t i = 0;
  // Word-at-a-time XOR; memcpy-based loads keep this UB-free under strict
  // aliasing while compiling to single 64-bit ops.
  for (; i + 8 <= n; i += 8) {
    uint64_t a, b;
    __builtin_memcpy(&a, dst + i, 8);
    __builtin_memcpy(&b, src + i, 8);
    a ^= b;
    __builtin_memcpy(dst + i, &a, 8);
  }
  xor_tail(dst + i, src + i, n - i);
}

void scalar_mul(uint8_t* dst, uint8_t c, const uint8_t* src, size_t n) {
  mul_tail(dst, mul_row(c), src, n);
}

void scalar_mad(uint8_t* dst, uint8_t c, const uint8_t* src, size_t n) {
  mad_tail(dst, mul_row(c), src, n);
}

// Fused forms: one pass over dst with all rows in hand. Even without SIMD
// this halves dst traffic versus N separate mad calls.
void scalar_mad2(uint8_t* dst, const uint8_t* c, const uint8_t* const* src,
                 size_t n) {
  const Elem* r0 = mul_row(c[0]);
  const Elem* r1 = mul_row(c[1]);
  for (size_t i = 0; i < n; ++i) dst[i] ^= r0[src[0][i]] ^ r1[src[1][i]];
}

void scalar_mad3(uint8_t* dst, const uint8_t* c, const uint8_t* const* src,
                 size_t n) {
  const Elem* r0 = mul_row(c[0]);
  const Elem* r1 = mul_row(c[1]);
  const Elem* r2 = mul_row(c[2]);
  for (size_t i = 0; i < n; ++i)
    dst[i] ^= r0[src[0][i]] ^ r1[src[1][i]] ^ r2[src[2][i]];
}

void scalar_mad4(uint8_t* dst, const uint8_t* c, const uint8_t* const* src,
                 size_t n) {
  const Elem* r0 = mul_row(c[0]);
  const Elem* r1 = mul_row(c[1]);
  const Elem* r2 = mul_row(c[2]);
  const Elem* r3 = mul_row(c[3]);
  for (size_t i = 0; i < n; ++i)
    dst[i] ^= r0[src[0][i]] ^ r1[src[1][i]] ^ r2[src[2][i]] ^ r3[src[3][i]];
}

// Overwrite-mode fused forms: dst is assigned, not accumulated into, so the
// destination is never read — a fresh (uninitialized) parity buffer needs
// no zero-fill before the first group of sources lands.
void scalar_mul2(uint8_t* dst, const uint8_t* c, const uint8_t* const* src,
                 size_t n) {
  const Elem* r0 = mul_row(c[0]);
  const Elem* r1 = mul_row(c[1]);
  for (size_t i = 0; i < n; ++i) dst[i] = r0[src[0][i]] ^ r1[src[1][i]];
}

void scalar_mul3(uint8_t* dst, const uint8_t* c, const uint8_t* const* src,
                 size_t n) {
  const Elem* r0 = mul_row(c[0]);
  const Elem* r1 = mul_row(c[1]);
  const Elem* r2 = mul_row(c[2]);
  for (size_t i = 0; i < n; ++i)
    dst[i] = r0[src[0][i]] ^ r1[src[1][i]] ^ r2[src[2][i]];
}

void scalar_mul4(uint8_t* dst, const uint8_t* c, const uint8_t* const* src,
                 size_t n) {
  const Elem* r0 = mul_row(c[0]);
  const Elem* r1 = mul_row(c[1]);
  const Elem* r2 = mul_row(c[2]);
  const Elem* r3 = mul_row(c[3]);
  for (size_t i = 0; i < n; ++i)
    dst[i] = r0[src[0][i]] ^ r1[src[1][i]] ^ r2[src[2][i]] ^ r3[src[3][i]];
}

constexpr RegionKernels kScalarKernels = {
    scalar_xor,  scalar_mul,  scalar_mad,  scalar_mad2, scalar_mad3,
    scalar_mad4, scalar_mul2, scalar_mul3, scalar_mul4,
};

}  // namespace

const RegionKernels& scalar_kernels() { return kScalarKernels; }

}  // namespace detail

// ---- Dispatch -----------------------------------------------------------

namespace {

const detail::RegionKernels* kernels_for(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return &detail::scalar_kernels();
#ifdef GALLOPER_SIMD
    case Isa::kSsse3:
      return detail::ssse3_kernels();
    case Isa::kAvx2:
      return detail::avx2_kernels();
#else
    default:
      break;
#endif
  }
  return nullptr;
}

// Requested backend from GALLOPER_GF_ISA, or nullopt when unset/unparseable
// (unparseable values get a one-time stderr note).
bool parse_isa_env(Isa* out) {
  const char* v = std::getenv("GALLOPER_GF_ISA");
  if (v == nullptr || *v == '\0') return false;
  if (std::strcmp(v, "scalar") == 0) {
    *out = Isa::kScalar;
  } else if (std::strcmp(v, "ssse3") == 0) {
    *out = Isa::kSsse3;
  } else if (std::strcmp(v, "avx2") == 0) {
    *out = Isa::kAvx2;
  } else {
    std::fprintf(stderr,
                 "galloper: GALLOPER_GF_ISA=%s not recognised "
                 "(scalar|ssse3|avx2); using auto-detection\n",
                 v);
    return false;
  }
  return true;
}

std::atomic<const detail::RegionKernels*> g_kernels{nullptr};
std::atomic<Isa> g_isa{Isa::kScalar};

Isa resolve_isa() {
  Isa want;
  if (parse_isa_env(&want)) {
    if (isa_available(want)) return want;
    std::fprintf(stderr,
                 "galloper: GALLOPER_GF_ISA=%s unavailable on this "
                 "build/CPU; using %s\n",
                 isa_name(want), isa_name(best_available_isa()));
  }
  return best_available_isa();
}

const detail::RegionKernels* resolve_kernels() {
  const Isa isa = resolve_isa();
  const detail::RegionKernels* k = kernels_for(isa);
  g_isa.store(isa, std::memory_order_relaxed);
  g_kernels.store(k, std::memory_order_release);
  return k;
}

}  // namespace

namespace detail {
const RegionKernels& kernels() {
  const RegionKernels* k = g_kernels.load(std::memory_order_acquire);
  if (k == nullptr) k = resolve_kernels();
  return *k;
}
}  // namespace detail

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kSsse3:
      return "ssse3";
    case Isa::kAvx2:
      return "avx2";
  }
  return "?";
}

bool isa_available(Isa isa) {
  if (isa == Isa::kScalar) return true;
  if (kernels_for(isa) == nullptr) return false;  // compiled out
  switch (isa) {
    case Isa::kSsse3:
      return cpu_has_ssse3();
    case Isa::kAvx2:
      return cpu_has_avx2();
    default:
      return false;
  }
}

Isa best_available_isa() {
  if (isa_available(Isa::kAvx2)) return Isa::kAvx2;
  if (isa_available(Isa::kSsse3)) return Isa::kSsse3;
  return Isa::kScalar;
}

std::vector<Isa> available_isas() {
  std::vector<Isa> out{Isa::kScalar};
  if (isa_available(Isa::kSsse3)) out.push_back(Isa::kSsse3);
  if (isa_available(Isa::kAvx2)) out.push_back(Isa::kAvx2);
  return out;
}

Isa active_isa() {
  detail::kernels();  // ensure resolved
  return g_isa.load(std::memory_order_relaxed);
}

void force_isa(Isa isa) {
  GALLOPER_CHECK_MSG(isa_available(isa),
                     "GF backend " << isa_name(isa)
                                   << " unavailable on this build/CPU");
  g_isa.store(isa, std::memory_order_relaxed);
  g_kernels.store(kernels_for(isa), std::memory_order_release);
}

// ---- Public kernels -----------------------------------------------------

namespace {
// Tile size for the fused multi-source kernel: the destination tile is
// revisited once per group of up to four sources, so keep it comfortably
// inside L1d alongside the in-flight source lines.
constexpr size_t kMultiTile = 32 * 1024;
}  // namespace

void xor_region(std::span<uint8_t> dst, std::span<const uint8_t> src) {
  GALLOPER_DCHECK(dst.size() == src.size());
  detail::kernels().xor_r(dst.data(), src.data(), dst.size());
}

void mul_region(std::span<uint8_t> dst, Elem c,
                std::span<const uint8_t> src) {
  GALLOPER_DCHECK(dst.size() == src.size());
  if (c == 0) {
    std::fill(dst.begin(), dst.end(), uint8_t{0});
    return;
  }
  if (c == 1) {
    std::copy(src.begin(), src.end(), dst.begin());
    return;
  }
  detail::kernels().mul_r(dst.data(), c, src.data(), dst.size());
}

void mul_acc_region(std::span<uint8_t> dst, Elem c,
                    std::span<const uint8_t> src) {
  GALLOPER_DCHECK(dst.size() == src.size());
  if (c == 0) return;
  if (c == 1) {
    xor_region(dst, src);
    return;
  }
  detail::kernels().mad_r(dst.data(), c, src.data(), dst.size());
}

namespace {

// Shared tiled group loop behind both multi-source entry points. In
// overwrite mode the first nonzero group of each tile is dispatched to the
// write-mode kernels (dst assigned, never read) and later groups
// accumulate; with no nonzero term at all the tile is zeroed, preserving
// "dst = Σ of an empty sum".
void region_multi(std::span<uint8_t> dst, std::span<const Elem> coeffs,
                  const std::span<const uint8_t>* srcs, size_t nsrc,
                  bool overwrite) {
  GALLOPER_DCHECK(coeffs.size() == nsrc);
#ifndef NDEBUG
  for (size_t i = 0; i < nsrc; ++i)
    GALLOPER_DCHECK(srcs[i].size() == dst.size());
#endif
  const auto& k = detail::kernels();
  for (size_t off = 0; off < dst.size(); off += kMultiTile) {
    const size_t len = std::min(kMultiTile, dst.size() - off);
    uint8_t* d = dst.data() + off;
    bool first = overwrite;
    size_t i = 0;
    while (i < nsrc) {
      uint8_t c[4];
      const uint8_t* s[4];
      unsigned g = 0;
      while (i < nsrc && g < 4) {
        if (coeffs[i] != 0) {
          c[g] = coeffs[i];
          s[g] = srcs[i].data() + off;
          ++g;
        }
        ++i;
      }
      if (g == 0) break;
      if (first) {
        switch (g) {
          case 4:
            k.mul4(d, c, s, len);
            break;
          case 3:
            k.mul3(d, c, s, len);
            break;
          case 2:
            k.mul2(d, c, s, len);
            break;
          case 1:
            if (c[0] == 1) {
              std::copy_n(s[0], len, d);
            } else {
              k.mul_r(d, c[0], s[0], len);
            }
            break;
        }
        first = false;
        continue;
      }
      switch (g) {
        case 4:
          k.mad4(d, c, s, len);
          break;
        case 3:
          k.mad3(d, c, s, len);
          break;
        case 2:
          k.mad2(d, c, s, len);
          break;
        case 1:
          if (c[0] == 1) {
            k.xor_r(d, s[0], len);
          } else {
            k.mad_r(d, c[0], s[0], len);
          }
          break;
      }
    }
    if (first) std::fill_n(d, len, uint8_t{0});  // empty sum
  }
}

}  // namespace

void mul_acc_region_multi(std::span<uint8_t> dst,
                          std::span<const Elem> coeffs,
                          const std::span<const uint8_t>* srcs,
                          size_t nsrc) {
  region_multi(dst, coeffs, srcs, nsrc, /*overwrite=*/false);
}

void mul_region_multi(std::span<uint8_t> dst, std::span<const Elem> coeffs,
                      const std::span<const uint8_t>* srcs, size_t nsrc) {
  region_multi(dst, coeffs, srcs, nsrc, /*overwrite=*/true);
}

void scale_region(std::span<uint8_t> dst, Elem c) {
  if (c == 1) return;
  if (c == 0) {
    std::fill(dst.begin(), dst.end(), uint8_t{0});
    return;
  }
  // In-place multiply: the kernels are elementwise (load before store), so
  // dst == src aliasing is fine for every backend.
  detail::kernels().mul_r(dst.data(), c, dst.data(), dst.size());
}

Elem dot(std::span<const Elem> a, std::span<const Elem> b) {
  GALLOPER_CHECK(a.size() == b.size());
  Elem acc = 0;
  for (size_t i = 0; i < a.size(); ++i) acc ^= mul(a[i], b[i]);
  return acc;
}

}  // namespace galloper::gf
