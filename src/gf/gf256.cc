#include "gf/gf256.h"

#include "util/check.h"

namespace galloper::gf {

namespace detail {
const Tables kTables = build_tables();
}  // namespace detail

Elem inv(Elem a) {
  GALLOPER_CHECK_MSG(a != 0, "inverse of zero in GF(256)");
  return detail::kTables.inv[a];
}

Elem div(Elem a, Elem b) {
  GALLOPER_CHECK_MSG(b != 0, "division by zero in GF(256)");
  return mul(a, detail::kTables.inv[b]);
}

Elem pow(Elem a, uint64_t e) {
  if (e == 0) return 1;
  if (a == 0) return 0;
  // log-based: a^e = g^(log(a)·e mod 255)
  const uint64_t la = detail::kTables.log[a];
  return detail::kTables.exp[(la * (e % 255)) % 255];
}

}  // namespace galloper::gf
