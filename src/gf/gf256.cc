#include "gf/gf256.h"

#include "util/check.h"

namespace galloper::gf {

namespace detail {
const Tables kTables = build_tables();

namespace {
std::array<NibbleTab, 256> build_nibble_tabs() {
  std::array<NibbleTab, 256> tabs{};
  for (unsigned c = 0; c < 256; ++c) {
    for (unsigned i = 0; i < 16; ++i) {
      tabs[c].lo[i] = kTables.mul[c * 256 + i];
      tabs[c].hi[i] = kTables.mul[c * 256 + (i << 4)];
    }
  }
  return tabs;
}
}  // namespace

const std::array<NibbleTab, 256> kNibbleTabs = build_nibble_tabs();
}  // namespace detail

Elem inv(Elem a) {
  GALLOPER_CHECK_MSG(a != 0, "inverse of zero in GF(256)");
  return detail::kTables.inv[a];
}

Elem div(Elem a, Elem b) {
  GALLOPER_CHECK_MSG(b != 0, "division by zero in GF(256)");
  return mul(a, detail::kTables.inv[b]);
}

Elem pow(Elem a, uint64_t e) {
  if (e == 0) return 1;
  if (a == 0) return 0;
  // log-based: a^e = g^(log(a)·e mod 255)
  const uint64_t la = detail::kTables.log[a];
  return detail::kTables.exp[(la * (e % 255)) % 255];
}

}  // namespace galloper::gf
