// Arithmetic over GF(2^16) — the larger field the paper prescribes when
// k + l + g exceeds 256 (Sec. VI). Log/exp tables (384 KiB) drive scalar
// ops; region kernels use per-constant split tables (low/high byte) so the
// hot loop stays two lookups + one XOR per symbol.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace galloper::gf16 {

using Elem = uint16_t;

inline constexpr unsigned kFieldSize = 65536;
// Standard primitive polynomial x^16 + x^12 + x^3 + x + 1.
inline constexpr uint32_t kPoly = 0x1100b;
inline constexpr Elem kGenerator = 2;

// Reference bitwise multiply (tests, table construction).
Elem slow_mul(Elem a, Elem b);

inline Elem add(Elem a, Elem b) { return a ^ b; }
inline Elem sub(Elem a, Elem b) { return a ^ b; }

Elem mul(Elem a, Elem b);
Elem inv(Elem a);   // a != 0
Elem div(Elem a, Elem b);  // b != 0
Elem pow(Elem a, uint64_t e);

// ---- region kernels over arrays of 16-bit symbols ----

// dst ^= src
void xor_region(std::span<Elem> dst, std::span<const Elem> src);

// dst = c · src
void mul_region(std::span<Elem> dst, Elem c, std::span<const Elem> src);

// dst ^= c · src
void mul_acc_region(std::span<Elem> dst, Elem c, std::span<const Elem> src);

}  // namespace galloper::gf16
