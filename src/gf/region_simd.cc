// SSSE3 / AVX2 split-nibble GF(2^8) region kernels.
//
// Technique (ISA-L's): a byte splits as b = (b & 0x0f) ⊕ (b & 0xf0), and
// multiplication by a constant is GF-linear, so c·b = lo[b & 0x0f] ⊕
// hi[b >> 4] with two 16-entry tables (gf256.h NibbleTab). Each table fits
// one shuffle register, so PSHUFB/VPSHUFB computes 16/32 products per
// instruction pair. The fused mad2/3/4 kernels keep 2–4 table pairs
// register-resident and read/write the destination once per group.
//
// Every function carries a per-function target attribute, so this file
// builds with the default machine flags and nothing here executes unless
// the dispatcher (region.cc) verified CPU support. Tails fall through to
// the shared scalar helpers in region_impl.h so every backend is
// bit-identical (and byte-identical in tail behaviour) to the reference.
#include "gf/region_impl.h"

#ifdef GALLOPER_SIMD

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

namespace galloper::gf::detail {
namespace {

#define GALLOPER_TARGET_SSSE3 __attribute__((target("ssse3")))
#define GALLOPER_TARGET_AVX2 __attribute__((target("avx2")))

// ---- SSSE3 --------------------------------------------------------------

GALLOPER_TARGET_SSSE3
void ssse3_xor(uint8_t* dst, const uint8_t* src, size_t n) {
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i a =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    const __m128i b =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_xor_si128(a, b));
  }
  xor_tail(dst + i, src + i, n - i);
}

GALLOPER_TARGET_SSSE3
void ssse3_mul(uint8_t* dst, uint8_t c, const uint8_t* src, size_t n) {
  const NibbleTab& t = nibble_tab(c);
  const __m128i lo = _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo));
  const __m128i hi = _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi));
  const __m128i mask = _mm_set1_epi8(0x0f);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i l = _mm_shuffle_epi8(lo, _mm_and_si128(v, mask));
    const __m128i h =
        _mm_shuffle_epi8(hi, _mm_and_si128(_mm_srli_epi64(v, 4), mask));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_xor_si128(l, h));
  }
  mul_tail(dst + i, mul_row(c), src + i, n - i);
}

GALLOPER_TARGET_SSSE3
void ssse3_mad(uint8_t* dst, uint8_t c, const uint8_t* src, size_t n) {
  const NibbleTab& t = nibble_tab(c);
  const __m128i lo = _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo));
  const __m128i hi = _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi));
  const __m128i mask = _mm_set1_epi8(0x0f);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i l = _mm_shuffle_epi8(lo, _mm_and_si128(v, mask));
    const __m128i h =
        _mm_shuffle_epi8(hi, _mm_and_si128(_mm_srli_epi64(v, 4), mask));
    const __m128i d =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_xor_si128(d, _mm_xor_si128(l, h)));
  }
  mad_tail(dst + i, mul_row(c), src + i, n - i);
}

// One 16-byte product for source j inside the fused loops.
#define GALLOPER_SSSE3_TERM(j)                                             \
  do {                                                                     \
    const __m128i v =                                                      \
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src[j] + i));     \
    acc = _mm_xor_si128(                                                   \
        acc, _mm_xor_si128(                                                \
                 _mm_shuffle_epi8(lo[j], _mm_and_si128(v, mask)),          \
                 _mm_shuffle_epi8(                                         \
                     hi[j], _mm_and_si128(_mm_srli_epi64(v, 4), mask)))); \
  } while (0)

GALLOPER_TARGET_SSSE3
void ssse3_mad2(uint8_t* dst, const uint8_t* c, const uint8_t* const* src,
                size_t n) {
  __m128i lo[2], hi[2];
  for (unsigned j = 0; j < 2; ++j) {
    const NibbleTab& t = nibble_tab(c[j]);
    lo[j] = _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo));
    hi[j] = _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi));
  }
  const __m128i mask = _mm_set1_epi8(0x0f);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m128i acc = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    GALLOPER_SSSE3_TERM(0);
    GALLOPER_SSSE3_TERM(1);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), acc);
  }
  for (unsigned j = 0; j < 2; ++j)
    mad_tail(dst + i, mul_row(c[j]), src[j] + i, n - i);
}

GALLOPER_TARGET_SSSE3
void ssse3_mad3(uint8_t* dst, const uint8_t* c, const uint8_t* const* src,
                size_t n) {
  __m128i lo[3], hi[3];
  for (unsigned j = 0; j < 3; ++j) {
    const NibbleTab& t = nibble_tab(c[j]);
    lo[j] = _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo));
    hi[j] = _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi));
  }
  const __m128i mask = _mm_set1_epi8(0x0f);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m128i acc = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    GALLOPER_SSSE3_TERM(0);
    GALLOPER_SSSE3_TERM(1);
    GALLOPER_SSSE3_TERM(2);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), acc);
  }
  for (unsigned j = 0; j < 3; ++j)
    mad_tail(dst + i, mul_row(c[j]), src[j] + i, n - i);
}

GALLOPER_TARGET_SSSE3
void ssse3_mad4(uint8_t* dst, const uint8_t* c, const uint8_t* const* src,
                size_t n) {
  __m128i lo[4], hi[4];
  for (unsigned j = 0; j < 4; ++j) {
    const NibbleTab& t = nibble_tab(c[j]);
    lo[j] = _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo));
    hi[j] = _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi));
  }
  const __m128i mask = _mm_set1_epi8(0x0f);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m128i acc = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    GALLOPER_SSSE3_TERM(0);
    GALLOPER_SSSE3_TERM(1);
    GALLOPER_SSSE3_TERM(2);
    GALLOPER_SSSE3_TERM(3);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), acc);
  }
  for (unsigned j = 0; j < 4; ++j)
    mad_tail(dst + i, mul_row(c[j]), src[j] + i, n - i);
}

// Overwrite-mode fused kernels: identical to the mad forms except the
// accumulator starts at zero instead of the current dst, and the scalar
// tail writes the first source's products (mul) before accumulating the
// rest (mad) — so dst is never read.
GALLOPER_TARGET_SSSE3
void ssse3_mul2(uint8_t* dst, const uint8_t* c, const uint8_t* const* src,
                size_t n) {
  __m128i lo[2], hi[2];
  for (unsigned j = 0; j < 2; ++j) {
    const NibbleTab& t = nibble_tab(c[j]);
    lo[j] = _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo));
    hi[j] = _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi));
  }
  const __m128i mask = _mm_set1_epi8(0x0f);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m128i acc = _mm_setzero_si128();
    GALLOPER_SSSE3_TERM(0);
    GALLOPER_SSSE3_TERM(1);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), acc);
  }
  mul_tail(dst + i, mul_row(c[0]), src[0] + i, n - i);
  mad_tail(dst + i, mul_row(c[1]), src[1] + i, n - i);
}

GALLOPER_TARGET_SSSE3
void ssse3_mul3(uint8_t* dst, const uint8_t* c, const uint8_t* const* src,
                size_t n) {
  __m128i lo[3], hi[3];
  for (unsigned j = 0; j < 3; ++j) {
    const NibbleTab& t = nibble_tab(c[j]);
    lo[j] = _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo));
    hi[j] = _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi));
  }
  const __m128i mask = _mm_set1_epi8(0x0f);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m128i acc = _mm_setzero_si128();
    GALLOPER_SSSE3_TERM(0);
    GALLOPER_SSSE3_TERM(1);
    GALLOPER_SSSE3_TERM(2);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), acc);
  }
  mul_tail(dst + i, mul_row(c[0]), src[0] + i, n - i);
  for (unsigned j = 1; j < 3; ++j)
    mad_tail(dst + i, mul_row(c[j]), src[j] + i, n - i);
}

GALLOPER_TARGET_SSSE3
void ssse3_mul4(uint8_t* dst, const uint8_t* c, const uint8_t* const* src,
                size_t n) {
  __m128i lo[4], hi[4];
  for (unsigned j = 0; j < 4; ++j) {
    const NibbleTab& t = nibble_tab(c[j]);
    lo[j] = _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo));
    hi[j] = _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi));
  }
  const __m128i mask = _mm_set1_epi8(0x0f);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m128i acc = _mm_setzero_si128();
    GALLOPER_SSSE3_TERM(0);
    GALLOPER_SSSE3_TERM(1);
    GALLOPER_SSSE3_TERM(2);
    GALLOPER_SSSE3_TERM(3);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), acc);
  }
  mul_tail(dst + i, mul_row(c[0]), src[0] + i, n - i);
  for (unsigned j = 1; j < 4; ++j)
    mad_tail(dst + i, mul_row(c[j]), src[j] + i, n - i);
}

#undef GALLOPER_SSSE3_TERM

// ---- AVX2 ---------------------------------------------------------------

GALLOPER_TARGET_AVX2
void avx2_xor(uint8_t* dst, const uint8_t* src, size_t n) {
  size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m256i a0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i a1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i + 32));
    const __m256i b0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i b1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 32));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(a0, b0));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 32),
                        _mm256_xor_si256(a1, b1));
  }
  for (; i + 32 <= n; i += 32) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(a, b));
  }
  xor_tail(dst + i, src + i, n - i);
}

// Loads a NibbleTab half into both 128-bit lanes (VPSHUFB shuffles within
// lanes, so the table must be duplicated).
GALLOPER_TARGET_AVX2
inline __m256i load_tab256(const Elem* half) {
  return _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(half)));
}

// 32 product bytes for (v, lo, hi).
#define GALLOPER_AVX2_PROD(v, lo, hi)                                  \
  _mm256_xor_si256(                                                    \
      _mm256_shuffle_epi8((lo), _mm256_and_si256((v), mask)),          \
      _mm256_shuffle_epi8(                                             \
          (hi), _mm256_and_si256(_mm256_srli_epi64((v), 4), mask)))

GALLOPER_TARGET_AVX2
void avx2_mul(uint8_t* dst, uint8_t c, const uint8_t* src, size_t n) {
  const NibbleTab& t = nibble_tab(c);
  const __m256i lo = load_tab256(t.lo);
  const __m256i hi = load_tab256(t.hi);
  const __m256i mask = _mm256_set1_epi8(0x0f);
  size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m256i v0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i v1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 32));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        GALLOPER_AVX2_PROD(v0, lo, hi));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 32),
                        GALLOPER_AVX2_PROD(v1, lo, hi));
  }
  for (; i + 32 <= n; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        GALLOPER_AVX2_PROD(v, lo, hi));
  }
  mul_tail(dst + i, mul_row(c), src + i, n - i);
}

GALLOPER_TARGET_AVX2
void avx2_mad(uint8_t* dst, uint8_t c, const uint8_t* src, size_t n) {
  const NibbleTab& t = nibble_tab(c);
  const __m256i lo = load_tab256(t.lo);
  const __m256i hi = load_tab256(t.hi);
  const __m256i mask = _mm256_set1_epi8(0x0f);
  size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m256i v0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i v1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 32));
    const __m256i d0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i d1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i + 32));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(dst + i),
        _mm256_xor_si256(d0, GALLOPER_AVX2_PROD(v0, lo, hi)));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(dst + i + 32),
        _mm256_xor_si256(d1, GALLOPER_AVX2_PROD(v1, lo, hi)));
  }
  for (; i + 32 <= n; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(d, GALLOPER_AVX2_PROD(v, lo, hi)));
  }
  mad_tail(dst + i, mul_row(c), src + i, n - i);
}

#define GALLOPER_AVX2_TERM(j)                                          \
  do {                                                                 \
    const __m256i v =                                                  \
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src[j] + i)); \
    acc = _mm256_xor_si256(acc, GALLOPER_AVX2_PROD(v, lo[j], hi[j]));  \
  } while (0)

GALLOPER_TARGET_AVX2
void avx2_mad2(uint8_t* dst, const uint8_t* c, const uint8_t* const* src,
               size_t n) {
  __m256i lo[2], hi[2];
  for (unsigned j = 0; j < 2; ++j) {
    const NibbleTab& t = nibble_tab(c[j]);
    lo[j] = load_tab256(t.lo);
    hi[j] = load_tab256(t.hi);
  }
  const __m256i mask = _mm256_set1_epi8(0x0f);
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    __m256i acc =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    GALLOPER_AVX2_TERM(0);
    GALLOPER_AVX2_TERM(1);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), acc);
  }
  for (unsigned j = 0; j < 2; ++j)
    mad_tail(dst + i, mul_row(c[j]), src[j] + i, n - i);
}

GALLOPER_TARGET_AVX2
void avx2_mad3(uint8_t* dst, const uint8_t* c, const uint8_t* const* src,
               size_t n) {
  __m256i lo[3], hi[3];
  for (unsigned j = 0; j < 3; ++j) {
    const NibbleTab& t = nibble_tab(c[j]);
    lo[j] = load_tab256(t.lo);
    hi[j] = load_tab256(t.hi);
  }
  const __m256i mask = _mm256_set1_epi8(0x0f);
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    __m256i acc =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    GALLOPER_AVX2_TERM(0);
    GALLOPER_AVX2_TERM(1);
    GALLOPER_AVX2_TERM(2);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), acc);
  }
  for (unsigned j = 0; j < 3; ++j)
    mad_tail(dst + i, mul_row(c[j]), src[j] + i, n - i);
}

GALLOPER_TARGET_AVX2
void avx2_mad4(uint8_t* dst, const uint8_t* c, const uint8_t* const* src,
               size_t n) {
  __m256i lo[4], hi[4];
  for (unsigned j = 0; j < 4; ++j) {
    const NibbleTab& t = nibble_tab(c[j]);
    lo[j] = load_tab256(t.lo);
    hi[j] = load_tab256(t.hi);
  }
  const __m256i mask = _mm256_set1_epi8(0x0f);
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    __m256i acc =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    GALLOPER_AVX2_TERM(0);
    GALLOPER_AVX2_TERM(1);
    GALLOPER_AVX2_TERM(2);
    GALLOPER_AVX2_TERM(3);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), acc);
  }
  for (unsigned j = 0; j < 4; ++j)
    mad_tail(dst + i, mul_row(c[j]), src[j] + i, n - i);
}

GALLOPER_TARGET_AVX2
void avx2_mul2(uint8_t* dst, const uint8_t* c, const uint8_t* const* src,
               size_t n) {
  __m256i lo[2], hi[2];
  for (unsigned j = 0; j < 2; ++j) {
    const NibbleTab& t = nibble_tab(c[j]);
    lo[j] = load_tab256(t.lo);
    hi[j] = load_tab256(t.hi);
  }
  const __m256i mask = _mm256_set1_epi8(0x0f);
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    __m256i acc = _mm256_setzero_si256();
    GALLOPER_AVX2_TERM(0);
    GALLOPER_AVX2_TERM(1);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), acc);
  }
  mul_tail(dst + i, mul_row(c[0]), src[0] + i, n - i);
  mad_tail(dst + i, mul_row(c[1]), src[1] + i, n - i);
}

GALLOPER_TARGET_AVX2
void avx2_mul3(uint8_t* dst, const uint8_t* c, const uint8_t* const* src,
               size_t n) {
  __m256i lo[3], hi[3];
  for (unsigned j = 0; j < 3; ++j) {
    const NibbleTab& t = nibble_tab(c[j]);
    lo[j] = load_tab256(t.lo);
    hi[j] = load_tab256(t.hi);
  }
  const __m256i mask = _mm256_set1_epi8(0x0f);
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    __m256i acc = _mm256_setzero_si256();
    GALLOPER_AVX2_TERM(0);
    GALLOPER_AVX2_TERM(1);
    GALLOPER_AVX2_TERM(2);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), acc);
  }
  mul_tail(dst + i, mul_row(c[0]), src[0] + i, n - i);
  for (unsigned j = 1; j < 3; ++j)
    mad_tail(dst + i, mul_row(c[j]), src[j] + i, n - i);
}

GALLOPER_TARGET_AVX2
void avx2_mul4(uint8_t* dst, const uint8_t* c, const uint8_t* const* src,
               size_t n) {
  __m256i lo[4], hi[4];
  for (unsigned j = 0; j < 4; ++j) {
    const NibbleTab& t = nibble_tab(c[j]);
    lo[j] = load_tab256(t.lo);
    hi[j] = load_tab256(t.hi);
  }
  const __m256i mask = _mm256_set1_epi8(0x0f);
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    __m256i acc = _mm256_setzero_si256();
    GALLOPER_AVX2_TERM(0);
    GALLOPER_AVX2_TERM(1);
    GALLOPER_AVX2_TERM(2);
    GALLOPER_AVX2_TERM(3);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), acc);
  }
  mul_tail(dst + i, mul_row(c[0]), src[0] + i, n - i);
  for (unsigned j = 1; j < 4; ++j)
    mad_tail(dst + i, mul_row(c[j]), src[j] + i, n - i);
}

#undef GALLOPER_AVX2_TERM
#undef GALLOPER_AVX2_PROD

constexpr RegionKernels kSsse3Kernels = {
    ssse3_xor,  ssse3_mul,  ssse3_mad,  ssse3_mad2, ssse3_mad3,
    ssse3_mad4, ssse3_mul2, ssse3_mul3, ssse3_mul4,
};

constexpr RegionKernels kAvx2Kernels = {
    avx2_xor,  avx2_mul,  avx2_mad,  avx2_mad2, avx2_mad3,
    avx2_mad4, avx2_mul2, avx2_mul3, avx2_mul4,
};

}  // namespace

const RegionKernels* ssse3_kernels() { return &kSsse3Kernels; }
const RegionKernels* avx2_kernels() { return &kAvx2Kernels; }

}  // namespace galloper::gf::detail

#else  // non-x86: SIMD requested but no implementation for this target.

namespace galloper::gf::detail {
const RegionKernels* ssse3_kernels() { return nullptr; }
const RegionKernels* avx2_kernels() { return nullptr; }
}  // namespace galloper::gf::detail

#endif  // architecture

#endif  // GALLOPER_SIMD
