#include "gf/cpuid.h"

namespace galloper::gf {

#if defined(__x86_64__) || defined(__i386__)

bool cpu_has_ssse3() { return __builtin_cpu_supports("ssse3"); }
bool cpu_has_avx2() { return __builtin_cpu_supports("avx2"); }

#else

bool cpu_has_ssse3() { return false; }
bool cpu_has_avx2() { return false; }

#endif

}  // namespace galloper::gf
