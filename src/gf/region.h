// Bulk (region) kernels over GF(2^8): the operations an erasure-code encoder
// spends its time in. Equivalent to ISA-L's gf_vect_mul / gf_vect_mad.
//
// Every kernel is backed by runtime-dispatched implementations (scalar
// reference, SSSE3, AVX2 — see region_dispatch.h); all backends are
// bit-identical, so callers never care which one runs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "gf/gf256.h"

namespace galloper::gf {

// dst ^= src (vector add in GF(2^8)). Sizes must match.
void xor_region(std::span<uint8_t> dst, std::span<const uint8_t> src);

// dst = c · src.
void mul_region(std::span<uint8_t> dst, Elem c, std::span<const uint8_t> src);

// dst ^= c · src  (multiply-accumulate — the encoder inner loop).
void mul_acc_region(std::span<uint8_t> dst, Elem c,
                    std::span<const uint8_t> src);

// dst ^= Σ_{i<nsrc} coeffs[i] · srcs[i]  (fused multi-source
// multiply-accumulate, ISA-L's gf_Nvect_mad shape). Each srcs[i] must be
// dst-sized; zero coefficients are skipped. Sources are consumed in groups
// of up to four per pass over dst and the work is tiled to cache-sized
// chunks, so dst is read/written once per group of terms instead of once
// per term — the encoder's main memory-traffic saving.
void mul_acc_region_multi(std::span<uint8_t> dst,
                          std::span<const Elem> coeffs,
                          const std::span<const uint8_t>* srcs, size_t nsrc);

// dst = Σ_{i<nsrc} coeffs[i] · srcs[i]  (overwrite mode: the first group of
// sources is written into dst without reading it, later groups accumulate;
// an all-zero coefficient set zeroes dst). Lets encode/repair emit parity
// into freshly allocated buffers without a prior zero-fill pass — output
// memory is touched exactly once.
void mul_region_multi(std::span<uint8_t> dst, std::span<const Elem> coeffs,
                      const std::span<const uint8_t>* srcs, size_t nsrc);

// In-place dst = c · dst.
void scale_region(std::span<uint8_t> dst, Elem c);

// Σ_i a[i]·b[i] over the field (both length n).
Elem dot(std::span<const Elem> a, std::span<const Elem> b);

}  // namespace galloper::gf
