// Bulk (region) kernels over GF(2^8): the operations an erasure-code encoder
// spends its time in. Equivalent to ISA-L's gf_vect_mul / gf_vect_mad.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "gf/gf256.h"

namespace galloper::gf {

// dst ^= src (vector add in GF(2^8)). Sizes must match.
void xor_region(std::span<uint8_t> dst, std::span<const uint8_t> src);

// dst = c · src.
void mul_region(std::span<uint8_t> dst, Elem c, std::span<const uint8_t> src);

// dst ^= c · src  (multiply-accumulate — the encoder inner loop).
void mul_acc_region(std::span<uint8_t> dst, Elem c,
                    std::span<const uint8_t> src);

// In-place dst = c · dst.
void scale_region(std::span<uint8_t> dst, Elem c);

// Σ_i a[i]·b[i] over the field (both length n).
Elem dot(std::span<const Elem> a, std::span<const Elem> b);

}  // namespace galloper::gf
