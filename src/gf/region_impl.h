// Internal plumbing shared by the region-kernel backends (region.cc,
// region_simd.cc). Not part of the public API — include region.h and
// region_dispatch.h instead.
#pragma once

#include <cstddef>
#include <cstdint>

#include "gf/gf256.h"

namespace galloper::gf::detail {

// One backend's kernel set. Raw-pointer signatures: span bounds are checked
// once at the public API layer, and the fused entries take parallel arrays
// of coefficients/sources (nsrc fixed per entry point).
struct RegionKernels {
  void (*xor_r)(uint8_t* dst, const uint8_t* src, size_t n);
  // dst = c·src; c ∉ {0, 1} (the public layer peels those).
  void (*mul_r)(uint8_t* dst, uint8_t c, const uint8_t* src, size_t n);
  // dst ^= c·src; c != 0.
  void (*mad_r)(uint8_t* dst, uint8_t c, const uint8_t* src, size_t n);
  // dst ^= Σ_{i<N} c[i]·src[i]; all c[i] != 0. The fused forms read and
  // write dst once per group instead of once per source.
  void (*mad2)(uint8_t* dst, const uint8_t* c, const uint8_t* const* src,
               size_t n);
  void (*mad3)(uint8_t* dst, const uint8_t* c, const uint8_t* const* src,
               size_t n);
  void (*mad4)(uint8_t* dst, const uint8_t* c, const uint8_t* const* src,
               size_t n);
  // dst = Σ_{i<N} c[i]·src[i]; all c[i] != 0. Overwrite-mode siblings of
  // mad2/3/4: dst is written without being read, so freshly allocated
  // parity buffers need no prior zero-fill.
  void (*mul2)(uint8_t* dst, const uint8_t* c, const uint8_t* const* src,
               size_t n);
  void (*mul3)(uint8_t* dst, const uint8_t* c, const uint8_t* const* src,
               size_t n);
  void (*mul4)(uint8_t* dst, const uint8_t* c, const uint8_t* const* src,
               size_t n);
};

// The portable reference backend (always compiled).
const RegionKernels& scalar_kernels();

#ifdef GALLOPER_SIMD
// SIMD backends from region_simd.cc; nullptr when the target architecture
// has no implementation (non-x86 builds with GALLOPER_SIMD still on).
const RegionKernels* ssse3_kernels();
const RegionKernels* avx2_kernels();
#endif

// The currently dispatched backend (resolved on first use; see
// region_dispatch.h for the policy).
const RegionKernels& kernels();

// ---- Shared scalar tails ------------------------------------------------
// Every backend finishes the last n mod W bytes through these, so tail
// behaviour is identical (and tested) across ISAs. `row` is mul_row(c).

inline void mul_tail(uint8_t* dst, const Elem* row, const uint8_t* src,
                     size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] = row[src[i]];
}

inline void mad_tail(uint8_t* dst, const Elem* row, const uint8_t* src,
                     size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] ^= row[src[i]];
}

inline void xor_tail(uint8_t* dst, const uint8_t* src, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] ^= src[i];
}

}  // namespace galloper::gf::detail
