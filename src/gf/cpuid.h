// Runtime CPU feature detection for the SIMD GF(2^8) kernels.
//
// Thin wrapper over the compiler's cpuid support so the dispatch layer
// (region_dispatch.h) never touches compiler builtins directly. On non-x86
// targets every query returns false and the scalar kernels are used.
#pragma once

namespace galloper::gf {

// True iff the running CPU supports the given instruction set.
bool cpu_has_ssse3();
bool cpu_has_avx2();

}  // namespace galloper::gf
