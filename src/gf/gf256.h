// Arithmetic over GF(2^8), the finite field used by all codes in this
// library (the paper's implementation uses the same field via Intel ISA-L;
// we implement it directly — see DESIGN.md "Substitutions").
//
// Field construction: polynomial basis over the AES-standard primitive
// polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11d). Addition is XOR;
// multiplication uses compile-time log/exp tables plus a full 64 KiB
// product table for the hot paths.
#pragma once

#include <array>
#include <cstdint>

namespace galloper::gf {

using Elem = uint8_t;

inline constexpr unsigned kFieldSize = 256;
inline constexpr unsigned kPoly = 0x11d;  // primitive polynomial
inline constexpr Elem kGenerator = 2;     // multiplicative generator

namespace detail {

// Slow bitwise ("Russian peasant") multiply used to build the tables and as
// the reference implementation for tests.
constexpr Elem slow_mul(Elem a, Elem b) {
  unsigned acc = 0;
  unsigned aa = a;
  unsigned bb = b;
  while (bb != 0) {
    if (bb & 1) acc ^= aa;
    aa <<= 1;
    if (aa & 0x100) aa ^= kPoly;
    bb >>= 1;
  }
  return static_cast<Elem>(acc);
}

struct Tables {
  std::array<Elem, 256> exp{};       // exp[i] = g^i, exp[255] = exp[0] = 1
  std::array<uint16_t, 256> log{};   // log[exp[i]] = i; log[0] = 512 sentinel
  std::array<Elem, 256 * 256> mul{};  // mul[a * 256 + b] = a · b
  std::array<Elem, 256> inv{};       // inv[a] = a^-1; inv[0] = 0 sentinel
};

constexpr Tables build_tables() {
  Tables t{};
  Elem x = 1;
  for (unsigned i = 0; i < 255; ++i) {
    t.exp[i] = x;
    t.log[x] = static_cast<uint16_t>(i);
    x = slow_mul(x, kGenerator);
  }
  t.exp[255] = 1;  // wraparound convenience
  t.log[0] = 512;  // sentinel; never a valid exponent sum
  for (unsigned a = 0; a < 256; ++a)
    for (unsigned b = 0; b < 256; ++b)
      t.mul[a * 256 + b] =
          slow_mul(static_cast<Elem>(a), static_cast<Elem>(b));
  t.inv[0] = 0;
  for (unsigned a = 1; a < 256; ++a)
    t.inv[a] = t.exp[(255 - t.log[a]) % 255];
  return t;
}

// Built once at program startup (too large for comfortable constexpr
// evaluation of the 64 KiB product table on every TU; defined in gf256.cc).
extern const Tables kTables;

}  // namespace detail

// Split-nibble product tables, the PSHUFB technique ISA-L uses: any byte b
// factors as (b & 0x0f) ⊕ (b & 0xf0), and multiplication by a constant c is
// linear, so c·b = lo[b & 0x0f] ⊕ hi[b >> 4]. Both halves fit a 16-entry
// table — exactly one SSSE3/AVX2 shuffle register each — turning a 64 KiB
// table walk into two in-register shuffles per 16/32 bytes.
struct NibbleTab {
  alignas(16) Elem lo[16];  // lo[i] = c·i
  alignas(16) Elem hi[16];  // hi[i] = c·(i << 4)
};

namespace detail {
// One NibbleTab per constant c (8 KiB total), built at startup.
extern const std::array<NibbleTab, 256> kNibbleTabs;
}  // namespace detail

// The split-nibble table pair for multiplication by c.
inline const NibbleTab& nibble_tab(Elem c) { return detail::kNibbleTabs[c]; }

// a + b and a - b coincide in characteristic 2.
inline Elem add(Elem a, Elem b) { return a ^ b; }
inline Elem sub(Elem a, Elem b) { return a ^ b; }

inline Elem mul(Elem a, Elem b) {
  return detail::kTables.mul[static_cast<unsigned>(a) * 256 + b];
}

// Multiplicative inverse; a must be nonzero.
Elem inv(Elem a);

// a / b; b must be nonzero.
Elem div(Elem a, Elem b);

// a^e with a in the field and e a non-negative integer exponent.
Elem pow(Elem a, uint64_t e);

// Pointer to the 256-entry product row { c·0, c·1, …, c·255 } — the kernel
// tables use this to multiply a whole region by the constant c.
inline const Elem* mul_row(Elem c) {
  return detail::kTables.mul.data() + static_cast<unsigned>(c) * 256;
}

// Reference (table-free) multiply, exposed for tests.
inline Elem slow_mul(Elem a, Elem b) { return detail::slow_mul(a, b); }

}  // namespace galloper::gf
