// Runtime backend selection for the GF(2^8) region kernels.
//
// The kernels in region.h are implemented several times — a portable scalar
// reference and SSSE3/AVX2 split-nibble (PSHUFB) versions — and routed
// through a function-pointer table resolved once, on first use:
//
//   1. If the environment variable GALLOPER_GF_ISA is set to one of
//      "scalar", "ssse3", "avx2", that backend is requested. A request the
//      build or CPU cannot satisfy is clamped down to the best available
//      backend (with a one-time stderr note), so forced test runs stay
//      portable across machines.
//   2. Otherwise the best backend the CPU supports is picked via cpuid.
//
// All backends produce bit-identical output (tests/gf_region_simd_test.cc
// asserts this); selection only affects throughput.
#pragma once

#include <vector>

namespace galloper::gf {

// Instruction-set levels, in increasing preference order. kScalar is always
// available; the SIMD levels require both compile-time support
// (GALLOPER_SIMD, x86) and the matching CPU feature at runtime.
enum class Isa { kScalar = 0, kSsse3 = 1, kAvx2 = 2 };

// Human-readable backend name ("scalar", "ssse3", "avx2").
const char* isa_name(Isa isa);

// Whether the backend can be selected in this build on this CPU.
bool isa_available(Isa isa);

// The highest-preference available backend.
Isa best_available_isa();

// All available backends, scalar first.
std::vector<Isa> available_isas();

// The backend the region kernels are currently routed to.
Isa active_isa();

// Re-routes the kernels to `isa` (tests and benchmarks use this to compare
// backends). Throws CheckError if the backend is unavailable. Not
// thread-safe against concurrent kernel calls — switch only at quiescent
// points.
void force_isa(Isa isa);

}  // namespace galloper::gf
