#include "gf/gf65536.h"

#include <vector>

#include "util/check.h"

namespace galloper::gf16 {

Elem slow_mul(Elem a, Elem b) {
  uint32_t acc = 0;
  uint32_t aa = a;
  uint32_t bb = b;
  while (bb != 0) {
    if (bb & 1) acc ^= aa;
    aa <<= 1;
    if (aa & 0x10000) aa ^= kPoly;
    bb >>= 1;
  }
  return static_cast<Elem>(acc);
}

namespace {

struct Tables {
  std::vector<Elem> exp;       // size 2^16, exp[i] = g^i (period 65535)
  std::vector<uint32_t> log;   // log[exp[i]] = i; log[0] sentinel

  Tables() : exp(kFieldSize), log(kFieldSize) {
    Elem x = 1;
    for (unsigned i = 0; i < kFieldSize - 1; ++i) {
      exp[i] = x;
      log[x] = i;
      x = slow_mul(x, kGenerator);
    }
    exp[kFieldSize - 1] = 1;
    log[0] = 2 * kFieldSize;  // sentinel, never a valid exponent sum
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

constexpr unsigned kOrder = kFieldSize - 1;  // 65535

}  // namespace

Elem mul(Elem a, Elem b) {
  if (a == 0 || b == 0) return 0;
  const auto& t = tables();
  const uint32_t s = t.log[a] + t.log[b];
  return t.exp[s >= kOrder ? s - kOrder : s];
}

Elem inv(Elem a) {
  GALLOPER_CHECK_MSG(a != 0, "inverse of zero in GF(2^16)");
  const auto& t = tables();
  return t.exp[(kOrder - t.log[a]) % kOrder];
}

Elem div(Elem a, Elem b) {
  GALLOPER_CHECK_MSG(b != 0, "division by zero in GF(2^16)");
  return mul(a, inv(b));
}

Elem pow(Elem a, uint64_t e) {
  if (e == 0) return 1;
  if (a == 0) return 0;
  const auto& t = tables();
  return t.exp[(static_cast<uint64_t>(t.log[a]) * (e % kOrder)) % kOrder];
}

void xor_region(std::span<Elem> dst, std::span<const Elem> src) {
  GALLOPER_CHECK(dst.size() == src.size());
  for (size_t i = 0; i < dst.size(); ++i) dst[i] ^= src[i];
}

namespace {

// Split tables: c·x = c·low(x) ^ c·(high(x)·256), each a 256-entry lookup.
struct SplitTable {
  Elem lo[256];
  Elem hi[256];
  explicit SplitTable(Elem c) {
    for (unsigned b = 0; b < 256; ++b) {
      lo[b] = mul(c, static_cast<Elem>(b));
      hi[b] = mul(c, static_cast<Elem>(b << 8));
    }
  }
  Elem apply(Elem x) const { return lo[x & 0xff] ^ hi[x >> 8]; }
};

}  // namespace

void mul_region(std::span<Elem> dst, Elem c, std::span<const Elem> src) {
  GALLOPER_CHECK(dst.size() == src.size());
  if (c == 0) {
    std::fill(dst.begin(), dst.end(), Elem{0});
    return;
  }
  if (c == 1) {
    std::copy(src.begin(), src.end(), dst.begin());
    return;
  }
  const SplitTable t(c);
  for (size_t i = 0; i < dst.size(); ++i) dst[i] = t.apply(src[i]);
}

void mul_acc_region(std::span<Elem> dst, Elem c, std::span<const Elem> src) {
  GALLOPER_CHECK(dst.size() == src.size());
  if (c == 0) return;
  if (c == 1) {
    xor_region(dst, src);
    return;
  }
  const SplitTable t(c);
  for (size_t i = 0; i < dst.size(); ++i) dst[i] ^= t.apply(src[i]);
}

}  // namespace galloper::gf16
