// Soak harness: a seeded, randomized kill–corrupt–read–update–repair loop
// against a fault-injected FileStore, asserting bit-identity throughout.
//
// Every stochastic choice (which op, which server, which block, which byte)
// comes from one Rng seeded by SoakOptions::seed, and the store's
// FaultInjector shares determinism the same way — so any failure replays
// exactly from the seed the harness prints. The CLI (`galloper soak`) and
// tests/soak_test both drive this entry point; CI runs it as a smoke.
#pragma once

#include <cstdint>
#include <string>

namespace galloper::fault {

struct SoakOptions {
  uint64_t seed = 1;
  size_t ops = 200;       // randomized operations to run
  size_t files = 4;       // files written up front (reference copies kept)
  size_t chunk_bytes = 512;
  // Code parameters (Galloper (k, l, g)). Every scheduled fault — kills,
  // explicit corruptions, AND injected silent write faults (via the
  // injector's write gate) — is admitted only if the affected files stay
  // decodable, so any (k, l, g) is sound; the default g = 2 admits richer
  // concurrent-failure patterns than g = 1 would.
  size_t k = 4;
  size_t l = 2;
  size_t g = 2;
  // Injected fault schedule.
  double bit_flip_rate = 0.05;
  double torn_write_rate = 0.02;
  double read_failure_rate = 0.05;
  // Arm the "store.repair" crash point once mid-run (the harness catches
  // the CrashError and verifies the interrupted repair is re-runnable).
  bool arm_crash = true;
  bool verbose = false;  // print per-phase progress to stdout
};

struct SoakReport {
  size_t ops = 0;               // operations executed
  size_t kills = 0;             // servers killed
  size_t revives = 0;           // servers revived (blocks repaired after)
  size_t corruptions = 0;       // bytes flipped in stored blocks
  size_t reads = 0;             // verified read_range calls
  size_t degraded_reads = 0;    // reads that decoded around corruption
  size_t auto_repairs = 0;      // corrupt blocks self-healed by reads
  size_t updates = 0;           // in-place range updates applied
  size_t updates_refused = 0;   // updates refused on a corrupt stripe
  size_t scrubs = 0;            // scrub_and_repair passes
  size_t scrub_repairs = 0;     // blocks rebuilt by those passes
  size_t repairs = 0;           // lost blocks rebuilt after revives
  size_t crashes_survived = 0;  // injected crashes caught and recovered
  size_t transient_faults = 0;  // injected read faults retried in place
};

// Runs the soak loop. Throws CheckError (with the seed in the message) if
// any read or the final heal-and-verify pass is not bit-identical to the
// reference copies — determinism means the seed reproduces the failure.
SoakReport run_soak(const SoakOptions& options);

// One-line summary ("ops=200 kills=3 ..." ) for CLI / log output.
std::string format_report(const SoakReport& report);

}  // namespace galloper::fault
