// Deterministic fault injection for the storage and archive layers.
//
// The paper's whole value proposition is cheap recovery from failures, yet
// until this subsystem the repo could only simulate CLEAN failures (whole
// servers dropping via FileStore::fail_server). A FaultInjector adds the
// messy ones that dominate real recovery storms:
//
//   * silent bit rot        — a stored block's bytes flip after the CRC was
//                             recorded (detected by scrub / verified reads)
//   * torn writes           — a write persists only a prefix; the tail is
//                             zeroed (CRC mismatch, same detection path)
//   * transient read faults — a helper read fails and must be retried or
//                             routed around
//   * latency spikes        — a helper read stalls; callers with a timeout
//                             budget treat a long stall as a failure
//   * crash points          — named program points that throw CrashError on
//                             their nth hit, simulating the process dying
//                             mid-repair / mid-encode (the caller's cleanup
//                             does NOT run for a crash — debris like .tmp
//                             files is left behind for startup recovery)
//
// Every decision is drawn from one seeded Rng under a mutex, so a given
// (seed, call sequence) replays exactly — the soak harness prints its seed
// and any failure reproduces from it.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>

#include "util/rng.h"

namespace galloper::fault {

// Simulated process death at an armed crash point. Deliberately NOT a
// CheckError: cleanup handlers rethrow it without running (a real crash
// would not unwind), so tests observe the debris a crash leaves.
class CrashError : public std::runtime_error {
 public:
  explicit CrashError(const std::string& point)
      : std::runtime_error("injected crash at " + point), point_(point) {}
  const std::string& point() const { return point_; }

 private:
  std::string point_;
};

// A transient read fault that persisted through every retry. Callers either
// route around the failing source (repair falls back to other helpers) or
// surface it; it never means "data unrecoverable".
class TransientError : public std::runtime_error {
 public:
  explicit TransientError(const std::string& what)
      : std::runtime_error(what) {}
};

struct FaultStats {
  uint64_t bit_flips = 0;       // silent corruptions applied to writes
  uint64_t torn_writes = 0;     // writes persisted only as a prefix
  uint64_t write_vetoes = 0;    // write faults refused by the gate
  uint64_t read_failures = 0;   // transient read faults injected
  uint64_t latency_spikes = 0;  // reads that drew a latency spike
  uint64_t crashes = 0;         // crash points fired
  uint64_t decisions = 0;       // total schedule draws (determinism probe)
};

class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed);

  // ---- Schedule configuration (probabilities in [0, 1]) -----------------
  void set_bit_flip_rate(double p);
  void set_torn_write_rate(double p);
  void set_read_failure_rate(double p);
  // With probability `p`, a read stalls for `seconds` before completing.
  void set_read_latency(double p, double seconds);
  // Zeroes every rate and disarms crash points (the soak harness calls this
  // before its final heal-and-verify phase).
  void clear();

  // Forces the next `n` read_fails() calls to return true, regardless of
  // the configured rate — deterministic retry tests.
  void fail_next_reads(size_t n);

  // Forces the next `n` read_latency() calls to return `seconds`, ahead of
  // the rate draw and WITHOUT consuming rng state — deterministic hedging
  // tests schedule exactly one slow helper without perturbing the rest of
  // the fault sequence.
  void stall_next_reads(size_t n, double seconds);

  // Harness veto over write faults. When set, a write fault the schedule
  // has drawn for block `block` of file `file` is applied only if the gate
  // returns true. The system under test stays blind — the gate lets the
  // TEST DRIVER (which owns the injector) refuse fault patterns the code
  // could never absorb, e.g. the soak harness vetoes a silent corruption
  // that would push a file past the erasure code's tolerance, because data
  // that is legitimately lost would fail its bit-identity checks by
  // design. Vetoes consume the same schedule draws, so enabling a gate
  // does not perturb the decision sequence. Null (default) disables.
  using WriteGate = std::function<bool(size_t file, size_t block)>;
  void set_write_gate(WriteGate gate);

  // Arms `point` to crash on its nth upcoming hit (1-based). Re-arming
  // replaces the previous count.
  void arm_crash(const std::string& point, size_t nth = 1);

  // ---- Hooks (thread-safe; deterministic given seed + call order) -------

  // Applies the write-fault schedule to block `block` of file `file`
  // about to be stored: may flip one byte (silent bit rot) or zero a
  // suffix (torn write), subject to the write gate. The caller records the
  // TRUE checksum before calling, so an injected fault is exactly a silent
  // corruption the CRC paths must catch.
  void on_write(size_t file, size_t block, std::span<uint8_t> data);

  // True if this read should fail transiently (caller retries or reroutes).
  bool read_fails();

  // Injected stall for this read, in seconds (0 = none). Callers with a
  // timeout budget treat a stall above it as a failed read.
  double read_latency();

  // Throws CrashError if `point` is armed and this is the armed hit.
  void crash_point(const std::string& point);

  FaultStats stats() const;

 private:
  mutable std::mutex mu_;
  Rng rng_;
  double bit_flip_rate_ = 0;
  double torn_write_rate_ = 0;
  double read_failure_rate_ = 0;
  double latency_rate_ = 0;
  double latency_seconds_ = 0;
  size_t forced_read_failures_ = 0;
  size_t forced_stalls_ = 0;
  double forced_stall_seconds_ = 0;
  WriteGate write_gate_;
  std::map<std::string, size_t> armed_;  // point → hits until crash
  FaultStats stats_;
};

// Process-global injector consulted by layers that have no per-call handle
// (the CLI archive pipeline's file I/O). Null by default; the soak harness
// and tests install one. Not owned.
FaultInjector* global();
void set_global(FaultInjector* injector);

}  // namespace galloper::fault
