#include "fault/soak.h"

#include <cstdio>
#include <set>
#include <vector>

#include "core/galloper.h"
#include "fault/fault.h"
#include "sim/cluster.h"
#include "store/file_store.h"
#include "util/bytes.h"
#include "util/check.h"
#include "util/rng.h"

namespace galloper::fault {
namespace {

// Rebuilds lost blocks of every file, retrying repairs that keep drawing
// transient helper-read faults. Used after revives, refused updates, and
// injected crashes — all of which leave blocks lost/quarantined.
//
// Multi-pass: repair() CRC-verifies its helpers and quarantines a silently
// corrupt one, which can make block A unrecoverable until block B (the
// quarantined helper) heals first — so passes repeat while they make
// progress. Mid-run (`strict` false) blocks that still cannot be rebuilt —
// e.g. their helpers sit on dead servers — are simply left lost for a later
// revive/heal to pick up; only the final pass demands everything heals.
size_t heal_lost(store::FileStore& fs, SoakOptions const& opt, bool strict) {
  size_t repaired = 0;
  for (;;) {
    bool progress = false;
    bool remaining = false;
    for (store::FileId id = 0; id < fs.num_files(); ++id) {
      for (size_t b : fs.lost_blocks(id)) {
        // A block on a still-dead server has nowhere to be stored back;
        // it is healed by the revive op (or the final pass) later.
        if (!fs.cluster().server(fs.server_of(b)).alive()) {
          remaining = true;
          continue;
        }
        try {
          const auto helpers = fs.repair(id, b);
          if (helpers.has_value()) {
            ++repaired;
            progress = true;
          } else {
            remaining = true;  // maybe unblocked by a peer healing this pass
          }
        } catch (const TransientError&) {
          // Injected transient faults: the schedule is probabilistic, so a
          // later pass re-rolls and eventually succeeds.
          remaining = true;
          progress = true;
        }
      }
    }
    if (!remaining) break;
    if (!progress) {
      GALLOPER_CHECK_MSG(!strict,
                         "soak seed " + std::to_string(opt.seed) +
                             ": lost block became unrecoverable");
      break;
    }
  }
  return repaired;
}

void check_identical(const Buffer& got, ConstByteSpan want, uint64_t seed,
                     const char* what) {
  GALLOPER_CHECK_MSG(
      got.size() == want.size() &&
          std::equal(got.begin(), got.end(), want.begin()),
      std::string(what) + " not bit-identical (reproduce with --seed=" +
          std::to_string(seed) + ")");
}

}  // namespace

SoakReport run_soak(const SoakOptions& options) {
  GALLOPER_CHECK(options.files >= 1 && options.chunk_bytes >= 1);
  SoakReport report;
  Rng rng(options.seed);

  core::GalloperCode code(options.k, options.l, options.g);
  const size_t num_blocks = code.num_blocks();
  sim::Simulation simulation;
  sim::Cluster cluster(simulation, num_blocks + 2, sim::ServerSpec{});
  store::FileStore fs(cluster, code);

  FaultInjector injector(options.seed ^ 0x5eedfau);
  injector.set_bit_flip_rate(options.bit_flip_rate);
  injector.set_torn_write_rate(options.torn_write_rate);
  injector.set_read_failure_rate(options.read_failure_rate);
  fs.set_fault_injector(&injector);

  // The harness's soundness invariant: at ALL times every file is decodable
  // from its available, non-corrupt blocks — data the code legitimately
  // loses would fail the final bit-identity check BY DESIGN, so the harness
  // must never schedule a fault pattern past the code's tolerance. It
  // enforces this exactly, not probabilistically: `known_bad[id]` is a
  // conservative overapproximation of file id's silently-corrupt blocks
  // (every corruption source inserts immediately — the explicit corrupt op
  // below, and injected write faults via the injector's write gate; heals
  // are only observed at the per-op resync, which re-tightens the set from
  // a non-quarantining scrub). Every kill / corruption / write fault is
  // admitted only if the affected file(s) stay decodable from
  // available ∖ known_bad ∖ {the new casualty}. The store under test stays
  // blind; only the test driver sees the schedule.
  std::vector<std::set<size_t>> known_bad(options.files);

  // Decodable from the available, not-known-bad blocks of `id`, minus `b`?
  // During the initial fs.write the file is not registered yet (its id
  // equals num_files()), so availability falls back to server liveness.
  const auto survives_loss = [&](size_t id, size_t b) {
    std::vector<size_t> avail;
    for (size_t x = 0; x < num_blocks; ++x) {
      if (x == b || known_bad[id].count(x)) continue;
      const bool present = id < fs.num_files()
                               ? fs.block_available(id, x)
                               : cluster.server(fs.server_of(x)).alive();
      if (present) avail.push_back(x);
    }
    return code.decodable(avail);
  };

  injector.set_write_gate([&](size_t id, size_t b) {
    if (!survives_loss(id, b)) return false;
    known_bad[id].insert(b);
    return true;
  });

  // Reference copies: the ground truth every read is compared against.
  // Write-time faults can corrupt stored blocks immediately, so reads may
  // be degraded from op #0 — the harness only requires that the BYTES the
  // store returns match the reference, never that the path was clean.
  std::vector<Buffer> reference;
  for (size_t i = 0; i < options.files; ++i) {
    const size_t chunk = options.chunk_bytes + 32 * (i % 3);
    reference.push_back(
        random_buffer(code.engine().num_chunks() * chunk, rng));
    fs.write(reference.back());
  }

  std::vector<bool> dead(num_blocks, false);
  size_t dead_count = 0;
  const size_t crash_at = options.arm_crash ? options.ops / 2 : SIZE_MAX;

  // Can server `s` be killed — losing block s of EVERY file at once —
  // while the soundness invariant holds?
  const auto killable = [&](size_t s) {
    for (store::FileId id = 0; id < fs.num_files(); ++id)
      if (!survives_loss(id, s)) return false;
    return true;
  };

  // Re-tightens known_bad to the truth between ops: gate insertions are
  // immediate, but heals (read_range auto-repairs, scrubs, repairs) are
  // only observed here, so mid-op the set conservatively overapproximates.
  const auto resync_known_bad = [&] {
    for (auto& bad : known_bad) bad.clear();
    for (const auto& cb : fs.scrub(/*quarantine=*/false))
      known_bad[cb.file].insert(cb.block);
  };

  for (size_t op = 0; op < options.ops; ++op) {
    ++report.ops;

    if (op == crash_at) {
      // Corrupt a block, arm the crash point inside repair, and drive the
      // repair through a degraded read. The CrashError must leave the
      // quarantined block simply lost (NOT half-installed) so a later
      // repair completes it — crash-idempotence of the store's repair.
      const store::FileId id = rng.next_below(options.files);
      size_t b = rng.next_below(num_blocks);
      while (!fs.block_available(id, b)) b = (b + 1) % num_blocks;
      injector.arm_crash("store.repair");
      if (survives_loss(id, b)) {
        known_bad[id].insert(b);
        fs.corrupt_block(id, b, rng.next_below(fs.block_bytes(id)));
        ++report.corruptions;
        try {
          (void)fs.read_range(id, 0, fs.file_bytes(id));
        } catch (const CrashError&) {
          ++report.crashes_survived;
        }
        (void)heal_lost(fs, options, /*strict=*/false);
        // Transient read faults are still firing, so retry the post-crash
        // verification read until it lands (each attempt re-rolls).
        std::optional<Buffer> back;
        for (int t = 0; t < 1000 && !back.has_value(); ++t)
          back = fs.read_range(id, 0, fs.file_bytes(id));
        GALLOPER_CHECK_MSG(back.has_value(),
                           "soak seed " + std::to_string(options.seed) +
                               ": post-crash read kept failing");
        check_identical(*back, reference[id], options.seed,
                        "post-crash repair");
      }
      // If the invariant check refused the corruption, the armed crash
      // simply fires at whatever repair runs next; the op-level handler
      // below absorbs it.
      resync_known_bad();
      continue;
    }

    try {
    switch (rng.next_below(6)) {
      case 0: {  // kill a server (only while the invariant survives it)
        if (dead_count + 1 >= num_blocks) break;
        size_t s = rng.next_below(num_blocks);
        while (dead[s]) s = (s + 1) % num_blocks;
        if (!killable(s)) break;
        fs.fail_server(s);
        dead[s] = true;
        ++dead_count;
        ++report.kills;
        break;
      }
      case 1: {  // revive a dead server and rebuild its blocks
        if (dead_count == 0) break;
        size_t s = rng.next_below(num_blocks);
        while (!dead[s]) s = (s + 1) % num_blocks;
        fs.revive_server(s);
        dead[s] = false;
        --dead_count;
        ++report.revives;
        report.repairs += heal_lost(fs, options, /*strict=*/false);
        break;
      }
      case 2: {  // silent corruption (kept within the code's tolerance)
        const store::FileId id = rng.next_below(options.files);
        const size_t b = rng.next_below(num_blocks);
        if (!fs.block_available(id, b) || !survives_loss(id, b)) break;
        known_bad[id].insert(b);
        fs.corrupt_block(id, b, rng.next_below(fs.block_bytes(id)));
        ++report.corruptions;
        break;
      }
      case 3: {  // verified ranged read (the self-healing path)
        const store::FileId id = rng.next_below(options.files);
        const size_t bytes = fs.file_bytes(id);
        const size_t off = rng.next_below(bytes);
        const size_t len = 1 + rng.next_below(bytes - off);
        const size_t transients_before = fs.read_stats().transient_faults;
        const size_t quarantines_before = fs.read_stats().crc_failures;
        const bool degraded_before = !fs.lost_blocks(id).empty();
        const auto got = fs.read_range(id, off, len);
        if (!got.has_value()) {
          // Acceptable only in a degraded state the schedule explains: a
          // transient-fault storm blinded enough helpers DURING this read,
          // the read itself just quarantined freshly discovered silent
          // corruptions, or the file already had blocks down (lost on dead
          // servers, or quarantined by an earlier read/scrub and not yet
          // healed). A clean store refusing a read is a real bug, and
          // genuine data loss still fails the strict final verify. Heal
          // what can be healed so the run keeps making progress.
          GALLOPER_CHECK_MSG(
              fs.read_stats().transient_faults > transients_before ||
                  fs.read_stats().crc_failures > quarantines_before ||
                  degraded_before,
              "soak seed " + std::to_string(options.seed) +
                  ": read_range failed on recoverable store");
          report.repairs += heal_lost(fs, options, /*strict=*/false);
          break;
        }
        check_identical(*got,
                        ConstByteSpan(reference[id]).subspan(off, len),
                        options.seed, "ranged read");
        ++report.reads;
        break;
      }
      case 4: {  // chunk-aligned in-place update
        if (dead_count > 0) break;  // updates need every block available
        const store::FileId id = rng.next_below(options.files);
        const size_t chunk = fs.file_bytes(id) / code.engine().num_chunks();
        const size_t chunks = code.engine().num_chunks();
        const size_t first = rng.next_below(chunks);
        const size_t count = 1 + rng.next_below(chunks - first);
        Buffer patch = random_buffer(count * chunk, rng);
        try {
          fs.update_range(id, first * chunk, patch);
          std::copy(patch.begin(), patch.end(),
                    reference[id].begin() +
                        static_cast<ptrdiff_t>(first * chunk));
          ++report.updates;
        } catch (const CheckError&) {
          // The stripe had a silently corrupt block: the update refused
          // (corruption must not be laundered into fresh parity) and
          // quarantined it. Heal and move on.
          ++report.updates_refused;
          (void)heal_lost(fs, options, /*strict=*/false);
        }
        break;
      }
      default: {  // scrub-and-repair pass
        // `unrecoverable` here means "still down NOW" — e.g. a corrupt
        // block whose helpers sit on a dead server. The revive ops and the
        // final heal pass pick those up; only the FINAL scrub must come
        // back fully healed.
        const auto sr = fs.scrub_and_repair();
        ++report.scrubs;
        report.scrub_repairs += sr.repaired;
        break;
      }
    }
    } catch (const CrashError&) {
      // An injected crash killed this op mid-repair (armed by the crash
      // phase when the invariant check refused its corruption). The
      // "process" comes back up and heals: repair is idempotent, so
      // re-running it completes what the crash interrupted.
      ++report.crashes_survived;
      (void)heal_lost(fs, options, /*strict=*/false);
    }
    resync_known_bad();
  }

  // Final heal-and-verify: stop injecting, revive and rebuild everything,
  // then every file must read back bit-identical through both the ranged
  // (CRC-verified) and whole-file (decode) paths.
  injector.clear();
  for (size_t s = 0; s < num_blocks; ++s) {
    if (dead[s]) {
      fs.revive_server(s);
      ++report.revives;
    }
  }
  report.repairs += heal_lost(fs, options, /*strict=*/true);
  const auto final_scrub = fs.scrub_and_repair();
  GALLOPER_CHECK_MSG(final_scrub.unrecoverable == 0,
                     "soak seed " + std::to_string(options.seed) +
                         ": final scrub found unrecoverable corruption");
  report.scrub_repairs += final_scrub.repaired;
  for (store::FileId id = 0; id < fs.num_files(); ++id) {
    const auto ranged = fs.read_range(id, 0, fs.file_bytes(id));
    GALLOPER_CHECK(ranged.has_value());
    check_identical(*ranged, reference[id], options.seed, "final ranged read");
    const auto whole = fs.read(id);
    GALLOPER_CHECK(whole.has_value());
    check_identical(*whole, reference[id], options.seed, "final full read");
  }

  report.degraded_reads = fs.read_stats().degraded_reads;
  report.auto_repairs = fs.read_stats().auto_repairs;
  report.transient_faults = fs.read_stats().transient_faults;
  fs.set_fault_injector(nullptr);

  if (options.verbose) {
    std::printf("soak seed=%llu %s\n",
                static_cast<unsigned long long>(options.seed),
                format_report(report).c_str());
  }
  return report;
}

std::string format_report(const SoakReport& r) {
  char buf[320];
  std::snprintf(buf, sizeof buf,
                "ops=%zu kills=%zu revives=%zu corruptions=%zu reads=%zu "
                "degraded=%zu auto_repairs=%zu updates=%zu refused=%zu "
                "scrubs=%zu scrub_repairs=%zu repairs=%zu crashes=%zu "
                "transients=%zu",
                r.ops, r.kills, r.revives, r.corruptions, r.reads,
                r.degraded_reads, r.auto_repairs, r.updates,
                r.updates_refused, r.scrubs, r.scrub_repairs, r.repairs,
                r.crashes_survived, r.transient_faults);
  return std::string(buf);
}

}  // namespace galloper::fault
