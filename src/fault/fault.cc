#include "fault/fault.h"

#include <atomic>

#include "util/check.h"

namespace galloper::fault {

namespace {

void check_rate(double p) {
  GALLOPER_CHECK_MSG(p >= 0 && p <= 1, "fault rate must be in [0, 1]: " << p);
}

std::atomic<FaultInjector*> g_injector{nullptr};

}  // namespace

FaultInjector::FaultInjector(uint64_t seed) : rng_(seed) {}

void FaultInjector::set_bit_flip_rate(double p) {
  check_rate(p);
  std::lock_guard<std::mutex> lock(mu_);
  bit_flip_rate_ = p;
}

void FaultInjector::set_torn_write_rate(double p) {
  check_rate(p);
  std::lock_guard<std::mutex> lock(mu_);
  torn_write_rate_ = p;
}

void FaultInjector::set_read_failure_rate(double p) {
  check_rate(p);
  std::lock_guard<std::mutex> lock(mu_);
  read_failure_rate_ = p;
}

void FaultInjector::set_read_latency(double p, double seconds) {
  check_rate(p);
  GALLOPER_CHECK_MSG(seconds >= 0, "latency must be >= 0");
  std::lock_guard<std::mutex> lock(mu_);
  latency_rate_ = p;
  latency_seconds_ = seconds;
}

void FaultInjector::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  bit_flip_rate_ = torn_write_rate_ = read_failure_rate_ = latency_rate_ = 0;
  latency_seconds_ = 0;
  forced_read_failures_ = 0;
  forced_stalls_ = 0;
  forced_stall_seconds_ = 0;
  armed_.clear();
}

void FaultInjector::fail_next_reads(size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  forced_read_failures_ = n;
}

void FaultInjector::stall_next_reads(size_t n, double seconds) {
  GALLOPER_CHECK_MSG(seconds >= 0, "latency must be >= 0");
  std::lock_guard<std::mutex> lock(mu_);
  forced_stalls_ = n;
  forced_stall_seconds_ = seconds;
}

void FaultInjector::arm_crash(const std::string& point, size_t nth) {
  GALLOPER_CHECK_MSG(nth >= 1, "crash points are armed on the nth hit");
  std::lock_guard<std::mutex> lock(mu_);
  armed_[point] = nth;
}

void FaultInjector::set_write_gate(WriteGate gate) {
  std::lock_guard<std::mutex> lock(mu_);
  write_gate_ = std::move(gate);
}

void FaultInjector::on_write(size_t file, size_t block, std::span<uint8_t> data) {
  if (data.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.decisions;
  // At most one write fault per block: a torn write dominates a bit flip
  // (the zeroed suffix already breaks the checksum). All schedule draws
  // happen BEFORE the gate is consulted, so a veto consumes the same rng
  // sequence as an applied fault.
  if (rng_.next_double() < torn_write_rate_) {
    const size_t keep = static_cast<size_t>(rng_.next_below(data.size()));
    if (write_gate_ && !write_gate_(file, block)) {
      ++stats_.write_vetoes;
      return;
    }
    std::fill(data.begin() + static_cast<ptrdiff_t>(keep), data.end(), 0);
    // A torn write that kept everything (or tore to identical zeros) would
    // be invisible; force at least one damaged byte so every injected
    // fault is observable by the CRC paths.
    data[keep == data.size() ? data.size() - 1 : keep] ^= 0xFF;
    ++stats_.torn_writes;
    return;
  }
  if (rng_.next_double() < bit_flip_rate_) {
    const size_t at = static_cast<size_t>(rng_.next_below(data.size()));
    const uint8_t bit =
        static_cast<uint8_t>(1u << rng_.next_below(8));
    if (write_gate_ && !write_gate_(file, block)) {
      ++stats_.write_vetoes;
      return;
    }
    data[at] ^= bit;
    ++stats_.bit_flips;
  }
}

bool FaultInjector::read_fails() {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.decisions;
  if (forced_read_failures_ > 0) {
    --forced_read_failures_;
    ++stats_.read_failures;
    return true;
  }
  if (rng_.next_double() < read_failure_rate_) {
    ++stats_.read_failures;
    return true;
  }
  return false;
}

double FaultInjector::read_latency() {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.decisions;
  // Forced stalls come first and draw no rng, so a scheduled stall leaves
  // every other fault decision in the run exactly where it was.
  if (forced_stalls_ > 0) {
    --forced_stalls_;
    ++stats_.latency_spikes;
    return forced_stall_seconds_;
  }
  if (latency_rate_ > 0 && rng_.next_double() < latency_rate_) {
    ++stats_.latency_spikes;
    return latency_seconds_;
  }
  return 0;
}

void FaultInjector::crash_point(const std::string& point) {
  std::unique_lock<std::mutex> lock(mu_);
  const auto it = armed_.find(point);
  if (it == armed_.end()) return;
  if (--it->second > 0) return;
  armed_.erase(it);
  ++stats_.crashes;
  lock.unlock();
  throw CrashError(point);
}

FaultStats FaultInjector::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

FaultInjector* global() { return g_injector.load(std::memory_order_acquire); }

void set_global(FaultInjector* injector) {
  g_injector.store(injector, std::memory_order_release);
}

}  // namespace galloper::fault
