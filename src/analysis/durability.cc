#include "analysis/durability.h"

#include <algorithm>
#include <limits>
#include <map>
#include <set>
#include <vector>

#include "util/check.h"

namespace galloper::analysis {

double mttdl_markov(size_t n, size_t tolerance, double failure_rate,
                    double repair_rate) {
  GALLOPER_CHECK(n > tolerance);
  GALLOPER_CHECK(failure_rate > 0 && repair_rate > 0);
  // States i = 0..t track concurrently failed blocks; state t+1 absorbs
  // (data loss). Expected absorption times E_i satisfy
  //   (λ_i + µ_i) E_i = 1 + µ_i E_{i-1} + λ_i E_{i+1},  E_{t+1} = 0,
  // with λ_i = (n−i)λ and µ_i = iµ. Solved by Gaussian elimination on the
  // (t+1)-dimensional tridiagonal system.
  const size_t t = tolerance;
  const size_t m = t + 1;  // unknowns E_0..E_t
  std::vector<std::vector<double>> a(m, std::vector<double>(m, 0.0));
  std::vector<double> rhs(m, 1.0);
  for (size_t i = 0; i < m; ++i) {
    const double lambda = static_cast<double>(n - i) * failure_rate;
    const double mu = static_cast<double>(i) * repair_rate;
    a[i][i] = lambda + mu;
    if (i > 0) a[i][i - 1] = -mu;
    if (i + 1 < m) a[i][i + 1] = -lambda;
    // λ_t E_{t+1} term vanishes (absorbing state).
  }
  // Forward elimination (the matrix is strictly diagonally dominant).
  for (size_t i = 1; i < m; ++i) {
    const double f = a[i][i - 1] / a[i - 1][i - 1];
    for (size_t j = 0; j < m; ++j) a[i][j] -= f * a[i - 1][j];
    rhs[i] -= f * rhs[i - 1];
  }
  std::vector<double> e(m, 0.0);
  for (size_t ii = m; ii-- > 0;) {
    double acc = rhs[ii];
    for (size_t j = ii + 1; j < m; ++j) acc -= a[ii][j] * e[j];
    e[ii] = acc / a[ii][ii];
  }
  return e[0];
}

MonteCarloResult mttdl_monte_carlo(const codes::ErasureCode& code,
                                   const DurabilityParams& params,
                                   size_t trials, uint64_t seed) {
  GALLOPER_CHECK(trials > 0);
  GALLOPER_CHECK(params.mtbf_hours > 0 && params.repair_hours_per_block > 0);
  const size_t n = code.num_blocks();

  // Per-block repair duration priced by its helper count (the locality).
  std::vector<double> repair_hours(n);
  for (size_t b = 0; b < n; ++b)
    repair_hours[b] = params.repair_hours_per_block *
                      static_cast<double>(code.repair_helpers(b).size());

  Rng rng(seed);
  MonteCarloResult result;
  result.trials = trials;
  double total_time = 0;
  double total_failures = 0;

  for (size_t trial = 0; trial < trials; ++trial) {
    double now = 0;
    std::map<size_t, double> repairing;  // failed block → completion time
    size_t failures_this_trial = 0;
    for (;;) {
      const size_t alive = n - repairing.size();
      // Next failure (memoryless → resample after every event).
      const double fail_at =
          alive == 0
              ? std::numeric_limits<double>::infinity()
              : now + rng.next_exponential(params.mtbf_hours /
                                           static_cast<double>(alive));
      // Next repair completion.
      double repair_at = std::numeric_limits<double>::infinity();
      size_t repaired_block = SIZE_MAX;
      for (const auto& [b, done] : repairing) {
        if (done < repair_at) {
          repair_at = done;
          repaired_block = b;
        }
      }
      if (repair_at <= fail_at) {
        now = repair_at;
        repairing.erase(repaired_block);
        continue;
      }
      now = fail_at;
      ++failures_this_trial;
      // Pick the failing block uniformly among alive ones.
      size_t idx = static_cast<size_t>(rng.next_below(alive));
      size_t block = SIZE_MAX;
      for (size_t b = 0; b < n; ++b) {
        if (repairing.count(b)) continue;
        if (idx-- == 0) {
          block = b;
          break;
        }
      }
      repairing[block] = now + repair_hours[block];
      // Data loss when the alive set can no longer decode.
      std::vector<size_t> alive_blocks;
      for (size_t b = 0; b < n; ++b)
        if (!repairing.count(b)) alive_blocks.push_back(b);
      if (!code.decodable(alive_blocks)) break;
    }
    total_time += now;
    total_failures += static_cast<double>(failures_this_trial);
  }
  result.mttdl_hours = total_time / static_cast<double>(trials);
  result.mean_failures = total_failures / static_cast<double>(trials);
  return result;
}

}  // namespace galloper::analysis
