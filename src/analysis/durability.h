// Durability analysis: how repair locality translates into mean time to
// data loss (MTTDL). This quantifies the operational payoff of the paper's
// low-disk-I/O repairs — faster repairs shrink the window in which a second
// (third, …) failure can strike.
//
// Two estimators:
//  * mttdl_markov(): the classic birth-death chain over the number of
//    concurrently failed blocks, assuming any `tolerance` failures are
//    survivable (exact for MDS codes, optimistic-ish for LRCs whose loss
//    also depends on WHICH blocks fail);
//  * mttdl_monte_carlo(): event-driven simulation that uses the code's
//    rank-based decodability oracle on the actual failure pattern — this
//    captures Pyramid/Galloper's "some g+2 failure patterns survive,
//    others do not" behaviour that the chain cannot.
#pragma once

#include <cstdint>

#include "codes/erasure_code.h"
#include "util/rng.h"

namespace galloper::analysis {

struct DurabilityParams {
  double mtbf_hours = 1000.0;        // per-server mean time between failures
  double repair_hours_per_block = 1.0;  // repair time for ONE helper read
  // A block's repair time = repair_hours_per_block × (helpers read), so
  // locality directly sets the exposure window.
};

// Birth-death approximation with n blocks, tolerance t:
//   MTTDL ≈ Π_{i=0..t} (λ_i + µ_i) / Π λ_i   (standard small-rate form),
// computed exactly by absorbing-chain expected hitting time.
double mttdl_markov(size_t n, size_t tolerance, double failure_rate,
                    double repair_rate);

struct MonteCarloResult {
  double mttdl_hours = 0;     // mean of observed times to data loss
  double mean_failures = 0;   // failures endured per loss event
  size_t trials = 0;
};

// Simulates server failures (exponential, per alive server) and repairs
// (deterministic duration = repair_hours_per_block × helper count of the
// failed block; repairs proceed in parallel). A trial ends when the alive
// block set becomes undecodable. Deterministic in `seed`.
MonteCarloResult mttdl_monte_carlo(const codes::ErasureCode& code,
                                   const DurabilityParams& params,
                                   size_t trials, uint64_t seed);

}  // namespace galloper::analysis
