#include "cli/archive.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <exception>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <sstream>
#include <thread>
#include <utility>

#include "client/cache.h"
#include "client/striped.h"
#include "codes/plan.h"
#include "core/input_format.h"
#include "core/weights.h"
#include "fault/fault.h"
#include "io/async.h"
#include "io/io.h"
#include "mr/store_runner.h"
#include "rt/queue.h"
#include "util/buffer_pool.h"
#include "util/check.h"
#include "util/crc32c.h"

namespace galloper::cli {

namespace fs = std::filesystem;

namespace {

// Piece size for streaming whole-file CRC passes (verify, update's CRC
// refresh): big enough to amortize syscalls, small enough to stay pooled.
constexpr size_t kIoPiece = size_t{4} << 20;

// ---- Hardened file I/O ----------------------------------------------------
//
// All archive I/O is positional (io::File over pread/pwrite): EINTR and
// short transfers retry in ONE place (io::read_full / io::write_full), and
// positional ops need no stream state — which is what lets the pipeline
// stages below scatter-gather many reads/writes of one file concurrently
// on the async I/O pool. A truncated block file or a full disk still fails
// loudly with the path and the counts instead of silently coding over
// garbage.

// ---- Fault hooks ----------------------------------------------------------
//
// The archive pipelines consult the process-global fault injector (there is
// no per-call handle threading through the CLI): crash points simulate the
// process dying at a named program point, and helper/segment reads retry
// injected transient faults with exponential backoff. A stall drawn above
// the per-read timeout budget counts as a failed attempt — the caller does
// not wait out a hung helper.

void maybe_crash(const char* point) {
  if (fault::FaultInjector* inj = fault::global()) inj->crash_point(point);
}

constexpr size_t kReadAttempts = 4;
constexpr double kReadTimeoutSeconds = 0.010;  // per-attempt stall budget

// Positional read of [off, off + n) with the injector's transient-fault
// retry schedule. Safe to run concurrently from async ops: each call draws
// its own schedule (the CLI fault tests are rate-based, not sequence-
// based, so concurrent draw order is free to vary).
void pread_retry(const io::File& file, uint8_t* dst, size_t n, uint64_t off) {
  fault::FaultInjector* inj = fault::global();
  for (size_t attempt = 1;; ++attempt) {
    bool failed = false;
    if (inj) {
      const double stall = inj->read_latency();
      if (stall > kReadTimeoutSeconds) {
        failed = true;  // timed out — do not wait out the spike
      } else if (stall > 0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(stall));
      }
      if (inj->read_fails()) failed = true;
    }
    if (!failed) {
      file.pread_full(dst, n, off);
      return;
    }
    if (attempt >= kReadAttempts)
      throw fault::TransientError("read of " + file.path() +
                                  " kept failing transiently (" +
                                  std::to_string(attempt) + " attempts)");
    std::this_thread::sleep_for(std::chrono::microseconds(50u << attempt));
  }
}

// fsync for the write-tmp → fsync → rename → fsync-dir publish sequence:
// without the file sync the rename can land before the data, and without
// the directory sync the rename itself can vanish in a crash.
void sync_path(const fs::path& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  GALLOPER_CHECK_MSG(fd >= 0, "cannot open " << path.string() << " to fsync");
  const int rc = ::fsync(fd);
  ::close(fd);
  GALLOPER_CHECK_MSG(rc == 0, "fsync failed on " << path.string());
}

fs::path tmp_path_of(const fs::path& final_path) {
  fs::path tmp = final_path;
  tmp += ".tmp";
  return tmp;
}

Buffer read_file(const fs::path& path) {
  const io::File in = io::File::open_read(path);
  Buffer data(in.size());
  if (!data.empty()) in.pread_full(data.data(), data.size(), 0);
  return data;
}

void write_file(const fs::path& path, ConstByteSpan data) {
  io::File out = io::File::create(path);
  if (!data.empty()) out.pwrite_full(data.data(), data.size(), 0);
}

// Atomic publish: readers see the old contents or the new, never a torn
// write. Used for the MANIFEST (the archive's commit record).
void write_file_atomic(const fs::path& path, ConstByteSpan data) {
  const fs::path tmp = tmp_path_of(path);
  write_file(tmp, data);
  sync_path(tmp);
  maybe_crash("archive.manifest.pre_rename");
  fs::rename(tmp, path);
  sync_path(path.parent_path());
}

// Streaming CRC of a whole file in kIoPiece pieces — verify and the
// update-path CRC refresh never hold more than one piece in memory.
uint32_t file_crc32c(const fs::path& path) {
  const io::File in = io::File::open_read(path);
  uint32_t state = kCrc32cInit;
  Buffer piece(kIoPiece);
  uint64_t off = 0;
  while (true) {
    const size_t got = in.pread_some(piece.data(), piece.size(), off);
    if (got == 0) break;
    state = crc32c_extend(state, ConstByteSpan(piece.data(), got));
    off += got;
  }
  return crc32c_finish(state);
}

Rational parse_rational(const std::string& s) {
  const size_t slash = s.find('/');
  if (slash == std::string::npos) return Rational(std::stoll(s));
  return Rational(std::stoll(s.substr(0, slash)),
                  std::stoll(s.substr(slash + 1)));
}

// ---- Pipeline stages ------------------------------------------------------

// Stages run as rt::StageThread (dedicated threads, poison-on-throw); the
// queues between them take their capacity from rt::queue_depth()
// (GALLOPER_QUEUE_DEPTH, default 2).
using rt::StageThread;

}  // namespace

std::string Manifest::serialize() const {
  std::ostringstream os;
  os << "format=galloper-archive-v" << (chunk_bytes > 0 ? 2 : 1) << "\n";
  os << "k=" << k << "\n";
  os << "l=" << l << "\n";
  os << "g=" << g << "\n";
  os << "weights=";
  for (size_t i = 0; i < weights.size(); ++i)
    os << (i ? "," : "") << weights[i].to_string();
  os << "\n";
  os << "block_bytes=" << block_bytes << "\n";
  os << "original_bytes=" << original_bytes << "\n";
  if (chunk_bytes > 0) os << "chunk_bytes=" << chunk_bytes << "\n";
  if (!block_crcs.empty()) {
    os << "block_crcs=";
    for (size_t i = 0; i < block_crcs.size(); ++i) {
      char hex[16];
      std::snprintf(hex, sizeof(hex), "%08x", block_crcs[i]);
      os << (i ? "," : "") << hex;
    }
    os << "\n";
  }
  return os.str();
}

Manifest Manifest::parse(const std::string& text) {
  Manifest m;
  std::istringstream is(text);
  std::string line;
  bool format_seen = false;
  bool v2 = false;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const size_t eq = line.find('=');
    GALLOPER_CHECK_MSG(eq != std::string::npos,
                       "malformed manifest line: " << line);
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    if (key == "format") {
      GALLOPER_CHECK_MSG(value == "galloper-archive-v1" ||
                             value == "galloper-archive-v2",
                         "unsupported archive format: " << value);
      v2 = value == "galloper-archive-v2";
      format_seen = true;
    } else if (key == "k") {
      m.k = std::stoull(value);
    } else if (key == "l") {
      m.l = std::stoull(value);
    } else if (key == "g") {
      m.g = std::stoull(value);
    } else if (key == "weights") {
      size_t start = 0;
      while (start < value.size()) {
        size_t comma = value.find(',', start);
        if (comma == std::string::npos) comma = value.size();
        m.weights.push_back(parse_rational(value.substr(start, comma - start)));
        start = comma + 1;
      }
    } else if (key == "block_bytes") {
      m.block_bytes = std::stoull(value);
    } else if (key == "original_bytes") {
      m.original_bytes = std::stoull(value);
    } else if (key == "chunk_bytes") {
      m.chunk_bytes = std::stoull(value);
    } else if (key == "block_crcs") {
      size_t start = 0;
      while (start < value.size()) {
        size_t comma = value.find(',', start);
        if (comma == std::string::npos) comma = value.size();
        m.block_crcs.push_back(static_cast<uint32_t>(
            std::stoul(value.substr(start, comma - start), nullptr, 16)));
        start = comma + 1;
      }
    } else {
      // Unknown keys are ignored for forward compatibility.
    }
  }
  GALLOPER_CHECK_MSG(format_seen, "manifest missing format line");
  GALLOPER_CHECK_MSG(m.k > 0 && !m.weights.empty() && m.block_bytes > 0,
                     "manifest incomplete");
  GALLOPER_CHECK_MSG(v2 == (m.chunk_bytes > 0),
                     "manifest format/chunk_bytes mismatch");
  return m;
}

core::GalloperCode Manifest::make_code() const {
  return core::GalloperCode(k, l, g, weights);
}

std::vector<Segment> archive_segments(const Manifest& m, size_t num_chunks,
                                      size_t stripes_per_block) {
  GALLOPER_CHECK_MSG(m.block_bytes % stripes_per_block == 0,
                     "block_bytes " << m.block_bytes
                                    << " not a whole number of stripes");
  std::vector<Segment> segs;
  if (m.chunk_bytes == 0) {
    // v1: the whole block is one codeword.
    const size_t chunk = m.block_bytes / stripes_per_block;
    segs.push_back({0, chunk, 0, m.block_bytes, 0, num_chunks * chunk});
    return segs;
  }
  const size_t full_piece = stripes_per_block * m.chunk_bytes;
  const size_t nfull = m.block_bytes / full_piece;
  const size_t tail = m.block_bytes % full_piece;
  GALLOPER_CHECK_MSG(tail % stripes_per_block == 0,
                     "tail piece " << tail
                                   << " not a whole number of stripes");
  segs.reserve(nfull + (tail > 0));
  size_t boff = 0;
  size_t foff = 0;
  for (size_t s = 0; s < nfull; ++s) {
    segs.push_back({s, m.chunk_bytes, boff, full_piece, foff,
                    num_chunks * m.chunk_bytes});
    boff += full_piece;
    foff += num_chunks * m.chunk_bytes;
  }
  if (tail > 0) {
    const size_t chunk = tail / stripes_per_block;
    segs.push_back({nfull, chunk, boff, tail, foff, num_chunks * chunk});
  }
  GALLOPER_CHECK_MSG(!segs.empty(), "archive has no segments");
  return segs;
}

fs::path block_path(const fs::path& dir, size_t block) {
  char name[32];
  std::snprintf(name, sizeof(name), "block_%03zu.bin", block);
  return dir / name;
}

Manifest encode_archive(const fs::path& input, const fs::path& dir, size_t k,
                        size_t l, size_t g, const std::vector<double>& perf,
                        int64_t resolution, size_t threads,
                        size_t chunk_bytes) {
  GALLOPER_CHECK_MSG(threads >= 1, "need at least one thread");
  const io::File in = io::File::open_read(input);
  const size_t original = in.size();
  GALLOPER_CHECK_MSG(original > 0, "refusing to encode an empty file");

  Manifest m;
  m.k = k;
  m.l = l;
  m.g = g;
  m.original_bytes = original;
  m.weights = perf.empty()
                  ? core::uniform_weights(k, l, g)
                  : core::assign_weights(k, l, g, perf, resolution).weights;

  const core::GalloperCode code(k, l, g, m.weights);
  const codes::CodecEngine& engine = code.engine();
  const size_t chunks = engine.num_chunks();
  const size_t nstripes = engine.stripes_per_block();
  const size_t nblocks = code.num_blocks();

  // Segment geometry: full segments of chunk `c`, plus a tail segment whose
  // chunk covers the remainder (zero-padded up to whole chunks). A file
  // that fits one segment keeps the v1 monolithic layout — byte-identical
  // to older writers.
  const size_t c = chunk_bytes > 0 ? chunk_bytes : kDefaultChunkBytes;
  const size_t seg_data = chunks * c;
  const size_t nfull = original / seg_data;
  const size_t rem = original % seg_data;
  const size_t tail_chunk = rem > 0 ? (rem + chunks - 1) / chunks : 0;
  const size_t nsegs = nfull + (rem > 0 ? 1 : 0);
  m.block_bytes = (nfull * c + tail_chunk) * nstripes;
  m.chunk_bytes = nsegs > 1 ? c : 0;
  const std::vector<Segment> segments =
      archive_segments(m, chunks, nstripes);

  // The pipeline: reader thread → in_q → codec (this thread, fanning out on
  // the rt pool) → out_q → writer thread. Queue capacity 2 double-buffers
  // each stage, so at most ~2 segments of input and ~2 segments of blocks
  // are ever live.
  struct SegData {
    size_t index;
    Buffer data;
  };
  struct SegBlocks {
    size_t index;
    std::vector<Buffer> blocks;
  };
  rt::BoundedQueue<SegData> in_q(rt::queue_depth());
  rt::BoundedQueue<SegBlocks> out_q(rt::queue_depth());
  const auto abort_all = [&](std::exception_ptr e) {
    in_q.poison(e);
    out_q.poison(e);
  };

  // Outputs open before any stage thread starts: a failed open must throw
  // while no stage can be parked on a queue. Blocks stream into .tmp
  // staging files; the publish below renames them into place only after
  // every byte landed, so an aborted or crashed encode never tears an
  // existing archive in `dir`.
  fs::create_directories(dir);
  std::vector<io::File> outs;
  outs.reserve(nblocks);
  for (size_t b = 0; b < nblocks; ++b)
    outs.push_back(io::File::create(tmp_path_of(block_path(dir, b))));
  std::vector<uint32_t> crcs(nblocks, kCrc32cInit);

  try {
    StageThread reader(
        [&] {
          for (const Segment& seg : segments) {
            maybe_crash("archive.encode.reader");
            Buffer data(seg.data_len);
            const size_t want =
                std::min(seg.data_len, original - seg.file_offset);
            in.pread_full(data.data(), want, seg.file_offset);
            std::fill(data.begin() + static_cast<std::ptrdiff_t>(want),
                      data.end(), 0);
            if (!in_q.push({seg.index, std::move(data)})) return;
          }
          in_q.close();
        },
        abort_all);
    StageThread writer(
        [&] {
          size_t expect = 0;
          while (auto item = out_q.pop()) {
            maybe_crash("archive.encode.writer");
            GALLOPER_CHECK(item->index == expect++ &&
                           item->blocks.size() == nblocks);
            // Scatter-gather: all nblocks per-segment pieces land on the
            // async pool concurrently (positional writes, one op per
            // block file); the CRC fold stays serial and in block order.
            const uint64_t off = segments[item->index].block_offset;
            std::vector<io::OpRef> ops;
            ops.reserve(nblocks);
            for (size_t b = 0; b < nblocks; ++b)
              ops.push_back(io::AsyncIo::global().submit_write(
                  outs[b], item->blocks[b].data(), item->blocks[b].size(),
                  off));
            io::AsyncIo::wait_all(ops);
            for (size_t b = 0; b < nblocks; ++b)
              crcs[b] = crc32c_extend(crcs[b], item->blocks[b]);
          }
        },
        abort_all);

    std::exception_ptr codec_error;
    try {
      while (auto item = in_q.pop()) {
        maybe_crash("archive.encode.codec");
        auto blocks = engine.encode_parallel(item->data, threads);
        if (!out_q.push({item->index, std::move(blocks)})) break;
      }
    } catch (...) {
      codec_error = std::current_exception();
      abort_all(codec_error);
    }
    out_q.close();
    reader.join();
    writer.join();
    if (codec_error) std::rethrow_exception(codec_error);
    reader.rethrow();
    writer.rethrow();

    // Publish: flush + fsync every staging file, then rename the whole set
    // into place and commit with an atomic MANIFEST write. A crash before
    // the first rename leaves only .tmp debris; between renames, block
    // files with no (new) manifest — both states the startup sweep /
    // re-encode handle.
    for (size_t b = 0; b < nblocks; ++b) {
      outs[b].sync();
      outs[b].close();
      m.block_crcs.push_back(crc32c_finish(crcs[b]));
    }
    maybe_crash("archive.encode.pre_publish");
    for (size_t b = 0; b < nblocks; ++b)
      fs::rename(tmp_path_of(block_path(dir, b)), block_path(dir, b));
    sync_path(dir);
  } catch (const fault::CrashError&) {
    throw;  // a crash runs no cleanup — recover_archive_dir sweeps the .tmp
  } catch (...) {
    for (size_t b = 0; b < nblocks; ++b) {
      if (outs[b].is_open()) outs[b].close();
      std::error_code ec;
      fs::remove(tmp_path_of(block_path(dir, b)), ec);
    }
    throw;
  }

  const std::string serialized = m.serialize();
  write_file_atomic(dir / "MANIFEST",
                    ConstByteSpan(
                        reinterpret_cast<const uint8_t*>(serialized.data()),
                        serialized.size()));
  return m;
}

std::vector<fs::path> recover_archive_dir(const fs::path& dir) {
  std::vector<fs::path> removed;
  if (!fs::is_directory(dir)) return removed;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file() || entry.path().extension() != ".tmp")
      continue;
    std::error_code ec;
    fs::remove(entry.path(), ec);
    if (!ec) removed.push_back(entry.path());
  }
  std::sort(removed.begin(), removed.end());
  return removed;
}

Manifest read_manifest(const fs::path& dir) {
  const Buffer raw = read_file(dir / "MANIFEST");
  return Manifest::parse(std::string(raw.begin(), raw.end()));
}

namespace {

// The streaming decode core: a reader thread feeds each segment's piece of
// every present block through a bounded queue; the calling thread decodes
// (on the rt pool) and hands the decoded file bytes — clipped to
// original_bytes — to `emit(file_offset, data)` in file order. Returns
// false, before reading any block bytes, when the present set cannot
// decode.
bool decode_archive_stream(const fs::path& dir, size_t threads,
                           const std::function<void(size_t, Buffer&&)>& emit) {
  const Manifest m = read_manifest(dir);
  const core::GalloperCode code = m.make_code();
  const codes::CodecEngine& engine = code.engine();
  const std::vector<Segment> segments = archive_segments(
      m, engine.num_chunks(), engine.stripes_per_block());

  std::vector<size_t> ids;
  std::vector<io::File> ins;  // parallel to ids
  for (size_t b = 0; b < code.num_blocks(); ++b) {
    const fs::path p = block_path(dir, b);
    if (!fs::exists(p)) continue;
    GALLOPER_CHECK_MSG(fs::file_size(p) == m.block_bytes,
                       "block file " << p.string() << " has wrong size");
    ids.push_back(b);
    ins.push_back(io::File::open_read(p));
  }
  if (ids.empty()) return false;
  // Solvability is a property of the erasure pattern, not the bytes: gate
  // here, before a single block byte is read.
  if (!engine.plan_decode(ids)->fully_solvable()) return false;

  struct SegPieces {
    size_t index;
    std::vector<Buffer> pieces;  // parallel to ids
  };
  rt::BoundedQueue<SegPieces> q(rt::queue_depth());
  StageThread reader(
      [&] {
        for (const Segment& seg : segments) {
          maybe_crash("archive.decode.reader");
          // Scatter-gather: every present block's piece of this segment is
          // fetched concurrently on the async pool. Each op runs its own
          // retry-with-backoff, so an injected transient fault or an
          // over-budget latency spike on one block read must not kill the
          // decode outright; a persistent fault surfaces from wait_all as
          // TransientError and poisons the pipeline.
          std::vector<Buffer> pieces(ids.size());
          std::vector<io::OpRef> ops;
          ops.reserve(ids.size());
          for (size_t i = 0; i < ids.size(); ++i) {
            pieces[i] = Buffer(seg.block_len);
            ops.push_back(io::AsyncIo::global().submit(
                io::OpKind::kRead, seg.block_len,
                [&file = ins[i], dst = pieces[i].data(), n = seg.block_len,
                 off = seg.block_offset](io::Op&) {
                  pread_retry(file, dst, n, off);
                }));
          }
          io::AsyncIo::wait_all(ops);
          if (!q.push({seg.index, std::move(pieces)})) return;
        }
        q.close();
      },
      [&](std::exception_ptr e) { q.poison(e); });

  std::exception_ptr codec_error;
  try {
    while (auto item = q.pop()) {
      maybe_crash("archive.decode.codec");
      const Segment& seg = segments[item->index];
      std::map<size_t, ConstByteSpan> view;
      for (size_t i = 0; i < ids.size(); ++i)
        view.emplace(ids[i], item->pieces[i]);
      auto decoded = engine.decode_parallel(view, threads);
      GALLOPER_CHECK(decoded.has_value());  // solvability gated above
      if (seg.file_offset >= m.original_bytes) continue;  // pure padding
      decoded->resize(
          std::min(decoded->size(), m.original_bytes - seg.file_offset));
      emit(seg.file_offset, std::move(*decoded));
    }
  } catch (...) {
    codec_error = std::current_exception();
    q.poison(codec_error);
  }
  reader.join();
  if (codec_error) std::rethrow_exception(codec_error);
  reader.rethrow();
  return true;
}

}  // namespace

std::optional<Buffer> decode_archive(const fs::path& dir, size_t threads) {
  const Manifest m = read_manifest(dir);
  Buffer file(m.original_bytes);  // emits cover [0, original_bytes) exactly
  if (!decode_archive_stream(dir, threads, [&](size_t off, Buffer&& data) {
        std::copy(data.begin(), data.end(),
                  file.begin() + static_cast<std::ptrdiff_t>(off));
      }))
    return std::nullopt;
  return file;
}

bool decode_archive_to(const fs::path& dir, const fs::path& output,
                       size_t threads) {
  io::File out = io::File::create(output);

  // Third stage: decoded segments land via positional writes on a writer
  // thread, so disk writes overlap the next segment's decode.
  struct OutPiece {
    size_t offset;
    Buffer data;
  };
  rt::BoundedQueue<OutPiece> q(rt::queue_depth());
  StageThread writer(
      [&] {
        while (auto item = q.pop()) {
          maybe_crash("archive.decode.writer");
          out.pwrite_full(item->data.data(), item->data.size(), item->offset);
        }
      },
      [&](std::exception_ptr e) { q.poison(e); });

  bool ok = false;
  std::exception_ptr err;
  try {
    // Emits carry their file offset, so the positional writes land exactly
    // where the segment belongs. A push that returns false means the
    // writer poisoned the queue; surface ITS error (the root cause) rather
    // than a generic push failure.
    ok = decode_archive_stream(dir, threads, [&](size_t off, Buffer&& data) {
      if (!q.push({off, std::move(data)})) {
        q.rethrow_if_poisoned();
        GALLOPER_CHECK_MSG(false,
                           "write stage failed for " << output.string());
      }
    });
  } catch (...) {
    err = std::current_exception();
  }
  q.close();
  writer.join();
  if (!err) {
    try {
      writer.rethrow();
    } catch (...) {
      err = std::current_exception();
    }
  }
  if (err) {
    // A failed decode must not leave a partial output lying around looking
    // valid — EXCEPT for an injected crash, which by definition runs no
    // cleanup (tests assert the debris, startup recovery handles it).
    out.close();
    try {
      std::rethrow_exception(err);
    } catch (const fault::CrashError&) {
      throw;
    } catch (...) {
      std::error_code ec;
      fs::remove(output, ec);
      throw;
    }
  }
  if (!ok) {
    out.close();
    fs::remove(output);
  }
  return ok;
}

std::optional<std::vector<size_t>> repair_archive(const fs::path& dir,
                                                  size_t block,
                                                  size_t threads) {
  const Manifest m = read_manifest(dir);
  const core::GalloperCode code = m.make_code();
  const codes::CodecEngine& engine = code.engine();
  GALLOPER_CHECK_MSG(block < code.num_blocks(),
                     "block " << block << " out of range");
  const std::vector<Segment> segments = archive_segments(
      m, engine.num_chunks(), engine.stripes_per_block());

  const auto usable = [&](size_t b) {
    const fs::path p = block_path(dir, b);
    return fs::exists(p) && fs::file_size(p) == m.block_bytes;
  };

  auto try_helpers = [&](const std::vector<size_t>& helpers)
      -> std::optional<std::vector<size_t>> {
    if (helpers.empty()) return std::nullopt;
    for (size_t h : helpers)
      if (!usable(h)) return std::nullopt;
    // Pin the repair plan once for every segment (same pattern throughout)
    // and gate on solvability BEFORE any helper bytes are read.
    const auto plan = engine.plan_repair(block, helpers);
    if (!plan->fully_solvable()) return std::nullopt;

    std::vector<io::File> ins;
    ins.reserve(helpers.size());
    for (size_t h : helpers)
      ins.push_back(io::File::open_read(block_path(dir, h)));

    // Rebuild into block_NNN.bin.tmp and rename over the target only once
    // every segment landed and the CRC matches — a failed repair unlinks
    // its staging file on the way out (CRC mismatch and mid-stream I/O
    // errors included), so retrying never trips over stale debris. The one
    // deliberate exception is an injected CrashError: a crash runs no
    // cleanup, and the orphaned .tmp is what recover_archive_dir exists
    // to sweep.
    const fs::path final_path = block_path(dir, block);
    const fs::path tmp_path = tmp_path_of(final_path);
    try {
      io::File out = io::File::create(tmp_path);

      struct SegPieces {
        size_t index;
        std::vector<Buffer> pieces;  // parallel to helpers
      };
      struct OutPiece {
        size_t offset;  // block_offset of the segment
        Buffer data;
      };
      rt::BoundedQueue<SegPieces> in_q(rt::queue_depth());
      rt::BoundedQueue<OutPiece> out_q(rt::queue_depth());
      const auto abort_all = [&](std::exception_ptr e) {
        in_q.poison(e);
        out_q.poison(e);
      };
      StageThread reader(
          [&] {
            for (const Segment& seg : segments) {
              maybe_crash("archive.repair.reader");
              // Scatter-gather all helper pieces of this segment on the
              // async pool; each op keeps the per-helper retry-with-
              // backoff (a stall above the timeout budget counts as a
              // failed attempt rather than a hang).
              std::vector<Buffer> pieces(helpers.size());
              std::vector<io::OpRef> ops;
              ops.reserve(helpers.size());
              for (size_t i = 0; i < helpers.size(); ++i) {
                pieces[i] = Buffer(seg.block_len);
                ops.push_back(io::AsyncIo::global().submit(
                    io::OpKind::kRead, seg.block_len,
                    [&file = ins[i], dst = pieces[i].data(),
                     n = seg.block_len, off = seg.block_offset](io::Op&) {
                      pread_retry(file, dst, n, off);
                    }));
              }
              io::AsyncIo::wait_all(ops);
              if (!in_q.push({seg.index, std::move(pieces)})) return;
            }
            in_q.close();
          },
          abort_all);
      uint32_t crc = kCrc32cInit;
      StageThread writer(
          [&] {
            while (auto item = out_q.pop()) {
              maybe_crash("archive.repair.writer");
              out.pwrite_full(item->data.data(), item->data.size(),
                              item->offset);
              crc = crc32c_extend(crc, item->data);
            }
          },
          abort_all);

      std::exception_ptr codec_error;
      try {
        while (auto item = in_q.pop()) {
          maybe_crash("archive.repair.codec");
          const Segment& seg = segments[item->index];
          std::map<size_t, ConstByteSpan> view;
          for (size_t i = 0; i < helpers.size(); ++i)
            view.emplace(helpers[i], item->pieces[i]);
          auto rebuilt = engine.repair_block_with_plan(*plan, view, threads);
          GALLOPER_CHECK(rebuilt.has_value());  // solvability gated above
          if (!out_q.push({seg.block_offset, std::move(*rebuilt)})) break;
        }
      } catch (...) {
        codec_error = std::current_exception();
        abort_all(codec_error);
      }
      out_q.close();
      reader.join();
      writer.join();
      if (codec_error) std::rethrow_exception(codec_error);
      reader.rethrow();
      writer.rethrow();

      if (m.block_crcs.size() > block && crc32c_finish(crc) != m.block_crcs[block]) {
        std::ostringstream os;
        os << "repaired block " << block
           << " fails its manifest CRC — helper data is corrupt";
        throw CrcMismatchError(os.str());
      }
      out.sync();
      out.close();
      maybe_crash("archive.repair.pre_rename");
      fs::rename(tmp_path, final_path);
      sync_path(dir);
    } catch (const fault::CrashError&) {
      throw;  // no cleanup: the crash leaves its .tmp for startup recovery
    } catch (...) {
      std::error_code ec;
      fs::remove(tmp_path, ec);  // best effort; the original is untouched
      throw;
    }
    return helpers;
  };

  // Local helpers first; fall back to every present block.
  if (auto done = try_helpers(code.repair_helpers(block))) return done;
  std::vector<size_t> all;
  for (size_t b = 0; b < code.num_blocks(); ++b)
    if (b != block && usable(b)) all.push_back(b);
  return try_helpers(all);
}

std::string describe_archive(const fs::path& dir) {
  const Manifest m = read_manifest(dir);
  const core::GalloperCode code = m.make_code();
  core::InputFormat fmt(code, m.block_bytes);
  const std::vector<Segment> segments = archive_segments(
      m, code.engine().num_chunks(), code.engine().stripes_per_block());

  std::ostringstream os;
  os << code.name() << ", N = " << code.n_stripes()
     << " stripes/block, block = " << m.block_bytes
     << " bytes, original = " << m.original_bytes << " bytes";
  if (m.chunk_bytes > 0)
    os << ", " << segments.size() << " segments (chunk " << m.chunk_bytes
       << " bytes, tail " << segments.back().chunk << ")";
  os << "\n";
  for (size_t b = 0; b < code.num_blocks(); ++b) {
    const char* role = b < m.k                ? "data"
                       : b < m.k + m.l        ? "local parity"
                                              : "global parity";
    os << "  block " << b << " [" << role << "] weight "
       << code.weights()[b].to_string() << " → "
       << fmt.original_bytes_in_block(b) << " original bytes, "
       << (fs::exists(block_path(dir, b)) ? "present" : "MISSING") << "\n";
  }
  return os.str();
}

std::vector<size_t> update_archive(const fs::path& dir, size_t offset,
                                   ConstByteSpan data, size_t threads) {
  Manifest m = read_manifest(dir);
  const core::GalloperCode code = m.make_code();
  const codes::CodecEngine& engine = code.engine();
  const size_t nstripes = engine.stripes_per_block();
  const std::vector<Segment> segments =
      archive_segments(m, engine.num_chunks(), nstripes);
  const size_t padded_bytes =
      segments.back().file_offset + segments.back().data_len;
  GALLOPER_CHECK_MSG(offset + data.size() <= padded_bytes,
                     "update range beyond the encoded file");
  if (data.empty()) return {};

  for (size_t b = 0; b < code.num_blocks(); ++b)
    GALLOPER_CHECK_MSG(fs::exists(block_path(dir, b)),
                       "block " << b << " missing — repair before updating");

  // Segment-aware: load, patch, and write back ONLY the segment pieces the
  // range overlaps — an update against a large archive touches O(affected
  // segments) bytes per block, never whole block files.
  std::vector<size_t> touched;
  for (const Segment& seg : segments) {
    const size_t lo = std::max(offset, seg.file_offset);
    const size_t hi =
        std::min(offset + data.size(), seg.file_offset + seg.data_len);
    if (lo >= hi) continue;
    // Chunk alignment, with one carve-out: an update may END mid-chunk at
    // exactly original_bytes (the real end of the data). The tail segment's
    // chunk is ⌈remainder / num_chunks⌉, so unless chunk_bytes divides the
    // file size the last real byte sits mid-chunk and a strict alignment
    // rule would make the file's own tail un-updatable. The partial final
    // chunk is clamped to the real data length and zero-padded — bytes past
    // original_bytes are zero by construction (encode pads with zeros and
    // no update can have written past original_bytes), so the padding
    // rewrites them with the values they already hold.
    const bool eof_clamped =
        (hi - seg.file_offset) % seg.chunk != 0 && hi == m.original_bytes;
    GALLOPER_CHECK_MSG(
        (lo - seg.file_offset) % seg.chunk == 0 &&
            ((hi - seg.file_offset) % seg.chunk == 0 || eof_clamped),
        "updates must be chunk-aligned (chunk = "
            << seg.chunk << " bytes in segment " << seg.index
            << ") or end at the file's last byte");

    // Scatter-gather the affected piece of every block concurrently.
    std::vector<Buffer> pieces(code.num_blocks());
    {
      std::vector<io::File> ins;
      std::vector<io::OpRef> ops;
      ins.reserve(code.num_blocks());
      ops.reserve(code.num_blocks());
      for (size_t b = 0; b < code.num_blocks(); ++b) {
        const fs::path p = block_path(dir, b);
        GALLOPER_CHECK_MSG(fs::file_size(p) == m.block_bytes,
                           "block file " << p.string() << " has wrong size");
        ins.push_back(io::File::open_read(p));
        pieces[b] = Buffer(seg.block_len);
        ops.push_back(io::AsyncIo::global().submit_read(
            ins.back(), pieces[b].data(), seg.block_len, seg.block_offset));
      }
      io::AsyncIo::wait_all(ops);
    }

    std::vector<size_t> seg_touched;
    const size_t first_chunk = (lo - seg.file_offset) / seg.chunk;
    for (size_t c = 0; first_chunk * seg.chunk + c * seg.chunk < hi - seg.file_offset;
         ++c) {
      const size_t src = lo - offset + c * seg.chunk;
      const size_t avail = std::min(seg.chunk, hi - offset - src);
      Buffer padded;
      ConstByteSpan chunk_data = data.subspan(src, avail);
      if (avail < seg.chunk) {  // EOF-clamped final partial chunk
        padded.assign(seg.chunk, 0);
        std::copy(chunk_data.begin(), chunk_data.end(), padded.begin());
        chunk_data = padded;
      }
      const auto t = engine.update_chunk_parallel(pieces, first_chunk + c,
                                                  chunk_data, threads);
      seg_touched.insert(seg_touched.end(), t.begin(), t.end());
    }
    std::sort(seg_touched.begin(), seg_touched.end());
    seg_touched.erase(std::unique(seg_touched.begin(), seg_touched.end()),
                      seg_touched.end());

    // Write back the patched pieces concurrently (positional, in place).
    {
      std::vector<io::File> outs;
      std::vector<io::OpRef> ops;
      outs.reserve(seg_touched.size());
      ops.reserve(seg_touched.size());
      for (size_t b : seg_touched) {
        outs.push_back(io::File::open_rw(block_path(dir, b)));
        ops.push_back(io::AsyncIo::global().submit_write(
            outs.back(), pieces[b].data(), pieces[b].size(),
            seg.block_offset));
      }
      io::AsyncIo::wait_all(ops);
    }
    touched.insert(touched.end(), seg_touched.begin(), seg_touched.end());
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());

  // Refresh the CRCs of rewritten blocks with a streaming pass (a block may
  // be far larger than the piece that changed).
  for (size_t b : touched)
    if (m.block_crcs.size() > b)
      m.block_crcs[b] = file_crc32c(block_path(dir, b));
  // The original may have grown into previously zero padding; keep the
  // recorded size monotone.
  m.original_bytes = std::max(m.original_bytes, offset + data.size());
  const std::string serialized = m.serialize();
  write_file_atomic(dir / "MANIFEST",
                    ConstByteSpan(
                        reinterpret_cast<const uint8_t*>(serialized.data()),
                        serialized.size()));
  return touched;
}

VerifyReport verify_archive(const fs::path& dir) {
  const Manifest m = read_manifest(dir);
  const core::GalloperCode code = m.make_code();
  VerifyReport report;
  std::vector<size_t> usable;
  for (size_t b = 0; b < code.num_blocks(); ++b) {
    const fs::path p = block_path(dir, b);
    if (!fs::exists(p)) {
      report.missing.push_back(b);
      continue;
    }
    // Streamed CRC: verification of an arbitrarily large block holds one
    // kIoPiece buffer, never the block.
    const bool size_ok = fs::file_size(p) == m.block_bytes;
    const bool crc_ok = m.block_crcs.size() <= b  // no CRC recorded: trust
                            ? size_ok
                            : size_ok && file_crc32c(p) == m.block_crcs[b];
    if (!crc_ok) {
      report.corrupt.push_back(b);
      continue;
    }
    usable.push_back(b);
  }
  report.decodable = code.decodable(usable);
  return report;
}

std::string format_plan_stats() {
  std::ostringstream out;
  const codes::PlanCacheStats cs = codes::PlanCache::global().stats();
  out << "plan cache: ";
  if (cs.capacity == 0) {
    out << "disabled (GALLOPER_PLAN_CACHE=off)\n";
  } else {
    const uint64_t lookups = cs.hits + cs.misses;
    out << cs.entries << "/" << cs.capacity << " entries, " << cs.hits
        << " hits / " << cs.misses << " misses";
    if (lookups > 0)
      out << " (" << static_cast<int>(100.0 * static_cast<double>(cs.hits) /
                                      static_cast<double>(lookups))
          << "% hit rate)";
    out << ", " << cs.evictions << " evictions\n";
  }
  for (size_t i = 0; i < codes::kNumPlanOps; ++i) {
    const auto op = static_cast<codes::PlanOp>(i);
    const codes::PlanOpStats st = codes::plan_op_stats(op);
    if (st.plans == 0 && st.execs == 0) continue;
    out << "  " << codes::plan_op_name(op) << ": " << st.plans
        << " plans, " << st.execs << " executions";
    if (st.plans > 0)
      out << ", mean plan "
          << static_cast<double>(st.plan_ns) /
                 static_cast<double>(st.plans) * 1e-3
          << " us";
    if (st.execs > 0)
      out << ", mean execute "
          << static_cast<double>(st.exec_ns) /
                 static_cast<double>(st.execs) * 1e-3
          << " us";
    out << "\n";
  }
  const codes::BatchExecStats bs = codes::batch_exec_stats();
  if (bs.calls > 0) {
    out << "batched executor: " << bs.calls << " dispatches, " << bs.rows
        << " rows, " << static_cast<double>(bs.bytes) * 1e-6 << " MB";
    if (bs.ns > 0)
      out << ", " << static_cast<double>(bs.bytes) /
                         static_cast<double>(bs.ns)
          << " GB/s";
    out << "\n";
  }
  const util::BufferPool& pool = util::BufferPool::global();
  const util::BufferPoolStats ps = pool.stats();
  out << "buffer pool: ";
  if (!pool.enabled()) out << "recycling disabled (GALLOPER_BUFFER_POOL=off), ";
  out << ps.hits << " hits / " << ps.misses << " misses";
  if (ps.hits + ps.misses > 0)
    out << " (" << static_cast<int>(100.0 * ps.hit_rate()) << "% hit rate)";
  out << ", " << ps.bypass << " bypass, peak "
      << static_cast<double>(ps.peak_outstanding_bytes) * 1e-6
      << " MB outstanding, "
      << static_cast<double>(ps.cached_bytes) * 1e-6 << " MB cached\n";
  const io::IoStats is = io::AsyncIo::global().stats();
  out << "async io: " << is.ops << " ops (" << is.reads << " reads, "
      << is.writes << " writes, " << is.fetches << " fetches), "
      << static_cast<double>(is.bytes_read) * 1e-6 << " MB read, "
      << static_cast<double>(is.bytes_written) * 1e-6 << " MB written, "
      << is.threads << " threads, queue peak " << is.queue_peak
      << ", O_DIRECT " << (is.odirect ? "on" : "off") << "\n";
  if (is.ops > 0)
    out << "  op latency p50 " << is.p50_s * 1e3 << " ms, p99 "
        << is.p99_s * 1e3 << " ms, " << is.hedges_issued
        << " hedges issued / " << is.hedges_won << " won, " << is.cancelled
        << " cancelled\n";
  if (is.hedges_issued + is.hedge_denied > 0)
    out << "  hedge budget "
        << static_cast<double>(is.hedge_bytes_granted) * 1e-6
        << " MB granted, " << is.hedge_denied << " denied ("
        << static_cast<double>(is.hedge_bytes_denied) * 1e-6 << " MB), "
        << (is.hedge_budget_pct < 0
                ? std::string("unlimited")
                : std::to_string(static_cast<int>(is.hedge_budget_pct)) +
                      "% of fetched bytes")
        << "\n";
  const client::BlockCache& bc = client::BlockCache::global();
  const client::BlockCacheStats bcs = bc.stats();
  out << "block cache: ";
  if (!bc.enabled()) {
    out << "off (GALLOPER_CLIENT_CACHE=off)\n";
  } else {
    out << bcs.hits << " hits / " << bcs.misses << " misses";
    if (bcs.hits + bcs.misses > 0)
      out << " (" << static_cast<int>(100.0 * bcs.hit_rate()) << "% hit rate)";
    out << ", " << static_cast<double>(bcs.hit_bytes) * 1e-6
        << " MB served, " << bcs.evictions << " evictions, "
        << bcs.invalidations << " invalidations, "
        << static_cast<double>(bcs.resident_bytes) * 1e-6 << "/"
        << static_cast<double>(bcs.capacity_bytes) * 1e-6
        << " MB resident (" << bcs.shards << " shards)\n";
  }
  const client::ClientStats cl = client::client_stats();
  if (cl.reads + cl.writes > 0) {
    const client::AdmissionControl::Stats as =
        client::AdmissionControl::global().stats();
    const util::LatencyHistogram& hist = client::client_latency_histogram();
    out << "client: " << cl.reads << " reads / " << cl.writes << " writes, "
        << static_cast<double>(cl.bytes_read) * 1e-6 << " MB read, "
        << static_cast<double>(cl.bytes_written) * 1e-6 << " MB written, "
        << cl.batches << " batches, " << cl.fallbacks << " fallbacks\n"
        << "  admission " << as.admitted << " admitted / " << as.waited
        << " waited, peak " << as.peak << "/" << as.limit << "\n"
        << "  call latency p50 " << hist.quantile_s(0.50) * 1e3
        << " ms, p99 " << hist.quantile_s(0.99) * 1e3 << " ms, p99.9 "
        << hist.quantile_s(0.999) * 1e3 << " ms\n";
  }
  const mr::MrStats ms = mr::mr_stats();
  if (ms.jobs > 0) {
    out << "mr: " << ms.jobs << " jobs, " << ms.splits_mapped
        << " splits mapped (" << ms.degraded_splits << " degraded), "
        << static_cast<double>(ms.bytes_original) * 1e-6
        << " MB read original, "
        << static_cast<double>(ms.bytes_decoded) * 1e-6 << " MB decoded\n"
        << "  phase walls: map " << static_cast<double>(ms.map_ns) * 1e-6
        << " ms, shuffle " << static_cast<double>(ms.shuffle_ns) * 1e-6
        << " ms, reduce " << static_cast<double>(ms.reduce_ns) * 1e-6
        << " ms\n";
  }
  return out.str();
}

}  // namespace galloper::cli
