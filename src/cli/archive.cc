#include "cli/archive.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "codes/plan.h"
#include "core/input_format.h"
#include "core/weights.h"
#include "util/check.h"
#include "util/crc32c.h"

namespace galloper::cli {

namespace fs = std::filesystem;

namespace {

Buffer read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  GALLOPER_CHECK_MSG(in.good(), "cannot open " << path.string());
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string s = ss.str();
  return Buffer(s.begin(), s.end());
}

void write_file(const fs::path& path, ConstByteSpan data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  GALLOPER_CHECK_MSG(out.good(), "cannot write " << path.string());
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  GALLOPER_CHECK_MSG(out.good(), "short write to " << path.string());
}

Rational parse_rational(const std::string& s) {
  const size_t slash = s.find('/');
  if (slash == std::string::npos) return Rational(std::stoll(s));
  return Rational(std::stoll(s.substr(0, slash)),
                  std::stoll(s.substr(slash + 1)));
}

}  // namespace

std::string Manifest::serialize() const {
  std::ostringstream os;
  os << "format=galloper-archive-v1\n";
  os << "k=" << k << "\n";
  os << "l=" << l << "\n";
  os << "g=" << g << "\n";
  os << "weights=";
  for (size_t i = 0; i < weights.size(); ++i)
    os << (i ? "," : "") << weights[i].to_string();
  os << "\n";
  os << "block_bytes=" << block_bytes << "\n";
  os << "original_bytes=" << original_bytes << "\n";
  if (!block_crcs.empty()) {
    os << "block_crcs=";
    for (size_t i = 0; i < block_crcs.size(); ++i) {
      char hex[16];
      std::snprintf(hex, sizeof(hex), "%08x", block_crcs[i]);
      os << (i ? "," : "") << hex;
    }
    os << "\n";
  }
  return os.str();
}

Manifest Manifest::parse(const std::string& text) {
  Manifest m;
  std::istringstream is(text);
  std::string line;
  bool format_seen = false;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const size_t eq = line.find('=');
    GALLOPER_CHECK_MSG(eq != std::string::npos,
                       "malformed manifest line: " << line);
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    if (key == "format") {
      GALLOPER_CHECK_MSG(value == "galloper-archive-v1",
                         "unsupported archive format: " << value);
      format_seen = true;
    } else if (key == "k") {
      m.k = std::stoull(value);
    } else if (key == "l") {
      m.l = std::stoull(value);
    } else if (key == "g") {
      m.g = std::stoull(value);
    } else if (key == "weights") {
      size_t start = 0;
      while (start < value.size()) {
        size_t comma = value.find(',', start);
        if (comma == std::string::npos) comma = value.size();
        m.weights.push_back(parse_rational(value.substr(start, comma - start)));
        start = comma + 1;
      }
    } else if (key == "block_bytes") {
      m.block_bytes = std::stoull(value);
    } else if (key == "original_bytes") {
      m.original_bytes = std::stoull(value);
    } else if (key == "block_crcs") {
      size_t start = 0;
      while (start < value.size()) {
        size_t comma = value.find(',', start);
        if (comma == std::string::npos) comma = value.size();
        m.block_crcs.push_back(static_cast<uint32_t>(
            std::stoul(value.substr(start, comma - start), nullptr, 16)));
        start = comma + 1;
      }
    } else {
      // Unknown keys are ignored for forward compatibility.
    }
  }
  GALLOPER_CHECK_MSG(format_seen, "manifest missing format line");
  GALLOPER_CHECK_MSG(m.k > 0 && !m.weights.empty() && m.block_bytes > 0,
                     "manifest incomplete");
  return m;
}

core::GalloperCode Manifest::make_code() const {
  return core::GalloperCode(k, l, g, weights);
}

fs::path block_path(const fs::path& dir, size_t block) {
  char name[32];
  std::snprintf(name, sizeof(name), "block_%03zu.bin", block);
  return dir / name;
}

Manifest encode_archive(const fs::path& input, const fs::path& dir, size_t k,
                        size_t l, size_t g, const std::vector<double>& perf,
                        int64_t resolution, size_t threads) {
  Buffer data = read_file(input);
  GALLOPER_CHECK_MSG(!data.empty(), "refusing to encode an empty file");

  Manifest m;
  m.k = k;
  m.l = l;
  m.g = g;
  m.original_bytes = data.size();
  m.weights = perf.empty()
                  ? core::uniform_weights(k, l, g)
                  : core::assign_weights(k, l, g, perf, resolution).weights;

  core::GalloperCode code(k, l, g, m.weights);
  // Zero-pad to a whole number of chunks.
  const size_t chunks = code.engine().num_chunks();
  const size_t padded = (data.size() + chunks - 1) / chunks * chunks;
  data.resize(padded, 0);
  m.block_bytes = padded / chunks * code.n_stripes();

  const auto blocks = code.engine().encode_parallel(data, threads);
  for (const auto& block : blocks) m.block_crcs.push_back(crc32c(block));
  fs::create_directories(dir);
  for (size_t b = 0; b < blocks.size(); ++b)
    write_file(block_path(dir, b), blocks[b]);
  write_file(dir / "MANIFEST",
             ConstByteSpan(
                 reinterpret_cast<const uint8_t*>(m.serialize().data()),
                 m.serialize().size()));
  return m;
}

Manifest read_manifest(const fs::path& dir) {
  const Buffer raw = read_file(dir / "MANIFEST");
  return Manifest::parse(std::string(raw.begin(), raw.end()));
}

std::optional<Buffer> decode_archive(const fs::path& dir, size_t threads) {
  const Manifest m = read_manifest(dir);
  const core::GalloperCode code = m.make_code();

  std::vector<Buffer> present(code.num_blocks());
  std::map<size_t, ConstByteSpan> view;
  for (size_t b = 0; b < code.num_blocks(); ++b) {
    const fs::path p = block_path(dir, b);
    if (!fs::exists(p)) continue;
    present[b] = read_file(p);
    GALLOPER_CHECK_MSG(present[b].size() == m.block_bytes,
                       "block file " << p.string() << " has wrong size");
    view.emplace(b, present[b]);
  }
  auto padded = code.engine().decode_parallel(view, threads);
  if (!padded) return std::nullopt;
  padded->resize(m.original_bytes);
  return padded;
}

std::optional<std::vector<size_t>> repair_archive(const fs::path& dir,
                                                  size_t block,
                                                  size_t threads) {
  const Manifest m = read_manifest(dir);
  const core::GalloperCode code = m.make_code();
  GALLOPER_CHECK_MSG(block < code.num_blocks(),
                     "block " << block << " out of range");

  auto try_helpers = [&](const std::vector<size_t>& helpers)
      -> std::optional<std::vector<size_t>> {
    std::vector<Buffer> data(helpers.size());
    std::map<size_t, ConstByteSpan> view;
    for (size_t i = 0; i < helpers.size(); ++i) {
      const fs::path p = block_path(dir, helpers[i]);
      if (!fs::exists(p)) return std::nullopt;
      data[i] = read_file(p);
      view.emplace(helpers[i], data[i]);
    }
    auto rebuilt = code.engine().repair_block_parallel(block, view, threads);
    if (!rebuilt) return std::nullopt;
    write_file(block_path(dir, block), *rebuilt);
    return helpers;
  };

  // Local helpers first; fall back to every present block.
  if (auto done = try_helpers(code.repair_helpers(block))) return done;
  std::vector<size_t> all;
  for (size_t b = 0; b < code.num_blocks(); ++b)
    if (b != block && fs::exists(block_path(dir, b))) all.push_back(b);
  return try_helpers(all);
}

std::string describe_archive(const fs::path& dir) {
  const Manifest m = read_manifest(dir);
  const core::GalloperCode code = m.make_code();
  core::InputFormat fmt(code, m.block_bytes);

  std::ostringstream os;
  os << code.name() << ", N = " << code.n_stripes()
     << " stripes/block, block = " << m.block_bytes
     << " bytes, original = " << m.original_bytes << " bytes\n";
  for (size_t b = 0; b < code.num_blocks(); ++b) {
    const char* role = b < m.k                ? "data"
                       : b < m.k + m.l        ? "local parity"
                                              : "global parity";
    os << "  block " << b << " [" << role << "] weight "
       << code.weights()[b].to_string() << " → "
       << fmt.original_bytes_in_block(b) << " original bytes, "
       << (fs::exists(block_path(dir, b)) ? "present" : "MISSING") << "\n";
  }
  return os.str();
}

std::vector<size_t> update_archive(const fs::path& dir, size_t offset,
                                   ConstByteSpan data, size_t threads) {
  Manifest m = read_manifest(dir);
  const core::GalloperCode code = m.make_code();
  const size_t chunk = m.block_bytes / code.n_stripes();
  GALLOPER_CHECK_MSG(offset % chunk == 0 && data.size() % chunk == 0,
                     "updates must be chunk-aligned (chunk = " << chunk
                                                               << " bytes)");
  GALLOPER_CHECK_MSG(
      offset + data.size() <= code.engine().num_chunks() * chunk,
      "update range beyond the encoded file");

  std::vector<Buffer> blocks;
  blocks.reserve(code.num_blocks());
  for (size_t b = 0; b < code.num_blocks(); ++b) {
    const fs::path p = block_path(dir, b);
    GALLOPER_CHECK_MSG(fs::exists(p),
                       "block " << b << " missing — repair before updating");
    blocks.push_back(read_file(p));
    GALLOPER_CHECK(blocks.back().size() == m.block_bytes);
  }

  std::vector<size_t> touched;
  const size_t first = offset / chunk;
  for (size_t c = 0; c * chunk < data.size(); ++c) {
    const auto t = code.engine().update_chunk_parallel(
        blocks, first + c, data.subspan(c * chunk, chunk), threads);
    touched.insert(touched.end(), t.begin(), t.end());
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());

  for (size_t b : touched) {
    write_file(block_path(dir, b), blocks[b]);
    if (m.block_crcs.size() > b) m.block_crcs[b] = crc32c(blocks[b]);
  }
  // The original may have grown into previously zero padding; keep the
  // recorded size monotone.
  m.original_bytes = std::max(m.original_bytes, offset + data.size());
  const std::string serialized = m.serialize();
  write_file(dir / "MANIFEST",
             ConstByteSpan(
                 reinterpret_cast<const uint8_t*>(serialized.data()),
                 serialized.size()));
  return touched;
}

VerifyReport verify_archive(const fs::path& dir) {
  const Manifest m = read_manifest(dir);
  const core::GalloperCode code = m.make_code();
  VerifyReport report;
  std::vector<size_t> usable;
  for (size_t b = 0; b < code.num_blocks(); ++b) {
    const fs::path p = block_path(dir, b);
    if (!fs::exists(p)) {
      report.missing.push_back(b);
      continue;
    }
    const Buffer data = read_file(p);
    const bool size_ok = data.size() == m.block_bytes;
    const bool crc_ok = m.block_crcs.size() <= b  // no CRC recorded: trust
                            ? size_ok
                            : size_ok && crc32c(data) == m.block_crcs[b];
    if (!crc_ok) {
      report.corrupt.push_back(b);
      continue;
    }
    usable.push_back(b);
  }
  report.decodable = code.decodable(usable);
  return report;
}

std::string format_plan_stats() {
  std::ostringstream out;
  const codes::PlanCacheStats cs = codes::PlanCache::global().stats();
  out << "plan cache: ";
  if (cs.capacity == 0) {
    out << "disabled (GALLOPER_PLAN_CACHE=off)\n";
  } else {
    const uint64_t lookups = cs.hits + cs.misses;
    out << cs.entries << "/" << cs.capacity << " entries, " << cs.hits
        << " hits / " << cs.misses << " misses";
    if (lookups > 0)
      out << " (" << static_cast<int>(100.0 * static_cast<double>(cs.hits) /
                                      static_cast<double>(lookups))
          << "% hit rate)";
    out << ", " << cs.evictions << " evictions\n";
  }
  for (size_t i = 0; i < codes::kNumPlanOps; ++i) {
    const auto op = static_cast<codes::PlanOp>(i);
    const codes::PlanOpStats st = codes::plan_op_stats(op);
    if (st.plans == 0 && st.execs == 0) continue;
    out << "  " << codes::plan_op_name(op) << ": " << st.plans
        << " plans, " << st.execs << " executions";
    if (st.plans > 0)
      out << ", mean plan "
          << static_cast<double>(st.plan_ns) /
                 static_cast<double>(st.plans) * 1e-3
          << " us";
    if (st.execs > 0)
      out << ", mean execute "
          << static_cast<double>(st.exec_ns) /
                 static_cast<double>(st.execs) * 1e-3
          << " us";
    out << "\n";
  }
  return out.str();
}

}  // namespace galloper::cli
