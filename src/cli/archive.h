// On-disk coded archive format used by the `galloper` CLI tool:
//
//   <dir>/MANIFEST        — text manifest (key=value lines)
//   <dir>/block_NNN.bin   — one file per block (may be missing = lost)
//
// The manifest records the code parameters, the rational weights, and the
// original file size (the file is zero-padded up to a whole number of
// chunks before encoding).
#pragma once

#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "core/galloper.h"
#include "util/bytes.h"
#include "util/rational.h"

namespace galloper::cli {

struct Manifest {
  size_t k = 0;
  size_t l = 0;
  size_t g = 0;
  std::vector<Rational> weights;
  size_t block_bytes = 0;
  size_t original_bytes = 0;  // before padding
  std::vector<uint32_t> block_crcs;  // CRC-32C per block (may be empty in
                                     // archives from older writers)

  std::string serialize() const;
  static Manifest parse(const std::string& text);  // throws CheckError

  core::GalloperCode make_code() const;
};

// Encodes `input` with a (k,l,g) Galloper code (weights from `perf` via the
// LP when non-empty, uniform otherwise) and writes the archive to `dir`
// (created if needed). Returns the manifest written. `threads` ≥ 1 selects
// how many pool runners the coding data path uses (1 = serial; results are
// bit-identical for any value).
Manifest encode_archive(const std::filesystem::path& input,
                        const std::filesystem::path& dir, size_t k, size_t l,
                        size_t g, const std::vector<double>& perf = {},
                        int64_t resolution = 12, size_t threads = 1);

// Reads the manifest of an archive directory.
Manifest read_manifest(const std::filesystem::path& dir);

// Block file path; exists() tells whether the block is present.
std::filesystem::path block_path(const std::filesystem::path& dir,
                                 size_t block);

// Decodes the original file from the blocks present in `dir`.
// nullopt if the available blocks are insufficient.
std::optional<Buffer> decode_archive(const std::filesystem::path& dir,
                                     size_t threads = 1);

// Rebuilds one missing block file in place. Returns the helper blocks
// read; nullopt if impossible.
std::optional<std::vector<size_t>> repair_archive(
    const std::filesystem::path& dir, size_t block, size_t threads = 1);

// Human-readable description (weights, layout, data/parity split).
std::string describe_archive(const std::filesystem::path& dir);

// Overwrites the chunk-aligned byte range [offset, offset + data.size())
// of the ORIGINAL file inside the archive: only the block files touched by
// the delta-parity patch are rewritten, and their manifest CRCs refreshed.
// Requires every block file present (repair first on a degraded archive).
// Returns the blocks rewritten.
std::vector<size_t> update_archive(const std::filesystem::path& dir,
                                   size_t offset, ConstByteSpan data,
                                   size_t threads = 1);

// Integrity audit against the manifest's CRCs.
struct VerifyReport {
  std::vector<size_t> missing;    // block files absent
  std::vector<size_t> corrupt;    // present but CRC mismatch / wrong size
  bool decodable = false;         // can the file still be recovered?

  bool clean() const { return missing.empty() && corrupt.empty(); }
};
VerifyReport verify_archive(const std::filesystem::path& dir);

// Human-readable snapshot of the process-wide plan-cache counters and the
// per-path plan-vs-execute timing — what the CLI prints under --stats.
// Covers the work done so far in THIS process (hit rate, evictions, mean
// plan and execute times per data path).
std::string format_plan_stats();

}  // namespace galloper::cli
