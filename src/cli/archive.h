// On-disk coded archive format used by the `galloper` CLI tool:
//
//   <dir>/MANIFEST        — text manifest (key=value lines)
//   <dir>/block_NNN.bin   — one file per block (may be missing = lost)
//
// The manifest records the code parameters, the rational weights, and the
// original file size (the file is zero-padded up to a whole number of
// chunks before encoding).
//
// Two layouts share the block files:
//   v1 (format=galloper-archive-v1): the whole file is ONE codeword with
//     chunk = block_bytes / N — fine for small files, but coding it means
//     holding the entire file and all blocks in memory at once.
//   v2 (format=galloper-archive-v2, chunk_bytes=c): each block is a
//     concatenation of SEGMENT pieces. Segment s is an independent codeword
//     over chunk-size c (the last segment's chunk shrinks to cover the
//     remainder), and its piece sits at the same offset in every block.
//     Segments stream through the encode/decode/repair pipelines one at a
//     time, so memory stays O(segment) regardless of file size, and each
//     segment's codec call hands the batched plan executor c-wide cells.
// Geometry derives from block_bytes and chunk_bytes only (never from
// original_bytes, which update_archive may grow into the padding).
// Writers emit v1 whenever the file fits in one segment, so small archives
// are byte-identical to older writers; readers accept both.
#pragma once

#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "core/galloper.h"
#include "util/bytes.h"
#include "util/check.h"
#include "util/rational.h"

namespace galloper::cli {

// Thrown when rebuilt or decoded bytes fail the manifest CRC — the inputs
// themselves are corrupt, so retrying cannot help (unlike a transient I/O
// fault). The CLI maps this to its own exit code so scripts can tell
// "helpers are rotten, re-verify the archive" from "repair impossible".
class CrcMismatchError : public CheckError {
 public:
  explicit CrcMismatchError(const std::string& what) : CheckError(what) {}
};

struct Manifest {
  size_t k = 0;
  size_t l = 0;
  size_t g = 0;
  std::vector<Rational> weights;
  size_t block_bytes = 0;
  size_t original_bytes = 0;  // before padding
  size_t chunk_bytes = 0;     // v2 segment chunk size; 0 = v1 (monolithic)
  std::vector<uint32_t> block_crcs;  // CRC-32C per block (may be empty in
                                     // archives from older writers)

  std::string serialize() const;
  static Manifest parse(const std::string& text);  // throws CheckError

  core::GalloperCode make_code() const;
};

// One independent codeword of the archive. v1 archives have exactly one
// segment spanning everything; v2 archives have full segments of
// chunk_bytes plus an optional smaller tail segment.
struct Segment {
  size_t index = 0;
  size_t chunk = 0;         // per-stripe chunk bytes in this segment
  size_t block_offset = 0;  // offset of this segment's piece in every block
  size_t block_len = 0;     // stripes_per_block · chunk
  size_t file_offset = 0;   // offset in the (padded) original file
  size_t data_len = 0;      // num_chunks · chunk
};

// The segment layout of an archive, derived purely from block_bytes and
// chunk_bytes. Throws CheckError on inconsistent geometry.
std::vector<Segment> archive_segments(const Manifest& m, size_t num_chunks,
                                      size_t stripes_per_block);

// Default v2 segment chunk: segments of num_chunks·256 KiB of file data —
// big enough that the batched executor runs the SIMD kernels in their wide
// sweet spot, small enough that a pipeline holds only a few MB.
inline constexpr size_t kDefaultChunkBytes = size_t{256} << 10;

// Encodes `input` with a (k,l,g) Galloper code (weights from `perf` via the
// LP when non-empty, uniform otherwise) and writes the archive to `dir`
// (created if needed). Returns the manifest written. `threads` ≥ 1 selects
// how many pool runners the coding data path uses (1 = serial; results are
// bit-identical for any value).
//
// The encode is a streaming pipeline — a reader thread fills segment
// buffers from `input`, the calling thread encodes them (on the rt pool),
// and a writer thread appends the block pieces and folds the CRCs — so
// memory stays O(segment) for any file size. `chunk_bytes` sets the v2
// segment chunk (0 → kDefaultChunkBytes); files that fit one segment are
// written in the v1 monolithic layout.
//
// Crash-safe: blocks stream into `block_NNN.bin.tmp` staging files that are
// fsynced and renamed into place only after every byte landed, and the
// manifest is published last (atomically) — a crash at ANY point leaves
// either a complete archive or removable `.tmp` debris plus whatever was
// there before (see recover_archive_dir), never a torn archive.
Manifest encode_archive(const std::filesystem::path& input,
                        const std::filesystem::path& dir, size_t k, size_t l,
                        size_t g, const std::vector<double>& perf = {},
                        int64_t resolution = 12, size_t threads = 1,
                        size_t chunk_bytes = 0);

// Reads the manifest of an archive directory.
Manifest read_manifest(const std::filesystem::path& dir);

// Startup recovery sweep: removes orphaned `*.tmp` staging files left
// behind by a crash mid-encode / mid-repair. All archive writers stage
// into `.tmp` and fsync+rename only on success, so any `.tmp` that
// survives into a fresh process is garbage by construction — the matching
// final file is either the intact pre-crash version or legitimately
// absent (repair it again). Returns the paths removed. Safe on a
// directory that is not an archive (no-op).
std::vector<std::filesystem::path> recover_archive_dir(
    const std::filesystem::path& dir);

// Block file path; exists() tells whether the block is present.
std::filesystem::path block_path(const std::filesystem::path& dir,
                                 size_t block);

// Decodes the original file from the blocks present in `dir`.
// nullopt if the available blocks are insufficient.
std::optional<Buffer> decode_archive(const std::filesystem::path& dir,
                                     size_t threads = 1);

// Streaming decode straight to `output` (truncated/created): segments flow
// reader → codec → writer through bounded queues, so the decode of a
// multi-GB archive holds O(segment) memory. Returns false (removing the
// partial output) when the present blocks are insufficient. Bit-identical
// to writing decode_archive()'s buffer.
bool decode_archive_to(const std::filesystem::path& dir,
                       const std::filesystem::path& output,
                       size_t threads = 1);

// Rebuilds one missing block file. Returns the helper blocks read; nullopt
// if impossible. Streams segment by segment (pinning the repair plan once,
// after checking solvability but before reading any helper bytes), writes
// into block_NNN.bin.tmp, and renames over the target only after the
// rebuilt bytes match the manifest CRC — a failed repair unlinks its .tmp,
// so it never leaves a half-written staging file behind. Throws
// CrcMismatchError when the rebuilt bytes fail the manifest CRC (helper
// data is corrupt) and fault::TransientError when helper reads keep
// failing past the retry budget. A fault::CrashError is the one exception
// that DOES leave the .tmp behind (a crash runs no cleanup); the next
// process's recover_archive_dir sweep removes it.
std::optional<std::vector<size_t>> repair_archive(
    const std::filesystem::path& dir, size_t block, size_t threads = 1);

// Human-readable description (weights, layout, data/parity split).
std::string describe_archive(const std::filesystem::path& dir);

// Overwrites the chunk-aligned byte range [offset, offset + data.size())
// of the ORIGINAL file inside the archive: only the block files touched by
// the delta-parity patch are rewritten, and their manifest CRCs refreshed.
// Requires every block file present (repair first on a degraded archive).
// Returns the blocks rewritten. Segment-aware: only the segment pieces
// overlapping the range are loaded and patched in place, so an update
// against a huge v2 archive reads O(affected segments), not whole blocks.
// The range must be chunk-aligned within each segment it touches (segment
// boundaries themselves are always aligned).
std::vector<size_t> update_archive(const std::filesystem::path& dir,
                                   size_t offset, ConstByteSpan data,
                                   size_t threads = 1);

// Integrity audit against the manifest's CRCs.
struct VerifyReport {
  std::vector<size_t> missing;    // block files absent
  std::vector<size_t> corrupt;    // present but CRC mismatch / wrong size
  bool decodable = false;         // can the file still be recovered?

  bool clean() const { return missing.empty() && corrupt.empty(); }
};
VerifyReport verify_archive(const std::filesystem::path& dir);

// Human-readable snapshot of the process-wide plan-cache counters, the
// per-path plan-vs-execute timing, the batched-executor dispatch counters,
// and the buffer-pool hit rate — what the CLI prints under --stats.
// Covers the work done so far in THIS process.
std::string format_plan_stats();

}  // namespace galloper::cli
