#include "la/builders.h"

#include "la/solve.h"
#include "util/check.h"

namespace galloper::la {

Matrix vandermonde(size_t rows, size_t cols, size_t offset) {
  GALLOPER_CHECK_MSG(rows + offset <= 256,
                     "Vandermonde needs distinct field points");
  GALLOPER_CHECK(cols > 0);
  Matrix m(rows, cols);
  for (size_t i = 0; i < rows; ++i) {
    const gf::Elem x = static_cast<gf::Elem>(i + offset);
    gf::Elem p = 1;
    for (size_t j = 0; j < cols; ++j) {
      m.at(i, j) = p;
      p = gf::mul(p, x);
    }
  }
  return m;
}

Matrix cauchy(size_t rows, size_t cols) {
  GALLOPER_CHECK_MSG(rows + cols <= 256,
                     "Cauchy needs rows + cols distinct field points");
  Matrix m(rows, cols);
  for (size_t i = 0; i < rows; ++i) {
    const gf::Elem xi = static_cast<gf::Elem>(i);
    for (size_t j = 0; j < cols; ++j) {
      const gf::Elem yj = static_cast<gf::Elem>(rows + j);
      m.at(i, j) = gf::inv(gf::add(xi, yj));
    }
  }
  return m;
}

Matrix systematic_mds(size_t k, size_t r, size_t variant) {
  GALLOPER_CHECK(k > 0);
  GALLOPER_CHECK_MSG(k + r + variant <= 256,
                     "k + r + variant must be ≤ field size");
  if (r == 1) {
    // Single-parity MDS: the canonical XOR (all-ones) parity row. Any k of
    // the k+1 rows are invertible, and this matches the RAID-5 / paper
    // Fig. 3 convention.
    Matrix g = Matrix::identity(k).vstack(Matrix(1, k));
    for (size_t j = 0; j < k; ++j) g.at(k, j) = 1;
    return g;
  }
  const Matrix v = vandermonde(k + r, k, variant);
  std::vector<size_t> top(k);
  for (size_t i = 0; i < k; ++i) top[i] = i;
  const auto top_inv = inverse(v.select_rows(top));
  GALLOPER_CHECK_MSG(top_inv.has_value(),
                     "Vandermonde top block must be invertible");
  Matrix g = v * *top_inv;
  // The top block is exactly the identity; snap any representation noise.
  for (size_t i = 0; i < k; ++i)
    for (size_t j = 0; j < k; ++j)
      GALLOPER_CHECK(g.at(i, j) == (i == j ? 1 : 0));
  return g;
}

}  // namespace galloper::la
