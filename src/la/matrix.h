// Dense matrices over GF(2^8).
//
// These carry the generator matrices of every code in the library. They are
// small (at most a few thousand rows) — clarity over blocking optimizations.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "gf/gf256.h"

namespace galloper::la {

class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols);  // zero-filled
  Matrix(size_t rows, size_t cols, std::initializer_list<unsigned> values);

  static Matrix identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  gf::Elem at(size_t r, size_t c) const;
  gf::Elem& at(size_t r, size_t c);

  std::span<const gf::Elem> row(size_t r) const;
  std::span<gf::Elem> row(size_t r);

  Matrix operator*(const Matrix& o) const;
  bool operator==(const Matrix& o) const;
  bool operator!=(const Matrix& o) const { return !(*this == o); }

  // New matrix formed from the given rows of this one, in order.
  Matrix select_rows(std::span<const size_t> indices) const;

  // Stacks `below` underneath this matrix (column counts must match).
  Matrix vstack(const Matrix& below) const;

  Matrix transpose() const;

  // True if every entry is zero.
  bool is_zero() const;

  std::string to_string() const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<gf::Elem> data_;
};

}  // namespace galloper::la
