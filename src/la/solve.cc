#include "la/solve.h"

#include <vector>

#include "gf/region.h"
#include "util/check.h"

namespace galloper::la {

namespace {

// Reduces `a` to row echelon form in place, applying the same row operations
// to `aug` (which may have zero columns). Returns the pivot column of each
// eliminated row, in order.
std::vector<size_t> echelonize(Matrix& a, Matrix& aug) {
  const bool has_aug = aug.rows() > 0;
  if (has_aug) GALLOPER_CHECK(aug.rows() == a.rows());
  std::vector<size_t> pivots;
  size_t next_row = 0;
  for (size_t col = 0; col < a.cols() && next_row < a.rows(); ++col) {
    // Find a pivot at or below next_row.
    size_t pivot = next_row;
    while (pivot < a.rows() && a.at(pivot, col) == 0) ++pivot;
    if (pivot == a.rows()) continue;
    if (pivot != next_row) {
      std::swap_ranges(a.row(pivot).begin(), a.row(pivot).end(),
                       a.row(next_row).begin());
      if (has_aug)
        std::swap_ranges(aug.row(pivot).begin(), aug.row(pivot).end(),
                         aug.row(next_row).begin());
    }
    // Normalize the pivot row to a leading 1.
    const gf::Elem p = a.at(next_row, col);
    if (p != 1) {
      const gf::Elem pi = gf::inv(p);
      gf::scale_region(
          {reinterpret_cast<uint8_t*>(a.row(next_row).data()), a.cols()}, pi);
      if (has_aug)
        gf::scale_region({reinterpret_cast<uint8_t*>(aug.row(next_row).data()),
                          aug.cols()},
                         pi);
    }
    // Eliminate the column everywhere else (Gauss-Jordan — full reduction).
    for (size_t r = 0; r < a.rows(); ++r) {
      if (r == next_row) continue;
      const gf::Elem f = a.at(r, col);
      if (f == 0) continue;
      gf::mul_acc_region(
          {reinterpret_cast<uint8_t*>(a.row(r).data()), a.cols()}, f,
          {reinterpret_cast<const uint8_t*>(a.row(next_row).data()),
           a.cols()});
      if (has_aug)
        gf::mul_acc_region(
            {reinterpret_cast<uint8_t*>(aug.row(r).data()), aug.cols()}, f,
            {reinterpret_cast<const uint8_t*>(aug.row(next_row).data()),
             aug.cols()});
    }
    pivots.push_back(col);
    ++next_row;
  }
  return pivots;
}

}  // namespace

size_t rank(const Matrix& m) {
  Matrix a = m;
  Matrix no_aug;
  return echelonize(a, no_aug).size();
}

bool invertible(const Matrix& m) {
  return m.rows() == m.cols() && rank(m) == m.rows();
}

std::optional<Matrix> inverse(const Matrix& m) {
  GALLOPER_CHECK_MSG(m.rows() == m.cols(), "inverse of non-square matrix");
  Matrix a = m;
  Matrix aug = Matrix::identity(m.rows());
  const auto pivots = echelonize(a, aug);
  if (pivots.size() != m.rows()) return std::nullopt;
  return aug;
}

std::optional<Matrix> solve(const Matrix& a_in, const Matrix& b) {
  GALLOPER_CHECK(a_in.rows() == b.rows());
  GALLOPER_CHECK_MSG(a_in.rows() == a_in.cols(), "solve needs square A");
  Matrix a = a_in;
  Matrix aug = b;
  const auto pivots = echelonize(a, aug);
  if (pivots.size() != a.rows()) return std::nullopt;
  return aug;
}

RowspaceSolver::RowspaceSolver(const Matrix& basis)
    : ech_(basis), ops_(Matrix::identity(basis.rows())) {
  // Echelonize the basis while tracking the row operations in ops_ so that
  // ech_ = ops_ · basis; express() maps echelon-row combinations back
  // through ops_ to coefficients over the original basis rows.
  pivots_ = echelonize(ech_, ops_);
}

std::optional<std::vector<gf::Elem>> RowspaceSolver::express(
    std::span<const gf::Elem> target) const {
  GALLOPER_CHECK(target.size() == ech_.cols());
  // Eliminate the target against the echelon rows; if it reduces to zero,
  // the accumulated coefficients (mapped back through ops_) express it
  // over the original basis rows.
  std::vector<gf::Elem> work(target.begin(), target.end());
  std::vector<gf::Elem> coeffs(pivots_.size(), 0);
  for (size_t i = 0; i < pivots_.size(); ++i) {
    const gf::Elem f = work[pivots_[i]];
    if (f == 0) continue;
    coeffs[i] = f;  // echelon rows have a leading 1 at their pivot
    gf::mul_acc_region(
        {work.data(), work.size()}, f,
        {reinterpret_cast<const uint8_t*>(ech_.row(i).data()), ech_.cols()});
  }
  for (gf::Elem e : work)
    if (e != 0) return std::nullopt;  // outside the row space
  // target = Σ coeffs[i] · ech_[i] = Σ coeffs[i] · (ops_[i] · basis).
  std::vector<gf::Elem> out(ops_.cols(), 0);
  for (size_t i = 0; i < pivots_.size(); ++i) {
    if (coeffs[i] == 0) continue;
    gf::mul_acc_region(
        {out.data(), out.size()}, coeffs[i],
        {reinterpret_cast<const uint8_t*>(ops_.row(i).data()), ops_.cols()});
  }
  return out;
}

std::optional<Matrix> express_in_rowspace(const Matrix& basis,
                                          const Matrix& targets) {
  GALLOPER_CHECK(basis.cols() == targets.cols());
  const RowspaceSolver solver(basis);
  Matrix out(targets.rows(), basis.rows());
  for (size_t t = 0; t < targets.rows(); ++t) {
    const auto coeffs = solver.express(targets.row(t));
    if (!coeffs) return std::nullopt;
    std::copy(coeffs->begin(), coeffs->end(), out.row(t).begin());
  }
  return out;
}

}  // namespace galloper::la
