#include "la/solve.h"

#include <vector>

#include "gf/region.h"
#include "util/check.h"

namespace galloper::la {

namespace {

// Reduces `a` to row echelon form in place, applying the same row operations
// to `aug` (which may have zero columns). Returns the pivot column of each
// eliminated row, in order.
std::vector<size_t> echelonize(Matrix& a, Matrix& aug) {
  const bool has_aug = aug.rows() > 0;
  if (has_aug) GALLOPER_CHECK(aug.rows() == a.rows());
  std::vector<size_t> pivots;
  size_t next_row = 0;
  for (size_t col = 0; col < a.cols() && next_row < a.rows(); ++col) {
    // Find a pivot at or below next_row.
    size_t pivot = next_row;
    while (pivot < a.rows() && a.at(pivot, col) == 0) ++pivot;
    if (pivot == a.rows()) continue;
    if (pivot != next_row) {
      std::swap_ranges(a.row(pivot).begin(), a.row(pivot).end(),
                       a.row(next_row).begin());
      if (has_aug)
        std::swap_ranges(aug.row(pivot).begin(), aug.row(pivot).end(),
                         aug.row(next_row).begin());
    }
    // Normalize the pivot row to a leading 1.
    const gf::Elem p = a.at(next_row, col);
    if (p != 1) {
      const gf::Elem pi = gf::inv(p);
      gf::scale_region(
          {reinterpret_cast<uint8_t*>(a.row(next_row).data()), a.cols()}, pi);
      if (has_aug)
        gf::scale_region({reinterpret_cast<uint8_t*>(aug.row(next_row).data()),
                          aug.cols()},
                         pi);
    }
    // Eliminate the column everywhere else (Gauss-Jordan — full reduction).
    for (size_t r = 0; r < a.rows(); ++r) {
      if (r == next_row) continue;
      const gf::Elem f = a.at(r, col);
      if (f == 0) continue;
      gf::mul_acc_region(
          {reinterpret_cast<uint8_t*>(a.row(r).data()), a.cols()}, f,
          {reinterpret_cast<const uint8_t*>(a.row(next_row).data()),
           a.cols()});
      if (has_aug)
        gf::mul_acc_region(
            {reinterpret_cast<uint8_t*>(aug.row(r).data()), aug.cols()}, f,
            {reinterpret_cast<const uint8_t*>(aug.row(next_row).data()),
             aug.cols()});
    }
    pivots.push_back(col);
    ++next_row;
  }
  return pivots;
}

}  // namespace

size_t rank(const Matrix& m) {
  Matrix a = m;
  Matrix no_aug;
  return echelonize(a, no_aug).size();
}

bool invertible(const Matrix& m) {
  return m.rows() == m.cols() && rank(m) == m.rows();
}

std::optional<Matrix> inverse(const Matrix& m) {
  GALLOPER_CHECK_MSG(m.rows() == m.cols(), "inverse of non-square matrix");
  Matrix a = m;
  Matrix aug = Matrix::identity(m.rows());
  const auto pivots = echelonize(a, aug);
  if (pivots.size() != m.rows()) return std::nullopt;
  return aug;
}

std::optional<Matrix> solve(const Matrix& a_in, const Matrix& b) {
  GALLOPER_CHECK(a_in.rows() == b.rows());
  GALLOPER_CHECK_MSG(a_in.rows() == a_in.cols(), "solve needs square A");
  Matrix a = a_in;
  Matrix aug = b;
  const auto pivots = echelonize(a, aug);
  if (pivots.size() != a.rows()) return std::nullopt;
  return aug;
}

std::optional<Matrix> express_in_rowspace(const Matrix& basis,
                                          const Matrix& targets) {
  GALLOPER_CHECK(basis.cols() == targets.cols());
  // Echelonize basis while tracking the row operations in `ops` so that
  // echelon = ops · basis. Then for each target row t, eliminate it against
  // the echelon rows; if it reduces to zero, the accumulated coefficients
  // (mapped back through ops) express t over the original basis rows.
  Matrix ech = basis;
  Matrix ops = Matrix::identity(basis.rows());
  const auto pivots = echelonize(ech, ops);

  Matrix out(targets.rows(), basis.rows());
  for (size_t t = 0; t < targets.rows(); ++t) {
    // Work on a copy of the target row; coeffs accumulates the combination
    // of echelon rows used.
    std::vector<gf::Elem> work(targets.row(t).begin(), targets.row(t).end());
    std::vector<gf::Elem> coeffs(pivots.size(), 0);
    for (size_t i = 0; i < pivots.size(); ++i) {
      const gf::Elem f = work[pivots[i]];
      if (f == 0) continue;
      coeffs[i] = f;  // echelon rows have a leading 1 at their pivot
      gf::mul_acc_region(
          {work.data(), work.size()}, f,
          {reinterpret_cast<const uint8_t*>(ech.row(i).data()), ech.cols()});
    }
    for (gf::Elem e : work)
      if (e != 0) return std::nullopt;  // outside the row space
    // Map combination of echelon rows back to original rows:
    // target = Σ coeffs[i] · ech[i] = Σ coeffs[i] · (ops[i] · basis).
    for (size_t i = 0; i < pivots.size(); ++i) {
      if (coeffs[i] == 0) continue;
      gf::mul_acc_region(
          {reinterpret_cast<uint8_t*>(out.row(t).data()), out.cols()},
          coeffs[i],
          {reinterpret_cast<const uint8_t*>(ops.row(i).data()), ops.cols()});
    }
  }
  return out;
}

}  // namespace galloper::la
