#include "la/matrix.h"

#include <sstream>

#include "util/check.h"

namespace galloper::la {

Matrix::Matrix(size_t rows, size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0) {}

Matrix::Matrix(size_t rows, size_t cols,
               std::initializer_list<unsigned> values)
    : Matrix(rows, cols) {
  GALLOPER_CHECK_MSG(values.size() == rows * cols,
                     "initializer size " << values.size() << " != "
                                         << rows * cols);
  size_t i = 0;
  for (unsigned v : values) {
    GALLOPER_CHECK(v < 256);
    data_[i++] = static_cast<gf::Elem>(v);
  }
}

Matrix Matrix::identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m.at(i, i) = 1;
  return m;
}

gf::Elem Matrix::at(size_t r, size_t c) const {
  GALLOPER_CHECK(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

gf::Elem& Matrix::at(size_t r, size_t c) {
  GALLOPER_CHECK(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

std::span<const gf::Elem> Matrix::row(size_t r) const {
  GALLOPER_CHECK(r < rows_);
  return {data_.data() + r * cols_, cols_};
}

std::span<gf::Elem> Matrix::row(size_t r) {
  GALLOPER_CHECK(r < rows_);
  return {data_.data() + r * cols_, cols_};
}

Matrix Matrix::operator*(const Matrix& o) const {
  GALLOPER_CHECK_MSG(cols_ == o.rows_, "matrix product shape mismatch: "
                                           << rows_ << "x" << cols_ << " · "
                                           << o.rows_ << "x" << o.cols_);
  Matrix out(rows_, o.cols_);
  // i-k-j loop order with a row-product table per (i,k) — cache friendly and
  // avoids per-entry table lookups in the inner loop.
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t k = 0; k < cols_; ++k) {
      const gf::Elem a = data_[i * cols_ + k];
      if (a == 0) continue;
      const gf::Elem* mrow = gf::mul_row(a);
      const gf::Elem* src = &o.data_[k * o.cols_];
      gf::Elem* dst = &out.data_[i * o.cols_];
      for (size_t j = 0; j < o.cols_; ++j) dst[j] ^= mrow[src[j]];
    }
  }
  return out;
}

bool Matrix::operator==(const Matrix& o) const {
  return rows_ == o.rows_ && cols_ == o.cols_ && data_ == o.data_;
}

Matrix Matrix::select_rows(std::span<const size_t> indices) const {
  Matrix out(indices.size(), cols_);
  for (size_t i = 0; i < indices.size(); ++i) {
    GALLOPER_CHECK(indices[i] < rows_);
    auto src = row(indices[i]);
    std::copy(src.begin(), src.end(), out.row(i).begin());
  }
  return out;
}

Matrix Matrix::vstack(const Matrix& below) const {
  GALLOPER_CHECK(cols_ == below.cols_ || rows_ == 0 || below.rows_ == 0);
  if (rows_ == 0) return below;
  if (below.rows_ == 0) return *this;
  Matrix out(rows_ + below.rows_, cols_);
  std::copy(data_.begin(), data_.end(), out.data_.begin());
  std::copy(below.data_.begin(), below.data_.end(),
            out.data_.begin() + static_cast<ptrdiff_t>(data_.size()));
  return out;
}

Matrix Matrix::transpose() const {
  Matrix out(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r)
    for (size_t c = 0; c < cols_; ++c) out.at(c, r) = at(r, c);
  return out;
}

bool Matrix::is_zero() const {
  for (gf::Elem e : data_)
    if (e != 0) return false;
  return true;
}

std::string Matrix::to_string() const {
  std::ostringstream os;
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) {
      os << static_cast<unsigned>(at(r, c));
      os << (c + 1 == cols_ ? '\n' : ' ');
    }
  }
  return os.str();
}

}  // namespace galloper::la
