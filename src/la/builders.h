// Constructors for the classical generator matrices the codes are built on.
#pragma once

#include "la/matrix.h"

namespace galloper::la {

// (rows × cols) Vandermonde matrix V[i][j] = x_i^j with distinct
// x_i = i + offset. Any `cols` rows of it are linearly independent.
// Requires rows + offset ≤ 256.
Matrix vandermonde(size_t rows, size_t cols, size_t offset = 0);

// (rows × cols) Cauchy matrix C[i][j] = 1 / (x_i + y_j) with the x's and
// y's distinct. Any square submatrix is invertible.
// Requires rows + cols ≤ 256.
Matrix cauchy(size_t rows, size_t cols);

// Systematic MDS generator for a (k, r) code: a (k+r) × k matrix whose top
// k×k block is the identity and in which ANY k rows are invertible. Built by
// column-transforming a Vandermonde matrix (G = V · V_top⁻¹), which
// preserves the any-k-rows property. Requires k + r + variant ≤ 256.
//
// `variant` selects a different (still MDS) coefficient set by shifting the
// Vandermonde evaluation points — used by the Galloper construction to
// sidestep rare degenerate interactions between parity coefficients and
// stripe rotations (see core/construction.cc). Ignored for r = 1 (the XOR
// parity is canonical and variant-proof).
Matrix systematic_mds(size_t k, size_t r, size_t variant = 0);

}  // namespace galloper::la
