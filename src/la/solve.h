// Gaussian elimination over GF(2^8): rank, inversion, linear solves, and the
// row-combination solver behind the generic repair planner.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "la/matrix.h"

namespace galloper::la {

// Rank of `m` (row echelon form over the field).
size_t rank(const Matrix& m);

// True if the square matrix is invertible.
bool invertible(const Matrix& m);

// Inverse of a square matrix; nullopt if singular.
std::optional<Matrix> inverse(const Matrix& m);

// Solves A · X = B for X (A square). nullopt if A is singular.
std::optional<Matrix> solve(const Matrix& a, const Matrix& b);

// Expresses each row of `targets` as a linear combination of the rows of
// `basis`: finds C with C · basis = targets. `basis` may be rectangular and
// rank-deficient; nullopt if any target row lies outside the row space.
//
// This is the workhorse of erasure repair: `basis` holds the generator rows
// of the surviving stripes, `targets` the rows of the lost stripes, and C
// gives the coefficients to rebuild the lost data from survivors.
std::optional<Matrix> express_in_rowspace(const Matrix& basis,
                                          const Matrix& targets);

// The incremental form of express_in_rowspace: pays the Gaussian
// elimination of `basis` exactly once at construction, then answers any
// number of single-row queries against the echelonized form. This is what
// plan compilation uses — one erasure pattern fixes the basis, and every
// output chunk/stripe is one express() call — and it reports solvability
// PER TARGET ROW, which an all-or-nothing batched solve cannot (read_range
// must serve chunks that are recoverable even when some other chunk of the
// same pattern is not).
class RowspaceSolver {
 public:
  explicit RowspaceSolver(const Matrix& basis);

  size_t basis_rows() const { return ops_.cols(); }
  size_t cols() const { return ech_.cols(); }
  size_t rank() const { return pivots_.size(); }

  // Coefficients c (length basis_rows()) with c · basis = target, or
  // nullopt if target lies outside the row space. Identical coefficients to
  // express_in_rowspace on the same basis.
  std::optional<std::vector<gf::Elem>> express(
      std::span<const gf::Elem> target) const;

 private:
  Matrix ech_;   // row echelon form of the basis (leading 1 per pivot)
  Matrix ops_;   // row-operation tracker: ech_ = ops_ · basis
  std::vector<size_t> pivots_;
};

}  // namespace galloper::la
