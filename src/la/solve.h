// Gaussian elimination over GF(2^8): rank, inversion, linear solves, and the
// row-combination solver behind the generic repair planner.
#pragma once

#include <optional>

#include "la/matrix.h"

namespace galloper::la {

// Rank of `m` (row echelon form over the field).
size_t rank(const Matrix& m);

// True if the square matrix is invertible.
bool invertible(const Matrix& m);

// Inverse of a square matrix; nullopt if singular.
std::optional<Matrix> inverse(const Matrix& m);

// Solves A · X = B for X (A square). nullopt if A is singular.
std::optional<Matrix> solve(const Matrix& a, const Matrix& b);

// Expresses each row of `targets` as a linear combination of the rows of
// `basis`: finds C with C · basis = targets. `basis` may be rectangular and
// rank-deficient; nullopt if any target row lies outside the row space.
//
// This is the workhorse of erasure repair: `basis` holds the generator rows
// of the surviving stripes, `targets` the rows of the lost stripes, and C
// gives the coefficients to rebuild the lost data from survivors.
std::optional<Matrix> express_in_rowspace(const Matrix& basis,
                                          const Matrix& targets);

}  // namespace galloper::la
