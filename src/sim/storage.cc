#include "sim/storage.h"

#include <algorithm>

#include "util/check.h"

namespace galloper::sim {

StorageSystem::StorageSystem(Simulation& sim, Cluster& cluster,
                             const codes::ErasureCode& code,
                             size_t block_bytes)
    : sim_(sim), cluster_(cluster), code_(code), block_bytes_(block_bytes) {
  GALLOPER_CHECK_MSG(cluster.size() >= code.num_blocks(),
                     "cluster too small: " << cluster.size() << " servers, "
                                           << code.num_blocks() << " blocks");
  GALLOPER_CHECK(block_bytes > 0);
}

size_t StorageSystem::server_of_block(size_t block) const {
  GALLOPER_CHECK(block < code_.num_blocks());
  return block;  // identity placement
}

void StorageSystem::fail_block(size_t block) {
  cluster_.server(server_of_block(block)).fail();
}

void StorageSystem::recover_block(size_t block) {
  cluster_.server(server_of_block(block)).recover();
}

std::vector<size_t> StorageSystem::alive_blocks() const {
  std::vector<size_t> out;
  for (size_t b = 0; b < code_.num_blocks(); ++b)
    if (cluster_.server(server_of_block(b)).alive()) out.push_back(b);
  return out;
}

bool StorageSystem::data_available() const {
  return code_.decodable(alive_blocks());
}

RepairMetrics StorageSystem::simulate_repair(size_t failed,
                                             size_t replacement_server) {
  return simulate_repair(failed, replacement_server,
                         code_.repair_helpers(failed));
}

RepairMetrics StorageSystem::simulate_repair(
    size_t failed, size_t replacement_server,
    const std::vector<size_t>& helpers) {
  GALLOPER_CHECK(failed < code_.num_blocks());
  GALLOPER_CHECK(replacement_server < cluster_.size());
  GALLOPER_CHECK_MSG(code_.engine().can_repair(failed, helpers),
                     "helper set cannot repair block " << failed);

  RepairMetrics metrics;
  metrics.helpers = helpers;
  Server& target = cluster_.server(replacement_server);

  const Time start = sim_.now();
  size_t pending = helpers.size();
  Time finish = start;
  const double bytes = static_cast<double>(block_bytes_);

  Server* target_ptr = &target;
  for (size_t h : helpers) {
    // Pointer (not reference) captures: the callbacks outlive this loop
    // iteration and run inside sim_.run() below.
    Server* helper = &cluster_.server(server_of_block(h));
    GALLOPER_CHECK_MSG(helper->alive(), "helper block " << h << " is dead");
    metrics.disk_bytes_read += block_bytes_;
    metrics.network_bytes += block_bytes_;
    // Disk read, then store-and-forward through both NICs, then (once every
    // helper block arrived) the GF combination on the target CPU.
    helper->disk().submit(bytes, [this, helper, target_ptr, bytes, &pending,
                                  &finish, helpers_count = helpers.size()] {
      helper->nic().submit(bytes, [this, target_ptr, bytes, &pending, &finish,
                                   helpers_count] {
        target_ptr->nic().submit(bytes, [this, target_ptr, bytes, &pending,
                                         &finish, helpers_count] {
          if (--pending == 0) {
            const double work =
                bytes * static_cast<double>(helpers_count) /
                StorageSystem::kGfBytesPerCpuUnit;
            target_ptr->cpu().submit(work,
                                     [this, &finish] { finish = sim_.now(); });
          }
        });
      });
    });
  }
  sim_.run();
  metrics.completion_time = finish - start;
  return metrics;
}

RepairMetrics StorageSystem::simulate_read(size_t block) {
  GALLOPER_CHECK(block < code_.num_blocks());
  Server& owner = cluster_.server(server_of_block(block));
  if (owner.alive()) {
    RepairMetrics metrics;
    const Time start = sim_.now();
    Time finish = start;
    const double bytes = static_cast<double>(block_bytes_);
    metrics.disk_bytes_read = block_bytes_;
    metrics.network_bytes = block_bytes_;
    owner.disk().submit(bytes, [&owner, bytes, &finish, this] {
      owner.nic().submit(bytes, [&finish, this] { finish = sim_.now(); });
    });
    sim_.run();
    metrics.completion_time = finish - start;
    return metrics;
  }
  // Degraded read: same data movement as a repair, reconstructed on the
  // least-loaded alive server.
  std::vector<size_t> helpers;
  for (size_t h : code_.repair_helpers(block)) {
    GALLOPER_CHECK_MSG(cluster_.server(server_of_block(h)).alive(),
                       "degraded read: helper " << h << " also dead");
    helpers.push_back(h);
  }
  return simulate_repair(block, helpers.front(), helpers);
}

}  // namespace galloper::sim
