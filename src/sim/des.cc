#include "sim/des.h"

#include <algorithm>

namespace galloper::sim {

void Simulation::schedule_at(Time t, std::function<void()> fn) {
  GALLOPER_CHECK_MSG(t >= now_, "cannot schedule in the past: t=" << t
                                                                  << " now="
                                                                  << now_);
  GALLOPER_CHECK(fn != nullptr);
  queue_.push({t, next_seq_++, std::move(fn)});
}

void Simulation::schedule_after(Time dt, std::function<void()> fn) {
  GALLOPER_CHECK_MSG(dt >= 0, "negative delay " << dt);
  schedule_at(now_ + dt, std::move(fn));
}

bool Simulation::step() {
  if (queue_.empty()) return false;
  // Moving out of the priority queue requires a const_cast because top()
  // is const; the pop immediately follows, so the moved-from state is
  // never observed.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.time;
  ++processed_;
  ev.fn();
  return true;
}

void Simulation::run() {
  while (step()) {
  }
}

void Simulation::run_until(Time t) {
  while (!queue_.empty() && queue_.top().time <= t) step();
  now_ = std::max(now_, t);
}

Resource::Resource(Simulation& sim, std::string name, double rate)
    : sim_(sim), name_(std::move(name)), rate_(rate) {
  GALLOPER_CHECK_MSG(rate > 0, "resource rate must be positive");
}

Time Resource::submit(double amount, std::function<void()> done) {
  GALLOPER_CHECK_MSG(amount >= 0, "negative work amount");
  const Time start = std::max(sim_.now(), available_at_);
  const Time finish = start + amount / rate_;
  available_at_ = finish;
  total_units_ += amount;
  busy_time_ += amount / rate_;
  if (done) sim_.schedule_at(finish, std::move(done));
  return finish;
}

void Resource::submit_delayed(double amount, Time delay,
                              std::function<void()> done) {
  GALLOPER_CHECK_MSG(delay >= 0, "negative delay");
  if (delay == 0) {
    submit(amount, std::move(done));
    return;
  }
  sim_.schedule_after(delay, [this, amount, done = std::move(done)]() mutable {
    submit(amount, std::move(done));
  });
}

double Resource::utilization() const {
  const Time elapsed = sim_.now();
  if (elapsed <= 0) return 0;
  return std::min(1.0, busy_time_ / elapsed);
}

}  // namespace galloper::sim
