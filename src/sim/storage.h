// Simulated erasure-coded storage system: blocks placed one-per-server on a
// Cluster, with failure injection, repair simulation, and disk/network byte
// accounting — the measurement harness behind the reconstruction
// experiments (paper Fig. 1 and Fig. 8b) and the failure-recovery example.
#pragma once

#include <vector>

#include "codes/erasure_code.h"
#include "sim/cluster.h"

namespace galloper::sim {

struct RepairMetrics {
  Time completion_time = 0;     // simulated seconds for the whole repair
  size_t disk_bytes_read = 0;   // Σ bytes read from helper disks (Fig. 8b)
  size_t network_bytes = 0;     // bytes shipped to the rebuilding server
  std::vector<size_t> helpers;  // helper blocks used
};

class StorageSystem {
 public:
  // Places block b of `code` on cluster server b (the cluster may be
  // larger; extra servers are spare capacity / replacement targets).
  StorageSystem(Simulation& sim, Cluster& cluster,
                const codes::ErasureCode& code, size_t block_bytes);

  size_t block_bytes() const { return block_bytes_; }
  const codes::ErasureCode& code() const { return code_; }

  // Which server stores block b.
  size_t server_of_block(size_t block) const;

  // Marks the server of `block` failed.
  void fail_block(size_t block);
  void recover_block(size_t block);

  // Blocks whose servers are alive.
  std::vector<size_t> alive_blocks() const;

  // True if the original data can still be decoded from alive blocks.
  bool data_available() const;

  // Simulates rebuilding `failed` onto `replacement_server` from the code's
  // preferred helper set (skipping dead helpers is the caller's job — a
  // CheckError is raised if a helper is dead). The model: each helper reads
  // its whole block from disk, ships it store-and-forward through its NIC
  // and the replacement's NIC, and the replacement then runs the GF
  // combination on its CPU.
  RepairMetrics simulate_repair(size_t failed, size_t replacement_server);
  RepairMetrics simulate_repair(size_t failed, size_t replacement_server,
                                const std::vector<size_t>& helpers);

  // Simulates a client read of one block: a plain disk+NIC read if its
  // server is alive, otherwise a degraded read that contacts the helper
  // set like a repair.
  RepairMetrics simulate_read(size_t block);

  // GF-combination throughput of one CPU unit, bytes/s per helper block.
  static constexpr double kGfBytesPerCpuUnit = 500e6;

 private:
  Simulation& sim_;
  Cluster& cluster_;
  const codes::ErasureCode& code_;
  size_t block_bytes_;
};

}  // namespace galloper::sim
