#include "sim/cluster.h"

#include "util/check.h"

namespace galloper::sim {

namespace {
std::string res_name(size_t id, const char* kind) {
  return "server" + std::to_string(id) + "/" + kind;
}
}  // namespace

Server::Server(Simulation& sim, size_t id, const ServerSpec& spec)
    : id_(id),
      spec_(spec),
      disk_(sim, res_name(id, "disk"), spec.disk_bw),
      nic_(sim, res_name(id, "nic"), spec.net_bw),
      cpu_(sim, res_name(id, "cpu"), spec.cpu) {}

Cluster::Cluster(Simulation& sim, const std::vector<ServerSpec>& specs) {
  GALLOPER_CHECK(!specs.empty());
  servers_.reserve(specs.size());
  for (size_t i = 0; i < specs.size(); ++i)
    servers_.push_back(std::make_unique<Server>(sim, i, specs[i]));
}

Cluster::Cluster(Simulation& sim, size_t n, const ServerSpec& spec)
    : Cluster(sim, std::vector<ServerSpec>(n, spec)) {}

Server& Cluster::server(size_t i) {
  GALLOPER_CHECK(i < servers_.size());
  return *servers_[i];
}

const Server& Cluster::server(size_t i) const {
  GALLOPER_CHECK(i < servers_.size());
  return *servers_[i];
}

std::vector<size_t> Cluster::alive_servers() const {
  std::vector<size_t> out;
  for (const auto& s : servers_)
    if (s->alive()) out.push_back(s->id());
  return out;
}

}  // namespace galloper::sim
