// A small discrete-event simulation kernel.
//
// This substrate replaces the paper's EC2 testbed: servers, disks, NICs and
// CPUs become rate-limited FIFO resources, and experiments measure simulated
// completion times instead of wall-clock times (see DESIGN.md,
// "Substitutions"). Deterministic: identical inputs give identical
// schedules.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "util/check.h"

namespace galloper::sim {

using Time = double;  // simulated seconds

class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  Time now() const { return now_; }

  // Schedules `fn` at absolute time t ≥ now().
  void schedule_at(Time t, std::function<void()> fn);

  // Schedules `fn` after a delay dt ≥ 0.
  void schedule_after(Time dt, std::function<void()> fn);

  // Runs events in time order until none remain. Events scheduled at equal
  // times run in insertion order.
  void run();

  // Runs until the queue empties or the next event is later than `t`.
  void run_until(Time t);

  size_t events_processed() const { return processed_; }

 private:
  struct Event {
    Time time;
    uint64_t seq;
    std::function<void()> fn;
    bool operator>(const Event& o) const {
      return time != o.time ? time > o.time : seq > o.seq;
    }
  };

  bool step();  // pops and runs one event; false if empty

  Time now_ = 0;
  uint64_t next_seq_ = 0;
  size_t processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
};

// A device that serves work FIFO at a fixed rate (a disk at bytes/s, a NIC
// at bytes/s, a CPU at work-units/s). submit() models queueing: work starts
// when all previously submitted work has drained.
class Resource {
 public:
  Resource(Simulation& sim, std::string name, double rate);

  const std::string& name() const { return name_; }
  double rate() const { return rate_; }

  // Enqueues `amount` units; `done` fires when this work completes.
  // Returns the completion time.
  Time submit(double amount, std::function<void()> done = {});

  // Fault-injection variant: the work reaches the device only after
  // `delay` simulated seconds (a latency spike on a slow/flaky helper).
  // The device stays free for other work during the stall — a spike delays
  // THIS request, it does not busy the disk.
  void submit_delayed(double amount, Time delay,
                      std::function<void()> done = {});

  // Time at which the device becomes idle given current queue.
  Time available_at() const { return available_at_; }

  // Total units ever submitted (e.g. total bytes read from this disk).
  double total_units() const { return total_units_; }

  // Busy time / elapsed time, evaluated at sim.now().
  double utilization() const;

 private:
  Simulation& sim_;
  std::string name_;
  double rate_;
  Time available_at_ = 0;
  double total_units_ = 0;
  double busy_time_ = 0;
};

}  // namespace galloper::sim
