// Simulated storage/compute cluster: the stand-in for the paper's EC2
// fleets (c4.4xlarge for coding experiments, 30 × r3.large for Hadoop).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/des.h"

namespace galloper::sim {

struct ServerSpec {
  double disk_bw = 100e6;  // sequential disk bandwidth, bytes/s
  double net_bw = 1e9 / 8;  // NIC bandwidth, bytes/s (1 Gb/s default)
  double cpu = 1.0;         // relative compute rate, work-units/s

  // The r3.large-ish defaults above can be scaled, e.g. spec.scaled(0.4)
  // models the paper's "40% performance" CPU-limited servers.
  ServerSpec scaled_cpu(double factor) const {
    ServerSpec s = *this;
    s.cpu *= factor;
    return s;
  }
};

class Server {
 public:
  Server(Simulation& sim, size_t id, const ServerSpec& spec);

  size_t id() const { return id_; }
  const ServerSpec& spec() const { return spec_; }

  Resource& disk() { return disk_; }
  Resource& nic() { return nic_; }
  Resource& cpu() { return cpu_; }
  const Resource& disk() const { return disk_; }
  const Resource& nic() const { return nic_; }
  const Resource& cpu() const { return cpu_; }

  // Liveness is a monotonic *epoch*, not a flag: even = alive, odd = dead,
  // and every fail()/recover() transition bumps it by one. Chaos actors
  // (fail_server mid-job) flip it while concurrent readers poll it; the
  // FileStore's block state stays under its own lock — this only covers
  // liveness itself. The epoch is what lets long operations detect that a
  // server they started against has been through a kill (or a full
  // kill/revive cycle) since: capture epoch() up front, re-check before
  // committing. A raw bool cannot express that — after kill+revive it
  // compares equal again, which is exactly the resurrection race
  // (install-onto-a-revived-empty-server) documented in file_store.h.
  bool alive() const {
    return (epoch_.load(std::memory_order_acquire) & 1) == 0;
  }
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  // Idempotent transitions: a racing double-fail (two chaos actors killing
  // the same server) bumps the epoch once, not twice — the CAS only
  // advances from the matching parity.
  void fail() {
    uint64_t e = epoch_.load(std::memory_order_relaxed);
    while ((e & 1) == 0 &&
           !epoch_.compare_exchange_weak(e, e + 1, std::memory_order_acq_rel,
                                         std::memory_order_relaxed)) {
    }
  }
  void recover() {
    uint64_t e = epoch_.load(std::memory_order_relaxed);
    while ((e & 1) == 1 &&
           !epoch_.compare_exchange_weak(e, e + 1, std::memory_order_acq_rel,
                                         std::memory_order_relaxed)) {
    }
  }

 private:
  size_t id_;
  ServerSpec spec_;
  Resource disk_;
  Resource nic_;
  Resource cpu_;
  std::atomic<uint64_t> epoch_{0};
};

class Cluster {
 public:
  Cluster(Simulation& sim, const std::vector<ServerSpec>& specs);

  // Homogeneous cluster of `n` servers.
  Cluster(Simulation& sim, size_t n, const ServerSpec& spec);

  size_t size() const { return servers_.size(); }
  Server& server(size_t i);
  const Server& server(size_t i) const;

  std::vector<size_t> alive_servers() const;

 private:
  std::vector<std::unique_ptr<Server>> servers_;
};

}  // namespace galloper::sim
