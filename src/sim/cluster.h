// Simulated storage/compute cluster: the stand-in for the paper's EC2
// fleets (c4.4xlarge for coding experiments, 30 × r3.large for Hadoop).
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "sim/des.h"

namespace galloper::sim {

struct ServerSpec {
  double disk_bw = 100e6;  // sequential disk bandwidth, bytes/s
  double net_bw = 1e9 / 8;  // NIC bandwidth, bytes/s (1 Gb/s default)
  double cpu = 1.0;         // relative compute rate, work-units/s

  // The r3.large-ish defaults above can be scaled, e.g. spec.scaled(0.4)
  // models the paper's "40% performance" CPU-limited servers.
  ServerSpec scaled_cpu(double factor) const {
    ServerSpec s = *this;
    s.cpu *= factor;
    return s;
  }
};

class Server {
 public:
  Server(Simulation& sim, size_t id, const ServerSpec& spec);

  size_t id() const { return id_; }
  const ServerSpec& spec() const { return spec_; }

  Resource& disk() { return disk_; }
  Resource& nic() { return nic_; }
  Resource& cpu() { return cpu_; }
  const Resource& disk() const { return disk_; }
  const Resource& nic() const { return nic_; }
  const Resource& cpu() const { return cpu_; }

  // The liveness flag is atomic so chaos actors (fail_server mid-job) may
  // flip it while concurrent readers poll it; the FileStore's block state
  // stays under its own lock — this only covers the flag itself.
  bool alive() const { return alive_.load(std::memory_order_acquire); }
  void fail() { alive_.store(false, std::memory_order_release); }
  void recover() { alive_.store(true, std::memory_order_release); }

 private:
  size_t id_;
  ServerSpec spec_;
  Resource disk_;
  Resource nic_;
  Resource cpu_;
  std::atomic<bool> alive_{true};
};

class Cluster {
 public:
  Cluster(Simulation& sim, const std::vector<ServerSpec>& specs);

  // Homogeneous cluster of `n` servers.
  Cluster(Simulation& sim, size_t n, const ServerSpec& spec);

  size_t size() const { return servers_.size(); }
  Server& server(size_t i);
  const Server& server(size_t i) const;

  std::vector<size_t> alive_servers() const;

 private:
  std::vector<std::unique_ptr<Server>> servers_;
};

}  // namespace galloper::sim
