#include "scenario/scenario.h"

#include <algorithm>

#include "core/input_format.h"
#include "mr/grep.h"
#include "mr/terasort.h"
#include "mr/wordcount.h"
#include "store/file_store.h"
#include "store/recovery.h"
#include "util/check.h"
#include "util/rng.h"

namespace galloper::scenario {

ScenarioResult run_scenario(const codes::ErasureCode& code,
                            const ScenarioConfig& config) {
  GALLOPER_CHECK(config.cluster_servers >= code.num_blocks());
  GALLOPER_CHECK(config.num_files > 0 && config.num_jobs > 0);

  sim::Simulation simulation;
  sim::Cluster cluster(simulation, config.cluster_servers, sim::ServerSpec{});
  store::FileStore fs(cluster, code);
  Rng rng(config.seed);

  // Write the dataset (file size rounded up to whole chunks).
  const size_t chunks = code.engine().num_chunks();
  const size_t file_bytes = (config.file_bytes + chunks - 1) / chunks * chunks;
  std::vector<Buffer> originals;
  for (size_t i = 0; i < config.num_files; ++i) {
    originals.push_back(random_buffer(file_bytes, rng));
    fs.write(originals.back());
  }
  const size_t block_bytes = fs.block_bytes(0);
  core::InputFormat fmt(code, block_bytes);

  ScenarioResult result;
  const mr::WorkloadProfile profiles[3] = {
      mr::wordcount_profile(), mr::terasort_profile(), mr::grep_profile()};

  std::vector<size_t> dead;  // dead servers (block-holding only)
  for (size_t j = 0; j < config.num_jobs; ++j) {
    // Maybe a server dies.
    if (rng.next_double() < config.failure_prob_per_job) {
      std::vector<size_t> candidates;
      for (size_t s = 0; s < code.num_blocks(); ++s)
        if (std::find(dead.begin(), dead.end(), s) == dead.end())
          candidates.push_back(s);
      if (!candidates.empty()) {
        const size_t victim =
            candidates[rng.next_below(candidates.size())];
        fs.fail_server(victim);
        dead.push_back(victim);
        ++result.failures_injected;
        if (!fs.all_recoverable()) ++result.data_loss_events;
      }
    }

    // Run the job (degraded when data-holding servers are down). One job
    // reads every file's layout once — files share the placement, so one
    // InputFormat stands for all of them, scaled by the file count.
    mr::SimulatedJob job(cluster, profiles[j % 3], config.job_config);
    bool degraded = false;
    for (size_t s : dead) degraded |= fmt.original_bytes_in_block(s) > 0;
    mr::JobResult jr;
    if (degraded) {
      // Helper count of the worst dead block prices reconstruction.
      size_t helper_blocks = 0;
      for (size_t s : dead)
        helper_blocks =
            std::max(helper_blocks, code.repair_helpers(s).size());
      jr = job.run_degraded(fmt, {dead, helper_blocks, block_bytes});
      ++result.degraded_jobs;
    } else {
      jr = job.run(fmt);
    }
    result.total_job_seconds +=
        jr.job_end * static_cast<double>(config.num_files);
    ++result.jobs_run;

    // Maybe operations rebuild everything before the next job.
    if (!dead.empty() && rng.next_double() < config.recover_prob_per_job) {
      for (size_t s : dead) fs.revive_server(s);
      dead.clear();
      store::RecoveryManager mgr(simulation, fs);
      const auto report = mgr.recover_all();
      result.blocks_repaired += report.blocks_repaired;
      result.repair_disk_bytes += report.disk_bytes_read;
      result.total_repair_seconds += report.makespan;
    }
  }

  // Final heal + integrity audit.
  for (size_t s : dead) fs.revive_server(s);
  if (!dead.empty()) {
    store::RecoveryManager mgr(simulation, fs);
    const auto report = mgr.recover_all();
    result.blocks_repaired += report.blocks_repaired;
    result.repair_disk_bytes += report.disk_bytes_read;
    result.total_repair_seconds += report.makespan;
  }
  result.all_files_intact = true;
  for (size_t i = 0; i < config.num_files; ++i) {
    const auto back = fs.read(i);
    result.all_files_intact &= back.has_value() && *back == originals[i];
  }
  return result;
}

}  // namespace galloper::scenario
