// Trace-driven "day in the life" scenario: a stream of analytics jobs runs
// over erasure-coded files while servers fail and recover underneath. This
// is the end-to-end harness where all of a code's properties meet:
//   * data spread  → healthy job speed (map parallelism),
//   * repair locality → recovery I/O/makespan and degraded-job penalty,
//   * failure tolerance → whether data survive at all.
//
// Everything is deterministic in the seed; the same trace of failures hits
// every code compared.
#pragma once

#include <cstdint>

#include "codes/erasure_code.h"
#include "mr/framework.h"
#include "mr/simjob.h"

namespace galloper::scenario {

struct ScenarioConfig {
  size_t cluster_servers = 30;
  size_t num_files = 6;
  // Target file size; rounded UP per code to a whole number of chunks so
  // different codes see (nearly) the same bytes — comparisons stay fair.
  size_t file_bytes = 1 << 20;
  size_t num_jobs = 12;
  double failure_prob_per_job = 0.4;  // P(a server dies before a job)
  double recover_prob_per_job = 0.8;  // P(ops rebuilds before next job)
  uint64_t seed = 1;
  mr::JobConfig job_config;
};

struct ScenarioResult {
  double total_job_seconds = 0;     // Σ simulated job completion times
  double total_repair_seconds = 0;  // Σ recovery makespans
  size_t jobs_run = 0;
  size_t degraded_jobs = 0;         // jobs that ran with dead data servers
  size_t failures_injected = 0;
  size_t blocks_repaired = 0;
  size_t repair_disk_bytes = 0;
  size_t data_loss_events = 0;      // files that became undecodable
  bool all_files_intact = false;    // bit-exact check at the end
};

// Runs the scenario for `code`. Jobs alternate wordcount / terasort
// profiles. Returns aggregate metrics.
ScenarioResult run_scenario(const codes::ErasureCode& code,
                            const ScenarioConfig& config);

}  // namespace galloper::scenario
