// A miniature MapReduce framework (the Hadoop stand-in, Sec. VI/VII).
//
// Two execution paths share the same job definition:
//  * LocalRunner (this file): really executes map and reduce functions over
//    the bytes of encoded blocks, reading ONLY original-data regions via
//    core::InputFormat — the correctness path proving that jobs over
//    Galloper-coded data produce byte-identical results to jobs over the
//    plain file.
//  * SimulatedJob (simjob.h): replays the same split structure on the
//    discrete-event cluster to measure completion times (Figs. 9/10).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/input_format.h"
#include "util/bytes.h"

namespace galloper::mr {

struct KeyValue {
  std::string key;
  std::string value;

  bool operator==(const KeyValue&) const = default;
  bool operator<(const KeyValue& o) const {
    return key != o.key ? key < o.key : value < o.value;
  }
};

// User-provided map function: consumes one split's bytes, emits pairs.
class Mapper {
 public:
  virtual ~Mapper() = default;
  virtual void map(ConstByteSpan input,
                   std::vector<KeyValue>& out) const = 0;
};

// User-provided reduce function: consumes one key's values.
class Reducer {
 public:
  virtual ~Reducer() = default;
  virtual void reduce(const std::string& key,
                      const std::vector<std::string>& values,
                      std::vector<KeyValue>& out) const = 0;
};

// Workload profile for the simulated path: how expensive map/reduce are and
// how much intermediate data the shuffle moves. Derived from the real
// functions' character (wordcount: map-heavy, tiny shuffle; terasort:
// pass-through shuffle).
struct WorkloadProfile {
  std::string name;
  double map_bytes_per_cpu_unit = 50e6;  // map throughput per CPU unit
  double shuffle_ratio = 1.0;            // map-output bytes / input bytes
  double reduce_bytes_per_cpu_unit = 80e6;
};

// The shuffle+reduce shared by every runner: groups `intermediate` by key
// through a hash map (no global sort — wordcount-style jobs with heavy key
// repetition pay O(n) grouping plus per-key sorts instead of O(n log n)
// over the whole map output), sorts each key's value list, reduces keys in
// ascending order, and returns the output sorted by (key, value). The
// per-key value sort makes this bit-identical to the historical
// sort-the-whole-intermediate form for any Reducer.
std::vector<KeyValue> shuffle_reduce(const Reducer& reducer,
                                     std::vector<KeyValue> intermediate);

// Deterministic single-process execution over encoded blocks.
class LocalRunner {
 public:
  LocalRunner(const Mapper& mapper, const Reducer& reducer)
      : mapper_(mapper), reducer_(reducer) {}

  // Runs over the original-data regions of `blocks` described by `fmt` —
  // one map task per split, reading parity bytes never. Results are sorted
  // by (key, value) for determinism.
  std::vector<KeyValue> run(const core::InputFormat& fmt,
                            const std::vector<ConstByteSpan>& blocks) const;

  // Reference path: runs over the plain file as a single split.
  std::vector<KeyValue> run_plain(ConstByteSpan file) const;

 private:
  std::vector<KeyValue> reduce_all(std::vector<KeyValue> intermediate) const;

  const Mapper& mapper_;
  const Reducer& reducer_;
};

}  // namespace galloper::mr
