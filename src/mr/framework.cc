#include "mr/framework.h"

#include <algorithm>

#include "util/check.h"

namespace galloper::mr {

std::vector<KeyValue> LocalRunner::reduce_all(
    std::vector<KeyValue> intermediate) const {
  // Group by key (the shuffle), then reduce each group.
  std::sort(intermediate.begin(), intermediate.end());
  std::vector<KeyValue> out;
  size_t i = 0;
  while (i < intermediate.size()) {
    size_t j = i;
    std::vector<std::string> values;
    while (j < intermediate.size() &&
           intermediate[j].key == intermediate[i].key)
      values.push_back(intermediate[j++].value);
    reducer_.reduce(intermediate[i].key, values, out);
    i = j;
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<KeyValue> LocalRunner::run(
    const core::InputFormat& fmt,
    const std::vector<ConstByteSpan>& blocks) const {
  GALLOPER_CHECK(blocks.size() >= 1);
  std::vector<KeyValue> intermediate;
  // One map task per split; a task sees only its split's original bytes.
  for (const auto& split : fmt.splits()) {
    GALLOPER_CHECK(split.block < blocks.size());
    GALLOPER_CHECK(split.block_offset + split.length <=
                   blocks[split.block].size());
    mapper_.map(
        blocks[split.block].subspan(split.block_offset, split.length),
        intermediate);
  }
  return reduce_all(std::move(intermediate));
}

std::vector<KeyValue> LocalRunner::run_plain(ConstByteSpan file) const {
  std::vector<KeyValue> intermediate;
  mapper_.map(file, intermediate);
  return reduce_all(std::move(intermediate));
}

}  // namespace galloper::mr
