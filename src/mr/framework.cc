#include "mr/framework.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <utility>

#include "util/check.h"

namespace galloper::mr {

std::vector<KeyValue> shuffle_reduce(const Reducer& reducer,
                                     std::vector<KeyValue> intermediate) {
  // Group by key without sorting the whole intermediate. Keys and values
  // are moved out of the pairs — the intermediate is consumed.
  std::unordered_map<std::string, std::vector<std::string>> groups;
  groups.reserve(intermediate.size());
  for (auto& kv : intermediate)
    groups[std::move(kv.key)].push_back(std::move(kv.value));
  intermediate.clear();

  // Reduce in ascending key order with each key's values sorted — exactly
  // what a (key, value) sort of the whole intermediate would have fed the
  // reducer, so results are bit-identical to the historical form.
  std::vector<const std::string*> keys;
  keys.reserve(groups.size());
  for (const auto& [key, values] : groups) keys.push_back(&key);
  std::sort(keys.begin(), keys.end(),
            [](const std::string* a, const std::string* b) { return *a < *b; });

  std::vector<KeyValue> out;
  for (const std::string* key : keys) {
    auto& values = groups[*key];
    std::sort(values.begin(), values.end());
    reducer.reduce(*key, values, out);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<KeyValue> LocalRunner::reduce_all(
    std::vector<KeyValue> intermediate) const {
  return shuffle_reduce(reducer_, std::move(intermediate));
}

std::vector<KeyValue> LocalRunner::run(
    const core::InputFormat& fmt,
    const std::vector<ConstByteSpan>& blocks) const {
  GALLOPER_CHECK(blocks.size() >= 1);
  std::vector<KeyValue> intermediate;
  // One map task per split; a task sees only its split's original bytes.
  for (const auto& split : fmt.splits()) {
    GALLOPER_CHECK(split.block < blocks.size());
    GALLOPER_CHECK(split.block_offset + split.length <=
                   blocks[split.block].size());
    mapper_.map(
        blocks[split.block].subspan(split.block_offset, split.length),
        intermediate);
  }
  return reduce_all(std::move(intermediate));
}

std::vector<KeyValue> LocalRunner::run_plain(ConstByteSpan file) const {
  std::vector<KeyValue> intermediate;
  mapper_.map(file, intermediate);
  return reduce_all(std::move(intermediate));
}

}  // namespace galloper::mr
