// Wordcount — one of the paper's two representative Hadoop benchmarks
// (Sec. VII-B). Real map/reduce functions plus a synthetic text generator.
//
// Text is generated as fixed-size records (kRecordBytes) of space-separated
// words drawn from a Zipf-like distribution, so any split boundary that is
// a multiple of the record size never cuts a word (the same trick
// fixed-record Hadoop inputs use).
#pragma once

#include "mr/framework.h"
#include "util/rng.h"

namespace galloper::mr {

inline constexpr size_t kWordCountRecordBytes = 50;

// Generates `bytes` of text (must be a multiple of kWordCountRecordBytes).
Buffer generate_text(size_t bytes, Rng& rng);

// map: (text) → (word, "1") per word occurrence.
class WordCountMapper final : public Mapper {
 public:
  void map(ConstByteSpan input, std::vector<KeyValue>& out) const override;
};

// reduce: (word, ["1"...]) → (word, count).
class WordCountReducer final : public Reducer {
 public:
  void reduce(const std::string& key, const std::vector<std::string>& values,
              std::vector<KeyValue>& out) const override;
};

// Timing profile for the simulated path: map-heavy (tokenizing), small
// shuffle (per-mapper partial counts), cheap reduce.
WorkloadProfile wordcount_profile();

}  // namespace galloper::mr
