#include "mr/wordcount.h"

#include <array>

#include "util/check.h"

namespace galloper::mr {

namespace {

// A small vocabulary with Zipf-ish frequencies (rank r picked with
// probability ∝ 1/(r+1)).
constexpr std::array<const char*, 24> kVocabulary = {
    "the",  "of",    "and",   "to",      "data",  "block",  "code",
    "server", "disk", "node",  "read",   "write", "parity", "repair",
    "store",  "job",  "task",  "map",    "file",  "byte",   "rack",
    "fail",   "sync", "cache"};

}  // namespace

Buffer generate_text(size_t bytes, Rng& rng) {
  GALLOPER_CHECK_MSG(bytes % kWordCountRecordBytes == 0,
                     "text size must be a multiple of the record size");
  // Cumulative Zipf weights.
  std::array<double, kVocabulary.size()> cum{};
  double total = 0;
  for (size_t r = 0; r < kVocabulary.size(); ++r) {
    total += 1.0 / static_cast<double>(r + 1);
    cum[r] = total;
  }

  Buffer out;
  out.reserve(bytes);
  std::string record;
  while (out.size() < bytes) {
    record.clear();
    // Fill one record with words, then pad with spaces.
    for (;;) {
      const double u = rng.next_double() * total;
      size_t r = 0;
      while (cum[r] < u) ++r;
      const std::string_view word = kVocabulary[r];
      if (record.size() + word.size() + 1 > kWordCountRecordBytes) break;
      record.append(word);
      record.push_back(' ');
    }
    record.resize(kWordCountRecordBytes, ' ');
    out.insert(out.end(), record.begin(), record.end());
  }
  return out;
}

void WordCountMapper::map(ConstByteSpan input,
                          std::vector<KeyValue>& out) const {
  std::string word;
  for (uint8_t b : input) {
    const char c = static_cast<char>(b);
    if (c == ' ' || c == '\n' || c == '\t') {
      if (!word.empty()) {
        out.push_back({word, "1"});
        word.clear();
      }
    } else {
      word.push_back(c);
    }
  }
  if (!word.empty()) out.push_back({word, "1"});
}

void WordCountReducer::reduce(const std::string& key,
                              const std::vector<std::string>& values,
                              std::vector<KeyValue>& out) const {
  uint64_t count = 0;
  for (const auto& v : values) count += std::stoull(v);
  out.push_back({key, std::to_string(count)});
}

WorkloadProfile wordcount_profile() {
  WorkloadProfile p;
  p.name = "wordcount";
  p.map_bytes_per_cpu_unit = 25e6;    // tokenizing is CPU-bound
  p.shuffle_ratio = 0.05;             // combiner-style partial counts
  p.reduce_bytes_per_cpu_unit = 50e6;
  return p;
}

}  // namespace galloper::mr
