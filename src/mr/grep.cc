#include "mr/grep.h"

#include <algorithm>

#include "mr/wordcount.h"
#include "util/check.h"

namespace galloper::mr {

GrepMapper::GrepMapper(std::string needle) : needle_(std::move(needle)) {
  GALLOPER_CHECK_MSG(!needle_.empty(), "empty grep needle");
}

void GrepMapper::map(ConstByteSpan input, std::vector<KeyValue>& out) const {
  // Emits one ("match", "1") per occurrence. (Counts, not offsets: split
  // execution sees split-relative positions, so only counts are
  // layout-independent.)
  const char* begin = reinterpret_cast<const char*>(input.data());
  const char* end = begin + input.size();
  for (const char* it = begin;;) {
    it = std::search(it, end, needle_.begin(), needle_.end());
    if (it == end) break;
    out.push_back({"match", "1"});
    ++it;  // overlapping matches count
  }
}

void GrepReducer::reduce(const std::string& key,
                         const std::vector<std::string>& values,
                         std::vector<KeyValue>& out) const {
  out.push_back({key, std::to_string(values.size())});
}

size_t count_occurrences(ConstByteSpan haystack, std::string_view needle) {
  GALLOPER_CHECK(!needle.empty());
  const char* begin = reinterpret_cast<const char*>(haystack.data());
  const char* end = begin + haystack.size();
  size_t count = 0;
  for (const char* it = begin;;) {
    it = std::search(it, end, needle.begin(), needle.end());
    if (it == end) break;
    ++count;
    ++it;
  }
  return count;
}

Buffer generate_grep_corpus(size_t bytes, size_t align,
                            const std::string& needle, Rng& rng) {
  GALLOPER_CHECK(!needle.empty());
  GALLOPER_CHECK_MSG(align >= needle.size(),
                     "alignment smaller than the needle");
  Buffer corpus = generate_text(bytes, rng);
  // Plant at a stride coprime-ish to typical aligns so occurrences spread
  // over every block.
  for (size_t i = 10; i + needle.size() < corpus.size(); i += 977)
    std::copy(needle.begin(), needle.end(),
              corpus.begin() + static_cast<ptrdiff_t>(i));
  // Re-blank any occurrence straddling an align boundary, so no split cut
  // on such a boundary can hide or reveal a match.
  for (size_t edge = align; edge < corpus.size(); edge += align) {
    for (size_t s = edge - needle.size() + 1; s < edge; ++s)
      if (s + needle.size() <= corpus.size() &&
          std::equal(needle.begin(), needle.end(),
                     corpus.begin() + static_cast<ptrdiff_t>(s)))
        corpus[s] = ' ';
  }
  return corpus;
}

WorkloadProfile grep_profile() {
  WorkloadProfile p;
  p.name = "grep";
  p.map_bytes_per_cpu_unit = 150e6;  // memcmp-speed scan: disk-bound
  p.shuffle_ratio = 0.001;           // only the matches move
  p.reduce_bytes_per_cpu_unit = 100e6;
  return p;
}

}  // namespace galloper::mr
