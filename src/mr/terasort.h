// Terasort — the paper's other representative Hadoop benchmark.
//
// Input is a sequence of 100-byte records: a 10-byte random key followed by
// a 90-byte payload (the TeraGen format). The job sorts records by key;
// map emits (hex(key), record), the framework's shuffle sorts, reduce is
// the identity. Output order = sorted record order.
#pragma once

#include "mr/framework.h"
#include "util/rng.h"

namespace galloper::mr {

inline constexpr size_t kTeraRecordBytes = 100;
inline constexpr size_t kTeraKeyBytes = 10;

// Generates `bytes` of records (must be a multiple of kTeraRecordBytes).
Buffer generate_records(size_t bytes, Rng& rng);

class TeraSortMapper final : public Mapper {
 public:
  void map(ConstByteSpan input, std::vector<KeyValue>& out) const override;
};

// Identity reduce: one output pair per record, already key-sorted by the
// framework.
class TeraSortReducer final : public Reducer {
 public:
  void reduce(const std::string& key, const std::vector<std::string>& values,
              std::vector<KeyValue>& out) const override;
};

// Verifies that a terasort output is sorted and contains `records` records.
bool terasort_output_valid(const std::vector<KeyValue>& output,
                           size_t records);

// Timing profile: cheap map, full-size shuffle, sort-heavy reduce.
WorkloadProfile terasort_profile();

}  // namespace galloper::mr
