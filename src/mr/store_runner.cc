#include "mr/store_runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <functional>
#include <iterator>
#include <string>
#include <utility>

#include "core/input_format.h"
#include "rt/pool.h"
#include "util/check.h"

namespace galloper::mr {

namespace {

struct MrCounters {
  std::atomic<uint64_t> jobs{0};
  std::atomic<uint64_t> splits_mapped{0};
  std::atomic<uint64_t> degraded_splits{0};
  std::atomic<uint64_t> bytes_original{0};
  std::atomic<uint64_t> bytes_decoded{0};
  std::atomic<uint64_t> map_ns{0};
  std::atomic<uint64_t> shuffle_ns{0};
  std::atomic<uint64_t> reduce_ns{0};
};

MrCounters& counters() {
  static MrCounters c;
  return c;
}

uint64_t now_ns() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

MrStats mr_stats() {
  const MrCounters& c = counters();
  MrStats s;
  s.jobs = c.jobs.load(std::memory_order_relaxed);
  s.splits_mapped = c.splits_mapped.load(std::memory_order_relaxed);
  s.degraded_splits = c.degraded_splits.load(std::memory_order_relaxed);
  s.bytes_original = c.bytes_original.load(std::memory_order_relaxed);
  s.bytes_decoded = c.bytes_decoded.load(std::memory_order_relaxed);
  s.map_ns = c.map_ns.load(std::memory_order_relaxed);
  s.shuffle_ns = c.shuffle_ns.load(std::memory_order_relaxed);
  s.reduce_ns = c.reduce_ns.load(std::memory_order_relaxed);
  return s;
}

void reset_mr_stats() {
  MrCounters& c = counters();
  c.jobs.store(0, std::memory_order_relaxed);
  c.splits_mapped.store(0, std::memory_order_relaxed);
  c.degraded_splits.store(0, std::memory_order_relaxed);
  c.bytes_original.store(0, std::memory_order_relaxed);
  c.bytes_decoded.store(0, std::memory_order_relaxed);
  c.map_ns.store(0, std::memory_order_relaxed);
  c.shuffle_ns.store(0, std::memory_order_relaxed);
  c.reduce_ns.store(0, std::memory_order_relaxed);
}

StoreJobReport StoreRunner::run_report(store::FileStore& fs,
                                       store::FileId id) const {
  const core::InputFormat fmt(fs.code(), fs.block_bytes(id));
  const std::vector<core::InputFormat::Split> splits =
      opt_.max_split_bytes > 0 ? fmt.splits(opt_.max_split_bytes)
                               : fmt.splits();
  const size_t threads =
      opt_.threads > 0 ? opt_.threads : rt::ThreadPool::default_threads();
  const size_t reducers =
      opt_.reduce_tasks > 0 ? opt_.reduce_tasks : threads;
  client::AdmissionControl& gate =
      opt_.admission ? *opt_.admission : client::AdmissionControl::global();
  rt::ThreadPool& pool = rt::ThreadPool::global();

  StoreJobReport report;
  report.splits = splits.size();

  // ---- Map: one task per split, scheduled over the work-stealing pool.
  // Each task reads ONLY its split's original bytes (admission-gated, CRC-
  // verified, cache-filling); a nullopt means the block is lost or was
  // quarantined, and the task falls back to a degraded ranged read of the
  // SAME file range through the pipelined client (which takes its own
  // admission ticket — ours is released first). Map output is hash-
  // partitioned per task as it is emitted, so the shuffle below never
  // touches a global intermediate.
  std::vector<std::vector<std::vector<KeyValue>>> parts(
      splits.size(), std::vector<std::vector<KeyValue>>(reducers));
  std::atomic<size_t> degraded{0};
  std::atomic<uint64_t> clean_bytes{0};
  std::atomic<uint64_t> decoded_bytes{0};
  client::StripedReader fallback(fs);
  const uint64_t map_start = now_ns();
  rt::parallel_for(pool, splits.size(), threads, [&](size_t si) {
    const core::InputFormat::Split& s = splits[si];
    std::optional<Buffer> data;
    {
      const client::AdmissionControl::Ticket ticket = gate.admit();
      data = fs.read_original_split(id, s.block, s.block_offset, s.length);
    }
    if (data.has_value()) {
      clean_bytes.fetch_add(s.length, std::memory_order_relaxed);
    } else {
      data = fallback.read_range(id, s.file_offset, s.length);
      GALLOPER_CHECK_MSG(data.has_value(),
                         "split of block " << s.block << " unrecoverable");
      degraded.fetch_add(1, std::memory_order_relaxed);
      decoded_bytes.fetch_add(s.length, std::memory_order_relaxed);
    }
    std::vector<KeyValue> emitted;
    mapper_.map(ConstByteSpan(*data), emitted);
    std::vector<std::vector<KeyValue>>& mine = parts[si];
    for (KeyValue& kv : emitted)
      mine[std::hash<std::string>{}(kv.key) % reducers].push_back(
          std::move(kv));
  });
  report.map_ns = now_ns() - map_start;
  report.degraded_splits = degraded.load(std::memory_order_relaxed);
  report.bytes_original = clean_bytes.load(std::memory_order_relaxed);
  report.bytes_decoded = decoded_bytes.load(std::memory_order_relaxed);

  // ---- Shuffle: one task per partition gathers its slice of every map
  // task's output, in ascending split order (a fixed order keeps value
  // arrival deterministic; shuffle_reduce sorts per key anyway).
  std::vector<std::vector<KeyValue>> partitions(reducers);
  const uint64_t shuffle_start = now_ns();
  rt::parallel_for(pool, reducers, threads, [&](size_t r) {
    size_t total = 0;
    for (size_t si = 0; si < splits.size(); ++si) total += parts[si][r].size();
    std::vector<KeyValue>& mine = partitions[r];
    mine.reserve(total);
    for (size_t si = 0; si < splits.size(); ++si) {
      std::vector<KeyValue>& from = parts[si][r];
      std::move(from.begin(), from.end(), std::back_inserter(mine));
      from.clear();
      from.shrink_to_fit();
    }
  });
  report.shuffle_ns = now_ns() - shuffle_start;

  // ---- Reduce: each partition runs the shared group-by shuffle_reduce,
  // yielding a (key, value)-sorted run per reducer; keys are disjoint
  // across partitions (hash-partitioned), so merging the runs gives the
  // same globally sorted output run_plain produces.
  std::vector<std::vector<KeyValue>> reduced(reducers);
  const uint64_t reduce_start = now_ns();
  rt::parallel_for(pool, reducers, threads, [&](size_t r) {
    reduced[r] = shuffle_reduce(reducer_, std::move(partitions[r]));
  });
  // Binary merge tree over the sorted per-reducer runs: O(n log R).
  for (size_t step = 1; step < reducers; step *= 2) {
    for (size_t i = 0; i + step < reducers; i += 2 * step) {
      std::vector<KeyValue> merged;
      merged.reserve(reduced[i].size() + reduced[i + step].size());
      std::merge(std::make_move_iterator(reduced[i].begin()),
                 std::make_move_iterator(reduced[i].end()),
                 std::make_move_iterator(reduced[i + step].begin()),
                 std::make_move_iterator(reduced[i + step].end()),
                 std::back_inserter(merged));
      reduced[i] = std::move(merged);
      reduced[i + step].clear();
    }
  }
  report.output = std::move(reduced[0]);
  report.reduce_ns = now_ns() - reduce_start;

  MrCounters& c = counters();
  c.jobs.fetch_add(1, std::memory_order_relaxed);
  c.splits_mapped.fetch_add(report.splits, std::memory_order_relaxed);
  c.degraded_splits.fetch_add(report.degraded_splits,
                              std::memory_order_relaxed);
  c.bytes_original.fetch_add(report.bytes_original, std::memory_order_relaxed);
  c.bytes_decoded.fetch_add(report.bytes_decoded, std::memory_order_relaxed);
  c.map_ns.fetch_add(report.map_ns, std::memory_order_relaxed);
  c.shuffle_ns.fetch_add(report.shuffle_ns, std::memory_order_relaxed);
  c.reduce_ns.fetch_add(report.reduce_ns, std::memory_order_relaxed);
  return report;
}

std::vector<KeyValue> StoreRunner::run(store::FileStore& fs,
                                       store::FileId id) const {
  return run_report(fs, id).output;
}

}  // namespace galloper::mr
