#include "mr/terasort.h"

#include "util/check.h"

namespace galloper::mr {

namespace {

std::string to_hex(ConstByteSpan bytes) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (uint8_t b : bytes) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xf]);
  }
  return out;
}

}  // namespace

Buffer generate_records(size_t bytes, Rng& rng) {
  GALLOPER_CHECK_MSG(bytes % kTeraRecordBytes == 0,
                     "input must be whole 100-byte records");
  Buffer out(bytes);
  rng.fill_bytes(out);
  // Make payload bytes printable-ish (irrelevant to the sort, but keeps
  // hexdumps in the examples readable).
  for (size_t i = 0; i < bytes; i += kTeraRecordBytes)
    for (size_t j = kTeraKeyBytes; j < kTeraRecordBytes; ++j)
      out[i + j] = static_cast<uint8_t>('a' + out[i + j] % 26);
  return out;
}

void TeraSortMapper::map(ConstByteSpan input,
                         std::vector<KeyValue>& out) const {
  GALLOPER_CHECK_MSG(input.size() % kTeraRecordBytes == 0,
                     "map input must align to whole records; got "
                         << input.size() << " bytes");
  for (size_t i = 0; i < input.size(); i += kTeraRecordBytes) {
    const auto record = input.subspan(i, kTeraRecordBytes);
    out.push_back(
        {to_hex(record.first(kTeraKeyBytes)),
         std::string(reinterpret_cast<const char*>(record.data()),
                     kTeraRecordBytes)});
  }
}

void TeraSortReducer::reduce(const std::string& key,
                             const std::vector<std::string>& values,
                             std::vector<KeyValue>& out) const {
  for (const auto& v : values) out.push_back({key, v});
}

bool terasort_output_valid(const std::vector<KeyValue>& output,
                           size_t records) {
  if (output.size() != records) return false;
  for (size_t i = 1; i < output.size(); ++i)
    if (output[i].key < output[i - 1].key) return false;
  return true;
}

WorkloadProfile terasort_profile() {
  WorkloadProfile p;
  p.name = "terasort";
  p.map_bytes_per_cpu_unit = 80e6;   // pass-through map
  p.shuffle_ratio = 1.0;             // every byte is shuffled
  p.reduce_bytes_per_cpu_unit = 30e6;  // the sort lives here
  return p;
}

}  // namespace galloper::mr
