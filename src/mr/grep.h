// Grep — a third representative workload: scan-heavy map (substring
// search), near-zero shuffle. The I/O-bound end of the spectrum, where
// Galloper's extra parallel readers matter most.
#pragma once

#include "mr/framework.h"
#include "util/rng.h"

namespace galloper::mr {

// Scans for a fixed needle; emits one ("match", "1") per occurrence.
class GrepMapper final : public Mapper {
 public:
  explicit GrepMapper(std::string needle);
  void map(ConstByteSpan input, std::vector<KeyValue>& out) const override;

 private:
  std::string needle_;
};

// Counts matches: ("match", ["1"...]) → ("match", count).
class GrepReducer final : public Reducer {
 public:
  void reduce(const std::string& key, const std::vector<std::string>& values,
              std::vector<KeyValue>& out) const override;
};

// Counts needle occurrences in a plain buffer (the reference oracle).
size_t count_occurrences(ConstByteSpan haystack, std::string_view needle);

// Deterministic grep corpus for split-identity runs: wordcount-style text
// (`bytes` must be a multiple of kWordCountRecordBytes) with `needle`
// planted throughout, then re-blanked wherever an occurrence would
// straddle a multiple-of-`align` boundary. A split structure whose
// boundaries all fall on `align` multiples (e.g. chunk-aligned InputFormat
// splits with align = chunk_bytes) therefore sees exactly the occurrences
// a plain scan of the whole corpus sees.
Buffer generate_grep_corpus(size_t bytes, size_t align,
                            const std::string& needle, Rng& rng);

// Timing profile: disk-rate map scan, ~no shuffle.
WorkloadProfile grep_profile();

}  // namespace galloper::mr
