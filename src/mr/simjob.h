// Simulated MapReduce job execution on a Cluster (the Figs. 9/10 harness).
//
// Model (a deterministic slot scheduler, the standard Hadoop abstraction):
//  * map tasks are data-local: one task per InputFormat split (optionally
//    subdivided), pinned to the server storing the split — exactly the
//    paper's premise that map tasks run where original data are;
//  * each server runs up to `map_slots` tasks concurrently; queued tasks
//    wait for a free slot (FIFO);
//  * a map task takes overhead + bytes/disk_bw + bytes/(cpu · map_rate);
//  * the shuffle moves map-output bytes (input × shuffle_ratio) to reduce
//    tasks, which start after the map phase (no overlap — conservative);
//  * reduce tasks are placed round-robin over all servers and take
//    overhead + bytes/nic_bw + bytes/(cpu · reduce_rate).
#pragma once

#include <vector>

#include "core/input_format.h"
#include "mr/framework.h"
#include "sim/cluster.h"

namespace galloper::mr {

struct JobConfig {
  size_t reduce_tasks = 8;
  size_t map_slots_per_server = 2;
  size_t reduce_slots_per_server = 2;
  double task_overhead_s = 1.0;      // container startup / scheduling
  size_t max_split_bytes = 128ull << 20;  // HDFS-style split cap

  // Hadoop-style speculative execution: once a map task has run for the
  // median task duration and is predicted to finish later than
  // speculation_threshold × median, a backup copy launches on the
  // earliest-available other server; the task finishes at whichever copy
  // completes first. The scheduling-side answer to stragglers that the
  // paper's weight adaptation addresses at the data layout (related work
  // [35]); ablation_speculation compares the two.
  bool speculative_execution = false;
  double speculation_threshold = 1.5;
};

struct TaskStat {
  size_t server = 0;
  sim::Time start = 0;
  sim::Time finish = 0;
  size_t bytes = 0;

  double duration() const { return finish - start; }
};

struct JobResult {
  std::vector<TaskStat> map_tasks;
  std::vector<TaskStat> reduce_tasks;
  sim::Time map_phase_end = 0;
  sim::Time job_end = 0;
  size_t speculative_copies = 0;  // backup map tasks launched
  size_t speculative_wins = 0;    // backups that beat the original

  double avg_map_time() const;
  double avg_reduce_time() const;
  // Average map-task duration restricted to the given servers (Fig. 10's
  // per-server-class bars).
  double avg_map_time_on(const std::vector<size_t>& servers) const;
  size_t servers_running_maps() const;  // Fig. 2's parallelism measure
};

// Degraded execution: servers in `dead` are down, so their splits cannot
// run data-locally. Each such split becomes a degraded task on the first
// alive helper server, which must first reconstruct the lost block by
// reading `helper_blocks` whole blocks of `block_bytes` each (disk + NIC)
// before mapping — the locality of the code directly prices this.
struct DegradedSpec {
  std::vector<size_t> dead;
  size_t helper_blocks = 0;  // blocks read to reconstruct one lost block
  size_t block_bytes = 0;
};

class SimulatedJob {
 public:
  SimulatedJob(const sim::Cluster& cluster, const WorkloadProfile& profile,
               const JobConfig& config);

  // Runs the job over the original-data layout described by `fmt`.
  JobResult run(const core::InputFormat& fmt) const;

  // Runs with some servers dead (splits on them execute degraded).
  JobResult run_degraded(const core::InputFormat& fmt,
                         const DegradedSpec& degraded) const;

 private:
  const sim::Cluster& cluster_;
  WorkloadProfile profile_;
  JobConfig config_;
};

}  // namespace galloper::mr
