// StoreRunner: the store-backed parallel MapReduce runtime — the paper's
// headline measured live (Sec. VI/VII, Figs. 8–10).
//
// LocalRunner proves correctness single-threaded over in-memory block
// spans; StoreRunner runs the same job definition as a real parallel data
// path over FileStore:
//  * core::InputFormat splits (capped at max_split_bytes, so parallelism
//    is not quantized to one task per block) become map tasks scheduled
//    over the rt:: work-stealing pool — on a Galloper layout that is
//    original data on ALL k+l+g servers, vs only the k data servers of
//    Pyramid/RS;
//  * each map task streams ONLY its split's original-data byte range via
//    FileStore::read_original_split — verified (CRC), cache-integrated,
//    admission-gated, and never decoding or touching parity bytes on the
//    clean path;
//  * a split whose block is lost / quarantined mid-job falls back to a
//    degraded ranged read of the same bytes through the pipelined client
//    (client::StripedReader → plan-cached decode of just the missing
//    chunks), so jobs complete bit-identically to LocalRunner::run_plain
//    under fault injection;
//  * map output is hash-partitioned into reduce_tasks partitions as it is
//    emitted; shuffle and reduce then run one task per partition (each the
//    shared shuffle_reduce group-by), and the sorted per-reducer outputs
//    are merged — replacing LocalRunner's global sort of the whole
//    intermediate with per-partition work that scales with threads.
#pragma once

#include <cstdint>
#include <vector>

#include "client/striped.h"
#include "mr/framework.h"
#include "store/file_store.h"

namespace galloper::mr {

// Process-wide counters across every StoreRunner job, snapshotted by the
// CLI's --stats "mr:" section (same pattern as async-io / block-cache
// stats).
struct MrStats {
  uint64_t jobs = 0;
  uint64_t splits_mapped = 0;    // map tasks executed
  uint64_t degraded_splits = 0;  // splits served by degraded fallback
  uint64_t bytes_original = 0;   // split bytes read clean (no decode)
  uint64_t bytes_decoded = 0;    // split bytes served via degraded reads
  uint64_t map_ns = 0;           // summed per-job phase walls
  uint64_t shuffle_ns = 0;
  uint64_t reduce_ns = 0;
};
MrStats mr_stats();
void reset_mr_stats();

struct StoreRunnerOptions {
  // Map/shuffle/reduce parallelism (the job's "slots"). 0 →
  // rt::ThreadPool::default_threads() (GALLOPER_THREADS).
  size_t threads = 0;
  // Split-size cap handed to InputFormat::splits(max). 0 → one map task
  // per maximal original-data run.
  size_t max_split_bytes = 0;
  // Hash partitions = shuffle/reduce tasks. 0 → threads.
  size_t reduce_tasks = 0;
  // Gate for the per-split store reads. null → AdmissionControl::global().
  client::AdmissionControl* admission = nullptr;
};

// Per-job result + instrumentation (the same numbers MrStats accumulates).
struct StoreJobReport {
  std::vector<KeyValue> output;
  size_t splits = 0;
  size_t degraded_splits = 0;
  uint64_t bytes_original = 0;
  uint64_t bytes_decoded = 0;
  uint64_t map_ns = 0;
  uint64_t shuffle_ns = 0;
  uint64_t reduce_ns = 0;
};

class StoreRunner {
 public:
  StoreRunner(const Mapper& mapper, const Reducer& reducer,
              StoreRunnerOptions opt = {})
      : mapper_(mapper), reducer_(reducer), opt_(opt) {}

  // Runs the job over file `id` of `fs`. Output is sorted by (key, value)
  // — bit-identical to LocalRunner::run_plain over the original file.
  // Throws CheckError if a split is unrecoverable even degraded.
  std::vector<KeyValue> run(store::FileStore& fs, store::FileId id) const;
  StoreJobReport run_report(store::FileStore& fs, store::FileId id) const;

 private:
  const Mapper& mapper_;
  const Reducer& reducer_;
  StoreRunnerOptions opt_;
};

}  // namespace galloper::mr
