#include "mr/simjob.h"

#include <algorithm>
#include <set>

#include "util/check.h"

namespace galloper::mr {

double JobResult::avg_map_time() const {
  GALLOPER_CHECK(!map_tasks.empty());
  double s = 0;
  for (const auto& t : map_tasks) s += t.duration();
  return s / static_cast<double>(map_tasks.size());
}

double JobResult::avg_reduce_time() const {
  if (reduce_tasks.empty()) return 0;
  double s = 0;
  for (const auto& t : reduce_tasks) s += t.duration();
  return s / static_cast<double>(reduce_tasks.size());
}

double JobResult::avg_map_time_on(const std::vector<size_t>& servers) const {
  double s = 0;
  size_t n = 0;
  for (const auto& t : map_tasks) {
    if (std::find(servers.begin(), servers.end(), t.server) ==
        servers.end())
      continue;
    s += t.duration();
    ++n;
  }
  GALLOPER_CHECK_MSG(n > 0, "no map tasks on the given servers");
  return s / static_cast<double>(n);
}

size_t JobResult::servers_running_maps() const {
  std::set<size_t> servers;
  for (const auto& t : map_tasks) servers.insert(t.server);
  return servers.size();
}

SimulatedJob::SimulatedJob(const sim::Cluster& cluster,
                           const WorkloadProfile& profile,
                           const JobConfig& config)
    : cluster_(cluster), profile_(profile), config_(config) {
  GALLOPER_CHECK(config.reduce_tasks >= 1);
  GALLOPER_CHECK(config.map_slots_per_server >= 1);
  GALLOPER_CHECK(config.reduce_slots_per_server >= 1);
  GALLOPER_CHECK(config.max_split_bytes >= 1);
}

JobResult SimulatedJob::run(const core::InputFormat& fmt) const {
  return run_degraded(fmt, DegradedSpec{});
}

JobResult SimulatedJob::run_degraded(const core::InputFormat& fmt,
                                     const DegradedSpec& degraded) const {
  JobResult result;

  auto is_dead = [&](size_t server) {
    return std::find(degraded.dead.begin(), degraded.dead.end(), server) !=
           degraded.dead.end();
  };
  // Degraded tasks land on alive servers, round-robin.
  size_t next_fallback = 0;
  auto fallback_server = [&]() {
    for (size_t probe = 0; probe < cluster_.size(); ++probe) {
      const size_t s = (next_fallback + probe) % cluster_.size();
      if (!is_dead(s)) {
        next_fallback = s + 1;
        return s;
      }
    }
    GALLOPER_CHECK_MSG(false, "every server is dead");
    return size_t{0};
  };

  // ---- Map phase: data-local tasks, per-server FIFO slots ---------------
  struct PendingTask {
    size_t server;
    size_t bytes;
    double extra_seconds;  // degraded reconstruction before mapping
  };
  std::vector<PendingTask> pending;
  for (const auto& split : fmt.splits()) {
    GALLOPER_CHECK_MSG(split.block < cluster_.size(),
                       "split on block " << split.block
                                         << " but cluster has only "
                                         << cluster_.size() << " servers");
    size_t server = split.block;
    double extra = 0;
    if (is_dead(server)) {
      GALLOPER_CHECK_MSG(degraded.helper_blocks > 0 &&
                             degraded.block_bytes > 0,
                         "degraded run needs helper_blocks and block_bytes");
      server = fallback_server();
      const auto& spec = cluster_.server(server).spec();
      // Reconstruct the lost block first: helper disks read in parallel
      // (one block each), the transfers serialize on this server's NIC.
      extra = static_cast<double>(degraded.block_bytes) / spec.disk_bw +
              static_cast<double>(degraded.helper_blocks) *
                  static_cast<double>(degraded.block_bytes) / spec.net_bw;
    }
    size_t remaining = split.length;
    bool first_piece = true;
    while (remaining > 0) {
      const size_t piece = std::min(remaining, config_.max_split_bytes);
      pending.push_back({server, piece, first_piece ? extra : 0.0});
      first_piece = false;
      remaining -= piece;
    }
  }
  GALLOPER_CHECK_MSG(!pending.empty(), "job has no input");

  std::vector<std::vector<sim::Time>> map_slots(
      cluster_.size(),
      std::vector<sim::Time>(config_.map_slots_per_server, 0.0));
  double shuffle_bytes = 0;
  for (const auto& task : pending) {
    const auto& spec = cluster_.server(task.server).spec();
    auto& slots = map_slots[task.server];
    auto slot = std::min_element(slots.begin(), slots.end());
    const double bytes = static_cast<double>(task.bytes);
    const double duration = config_.task_overhead_s + task.extra_seconds +
                            bytes / spec.disk_bw +
                            bytes /
                                (spec.cpu * profile_.map_bytes_per_cpu_unit);
    const sim::Time start = *slot;
    const sim::Time finish = start + duration;
    *slot = finish;
    result.map_tasks.push_back({task.server, start, finish, task.bytes});
    result.map_phase_end = std::max(result.map_phase_end, finish);
    shuffle_bytes += bytes * profile_.shuffle_ratio;
  }

  // ---- Speculative execution (backup copies for map stragglers) ---------
  if (config_.speculative_execution && result.map_tasks.size() > 1) {
    std::vector<double> durations;
    for (const auto& t : result.map_tasks) durations.push_back(t.duration());
    std::nth_element(durations.begin(),
                     durations.begin() + durations.size() / 2,
                     durations.end());
    const double median = durations[durations.size() / 2];
    for (auto& task : result.map_tasks) {
      if (task.duration() <= config_.speculation_threshold * median)
        continue;
      // Backup launches once the original has run for `median` and a slot
      // frees somewhere else.
      size_t backup_server = SIZE_MAX;
      sim::Time backup_slot_free = 0;
      for (size_t s = 0; s < cluster_.size(); ++s) {
        if (s == task.server || is_dead(s)) continue;
        const auto slot = std::min_element(map_slots[s].begin(),
                                           map_slots[s].end());
        if (backup_server == SIZE_MAX || *slot < backup_slot_free) {
          backup_server = s;
          backup_slot_free = *slot;
        }
      }
      if (backup_server == SIZE_MAX) continue;
      const auto& spec = cluster_.server(backup_server).spec();
      const double bytes = static_cast<double>(task.bytes);
      const sim::Time start =
          std::max(backup_slot_free, task.start + median);
      const sim::Time finish =
          start + config_.task_overhead_s + bytes / spec.disk_bw +
          bytes / (spec.cpu * profile_.map_bytes_per_cpu_unit);
      ++result.speculative_copies;
      if (finish < task.finish) {
        // The backup wins; it occupies the backup slot until it finishes.
        *std::min_element(map_slots[backup_server].begin(),
                          map_slots[backup_server].end()) = finish;
        task.finish = finish;
        task.server = backup_server;
        ++result.speculative_wins;
      }
    }
    result.map_phase_end = 0;
    for (const auto& t : result.map_tasks)
      result.map_phase_end = std::max(result.map_phase_end, t.finish);
  }

  // ---- Reduce phase (starts after the last map task) --------------------
  const double bytes_per_reduce =
      shuffle_bytes / static_cast<double>(config_.reduce_tasks);
  std::vector<std::vector<sim::Time>> reduce_slots(
      cluster_.size(), std::vector<sim::Time>(config_.reduce_slots_per_server,
                                              result.map_phase_end));
  for (size_t r = 0; r < config_.reduce_tasks; ++r) {
    size_t server = r % cluster_.size();
    while (is_dead(server)) server = (server + 1) % cluster_.size();
    const auto& spec = cluster_.server(server).spec();
    auto& slots = reduce_slots[server];
    auto slot = std::min_element(slots.begin(), slots.end());
    const double duration =
        config_.task_overhead_s + bytes_per_reduce / spec.net_bw +
        bytes_per_reduce / (spec.cpu * profile_.reduce_bytes_per_cpu_unit);
    const sim::Time start = *slot;
    const sim::Time finish = start + duration;
    *slot = finish;
    result.reduce_tasks.push_back(
        {server, start, finish, static_cast<size_t>(bytes_per_reduce)});
    result.job_end = std::max(result.job_end, finish);
  }
  return result;
}

}  // namespace galloper::mr
