#include "lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace galloper::lp {

void LinearProgram::add_constraint(std::vector<double> coeffs, Relation rel,
                                   double rhs) {
  GALLOPER_CHECK_MSG(coeffs.size() == num_vars,
                     "constraint width " << coeffs.size() << " != num_vars "
                                         << num_vars);
  constraints.push_back({std::move(coeffs), rel, rhs});
}

void LinearProgram::add_upper_bound(size_t var, double bound) {
  GALLOPER_CHECK(var < num_vars);
  std::vector<double> row(num_vars, 0.0);
  row[var] = 1.0;
  add_constraint(std::move(row), Relation::kLessEqual, bound);
}

std::string to_string(LpStatus status) {
  switch (status) {
    case LpStatus::kOptimal:
      return "optimal";
    case LpStatus::kInfeasible:
      return "infeasible";
    case LpStatus::kUnbounded:
      return "unbounded";
  }
  return "unknown";
}

namespace {

// Dense simplex tableau.
//
// Layout: m constraint rows, one objective row at the bottom. Columns are
// the structural variables, then slack/surplus variables, then artificial
// variables, then the RHS column. basis_[r] holds the column currently basic
// in row r.
class Tableau {
 public:
  Tableau(const LinearProgram& p, double eps) : eps_(eps) {
    const size_t m = p.constraints.size();
    num_struct_ = p.num_vars;

    // Count auxiliary columns.
    size_t slack = 0;
    size_t artificial = 0;
    for (const auto& c : p.constraints) {
      // After sign normalization (rhs ≥ 0):
      //   ≤ : slack (+1) enters the basis directly.
      //   ≥ : surplus (−1) plus an artificial.
      //   = : artificial only.
      if (c.relation != Relation::kEqual) ++slack;
      if (c.relation != Relation::kLessEqual) ++artificial;
    }
    // A "≤" with negative rhs flips to "≥" during normalization (and vice
    // versa), so the exact split is recomputed below; reserve the max.
    num_cols_ = num_struct_ + m /* slack upper bound */ + m /* artificial */ +
                1 /* rhs */;
    rows_.assign(m + 1, std::vector<double>(num_cols_, 0.0));
    basis_.assign(m, SIZE_MAX);

    size_t next_aux = num_struct_;
    first_artificial_ = SIZE_MAX;
    std::vector<size_t> artificial_rows;

    for (size_t r = 0; r < m; ++r) {
      const auto& c = p.constraints[r];
      double rhs = c.rhs;
      double sign = 1.0;
      Relation rel = c.relation;
      if (rhs < 0) {
        sign = -1.0;
        rhs = -rhs;
        if (rel == Relation::kLessEqual)
          rel = Relation::kGreaterEqual;
        else if (rel == Relation::kGreaterEqual)
          rel = Relation::kLessEqual;
      }
      for (size_t j = 0; j < num_struct_; ++j)
        rows_[r][j] = sign * c.coeffs[j];
      rows_[r][num_cols_ - 1] = rhs;

      if (rel == Relation::kLessEqual) {
        rows_[r][next_aux] = 1.0;
        basis_[r] = next_aux;
        ++next_aux;
      } else if (rel == Relation::kGreaterEqual) {
        rows_[r][next_aux] = -1.0;  // surplus
        ++next_aux;
        artificial_rows.push_back(r);
      } else {
        artificial_rows.push_back(r);
      }
    }
    // Artificial columns after all slack/surplus columns.
    first_artificial_ = next_aux;
    for (size_t r : artificial_rows) {
      rows_[r][next_aux] = 1.0;
      basis_[r] = next_aux;
      ++next_aux;
    }
    used_cols_ = next_aux;  // structural + aux columns actually in use

    // Phase-1 objective: minimize the sum of artificial variables. The
    // objective row holds reduced costs; start with Σ (artificial rows)
    // negated so that basic artificial columns have zero reduced cost.
    auto& obj = rows_[m];
    for (size_t j = first_artificial_; j < used_cols_; ++j) obj[j] = 1.0;
    for (size_t r : artificial_rows) price_out(r);
  }

  // Runs phase 1 + phase 2; fills `solution`.
  void run(const LinearProgram& p, LpSolution& solution) {
    const size_t m = rows_.size() - 1;
    if (first_artificial_ < used_cols_) {
      if (!iterate()) {
        // Phase-1 objective is bounded below by 0, so "unbounded" here can
        // only mean numerical trouble; report infeasible.
        solution.status = LpStatus::kInfeasible;
        return;
      }
      // The objective row's RHS holds the NEGATED phase-1 objective value.
      if (-rows_[m][num_cols_ - 1] > eps_) {
        solution.status = LpStatus::kInfeasible;
        return;
      }
      // Drive any lingering artificial variables out of the basis.
      for (size_t r = 0; r < m; ++r) {
        if (basis_[r] < first_artificial_) continue;
        size_t entering = SIZE_MAX;
        for (size_t j = 0; j < first_artificial_; ++j) {
          if (std::fabs(rows_[r][j]) > eps_) {
            entering = j;
            break;
          }
        }
        if (entering == SIZE_MAX) {
          // Redundant row; leave the artificial basic at value zero and
          // freeze the row by zeroing it (it constrains nothing).
          continue;
        }
        pivot(r, entering);
      }
    }

    // Phase 2: install the real objective (artificial columns barred).
    phase2_ = true;
    auto& obj = rows_[m];
    std::fill(obj.begin(), obj.end(), 0.0);
    for (size_t j = 0; j < num_struct_; ++j) obj[j] = p.objective[j];
    for (size_t r = 0; r < m; ++r)
      if (basis_[r] != SIZE_MAX && std::fabs(obj[basis_[r]]) > 0) price_out(r);

    if (!iterate()) {
      solution.status = LpStatus::kUnbounded;
      return;
    }

    solution.status = LpStatus::kOptimal;
    solution.x.assign(num_struct_, 0.0);
    for (size_t r = 0; r < m; ++r)
      if (basis_[r] < num_struct_)
        solution.x[basis_[r]] = rows_[r][num_cols_ - 1];
    solution.objective = 0.0;
    for (size_t j = 0; j < num_struct_; ++j)
      solution.objective += p.objective[j] * solution.x[j];
  }

 private:
  // Subtracts multiples of row r from the objective row so the basic column
  // of row r gets zero reduced cost.
  void price_out(size_t r) {
    auto& obj = rows_.back();
    const size_t col = basis_[r];
    const double f = obj[col];
    if (f == 0.0) return;
    for (size_t j = 0; j < num_cols_; ++j) obj[j] -= f * rows_[r][j];
  }

  void pivot(size_t row, size_t col) {
    auto& prow = rows_[row];
    const double p = prow[col];
    GALLOPER_CHECK_MSG(std::fabs(p) > eps_, "pivot on ~zero element");
    const double inv = 1.0 / p;
    for (auto& v : prow) v *= inv;
    prow[col] = 1.0;  // exact
    for (size_t r = 0; r < rows_.size(); ++r) {
      if (r == row) continue;
      const double f = rows_[r][col];
      if (f == 0.0) continue;
      for (size_t j = 0; j < num_cols_; ++j) rows_[r][j] -= f * prow[j];
      rows_[r][col] = 0.0;  // exact
    }
    basis_[row] = col;
  }

  // Simplex iterations with Bland's rule. Returns false on unboundedness.
  bool iterate() {
    const size_t m = rows_.size() - 1;
    const auto& obj = rows_[m];
    // In phase 2 artificial columns must not re-enter; barring them in
    // phase 1 is harmless because they start basic with reduced cost 0.
    for (;;) {
      // Bland: entering column = smallest index with negative reduced cost.
      size_t entering = SIZE_MAX;
      const size_t limit = in_phase1() ? used_cols_ : first_artificial_;
      for (size_t j = 0; j < limit; ++j) {
        if (obj[j] < -eps_) {
          entering = j;
          break;
        }
      }
      if (entering == SIZE_MAX) return true;  // optimal

      // Bland: leaving row = min ratio, ties by smallest basis column.
      size_t leaving = SIZE_MAX;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (size_t r = 0; r < m; ++r) {
        const double a = rows_[r][entering];
        if (a <= eps_) continue;
        const double ratio = rows_[r][num_cols_ - 1] / a;
        if (ratio < best_ratio - eps_ ||
            (ratio < best_ratio + eps_ && leaving != SIZE_MAX &&
             basis_[r] < basis_[leaving])) {
          best_ratio = ratio;
          leaving = r;
        }
      }
      if (leaving == SIZE_MAX) return false;  // unbounded
      pivot(leaving, entering);
    }
  }

  bool in_phase1() const { return !phase2_; }

  double eps_;
  size_t num_struct_ = 0;
  size_t num_cols_ = 0;
  size_t used_cols_ = 0;
  size_t first_artificial_ = 0;
  std::vector<std::vector<double>> rows_;
  std::vector<size_t> basis_;
  bool phase2_ = false;
};

}  // namespace

LpSolution solve(const LinearProgram& program, double eps) {
  GALLOPER_CHECK(program.objective.size() == program.num_vars);
  LpSolution solution;
  Tableau t(program, eps);
  t.run(program, solution);
  return solution;
}

}  // namespace galloper::lp
