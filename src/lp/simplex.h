// A small dense linear-programming solver (two-phase primal simplex with
// Bland's anti-cycling rule).
//
// The Galloper weight-assignment problems (Sec. IV-C and V-B of the paper)
// have a handful of variables and constraints, so a textbook tableau solver
// is the right tool: exactness of structure over sparse-scale performance.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace galloper::lp {

enum class Relation { kLessEqual, kEqual, kGreaterEqual };

struct Constraint {
  std::vector<double> coeffs;  // length = num_vars
  Relation relation = Relation::kLessEqual;
  double rhs = 0.0;
};

// min objective·x  subject to the constraints and x ≥ 0 elementwise.
// (Variables with upper bounds are modeled with explicit ≤ rows.)
struct LinearProgram {
  size_t num_vars = 0;
  std::vector<double> objective;  // length = num_vars
  std::vector<Constraint> constraints;

  explicit LinearProgram(size_t n) : num_vars(n), objective(n, 0.0) {}

  // Adds `coeffs · x (rel) rhs`; coeffs must have num_vars entries.
  void add_constraint(std::vector<double> coeffs, Relation rel, double rhs);

  // Adds x_i ≤ bound.
  void add_upper_bound(size_t var, double bound);
};

enum class LpStatus { kOptimal, kInfeasible, kUnbounded };

struct LpSolution {
  LpStatus status = LpStatus::kInfeasible;
  std::vector<double> x;      // valid when kOptimal
  double objective = 0.0;     // valid when kOptimal

  bool optimal() const { return status == LpStatus::kOptimal; }
};

// Solves the program. `eps` is the feasibility / pivot tolerance.
LpSolution solve(const LinearProgram& program, double eps = 1e-9);

std::string to_string(LpStatus status);

}  // namespace galloper::lp
