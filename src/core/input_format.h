// InputFormat — the analogue of the paper's custom Hadoop FileInputFormat
// (Sec. VI): it tells an analytics framework where the ORIGINAL data live
// inside each encoded block, so map tasks can be scheduled on every server
// and read only original bytes (never parity).
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "codes/erasure_code.h"
#include "util/bytes.h"

namespace galloper::core {

class InputFormat {
 public:
  // `block_bytes` must be a multiple of the code's stripes_per_block().
  InputFormat(const codes::ErasureCode& code, size_t block_bytes);

  // One maximal contiguous run of original data per block (blocks whose
  // weight is zero contribute nothing). Original data are rotated to the
  // top of each block, so block_offset is 0 for every split this library
  // produces — kept explicit because consumers must not assume it.
  struct Split {
    size_t block = 0;         // block (= server) holding the bytes
    size_t block_offset = 0;  // where the run starts inside the block
    size_t file_offset = 0;   // where the run belongs in the original file
    size_t length = 0;        // bytes of original data
  };

  const std::vector<Split>& splits() const { return splits_; }

  // The maximal runs above, subdivided so no split exceeds max_split_bytes
  // (the last piece of a run keeps the remainder). This is what a real job
  // scheduler consumes: with runs up to a whole block long, one-task-per-run
  // quantizes map parallelism to the run count; capping the split size
  // yields enough tasks to keep every map slot busy. max_split_bytes must
  // be positive; callers that want record-aligned splits pass a multiple of
  // their record size (runs start chunk-aligned, and every workload here
  // sizes chunks as a record multiple).
  std::vector<Split> splits(size_t max_split_bytes) const;

  size_t block_bytes() const { return block_bytes_; }
  size_t chunk_bytes() const { return chunk_bytes_; }

  // Total original bytes across all blocks (= the original file size).
  size_t total_original_bytes() const;

  // Original bytes stored in one block.
  size_t original_bytes_in_block(size_t block) const;

  // Reassembles the original file by concatenating the data regions of all
  // blocks — no decoding, pure byte movement. Requires every block that
  // holds original data (blocks[i] must be block i's contents).
  Buffer gather(const std::vector<ConstByteSpan>& blocks) const;

  // Degraded gather: reassembles the original file from whichever blocks
  // are still around, decoding the missing chunks through the plan cache
  // (codes::CodecEngine::read_range). Available chunks are copied verbatim,
  // so with every block present this is bit-identical to gather() above.
  // nullopt when the surviving blocks cannot reconstruct the file.
  std::optional<Buffer> gather(
      const std::map<size_t, ConstByteSpan>& blocks) const;

 private:
  const codes::ErasureCode* code_;
  size_t num_blocks_;
  size_t block_bytes_;
  size_t chunk_bytes_;
  std::vector<Split> splits_;
};

}  // namespace galloper::core
