// InputFormat — the analogue of the paper's custom Hadoop FileInputFormat
// (Sec. VI): it tells an analytics framework where the ORIGINAL data live
// inside each encoded block, so map tasks can be scheduled on every server
// and read only original bytes (never parity).
#pragma once

#include <vector>

#include "codes/erasure_code.h"
#include "util/bytes.h"

namespace galloper::core {

class InputFormat {
 public:
  // `block_bytes` must be a multiple of the code's stripes_per_block().
  InputFormat(const codes::ErasureCode& code, size_t block_bytes);

  // One maximal contiguous run of original data per block (blocks whose
  // weight is zero contribute nothing). Original data are rotated to the
  // top of each block, so block_offset is 0 for every split this library
  // produces — kept explicit because consumers must not assume it.
  struct Split {
    size_t block = 0;         // block (= server) holding the bytes
    size_t block_offset = 0;  // where the run starts inside the block
    size_t file_offset = 0;   // where the run belongs in the original file
    size_t length = 0;        // bytes of original data
  };

  const std::vector<Split>& splits() const { return splits_; }

  size_t block_bytes() const { return block_bytes_; }
  size_t chunk_bytes() const { return chunk_bytes_; }

  // Total original bytes across all blocks (= the original file size).
  size_t total_original_bytes() const;

  // Original bytes stored in one block.
  size_t original_bytes_in_block(size_t block) const;

  // Reassembles the original file by concatenating the data regions of all
  // blocks — no decoding, pure byte movement. Requires every block that
  // holds original data (blocks[i] must be block i's contents).
  Buffer gather(const std::vector<ConstByteSpan>& blocks) const;

 private:
  size_t num_blocks_;
  size_t block_bytes_;
  size_t chunk_bytes_;
  std::vector<Split> splits_;
};

}  // namespace galloper::core
