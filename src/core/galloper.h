// GalloperCode — the paper's contribution as a ready-to-use erasure code.
//
// A (k, l, g) Galloper code has the failure tolerance and repair locality
// of the (k, l, g) Pyramid code, but original data are embedded in ALL
// k+l+g blocks (proportionally to per-block weights), so data-parallel
// jobs can run on every server. See core/construction.h for the algorithm
// and core/weights.h for performance-aware weight assignment.
#pragma once

#include <vector>

#include "codes/erasure_code.h"
#include "core/construction.h"
#include "util/rational.h"

namespace galloper::core {

class GalloperCode final : public codes::ErasureCode {
 public:
  // Homogeneous servers: uniform weights w_i = k/(k+l+g).
  GalloperCode(size_t k, size_t l, size_t g);

  // Explicit weights (must satisfy weights_valid()).
  GalloperCode(size_t k, size_t l, size_t g, std::vector<Rational> weights);

  // Heterogeneous servers: derives weights from per-server performance via
  // the Sec. IV-C / V-B linear program (see assign_weights()).
  static GalloperCode for_performance(size_t k, size_t l, size_t g,
                                      const std::vector<double>& performance,
                                      int64_t resolution = 12);

  std::string name() const override;
  size_t k() const override { return k_; }
  size_t l() const { return l_; }
  size_t g() const { return g_; }
  const std::vector<Rational>& weights() const { return weights_; }
  size_t n_stripes() const { return engine_.stripes_per_block(); }

  // Same helper sets as the Pyramid code it is built from: group peers for
  // the first k+l blocks, the k "data" blocks for global parity blocks.
  std::vector<size_t> repair_helpers(size_t block) const override;
  size_t guaranteed_tolerance() const override {
    return l_ > 0 ? g_ + 1 : g_;
  }
  const codes::CodecEngine& engine() const override { return engine_; }

  // Group id of a data/local-parity block, SIZE_MAX for globals.
  size_t group_of(size_t block) const;
  std::vector<size_t> group_blocks(size_t group) const;

 private:
  GalloperCode(GalloperParams params);

  size_t k_;
  size_t l_;
  size_t g_;
  std::vector<Rational> weights_;
  codes::CodecEngine engine_;
};

}  // namespace galloper::core
