#include "core/all_symbol.h"

#include <sstream>

#include "core/weights.h"
#include "util/check.h"

namespace galloper::core {

namespace {

codes::CodecEngine make_engine(const GalloperParams& params) {
  GALLOPER_CHECK_MSG(params.g >= 1,
                     "all-symbol extension needs at least one global parity");
  Construction c = construct_galloper(params);
  const size_t n = params.k + params.l + params.g;
  const size_t N = c.n_stripes;

  // Append one block: stripe p = XOR of the global blocks' stripes p.
  la::Matrix extra(N, c.generator.cols());
  for (size_t m = 0; m < params.g; ++m) {
    const size_t gb = params.k + params.l + m;
    for (size_t p = 0; p < N; ++p) {
      auto dst = extra.row(p);
      const auto src = c.generator.row(gb * N + p);
      for (size_t j = 0; j < src.size(); ++j) dst[j] ^= src[j];
    }
  }
  la::Matrix gen = c.generator.vstack(extra);
  return codes::CodecEngine(std::move(gen), n + 1, N,
                            std::move(c.chunk_pos));
}

}  // namespace

AllSymbolGalloperCode::AllSymbolGalloperCode(GalloperParams params)
    : k_(params.k),
      l_(params.l),
      g_(params.g),
      weights_(params.weights),
      engine_(make_engine(params)) {}

AllSymbolGalloperCode::AllSymbolGalloperCode(size_t k, size_t l, size_t g)
    : AllSymbolGalloperCode(
          GalloperParams{k, l, g, uniform_weights(k, l, g)}) {}

AllSymbolGalloperCode::AllSymbolGalloperCode(size_t k, size_t l, size_t g,
                                             std::vector<Rational> weights)
    : AllSymbolGalloperCode(GalloperParams{k, l, g, std::move(weights)}) {}

std::string AllSymbolGalloperCode::name() const {
  std::ostringstream os;
  os << "(" << k_ << "," << l_ << "," << g_ << ") all-symbol Galloper";
  return os.str();
}

size_t AllSymbolGalloperCode::all_symbol_locality() const {
  const size_t data_locality = l_ > 0 ? k_ / l_ : k_;
  return std::max(data_locality, g_);
}

std::vector<size_t> AllSymbolGalloperCode::repair_helpers(
    size_t block) const {
  GALLOPER_CHECK(block < num_blocks());
  const size_t first_global = k_ + l_;
  const size_t extra = k_ + l_ + g_;
  if (block >= first_global) {
    // A global (or the extra block): the other blocks of the global group.
    std::vector<size_t> helpers;
    for (size_t b = first_global; b <= extra; ++b)
      if (b != block) helpers.push_back(b);
    return helpers;
  }
  if (l_ > 0) {
    const size_t group = block < k_ ? block / (k_ / l_) : block - k_;
    std::vector<size_t> helpers;
    const size_t size = k_ / l_;
    for (size_t m = 0; m < size; ++m) {
      const size_t b = group * size + m;
      if (b != block) helpers.push_back(b);
    }
    if (block != k_ + group) helpers.push_back(k_ + group);
    return helpers;
  }
  // l = 0: Reed-Solomon-like data blocks need k survivors.
  std::vector<size_t> helpers;
  for (size_t b = 0; b < num_blocks() && helpers.size() < k_; ++b)
    if (b != block) helpers.push_back(b);
  return helpers;
}

}  // namespace galloper::core
