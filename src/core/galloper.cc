#include "core/galloper.h"

#include <sstream>

#include "core/weights.h"
#include "util/check.h"

namespace galloper::core {

namespace {

codes::CodecEngine make_engine(const GalloperParams& params) {
  Construction c = construct_galloper(params);
  const size_t n = params.k + params.l + params.g;
  return codes::CodecEngine(std::move(c.generator), n, c.n_stripes,
                            std::move(c.chunk_pos));
}

}  // namespace

GalloperCode::GalloperCode(GalloperParams params)
    : k_(params.k),
      l_(params.l),
      g_(params.g),
      weights_(params.weights),
      engine_(make_engine(params)) {}

GalloperCode::GalloperCode(size_t k, size_t l, size_t g)
    : GalloperCode(GalloperParams{k, l, g, uniform_weights(k, l, g)}) {}

GalloperCode::GalloperCode(size_t k, size_t l, size_t g,
                           std::vector<Rational> weights)
    : GalloperCode(GalloperParams{k, l, g, std::move(weights)}) {}

GalloperCode GalloperCode::for_performance(
    size_t k, size_t l, size_t g, const std::vector<double>& performance,
    int64_t resolution) {
  WeightSolution sol = assign_weights(k, l, g, performance, resolution);
  return GalloperCode(k, l, g, std::move(sol.weights));
}

std::string GalloperCode::name() const {
  std::ostringstream os;
  os << "(" << k_ << "," << l_ << "," << g_ << ") Galloper";
  return os.str();
}

size_t GalloperCode::group_of(size_t block) const {
  GALLOPER_CHECK(block < num_blocks());
  if (block < k_) return l_ > 0 ? block / (k_ / l_) : SIZE_MAX;
  if (block < k_ + l_) return block - k_;
  return SIZE_MAX;
}

std::vector<size_t> GalloperCode::group_blocks(size_t group) const {
  GALLOPER_CHECK(l_ > 0 && group < l_);
  const size_t size = k_ / l_;
  std::vector<size_t> blocks;
  for (size_t m = 0; m < size; ++m) blocks.push_back(group * size + m);
  blocks.push_back(k_ + group);
  return blocks;
}

std::vector<size_t> GalloperCode::repair_helpers(size_t block) const {
  GALLOPER_CHECK(block < num_blocks());
  const size_t group = group_of(block);
  if (group != SIZE_MAX) {
    std::vector<size_t> helpers;
    for (size_t b : group_blocks(group))
      if (b != block) helpers.push_back(b);
    return helpers;
  }
  // Global parity (or any block when l = 0): k lowest-indexed survivors,
  // exactly as PyramidCode.
  std::vector<size_t> helpers;
  for (size_t b = 0; b < num_blocks() && helpers.size() < k_; ++b)
    if (b != block) helpers.push_back(b);
  return helpers;
}

}  // namespace galloper::core
