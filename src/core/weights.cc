#include "core/weights.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "lp/simplex.h"
#include "util/check.h"

namespace galloper::core {

namespace {

struct Shape {
  size_t k, l, g, n;
  size_t group_size() const { return k / l; }  // data blocks per group

  // Blocks of local group j: k/l data blocks plus the local parity block.
  std::vector<size_t> group(size_t j) const {
    std::vector<size_t> blocks;
    for (size_t m = 0; m < group_size(); ++m)
      blocks.push_back(j * group_size() + m);
    blocks.push_back(k + j);
    return blocks;
  }
};

Shape make_shape(size_t k, size_t l, size_t g) {
  GALLOPER_CHECK(k >= 1);
  GALLOPER_CHECK_MSG(l == 0 || k % l == 0, "l must divide k");
  return {k, l, g, k + l + g};
}

// Builds and solves the paper's LP; returns effective performances p − d.
std::vector<double> solve_lp(const Shape& s, const std::vector<double>& perf) {
  const double total_p = std::accumulate(perf.begin(), perf.end(), 0.0);

  lp::LinearProgram prog(s.n);
  for (size_t i = 0; i < s.n; ++i) prog.objective[i] = 1.0;  // min Σ d

  // k (p_i − d_i) ≤ Σ (p − d)   ⟺   −k·d_i + Σ d ≤ Σ p − k·p_i
  for (size_t i = 0; i < s.n; ++i) {
    std::vector<double> row(s.n, 1.0);
    row[i] += -static_cast<double>(s.k);
    prog.add_constraint(std::move(row), lp::Relation::kLessEqual,
                        total_p - static_cast<double>(s.k) * perf[i]);
  }
  if (s.l > 0) {
    for (size_t j = 0; j < s.l; ++j) {
      const auto grp = s.group(j);
      double group_p = 0;
      for (size_t i : grp) group_p += perf[i];
      // l · Σ_grp (p − d) ≤ Σ (p − d) ⟺ −l·Σ_grp d + Σ d ≤ Σ p − l·Σ_grp p
      {
        std::vector<double> row(s.n, 1.0);
        for (size_t i : grp) row[i] += -static_cast<double>(s.l);
        prog.add_constraint(std::move(row), lp::Relation::kLessEqual,
                            total_p - static_cast<double>(s.l) * group_p);
      }
      // (k/l)(p_i − d_i) ≤ Σ_grp (p − d), for each i in the group
      const double m = static_cast<double>(s.group_size());
      for (size_t i : grp) {
        std::vector<double> row(s.n, 0.0);
        for (size_t q : grp) row[q] = 1.0;
        row[i] += -m;
        prog.add_constraint(std::move(row), lp::Relation::kLessEqual,
                            group_p - m * perf[i]);
      }
    }
  }
  for (size_t i = 0; i < s.n; ++i) prog.add_upper_bound(i, perf[i]);

  const lp::LpSolution sol = lp::solve(prog);
  GALLOPER_CHECK_MSG(sol.optimal(),
                     "weight LP not optimal: " << lp::to_string(sol.status));
  std::vector<double> effective(s.n);
  for (size_t i = 0; i < s.n; ++i)
    effective[i] = std::max(0.0, perf[i] - sol.x[i]);
  return effective;
}

// Quantizes effective performances onto an integer grid and repairs rounding
// violations so the integer units satisfy the (exact) constraint system:
//   k·c_i ≤ Σc;   (k/l)·c_i ≤ C_grp;   l·C_grp ≤ Σc.
std::vector<int64_t> quantize(const Shape& s,
                              const std::vector<double>& effective,
                              int64_t resolution) {
  GALLOPER_CHECK(resolution >= 1);
  const double peak = *std::max_element(effective.begin(), effective.end());
  std::vector<int64_t> units(s.n, 1);
  if (peak > 0) {
    for (size_t i = 0; i < s.n; ++i) {
      // Round up, as the paper does; the repair loop below restores any
      // constraint the rounding broke.
      units[i] = static_cast<int64_t>(
          std::ceil(effective[i] * static_cast<double>(resolution) / peak));
      units[i] = std::max<int64_t>(units[i], 0);
    }
  }
  if (std::accumulate(units.begin(), units.end(), int64_t{0}) == 0)
    std::fill(units.begin(), units.end(), int64_t{1});

  auto total = [&] {
    return std::accumulate(units.begin(), units.end(), int64_t{0});
  };
  auto group_total = [&](size_t j) {
    int64_t t = 0;
    for (size_t i : s.group(j)) t += units[i];
    return t;
  };

  // Each pass decrements one violating unit; Σ units strictly decreases, so
  // the loop terminates (and all-equal units are always feasible).
  for (bool changed = true; changed;) {
    changed = false;
    const int64_t sum = total();
    for (size_t i = 0; i < s.n; ++i) {
      if (static_cast<int64_t>(s.k) * units[i] > sum && units[i] > 0) {
        --units[i];
        changed = true;
        break;
      }
    }
    if (changed || s.l == 0) continue;
    const int64_t m = static_cast<int64_t>(s.group_size());
    for (size_t j = 0; j < s.l && !changed; ++j) {
      const int64_t grp = group_total(j);
      if (static_cast<int64_t>(s.l) * grp > sum) {
        // Shrink the biggest member of the over-heavy group.
        size_t arg = s.group(j).front();
        for (size_t i : s.group(j))
          if (units[i] > units[arg]) arg = i;
        if (units[arg] > 0) {
          --units[arg];
          changed = true;
          break;
        }
      }
      for (size_t i : s.group(j)) {
        if (m * units[i] > grp && units[i] > 0) {
          --units[i];
          changed = true;
          break;
        }
      }
    }
  }
  GALLOPER_CHECK(total() > 0);
  return units;
}

}  // namespace

std::vector<double> waterfill_effective(const std::vector<double>& perf,
                                        size_t k) {
  GALLOPER_CHECK(perf.size() >= k && k >= 1);
  for (double p : perf) GALLOPER_CHECK_MSG(p > 0, "performance must be > 0");
  // f(T) = Σ min(p_i, T) − k·T is piecewise linear and concave with
  // f(0) = 0; the optimum is its largest nonnegative point. Scan the
  // breakpoints (sorted p values) for the segment where f crosses zero.
  std::vector<double> sorted(perf);
  std::sort(sorted.begin(), sorted.end());
  const size_t n = sorted.size();
  double below_sum = 0;  // Σ of p_i below the current segment
  double best_t = 0;
  for (size_t idx = 0; idx < n; ++idx) {
    const double lo = idx == 0 ? 0.0 : sorted[idx - 1];
    const double hi = sorted[idx];
    if (idx > 0) below_sum += sorted[idx - 1];
    // On [lo, hi]: f(T) = below_sum + (n − idx − k)·T.
    const double slope = static_cast<double>(n - idx) - static_cast<double>(k);
    const double value_lo = below_sum + slope * lo;
    const double value_hi = below_sum + slope * hi;
    if (value_hi >= 0) {
      best_t = hi;  // f still nonnegative at the segment end; keep going
      continue;
    }
    if (value_lo >= 0 && slope < 0) best_t = lo + value_lo / -slope;
    break;
  }
  std::vector<double> q(perf.size());
  for (size_t i = 0; i < perf.size(); ++i) q[i] = std::min(perf[i], best_t);
  return q;
}

std::vector<Rational> uniform_weights(size_t k, size_t l, size_t g) {
  const Shape s = make_shape(k, l, g);
  return std::vector<Rational>(
      s.n, Rational(static_cast<int64_t>(k), static_cast<int64_t>(s.n)));
}

bool weights_valid(size_t k, size_t l, size_t g,
                   const std::vector<Rational>& weights) {
  const Shape s = make_shape(k, l, g);
  if (weights.size() != s.n) return false;
  const Rational total = sum(weights);
  if (total != Rational(static_cast<int64_t>(k))) return false;
  for (const auto& w : weights)
    if (w < Rational(0) || w > Rational(1)) return false;
  if (l == 0) return true;
  const Rational ratio_lk(static_cast<int64_t>(l), static_cast<int64_t>(k));
  for (size_t j = 0; j < l; ++j) {
    std::vector<Rational> grp_ws;
    for (size_t i : s.group(j)) grp_ws.push_back(weights[i]);
    const Rational grp = sum(grp_ws);
    const Rational wg = grp * ratio_lk;  // step-1 weight of the group
    if (wg > Rational(1)) return false;
    for (const auto& w : grp_ws)
      if (w > wg) return false;
  }
  return true;
}

WeightSolution assign_weights(size_t k, size_t l, size_t g,
                              const std::vector<double>& perf,
                              int64_t resolution) {
  const Shape s = make_shape(k, l, g);
  GALLOPER_CHECK_MSG(perf.size() == s.n,
                     "need one performance value per block: "
                         << perf.size() << " given, " << s.n << " expected");
  for (double p : perf) GALLOPER_CHECK_MSG(p > 0, "performance must be > 0");

  WeightSolution out;
  out.effective = solve_lp(s, perf);
  double d_sum = 0;
  for (size_t i = 0; i < s.n; ++i) d_sum += perf[i] - out.effective[i];
  out.lp_objective = d_sum;

  out.units = quantize(s, out.effective, resolution);
  const int64_t total =
      std::accumulate(out.units.begin(), out.units.end(), int64_t{0});
  out.weights.reserve(s.n);
  for (size_t i = 0; i < s.n; ++i)
    out.weights.emplace_back(static_cast<int64_t>(k) * out.units[i], total);
  GALLOPER_CHECK_MSG(weights_valid(k, l, g, out.weights),
                     "internal error: rationalized weights violate "
                     "constraints");
  return out;
}

}  // namespace galloper::core
