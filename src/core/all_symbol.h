// AllSymbolGalloperCode — the paper's future-work direction implemented
// (Sec. VII-A: "We will study how to achieve all-symbol locality in our
// future work").
//
// A plain (k, l, g) Galloper code achieves information locality: the first
// k+l blocks repair from k/l peers, but a global parity block needs k
// blocks. This extension appends one extra parity block holding the XOR of
// the g global parity blocks, which closes the gap: every global block now
// repairs from the other g−1 globals plus the extra block (g reads), and
// the extra block repairs from the g globals. All-symbol locality becomes
// max(k/l, g) at the cost of one more block of storage ((k+l+g+1)/k ×).
//
// The extra block is pure parity (weight 0) — the paper's own advice to
// "place the global parity blocks on servers with lower performance"
// applies to it doubly.
#pragma once

#include "codes/erasure_code.h"
#include "core/galloper.h"

namespace galloper::core {

class AllSymbolGalloperCode final : public codes::ErasureCode {
 public:
  // Requires g ≥ 1 (with no globals there is nothing to fix).
  AllSymbolGalloperCode(size_t k, size_t l, size_t g);
  AllSymbolGalloperCode(size_t k, size_t l, size_t g,
                        std::vector<Rational> weights);

  std::string name() const override;
  size_t k() const override { return k_; }
  size_t l() const { return l_; }
  size_t g() const { return g_; }
  const std::vector<Rational>& weights() const { return weights_; }
  size_t n_stripes() const { return engine_.stripes_per_block(); }

  std::vector<size_t> repair_helpers(size_t block) const override;
  size_t guaranteed_tolerance() const override {
    return l_ > 0 ? g_ + 1 : g_;
  }
  const codes::CodecEngine& engine() const override { return engine_; }

  // Locality of every block class: data/local k/l (k when l = 0),
  // globals and the extra block g.
  size_t all_symbol_locality() const;

 private:
  AllSymbolGalloperCode(GalloperParams params);

  size_t k_;
  size_t l_;
  size_t g_;
  std::vector<Rational> weights_;
  codes::CodecEngine engine_;
};

}  // namespace galloper::core
