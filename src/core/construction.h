// The Galloper code construction (Sec. IV-B and Sec. V-A of the paper).
//
// Special case l = 0: expand the systematic (k, g) Reed-Solomon generator
// to N stripes per block, choose the w_i·N data stripes of each block by a
// sequential sweep with wrap-around (each stripe row ends up with exactly k
// chosen stripes, so the chosen set is a basis), symbol-remap onto that
// basis, and rotate every block's data stripes to the top.
//
// General case l > 0 (two steps):
//  1. Build a (k, 0, g) Galloper code with inflated data-block weights
//     w_ig = (group weight sum) / (k/l) — the data destined for a local
//     parity block is parked in its group's data blocks — and the global
//     blocks' final weights.
//  2. Append each local parity block as the Pyramid split-row combination
//     of its group's (rotated) step-1 blocks, then symbol-remap again
//     inside each group: choose w_i·N stripes per group block sequentially
//     within the window of the first w_g·N rows (where all group data
//     stripes live after rotation), wrap-around within the window. Global
//     blocks keep their step-1 data stripes as basis members. Rotate group
//     blocks and done.
//
// The generator produced here uses exactly the paper's literal matrix
// path: expand → select submatrix → invert → remultiply (Sec. VI).
#pragma once

#include <vector>

#include "codes/layout.h"
#include "la/matrix.h"
#include "util/rational.h"

namespace galloper::core {

struct GalloperParams {
  size_t k = 0;
  size_t l = 0;
  size_t g = 0;
  // One weight per block in PyramidCode block order (k data blocks, l local
  // parity blocks, g global parity blocks); Σ = k, each in [0, 1], and the
  // Sec. V-B group conditions when l > 0 (see weights_valid()).
  std::vector<Rational> weights;
};

struct Construction {
  la::Matrix generator;                    // (n·N) × (k·N), rotated
  std::vector<codes::StripeRef> chunk_pos;  // chunk order (file order)
  size_t n_stripes = 0;                    // N
};

// Smallest stripe count N making every w_i·N and group-window w_g·N
// integral (the LCM of the weight denominators of both steps).
size_t stripe_count(const GalloperParams& params);

enum class Method {
  // The paper's Sec. VI matrix path: expand the generator to kN × kN,
  // select the chosen-stripe submatrix, invert it whole, remultiply.
  // O((kN)³) — kept as the executable specification.
  kLiteral,
  // Exploits the construction's row decomposition: every basis change
  // couples only stripes of one row (step 1) or one (group, row) class
  // (step 2), so the big inverse splits into N k×k (resp. k/l × k/l)
  // inverses. O(N·k³). Produces bit-identical generators to kLiteral
  // (asserted in tests); the default for GalloperCode.
  kRowwise,
};

// Builds the stripe generator and layout. Throws CheckError on invalid
// parameters (weights_valid() must hold).
Construction construct_galloper(const GalloperParams& params,
                                Method method = Method::kRowwise);

}  // namespace galloper::core
