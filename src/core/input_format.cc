#include "core/input_format.h"

#include <algorithm>

#include "util/check.h"

namespace galloper::core {

InputFormat::InputFormat(const codes::ErasureCode& code, size_t block_bytes)
    : num_blocks_(code.num_blocks()), block_bytes_(block_bytes) {
  const auto& e = code.engine();
  GALLOPER_CHECK_MSG(
      block_bytes % e.stripes_per_block() == 0,
      "block size " << block_bytes << " not divisible by stripe count "
                    << e.stripes_per_block());
  chunk_bytes_ = block_bytes / e.stripes_per_block();

  for (size_t b = 0; b < num_blocks_; ++b) {
    const auto& chunks = e.chunks_of_block(b);
    size_t p = 0;
    while (p < chunks.size()) {
      if (chunks[p] == SIZE_MAX) {
        ++p;
        continue;
      }
      // Maximal run of stripe-adjacent, file-adjacent chunks.
      size_t end = p + 1;
      while (end < chunks.size() && chunks[end] != SIZE_MAX &&
             chunks[end] == chunks[end - 1] + 1)
        ++end;
      splits_.push_back({b, p * chunk_bytes_, chunks[p] * chunk_bytes_,
                         (end - p) * chunk_bytes_});
      p = end;
    }
  }
}

size_t InputFormat::total_original_bytes() const {
  size_t total = 0;
  for (const auto& s : splits_) total += s.length;
  return total;
}

size_t InputFormat::original_bytes_in_block(size_t block) const {
  GALLOPER_CHECK(block < num_blocks_);
  size_t total = 0;
  for (const auto& s : splits_)
    if (s.block == block) total += s.length;
  return total;
}

Buffer InputFormat::gather(const std::vector<ConstByteSpan>& blocks) const {
  GALLOPER_CHECK_MSG(blocks.size() == num_blocks_,
                     "gather needs all " << num_blocks_ << " blocks");
  for (const auto& b : blocks)
    GALLOPER_CHECK_MSG(b.size() == block_bytes_, "wrong block size");
  Buffer file(total_original_bytes(), 0);
  for (const auto& s : splits_) {
    std::copy_n(blocks[s.block].data() + s.block_offset, s.length,
                file.data() + s.file_offset);
  }
  return file;
}

}  // namespace galloper::core
