#include "core/input_format.h"

#include <algorithm>

#include "util/check.h"

namespace galloper::core {

InputFormat::InputFormat(const codes::ErasureCode& code, size_t block_bytes)
    : code_(&code), num_blocks_(code.num_blocks()), block_bytes_(block_bytes) {
  const auto& e = code.engine();
  GALLOPER_CHECK_MSG(
      block_bytes % e.stripes_per_block() == 0,
      "block size " << block_bytes << " not divisible by stripe count "
                    << e.stripes_per_block());
  chunk_bytes_ = block_bytes / e.stripes_per_block();

  for (size_t b = 0; b < num_blocks_; ++b) {
    const auto& chunks = e.chunks_of_block(b);
    size_t p = 0;
    while (p < chunks.size()) {
      if (chunks[p] == SIZE_MAX) {
        ++p;
        continue;
      }
      // Maximal run of stripe-adjacent, file-adjacent chunks.
      size_t end = p + 1;
      while (end < chunks.size() && chunks[end] != SIZE_MAX &&
             chunks[end] == chunks[end - 1] + 1)
        ++end;
      splits_.push_back({b, p * chunk_bytes_, chunks[p] * chunk_bytes_,
                         (end - p) * chunk_bytes_});
      p = end;
    }
  }
}

std::vector<InputFormat::Split> InputFormat::splits(
    size_t max_split_bytes) const {
  GALLOPER_CHECK_MSG(max_split_bytes > 0, "max_split_bytes must be positive");
  std::vector<Split> out;
  for (const auto& run : splits_) {
    for (size_t off = 0; off < run.length; off += max_split_bytes) {
      const size_t len = std::min(max_split_bytes, run.length - off);
      out.push_back({run.block, run.block_offset + off, run.file_offset + off,
                     len});
    }
  }
  return out;
}

size_t InputFormat::total_original_bytes() const {
  size_t total = 0;
  for (const auto& s : splits_) total += s.length;
  return total;
}

size_t InputFormat::original_bytes_in_block(size_t block) const {
  GALLOPER_CHECK(block < num_blocks_);
  size_t total = 0;
  for (const auto& s : splits_)
    if (s.block == block) total += s.length;
  return total;
}

Buffer InputFormat::gather(const std::vector<ConstByteSpan>& blocks) const {
  GALLOPER_CHECK_MSG(blocks.size() == num_blocks_,
                     "gather needs all " << num_blocks_ << " blocks");
  for (const auto& b : blocks)
    GALLOPER_CHECK_MSG(b.size() == block_bytes_, "wrong block size");
  Buffer file(total_original_bytes(), 0);
  for (const auto& s : splits_) {
    std::copy_n(blocks[s.block].data() + s.block_offset, s.length,
                file.data() + s.file_offset);
  }
  return file;
}

std::optional<Buffer> InputFormat::gather(
    const std::map<size_t, ConstByteSpan>& blocks) const {
  for (const auto& [b, bytes] : blocks) {
    GALLOPER_CHECK_MSG(b < num_blocks_, "unknown block " << b);
    GALLOPER_CHECK_MSG(bytes.size() == block_bytes_, "wrong block size");
  }
  // The engine's ranged read IS the degraded gather: chunks present in
  // `blocks` are copied verbatim (identical bytes to the all-blocks
  // overload), absent ones are solved via the cached decode plan.
  return code_->engine().read_range(blocks, 0, total_original_bytes());
}

}  // namespace galloper::core
