#include "core/construction.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "codes/pyramid.h"
#include "codes/remap.h"
#include "core/weights.h"
#include "la/solve.h"
#include "util/check.h"

namespace galloper::core {

namespace {

size_t group_size(const GalloperParams& p) { return p.k / p.l; }

// Data blocks of local group j (final block ids).
std::vector<size_t> group_data_blocks(const GalloperParams& p, size_t j) {
  std::vector<size_t> blocks;
  for (size_t m = 0; m < group_size(p); ++m)
    blocks.push_back(j * group_size(p) + m);
  return blocks;
}

// Step-1 group weight w_g of group j: (Σ_{group j} w) · l / k.
Rational group_window_weight(const GalloperParams& p, size_t j) {
  Rational grp;
  for (size_t i : group_data_blocks(p, j)) grp = grp + p.weights[i];
  grp = grp + p.weights[p.k + j];  // the local parity block
  return grp * Rational(static_cast<int64_t>(p.l),
                        static_cast<int64_t>(p.k));
}

int64_t times_n(const Rational& w, size_t n_stripes) {
  const Rational scaled = w * Rational(static_cast<int64_t>(n_stripes));
  GALLOPER_CHECK_MSG(scaled.den() == 1,
                     "weight " << w.to_string() << " · N=" << n_stripes
                               << " is not integral");
  return scaled.num();
}

void validate(const GalloperParams& p) {
  GALLOPER_CHECK(p.k >= 1);
  GALLOPER_CHECK_MSG(p.l == 0 || p.k % p.l == 0, "l must divide k");
  GALLOPER_CHECK_MSG(weights_valid(p.k, p.l, p.g, p.weights),
                     "invalid Galloper weights (see weights_valid)");
}

// Everything both construction methods share: the base matrices, the
// step-1 stripe counts and selection, and the per-group step-2 selections.
struct Plan {
  size_t k, l, g, n, N;
  la::Matrix pyr;   // (k+l+g) × k Pyramid generator
  la::Matrix base;  // (k+g) × k step-1 base (data + global rows)
  std::vector<size_t> counts1;  // step-1 data-stripe counts per base block
  codes::Selection sel1;        // step-1 selection (base block ids 0..k+g)

  struct GroupPlan {
    size_t window = 0;            // w_g · N
    std::vector<size_t> blocks;   // group data blocks + local parity (final)
    codes::Selection sel;         // step-2 selection within the window
  };
  std::vector<GroupPlan> groups;  // empty when l == 0
};

Plan make_plan(const GalloperParams& p, size_t variant) {
  Plan plan;
  plan.k = p.k;
  plan.l = p.l;
  plan.g = p.g;
  plan.n = p.k + p.l + p.g;
  plan.N = stripe_count(p);
  plan.pyr = codes::pyramid_generator(p.k, p.l, p.g, variant);
  {
    std::vector<size_t> rows;
    for (size_t i = 0; i < p.k; ++i) rows.push_back(i);
    for (size_t m = 0; m < p.g; ++m) rows.push_back(p.k + p.l + m);
    plan.base = plan.pyr.select_rows(rows);
  }

  plan.counts1.resize(p.k + p.g);
  for (size_t i = 0; i < p.k; ++i) {
    const Rational w = p.l == 0
                           ? p.weights[i]
                           : group_window_weight(p, i / group_size(p));
    plan.counts1[i] = static_cast<size_t>(times_n(w, plan.N));
  }
  for (size_t m = 0; m < p.g; ++m)
    plan.counts1[p.k + m] =
        static_cast<size_t>(times_n(p.weights[p.k + p.l + m], plan.N));

  std::vector<size_t> base_blocks(p.k + p.g);
  std::iota(base_blocks.begin(), base_blocks.end(), size_t{0});
  plan.sel1 = codes::sequential_selection(base_blocks, plan.counts1, plan.N);

  for (size_t j = 0; j < p.l; ++j) {
    Plan::GroupPlan gp;
    gp.window =
        static_cast<size_t>(times_n(group_window_weight(p, j), plan.N));
    gp.blocks = group_data_blocks(p, j);
    gp.blocks.push_back(p.k + j);
    if (gp.window > 0) {
      std::vector<size_t> counts;
      for (size_t b : gp.blocks)
        counts.push_back(static_cast<size_t>(times_n(p.weights[b], plan.N)));
      gp.sel = codes::sequential_selection(gp.blocks, counts, gp.window);
    } else {
      for (size_t b : gp.blocks)
        GALLOPER_CHECK(times_n(p.weights[b], plan.N) == 0);
    }
    plan.groups.push_back(std::move(gp));
  }
  return plan;
}

// ---- shared step-2 assembly helpers --------------------------------------

// Inserts local parity rows: Ĝ in final block order from the rotated
// step-1 generator (whose blocks are 0..k-1 data, k..k+g-1 global).
la::Matrix assemble_ghat(const Plan& plan, const la::Matrix& step1_rotated) {
  const size_t N = plan.N;
  la::Matrix ghat(plan.n * N, plan.k * N);
  auto copy_block_rows = [&](size_t from_block, size_t to_block) {
    for (size_t p = 0; p < N; ++p) {
      const auto src = step1_rotated.row(from_block * N + p);
      std::copy(src.begin(), src.end(), ghat.row(to_block * N + p).begin());
    }
  };
  for (size_t i = 0; i < plan.k; ++i) copy_block_rows(i, i);
  for (size_t m = 0; m < plan.g; ++m)
    copy_block_rows(plan.k + m, plan.k + plan.l + m);
  for (size_t j = 0; j < plan.l; ++j) {
    // Local parity stripe p = Σ_i c_i · (stripe p of group data block i),
    // with c_i the Pyramid split-row coefficients.
    for (size_t p = 0; p < N; ++p) {
      auto dst = ghat.row((plan.k + j) * N + p);
      for (size_t m = 0; m < plan.k / plan.l; ++m) {
        const size_t i = j * (plan.k / plan.l) + m;
        const gf::Elem c = plan.pyr.at(plan.k + j, i);
        GALLOPER_CHECK_MSG(c != 0, "split-row coefficient must be nonzero");
        const auto src = step1_rotated.row(i * N + p);
        for (size_t col = 0; col < src.size(); ++col)
          dst[col] = gf::add(dst[col], gf::mul(c, src[col]));
      }
    }
  }
  return ghat;
}

// The final chunk order: per-group step-2 selections, then the global
// blocks' step-1 data stripes (with block ids mapped to final ids).
std::vector<codes::StripeRef> final_selection(
    const Plan& plan, const std::vector<codes::StripeRef>& refs1_final) {
  std::vector<codes::StripeRef> full;
  full.reserve(plan.k * plan.N);
  for (const auto& gp : plan.groups)
    full.insert(full.end(), gp.sel.refs.begin(), gp.sel.refs.end());
  for (const auto& ref : refs1_final)
    if (ref.block >= plan.k + plan.l) full.push_back(ref);
  return full;
}

struct Rotation {
  size_t block;
  size_t window;
  size_t shift;
};

std::vector<Rotation> step2_rotations(const Plan& plan) {
  std::vector<Rotation> rotations;
  for (const auto& gp : plan.groups) {
    if (gp.window == 0) continue;
    for (size_t i = 0; i < gp.blocks.size(); ++i)
      rotations.push_back({gp.blocks[i], gp.window, gp.sel.run_start[i]});
  }
  return rotations;
}

// ---- literal method (the paper's Sec. VI matrix path) --------------------

Construction construct_literal(const GalloperParams& params,
                               const Plan& plan) {
  codes::RemappedCode rc1 =
      codes::remap_mds(plan.base, plan.N, plan.counts1);

  if (params.l == 0)
    return {std::move(rc1.generator), std::move(rc1.chunk_pos), plan.N};

  la::Matrix ghat = assemble_ghat(plan, rc1.generator);

  // Map step-1 chunk refs to final block ids (globals shift by l).
  for (auto& ref : rc1.chunk_pos)
    if (ref.block >= plan.k) ref.block += plan.l;

  std::vector<codes::StripeRef> full_sel =
      final_selection(plan, rc1.chunk_pos);
  la::Matrix gen = codes::remap_to_selection(ghat, full_sel, plan.N);
  for (const auto& rot : step2_rotations(plan)) {
    codes::rotate_block_rows(gen, rot.block, plan.N, rot.window, rot.shift);
    codes::rotate_refs(full_sel, rot.block, rot.window, rot.shift);
  }
  return {std::move(gen), std::move(full_sel), plan.N};
}

// ---- row-wise method ------------------------------------------------------

// Step 1, exploiting that stripes of different rows never mix: for each row
// p the chosen k stripes give a k×k submatrix of the BLOCK-level base, and
// the row's generator is base · inv(that submatrix).
struct Step1 {
  la::Matrix generator;                    // rotated, base block ids
  std::vector<codes::StripeRef> chunk_pos;  // rotated refs, base block ids
};

Step1 rowwise_step1(const Plan& plan) {
  const size_t N = plan.N;
  const size_t nb = plan.base.rows();  // k + g blocks
  Step1 out;
  out.generator = la::Matrix(nb * N, plan.k * N);

  // Chosen (block, chunk index) per row, in selection (= chunk) order.
  std::vector<std::vector<std::pair<size_t, size_t>>> by_row(N);
  for (size_t c = 0; c < plan.sel1.refs.size(); ++c)
    by_row[plan.sel1.refs[c].pos].push_back({plan.sel1.refs[c].block, c});

  for (size_t p = 0; p < N; ++p) {
    const auto& chosen = by_row[p];
    GALLOPER_CHECK(chosen.size() == plan.k);
    std::vector<size_t> rows(plan.k);
    for (size_t j = 0; j < plan.k; ++j) rows[j] = chosen[j].first;
    const auto inv = la::inverse(plan.base.select_rows(rows));
    GALLOPER_CHECK_MSG(inv.has_value(),
                       "row submatrix of an MDS base must be invertible");
    const la::Matrix gp = plan.base * *inv;  // (k+g) × k
    for (size_t b = 0; b < nb; ++b)
      for (size_t j = 0; j < plan.k; ++j)
        out.generator.at(b * N + p, chosen[j].second) = gp.at(b, j);
  }

  out.chunk_pos = plan.sel1.refs;
  for (size_t b = 0; b < nb; ++b) {
    codes::rotate_block_rows(out.generator, b, N, N, plan.sel1.run_start[b]);
    codes::rotate_refs(out.chunk_pos, b, N, plan.sel1.run_start[b]);
  }
  return out;
}

Construction construct_rowwise(const GalloperParams& params,
                               const Plan& plan) {
  Step1 s1 = rowwise_step1(plan);
  if (params.l == 0)
    return {std::move(s1.generator), std::move(s1.chunk_pos), plan.N};

  const size_t N = plan.N;
  la::Matrix ghat = assemble_ghat(plan, s1.generator);

  // Step-1 chunk refs in final block ids; also an index (block, pos) → old
  // chunk id for locating the columns of each (group, row) class.
  std::vector<codes::StripeRef> refs1 = s1.chunk_pos;
  for (auto& ref : refs1)
    if (ref.block >= plan.k) ref.block += plan.l;
  std::unordered_map<uint64_t, size_t> old_chunk_at;
  old_chunk_at.reserve(refs1.size());
  for (size_t c = 0; c < refs1.size(); ++c)
    old_chunk_at[refs1[c].block * (N + 1) + refs1[c].pos] = c;

  const std::vector<codes::StripeRef> full_sel =
      final_selection(plan, refs1);
  std::unordered_map<uint64_t, size_t> new_chunk_at;
  new_chunk_at.reserve(full_sel.size());
  for (size_t c = 0; c < full_sel.size(); ++c)
    new_chunk_at[full_sel[c].block * (N + 1) + full_sel[c].pos] = c;

  // T = Ĝ_S2⁻¹ in sparse form: for each old chunk, its expansion over new
  // chunks. Global chunks map to themselves; each (group, row) class is a
  // tiny (k/l)×(k/l) inverse.
  struct Term {
    size_t new_chunk;
    gf::Elem coeff;
  };
  std::vector<std::vector<Term>> t_rows(plan.k * N);
  for (const auto& ref : refs1)
    if (ref.block >= plan.k + plan.l) {
      const size_t oc = old_chunk_at.at(ref.block * (N + 1) + ref.pos);
      const size_t nc = new_chunk_at.at(ref.block * (N + 1) + ref.pos);
      t_rows[oc].push_back({nc, 1});
    }

  const size_t gsz = plan.k / plan.l;
  for (size_t j = 0; j < plan.l; ++j) {
    const auto& gp = plan.groups[j];
    if (gp.window == 0) continue;
    // Chosen refs of this group, bucketed by row.
    std::vector<std::vector<codes::StripeRef>> chosen_by_row(gp.window);
    for (const auto& ref : gp.sel.refs) chosen_by_row[ref.pos].push_back(ref);

    for (size_t p = 0; p < gp.window; ++p) {
      const auto& chosen = chosen_by_row[p];
      GALLOPER_CHECK(chosen.size() == gsz);
      // Columns of this class: the group data blocks' old chunks at row p.
      std::vector<size_t> cols(gsz);
      for (size_t m = 0; m < gsz; ++m) {
        const size_t data_block = j * gsz + m;
        cols[m] = old_chunk_at.at(data_block * (N + 1) + p);
      }
      // B[r][m]: coefficient of old chunk cols[m] in chosen stripe r.
      la::Matrix b(gsz, gsz);
      for (size_t r = 0; r < gsz; ++r) {
        const size_t blk = chosen[r].block;
        if (blk < plan.k) {
          b.at(r, blk % gsz) = 1;  // data stripe: unit row
        } else {
          for (size_t m = 0; m < gsz; ++m)
            b.at(r, m) = plan.pyr.at(plan.k + j, j * gsz + m);
        }
      }
      const auto binv = la::inverse(b);
      GALLOPER_CHECK_MSG(binv.has_value(),
                         "step-2 class submatrix must be invertible");
      for (size_t m = 0; m < gsz; ++m) {
        auto& row = t_rows[cols[m]];
        for (size_t r = 0; r < gsz; ++r) {
          const gf::Elem v = binv->at(m, r);
          if (v == 0) continue;
          const size_t nc = new_chunk_at.at(
              chosen[r].block * (N + 1) + chosen[r].pos);
          row.push_back({nc, v});
        }
      }
    }
  }
  for (const auto& row : t_rows)
    GALLOPER_CHECK_MSG(!row.empty(), "basis-change row left empty");

  // E2 = Ĝ · T, exploiting Ĝ's ≤k-sparse rows and T's ≤k/l-sparse rows.
  la::Matrix gen(plan.n * N, plan.k * N);
  for (size_t r = 0; r < ghat.rows(); ++r) {
    const auto src = ghat.row(r);
    auto dst = gen.row(r);
    for (size_t oc = 0; oc < src.size(); ++oc) {
      const gf::Elem a = src[oc];
      if (a == 0) continue;
      for (const Term& t : t_rows[oc])
        dst[t.new_chunk] = gf::add(dst[t.new_chunk], gf::mul(a, t.coeff));
    }
  }

  std::vector<codes::StripeRef> refs = full_sel;
  for (const auto& rot : step2_rotations(plan)) {
    codes::rotate_block_rows(gen, rot.block, N, rot.window, rot.shift);
    codes::rotate_refs(refs, rot.block, rot.window, rot.shift);
  }
  return {std::move(gen), std::move(refs), N};
}

}  // namespace

// True if the construction tolerates EVERY erasure of `tolerance` blocks:
// for each pattern, the surviving stripe rows must span all kN chunks.
// Exhaustive over (n choose tolerance) patterns; decodability is monotone
// in the available set, so exactly-`tolerance` erasures suffice.
bool tolerates_all(const Construction& c, size_t n, size_t tolerance) {
  const size_t N = c.n_stripes;
  std::vector<size_t> erased(tolerance);
  for (size_t i = 0; i < tolerance; ++i) erased[i] = i;
  if (tolerance == 0 || tolerance > n) return true;
  for (;;) {
    std::vector<size_t> rows;
    rows.reserve((n - tolerance) * N);
    for (size_t b = 0; b < n; ++b) {
      if (std::find(erased.begin(), erased.end(), b) != erased.end())
        continue;
      for (size_t p = 0; p < N; ++p) rows.push_back(b * N + p);
    }
    if (la::rank(c.generator.select_rows(rows)) != c.generator.cols())
      return false;
    // Next combination.
    size_t i = tolerance;
    while (i > 0 && erased[i - 1] == n - tolerance + i - 1) --i;
    if (i == 0) return true;
    ++erased[i - 1];
    for (size_t j = i; j < tolerance; ++j) erased[j] = erased[j - 1] + 1;
  }
}

size_t stripe_count(const GalloperParams& params) {
  validate(params);
  std::vector<Rational> all = params.weights;
  for (size_t j = 0; j < params.l; ++j)
    all.push_back(group_window_weight(params, j));
  return static_cast<size_t>(common_denominator(all));
}

Construction construct_galloper(const GalloperParams& params, Method method) {
  validate(params);

  // With l = 0 the result is a row-permuted symbol remapping of the
  // expanded Reed-Solomon code — exactly MDS, no validation needed.
  if (params.l == 0) {
    const Plan plan = make_plan(params, 0);
    return method == Method::kLiteral ? construct_literal(params, plan)
                                      : construct_rowwise(params, plan);
  }

  // With l > 0 the per-step stripe rotations de-align the local-parity
  // relations from the global-parity relations, and for unlucky MDS
  // coefficient sets a specific two-in-one-group erasure can become
  // undecodable (a multiplicative-order degeneracy along the rotation
  // cycle — e.g. the uniform (12,2,1) code with the default Vandermonde
  // base loses pattern {6,7}). The paper's construction implicitly assumes
  // a generic basis; we make that assumption explicit: build, verify every
  // (g+1)-erasure pattern exhaustively against the generator, and retry
  // with the next MDS base variant until the check passes. Deterministic,
  // and in practice the first or second variant succeeds.
  const size_t tolerance = params.g + 1;
  const size_t max_variants = 16;
  for (size_t variant = 0; variant < max_variants; ++variant) {
    if (params.k + params.g + 1 + variant > 256) break;
    const Plan plan = make_plan(params, variant);
    Construction c = construct_rowwise(params, plan);
    if (!tolerates_all(c, plan.n, tolerance)) continue;
    if (method == Method::kRowwise) return c;
    return construct_literal(params, plan);
  }
  GALLOPER_CHECK_MSG(false,
                     "no MDS base variant yields the required g+1 "
                     "tolerance — please report these parameters");
  return {};
}

}  // namespace galloper::core
