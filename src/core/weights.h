// Performance-aware weight assignment (Sec. IV-C and V-B of the paper).
//
// Given the measured performance p_i of the server that will store block i,
// the weight w_i ∈ [0, 1] is the fraction of block i that holds original
// data, with Σ w_i = k. Overqualified servers are "limited" by slack d_i so
// that no weight exceeds 1 (and, when l > 0, so that each local group can
// absorb its members' data): minimize Σ d_i subject to
//
//   k (p_i − d_i) ≤ Σ (p − d)                          (w_i ≤ 1)
//   (k/l)(p_i − d_i) ≤ Σ_{group(i)} (p − d)            (w_i ≤ w_g, l > 0)
//   l · Σ_{group j} (p − d) ≤ Σ (p − d)                (w_g ≤ 1, l > 0)
//   0 ≤ d_i ≤ p_i.
//
// Block order matches PyramidCode / GalloperCode: k data blocks, l local
// parity blocks, g global parity blocks; local group j = data blocks
// [j·k/l, (j+1)·k/l) plus local parity block k+j.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rational.h"

namespace galloper::core {

struct WeightSolution {
  std::vector<Rational> weights;   // final rational w_i, Σ = k
  std::vector<double> effective;   // p_i − d_i from the LP (pre-rounding)
  std::vector<int64_t> units;      // integer performance grid c_i
  double lp_objective = 0.0;       // Σ d_i
};

// Solves the LP with the simplex solver and rationalizes the result onto an
// integer grid of `resolution` units (the paper's "round up p_i − d_i"),
// then repairs any rounding-induced constraint violation so the final
// rational weights satisfy every constraint exactly.
//
// Requires perf.size() == k + l + g, every p_i > 0, and l | k when l > 0.
// `resolution` trades weight fidelity against the stripe count N (which is
// the LCM of the weight denominators); 10–20 is plenty in practice.
WeightSolution assign_weights(size_t k, size_t l, size_t g,
                              const std::vector<double>& perf,
                              int64_t resolution = 12);

// Closed-form water-filling solution of the l = 0 problem: returns the
// effective performances q_i = p_i − d_i maximizing Σ q subject to
// k·q_i ≤ Σ q and 0 ≤ q_i ≤ p_i (q_i = min(p_i, T) at the largest fixed
// point T of T = Σ min(p_i, T) / k). Cross-checked against the simplex
// path in tests.
std::vector<double> waterfill_effective(const std::vector<double>& perf,
                                        size_t k);

// Homogeneous weights w_i = k / (k + l + g).
std::vector<Rational> uniform_weights(size_t k, size_t l, size_t g);

// True if `weights` satisfies all Galloper constraints exactly
// (Σ = k, 0 ≤ w ≤ 1, and the group conditions when l > 0).
bool weights_valid(size_t k, size_t l, size_t g,
                   const std::vector<Rational>& weights);

}  // namespace galloper::core
