#include "client/load_gen.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <exception>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "client/cache.h"
#include "client/striped.h"
#include "core/galloper.h"
#include "fault/fault.h"
#include "sim/cluster.h"
#include "store/file_store.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/stats.h"

namespace galloper::client {

namespace {

// Zipf(theta) file popularity: weight (1/(i+1))^theta, drawn by inverting a
// precomputed CDF. theta = 0 degenerates to uniform.
class ZipfPicker {
 public:
  ZipfPicker(size_t n, double theta) {
    cdf_.reserve(n);
    double total = 0;
    for (size_t i = 0; i < n; ++i) {
      total += std::pow(1.0 / static_cast<double>(i + 1), theta);
      cdf_.push_back(total);
    }
    for (double& c : cdf_) c /= total;
  }

  size_t pick(Rng& rng) const {
    const double u = rng.next_double();
    const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
    return std::min<size_t>(static_cast<size_t>(it - cdf_.begin()),
                            cdf_.size() - 1);
  }

 private:
  std::vector<double> cdf_;
};

// The serial baseline the pipelined client is measured against: the same
// per-batch granularity, but each batch is a full FileStore::read_range
// call (probe + decode), strictly one at a time.
std::optional<Buffer> serial_read(store::FileStore& store, store::FileId id,
                                  size_t offset, size_t length,
                                  size_t batch_bytes) {
  Buffer out(length, 0);
  for (size_t lo = offset; lo < offset + length;) {
    // Batch boundaries at batch_bytes granularity in FILE coordinates, so
    // the batches line up with the pipelined client's.
    const size_t hi =
        std::min(offset + length, (lo / batch_bytes + 1) * batch_bytes);
    const auto part = store.read_range(id, lo, hi - lo);
    if (!part) return std::nullopt;
    std::copy(part->begin(), part->end(), out.begin() + (lo - offset));
    lo = hi;
  }
  return out;
}

}  // namespace

LoadGenResult run_load(const LoadGenOptions& opt) {
  GALLOPER_CHECK(opt.files > 0 && opt.clients > 0 && opt.chunk_bytes > 0);
  core::GalloperCode code(opt.k, opt.l, opt.g);
  const size_t num_chunks = code.engine().num_chunks();
  const size_t file_bytes = num_chunks * opt.chunk_bytes;
  const size_t batch_bytes = opt.batch_chunks * opt.chunk_bytes;

  // Cache and admission plumbing: by default the run shares the process
  // globals (so the bench measures the shipped configuration); tests and
  // sweeps pin private instances for isolation. Declared BEFORE the store —
  // an attached cache must outlive it (~FileStore drops its entries).
  std::unique_ptr<BlockCache> private_cache;
  if (opt.cache_mib >= 0)
    private_cache = std::make_unique<BlockCache>(
        static_cast<size_t>(opt.cache_mib) << 20);
  std::unique_ptr<AdmissionControl> private_gate;
  if (opt.admit_limit > 0)
    private_gate = std::make_unique<AdmissionControl>(opt.admit_limit);

  sim::Simulation sim;
  sim::Cluster cluster(sim, code.num_blocks() + 2, sim::ServerSpec{});
  store::FileStore store(cluster, code);
  if (private_cache) store.set_block_cache(private_cache.get());
  BlockCache* cache = store.block_cache();

  fault::FaultInjector injector(opt.seed ^ 0x10adul);
  if (opt.degraded) {
    injector.set_read_latency(opt.stall_p, opt.stall_s);
    store.set_fault_injector(&injector);
  }

  // Data set + in-memory mirror (ground truth for bit-identity checks).
  Rng setup_rng(opt.seed);
  std::vector<Buffer> mirror;
  WriterOptions wopt;
  wopt.admission = private_gate.get();
  StripedWriter writer(store, wopt);
  LoadGenResult result;
  for (size_t f = 0; f < opt.files; ++f) {
    Buffer file(file_bytes, 0);
    for (auto& b : file) b = static_cast<uint8_t>(setup_rng.next_u64());
    if (opt.pipelined) {
      writer.write(ConstByteSpan(file));
    } else {
      store.write(ConstByteSpan(file));
    }
    result.bytes_written += file_bytes;
    mirror.push_back(std::move(file));
  }

  // Per-file harness locks: readers shared (mirror must not change under a
  // verify), updates and chaos exclusive. The STORE is already
  // thread-safe; these only keep the mirror comparison atomic.
  std::vector<std::unique_ptr<std::shared_mutex>> file_mu;
  for (size_t f = 0; f < opt.files; ++f)
    file_mu.push_back(std::make_unique<std::shared_mutex>());

  const ZipfPicker picker(opt.files, opt.zipf_theta);
  const store::FileStore::ReadStats stats0 = store.read_stats();
  const ClientStats client0 = client_stats();
  const BlockCacheStats cache0 = cache->stats();

  util::LatencyHistogram latency;
  std::atomic<uint64_t> reads{0}, updates{0}, errors{0}, bytes_read{0},
      bytes_updated{0};
  std::atomic<uint64_t> mirror_mismatches{0};
  std::atomic<bool> done{false};

  const auto client_loop = [&](Rng rng) {
    ReaderOptions ropt;
    ropt.batch_chunks = opt.batch_chunks;
    ropt.admission = private_gate.get();
    StripedReader reader(store, ropt);
    for (size_t op = 0; op < opt.ops_per_client; ++op) {
      const size_t f = picker.pick(rng);
      const bool do_update =
          opt.update_fraction > 0 && rng.next_double() < opt.update_fraction;
      const auto t0 = std::chrono::steady_clock::now();
      if (do_update) {
        // Chunk-aligned in-place update of one random chunk.
        const size_t c = rng.next_below(num_chunks);
        Buffer data(opt.chunk_bytes, 0);
        for (auto& b : data) b = static_cast<uint8_t>(rng.next_u64());
        std::unique_lock<std::shared_mutex> lock(*file_mu[f]);
        try {
          store.update_range(f, c * opt.chunk_bytes, ConstByteSpan(data));
          std::copy(data.begin(), data.end(),
                    mirror[f].begin() + c * opt.chunk_bytes);
          updates.fetch_add(1, std::memory_order_relaxed);
          bytes_updated.fetch_add(data.size(), std::memory_order_relaxed);
        } catch (const CheckError&) {
          // Degraded stripe: updates are refused by design — repair first.
          errors.fetch_add(1, std::memory_order_relaxed);
        }
      } else {
        const size_t off = rng.next_below(file_bytes);
        const size_t len = 1 + rng.next_below(file_bytes - off);
        std::shared_lock<std::shared_mutex> lock(*file_mu[f]);
        const auto got =
            opt.pipelined
                ? reader.read_range(f, off, len)
                : serial_read(store, f, off, len, batch_bytes);
        GALLOPER_CHECK_MSG(got.has_value(),
                           "load-gen read lost data: file " << f);
        if (opt.verify &&
            !std::equal(got->begin(), got->end(), mirror[f].begin() + off))
          mirror_mismatches.fetch_add(1, std::memory_order_relaxed);
        reads.fetch_add(1, std::memory_order_relaxed);
        bytes_read.fetch_add(len, std::memory_order_relaxed);
      }
      latency.record_ns(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count()));
    }
  };

  // Chaos: flip a byte in a live block of a random healthy file every few
  // milliseconds — concurrent readers must detect (CRC), decode around,
  // and auto-repair it. Only files with no lost blocks are touched, so the
  // stripe never exceeds the code's correction budget.
  std::thread chaos;
  Rng chaos_rng = setup_rng.fork();
  if (opt.corruptions > 0) {
    chaos = std::thread([&]() mutable {
      for (size_t i = 0; i < opt.corruptions && !done.load(); ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        const size_t f = chaos_rng.next_below(opt.files);
        std::unique_lock<std::shared_mutex> lock(*file_mu[f]);
        if (!store.lost_blocks(f).empty()) continue;
        const size_t b = chaos_rng.next_below(code.num_blocks());
        store.corrupt_block(f, b, chaos_rng.next_below(store.block_bytes(f)));
      }
    });
  }

  const auto wall0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> thread_errors(opt.clients);
  Rng fork_rng(opt.seed * 7919 + 17);
  for (size_t c = 0; c < opt.clients; ++c) {
    threads.emplace_back([&, c, rng = fork_rng.fork()]() mutable {
      try {
        client_loop(std::move(rng));
      } catch (...) {
        thread_errors[c] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  result.wall_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - wall0)
                      .count();
  done.store(true);
  if (chaos.joinable()) chaos.join();
  for (const std::exception_ptr& e : thread_errors)
    if (e) std::rethrow_exception(e);

  const store::FileStore::ReadStats stats1 = store.read_stats();
  const ClientStats client1 = client_stats();
  result.reads = reads.load();
  result.updates = updates.load();
  result.errors = errors.load();
  result.ops = result.reads + result.updates + result.errors;
  result.bytes_read = bytes_read.load();
  result.bytes_written += bytes_updated.load();
  result.ops_per_s = result.wall_s > 0 ? result.ops / result.wall_s : 0;
  result.mib_per_s =
      result.wall_s > 0
          ? static_cast<double>(result.bytes_read) / (1 << 20) / result.wall_s
          : 0;
  result.p50_s = latency.quantile_s(0.50);
  result.p99_s = latency.quantile_s(0.99);
  result.p999_s = latency.quantile_s(0.999);
  result.degraded_reads = stats1.degraded_reads - stats0.degraded_reads;
  result.crc_failures = stats1.crc_failures - stats0.crc_failures;
  result.auto_repairs = stats1.auto_repairs - stats0.auto_repairs;
  result.client_fallbacks = client1.fallbacks - client0.fallbacks;
  const BlockCacheStats cache1 = cache->stats();
  result.cache_hits = cache1.hits - cache0.hits;
  result.cache_misses = cache1.misses - cache0.misses;
  result.cache_hit_bytes = cache1.hit_bytes - cache0.hit_bytes;
  const uint64_t lookups = result.cache_hits + result.cache_misses;
  result.cache_hit_rate =
      lookups > 0 ? static_cast<double>(result.cache_hits) /
                        static_cast<double>(lookups)
                  : 0;
  result.mirror_mismatches = mirror_mismatches.load();
  result.bit_identical = result.mirror_mismatches == 0;
  return result;
}

std::string format_result(const LoadGenResult& r) {
  std::ostringstream os;
  os << "ops " << r.ops << " (reads " << r.reads << ", updates " << r.updates
     << ", refused " << r.errors << ") in " << r.wall_s << " s\n"
     << "throughput " << r.ops_per_s << " ops/s, " << r.mib_per_s
     << " MiB/s read\n"
     << "latency p50 " << r.p50_s * 1e3 << " ms, p99 " << r.p99_s * 1e3
     << " ms, p99.9 " << r.p999_s * 1e3 << " ms\n"
     << "faults: degraded reads " << r.degraded_reads << ", crc failures "
     << r.crc_failures << ", auto repairs " << r.auto_repairs
     << ", client fallbacks " << r.client_fallbacks << "\n"
     << "cache: hits " << r.cache_hits << ", misses " << r.cache_misses
     << " (" << r.cache_hit_rate * 100 << "% hit rate, "
     << static_cast<double>(r.cache_hit_bytes) / (1 << 20) << " MiB served)\n"
     << "bit identical: " << (r.bit_identical ? "yes" : "NO")
     << " (mismatches " << r.mirror_mismatches << ")";
  return os.str();
}

}  // namespace galloper::client
