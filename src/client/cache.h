// BlockCache: a process-wide, sharded, size-bounded cache of VERIFIED
// whole store blocks, keyed by (store uid, file, block) plus the block's
// GENERATION at verification time.
//
// Why whole blocks and why generations:
//  - Entries are inserted only by readers that just CRC-checked the bytes
//    against the store's write-time checksum, so a cache hit is as
//    trustworthy as a verified read — no re-CRC on the hot path.
//  - FileStore keeps a per-block generation counter and bumps it on every
//    mutation or quarantine (update_range, repair install, CRC quarantine,
//    fail_server). get() returns bytes only when the caller's CURRENT
//    generation matches the one stored with the entry; a mismatch drops
//    the entry and reports a miss. Stale bytes are therefore structurally
//    unservable: the store bumps before any new content is visible, and
//    entries are keyed by the generation that was current when the bytes
//    were verified. (Silent corruption deliberately does NOT bump — the
//    cached copy still holds the true logical content, which is exactly
//    what verified reads of a corrupt block reconstruct.)
//  - store uid (a process-unique counter, not the address) prevents a
//    destroyed store's entries from aliasing a new store's files.
//
// Replacement is a segmented LRU per shard: new entries land in a small
// probationary segment and only a HIT promotes them to the protected
// segment (capped at kProtectedFraction of the shard), so one cold scan
// churns probation instead of evicting the hot Zipf head. Shard count is
// a power of two (GALLOPER_CLIENT_CACHE_SHARDS, default 16); capacity is
// GALLOPER_CLIENT_CACHE=off|<MiB>, default 64. Entry storage is the
// pool-backed Buffer, so cached blocks recycle through util::BufferPool
// like every other data-path buffer.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "util/bytes.h"

namespace galloper::client {

struct BlockCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;          // lookups that found nothing servable
  uint64_t insertions = 0;
  uint64_t evictions = 0;       // capacity evictions
  uint64_t invalidations = 0;   // generation-mismatch drops + explicit drops
  uint64_t hit_bytes = 0;       // sum of block sizes handed out on hits
  uint64_t resident_bytes = 0;
  uint64_t resident_entries = 0;
  uint64_t capacity_bytes = 0;
  size_t shards = 0;
  double hit_rate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

class BlockCache {
 public:
  // Cached blocks are handed out by shared_ptr so an entry evicted or
  // invalidated mid-decode stays alive for the reader holding it.
  using EntryRef = std::shared_ptr<const Buffer>;

  // capacity_bytes == 0 disables the cache (get misses nothing — it
  // returns null without counting; put is a no-op). `shards` is rounded
  // up to a power of two; 0 → 16.
  explicit BlockCache(size_t capacity_bytes, size_t shards = 0);

  BlockCache(const BlockCache&) = delete;
  BlockCache& operator=(const BlockCache&) = delete;

  // Process-wide instance: GALLOPER_CLIENT_CACHE=off|0 disables, <MiB>
  // sizes it (default 64 MiB); GALLOPER_CLIENT_CACHE_SHARDS overrides the
  // shard count (clamped to [1, 256], rounded up to a power of two).
  static BlockCache& global();

  bool enabled() const { return capacity_ > 0; }
  size_t capacity_bytes() const { return capacity_; }
  size_t shard_count() const { return shard_count_; }

  // Bytes for (store_uid, file, block) if cached AND the entry's stored
  // generation equals `generation` (the caller reads the current one from
  // the store under its lock). A generation mismatch drops the stale
  // entry (counted as an invalidation) and misses.
  EntryRef get(uint64_t store_uid, uint64_t file, uint64_t block,
               uint64_t generation);

  // Inserts verified block bytes observed at `generation`. The caller
  // must have CRC-verified `bytes` against the store checksum read under
  // the same lock hold as the generation. Replaces any existing entry for
  // the key in place (keeping its segment and recency).
  void put(uint64_t store_uid, uint64_t file, uint64_t block,
           uint64_t generation, EntryRef bytes);

  // Explicitly drops one block's entry (the store calls this when it
  // bumps the generation, so memory is reclaimed eagerly rather than
  // waiting for a mismatch-on-get).
  void invalidate(uint64_t store_uid, uint64_t file, uint64_t block);

  // Cumulative counters plus current residency. Safe while readers run.
  BlockCacheStats stats() const;

  // Drops every entry (counters keep accumulating). Test hook.
  void clear();

 private:
  struct Key {
    uint64_t store_uid;
    uint64_t file;
    uint64_t block;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const;
  };
  struct Entry {
    uint64_t generation = 0;
    EntryRef data;
    bool protected_seg = false;
    std::list<Key>::iterator pos;  // position in its segment list
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<Key, Entry, KeyHash> map;
    // Both lists are MRU-at-front.
    std::list<Key> probation;
    std::list<Key> protect;
    size_t bytes = 0;
    size_t protected_bytes = 0;
  };

  Shard& shard_of(const Key& key);
  // Erases the entry `it` points at, adjusting shard + global accounting.
  void erase_locked(Shard& shard, std::unordered_map<Key, Entry,
                                                     KeyHash>::iterator it);
  // Evicts LRU entries (probation tail first, then protected tail) until
  // the shard can hold `incoming` more bytes.
  void make_room_locked(Shard& shard, size_t incoming);

  const size_t capacity_;
  const size_t shard_count_;
  const size_t shard_capacity_;
  std::unique_ptr<Shard[]> shards_;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> insertions_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> invalidations_{0};
  std::atomic<uint64_t> hit_bytes_{0};
  std::atomic<uint64_t> resident_bytes_{0};
  std::atomic<uint64_t> resident_entries_{0};
};

// Hands out process-unique ids for cache keying (FileStore takes one per
// instance, so entries from a destroyed store can never alias a new one).
uint64_t next_cache_uid();

}  // namespace galloper::client
