#include "client/cache.h"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <string>

namespace galloper::client {

namespace {

// kProtectedFraction of each shard is reserved for entries that have HIT
// at least once; the remainder is the probationary segment a cold scan
// churns through. 80/20 keeps the hot head pinned while leaving real
// admission room.
constexpr double kProtectedFraction = 0.8;

constexpr uint64_t mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

size_t default_shards() {
  size_t shards = 16;
  if (const char* env = std::getenv("GALLOPER_CLIENT_CACHE_SHARDS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) shards = static_cast<size_t>(std::min(parsed, 256l));
  }
  return shards;
}

}  // namespace

size_t BlockCache::KeyHash::operator()(const Key& k) const {
  return static_cast<size_t>(
      mix64(mix64(k.store_uid) ^ mix64(k.file * 0x9e3779b97f4a7c15ull + 1) ^
            k.block));
}

BlockCache::BlockCache(size_t capacity_bytes, size_t shards)
    : capacity_(capacity_bytes),
      shard_count_(std::bit_ceil(std::max<size_t>(
          1, shards == 0 ? default_shards() : std::min<size_t>(shards, 256)))),
      shard_capacity_(capacity_ == 0
                          ? 0
                          : std::max<size_t>(1, capacity_ / shard_count_)),
      shards_(capacity_ == 0 ? nullptr : new Shard[shard_count_]) {}

BlockCache& BlockCache::global() {
  static BlockCache* cache = [] {
    size_t mib = 64;
    if (const char* env = std::getenv("GALLOPER_CLIENT_CACHE")) {
      const std::string value(env);
      if (value == "off" || value == "OFF") {
        mib = 0;
      } else {
        const long parsed = std::strtol(env, nullptr, 10);
        mib = parsed > 0 ? static_cast<size_t>(std::min(parsed, 1l << 20)) : 0;
      }
    }
    return new BlockCache(mib << 20);
  }();
  return *cache;
}

BlockCache::Shard& BlockCache::shard_of(const Key& key) {
  // Re-scramble the bucket hash so shard choice and bucket choice are not
  // the same low bits.
  const size_t h = mix64(KeyHash{}(key));
  return shards_[h & (shard_count_ - 1)];
}

void BlockCache::erase_locked(
    Shard& shard,
    std::unordered_map<Key, Entry, KeyHash>::iterator it) {
  Entry& e = it->second;
  const size_t size = e.data->size();
  if (e.protected_seg) {
    shard.protected_bytes -= size;
    shard.protect.erase(e.pos);
  } else {
    shard.probation.erase(e.pos);
  }
  shard.bytes -= size;
  resident_bytes_.fetch_sub(size, std::memory_order_relaxed);
  resident_entries_.fetch_sub(1, std::memory_order_relaxed);
  shard.map.erase(it);
}

void BlockCache::make_room_locked(Shard& shard, size_t incoming) {
  while (shard.bytes + incoming > shard_capacity_) {
    std::list<Key>* victims = &shard.probation;
    if (victims->empty()) victims = &shard.protect;
    if (victims->empty()) break;
    erase_locked(shard, shard.map.find(victims->back()));
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

BlockCache::EntryRef BlockCache::get(uint64_t store_uid, uint64_t file,
                                     uint64_t block, uint64_t generation) {
  if (!enabled()) return nullptr;
  if (resident_entries_.load(std::memory_order_relaxed) == 0) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  const Key key{store_uid, file, block};
  Shard& shard = shard_of(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  Entry& e = it->second;
  if (e.generation != generation) {
    // Older entry: the store mutated or quarantined this block after it
    // was verified — drop it, the bytes describe a world that no longer
    // exists. NEWER entry: the CALLER's generation snapshot is behind (a
    // mid-stream reader racing an update); the entry is the fresher one,
    // so miss without evicting it.
    if (e.generation < generation) {
      erase_locked(shard, it);
      invalidations_.fetch_add(1, std::memory_order_relaxed);
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  const size_t size = e.data->size();
  if (e.protected_seg) {
    shard.protect.splice(shard.protect.begin(), shard.protect, e.pos);
  } else {
    // First hit promotes out of probation; demote the protected tail back
    // to probation's front (NOT eviction) while over the protected cap.
    shard.probation.erase(e.pos);
    shard.protect.push_front(key);
    e.pos = shard.protect.begin();
    e.protected_seg = true;
    shard.protected_bytes += size;
    const size_t protected_cap = static_cast<size_t>(
        static_cast<double>(shard_capacity_) * kProtectedFraction);
    while (shard.protected_bytes > protected_cap &&
           shard.protect.size() > 1) {
      auto demote = shard.map.find(shard.protect.back());
      Entry& d = demote->second;
      shard.protect.pop_back();
      shard.probation.push_front(demote->first);
      d.pos = shard.probation.begin();
      d.protected_seg = false;
      shard.protected_bytes -= d.data->size();
    }
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  hit_bytes_.fetch_add(size, std::memory_order_relaxed);
  return e.data;
}

void BlockCache::put(uint64_t store_uid, uint64_t file, uint64_t block,
                     uint64_t generation, EntryRef bytes) {
  if (!enabled() || bytes == nullptr) return;
  const size_t size = bytes->size();
  if (size == 0 || size > shard_capacity_) return;  // uncacheable
  const Key key{store_uid, file, block};
  Shard& shard = shard_of(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    // Refresh in place, keeping segment membership and recency.
    Entry& e = it->second;
    const size_t old = e.data->size();
    shard.bytes += size - old;
    if (e.protected_seg) shard.protected_bytes += size - old;
    resident_bytes_.fetch_add(size, std::memory_order_relaxed);
    resident_bytes_.fetch_sub(old, std::memory_order_relaxed);
    e.generation = generation;
    e.data = std::move(bytes);
    insertions_.fetch_add(1, std::memory_order_relaxed);
    make_room_locked(shard, 0);
    return;
  }
  make_room_locked(shard, size);
  shard.probation.push_front(key);
  auto [pos, inserted] = shard.map.emplace(
      key, Entry{generation, std::move(bytes), false, shard.probation.begin()});
  (void)inserted;
  shard.bytes += size;
  resident_bytes_.fetch_add(size, std::memory_order_relaxed);
  resident_entries_.fetch_add(1, std::memory_order_relaxed);
  insertions_.fetch_add(1, std::memory_order_relaxed);
}

void BlockCache::invalidate(uint64_t store_uid, uint64_t file,
                            uint64_t block) {
  if (!enabled()) return;
  if (resident_entries_.load(std::memory_order_relaxed) == 0) return;
  const Key key{store_uid, file, block};
  Shard& shard = shard_of(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) return;
  erase_locked(shard, it);
  invalidations_.fetch_add(1, std::memory_order_relaxed);
}

BlockCacheStats BlockCache::stats() const {
  BlockCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.insertions = insertions_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.invalidations = invalidations_.load(std::memory_order_relaxed);
  s.hit_bytes = hit_bytes_.load(std::memory_order_relaxed);
  s.resident_bytes = resident_bytes_.load(std::memory_order_relaxed);
  s.resident_entries = resident_entries_.load(std::memory_order_relaxed);
  s.capacity_bytes = capacity_;
  s.shards = shard_count_;
  return s;
}

void BlockCache::clear() {
  if (!enabled()) return;
  for (size_t i = 0; i < shard_count_; ++i) {
    Shard& shard = shards_[i];
    std::lock_guard<std::mutex> lock(shard.mu);
    while (!shard.map.empty()) erase_locked(shard, shard.map.begin());
  }
}

uint64_t next_cache_uid() {
  static std::atomic<uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace galloper::client
