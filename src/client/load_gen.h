// Closed-loop multi-client load generator over the striped client.
//
// N client threads issue reads (and optionally chunk-aligned updates)
// against one shared FileStore, each waiting for its own op to complete
// before issuing the next (closed loop — offered load tracks service rate,
// so latency quantiles measure the SYSTEM, not a queue of our own making).
// File popularity is uniform or Zipf(theta); a degraded mode attaches a
// FaultInjector with latency spikes and a chaos thread that corrupts live
// blocks mid-run, exercising hedged fetches, session fallbacks, and
// read-triggered auto-repair under concurrency.
//
// Every read is verified against an in-memory mirror of the written files
// (bit_identical in the result), so the throughput/latency numbers are only
// reported for runs whose bytes were right.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace galloper::client {

struct LoadGenOptions {
  // Code shape and data set.
  size_t k = 4, l = 2, g = 2;
  uint64_t seed = 1;
  size_t files = 6;
  size_t chunk_bytes = size_t{8} << 10;

  // Traffic.
  size_t clients = 4;
  size_t ops_per_client = 40;
  double zipf_theta = 0;       // 0 = uniform popularity
  double update_fraction = 0;  // fraction of ops that are in-place updates

  // Fault regime (degraded mode).
  bool degraded = false;
  double stall_p = 0.25;    // per-fetch injected latency probability
  double stall_s = 0.002;   // injected stall length (wall seconds)
  size_t corruptions = 0;   // blocks the chaos thread flips mid-run

  // Client plumbing.
  bool pipelined = true;    // false = direct FileStore::read_range per batch
  size_t batch_chunks = 4;
  bool verify = true;       // check every read against the mirror
  // Client block cache for the run's store: -1 = the process-wide cache
  // (GALLOPER_CLIENT_CACHE), 0 = off (a private disabled cache — fault
  // accounting tests use this so corruptions are actually probed), > 0 = a
  // private cache of that many MiB.
  int cache_mib = -1;
  // Admission gate: 0 = the process-wide gate (GALLOPER_CLIENT_ADMIT),
  // > 0 = a private gate with this limit (the --sweep-admit bench).
  size_t admit_limit = 0;
};

struct LoadGenResult {
  // Offered work.
  uint64_t ops = 0;
  uint64_t reads = 0;
  uint64_t updates = 0;
  uint64_t errors = 0;  // update attempts refused on a degraded stripe

  // Throughput.
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  double wall_s = 0;
  double ops_per_s = 0;
  double mib_per_s = 0;  // read payload

  // Latency quantiles over per-op wall time (log2-ns histogram upper
  // bounds, same math as io::AsyncIo's ledger).
  double p50_s = 0;
  double p99_s = 0;
  double p999_s = 0;

  // Fault accounting (store counters observed over the run).
  uint64_t degraded_reads = 0;
  uint64_t crc_failures = 0;
  uint64_t auto_repairs = 0;
  uint64_t client_fallbacks = 0;

  // Block-cache accounting (deltas of the cache in effect over the run).
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_hit_bytes = 0;
  double cache_hit_rate = 0;

  uint64_t mirror_mismatches = 0;     // verified reads that differed
  bool bit_identical = true;          // mirror_mismatches == 0
};

LoadGenResult run_load(const LoadGenOptions& opt);

std::string format_result(const LoadGenResult& r);

}  // namespace galloper::client
