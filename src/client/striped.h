// Pipelined striped client: StripedReader / StripedWriter stream a file
// through fetch→decode→deliver (resp. slice→encode→assemble) stages over
// rt::BoundedQueue, so the next batch's block fetches (and their injected
// stalls) overlap the current batch's decode instead of serializing.
//
// Why a client layer wins over per-call FileStore reads:
//  - ONE verified-read session per stream (FileStore::begin_verified_read)
//    replaces a full CRC probe of every block per read_range call — the
//    per-batch cost drops to fetching exactly the byte ranges the decode
//    plan touches (CodecPlan::row_sources), via fetch_block_pieces;
//  - batches ride a sliding window of hedged FetchSets (queue_depth deep),
//    so slow helpers stall the window, not the stream;
//  - the decode executes the SESSION plan's rows directly (plan_decode_fast
//    keyed by the session's clean set + CodecPlan::run_row), which is the
//    exact schedule FileStore::read_range runs — pipelined bytes are
//    bit-identical to direct ones by construction;
//  - AdmissionControl caps how many clients occupy the shared AsyncIo pool
//    at once, so N clients queue at the door instead of convoying all
//    their fetches into one saturated pool.
//
// Staleness: a session's clean set is a snapshot. If a concurrent reader
// quarantines a block mid-stream, fetch_block_pieces reports it and the
// reader falls back to plain FileStore::read_range for that call (counted
// in ClientStats::fallbacks) — correctness never depends on the snapshot.
//
// Caching: when the store has a client::BlockCache attached (the default
// process-wide one), read_range tries FileStore::read_range_cached FIRST —
// a range fully covered by current-generation verified entries is served
// with no session, no admission ticket, and no I/O pool — and each
// pipeline batch consults the cache per plan slot, fetching only the
// missing blocks (whole blocks, CRC-verified against the stored checksum
// before insertion, so future hits are as trustworthy as verified reads).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <vector>

#include "io/async.h"
#include "store/file_store.h"
#include "util/bytes.h"
#include "util/stats.h"

namespace galloper::client {

// Counting-semaphore admission gate shared by all clients of one process
// (or a private instance per test). admit() blocks while `limit` tickets
// are out; the RAII Ticket releases on destruction.
class AdmissionControl {
 public:
  explicit AdmissionControl(size_t limit);

  AdmissionControl(const AdmissionControl&) = delete;
  AdmissionControl& operator=(const AdmissionControl&) = delete;

  // Process-wide gate: GALLOPER_CLIENT_ADMIT when set to a positive
  // integer (clamped to [1, 1024]), else 8 — enough concurrent streams to
  // keep a small I/O pool busy without convoying.
  static AdmissionControl& global();

  class Ticket {
   public:
    Ticket(Ticket&& o) noexcept : ac_(o.ac_) { o.ac_ = nullptr; }
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;
    Ticket& operator=(Ticket&&) = delete;
    ~Ticket();

   private:
    friend class AdmissionControl;
    explicit Ticket(AdmissionControl* ac) : ac_(ac) {}
    AdmissionControl* ac_;
  };

  // Blocks until a slot frees up.
  Ticket admit();

  struct Stats {
    uint64_t admitted = 0;  // tickets handed out
    uint64_t waited = 0;    // admissions that had to block
    size_t in_flight = 0;
    size_t peak = 0;
    size_t limit = 0;
  };
  Stats stats() const;

 private:
  void release();

  const size_t limit_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  size_t in_flight_ = 0;
  size_t peak_ = 0;
  uint64_t admitted_ = 0;
  uint64_t waited_ = 0;
};

// Process-wide client counters (all StripedReader/StripedWriter instances
// share them, like the AsyncIo ledger) — snapshotted for --stats and the
// load generator.
struct ClientStats {
  uint64_t reads = 0;          // pipelined read_range calls
  uint64_t writes = 0;         // pipelined write calls
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  uint64_t batches = 0;        // fetch→decode batches processed
  uint64_t fallbacks = 0;      // stale sessions retried via direct read
  uint64_t cache_reads = 0;    // reads served entirely from the block cache
};
ClientStats client_stats();

// Shared log2-ns histogram of whole-call client latencies (read_range /
// write), feeding the load generator's p50/p99/p999.
util::LatencyHistogram& client_latency_histogram();

struct ReaderOptions {
  // Stripe chunks per pipeline batch (per-batch fetch/decode granularity).
  size_t batch_chunks = 4;
  // Stage queue capacity AND the fetch window depth (in-flight batch
  // FetchSets). 0 → rt::queue_depth() (GALLOPER_QUEUE_DEPTH).
  size_t queue_depth = 0;
  // null → AdmissionControl::global().
  AdmissionControl* admission = nullptr;
};

class StripedReader {
 public:
  explicit StripedReader(store::FileStore& store, ReaderOptions opt = {});

  // Pipelined equivalent of FileStore::read_range — same bytes, same
  // nullopt-when-unreconstructable semantics. Thread-safe (stateless
  // between calls beyond the shared counters).
  std::optional<Buffer> read_range(store::FileId id, size_t offset,
                                   size_t length);

 private:
  std::optional<Buffer> read_pipelined(store::FileId id, size_t offset,
                                       size_t length);

  store::FileStore& store_;
  ReaderOptions opt_;
};

struct WriterOptions {
  // Intra-chunk bytes encoded per pipeline slice. Each slice encodes a
  // (num_chunks × slice) sub-file whose blocks are byte-columns of the
  // full encode (the GF kernels are bytewise), so slicing never changes
  // the stored bytes.
  size_t slice_bytes = size_t{64} << 10;
  // 0 → rt::queue_depth().
  size_t queue_depth = 0;
  // null → AdmissionControl::global().
  AdmissionControl* admission = nullptr;
};

class StripedWriter {
 public:
  explicit StripedWriter(store::FileStore& store, WriterOptions opt = {});

  // Pipelined equivalent of FileStore::write — bit-identical stored blocks
  // and checksums, identical injector write-fault schedule.
  store::FileId write(ConstByteSpan file);

 private:
  store::FileStore& store_;
  WriterOptions opt_;
};

}  // namespace galloper::client
