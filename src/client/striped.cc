#include "client/striped.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <utility>

#include "client/cache.h"
#include "codes/engine.h"
#include "codes/plan.h"
#include "fault/fault.h"
#include "io/fetch.h"
#include "rt/queue.h"
#include "util/check.h"
#include "util/crc32c.h"

namespace galloper::client {

namespace {

// Thrown when a session's clean-set snapshot went stale mid-stream (a
// concurrent reader quarantined a block the plan reads). The caller falls
// back to direct FileStore::read_range, which re-verifies from scratch.
struct SessionInvalid : std::runtime_error {
  SessionInvalid() : std::runtime_error("client read session went stale") {}
};

struct ClientCounters {
  std::atomic<uint64_t> reads{0}, writes{0};
  std::atomic<uint64_t> bytes_read{0}, bytes_written{0};
  std::atomic<uint64_t> batches{0}, fallbacks{0};
  std::atomic<uint64_t> cache_reads{0};
};

ClientCounters& counters() {
  static ClientCounters c;
  return c;
}

}  // namespace

// ---- AdmissionControl ----------------------------------------------------

AdmissionControl::AdmissionControl(size_t limit) : limit_(limit) {
  GALLOPER_CHECK(limit_ > 0);
}

AdmissionControl& AdmissionControl::global() {
  static AdmissionControl* gate = [] {
    size_t limit = 8;
    if (const char* env = std::getenv("GALLOPER_CLIENT_ADMIT")) {
      const long n = std::strtol(env, nullptr, 10);
      if (n >= 1) limit = std::min<size_t>(static_cast<size_t>(n), 1024);
    }
    return new AdmissionControl(limit);  // leaked: outlives static dtors
  }();
  return *gate;
}

AdmissionControl::Ticket::~Ticket() {
  if (ac_) ac_->release();
}

AdmissionControl::Ticket AdmissionControl::admit() {
  std::unique_lock<std::mutex> lock(mu_);
  if (in_flight_ >= limit_) {
    ++waited_;
    cv_.wait(lock, [&] { return in_flight_ < limit_; });
  }
  ++in_flight_;
  ++admitted_;
  peak_ = std::max(peak_, in_flight_);
  return Ticket(this);
}

void AdmissionControl::release() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --in_flight_;
  }
  cv_.notify_one();
}

AdmissionControl::Stats AdmissionControl::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.admitted = admitted_;
  s.waited = waited_;
  s.in_flight = in_flight_;
  s.peak = peak_;
  s.limit = limit_;
  return s;
}

// ---- process-wide client stats -------------------------------------------

ClientStats client_stats() {
  ClientStats s;
  const ClientCounters& c = counters();
  s.reads = c.reads.load(std::memory_order_relaxed);
  s.writes = c.writes.load(std::memory_order_relaxed);
  s.bytes_read = c.bytes_read.load(std::memory_order_relaxed);
  s.bytes_written = c.bytes_written.load(std::memory_order_relaxed);
  s.batches = c.batches.load(std::memory_order_relaxed);
  s.fallbacks = c.fallbacks.load(std::memory_order_relaxed);
  s.cache_reads = c.cache_reads.load(std::memory_order_relaxed);
  return s;
}

util::LatencyHistogram& client_latency_histogram() {
  static util::LatencyHistogram* hist = new util::LatencyHistogram();
  return *hist;
}

// ---- StripedReader -------------------------------------------------------

StripedReader::StripedReader(store::FileStore& store, ReaderOptions opt)
    : store_(store), opt_(opt) {
  GALLOPER_CHECK(opt_.batch_chunks > 0);
}

std::optional<Buffer> StripedReader::read_range(store::FileId id,
                                                size_t offset, size_t length) {
  const auto t0 = std::chrono::steady_clock::now();
  const auto record = [&] {
    client_latency_histogram().record_ns(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count()));
  };
  // Cache-first: a range fully covered by current-generation verified
  // entries skips the admission gate too — a hot-head hit does no I/O, so
  // making it queue for a pool ticket would throttle exactly the traffic
  // the cache exists to absorb.
  if (auto cached = store_.read_range_cached(id, offset, length)) {
    counters().reads.fetch_add(1, std::memory_order_relaxed);
    counters().cache_reads.fetch_add(1, std::memory_order_relaxed);
    counters().bytes_read.fetch_add(length, std::memory_order_relaxed);
    record();
    return cached;
  }
  AdmissionControl& gate =
      opt_.admission ? *opt_.admission : AdmissionControl::global();
  const AdmissionControl::Ticket ticket = gate.admit();
  counters().reads.fetch_add(1, std::memory_order_relaxed);
  counters().bytes_read.fetch_add(length, std::memory_order_relaxed);
  try {
    auto out = read_pipelined(id, offset, length);
    record();
    return out;
  } catch (const SessionInvalid&) {
    // The snapshot went stale (concurrent quarantine). The nofault direct
    // read re-verifies everything from scratch — strictly slower, always
    // right — with the fault schedule PINNED: this call already drew (and
    // served) its schedule through the session + batch fetches above, and
    // re-drawing for the retry would make the process-wide seeded fault
    // sequence depend on whether the race hit, so degraded chaos runs
    // would stop replaying deterministically.
    counters().fallbacks.fetch_add(1, std::memory_order_relaxed);
    auto out = store_.read_range_nofault(id, offset, length);
    record();
    return out;
  }
}

namespace {

// One pipeline batch: delivers file bytes [lo, hi) covering chunk ids
// [cstart, cend).
struct BatchDesc {
  size_t index = 0;
  size_t lo = 0, hi = 0;
  size_t cstart = 0, cend = 0;
};

// First-wins landing slot for one plan source block. A hedged re-fetch may
// still be copying into its own scratch when the primary publishes; the
// per-slot mutex makes publication atomic and the loser's buffer dies with
// the loser — no writer ever touches a published buffer. With the block
// cache on, the fetch publishes a shared cache entry instead of a private
// scratch; base() serves either form.
struct SlotStage {
  std::mutex mu;
  bool filled = false;
  Buffer data;
  BlockCache::EntryRef entry;
  const uint8_t* base() const { return entry ? entry->data() : data.data(); }
};

// A batch's fetch in flight: one FetchSet keyed by plan slot, plus the
// per-slot byte ranges ([lo, hi) block coordinates) the decode will read.
// cached[s] holds a slot served straight from the block cache — no fetch
// op was submitted for it.
struct InFlightBatch {
  BatchDesc desc;
  std::vector<std::vector<std::pair<size_t, size_t>>> pieces;  // per slot
  std::vector<std::unique_ptr<SlotStage>> slots;               // per slot
  std::vector<BlockCache::EntryRef> cached;                    // per slot
  std::unique_ptr<io::FetchSet> fetches;
};

// A fetched batch handed to the decode stage.
struct FetchedBatch {
  BatchDesc desc;
  std::vector<std::unique_ptr<SlotStage>> slots;
  std::vector<BlockCache::EntryRef> cached;
};

}  // namespace

std::optional<Buffer> StripedReader::read_pipelined(store::FileId id,
                                                    size_t offset,
                                                    size_t length) {
  const codes::CodecEngine& eng = store_.code().engine();
  const store::FileStore::ReadSession session = store_.begin_verified_read(id);
  const size_t chunk = session.block_bytes / eng.stripes_per_block();
  const size_t file_bytes = eng.num_chunks() * chunk;
  GALLOPER_CHECK_MSG(offset + length <= file_bytes,
                     "range [" << offset << ", " << offset + length
                               << ") beyond file size " << file_bytes);
  if (length == 0) return Buffer();

  // The SESSION plan: plan_decode_fast keyed by the exact clean set the
  // probe phase verified — the same plan (cache hit, or a deterministic
  // recompile) FileStore::read_range would execute for this pattern, which
  // is what makes the pipelined bytes bit-identical to the direct ones.
  const auto plan = eng.plan_decode_fast(session.clean);
  const size_t first_chunk = offset / chunk;
  const size_t last_chunk = (offset + length - 1) / chunk;
  for (size_t c = first_chunk; c <= last_chunk; ++c)
    if (!plan->row(c).solvable) return std::nullopt;  // matches direct

  BlockCache* cache = store_.block_cache();
  const bool use_cache = cache != nullptr && cache->enabled();
  const uint64_t cache_uid = store_.cache_uid();
  // Generation snapshot, taken once per stream: entries are served only at
  // the generation this stream saw, so a concurrent update/repair can never
  // slip refreshed bytes into a range the session verified differently.
  const std::vector<uint64_t> gens =
      use_cache ? store_.block_generations(id) : std::vector<uint64_t>{};

  // Batch descriptors over the covered chunks.
  std::vector<BatchDesc> batches;
  for (size_t c = first_chunk; c <= last_chunk; c += opt_.batch_chunks) {
    BatchDesc d;
    d.index = batches.size();
    d.cstart = c;
    d.cend = std::min(c + opt_.batch_chunks, last_chunk + 1);
    d.lo = std::max(offset, d.cstart * chunk);
    d.hi = std::min(offset + length, d.cend * chunk);
    batches.push_back(d);
  }

  const size_t depth = opt_.queue_depth ? opt_.queue_depth : rt::queue_depth();
  const size_t num_slots = plan->source_blocks().size();
  Buffer out(length);  // decode stage writes disjoint [lo, hi) regions

  rt::BoundedQueue<FetchedBatch> fetched_q(depth);
  rt::BoundedQueue<size_t> done_q(depth);
  const auto abort = [&](std::exception_ptr e) {
    fetched_q.poison(e);
    done_q.poison(e);
  };

  // The per-slot byte ranges one batch needs, from the plan's own source
  // lists: for every covered chunk's row, each (slot, pos) source
  // contributes [pos·chunk + il, pos·chunk + ih) of its block, where
  // [il, ih) is the intra-chunk overlap with the request. Copy rows read
  // (copy_slot, copy_pos) the same way.
  const auto batch_pieces = [&](const BatchDesc& d) {
    std::vector<std::vector<std::pair<size_t, size_t>>> pieces(num_slots);
    for (size_t c = d.cstart; c < d.cend; ++c) {
      const size_t clo = std::max(d.lo, c * chunk);
      const size_t chi = std::min(d.hi, (c + 1) * chunk);
      const size_t il = clo - c * chunk;
      const size_t ih = chi - c * chunk;
      const codes::CodecPlan::Row& row = plan->row(c);
      if (row.copy_slot >= 0) {
        pieces[static_cast<size_t>(row.copy_slot)].emplace_back(
            row.copy_pos * chunk + il, row.copy_pos * chunk + ih);
      } else {
        for (const codes::CodecPlan::Source& s : plan->row_sources(row))
          pieces[s.slot].emplace_back(s.pos * chunk + il, s.pos * chunk + ih);
      }
    }
    return pieces;
  };

  // Probe bodies shared by the primary fetch and its hedged re-fetch.
  //
  // Pieces mode (cache off): copy exactly the byte ranges the decode plan
  // touches into a private scratch block.
  //
  // Cache mode: fetch the WHOLE block as an atomic {bytes, crc, generation}
  // copy, verify the CRC here on the client (so a future hit is as
  // trustworthy as a verified read), publish it to the cache at the copy's
  // own generation, and stage the shared entry for this batch's decode.
  // A CRC mismatch means silently corrupted stored bytes — report kCorrupt
  // so the stream falls back to direct read_range, which quarantines and
  // repairs; nothing is ever cached unverified.
  const auto make_piece_probe = [&](size_t block_id,
                                    const std::vector<std::pair<size_t,
                                                                size_t>>*
                                        piece_list,
                                    SlotStage* slot) {
    const size_t block_bytes = session.block_bytes;
    auto& store = store_;
    return [&store, id, block_id, piece_list, slot, block_bytes] {
      Buffer scratch(block_bytes);  // pooled, indeterminate
      if (!store.fetch_block_pieces(id, block_id, *piece_list,
                                    ByteSpan(scratch.data(), scratch.size())))
        return false;  // block vanished → stale session
      std::lock_guard<std::mutex> lk(slot->mu);
      if (!slot->filled) {
        slot->data = std::move(scratch);
        slot->filled = true;
      }
      return true;
    };
  };
  const auto make_cache_probe = [&](size_t block_id, SlotStage* slot) {
    auto& store = store_;
    BlockCache* c = cache;
    const uint64_t uid = cache_uid;
    return [&store, c, uid, id, block_id, slot] {
      auto copy = store.read_block_for_cache(id, block_id);
      if (!copy) return false;  // block vanished → stale session
      if (crc32c(ConstByteSpan(copy->bytes)) != copy->crc)
        throw SessionInvalid();  // corrupt → direct read quarantines+repairs
      auto entry = std::make_shared<const Buffer>(std::move(copy->bytes));
      c->put(uid, id, block_id, copy->generation, entry);
      std::lock_guard<std::mutex> lk(slot->mu);
      if (!slot->filled) {
        slot->entry = std::move(entry);
        slot->filled = true;
      }
      return true;
    };
  };
  const auto piece_bytes =
      [](const std::vector<std::pair<size_t, size_t>>& pieces) {
        size_t total = 0;
        for (const auto& [lo, hi] : pieces) total += hi - lo;
        return total;
      };

  // Fetch stage: keeps up to `depth` batches' FetchSets in flight, so one
  // batch's injected stalls overlap its neighbors' (and the decode of
  // whatever already landed). With the cache on, each needed slot is first
  // looked up at the stream's generation snapshot — a hit stages the shared
  // entry with NO fetch op (a fully-hot batch never touches the I/O pool),
  // a miss fetches the whole block and caches it. Per batch, ONE fetch op
  // per missing slot; hedged re-fetches run the same probe stall-free with
  // first-wins publication (see SlotStage). Injector latency is pre-drawn
  // on this stage thread in slot order — one draw per block actually
  // fetched (cache hits draw nothing, like any elided I/O).
  const auto start_batch = [&](const BatchDesc& d) {
    InFlightBatch f;
    f.desc = d;
    f.pieces = batch_pieces(d);
    f.slots.resize(num_slots);
    f.cached.resize(num_slots);
    f.fetches = std::make_unique<io::FetchSet>();
    fault::FaultInjector* inj = store_.fault_injector();
    for (size_t s = 0; s < num_slots; ++s) {
      if (f.pieces[s].empty()) continue;
      const size_t block_id = plan->source_blocks()[s];
      if (use_cache) {
        if (auto hit = cache->get(cache_uid, id, block_id, gens[block_id]);
            hit != nullptr && hit->size() == session.block_bytes) {
          f.cached[s] = std::move(hit);
          continue;
        }
      }
      f.slots[s] = std::make_unique<SlotStage>();
      const double stall_s = inj ? inj->read_latency() : 0;
      SlotStage* slot = f.slots[s].get();
      if (use_cache) {
        f.fetches->fetch(s, stall_s, make_cache_probe(block_id, slot),
                         /*hedge=*/false, session.block_bytes);
      } else {
        f.fetches->fetch(s, stall_s,
                         make_piece_probe(block_id, &f.pieces[s], slot),
                         /*hedge=*/false, piece_bytes(f.pieces[s]));
      }
    }
    return f;
  };

  const auto finish_batch = [&](InFlightBatch f) {
    // Exhaustive await (every slot op resolves); a slot still parked in
    // its injected stall past the hedge deadline is re-fetched stall-free,
    // so the batch's tail is the deadline, not the stall. A budget-denied
    // hedge leaves hedged[s] unset, exactly as if it never fired.
    std::vector<bool> hedged(num_slots, false);
    f.fetches->await(
        [](const std::vector<size_t>&) { return false; },
        [&](const std::vector<size_t>& pending) {
          for (size_t s : pending) {
            if (hedged[s]) continue;
            SlotStage* slot = f.slots[s].get();
            const size_t block_id = plan->source_blocks()[s];
            hedged[s] =
                use_cache
                    ? f.fetches->fetch(s, 0.0, make_cache_probe(block_id, slot),
                                       /*hedge=*/true, session.block_bytes)
                    : f.fetches->fetch(
                          s, 0.0, make_piece_probe(block_id, &f.pieces[s], slot),
                          /*hedge=*/true, piece_bytes(f.pieces[s]));
          }
        });
    f.fetches->join();
    f.fetches->rethrow_any_failure();
    for (size_t s = 0; s < num_slots; ++s) {
      if (f.pieces[s].empty() || f.cached[s]) continue;
      if (f.fetches->outcome(s) != io::FetchSet::Outcome::kClean)
        throw SessionInvalid();
    }
    counters().batches.fetch_add(1, std::memory_order_relaxed);
    return FetchedBatch{f.desc, std::move(f.slots), std::move(f.cached)};
  };

  // Decode one fetched batch: executes the session plan's rows over the
  // staged slot buffers — the same run_row calls FileStore::read_range
  // makes, reading sources at bases[slot] + pos·chunk + offset. Unstaged
  // slots stay nullptr (rows never touch them: the bases table is driven
  // by the same source lists the fetch staged). Output lands straight in
  // `out` (disjoint per-batch regions), so deliver is just completion
  // tokens.
  const auto decode_batch = [&](const FetchedBatch& item) {
    const BatchDesc& d = item.desc;
    std::vector<const uint8_t*> bases(num_slots, nullptr);
    for (size_t s = 0; s < num_slots; ++s) {
      if (item.cached[s]) {
        bases[s] = item.cached[s]->data();
      } else if (item.slots[s]) {
        bases[s] = item.slots[s]->base();
      }
    }
    for (size_t c = d.cstart; c < d.cend; ++c) {
      const size_t clo = std::max(d.lo, c * chunk);
      const size_t chi = std::min(d.hi, (c + 1) * chunk);
      plan->run_row(plan->row(c), out.data() + (clo - offset), bases.data(),
                    chunk, clo - c * chunk, chi - clo);
    }
  };

  // Single-batch fast path: nothing to overlap, so skip the stage threads
  // and queues entirely — fetch, decode, done, all on the caller. Short
  // reads are the common case under skewed popularity; two thread spawns
  // per call would dominate them.
  if (batches.size() == 1) {
    decode_batch(finish_batch(start_batch(batches[0])));
    return out;
  }

  rt::StageThread fetch_stage(
      [&] {
        std::deque<InFlightBatch> window;
        size_t next = 0;
        while (next < batches.size() || !window.empty()) {
          if (next < batches.size() && window.size() < depth) {
            window.push_back(start_batch(batches[next++]));
            continue;
          }
          FetchedBatch done = finish_batch(std::move(window.front()));
          window.pop_front();
          if (!fetched_q.push(std::move(done))) return;  // downstream died
        }
        fetched_q.close();
        // Window teardown on the error path: ~FetchSet cancel_and_joins,
        // so no probe outlives this stage.
      },
      abort);

  rt::StageThread decode_stage(
      [&] {
        while (auto item = fetched_q.pop()) {
          decode_batch(*item);
          if (!done_q.push(item->desc.index)) return;
        }
        done_q.close();
      },
      abort);

  // Deliver: the caller thread drains completion tokens (order is the
  // batch order — one decode stage), then joins and rethrows. On a caller
  // exception the queues are poisoned first, so the stage joins in the
  // unwind cannot block on a full/empty queue.
  size_t delivered = 0;
  try {
    while (delivered < batches.size()) {
      const auto token = done_q.pop();
      if (!token) break;  // poisoned or closed early
      GALLOPER_CHECK(*token == delivered);
      ++delivered;
    }
  } catch (...) {
    abort(std::current_exception());
    throw;
  }
  fetch_stage.join();
  decode_stage.join();
  fetched_q.rethrow_if_poisoned();
  done_q.rethrow_if_poisoned();
  fetch_stage.rethrow();
  decode_stage.rethrow();
  GALLOPER_CHECK(delivered == batches.size());
  return out;
}

// ---- StripedWriter -------------------------------------------------------

StripedWriter::StripedWriter(store::FileStore& store, WriterOptions opt)
    : store_(store), opt_(opt) {
  GALLOPER_CHECK(opt_.slice_bytes > 0);
}

namespace {

// One writer slice: the intra-chunk byte range [lo, lo + len) of every
// chunk, gathered into a contiguous (num_chunks × len) sub-file.
struct SliceJob {
  size_t lo = 0, len = 0;
  Buffer sub;  // gathered sub-file (slice stage) — num_chunks · len bytes
};

struct EncodedSlice {
  size_t lo = 0, len = 0;
  std::vector<Buffer> blocks;  // stripes_per_block · len bytes each
};

}  // namespace

store::FileId StripedWriter::write(ConstByteSpan file) {
  const codes::CodecEngine& eng = store_.code().engine();
  const size_t n = eng.num_chunks();
  GALLOPER_CHECK_MSG(!file.empty() && file.size() % n == 0,
                     "file size must be a positive multiple of the "
                         << n << "-chunk stripe");
  AdmissionControl& gate =
      opt_.admission ? *opt_.admission : AdmissionControl::global();
  const AdmissionControl::Ticket ticket = gate.admit();
  counters().writes.fetch_add(1, std::memory_order_relaxed);
  counters().bytes_written.fetch_add(file.size(), std::memory_order_relaxed);
  const auto t0 = std::chrono::steady_clock::now();

  const size_t chunk = file.size() / n;
  const size_t spb = eng.stripes_per_block();
  const size_t depth = opt_.queue_depth ? opt_.queue_depth : rt::queue_depth();

  // Full blocks assembled slice by slice. Buffer(n) bytes are
  // indeterminate until every slice lands — each byte is written exactly
  // once below.
  std::vector<Buffer> full;
  full.reserve(eng.num_blocks());
  for (size_t b = 0; b < eng.num_blocks(); ++b)
    full.emplace_back(spb * chunk);

  rt::BoundedQueue<SliceJob> slice_q(depth);
  rt::BoundedQueue<EncodedSlice> enc_q(depth);
  const auto abort = [&](std::exception_ptr e) {
    slice_q.poison(e);
    enc_q.poison(e);
  };

  // Slice stage: gather the intra-chunk columns. Encode stage: encode each
  // sub-file — because the GF kernels are bytewise, block byte j of the
  // sub-file encode equals block bytes [p·chunk + lo, p·chunk + lo + len)
  // of the full encode, so assembling slices reproduces the direct write's
  // blocks exactly.
  rt::StageThread slice_stage(
      [&] {
        for (size_t lo = 0; lo < chunk; lo += opt_.slice_bytes) {
          SliceJob job;
          job.lo = lo;
          job.len = std::min(opt_.slice_bytes, chunk - lo);
          job.sub = Buffer(n * job.len);
          for (size_t i = 0; i < n; ++i)
            std::memcpy(job.sub.data() + i * job.len,
                        file.data() + i * chunk + lo, job.len);
          if (!slice_q.push(std::move(job))) return;
        }
        slice_q.close();
      },
      abort);
  rt::StageThread encode_stage(
      [&] {
        while (auto job = slice_q.pop()) {
          EncodedSlice enc;
          enc.lo = job->lo;
          enc.len = job->len;
          enc.blocks = eng.encode(ConstByteSpan(job->sub));
          if (!enc_q.push(std::move(enc))) return;
        }
        enc_q.close();
      },
      abort);

  // Assemble on the caller thread, overlapping the next slice's encode.
  try {
    while (auto enc = enc_q.pop()) {
      for (size_t b = 0; b < full.size(); ++b)
        for (size_t p = 0; p < spb; ++p)
          std::memcpy(full[b].data() + p * chunk + enc->lo,
                      enc->blocks[b].data() + p * enc->len, enc->len);
    }
  } catch (...) {
    abort(nullptr);
    throw;
  }
  slice_stage.join();
  encode_stage.join();
  slice_q.rethrow_if_poisoned();
  enc_q.rethrow_if_poisoned();
  slice_stage.rethrow();
  encode_stage.rethrow();

  const store::FileId fid = store_.write_encoded(std::move(full));
  client_latency_histogram().record_ns(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count()));
  return fid;
}

}  // namespace galloper::client
