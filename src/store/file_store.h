// FileStore: a miniature erasure-coded "distributed file system" over the
// simulated cluster. It stores REAL bytes (every repair and read is
// bit-exact and verified in tests) while the cluster's DES resources
// account simulated time and disk/network I/O — the same split the paper
// has between its C++ coding library and the Hadoop/HDFS deployment.
//
// Placement: block slot b of every file lives on server placement()[b]
// (identity by default — the single-node degenerate case where blocks go
// on servers [0, num_blocks)); extra cluster servers act as replacement
// targets for recovery and as drain destinations. cluster::Coordinator
// installs a topology-aware placement (src/store/placement) and moves
// slots between servers with reassign_block, so every data path below
// runs unchanged against a real multi-node layout.
//
// Thread safety: the data paths (write/read/read_range/update_range/repair/
// scrub and the client-session API) may run concurrently from many client
// threads. Block state lives under one reader/writer lock — reads, probes,
// and decodes take it shared; quarantine, store-back, and updates take it
// exclusive — and the lock is NEVER held while blocked in a FetchSet await,
// so a parked probe cannot wedge a writer. The pinned repair-plan map has
// its own mutex, and the read counters are atomics snapshotted by value.
// fail_server/revive_server may race in-flight operations: server liveness
// is a monotonic atomic EPOCH (even = alive, odd = dead; every transition
// bumps it — see sim::Server) and the block-state sweep runs under the
// exclusive lock, so a concurrent read either sees the block before the
// kill (and serves it) or after (and degrades) — chaos actors and mid-job
// kills rely on this. repair() captures the target's {server, epoch} when
// an attempt starts and re-checks both under the exclusive lock before
// installing, so a repair that began before a kill (or a full kill/revive
// cycle, which a raw alive flag cannot distinguish from "never died") can
// never resurrect a block the revive declared lost, and a rebuilt block
// can never land on a server the slot was reassigned away from.
// set_fault_injector/set_block_cache remain attach-at-setup only.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <utility>
#include <vector>

#include "codes/erasure_code.h"
#include "core/input_format.h"
#include "fault/fault.h"
#include "sim/cluster.h"

namespace galloper::client {
class BlockCache;
}  // namespace galloper::client

namespace galloper::io {
class AsyncIo;
}  // namespace galloper::io

namespace galloper::store {

using FileId = size_t;

class FileStore {
 public:
  // `code` must outlive the store.
  FileStore(sim::Cluster& cluster, const codes::ErasureCode& code);
  // Drops this store's entries from the attached cache — the uid is never
  // reused, so they could never be SERVED again, but dead residents would
  // still squeeze live stores out of the shared capacity.
  ~FileStore();

  const codes::ErasureCode& code() const { return code_; }
  sim::Cluster& cluster() { return cluster_; }

  // ---- Block→server placement -------------------------------------------
  //
  // Identity by default. set_placement installs a full mapping at setup
  // time (one distinct alive server per block slot); reassign_block is the
  // drain/decommission cutover and IS safe under load: it flips one slot's
  // home under the exclusive lock, and because the block's bytes stay
  // resident across the flip, concurrent reads never degrade — they see
  // the slot on the old (alive) server before the flip and on the new
  // (alive) server after.
  size_t server_of(size_t block) const;
  std::vector<size_t> placement() const;
  void set_placement(std::vector<size_t> placement);
  void reassign_block(size_t block, size_t server);

  // Attaches a fault injector (not owned; null detaches). Injected faults:
  // silent bit flips / torn writes on every block store (write, update,
  // repair store-back), transient helper-read failures (retried, then
  // rerouted), latency stalls on block fetches (absorbed by hedged
  // re-reads — see read_range/repair), the "store.fetch" crash point fired
  // inside the async CRC-probe fetches, and the "store.repair" crash point
  // fired just before a rebuilt block is installed.
  void set_fault_injector(fault::FaultInjector* injector) {
    injector_ = injector;
  }
  fault::FaultInjector* fault_injector() const { return injector_; }

  // ---- Verified client-side block cache ----------------------------------
  //
  // The store participates in client::BlockCache (default: the process-wide
  // instance) through three invariants:
  //  - every block carries a GENERATION, bumped under the exclusive lock by
  //    every mutation or quarantine (update install, repair install, CRC
  //    quarantine, fail_server) — and each bump also drops the cache entry;
  //  - cache fills go through read_block_for_cache(), which copies
  //    {bytes, stored checksum, generation} under ONE shared-lock hold, so
  //    the caller can CRC-verify the copy and key it by a generation that
  //    was provably current when the bytes were read;
  //  - read_range probes the cache first (read_range_cached) and serves
  //    entirely from current-generation verified entries when they cover
  //    the range — no probe fetches, no I/O pool, memcpy for clean rows.
  // corrupt_block() deliberately does NOT bump: silent corruption doesn't
  // change the block's logical content, and the cached bytes are exactly
  // what a verified read would reconstruct.
  //
  // set_block_cache is like set_fault_injector: not synchronized against
  // in-flight operations (attach at setup; null detaches). The attached
  // cache must OUTLIVE the store — ~FileStore drops its entries from it.
  void set_block_cache(client::BlockCache* cache) { cache_ = cache; }
  client::BlockCache* block_cache() const { return cache_; }
  // Process-unique id this store keys its cache entries with.
  uint64_t cache_uid() const { return cache_uid_; }

  // Current generation of one block / of every block of a file.
  uint64_t block_generation(FileId id, size_t block) const;
  std::vector<uint64_t> block_generations(FileId id) const;

  struct VerifiedBlockCopy {
    Buffer bytes;
    uint32_t crc = 0;         // write-time CRC-32C recorded for the block
    uint64_t generation = 0;  // generation current when bytes were copied
  };
  // Atomic {bytes, checksum, generation} snapshot of a resident block.
  // nullopt if the block is lost or its server is dead.
  std::optional<VerifiedBlockCopy> read_block_for_cache(FileId id,
                                                        size_t block) const;

  // Serves [offset, offset + length) purely from current-generation cached
  // blocks when they form a decodable plan for the covered chunks. nullopt
  // when the cache cannot fully serve (caller falls through to the real
  // read path). Never touches the I/O pool or the fault injector.
  std::optional<Buffer> read_range_cached(FileId id, size_t offset,
                                          size_t length);

  // Encodes and stores a file. Size must be a positive multiple of the
  // code's chunk count.
  FileId write(ConstByteSpan file);

  // Stores already-encoded blocks (one per code block, equal sizes) with
  // the exact checksum-then-write-fault sequence of write(). This is the
  // StripedWriter's landing point: the client encodes slice-by-slice on
  // pipeline stages, assembles full blocks, and commits them here — the
  // injector sees the same one-draw-per-block schedule as write(), so a
  // pipelined write is bit-identical to the direct one.
  FileId write_encoded(std::vector<Buffer> blocks);

  size_t num_files() const;
  size_t block_bytes(FileId id) const;
  // Size of the original (decoded) file.
  size_t file_bytes(FileId id) const;

  // The block contents as stored (nullopt if its server is dead or the
  // block was lost). Block b of every file lives on server_of(b). The returned
  // span is only stable while no concurrent operation quarantines or
  // rewrites the block — concurrent callers use fetch_block_pieces, which
  // copies under the lock.
  std::optional<ConstByteSpan> block(FileId id, size_t block) const;

  // Whether the server holding `block` is alive and still has the bytes.
  bool block_available(FileId id, size_t block) const;

  // Kills a server: all blocks stored on it are lost.
  void fail_server(size_t server);

  // Brings a server back EMPTY (its blocks stay lost until repaired).
  void revive_server(size_t server);

  // True if every file is still decodable from available blocks.
  bool all_recoverable() const;

  // Reads one file, decoding around missing blocks if needed.
  std::optional<Buffer> read(FileId id) const;

  // Reads one file's original bytes without decoding (requires every
  // data-holding block available) — the analytics fast path.
  std::optional<Buffer> read_original_only(FileId id) const;

  // Data-local map-task read: bytes [block_offset, block_offset + length)
  // of block `b` — one split of core::InputFormat, i.e. original data only,
  // never parity, never a decode. The read is verified (whole-block CRC
  // against the write-time checksum) and cache-integrated: a
  // current-generation BlockCache entry serves the range with no injector
  // draws, and a verified miss fills the cache so sibling splits of the
  // same block hit. Injected latency stalls are absorbed by the calling
  // map slot (a split read has one replica — there is nothing to hedge
  // to); transient read faults retry in place like read_range. A CRC
  // mismatch quarantines + self-heals the block exactly like read_range
  // and returns nullopt — as does a lost block / dead server — and the
  // caller falls back to a degraded ranged read of the same bytes.
  std::optional<Buffer> read_original_split(FileId id, size_t b,
                                            size_t block_offset,
                                            size_t length);

  // ---- Self-healing degraded reads --------------------------------------

  struct ReadStats {
    size_t verified_reads = 0;  // read_range calls + client read sessions
    size_t crc_failures = 0;    // blocks that failed their CRC on read
    size_t degraded_reads = 0;  // reads that decoded around a corrupt block
    size_t transient_faults = 0;  // injected read faults retried in place
    size_t auto_repairs = 0;    // corrupt blocks rebuilt by a read
  };
  // Snapshot by value — safe to call while reads are in flight.
  ReadStats read_stats() const;

  // CRC-verified read of bytes [offset, offset + length) of the original
  // file. Every available block is checked against its write-time CRC-32C
  // via concurrent async CRC-probe fetches — the decode starts as soon as
  // a decodable subset is clean, overlapping the straggler probes, and a
  // fetch still pending at the hedge deadline is re-issued on a second
  // path (io::AsyncIo hedging). A block that fails its CRC is quarantined
  // and the read transparently falls back to the shared
  // decode_fast/read_range plan over the healthy blocks (a DEGRADED read —
  // same bytes, more arithmetic). Quarantined blocks are then rebuilt in
  // place via the pinned repair plans, so the next read is clean again.
  // nullopt only if the healthy blocks cannot reconstruct the range.
  std::optional<Buffer> read_range(FileId id, size_t offset, size_t length);

  // read_range with the fault schedule PINNED: consumes zero injector
  // draws (no latency, no transient-fault rolls, no self-heal repair) while
  // keeping the verified-read semantics — CRC probes, quarantine, degraded
  // decode. This is the stale-session retry path: a pipelined client that
  // falls back here already drew (and served) this read's schedule through
  // its session + batch fetches, and drawing a SECOND schedule for the
  // retry would make the process-wide seeded fault sequence depend on race
  // timing. A block this path quarantines is healed by the next scrub or
  // drawing read, exactly like a hedge-discovered failure.
  std::optional<Buffer> read_range_nofault(FileId id, size_t offset,
                                           size_t length);

  // ---- Client read sessions ----------------------------------------------
  //
  // A pipelined client amortizes read_range's per-call verification: ONE
  // probe phase CRC-checks every available block up front (hedged, stall-
  // bounded, quarantining + auto-repairing exactly like read_range), and
  // the returned clean set then keys the decode plan for the whole
  // streamed read. Batch stages fetch only the byte ranges the plan
  // actually reads via fetch_block_pieces; a false return there means the
  // session went stale (a concurrent reader quarantined a block) and the
  // client re-verifies or falls back to read_range.

  struct ReadSession {
    std::vector<size_t> clean;  // sorted CRC-verified block ids
    size_t block_bytes = 0;
  };
  ReadSession begin_verified_read(FileId id);

  // Copies the block-coordinate ranges [lo, hi) of block b into the same
  // offsets of dst (sized >= the block), under the shared lock. Returns
  // false if the block is no longer resident or its server died — the
  // session-invalidation signal.
  bool fetch_block_pieces(FileId id, size_t b,
                          const std::vector<std::pair<size_t, size_t>>& pieces,
                          ByteSpan dst) const;

  // Overwrites the chunk-aligned range [offset, offset + data.size()) of
  // the original file in place, patching parity via deltas and refreshing
  // the stored checksums. All blocks must be available AND CRC-clean
  // (in-place update on a degraded stripe is refused — repair first; a
  // silently corrupt block is quarantined and the update throws, because
  // patching it would launder the corruption into a "valid" checksum).
  // Returns the blocks written. offset and size must be multiples of the
  // chunk size (block_bytes / stripes_per_block).
  std::vector<size_t> update_range(FileId id, size_t offset,
                                   ConstByteSpan data);

  // Restores one lost block from the available blocks (preferred helpers
  // when alive, any sufficient subset otherwise). Helper blocks are
  // gathered concurrently through the async I/O pool; a helper still slow
  // at the hedge deadline is re-read on a second path and CRC-clean spare
  // helpers are drafted as an alternate decodable route (the stalled
  // loser is cancelled). Returns the blocks read (the disk I/O set);
  // nullopt if unrecoverable — structurally, OR because the target server
  // died mid-repair (the block stays lost; retry after a revive). The
  // install re-checks the target's {server, liveness epoch} captured when
  // the attempt started, so a kill (or kill/revive cycle, or slot
  // reassignment) that lands between rebuild and install aborts the stale
  // install instead of resurrecting bytes the revive declared lost.
  // `io` routes the helper gather through a specific async pool (a data
  // node's own — cluster::RepairQueue passes the target node's pool so a
  // repair storm doesn't occupy the global client pool); null = the
  // process-wide pool.
  std::optional<std::vector<size_t>> repair(FileId id, size_t block,
                                            io::AsyncIo* io = nullptr);

  // Distinct (failed block, helper set) repair patterns this store has
  // compiled so far. Every file of the store shares one code, so a storm
  // that loses a server repairs the same pattern once per file — plan
  // count stays flat while repair count grows.
  size_t repair_plan_count() const {
    std::lock_guard<std::mutex> lock(plans_mu_);
    return repair_plans_.size();
  }

  // Blocks of `id` that are currently lost.
  std::vector<size_t> lost_blocks(FileId id) const;

  // ---- Scrubbing (silent-corruption defense) ----------------------------

  // Fault injection: flips one byte inside a stored block.
  void corrupt_block(FileId id, size_t block, size_t offset);

  struct CorruptBlock {
    FileId file;
    size_t block;
  };
  // Recomputes every stored block's CRC-32C against the checksum recorded
  // at write time. Mismatching blocks are reported and (when `quarantine`)
  // dropped, so a subsequent RecoveryManager pass rebuilds them. The CRC
  // pass scatter-gathers over the compute pool under the shared lock (the
  // jobs only read disjoint blocks); quarantining then re-verifies each
  // hit under the exclusive lock — a block a concurrent reader healed in
  // the window is left alone — so the serial report is unchanged and the
  // concurrent one never drops a good block.
  std::vector<CorruptBlock> scrub(bool quarantine = true);

  struct ScrubReport {
    std::vector<CorruptBlock> corrupt;  // every CRC mismatch found
    size_t repaired = 0;                // rebuilt bit-exact via plan cache
    size_t unrecoverable = 0;           // quarantined but not rebuilt NOW
  };
  // scrub() with self-healing: quarantines every corrupt block, then
  // rebuilds them in place through the pinned repair plans (single-threaded
  // after the parallel CRC pass — rebuilds read peer blocks, so they must
  // not overlap the scan). Rebuilding is multi-pass: a block unrepairable
  // while its peers are also quarantined is retried after those peers heal.
  // `unrecoverable` counts blocks still down when the passes settle — NOT
  // necessarily lost forever (a dead server holding helpers may be revived
  // later; repair() or another scrub then finishes the job).
  ScrubReport scrub_and_repair();

 private:
  // _locked helpers assume the caller holds mu_ (shared suffices).
  std::optional<ConstByteSpan> block_locked(FileId id, size_t b) const;
  bool block_available_locked(FileId id, size_t b) const;
  std::vector<size_t> available_blocks_locked(FileId id) const;
  // Looks up / compiles-and-pins the repair plan for (block, sorted
  // helpers) under plans_mu_.
  std::shared_ptr<const codes::CodecPlan> pinned_repair_plan(
      size_t block_id, const std::vector<size_t>& sorted_helpers,
      const std::vector<size_t>& helpers);
  // Bumps block (id, b)'s generation and drops its cache entry. Caller
  // holds mu_ EXCLUSIVE (the bump must be ordered with the mutation it
  // describes).
  void bump_generation_locked(FileId id, size_t b);
  // Shared body of read_range/read_range_nofault: `draw_faults` gates
  // every injector draw (latency, transient faults, self-heal repair).
  std::optional<Buffer> read_range_impl(FileId id, size_t offset,
                                        size_t length, bool draw_faults);

  sim::Cluster& cluster_;
  const codes::ErasureCode& code_;
  fault::FaultInjector* injector_ = nullptr;
  const uint64_t cache_uid_;
  client::BlockCache* cache_;  // attached block cache (never owned)

  struct ReadCounters {
    std::atomic<size_t> verified_reads{0};
    std::atomic<size_t> crc_failures{0};
    std::atomic<size_t> degraded_reads{0};
    std::atomic<size_t> transient_faults{0};
    std::atomic<size_t> auto_repairs{0};
  };
  mutable ReadCounters counters_;

  // Pinned repair plans keyed by (failed block, sorted helper set). Held by
  // shared_ptr for the store's lifetime, so storm waves never replan even
  // with GALLOPER_PLAN_CACHE=off or after global-cache eviction.
  mutable std::mutex plans_mu_;
  std::map<std::pair<size_t, std::vector<size_t>>,
           std::shared_ptr<const codes::CodecPlan>>
      repair_plans_;

  // Serializes write_encoded callers, so the file id chosen before the
  // (unlocked) injector write-fault callbacks is the id the append gets.
  // Injector callbacks may call back into the store (the soak harness's
  // write gate does), so they must NEVER run under mu_.
  std::mutex write_mu_;

  // Guards files_/checksums_/file_block_bytes_/placement_ (see the
  // thread-safety note in the class comment).
  mutable std::shared_mutex mu_;
  // placement_[block slot] → server id (identity unless set_placement /
  // reassign_block changed it). Liveness of slot b is its server's.
  std::vector<size_t> placement_;
  // files_[id][block] — nullopt once lost.
  std::vector<std::vector<std::optional<Buffer>>> files_;
  std::vector<std::vector<uint32_t>> checksums_;  // CRC-32C at write time
  // Per-block cache generation (see the block-cache section above).
  std::vector<std::vector<uint64_t>> block_gens_;
  std::vector<size_t> file_block_bytes_;
};

}  // namespace galloper::store
