// FileStore: a miniature erasure-coded "distributed file system" over the
// simulated cluster. It stores REAL bytes (every repair and read is
// bit-exact and verified in tests) while the cluster's DES resources
// account simulated time and disk/network I/O — the same split the paper
// has between its C++ coding library and the Hadoop/HDFS deployment.
//
// Placement: file blocks go on servers [0, num_blocks); extra cluster
// servers act as replacement targets for recovery.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "codes/erasure_code.h"
#include "core/input_format.h"
#include "sim/cluster.h"

namespace galloper::store {

using FileId = size_t;

class FileStore {
 public:
  // `code` must outlive the store.
  FileStore(sim::Cluster& cluster, const codes::ErasureCode& code);

  const codes::ErasureCode& code() const { return code_; }
  sim::Cluster& cluster() { return cluster_; }

  // Encodes and stores a file. Size must be a positive multiple of the
  // code's chunk count.
  FileId write(ConstByteSpan file);

  size_t num_files() const { return files_.size(); }
  size_t block_bytes(FileId id) const;

  // The block contents as stored (nullopt if its server is dead or the
  // block was lost). Block b of every file lives on server b.
  std::optional<ConstByteSpan> block(FileId id, size_t block) const;

  // Whether the server holding `block` is alive and still has the bytes.
  bool block_available(FileId id, size_t block) const;

  // Kills a server: all blocks stored on it are lost.
  void fail_server(size_t server);

  // Brings a server back EMPTY (its blocks stay lost until repaired).
  void revive_server(size_t server);

  // True if every file is still decodable from available blocks.
  bool all_recoverable() const;

  // Reads one file, decoding around missing blocks if needed.
  std::optional<Buffer> read(FileId id) const;

  // Reads one file's original bytes without decoding (requires every
  // data-holding block available) — the analytics fast path.
  std::optional<Buffer> read_original_only(FileId id) const;

  // Overwrites the chunk-aligned range [offset, offset + data.size()) of
  // the original file in place, patching parity via deltas and refreshing
  // the stored checksums. All blocks must be available (in-place update
  // on a degraded stripe is refused — repair first). Returns the blocks
  // written. offset and size must be multiples of the chunk size
  // (block_bytes / stripes_per_block).
  std::vector<size_t> update_range(FileId id, size_t offset,
                                   ConstByteSpan data);

  // Restores one lost block from the available blocks (preferred helpers
  // when alive, any sufficient subset otherwise). Returns the blocks read
  // (the disk I/O set); nullopt if unrecoverable. The rebuilt bytes are
  // stored back (the server must be alive again, or a spare —
  // block-to-server mapping stays identity, so revive first).
  std::optional<std::vector<size_t>> repair(FileId id, size_t block);

  // Distinct (failed block, helper set) repair patterns this store has
  // compiled so far. Every file of the store shares one code, so a storm
  // that loses a server repairs the same pattern once per file — plan
  // count stays flat while repair count grows.
  size_t repair_plan_count() const { return repair_plans_.size(); }

  // Blocks of `id` that are currently lost.
  std::vector<size_t> lost_blocks(FileId id) const;

  // ---- Scrubbing (silent-corruption defense) ----------------------------

  // Fault injection: flips one byte inside a stored block.
  void corrupt_block(FileId id, size_t block, size_t offset);

  struct CorruptBlock {
    FileId file;
    size_t block;
  };
  // Recomputes every stored block's CRC-32C against the checksum recorded
  // at write time. Mismatching blocks are reported and (when `quarantine`)
  // dropped, so a subsequent RecoveryManager pass rebuilds them. The CRC
  // pass fans out over the rt pool (one job per stored block); the report
  // order and quarantine effect are identical to a serial scan.
  std::vector<CorruptBlock> scrub(bool quarantine = true);

 private:
  std::vector<size_t> available_blocks(FileId id) const;

  sim::Cluster& cluster_;
  const codes::ErasureCode& code_;
  // Pinned repair plans keyed by (failed block, sorted helper set). Held by
  // shared_ptr for the store's lifetime, so storm waves never replan even
  // with GALLOPER_PLAN_CACHE=off or after global-cache eviction.
  std::map<std::pair<size_t, std::vector<size_t>>,
           std::shared_ptr<const codes::CodecPlan>>
      repair_plans_;
  // files_[id][block] — nullopt once lost.
  std::vector<std::vector<std::optional<Buffer>>> files_;
  std::vector<std::vector<uint32_t>> checksums_;  // CRC-32C at write time
  std::vector<size_t> file_block_bytes_;
};

}  // namespace galloper::store
