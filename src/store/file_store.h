// FileStore: a miniature erasure-coded "distributed file system" over the
// simulated cluster. It stores REAL bytes (every repair and read is
// bit-exact and verified in tests) while the cluster's DES resources
// account simulated time and disk/network I/O — the same split the paper
// has between its C++ coding library and the Hadoop/HDFS deployment.
//
// Placement: file blocks go on servers [0, num_blocks); extra cluster
// servers act as replacement targets for recovery.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "codes/erasure_code.h"
#include "core/input_format.h"
#include "fault/fault.h"
#include "sim/cluster.h"

namespace galloper::store {

using FileId = size_t;

class FileStore {
 public:
  // `code` must outlive the store.
  FileStore(sim::Cluster& cluster, const codes::ErasureCode& code);

  const codes::ErasureCode& code() const { return code_; }
  sim::Cluster& cluster() { return cluster_; }

  // Attaches a fault injector (not owned; null detaches). Injected faults:
  // silent bit flips / torn writes on every block store (write, update,
  // repair store-back), transient helper-read failures (retried, then
  // rerouted), latency stalls on block fetches (absorbed by hedged
  // re-reads — see read_range/repair), the "store.fetch" crash point fired
  // inside the async CRC-probe fetches, and the "store.repair" crash point
  // fired just before a rebuilt block is installed.
  void set_fault_injector(fault::FaultInjector* injector) {
    injector_ = injector;
  }
  fault::FaultInjector* fault_injector() const { return injector_; }

  // Encodes and stores a file. Size must be a positive multiple of the
  // code's chunk count.
  FileId write(ConstByteSpan file);

  size_t num_files() const { return files_.size(); }
  size_t block_bytes(FileId id) const;
  // Size of the original (decoded) file.
  size_t file_bytes(FileId id) const;

  // The block contents as stored (nullopt if its server is dead or the
  // block was lost). Block b of every file lives on server b.
  std::optional<ConstByteSpan> block(FileId id, size_t block) const;

  // Whether the server holding `block` is alive and still has the bytes.
  bool block_available(FileId id, size_t block) const;

  // Kills a server: all blocks stored on it are lost.
  void fail_server(size_t server);

  // Brings a server back EMPTY (its blocks stay lost until repaired).
  void revive_server(size_t server);

  // True if every file is still decodable from available blocks.
  bool all_recoverable() const;

  // Reads one file, decoding around missing blocks if needed.
  std::optional<Buffer> read(FileId id) const;

  // Reads one file's original bytes without decoding (requires every
  // data-holding block available) — the analytics fast path.
  std::optional<Buffer> read_original_only(FileId id) const;

  // ---- Self-healing degraded reads --------------------------------------

  struct ReadStats {
    size_t verified_reads = 0;  // read_range calls
    size_t crc_failures = 0;    // blocks that failed their CRC on read
    size_t degraded_reads = 0;  // reads that decoded around a corrupt block
    size_t transient_faults = 0;  // injected read faults retried in place
    size_t auto_repairs = 0;    // corrupt blocks rebuilt by a read
  };
  const ReadStats& read_stats() const { return read_stats_; }

  // CRC-verified read of bytes [offset, offset + length) of the original
  // file. Every available block is checked against its write-time CRC-32C
  // via concurrent async CRC-probe fetches — the decode starts as soon as
  // a decodable subset is clean, overlapping the straggler probes, and a
  // fetch still pending at the hedge deadline is re-issued on a second
  // path (io::AsyncIo hedging). A block that fails its CRC is quarantined
  // and the read transparently falls back to the shared
  // decode_fast/read_range plan over the healthy blocks (a DEGRADED read —
  // same bytes, more arithmetic). Quarantined blocks are then rebuilt in
  // place via the pinned repair plans, so the next read is clean again.
  // nullopt only if the healthy blocks cannot reconstruct the range.
  std::optional<Buffer> read_range(FileId id, size_t offset, size_t length);

  // Overwrites the chunk-aligned range [offset, offset + data.size()) of
  // the original file in place, patching parity via deltas and refreshing
  // the stored checksums. All blocks must be available AND CRC-clean
  // (in-place update on a degraded stripe is refused — repair first; a
  // silently corrupt block is quarantined and the update throws, because
  // patching it would launder the corruption into a "valid" checksum).
  // Returns the blocks written. offset and size must be multiples of the
  // chunk size (block_bytes / stripes_per_block).
  std::vector<size_t> update_range(FileId id, size_t offset,
                                   ConstByteSpan data);

  // Restores one lost block from the available blocks (preferred helpers
  // when alive, any sufficient subset otherwise). Helper blocks are
  // gathered concurrently through the async I/O pool; a helper still slow
  // at the hedge deadline is re-read on a second path and CRC-clean spare
  // helpers are drafted as an alternate decodable route (the stalled
  // loser is cancelled). Returns the blocks read (the disk I/O set);
  // nullopt if unrecoverable. The rebuilt bytes are stored back (the
  // server must be alive again, or a spare — block-to-server mapping
  // stays identity, so revive first).
  std::optional<std::vector<size_t>> repair(FileId id, size_t block);

  // Distinct (failed block, helper set) repair patterns this store has
  // compiled so far. Every file of the store shares one code, so a storm
  // that loses a server repairs the same pattern once per file — plan
  // count stays flat while repair count grows.
  size_t repair_plan_count() const { return repair_plans_.size(); }

  // Blocks of `id` that are currently lost.
  std::vector<size_t> lost_blocks(FileId id) const;

  // ---- Scrubbing (silent-corruption defense) ----------------------------

  // Fault injection: flips one byte inside a stored block.
  void corrupt_block(FileId id, size_t block, size_t offset);

  struct CorruptBlock {
    FileId file;
    size_t block;
  };
  // Recomputes every stored block's CRC-32C against the checksum recorded
  // at write time. Mismatching blocks are reported and (when `quarantine`)
  // dropped, so a subsequent RecoveryManager pass rebuilds them. The CRC
  // pass scatter-gathers over the async I/O pool (one op per stored block)
  // but ONLY reads shared state and writes disjoint flag bytes; the list
  // is taken — and all quarantining/rewriting happens — single-threaded
  // after the parallel pass, so the pool jobs never race a mutation. The
  // report order and quarantine effect are identical to a serial scan.
  std::vector<CorruptBlock> scrub(bool quarantine = true);

  struct ScrubReport {
    std::vector<CorruptBlock> corrupt;  // every CRC mismatch found
    size_t repaired = 0;                // rebuilt bit-exact via plan cache
    size_t unrecoverable = 0;           // quarantined but not rebuilt NOW
  };
  // scrub() with self-healing: quarantines every corrupt block, then
  // rebuilds them in place through the pinned repair plans (single-threaded
  // after the parallel CRC pass — rebuilds read peer blocks, so they must
  // not overlap the scan). Rebuilding is multi-pass: a block unrepairable
  // while its peers are also quarantined is retried after those peers heal.
  // `unrecoverable` counts blocks still down when the passes settle — NOT
  // necessarily lost forever (a dead server holding helpers may be revived
  // later; repair() or another scrub then finishes the job).
  ScrubReport scrub_and_repair();

 private:
  std::vector<size_t> available_blocks(FileId id) const;
  // Stores `data` as block b of file id, applying the injector's write
  // faults (the recorded checksum keeps the TRUE value, so an injected
  // fault is exactly a silent corruption).
  void store_block(FileId id, size_t b, Buffer data);

  sim::Cluster& cluster_;
  const codes::ErasureCode& code_;
  fault::FaultInjector* injector_ = nullptr;
  ReadStats read_stats_;
  // Pinned repair plans keyed by (failed block, sorted helper set). Held by
  // shared_ptr for the store's lifetime, so storm waves never replan even
  // with GALLOPER_PLAN_CACHE=off or after global-cache eviction.
  std::map<std::pair<size_t, std::vector<size_t>>,
           std::shared_ptr<const codes::CodecPlan>>
      repair_plans_;
  // files_[id][block] — nullopt once lost.
  std::vector<std::vector<std::optional<Buffer>>> files_;
  std::vector<std::vector<uint32_t>> checksums_;  // CRC-32C at write time
  std::vector<size_t> file_block_bytes_;
};

}  // namespace galloper::store
