// RecoveryManager: orchestrates the rebuild of everything lost to server
// failures — the "recovery storm" path where locally repairable codes earn
// their keep (low disk I/O per repair means more parallel repairs per unit
// of cluster bandwidth).
//
// Repairs move real bytes through the FileStore (bit-exact) and replay the
// same transfers on the DES cluster to measure makespan and per-server I/O.
#pragma once

#include "sim/des.h"
#include "store/file_store.h"

namespace galloper::store {

struct RecoveryReport {
  size_t blocks_repaired = 0;
  size_t blocks_unrecoverable = 0;
  size_t disk_bytes_read = 0;     // Σ helper-block bytes read
  size_t network_bytes = 0;       // bytes shipped to rebuilding servers
  sim::Time makespan = 0;         // simulated time until the last repair
  // Repair plans compiled during this pass: one Gaussian elimination per
  // distinct (failed block, helper set) pattern; every other repair of the
  // storm reuses a pinned plan. blocks_repaired / plans_compiled is the
  // storm's plan-reuse factor.
  size_t plans_compiled = 0;
  // Fault-injection telemetry: blocks whose helper reads kept failing
  // transiently even after the manager's own retries (left lost — a later
  // pass picks them up), and helper reads that drew an injected latency
  // spike (the DES charges the stall to the repair's makespan).
  size_t transient_failures = 0;
  size_t latency_spikes = 0;
};

struct RecoveryConfig {
  // Fraction of each disk/NIC devoted to recovery traffic — production
  // systems throttle repairs so foreground I/O keeps headroom. 1.0 = flat
  // out; 0.25 = quarter speed (4× the transfer time).
  double bandwidth_fraction = 1.0;
  // Repairs in flight at once; further repairs wait for a wave to finish.
  size_t max_parallel_repairs = SIZE_MAX;
};

class RecoveryManager {
 public:
  RecoveryManager(sim::Simulation& sim, FileStore& store,
                  RecoveryConfig config = {});

  // Repairs every lost block of every file (the failed servers must have
  // been revived, so rebuilt blocks have a home). Repairs are issued
  // concurrently up to max_parallel_repairs; helper disks and NICs
  // serialize contended work in the DES, which is what creates the
  // RS-vs-LRC makespan gap.
  RecoveryReport recover_all();

 private:
  sim::Simulation& sim_;
  FileStore& store_;
  RecoveryConfig config_;
};

}  // namespace galloper::store
