#include "store/recovery.h"

#include <algorithm>

#include "util/check.h"

namespace galloper::store {

RecoveryManager::RecoveryManager(sim::Simulation& sim, FileStore& store,
                                 RecoveryConfig config)
    : sim_(sim), store_(store), config_(config) {
  GALLOPER_CHECK_MSG(
      config.bandwidth_fraction > 0 && config.bandwidth_fraction <= 1.0,
      "bandwidth fraction must be in (0, 1]");
  GALLOPER_CHECK(config.max_parallel_repairs >= 1);
}

RecoveryReport RecoveryManager::recover_all() {
  RecoveryReport report;
  sim::Cluster& cluster = store_.cluster();
  const sim::Time start = sim_.now();
  sim::Time finish = start;

  // Collect the work list first (real, bit-exact repairs happen here; the
  // DES below replays the transfers for timing).
  struct RepairJob {
    size_t block;
    size_t bytes;
    std::vector<size_t> helpers;
  };
  std::vector<RepairJob> jobs;
  const size_t plans_before = store_.repair_plan_count();
  for (FileId id = 0; id < store_.num_files(); ++id) {
    const size_t bytes = store_.block_bytes(id);
    for (size_t b : store_.lost_blocks(id)) {
      // The store retries transient helper-read faults internally; if a
      // repair STILL reports transient failure, give it a couple more
      // storm-level attempts before leaving the block for a later pass
      // (it is not unrecoverable — the data is structurally intact).
      constexpr size_t kRepairAttempts = 3;
      std::optional<std::vector<size_t>> helpers;
      bool transient = false;
      for (size_t attempt = 0; attempt < kRepairAttempts; ++attempt) {
        try {
          helpers = store_.repair(id, b);
          transient = false;
          break;
        } catch (const fault::TransientError&) {
          transient = true;
        }
      }
      if (transient) {
        ++report.transient_failures;
        continue;
      }
      if (!helpers) {
        ++report.blocks_unrecoverable;
        continue;
      }
      ++report.blocks_repaired;
      jobs.push_back({b, bytes, *helpers});
    }
  }
  report.plans_compiled = store_.repair_plan_count() - plans_before;

  // Throttling: a device at fraction f of its rate ⟺ f⁻¹× the work.
  const double inflate = 1.0 / config_.bandwidth_fraction;

  // Waves of at most max_parallel_repairs concurrent block rebuilds.
  sim::Time* finish_ptr = &finish;
  sim::Simulation* sim_ptr = &sim_;
  for (size_t wave_start = 0; wave_start < jobs.size();
       wave_start += config_.max_parallel_repairs) {
    const size_t wave_end = std::min(
        jobs.size(), wave_start + config_.max_parallel_repairs);
    for (size_t j = wave_start; j < wave_end; ++j) {
      const RepairJob& job = jobs[j];
      sim::Server* target = &cluster.server(store_.server_of(job.block));
      auto pending = std::make_shared<size_t>(job.helpers.size());
      for (size_t h : job.helpers) {
        report.disk_bytes_read += job.bytes;
        report.network_bytes += job.bytes;
        sim::Server* helper = &cluster.server(store_.server_of(h));
        const double fb = static_cast<double>(job.bytes) * inflate;
        const size_t n_helpers = job.helpers.size();
        // Injected latency spike: the helper's disk read stalls before it
        // starts, and the whole repair waits on its slowest helper — the
        // straggler effect local groups are supposed to bound.
        double spike = 0;
        if (fault::FaultInjector* inj = store_.fault_injector()) {
          spike = inj->read_latency();
          if (spike > 0) ++report.latency_spikes;
        }
        helper->disk().submit_delayed(
            fb, spike,
            [helper, target, fb, pending, n_helpers, finish_ptr,
                 sim_ptr] {
              helper->nic().submit(fb, [target, fb, pending, n_helpers,
                                        finish_ptr, sim_ptr] {
                target->nic().submit(fb, [target, fb, pending, n_helpers,
                                          finish_ptr, sim_ptr] {
                  if (--*pending == 0) {
                    const double work =
                        fb * static_cast<double>(n_helpers) / 500e6;
                    target->cpu().submit(work, [finish_ptr, sim_ptr] {
                      *finish_ptr = std::max(*finish_ptr, sim_ptr->now());
                    });
                  }
                });
              });
            });
      }
    }
    // Wave barrier: drain the event queue before launching the next wave.
    sim_.run();
  }
  report.makespan = finish - start;
  return report;
}

}  // namespace galloper::store
