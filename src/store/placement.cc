#include "store/placement.h"

#include <algorithm>
#include <functional>
#include <numeric>

#include "util/check.h"

namespace galloper::store {

std::vector<std::vector<size_t>> repair_groups(
    const codes::ErasureCode& code) {
  const size_t n = code.num_blocks();
  // Union-find over {block} ∪ helpers(block).
  std::vector<size_t> parent(n);
  std::iota(parent.begin(), parent.end(), size_t{0});
  std::function<size_t(size_t)> find = [&](size_t x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  for (size_t b = 0; b < n; ++b) {
    const auto helpers = code.repair_helpers(b);
    // Only LOCAL repair relations define a group: a block whose repair
    // needs ≥ k helpers (globals, or everything under plain RS) is not
    // locally repairable and stays a singleton — packing it with anything
    // buys no rack-internal repairs.
    if (helpers.size() >= code.k()) continue;
    for (size_t h : helpers) parent[find(h)] = find(b);
  }

  std::vector<std::vector<size_t>> groups;
  std::vector<size_t> group_of(n, SIZE_MAX);
  for (size_t b = 0; b < n; ++b) {
    const size_t root = find(b);
    if (group_of[root] == SIZE_MAX) {
      group_of[root] = groups.size();
      groups.emplace_back();
    }
    groups[group_of[root]].push_back(b);
  }
  return groups;
}

std::vector<size_t> place_blocks(const codes::ErasureCode& code,
                                 const Topology& topology,
                                 PlacementPolicy policy) {
  const size_t n = code.num_blocks();
  GALLOPER_CHECK_MSG(topology.servers() >= n,
                     "topology too small: " << topology.servers()
                                            << " servers for " << n
                                            << " blocks");
  std::vector<size_t> placement(n, SIZE_MAX);

  if (policy == PlacementPolicy::kSpread) {
    // Block b → rack (b mod racks), next free slot in that rack.
    std::vector<size_t> used(topology.racks, 0);
    for (size_t b = 0; b < n; ++b) {
      const size_t rack = b % topology.racks;
      GALLOPER_CHECK_MSG(used[rack] < topology.servers_per_rack,
                         "rack " << rack << " overflows under kSpread");
      placement[b] = rack * topology.servers_per_rack + used[rack]++;
    }
    return placement;
  }

  // kGroupPerRack: pack each repair group into its own rack (wrapping onto
  // further racks only when a rack fills up across groups).
  const auto groups = repair_groups(code);
  size_t rack = 0;
  std::vector<size_t> used(topology.racks, 0);
  for (const auto& group : groups) {
    // Find a rack with room for the whole group.
    size_t target = SIZE_MAX;
    for (size_t r = 0; r < topology.racks; ++r) {
      const size_t candidate = (rack + r) % topology.racks;
      if (topology.servers_per_rack - used[candidate] >= group.size()) {
        target = candidate;
        break;
      }
    }
    GALLOPER_CHECK_MSG(target != SIZE_MAX,
                       "no rack fits a repair group of " << group.size());
    for (size_t b : group)
      placement[b] = target * topology.servers_per_rack + used[target]++;
    rack = (target + 1) % topology.racks;
  }
  return placement;
}

size_t cross_rack_repair_bytes(const codes::ErasureCode& code,
                               const std::vector<size_t>& placement,
                               const Topology& topology, size_t failed,
                               size_t block_bytes) {
  GALLOPER_CHECK(placement.size() == code.num_blocks());
  GALLOPER_CHECK(failed < code.num_blocks());
  const size_t home = topology.rack_of(placement[failed]);
  size_t bytes = 0;
  for (size_t h : code.repair_helpers(failed))
    if (topology.rack_of(placement[h]) != home) bytes += block_bytes;
  return bytes;
}

bool survives_any_single_rack_failure(const codes::ErasureCode& code,
                                      const std::vector<size_t>& placement,
                                      const Topology& topology) {
  GALLOPER_CHECK(placement.size() == code.num_blocks());
  for (size_t rack = 0; rack < topology.racks; ++rack) {
    std::vector<size_t> alive;
    for (size_t b = 0; b < code.num_blocks(); ++b)
      if (topology.rack_of(placement[b]) != rack) alive.push_back(b);
    if (!code.decodable(alive)) return false;
  }
  return true;
}

}  // namespace galloper::store
