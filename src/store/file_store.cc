#include "store/file_store.h"

#include <algorithm>

#include "rt/pool.h"
#include "util/check.h"
#include "util/crc32c.h"

namespace galloper::store {

FileStore::FileStore(sim::Cluster& cluster, const codes::ErasureCode& code)
    : cluster_(cluster), code_(code) {
  GALLOPER_CHECK_MSG(cluster.size() >= code.num_blocks(),
                     "cluster smaller than the code's block count");
}

FileId FileStore::write(ConstByteSpan file) {
  auto blocks = code_.encode(file);
  std::vector<std::optional<Buffer>> stored;
  std::vector<uint32_t> crcs;
  stored.reserve(blocks.size());
  crcs.reserve(blocks.size());
  for (auto& b : blocks) {
    crcs.push_back(crc32c(b));
    stored.emplace_back(std::move(b));
  }
  file_block_bytes_.push_back(stored[0]->size());
  files_.push_back(std::move(stored));
  checksums_.push_back(std::move(crcs));
  return files_.size() - 1;
}

size_t FileStore::block_bytes(FileId id) const {
  GALLOPER_CHECK(id < files_.size());
  return file_block_bytes_[id];
}

std::optional<ConstByteSpan> FileStore::block(FileId id, size_t b) const {
  GALLOPER_CHECK(id < files_.size());
  GALLOPER_CHECK(b < code_.num_blocks());
  if (!cluster_.server(b).alive() || !files_[id][b].has_value())
    return std::nullopt;
  return ConstByteSpan(*files_[id][b]);
}

bool FileStore::block_available(FileId id, size_t b) const {
  return block(id, b).has_value();
}

void FileStore::fail_server(size_t server) {
  GALLOPER_CHECK(server < cluster_.size());
  cluster_.server(server).fail();
  if (server >= code_.num_blocks()) return;
  for (auto& file : files_) file[server].reset();
}

void FileStore::revive_server(size_t server) {
  GALLOPER_CHECK(server < cluster_.size());
  cluster_.server(server).recover();
}

std::vector<size_t> FileStore::available_blocks(FileId id) const {
  std::vector<size_t> out;
  for (size_t b = 0; b < code_.num_blocks(); ++b)
    if (block_available(id, b)) out.push_back(b);
  return out;
}

std::vector<size_t> FileStore::lost_blocks(FileId id) const {
  GALLOPER_CHECK(id < files_.size());
  std::vector<size_t> out;
  for (size_t b = 0; b < code_.num_blocks(); ++b)
    if (!files_[id][b].has_value()) out.push_back(b);
  return out;
}

bool FileStore::all_recoverable() const {
  for (FileId id = 0; id < files_.size(); ++id)
    if (!code_.decodable(available_blocks(id))) return false;
  return true;
}

std::optional<Buffer> FileStore::read(FileId id) const {
  GALLOPER_CHECK(id < files_.size());
  std::map<size_t, ConstByteSpan> view;
  for (size_t b : available_blocks(id)) view.emplace(b, *block(id, b));
  return code_.decode(view);
}

std::optional<Buffer> FileStore::read_original_only(FileId id) const {
  GALLOPER_CHECK(id < files_.size());
  core::InputFormat fmt(code_, file_block_bytes_[id]);
  // gather() wants one span per block; an unavailable block is fine only
  // if it holds no original bytes, in which case a zero dummy stands in.
  const Buffer dummy(file_block_bytes_[id], 0);
  std::vector<ConstByteSpan> blocks;
  for (size_t b = 0; b < code_.num_blocks(); ++b) {
    const auto data = block(id, b);
    if (data) {
      blocks.push_back(*data);
      continue;
    }
    if (fmt.original_bytes_in_block(b) > 0) return std::nullopt;
    blocks.push_back(ConstByteSpan(dummy));
  }
  return fmt.gather(blocks);
}

std::vector<size_t> FileStore::update_range(FileId id, size_t offset,
                                            ConstByteSpan data) {
  GALLOPER_CHECK(id < files_.size());
  const size_t chunk = file_block_bytes_[id] / code_.engine().stripes_per_block();
  GALLOPER_CHECK_MSG(offset % chunk == 0 && data.size() % chunk == 0,
                     "updates must be chunk-aligned (chunk = " << chunk
                                                               << " bytes)");
  const size_t first = offset / chunk;
  const size_t count = data.size() / chunk;
  GALLOPER_CHECK(first + count <= code_.engine().num_chunks());
  for (size_t b = 0; b < code_.num_blocks(); ++b)
    GALLOPER_CHECK_MSG(block_available(id, b),
                       "in-place update on a degraded stripe: repair block "
                           << b << " first");

  // Materialize the blocks vector for the engine, update, write back.
  std::vector<Buffer> blocks;
  blocks.reserve(code_.num_blocks());
  for (size_t b = 0; b < code_.num_blocks(); ++b)
    blocks.push_back(std::move(*files_[id][b]));
  std::vector<size_t> touched;
  for (size_t c = 0; c < count; ++c) {
    const auto t = code_.engine().update_chunk(
        blocks, first + c, data.subspan(c * chunk, chunk));
    touched.insert(touched.end(), t.begin(), t.end());
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  for (size_t b = 0; b < code_.num_blocks(); ++b) {
    checksums_[id][b] = crc32c(blocks[b]);
    files_[id][b] = std::move(blocks[b]);
  }
  return touched;
}

void FileStore::corrupt_block(FileId id, size_t block, size_t offset) {
  GALLOPER_CHECK(id < files_.size());
  GALLOPER_CHECK(block < code_.num_blocks());
  GALLOPER_CHECK_MSG(files_[id][block].has_value(),
                     "cannot corrupt a lost block");
  auto& data = *files_[id][block];
  GALLOPER_CHECK(offset < data.size());
  data[offset] ^= 0x01;
}

std::vector<FileStore::CorruptBlock> FileStore::scrub(bool quarantine) {
  // CRC every stored block on the pool: the jobs are independent
  // (disjoint reads, one flag byte each), and a full-store scrub is pure
  // checksum bandwidth — the one store operation that scales with TOTAL
  // stored bytes, not one stripe. The gather below keeps the report (and
  // quarantine order) identical to the serial scan.
  std::vector<CorruptBlock> jobs;
  for (FileId id = 0; id < files_.size(); ++id)
    for (size_t b = 0; b < code_.num_blocks(); ++b)
      if (files_[id][b].has_value()) jobs.push_back({id, b});
  std::vector<uint8_t> bad(jobs.size(), 0);
  rt::parallel_for(rt::ThreadPool::global(), jobs.size(),
                   rt::ThreadPool::default_threads(), [&](size_t j) {
                     const CorruptBlock& job = jobs[j];
                     if (crc32c(*files_[job.file][job.block]) !=
                         checksums_[job.file][job.block])
                       bad[j] = 1;
                   });

  std::vector<CorruptBlock> corrupt;
  for (size_t j = 0; j < jobs.size(); ++j) {
    if (!bad[j]) continue;
    corrupt.push_back(jobs[j]);
    if (quarantine) files_[jobs[j].file][jobs[j].block].reset();
  }
  return corrupt;
}

std::optional<std::vector<size_t>> FileStore::repair(FileId id,
                                                     size_t block_id) {
  GALLOPER_CHECK(id < files_.size());
  GALLOPER_CHECK(block_id < code_.num_blocks());
  GALLOPER_CHECK_MSG(cluster_.server(block_id).alive(),
                     "revive the target server before repairing onto it");
  if (files_[id][block_id].has_value()) return std::vector<size_t>{};

  // Preferred (local) helpers first; generic fallback to all available.
  std::vector<size_t> helpers = code_.repair_helpers(block_id);
  bool helpers_ok = true;
  for (size_t h : helpers) helpers_ok &= block_available(id, h);
  if (!helpers_ok) helpers = available_blocks(id);

  // One compiled plan per (failed, helper-set) pattern, pinned in the
  // store: the Gaussian elimination runs once for the whole storm, and the
  // remaining files' repairs are pure kernel execution.
  std::vector<size_t> pattern = helpers;
  std::sort(pattern.begin(), pattern.end());
  auto& plan = repair_plans_[{block_id, std::move(pattern)}];
  if (!plan) plan = code_.engine().plan_repair(block_id, helpers);

  std::map<size_t, ConstByteSpan> view;
  for (size_t h : helpers) view.emplace(h, *block(id, h));
  auto rebuilt = code_.engine().repair_block_with_plan(*plan, view);
  if (!rebuilt) return std::nullopt;
  files_[id][block_id] = std::move(*rebuilt);
  return helpers;
}

}  // namespace galloper::store
