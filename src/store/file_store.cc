#include "store/file_store.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>
#include <tuple>

#include "client/cache.h"
#include "io/fetch.h"
#include "rt/pool.h"
#include "util/check.h"
#include "util/crc32c.h"

namespace galloper::store {

// Every store data path that touches more than one block runs in parallel:
// read_range and repair gather their blocks as concurrent CRC-probe
// fetches on the async I/O pool (io::AsyncIo) and start decoding as soon
// as a decodable subset is clean; scrub's pure-CPU checksum sweep stays on
// the compute pool (rt::parallel_for) — it scales with cores, not with
// in-flight syscalls, and its in-memory latencies must not pollute the
// kFetch histogram that feeds the hedge deadline.
// Determinism contract: ALL fault-injector decisions (latency,
// transient failures) are pre-drawn on the calling thread in block order
// before anything is submitted, so the injector's rng sequence is
// identical to the serial form's no matter how the I/O threads interleave.
// Probes only read shared state; every mutation (quarantine, store-back)
// happens after the fetch set is joined.
//
// Locking discipline (mu_ is the block-state reader/writer lock):
//  - probes/decodes take mu_ SHARED, re-checking residency inside (a
//    concurrent reader may have quarantined the block since submission);
//  - quarantine/install/update take mu_ EXCLUSIVE;
//  - mu_ is never held across a FetchSet await/join, so a probe parked in
//    an injected stall cannot wedge writers (the stall runs BEFORE the
//    probe body via FetchSet's stall_s, outside any lock);
//  - repair_plans_ has its own plans_mu_ (plan compilation never touches
//    block state).

FileStore::FileStore(sim::Cluster& cluster, const codes::ErasureCode& code)
    : cluster_(cluster),
      code_(code),
      cache_uid_(client::next_cache_uid()),
      cache_(&client::BlockCache::global()) {
  GALLOPER_CHECK_MSG(cluster.size() >= code.num_blocks(),
                     "cluster smaller than the code's block count");
  placement_.resize(code.num_blocks());
  for (size_t b = 0; b < placement_.size(); ++b) placement_[b] = b;
}

size_t FileStore::server_of(size_t b) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  GALLOPER_CHECK(b < placement_.size());
  return placement_[b];
}

std::vector<size_t> FileStore::placement() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return placement_;
}

void FileStore::set_placement(std::vector<size_t> placement) {
  GALLOPER_CHECK_MSG(placement.size() == code_.num_blocks(),
                     "placement wants one server per block slot");
  std::vector<bool> used(cluster_.size(), false);
  for (size_t s : placement) {
    GALLOPER_CHECK_MSG(s < cluster_.size(), "placement beyond the cluster");
    GALLOPER_CHECK_MSG(!used[s], "placement maps two slots to one server");
    used[s] = true;
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  placement_ = std::move(placement);
}

void FileStore::reassign_block(size_t b, size_t server) {
  GALLOPER_CHECK(server < cluster_.size());
  GALLOPER_CHECK_MSG(cluster_.server(server).alive(),
                     "cannot reassign a block onto a dead server");
  std::unique_lock<std::shared_mutex> lock(mu_);
  GALLOPER_CHECK(b < placement_.size());
  for (size_t o = 0; o < placement_.size(); ++o)
    GALLOPER_CHECK_MSG(o == b || placement_[o] != server,
                       "server " << server << " already hosts slot " << o);
  placement_[b] = server;
}

FileStore::~FileStore() {
  if (!cache_) return;
  for (FileId id = 0; id < files_.size(); ++id)
    for (size_t b = 0; b < code_.num_blocks(); ++b)
      cache_->invalidate(cache_uid_, id, b);
}

void FileStore::bump_generation_locked(FileId id, size_t b) {
  ++block_gens_[id][b];
  // Drop eagerly (get() would also catch the mismatch) so a hot entry's
  // memory is reclaimed the moment it goes stale.
  if (cache_) cache_->invalidate(cache_uid_, id, b);
}

uint64_t FileStore::block_generation(FileId id, size_t b) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  GALLOPER_CHECK(id < files_.size());
  GALLOPER_CHECK(b < code_.num_blocks());
  return block_gens_[id][b];
}

std::vector<uint64_t> FileStore::block_generations(FileId id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  GALLOPER_CHECK(id < files_.size());
  return block_gens_[id];
}

std::optional<FileStore::VerifiedBlockCopy> FileStore::read_block_for_cache(
    FileId id, size_t b) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  GALLOPER_CHECK(id < files_.size());
  GALLOPER_CHECK(b < code_.num_blocks());
  const auto& blk = files_[id][b];
  if (!blk.has_value() || !cluster_.server(placement_[b]).alive())
    return std::nullopt;
  // One lock hold covers all three fields: the generation returned here is
  // provably the one these exact bytes were stored under, so an entry the
  // caller verifies and inserts under it can never be a stale snapshot.
  VerifiedBlockCopy copy;
  copy.bytes.resize(blk->size());
  std::copy(blk->begin(), blk->end(), copy.bytes.begin());
  copy.crc = checksums_[id][b];
  copy.generation = block_gens_[id][b];
  return copy;
}

std::optional<Buffer> FileStore::read_range_cached(FileId id, size_t offset,
                                                   size_t length) {
  client::BlockCache* cache = cache_;
  if (cache == nullptr || !cache->enabled() || length == 0)
    return std::nullopt;
  // Gather every current-generation entry for this file under one shared
  // hold — the generations read here are current while we hold the lock,
  // and a mutation after release bumps them, which only means we serve
  // bytes that were valid at lookup time (same guarantee any read has).
  std::vector<client::BlockCache::EntryRef> entries(code_.num_blocks());
  std::vector<size_t> cached_blocks;
  size_t chunk = 0;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    GALLOPER_CHECK(id < files_.size());
    chunk = file_block_bytes_[id] / code_.engine().stripes_per_block();
    const size_t fbytes = code_.engine().num_chunks() * chunk;
    GALLOPER_CHECK_MSG(offset + length <= fbytes,
                       "range [" << offset << ", " << offset + length
                                 << ") beyond file size " << fbytes);
    for (size_t b = 0; b < code_.num_blocks(); ++b) {
      auto e = cache->get(cache_uid_, id, b, block_gens_[id][b]);
      if (e != nullptr && e->size() == file_block_bytes_[id]) {
        entries[b] = std::move(e);
        cached_blocks.push_back(b);
      }
    }
  }
  if (cached_blocks.empty()) return std::nullopt;

  // Same per-chunk schedule a degraded read runs, keyed by the cached set;
  // with the data blocks cached the covered rows are verbatim copies —
  // pure memcpy. Unsolvable coverage → the real read path takes over.
  const auto plan = code_.engine().plan_decode_fast(cached_blocks);
  const size_t first = offset / chunk;
  const size_t last = (offset + length - 1) / chunk;
  for (size_t c = first; c <= last; ++c)
    if (!plan->row(c).solvable) return std::nullopt;
  std::vector<const uint8_t*> bases(plan->source_blocks().size());
  for (size_t s = 0; s < bases.size(); ++s)
    bases[s] = entries[plan->source_blocks()[s]]->data();
  Buffer out(length);
  for (size_t c = first; c <= last; ++c) {
    const size_t lo = std::max(offset, c * chunk);
    const size_t hi = std::min(offset + length, (c + 1) * chunk);
    plan->run_row(plan->row(c), out.data() + (lo - offset), bases.data(),
                  chunk, lo - c * chunk, hi - lo);
  }
  return out;
}

FileId FileStore::write(ConstByteSpan file) {
  // Encode outside the lock (pure CPU); the checksum-then-write-fault
  // sequence in write_encoded is identical to the historical inline form.
  return write_encoded(code_.encode(file));
}

FileId FileStore::write_encoded(std::vector<Buffer> blocks) {
  GALLOPER_CHECK_MSG(blocks.size() == code_.num_blocks(),
                     "write_encoded wants one buffer per code block");
  for (const auto& b : blocks)
    GALLOPER_CHECK_MSG(!b.empty() && b.size() == blocks[0].size(),
                       "write_encoded blocks must be equal-sized, non-empty");
  // Writers serialize on write_mu_ — only write_encoded ever appends to
  // files_, so the id guessed here is the id the append gets. mu_ is NOT
  // held across the injector callbacks: a write gate (the soak harness's)
  // calls back into the store's locked accessors.
  std::lock_guard<std::mutex> write_lock(write_mu_);
  FileId id;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    id = files_.size();
  }
  std::vector<std::optional<Buffer>> stored;
  std::vector<uint32_t> crcs;
  stored.reserve(blocks.size());
  crcs.reserve(blocks.size());
  for (size_t i = 0; i < blocks.size(); ++i) {
    auto& b = blocks[i];
    // TRUE checksum first, then the injector's write faults: an injected
    // bit flip / torn write is a silent corruption the CRC paths catch.
    // The file id passed to the injector is the one this write is creating.
    crcs.push_back(crc32c(b));
    if (injector_)
      injector_->on_write(id, i, std::span<uint8_t>(b.data(), b.size()));
    stored.emplace_back(std::move(b));
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  file_block_bytes_.push_back(stored[0]->size());
  files_.push_back(std::move(stored));
  checksums_.push_back(std::move(crcs));
  block_gens_.emplace_back(code_.num_blocks(), 0);
  return id;
}

size_t FileStore::num_files() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return files_.size();
}

size_t FileStore::block_bytes(FileId id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  GALLOPER_CHECK(id < files_.size());
  return file_block_bytes_[id];
}

size_t FileStore::file_bytes(FileId id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  GALLOPER_CHECK(id < files_.size());
  const size_t chunk =
      file_block_bytes_[id] / code_.engine().stripes_per_block();
  return code_.engine().num_chunks() * chunk;
}

std::optional<ConstByteSpan> FileStore::block_locked(FileId id,
                                                     size_t b) const {
  GALLOPER_CHECK(id < files_.size());
  GALLOPER_CHECK(b < code_.num_blocks());
  if (!cluster_.server(placement_[b]).alive() || !files_[id][b].has_value())
    return std::nullopt;
  return ConstByteSpan(*files_[id][b]);
}

bool FileStore::block_available_locked(FileId id, size_t b) const {
  return block_locked(id, b).has_value();
}

std::optional<ConstByteSpan> FileStore::block(FileId id, size_t b) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return block_locked(id, b);
}

bool FileStore::block_available(FileId id, size_t b) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return block_available_locked(id, b);
}

void FileStore::fail_server(size_t server) {
  GALLOPER_CHECK(server < cluster_.size());
  // Epoch bump FIRST, sweep second: a concurrent repair install holds the
  // exclusive lock and re-checks the epoch under it, so it either installs
  // before this sweep (and the sweep resets it — lost, consistent) or sees
  // the bumped epoch and aborts. Either order leaves the block lost.
  cluster_.server(server).fail();
  std::unique_lock<std::shared_mutex> lock(mu_);
  for (size_t b = 0; b < placement_.size(); ++b) {
    if (placement_[b] != server) continue;
    for (FileId id = 0; id < files_.size(); ++id) {
      if (files_[id][b].has_value()) bump_generation_locked(id, b);
      files_[id][b].reset();
    }
  }
}

void FileStore::revive_server(size_t server) {
  GALLOPER_CHECK(server < cluster_.size());
  cluster_.server(server).recover();
}

std::vector<size_t> FileStore::available_blocks_locked(FileId id) const {
  std::vector<size_t> out;
  for (size_t b = 0; b < code_.num_blocks(); ++b)
    if (block_available_locked(id, b)) out.push_back(b);
  return out;
}

std::vector<size_t> FileStore::lost_blocks(FileId id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  GALLOPER_CHECK(id < files_.size());
  std::vector<size_t> out;
  for (size_t b = 0; b < code_.num_blocks(); ++b)
    if (!files_[id][b].has_value()) out.push_back(b);
  return out;
}

bool FileStore::all_recoverable() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  for (FileId id = 0; id < files_.size(); ++id)
    if (!code_.decodable(available_blocks_locked(id))) return false;
  return true;
}

std::optional<Buffer> FileStore::read(FileId id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  GALLOPER_CHECK(id < files_.size());
  std::map<size_t, ConstByteSpan> view;
  for (size_t b : available_blocks_locked(id))
    view.emplace(b, *block_locked(id, b));
  return code_.decode(view);
}

std::optional<Buffer> FileStore::read_original_only(FileId id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  GALLOPER_CHECK(id < files_.size());
  core::InputFormat fmt(code_, file_block_bytes_[id]);
  // gather() wants one span per block; an unavailable block is fine only
  // if it holds no original bytes, in which case a zero dummy stands in.
  const Buffer dummy(file_block_bytes_[id], 0);
  std::vector<ConstByteSpan> blocks;
  for (size_t b = 0; b < code_.num_blocks(); ++b) {
    const auto data = block_locked(id, b);
    if (data) {
      blocks.push_back(*data);
      continue;
    }
    if (fmt.original_bytes_in_block(b) > 0) return std::nullopt;
    blocks.push_back(ConstByteSpan(dummy));
  }
  return fmt.gather(blocks);
}

std::optional<Buffer> FileStore::read_original_split(FileId id, size_t b,
                                                     size_t block_offset,
                                                     size_t length) {
  GALLOPER_CHECK_MSG(length > 0, "empty split read");
  // Hot path: a current-generation verified cache entry serves the split
  // with no injector draws and no verification (the entry was CRC-checked
  // when inserted) — sibling splits of one block pay the disk once.
  if (cache_ != nullptr && cache_->enabled()) {
    client::BlockCache::EntryRef entry;
    {
      std::shared_lock<std::shared_mutex> lock(mu_);
      GALLOPER_CHECK(id < files_.size());
      GALLOPER_CHECK(b < code_.num_blocks());
      GALLOPER_CHECK_MSG(block_offset + length <= file_block_bytes_[id],
                         "split [" << block_offset << ", "
                                   << block_offset + length
                                   << ") beyond block size "
                                   << file_block_bytes_[id]);
      entry = cache_->get(cache_uid_, id, b, block_gens_[id][b]);
    }
    if (entry != nullptr && entry->size() >= block_offset + length) {
      Buffer out(length);
      std::copy_n(entry->data() + block_offset, length, out.data());
      return out;
    }
  }

  counters_.verified_reads.fetch_add(1, std::memory_order_relaxed);

  // Pre-draw the fault schedule on this thread (one block — same per-block
  // draw order as read_range: latency first, then the retried transient
  // faults). The injected stall is slept on the CALLING thread: a split
  // read is the map slot's own local disk read, with no second replica to
  // hedge to — a stalled split is a straggler the job's other map slots
  // absorb, which is exactly the behavior the paper measures.
  double stall_s = 0;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    GALLOPER_CHECK(id < files_.size());
    GALLOPER_CHECK(b < code_.num_blocks());
    GALLOPER_CHECK_MSG(block_offset + length <= file_block_bytes_[id],
                       "split [" << block_offset << ", "
                                 << block_offset + length
                                 << ") beyond block size "
                                 << file_block_bytes_[id]);
    if (!block_available_locked(id, b)) return std::nullopt;
    stall_s = injector_ ? injector_->read_latency() : 0;
    constexpr size_t kReadAttempts = 3;
    for (size_t tries = 0; injector_ && injector_->read_fails();) {
      counters_.transient_faults.fetch_add(1, std::memory_order_relaxed);
      if (++tries >= kReadAttempts) return std::nullopt;
    }
  }
  if (stall_s > 0)
    std::this_thread::sleep_for(std::chrono::duration<double>(stall_s));

  // Verify-on-read: CRC the whole block under the shared lock. A clean
  // block yields the range plus a cache fill copied under the SAME hold as
  // the generation (the BlockCache insertion contract).
  std::optional<Buffer> out;
  std::optional<VerifiedBlockCopy> fill;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    const auto& blk = files_[id][b];
    if (!blk.has_value() || !cluster_.server(placement_[b]).alive())
      return std::nullopt;
    if (crc32c(*blk) == checksums_[id][b]) {
      out.emplace(length);
      std::copy_n(blk->data() + block_offset, length, out->data());
      if (cache_ != nullptr && cache_->enabled()) {
        fill.emplace();
        fill->bytes.resize(blk->size());
        std::copy(blk->begin(), blk->end(), fill->bytes.begin());
        fill->generation = block_gens_[id][b];
      }
    }
  }
  if (out.has_value()) {
    if (fill.has_value())
      cache_->put(cache_uid_, id, b, fill->generation,
                  std::make_shared<const Buffer>(std::move(fill->bytes)));
    return out;
  }

  // CRC mismatch: re-verify + quarantine under the exclusive lock (a
  // concurrent reader may have healed the block in the window — leave a
  // good block alone), then self-heal like read_range does.
  bool quarantined = false;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    const auto& blk = files_[id][b];
    if (blk.has_value() && crc32c(*blk) != checksums_[id][b]) {
      counters_.crc_failures.fetch_add(1, std::memory_order_relaxed);
      bump_generation_locked(id, b);
      files_[id][b].reset();
      quarantined = true;
    }
  }
  if (quarantined) {
    counters_.degraded_reads.fetch_add(1, std::memory_order_relaxed);
    if (cluster_.server(server_of(b)).alive()) {
      try {
        if (repair(id, b))
          counters_.auto_repairs.fetch_add(1, std::memory_order_relaxed);
      } catch (const fault::TransientError&) {
        // Helpers kept failing transiently; scrub/recovery retries later.
      }
    }
  }
  // nullopt either way — the caller's degraded ranged read serves the
  // bytes (clean again if the self-heal above landed).
  return std::nullopt;
}

std::vector<size_t> FileStore::update_range(FileId id, size_t offset,
                                            ConstByteSpan data) {
  // Phase 1 (exclusive): verify the stripe and compute the patched blocks
  // into LOCAL copies — files_ itself is untouched, so a throw (degraded
  // stripe, quarantined corruption) leaves the store exactly as it was.
  std::vector<Buffer> blocks;
  std::vector<size_t> touched;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    GALLOPER_CHECK(id < files_.size());
    const size_t chunk =
        file_block_bytes_[id] / code_.engine().stripes_per_block();
    GALLOPER_CHECK_MSG(offset % chunk == 0 && data.size() % chunk == 0,
                       "updates must be chunk-aligned (chunk = " << chunk
                                                                 << " bytes)");
    const size_t first = offset / chunk;
    const size_t count = data.size() / chunk;
    GALLOPER_CHECK(first + count <= code_.engine().num_chunks());
    for (size_t b = 0; b < code_.num_blocks(); ++b)
      GALLOPER_CHECK_MSG(block_available_locked(id, b),
                         "in-place update on a degraded stripe: repair block "
                             << b << " first");
    // CRC-verify before patching: a delta update against a silently corrupt
    // block would recompute its checksum over the corrupt bytes, laundering
    // the damage into a "valid" state no scrub could ever catch. Quarantine
    // the block and refuse instead — the caller repairs, then retries.
    for (size_t b = 0; b < code_.num_blocks(); ++b) {
      if (crc32c(*files_[id][b]) == checksums_[id][b]) continue;
      bump_generation_locked(id, b);
      files_[id][b].reset();
      GALLOPER_CHECK_MSG(false, "update found block "
                                    << b
                                    << " silently corrupt (quarantined): "
                                       "repair before updating");
    }
    blocks.reserve(code_.num_blocks());
    for (size_t b = 0; b < code_.num_blocks(); ++b)
      blocks.emplace_back(files_[id][b]->size());
    for (size_t b = 0; b < code_.num_blocks(); ++b)
      std::copy(files_[id][b]->begin(), files_[id][b]->end(),
                blocks[b].begin());
    for (size_t c = 0; c < count; ++c) {
      const auto t = code_.engine().update_chunk(
          blocks, first + c, data.subspan(c * chunk, chunk));
      touched.insert(touched.end(), t.begin(), t.end());
    }
    std::sort(touched.begin(), touched.end());
    touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  }

  // Phase 2 (no lock): the touched blocks hit "disk" — they alone ride the
  // injector's write-fault schedule. The callbacks run UNLOCKED because a
  // write gate may call back into the store (soak harness). The checksum
  // recorded below keeps the TRUE value, so a fault is a silent corruption.
  std::vector<uint32_t> new_crcs(touched.size());
  for (size_t i = 0; i < touched.size(); ++i) {
    const size_t b = touched[i];
    new_crcs[i] = crc32c(blocks[b]);
    if (injector_)
      injector_->on_write(
          id, b, std::span<uint8_t>(blocks[b].data(), blocks[b].size()));
  }

  // Phase 3 (exclusive): install. Callers serialize updates against reads
  // and chaos on the same file (the load-gen harness locks), so nothing
  // mutated the stripe between the phases.
  std::unique_lock<std::shared_mutex> lock(mu_);
  for (size_t i = 0; i < touched.size(); ++i) {
    const size_t b = touched[i];
    // Bump-then-install under one exclusive hold: any cache entry holding
    // the pre-update bytes is stale the instant the new content is visible.
    bump_generation_locked(id, b);
    files_[id][b] = std::move(blocks[b]);
    checksums_[id][b] = new_crcs[i];
  }
  return touched;
}

void FileStore::corrupt_block(FileId id, size_t block, size_t offset) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  GALLOPER_CHECK(id < files_.size());
  GALLOPER_CHECK(block < code_.num_blocks());
  GALLOPER_CHECK_MSG(files_[id][block].has_value(),
                     "cannot corrupt a lost block");
  auto& data = *files_[id][block];
  GALLOPER_CHECK(offset < data.size());
  data[offset] ^= 0x01;
}

std::vector<FileStore::CorruptBlock> FileStore::scrub(bool quarantine) {
  // CRC every stored block on the CPU pool: the jobs are independent
  // (disjoint reads, one flag byte each), and a full-store scrub is pure
  // checksum bandwidth — the one store operation that scales with TOTAL
  // stored bytes, not one stripe, so it wants every core, not the (narrow,
  // blocking-sized) I/O pool. Keeping it off AsyncIo also keeps the kFetch
  // latency histogram — which sets the hedge deadline — describing real
  // block fetches only. The calling thread holds mu_ shared for the whole
  // scan (pool workers read block bytes without taking the lock — the
  // shared hold is what keeps mutators out).
  std::vector<CorruptBlock> jobs;
  std::vector<uint8_t> bad;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    for (FileId id = 0; id < files_.size(); ++id)
      for (size_t b = 0; b < code_.num_blocks(); ++b)
        if (files_[id][b].has_value()) jobs.push_back({id, b});
    bad.assign(jobs.size(), 0);
    rt::parallel_for(rt::ThreadPool::global(), jobs.size(),
                     rt::ThreadPool::default_threads(), [&](size_t j) {
                       const CorruptBlock& job = jobs[j];
                       if (crc32c(*files_[job.file][job.block]) !=
                           checksums_[job.file][job.block])
                         bad[j] = 1;
                     });
  }

  // Re-verify each hit under the exclusive lock before quarantining: a
  // concurrent reader may have quarantined-and-healed the block since the
  // scan, and resetting the healed copy would turn a repaired block back
  // into an erasure. Serial callers see the identical report.
  std::vector<CorruptBlock> corrupt;
  std::unique_lock<std::shared_mutex> lock(mu_);
  for (size_t j = 0; j < jobs.size(); ++j) {
    if (!bad[j]) continue;
    const CorruptBlock& c = jobs[j];
    if (!files_[c.file][c.block].has_value()) continue;
    if (crc32c(*files_[c.file][c.block]) == checksums_[c.file][c.block])
      continue;
    corrupt.push_back(c);
    if (quarantine) {
      bump_generation_locked(c.file, c.block);
      files_[c.file][c.block].reset();
    }
  }
  return corrupt;
}

FileStore::ScrubReport FileStore::scrub_and_repair() {
  ScrubReport report;
  // Parallel CRC pass + quarantine, exactly like scrub(); then the rebuild
  // loop below runs strictly after it, because a repair READS peer blocks —
  // rebuilding under the parallel scan would race it.
  report.corrupt = scrub(/*quarantine=*/true);

  // Multi-pass healing: when several blocks of one file were quarantined,
  // block A may be unrepairable until block B is rebuilt (every quarantined
  // block is an erasure while it is down). Sweep until a full pass makes no
  // progress; transient injected read faults count as progress-still-
  // possible, with a pass cap so a pathological schedule cannot spin
  // forever.
  std::vector<CorruptBlock> pending = report.corrupt;
  constexpr size_t kMaxPasses = 8;
  for (size_t pass = 0; pass < kMaxPasses && !pending.empty(); ++pass) {
    bool progress = false;
    std::vector<CorruptBlock> remaining;
    for (const CorruptBlock& c : pending) {
      if (!cluster_.server(server_of(c.block)).alive()) {
        remaining.push_back(c);  // nowhere to store the rebuilt bytes (yet)
        continue;
      }
      try {
        if (repair(c.file, c.block)) {
          ++report.repaired;
          progress = true;
        } else {
          remaining.push_back(c);
        }
      } catch (const fault::TransientError&) {
        remaining.push_back(c);
        progress = true;  // a retry redraws the fault schedule
      }
    }
    pending = std::move(remaining);
    if (!progress) break;
  }
  report.unrecoverable = pending.size();
  return report;
}

FileStore::ReadStats FileStore::read_stats() const {
  ReadStats s;
  s.verified_reads = counters_.verified_reads.load(std::memory_order_relaxed);
  s.crc_failures = counters_.crc_failures.load(std::memory_order_relaxed);
  s.degraded_reads = counters_.degraded_reads.load(std::memory_order_relaxed);
  s.transient_faults =
      counters_.transient_faults.load(std::memory_order_relaxed);
  s.auto_repairs = counters_.auto_repairs.load(std::memory_order_relaxed);
  return s;
}

namespace {
// Pre-drawn per-block fetch schedule (see the determinism contract above).
struct Candidate {
  size_t block;
  double stall_s;  // injected latency, applied on the I/O thread
};
}  // namespace

std::optional<Buffer> FileStore::read_range(FileId id, size_t offset,
                                            size_t length) {
  return read_range_impl(id, offset, length, /*draw_faults=*/true);
}

std::optional<Buffer> FileStore::read_range_nofault(FileId id, size_t offset,
                                                    size_t length) {
  return read_range_impl(id, offset, length, /*draw_faults=*/false);
}

std::optional<Buffer> FileStore::read_range_impl(FileId id, size_t offset,
                                                 size_t length,
                                                 bool draw_faults) {
  // Hot-head fast path: a range fully covered by current-generation cached
  // entries is served with no probe fetches, no injector draws, and no
  // trip through the I/O pool (not counted as a verified read — nothing
  // was re-verified; the entries were CRC-checked when inserted).
  if (auto cached = read_range_cached(id, offset, length)) return cached;

  counters_.verified_reads.fetch_add(1, std::memory_order_relaxed);

  // Pre-draw the fault schedule on this thread, in block order — identical
  // draws to the old serial scan, so counters and rng state never depend
  // on I/O timing. Transient (injected) read faults are retried in place;
  // a block whose reads keep failing is simply left out of this read.
  std::vector<Candidate> candidates;
  size_t bbytes = 0;  // block size — what each CRC-probe fetch reads
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    GALLOPER_CHECK(id < files_.size());
    bbytes = file_block_bytes_[id];
    const size_t chunk =
        file_block_bytes_[id] / code_.engine().stripes_per_block();
    const size_t fbytes = code_.engine().num_chunks() * chunk;
    GALLOPER_CHECK_MSG(offset + length <= fbytes,
                       "range [" << offset << ", " << offset + length
                                 << ") beyond file size " << fbytes);
    for (size_t b = 0; b < code_.num_blocks(); ++b) {
      if (!block_available_locked(id, b)) continue;
      // The nofault form draws NOTHING: the caller (a stale-session
      // fallback) already paid this read's schedule — see the header.
      const double stall_s =
          (draw_faults && injector_) ? injector_->read_latency() : 0;
      constexpr size_t kReadAttempts = 3;
      bool readable = true;
      for (size_t tries = 0;
           draw_faults && injector_ && injector_->read_fails();) {
        counters_.transient_faults.fetch_add(1, std::memory_order_relaxed);
        if (++tries >= kReadAttempts) {
          readable = false;
          break;
        }
      }
      if (!readable) continue;
      candidates.push_back({b, stall_s});
    }
  }

  // Verify-on-read, concurrently: every candidate block gets a CRC-probe
  // fetch on the async I/O pool. await() unblocks as soon as a decodable
  // subset is clean, so the decode below overlaps the straggler probes.
  // A fetch still slow at the hedge deadline is re-issued without its
  // injected stall (a second replica path); the loser is cancelled when
  // the first result lands. Hedges draw NOTHING from the injector.
  // Probe bodies take mu_ shared and re-check residency: a sibling reader
  // may have quarantined the block between submission and the probe run.
  auto probe = [this, id](size_t b) {
    return [this, id, b] {
      if (injector_) injector_->crash_point("store.fetch");
      std::shared_lock<std::shared_mutex> lock(mu_);
      const auto& blk = files_[id][b];
      if (!blk.has_value()) return false;
      return crc32c(*blk) == checksums_[id][b];
    };
  };
  io::FetchSet fetches;
  std::vector<bool> hedged(code_.num_blocks(), false);
  const auto hedge_pending = [&](const std::vector<size_t>& pending) {
    for (size_t b : pending) {
      if (hedged[b]) continue;  // one hedge per key across both awaits
      // A budget denial (false) leaves hedged[b] unset so a later await may
      // retry once the bucket refills; the primary completes either way.
      hedged[b] = fetches.fetch(b, 0.0, probe(b), /*hedge=*/true, bbytes);
    }
  };
  for (const Candidate& c : candidates)
    fetches.fetch(c.block, c.stall_s, probe(c.block), /*hedge=*/false, bbytes);
  fetches.await(
      [&](const std::vector<size_t>& clean) { return code_.decodable(clean); },
      hedge_pending);

  // The (possibly degraded) read itself: the shared decode_fast/read_range
  // plan reconstructs only the chunks overlapping the request from the
  // clean blocks gathered so far. The view re-checks residency under the
  // shared lock; if a clean block vanished (concurrent quarantine) and the
  // decode came up empty, we retry once after the exhaustive await below,
  // when the final clean set is known.
  const auto decode_view = [&]() -> std::pair<std::optional<Buffer>, bool> {
    std::shared_lock<std::shared_mutex> lock(mu_);
    std::map<size_t, ConstByteSpan> view;
    bool all_present = true;
    for (size_t b : fetches.clean_keys()) {
      if (files_[id][b].has_value())
        view.emplace(b, ConstByteSpan(*files_[id][b]));
      else
        all_present = false;
    }
    return {code_.engine().read_range(view, offset, length), all_present};
  };
  auto [out, decode_authoritative] = decode_view();

  // Every probe must still resolve before ANY mutation — a straggler
  // finding corruption counts, and the quarantine below resets buffers a
  // probe may be reading. But "resolve" need not mean "wait out an
  // injected stall": a probe still parked past the hedge deadline is
  // re-issued stall-free here too (the hedge runs the same CRC check, so
  // nothing goes uncounted), and the loser is cancelled when the key
  // lands. The read's tail is then the hedge deadline, not the stall.
  fetches.await([](const std::vector<size_t>&) { return false; },
                hedge_pending);
  fetches.join();
  fetches.rethrow_any_failure();
  if (!decode_authoritative && !out.has_value())
    out = decode_view().first;  // final clean set, post-join

  // A mismatch quarantines the block so no later caller trusts it either.
  std::vector<size_t> corrupt;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    for (const Candidate& c : candidates) {
      if (fetches.outcome(c.block) != io::FetchSet::Outcome::kCorrupt)
        continue;
      counters_.crc_failures.fetch_add(1, std::memory_order_relaxed);
      corrupt.push_back(c.block);
      bump_generation_locked(id, c.block);
      files_[id][c.block].reset();  // quarantine
    }
  }
  if (!corrupt.empty())
    counters_.degraded_reads.fetch_add(1, std::memory_order_relaxed);

  // Self-heal: rebuild what the read quarantined, so the NEXT read is
  // clean. Plans come from the store's pinned pattern map. The nofault
  // form skips this (repair draws a gather + write-fault schedule); its
  // quarantines heal on the next scrub or drawing read.
  for (size_t b : corrupt) {
    if (!draw_faults) break;
    if (!cluster_.server(server_of(b)).alive()) continue;
    try {
      if (repair(id, b))
        counters_.auto_repairs.fetch_add(1, std::memory_order_relaxed);
    } catch (const fault::TransientError&) {
      // Helpers kept failing transiently; scrub/recovery will retry later.
    }
  }
  return out;
}

FileStore::ReadSession FileStore::begin_verified_read(FileId id) {
  counters_.verified_reads.fetch_add(1, std::memory_order_relaxed);

  // Identical pre-draw + probe machinery to read_range — one session
  // replaces a whole stream of per-call verifications, which is exactly
  // where the pipelined client's advantage comes from.
  std::vector<Candidate> candidates;
  size_t bbytes = 0;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    GALLOPER_CHECK(id < files_.size());
    bbytes = file_block_bytes_[id];
    for (size_t b = 0; b < code_.num_blocks(); ++b) {
      if (!block_available_locked(id, b)) continue;
      const double stall_s = injector_ ? injector_->read_latency() : 0;
      constexpr size_t kReadAttempts = 3;
      bool readable = true;
      for (size_t tries = 0; injector_ && injector_->read_fails();) {
        counters_.transient_faults.fetch_add(1, std::memory_order_relaxed);
        if (++tries >= kReadAttempts) {
          readable = false;
          break;
        }
      }
      if (!readable) continue;
      candidates.push_back({b, stall_s});
    }
  }

  auto probe = [this, id](size_t b) {
    return [this, id, b] {
      if (injector_) injector_->crash_point("store.fetch");
      std::shared_lock<std::shared_mutex> lock(mu_);
      const auto& blk = files_[id][b];
      if (!blk.has_value()) return false;
      return crc32c(*blk) == checksums_[id][b];
    };
  };
  io::FetchSet fetches;
  std::vector<bool> hedged(code_.num_blocks(), false);
  const auto hedge_pending = [&](const std::vector<size_t>& pending) {
    for (size_t b : pending) {
      if (hedged[b]) continue;
      hedged[b] = fetches.fetch(b, 0.0, probe(b), /*hedge=*/true, bbytes);
    }
  };
  for (const Candidate& c : candidates)
    fetches.fetch(c.block, c.stall_s, probe(c.block), /*hedge=*/false, bbytes);
  // One EXHAUSTIVE await: the session publishes its clean set to a
  // pipelined reader that will plan its decode from it, so every probe
  // must resolve first. Hedging keeps the wait bounded by the deadline
  // rather than the worst injected stall.
  fetches.await([](const std::vector<size_t>&) { return false; },
                hedge_pending);
  fetches.join();
  fetches.rethrow_any_failure();

  std::vector<size_t> corrupt;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    for (const Candidate& c : candidates) {
      if (fetches.outcome(c.block) != io::FetchSet::Outcome::kCorrupt)
        continue;
      counters_.crc_failures.fetch_add(1, std::memory_order_relaxed);
      corrupt.push_back(c.block);
      bump_generation_locked(id, c.block);
      files_[id][c.block].reset();  // quarantine
    }
  }
  if (!corrupt.empty())
    counters_.degraded_reads.fetch_add(1, std::memory_order_relaxed);
  for (size_t b : corrupt) {
    if (!cluster_.server(server_of(b)).alive()) continue;
    try {
      if (repair(id, b))
        counters_.auto_repairs.fetch_add(1, std::memory_order_relaxed);
    } catch (const fault::TransientError&) {
    }
  }

  ReadSession session;
  session.clean = fetches.clean_keys();
  session.block_bytes = bbytes;
  return session;
}

bool FileStore::fetch_block_pieces(
    FileId id, size_t b, const std::vector<std::pair<size_t, size_t>>& pieces,
    ByteSpan dst) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  GALLOPER_CHECK(id < files_.size());
  GALLOPER_CHECK(b < code_.num_blocks());
  const auto& blk = files_[id][b];
  if (!blk.has_value() || !cluster_.server(placement_[b]).alive())
    return false;
  GALLOPER_CHECK_MSG(dst.size() >= blk->size(),
                     "fetch_block_pieces dst smaller than the block");
  for (const auto& [lo, hi] : pieces) {
    GALLOPER_CHECK(lo <= hi && hi <= blk->size());
    if (hi > lo) std::memcpy(dst.data() + lo, blk->data() + lo, hi - lo);
  }
  return true;
}

std::shared_ptr<const codes::CodecPlan> FileStore::pinned_repair_plan(
    size_t block_id, const std::vector<size_t>& sorted_helpers,
    const std::vector<size_t>& helpers) {
  std::lock_guard<std::mutex> lock(plans_mu_);
  auto& plan = repair_plans_[{block_id, sorted_helpers}];
  if (!plan) plan = code_.engine().plan_repair(block_id, helpers);
  return plan;
}

std::optional<std::vector<size_t>> FileStore::repair(FileId id,
                                                     size_t block_id,
                                                     io::AsyncIo* io) {
  GALLOPER_CHECK(block_id < code_.num_blocks());
  if (!cluster_.server(server_of(block_id)).alive())
    return std::nullopt;  // dead target: revive (or reassign) first
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    GALLOPER_CHECK(id < files_.size());
    if (files_[id][block_id].has_value()) return std::vector<size_t>{};
  }

  // Transient helper-read faults (injected) are retried with a fresh
  // helper gather; persistent ones surface as TransientError — distinct
  // from nullopt, which means structurally unrecoverable (or the target
  // server died mid-repair — see the install re-check below).
  constexpr size_t kRepairReadAttempts = 6;
  // Stale-install retries (kill/revive cycle or slot reassignment raced
  // the attempt) don't consume transient-fault attempts, but a chaos actor
  // hammering the target must not pin this call forever.
  constexpr size_t kMaxIncarnationRetries = 8;
  size_t incarnation_retries = 0;
  for (size_t attempt = 0; attempt < kRepairReadAttempts; ++attempt) {
    // Helper selection + CRC verification happen atomically under the
    // exclusive lock: a bad helper is quarantined like any other corrupt
    // block (a later pass rebuilds it) and the selection rolls again
    // without it — a silently rotted helper must never launder its
    // corruption into a freshly-checksummed "repaired" block.
    std::vector<size_t> helpers;
    size_t bbytes = 0;  // block size, for the gather's budget accounting
    bool helper_quarantined = false;
    bool already_repaired = false;
    // The attempt's view of the TARGET: which server hosts the slot, and
    // that server's liveness epoch. Everything this attempt rebuilds is
    // only valid for this exact incarnation — the install below re-checks
    // both under the exclusive lock and aborts on any change, because a
    // kill/revive cycle in between means the revive declared the block
    // lost and installing a pre-cycle rebuild would silently resurrect it
    // (the race file_store.h used to merely document).
    size_t target_server = 0;
    uint64_t target_epoch = 0;
    {
      std::unique_lock<std::shared_mutex> lock(mu_);
      bbytes = file_block_bytes_[id];
      target_server = placement_[block_id];
      target_epoch = cluster_.server(target_server).epoch();
      if ((target_epoch & 1) != 0) return std::nullopt;  // died since entry
      if (files_[id][block_id].has_value()) {
        already_repaired = true;  // a concurrent reader healed it first
      } else {
        // Preferred (local) helpers first; generic fallback to all
        // available.
        helpers = code_.repair_helpers(block_id);
        bool helpers_ok = true;
        for (size_t h : helpers)
          helpers_ok &= block_available_locked(id, h);
        if (!helpers_ok) helpers = available_blocks_locked(id);
        for (size_t h : helpers) {
          if (crc32c(*files_[id][h]) == checksums_[id][h]) continue;
          counters_.crc_failures.fetch_add(1, std::memory_order_relaxed);
          bump_generation_locked(id, h);
          files_[id][h].reset();
          helper_quarantined = true;
        }
      }
    }
    if (already_repaired) return std::vector<size_t>{};
    if (helper_quarantined) {
      --attempt;  // reselection, not a transient retry
      continue;
    }

    // One compiled plan per (failed, helper-set) pattern, pinned in the
    // store: the Gaussian elimination runs once for the whole storm, and
    // the remaining files' repairs are pure kernel execution.
    std::vector<size_t> want = helpers;
    std::sort(want.begin(), want.end());
    std::shared_ptr<const codes::CodecPlan> plan =
        pinned_repair_plan(block_id, want, helpers);

    // Pre-draw the gather's fault schedule in helper order, breaking at
    // the first failure exactly like the old serial gather loop (the
    // forced-failure tests count on one draw per failed attempt).
    struct HelperFetch {
      size_t helper;
      double stall_s;
    };
    std::vector<HelperFetch> fetch_plan;
    bool gather_failed = false;
    for (size_t h : helpers) {
      const double stall_s = injector_ ? injector_->read_latency() : 0;
      if (injector_ && injector_->read_fails()) {
        counters_.transient_faults.fetch_add(1, std::memory_order_relaxed);
        gather_failed = true;
        break;
      }
      fetch_plan.push_back({h, stall_s});
    }
    if (gather_failed) continue;

    // Gather the helpers concurrently. Ready means every planned helper
    // answered — or, once the hedge deadline has fired, any clean set the
    // code can rebuild from (drafted spares). The `hedged` gate keeps
    // no-stall repairs on the pinned plan: a partial subset must never
    // grab a fresh pattern just because its probes finished first.
    io::FetchSet fetches(io ? *io : io::AsyncIo::global());
    bool hedged = false;
    auto fetch_probe = [this] {
      return [this] {
        if (injector_) injector_->crash_point("store.fetch");
        return true;
      };
    };
    for (const HelperFetch& f : fetch_plan)
      fetches.fetch(f.helper, f.stall_s, fetch_probe(), /*hedge=*/false,
                    bbytes);
    fetches.await(
        [&](const std::vector<size_t>& clean) {
          if (std::includes(clean.begin(), clean.end(), want.begin(),
                            want.end()))
            return true;
          return hedged && code_.decodable(clean);
        },
        [&](const std::vector<size_t>& pending) {
          hedged = true;
          // Hedge the slow helpers on a second replica path, and draft
          // CRC-clean spare helpers as an alternate decodable route. No
          // injector draws here: hedges must not perturb the schedule.
          for (size_t h : pending)
            fetches.fetch(h, 0.0, fetch_probe(), /*hedge=*/true, bbytes);
          std::vector<size_t> spares;
          {
            std::shared_lock<std::shared_mutex> lock(mu_);
            for (size_t s : available_blocks_locked(id)) {
              if (s == block_id) continue;
              if (std::find(helpers.begin(), helpers.end(), s) !=
                  helpers.end())
                continue;
              if (crc32c(*files_[id][s]) != checksums_[id][s]) continue;
              spares.push_back(s);
            }
          }
          for (size_t s : spares)
            fetches.fetch(s, 0.0, fetch_probe(), /*hedge=*/true, bbytes);
        });
    // Losers (hedged-over stalls) are cancelled before anything proceeds;
    // an async crash point surfaces here, with the store unmutated.
    fetches.cancel_and_join();
    fetches.rethrow_any_failure();

    const std::vector<size_t> clean = fetches.clean_keys();
    std::vector<size_t> use_helpers;
    std::shared_ptr<const codes::CodecPlan> use_plan;
    if (std::includes(clean.begin(), clean.end(), want.begin(), want.end())) {
      use_helpers = helpers;  // the planned gather completed — pinned plan
      use_plan = plan;
    } else if (code_.decodable(clean)) {
      use_helpers = clean;  // hedged route: rebuild from whoever answered
      use_plan = pinned_repair_plan(block_id, clean, clean);
    } else {
      continue;  // cancelled mid-gather with no decodable subset: retry
    }

    // Rebuild under the shared lock (helpers must stay resident through
    // the kernel run); a helper a concurrent reader quarantined since the
    // gather forces a fresh selection.
    std::optional<Buffer> rebuilt;
    bool helpers_vanished = false;
    {
      std::shared_lock<std::shared_mutex> lock(mu_);
      std::map<size_t, ConstByteSpan> view;
      for (size_t h : use_helpers) {
        const auto data = block_locked(id, h);
        if (!data) {
          helpers_vanished = true;
          break;
        }
        view.emplace(h, *data);
      }
      if (!helpers_vanished)
        rebuilt = code_.engine().repair_block_with_plan(*use_plan, view);
    }
    if (helpers_vanished) continue;
    if (!rebuilt) return std::nullopt;
    // Crash window: the rebuild finished but the block is not yet
    // installed. A crash here must leave the store exactly as before the
    // repair (minus the pinned plan) — re-running the repair completes it.
    if (injector_) injector_->crash_point("store.repair");
    // The store-back rides the injector's write-fault schedule, UNLOCKED
    // (a write gate may call back into the store's locked accessors).
    if (injector_)
      injector_->on_write(
          id, block_id,
          std::span<uint8_t>(rebuilt->data(), rebuilt->size()));
    {
      std::unique_lock<std::shared_mutex> lock(mu_);
      // Liveness-epoch re-check (the revive-vs-in-flight-repair fix): the
      // rebuilt bytes belong to the incarnation captured at attempt start.
      // fail_server bumps the epoch BEFORE its exclusive-lock sweep, so
      // under this lock any kill (or kill/revive cycle, or reassign_block
      // cutover) that raced this attempt is visible here.
      const uint64_t now_epoch = cluster_.server(target_server).epoch();
      if (placement_[block_id] != target_server || now_epoch != target_epoch) {
        if (placement_[block_id] == target_server && (now_epoch & 1) != 0)
          return std::nullopt;  // target is dead NOW: the block stays lost
        // Kill/revive cycle or slot reassignment, target usable again:
        // discard the stale rebuild and run a fresh attempt against the
        // new incarnation (helpers re-read, epoch re-captured).
        if (++incarnation_retries > kMaxIncarnationRetries)
          throw fault::TransientError(
              "target of repair of block " + std::to_string(block_id) +
              " kept changing incarnation");
        --attempt;
        continue;
      }
      // A concurrent repair may have won the race; its bytes are as good
      // as ours (both CRC-verified rebuilds of the same block).
      if (!files_[id][block_id].has_value()) {
        bump_generation_locked(id, block_id);
        files_[id][block_id] = std::move(*rebuilt);
      }
    }
    return use_helpers;
  }
  throw fault::TransientError("helper reads for repair of block " +
                              std::to_string(block_id) +
                              " kept failing transiently");
}

}  // namespace galloper::store
