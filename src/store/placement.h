// Rack-aware block placement — the deployment decision that interacts
// directly with repair locality. Two extremes:
//
//  * kSpread: blocks round-robin across racks. Whole-rack failures erase
//    at most ⌈n/racks⌉ blocks (best fault isolation), but a local repair's
//    helpers usually live in OTHER racks, so repair traffic crosses the
//    aggregation switches.
//  * kGroupPerRack: each local repair group (a block plus its preferred
//    helpers) is packed into one rack. Local repairs become rack-internal
//    (cheap), but losing the rack loses a whole group at once.
//
// This module computes placements, prices repair traffic against a
// topology, and checks rack-failure survivability via the decodability
// oracle — the quantified version of the paper's remark that global
// parities should sit on weaker servers.
#pragma once

#include <vector>

#include "codes/erasure_code.h"

namespace galloper::store {

struct Topology {
  size_t racks = 1;
  size_t servers_per_rack = 1;

  size_t servers() const { return racks * servers_per_rack; }
  size_t rack_of(size_t server) const { return server / servers_per_rack; }
};

enum class PlacementPolicy { kSpread, kGroupPerRack };

// The repair groups of a code, inferred from its preferred helper sets:
// blocks whose helper sets interlink form one group (for Pyramid/Galloper:
// each local group; the global parities form the tail group).
std::vector<std::vector<size_t>> repair_groups(const codes::ErasureCode& code);

// block → server assignment under the policy. Requires
// topology.servers() ≥ code.num_blocks(), and for kGroupPerRack that each
// repair group fits in a rack. No two blocks share a server.
std::vector<size_t> place_blocks(const codes::ErasureCode& code,
                                 const Topology& topology,
                                 PlacementPolicy policy);

// Bytes that cross rack boundaries when `failed` is rebuilt in place from
// its preferred helpers, each shipping one whole block.
size_t cross_rack_repair_bytes(const codes::ErasureCode& code,
                               const std::vector<size_t>& placement,
                               const Topology& topology, size_t failed,
                               size_t block_bytes);

// True if data survive the failure of ANY single whole rack.
bool survives_any_single_rack_failure(const codes::ErasureCode& code,
                                      const std::vector<size_t>& placement,
                                      const Topology& topology);

}  // namespace galloper::store
