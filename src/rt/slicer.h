// Byte-range slicing for the parallel codec data paths.
//
// Workers own contiguous, disjoint sub-ranges of every output stripe. Slice
// boundaries are rounded to cache-line multiples so two workers never write
// the same 64-byte line (no false sharing between adjacent slices), and the
// ranges are balanced to within one alignment unit — the naive
// ceil(n/threads) split hands the last worker a short or empty tail slice
// while the others carry a full one.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

namespace galloper::rt {

// Destructive-interference granularity for slice boundaries. 64 bytes covers
// every x86 and most ARM parts; a too-large value only costs slicing
// granularity, never correctness.
inline constexpr size_t kCacheLine = 64;

struct SliceRange {
  size_t lo;
  size_t hi;  // exclusive

  bool operator==(const SliceRange&) const = default;
};

// Splits [0, n) into at most max_slices non-empty contiguous ranges. Every
// boundary except the final hi = n is a multiple of `align`, and slice sizes
// differ by at most one `align` unit. Returns fewer than max_slices ranges
// when n has fewer than max_slices alignment units (never an empty slice).
inline std::vector<SliceRange> slice_ranges(size_t n, size_t max_slices,
                                            size_t align = kCacheLine) {
  std::vector<SliceRange> out;
  if (n == 0 || max_slices == 0) return out;
  if (align == 0) align = 1;
  const size_t units = (n + align - 1) / align;
  const size_t slices = std::min(max_slices, units);
  const size_t base = units / slices;
  const size_t extra = units % slices;  // first `extra` slices get one more
  out.reserve(slices);
  size_t lo = 0;
  for (size_t s = 0; s < slices; ++s) {
    const size_t slice_units = base + (s < extra ? 1 : 0);
    const size_t hi = std::min(n, lo + slice_units * align);
    out.push_back({lo, hi});
    lo = hi;
  }
  return out;
}

}  // namespace galloper::rt
