#include "rt/pool.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <mutex>

namespace galloper::rt {

// One worker's task deque. The owner pops from the back (LIFO, cache-warm);
// thieves pop from the front (FIFO). A plain mutex per deque is plenty here:
// the codec paths enqueue a handful of long-running drain tasks per call,
// not thousands of micro-tasks, so the lock is uncontended in practice and
// stays trivially TSan-clean.
struct ThreadPool::Deque {
  std::mutex mu;
  std::deque<Task> tasks;
};

// Wake-up plumbing shared by all workers. pending counts tasks that sit in
// some deque but have not been claimed yet; it is only mutated under mu so
// the condition-variable predicate cannot miss a wake.
struct ThreadPool::Sync {
  std::mutex mu;
  std::condition_variable cv;
  size_t pending = 0;
  bool stop = false;
};

ThreadPool::ThreadPool(size_t workers) : sync_(std::make_unique<Sync>()) {
  deques_.reserve(workers);
  for (size_t i = 0; i < workers; ++i)
    deques_.push_back(std::make_unique<Deque>());
  threads_.reserve(workers);
  for (size_t i = 0; i < workers; ++i)
    threads_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(sync_->mu);
    sync_->stop = true;
  }
  sync_->cv.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::submit(Task task) {
  if (deques_.empty()) {  // serial pool: run inline
    task();
    return;
  }
  static std::atomic<size_t> rr{0};
  const size_t target = rr.fetch_add(1, std::memory_order_relaxed) %
                        deques_.size();
  {
    std::lock_guard<std::mutex> lk(deques_[target]->mu);
    deques_[target]->tasks.push_back(std::move(task));
  }
  {
    std::lock_guard<std::mutex> lk(sync_->mu);
    ++sync_->pending;
  }
  sync_->cv.notify_one();
}

// Claims one task — own deque back first, then steal from the others' front
// — and runs it. Returns false when every deque is empty.
bool ThreadPool::try_run_one(size_t self) {
  Task task;
  const size_t n = deques_.size();
  for (size_t probe = 0; probe < n; ++probe) {
    const size_t q = (self + probe) % n;
    std::lock_guard<std::mutex> lk(deques_[q]->mu);
    if (deques_[q]->tasks.empty()) continue;
    if (probe == 0) {
      task = std::move(deques_[q]->tasks.back());
      deques_[q]->tasks.pop_back();
    } else {
      task = std::move(deques_[q]->tasks.front());
      deques_[q]->tasks.pop_front();
    }
    break;
  }
  if (!task) return false;
  {
    std::lock_guard<std::mutex> lk(sync_->mu);
    --sync_->pending;
  }
  task();
  return true;
}

void ThreadPool::worker_loop(size_t self) {
  for (;;) {
    if (try_run_one(self)) continue;
    std::unique_lock<std::mutex> lk(sync_->mu);
    sync_->cv.wait(lk, [&] { return sync_->stop || sync_->pending > 0; });
    if (sync_->stop && sync_->pending == 0) return;
  }
}

ThreadPool& ThreadPool::global() {
  // Intentionally leaked (never destroyed): engines may run parallel calls
  // from static-destructor-ordered contexts, and joining at exit buys
  // nothing for a process that is terminating anyway.
  static ThreadPool* pool = new ThreadPool(default_threads());
  return *pool;
}

size_t ThreadPool::default_threads() {
  if (const char* v = std::getenv("GALLOPER_THREADS")) {
    const long parsed = std::strtol(v, nullptr, 10);
    if (parsed > 0) return static_cast<size_t>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

namespace {

// Shared state of one parallel_for call. Owned by shared_ptr so drain tasks
// that wake after the caller already returned (all indices claimed) still
// have a live object to inspect.
struct ForState {
  size_t count;
  const std::function<void(size_t)>* body;
  std::atomic<size_t> next{0};

  std::mutex mu;
  std::condition_variable done_cv;
  size_t finished = 0;
  std::exception_ptr first_error;

  // Claims and runs indices until none remain. Every claimed index is
  // executed by its claimer, so completion of all runners implies
  // completion of all indices.
  void drain() {
    for (;;) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        (*body)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lk(mu);
        if (!first_error) first_error = std::current_exception();
      }
      std::lock_guard<std::mutex> lk(mu);
      if (++finished == count) done_cv.notify_all();
    }
  }
};

}  // namespace

void parallel_for(ThreadPool& pool, size_t count, size_t parallelism,
                  const std::function<void(size_t)>& body) {
  if (count == 0) return;
  parallelism = std::min(parallelism, count);
  if (parallelism <= 1 || pool.workers() == 0) {
    for (size_t i = 0; i < count; ++i) body(i);
    return;
  }

  auto state = std::make_shared<ForState>();
  state->count = count;
  state->body = &body;

  const size_t helpers = std::min(parallelism - 1, pool.workers());
  for (size_t h = 0; h < helpers; ++h)
    pool.submit([state] { state->drain(); });
  state->drain();

  std::unique_lock<std::mutex> lk(state->mu);
  state->done_cv.wait(lk, [&] { return state->finished == state->count; });
  if (state->first_error) std::rethrow_exception(state->first_error);
}

}  // namespace galloper::rt
