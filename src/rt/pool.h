// Persistent work-stealing thread pool: the execution layer every parallel
// codec data path runs on.
//
// The previous design spawned and joined fresh std::threads inside
// encode_parallel on every call; with the SIMD kernels a stripe encodes in
// hundreds of microseconds, so thread creation dominated. This pool starts
// its workers once and parks them on a condition variable between calls.
//
// Structure: one deque per worker, guarded by a per-deque mutex. submit()
// distributes tasks round-robin; a worker pops its own deque LIFO (the task
// it queued last is the one whose data is hottest) and steals FIFO from the
// other deques when its own runs dry (the oldest task is the one least
// likely to contend with its owner). parallel_for() layers dynamic
// self-balancing on top: runners claim iteration indices from a shared
// atomic counter, so a slow slice never leaves the other runners idle.
//
// The calling thread always participates as a runner, which makes nested
// parallel_for calls deadlock-free (a caller that finds no free worker
// simply executes everything itself) and makes a zero-worker pool a valid
// serial executor.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

namespace galloper::rt {

class ThreadPool {
 public:
  using Task = std::function<void()>;

  // Starts `workers` persistent worker threads (0 is valid: every
  // parallel_for then runs entirely on the calling thread).
  explicit ThreadPool(size_t workers);

  // Drains already-submitted tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t workers() const { return threads_.size(); }

  // Enqueues a task for asynchronous execution (round-robin over the worker
  // deques). Fire-and-forget; parallel_for is the synchronizing wrapper the
  // codec paths use.
  void submit(Task task);

  // The process-wide pool shared by every CodecEngine. Sized by
  // default_threads() on first use and kept alive for the process lifetime.
  static ThreadPool& global();

  // GALLOPER_THREADS when set to a positive integer, else
  // std::thread::hardware_concurrency() (min 1).
  static size_t default_threads();

 private:
  struct Deque;

  bool try_run_one(size_t self);
  void worker_loop(size_t self);

  std::vector<std::unique_ptr<Deque>> deques_;
  std::vector<std::thread> threads_;

  struct Sync;
  std::unique_ptr<Sync> sync_;
};

// Runs body(i) for every i in [0, count) using up to `parallelism` runners
// (the caller plus at most parallelism-1 pool workers). Blocks until every
// index has executed. Indices are claimed dynamically, so unequal iteration
// costs self-balance. The first exception thrown by any body is rethrown in
// the caller after all indices finish. parallelism <= 1, count <= 1 or a
// zero-worker pool degrade to a plain serial loop — bit-identical results
// either way, since every index runs exactly once.
void parallel_for(ThreadPool& pool, size_t count, size_t parallelism,
                  const std::function<void(size_t)>& body);

}  // namespace galloper::rt
