// Bounded producer/consumer queue for the streaming archive pipeline.
//
// The CLI's encode/decode/repair paths run as read → codec → write stages
// connected by these queues, so a multi-GB file flows through in O(queue
// capacity) segments of memory instead of being slurped whole. The I/O
// stages run on DEDICATED std::threads, never as ThreadPool tasks: the
// codec stage fans its byte work out on the pool, and on a small (or
// one-worker) pool a reader and writer parked in pool deques would occupy
// every worker while blocked on a full/empty queue — a deadlock the
// dedicated threads make structurally impossible. Blocking on a condition
// variable is exactly right for these stages anyway: they are I/O-bound
// and should sleep, not spin or steal.
//
// close() is the clean end-of-stream signal: producers see push() return
// false, consumers drain the remaining items and then get nullopt.
//
// poison() is the ERROR signal: it additionally records the failing stage's
// exception and DISCARDS queued items, so consumers unblock immediately
// instead of processing work downstream of an I/O error. A failing stage
// poisons every queue it touches so its peers drain cleanly (no deadlock,
// no half-consumed stream), and the pipeline driver rethrows the recorded
// error after joining — either from the stage's own record or via
// rethrow_if_poisoned().
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <cstdlib>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "util/check.h"

namespace galloper::rt {

// Capacity for pipeline stage queues: GALLOPER_QUEUE_DEPTH when set to a
// positive integer (clamped to [1, 64]), else 2 — one segment in flight
// per direction keeps memory O(segment) while still overlapping read,
// codec, and write. Re-read on every call so tests (and long-lived
// processes changing the env between pipelines) see updates.
inline size_t queue_depth() {
  if (const char* env = std::getenv("GALLOPER_QUEUE_DEPTH")) {
    const long n = std::strtol(env, nullptr, 10);
    if (n >= 1) return std::min<size_t>(static_cast<size_t>(n), 64);
  }
  return 2;
}

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {
    GALLOPER_CHECK(capacity_ > 0);
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  // Blocks while the queue is full. Returns false — dropping `item` — once
  // the queue is closed; producers use this to stop early when the
  // consumer side aborts.
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  // Blocks while the queue is empty. After close(), remaining items still
  // drain in FIFO order; then nullopt signals end-of-stream.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    std::optional<T> item(std::move(items_.front()));
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  // Idempotent; wakes every blocked producer and consumer.
  void close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  // Error-path close: records why the stream died and drops everything
  // still queued — after an I/O error the items behind it must not be
  // consumed as if the stream were healthy. The first poison wins;
  // subsequent calls only close. `error` may be null (acts like close()
  // plus the item drop).
  void poison(std::exception_ptr error) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!error_ && error) error_ = error;
    items_.clear();
    closed_ = true;
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool poisoned() const {
    std::lock_guard<std::mutex> lock(mu_);
    return error_ != nullptr;
  }

  // Rethrows the first recorded poison error, if any. Call after joining
  // the pipeline's stages.
  void rethrow_if_poisoned() const {
    std::exception_ptr error;
    {
      std::lock_guard<std::mutex> lock(mu_);
      error = error_;
    }
    if (error) std::rethrow_exception(error);
  }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  std::exception_ptr error_;
  bool closed_ = false;
};

// One pipeline stage on a dedicated thread (see the header comment for why
// stages never run as pool tasks). A throwing stage records its exception
// and runs `abort(error)` — which POISONS the pipeline's queues, so every
// peer unblocks immediately and queued items behind the error are discarded
// instead of processed — and the driver rethrows after joining.
class StageThread {
 public:
  template <typename Fn>
  StageThread(Fn fn, std::function<void(std::exception_ptr)> abort)
      : thread_([this, fn = std::move(fn), abort = std::move(abort)] {
          try {
            fn();
          } catch (...) {
            error_ = std::current_exception();
            abort(error_);
          }
        }) {}

  StageThread(const StageThread&) = delete;
  StageThread& operator=(const StageThread&) = delete;

  ~StageThread() { join(); }

  void join() {
    if (thread_.joinable()) thread_.join();
  }
  void rethrow() {
    if (error_) std::rethrow_exception(error_);
  }

 private:
  std::exception_ptr error_;
  std::thread thread_;
};

}  // namespace galloper::rt
