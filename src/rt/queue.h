// Bounded producer/consumer queue for the streaming archive pipeline.
//
// The CLI's encode/decode/repair paths run as read → codec → write stages
// connected by these queues, so a multi-GB file flows through in O(queue
// capacity) segments of memory instead of being slurped whole. The I/O
// stages run on DEDICATED std::threads, never as ThreadPool tasks: the
// codec stage fans its byte work out on the pool, and on a small (or
// one-worker) pool a reader and writer parked in pool deques would occupy
// every worker while blocked on a full/empty queue — a deadlock the
// dedicated threads make structurally impossible. Blocking on a condition
// variable is exactly right for these stages anyway: they are I/O-bound
// and should sleep, not spin or steal.
//
// close() is the shutdown/error signal in both directions: producers see
// push() return false, consumers drain the remaining items and then get
// nullopt. A failing stage closes every queue it touches so its peers
// unblock, records its exception, and the pipeline driver rethrows after
// joining.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "util/check.h"

namespace galloper::rt {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {
    GALLOPER_CHECK(capacity_ > 0);
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  // Blocks while the queue is full. Returns false — dropping `item` — once
  // the queue is closed; producers use this to stop early when the
  // consumer side aborts.
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  // Blocks while the queue is empty. After close(), remaining items still
  // drain in FIFO order; then nullopt signals end-of-stream.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    std::optional<T> item(std::move(items_.front()));
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  // Idempotent; wakes every blocked producer and consumer.
  void close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_full_.notify_all();
    not_empty_.notify_all();
  }

 private:
  const size_t capacity_;
  std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace galloper::rt
