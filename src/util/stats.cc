#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.h"

namespace galloper {

void Stats::add(double v) {
  values_.push_back(v);
  sorted_ = false;
}

void Stats::ensure_sorted() const {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double Stats::sum() const {
  double s = 0;
  for (double v : values_) s += v;
  return s;
}

double Stats::mean() const {
  GALLOPER_CHECK(!values_.empty());
  return sum() / static_cast<double>(values_.size());
}

double Stats::min() const {
  GALLOPER_CHECK(!values_.empty());
  return *std::min_element(values_.begin(), values_.end());
}

double Stats::max() const {
  GALLOPER_CHECK(!values_.empty());
  return *std::max_element(values_.begin(), values_.end());
}

double Stats::stddev() const {
  GALLOPER_CHECK(!values_.empty());
  if (values_.size() == 1) return 0.0;
  const double m = mean();
  double acc = 0;
  for (double v : values_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values_.size() - 1));
}

double Stats::percentile(double p) const {
  GALLOPER_CHECK(!values_.empty());
  GALLOPER_CHECK(p >= 0.0 && p <= 100.0);
  ensure_sorted();
  if (values_.size() == 1) return values_[0];
  const double rank = p / 100.0 * static_cast<double>(values_.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, values_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values_[lo] * (1.0 - frac) + values_[hi] * frac;
}

std::string Stats::summary() const {
  std::ostringstream os;
  if (values_.empty()) return "(no samples)";
  os.precision(4);
  os << mean() << " ± " << stddev() << " [" << min() << ", " << max() << "] ("
     << values_.size() << ")";
  return os.str();
}

}  // namespace galloper
