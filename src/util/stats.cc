#include "util/stats.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/check.h"

namespace galloper {

void Stats::add(double v) {
  values_.push_back(v);
  sorted_ = false;
}

void Stats::ensure_sorted() const {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double Stats::sum() const {
  double s = 0;
  for (double v : values_) s += v;
  return s;
}

double Stats::mean() const {
  GALLOPER_CHECK(!values_.empty());
  return sum() / static_cast<double>(values_.size());
}

double Stats::min() const {
  GALLOPER_CHECK(!values_.empty());
  return *std::min_element(values_.begin(), values_.end());
}

double Stats::max() const {
  GALLOPER_CHECK(!values_.empty());
  return *std::max_element(values_.begin(), values_.end());
}

double Stats::stddev() const {
  GALLOPER_CHECK(!values_.empty());
  if (values_.size() == 1) return 0.0;
  const double m = mean();
  double acc = 0;
  for (double v : values_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values_.size() - 1));
}

double Stats::percentile(double p) const {
  GALLOPER_CHECK(!values_.empty());
  GALLOPER_CHECK(p >= 0.0 && p <= 100.0);
  ensure_sorted();
  if (values_.size() == 1) return values_[0];
  const double rank = p / 100.0 * static_cast<double>(values_.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, values_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values_[lo] * (1.0 - frac) + values_[hi] * frac;
}

std::string Stats::summary() const {
  std::ostringstream os;
  if (values_.empty()) return "(no samples)";
  os.precision(4);
  os << mean() << " ± " << stddev() << " [" << min() << ", " << max() << "] ("
     << values_.size() << ")";
  return os.str();
}

namespace util {

void LatencyHistogram::record_ns(uint64_t ns) {
  const unsigned b = ns == 0 ? 0 : std::bit_width(ns) - 1;
  buckets_[std::min<unsigned>(b, 63)].fetch_add(1, std::memory_order_relaxed);
}

void LatencyHistogram::record_s(double seconds) {
  if (seconds <= 0) {
    record_ns(0);
    return;
  }
  constexpr double kMaxNs = 1.8e19;  // < 2^64, avoids UB in the cast
  record_ns(static_cast<uint64_t>(std::min(seconds * 1e9, kMaxNs)));
}

uint64_t LatencyHistogram::count() const {
  uint64_t total = 0;
  for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
  return total;
}

double LatencyHistogram::quantile_s(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  uint64_t total = 0;
  std::array<uint64_t, 64> hist;
  for (size_t i = 0; i < hist.size(); ++i) {
    hist[i] = buckets_[i].load(std::memory_order_relaxed);
    total += hist[i];
  }
  if (total == 0) return 0;
  // Smallest bucket whose cumulative count covers rank q·total, with the
  // rank's position WITHIN that bucket linearly interpolated across the
  // bucket's [2^i, 2^(i+1)) ns span (bucket 0 spans [0, 2)). Interpolation
  // is what separates tail quantiles that land in the same log2 bucket —
  // p999 at rank 999/1000 reports deeper into the bucket than p99 at
  // 990/1000 instead of collapsing to one shared upper bound. The rank's
  // own sample counts toward the covered fraction, so a bucket's last rank
  // (and any lone sample) still reports the upper bound — the quantile
  // never understates the bucket a sample actually landed in.
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(q * static_cast<double>(total) + 0.5));
  uint64_t seen = 0;
  for (size_t i = 0; i < hist.size(); ++i) {
    if (hist[i] == 0) continue;
    if (seen + hist[i] >= rank) {
      // ldexp, not 1ull << (i+1): bucket 63's upper bound is 2^64, one past
      // what a uint64_t shift can express.
      const double lower = i == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(i));
      const double upper = std::ldexp(1.0, static_cast<int>(i) + 1);
      const double frac =
          static_cast<double>(rank - seen) / static_cast<double>(hist[i]);
      return (lower + frac * (upper - lower)) * 1e-9;
    }
    seen += hist[i];
  }
  return static_cast<double>(std::numeric_limits<uint64_t>::max()) * 1e-9;
}

void LatencyHistogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

}  // namespace util

}  // namespace galloper
