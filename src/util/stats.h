// Small summary-statistics helper used by benches and the simulators.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace galloper {

class Stats {
 public:
  void add(double v);

  size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  double sum() const;
  double mean() const;
  double min() const;
  double max() const;
  double stddev() const;            // sample standard deviation
  double percentile(double p) const;  // p in [0, 100], linear interpolation

  // "mean ± stddev [min, max] (n)" — for bench output.
  std::string summary() const;

  const std::vector<double>& values() const { return values_; }

 private:
  mutable std::vector<double> values_;
  mutable bool sorted_ = true;
  void ensure_sorted() const;
};

namespace util {

// Lock-free log2-bucketed latency histogram, shared by io::AsyncIo (whose
// quantiles set the hedge deadline) and the client load generator (whose
// p50/p99/p999 land in BENCH_load.json). Bucket b counts samples with
// bit_width(latency_ns) == b, so record is one relaxed atomic increment and
// the whole histogram is 64 counters — cheap enough to sit on every I/O
// completion. quantile_s linearly interpolates the rank's position within
// the covering log2 bucket (so p999 and p99 stay distinct even when both
// land in the same bucket); a bucket's last rank — and any lone sample —
// still reports the bucket's upper bound, preserving the never-understate
// property AsyncIo's hedge-deadline rule was built on.
//
// Concurrent record_ns/quantile_s are safe; a quantile taken mid-storm is a
// consistent-enough snapshot (each bucket read once, relaxed).
class LatencyHistogram {
 public:
  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  void record_ns(uint64_t ns);
  // Convenience for callers timing with double seconds; negative clamps to 0.
  void record_s(double seconds);

  // Samples recorded so far.
  uint64_t count() const;

  // Rank q·count (q clamped to [0, 1]) located in its covering log2
  // bucket, linearly interpolated across the bucket's span, in seconds.
  // 0 when empty.
  double quantile_s(double q) const;

  // Zeroes every bucket (benches reuse one histogram across scenarios).
  void reset();

 private:
  std::array<std::atomic<uint64_t>, 64> buckets_{};
};

}  // namespace util

}  // namespace galloper
