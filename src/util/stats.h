// Small summary-statistics helper used by benches and the simulators.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace galloper {

class Stats {
 public:
  void add(double v);

  size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  double sum() const;
  double mean() const;
  double min() const;
  double max() const;
  double stddev() const;            // sample standard deviation
  double percentile(double p) const;  // p in [0, 100], linear interpolation

  // "mean ± stddev [min, max] (n)" — for bench output.
  std::string summary() const;

  const std::vector<double>& values() const { return values_; }

 private:
  mutable std::vector<double> values_;
  mutable bool sorted_ = true;
  void ensure_sorted() const;
};

}  // namespace galloper
