// Lightweight precondition / invariant checking.
//
// GALLOPER_CHECK is always on (including release builds): the library deals
// with user-supplied code parameters and erasure patterns, and a violated
// precondition must surface as a recoverable exception rather than UB.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace galloper {

// Thrown when an argument or state check fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace galloper

#define GALLOPER_CHECK(expr)                                              \
  do {                                                                    \
    if (!(expr))                                                          \
      ::galloper::detail::check_failed(#expr, __FILE__, __LINE__, "");    \
  } while (0)

#define GALLOPER_CHECK_MSG(expr, msg)                                     \
  do {                                                                    \
    if (!(expr)) {                                                        \
      std::ostringstream os_;                                             \
      os_ << msg;                                                         \
      ::galloper::detail::check_failed(#expr, __FILE__, __LINE__,         \
                                       os_.str());                        \
    }                                                                     \
  } while (0)

// Debug-only variant for per-call preconditions on hot kernels (the GF
// region ops are called millions of times per encode). Active in debug
// builds; compiles to nothing under NDEBUG so release kernels pay no
// branch per call.
#ifdef NDEBUG
#define GALLOPER_DCHECK(expr) \
  do {                        \
    (void)sizeof(expr);       \
  } while (0)
#else
#define GALLOPER_DCHECK(expr) GALLOPER_CHECK(expr)
#endif
