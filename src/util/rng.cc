#include "util/rng.h"

#include <cmath>

#include "util/check.h"

namespace galloper {

namespace {

inline uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64, used to expand a single seed into xoshiro state.
inline uint64_t splitmix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

uint64_t Rng::next_u64() {
  const uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

uint64_t Rng::next_below(uint64_t bound) {
  GALLOPER_CHECK(bound > 0);
  // Rejection sampling over the largest multiple of `bound` that fits.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % bound;
  uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return v % bound;
}

int64_t Rng::next_int(int64_t lo, int64_t hi) {
  GALLOPER_CHECK(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(next_u64());  // full range
  return lo + static_cast<int64_t>(next_below(span));
}

double Rng::next_double() {
  // 53 high bits → [0, 1) with full double precision.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::next_exponential(double mean) {
  GALLOPER_CHECK(mean > 0);
  double u;
  do {
    u = next_double();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

void Rng::fill_bytes(std::span<uint8_t> out) {
  size_t i = 0;
  while (i + 8 <= out.size()) {
    uint64_t v = next_u64();
    for (int b = 0; b < 8; ++b) out[i++] = static_cast<uint8_t>(v >> (8 * b));
  }
  if (i < out.size()) {
    uint64_t v = next_u64();
    for (; i < out.size(); ++i) {
      out[i] = static_cast<uint8_t>(v);
      v >>= 8;
    }
  }
}

std::vector<size_t> Rng::sample_indices(size_t n, size_t count) {
  GALLOPER_CHECK(count <= n);
  std::vector<size_t> all(n);
  for (size_t i = 0; i < n; ++i) all[i] = i;
  // Partial Fisher-Yates: the first `count` entries become the sample.
  for (size_t i = 0; i < count; ++i) {
    size_t j = i + static_cast<size_t>(next_below(n - i));
    std::swap(all[i], all[j]);
  }
  all.resize(count);
  return all;
}

Rng Rng::fork() { return Rng(next_u64()); }

}  // namespace galloper
