// BufferPool: a size-class-binned recycling allocator for the codec's
// bulk byte buffers.
//
// Every data path allocates output buffers per call (encode: n blocks,
// decode: one file, the streaming archive pipeline: one segment + n block
// pieces per queue slot). At small chunk sizes those allocations are the
// same handful of sizes over and over, and the general-purpose heap both
// charges its bookkeeping on every call and hands back cold, arbitrarily
// aligned pages. The pool keeps freed buffers binned by power-of-two size
// class — first in a small thread-local freelist (no lock, LIFO so the
// hottest buffer comes back first), then in a mutex-guarded shared list
// per class (so a pipeline whose producer allocates on one thread and
// whose consumer frees on another still recycles instead of churning the
// heap). All pooled memory is 64-byte aligned, matching the SIMD kernels'
// cache-line slicing.
//
// Integration is by allocator, not by handle type: `Buffer` (util/bytes.h)
// routes its allocations here, so CodecEngine, FileStore, the plan
// executor, and the CLI pipeline are pool-backed without any call-site
// changes. Allocations outside [kMinPooled, kMaxPooled] bypass the pool
// (tiny test buffers, giant whole-file slurps).
//
// GALLOPER_BUFFER_POOL=off|0 disables recycling (every allocation goes to
// the heap — the pre-pool behavior, kept reachable for benchmarking);
// accounting stays on either way so the memory-bound tests and CLI --stats
// can always read outstanding/peak bytes.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace galloper::util {

struct BufferPoolStats {
  uint64_t hits = 0;          // pooled allocations served from a freelist
  uint64_t misses = 0;        // pooled allocations that went to the heap
  uint64_t bypass = 0;        // out-of-range allocations (never pooled)
  uint64_t outstanding_bytes = 0;       // live (allocated, not yet freed)
  uint64_t peak_outstanding_bytes = 0;  // high-water mark of the above
  uint64_t cached_bytes = 0;  // freed bytes resident in freelists

  double hit_rate() const {
    const uint64_t lookups = hits + misses;
    return lookups ? static_cast<double>(hits) / static_cast<double>(lookups)
                   : 0.0;
  }
};

class BufferPool {
 public:
  // Alignment of every pooled allocation (cache line: the rt slicer hands
  // out 64-byte-granular ranges, so aligned bases keep slice boundaries on
  // line boundaries).
  static constexpr size_t kAlignment = 64;
  // Pooled size-class range: [4 KiB, 64 MiB], powers of two. Below, the
  // heap is already cheap; above, caching would pin too much memory.
  static constexpr size_t kMinPooled = size_t{4} << 10;
  static constexpr size_t kMaxPooled = size_t{64} << 20;

  // The process-wide pool every Buffer allocates through. First use reads
  // GALLOPER_BUFFER_POOL ("off"/"0" disables recycling).
  static BufferPool& global();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // Uninitialized storage for `bytes` bytes (rounded up to the size class;
  // 64-byte aligned when bytes >= kMinPooled). Never returns nullptr
  // (throws std::bad_alloc like operator new).
  void* allocate(size_t bytes);
  // Returns storage from allocate(). `bytes` must be the requested size.
  void deallocate(void* p, size_t bytes) noexcept;

  bool enabled() const { return enabled_; }
  BufferPoolStats stats() const;

  // Frees every buffer cached in the shared freelists and the CALLING
  // thread's local freelist (other threads' caches are untouchable without
  // stopping them). Outstanding buffers are unaffected.
  void trim();

  // Resets the peak-outstanding high-water mark to the current outstanding
  // level, so a caller can measure the peak of one operation.
  void reset_peak();

  // The size class an allocation of `bytes` lands in (bytes rounded up to
  // the next power of two), or SIZE_MAX when out of pooled range. Exposed
  // for tests.
  static size_t class_of(size_t bytes);
  static size_t class_bytes(size_t cls);

 private:
  explicit BufferPool(bool enabled);
  ~BufferPool() = delete;  // global() leaks it: lives for the process

  struct Shared;
  struct ThreadCache;
  ThreadCache* thread_cache();

  void* from_shared(size_t cls);
  // Takes ownership of `p` (class `cls`); frees it if the list is full.
  void to_shared(size_t cls, void* p) noexcept;

  const bool enabled_;
  Shared* shared_;  // per-class mutex-guarded freelists

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> bypass_{0};
  std::atomic<uint64_t> outstanding_{0};
  std::atomic<uint64_t> peak_outstanding_{0};
  std::atomic<uint64_t> cached_{0};
};

// Minimal allocator adapter: routes std::vector storage through the global
// BufferPool. Stateless — all instances are interchangeable.
template <typename T>
class PoolAllocator {
 public:
  using value_type = T;

  PoolAllocator() = default;
  template <typename U>
  PoolAllocator(const PoolAllocator<U>&) noexcept {}

  T* allocate(size_t n) {
    return static_cast<T*>(BufferPool::global().allocate(n * sizeof(T)));
  }
  void deallocate(T* p, size_t n) noexcept {
    BufferPool::global().deallocate(p, n * sizeof(T));
  }

  template <typename U>
  bool operator==(const PoolAllocator<U>&) const noexcept {
    return true;
  }
};

}  // namespace galloper::util
