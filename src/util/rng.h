// Deterministic pseudo-random number generation (xoshiro256**).
//
// Every stochastic component in the library (workload generators, failure
// injection, property tests) takes an explicit Rng so that runs are
// reproducible from a printed seed.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace galloper {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Uniform over the full 64-bit range.
  uint64_t next_u64();

  // Uniform in [0, bound), bound > 0. Uses rejection sampling (unbiased).
  uint64_t next_below(uint64_t bound);

  // Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  int64_t next_int(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double next_double();

  // Exponentially distributed with the given mean (> 0).
  double next_exponential(double mean);

  // Fills `out` with uniform random bytes.
  void fill_bytes(std::span<uint8_t> out);

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  // Chooses `count` distinct indices from [0, n) in random order.
  std::vector<size_t> sample_indices(size_t n, size_t count);

  // Forks an independent stream (for parallel components) derived from this
  // generator's state; advancing one stream does not perturb the other.
  Rng fork();

 private:
  uint64_t s_[4];
};

}  // namespace galloper
