#include "util/buffer_pool.h"

#include <bit>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <new>
#include <string>
#include <vector>

namespace galloper::util {

namespace {

constexpr size_t kMinShift = 12;  // log2(kMinPooled)
constexpr size_t kMaxShift = 26;  // log2(kMaxPooled)
constexpr size_t kClasses = kMaxShift - kMinShift + 1;

// Freelist depth per class: small for the thread-local layer (a pipeline
// stage reuses at most a couple of buffers per class), larger for the
// shared layer (it absorbs the cross-thread producer/consumer flow).
constexpr size_t kThreadSlots = 4;
constexpr size_t kSharedSlots = 16;

void* heap_alloc(size_t bytes, bool aligned) {
  return aligned ? ::operator new(bytes, std::align_val_t{64})
                 : ::operator new(bytes);
}

void heap_free(void* p, bool aligned) noexcept {
  if (aligned)
    ::operator delete(p, std::align_val_t{64});
  else
    ::operator delete(p);
}

// Relaxed-CAS high-water update; allocation rate is low (pooled buffers
// are KiB-to-MiB sized), so the loop never spins in practice.
void update_peak(std::atomic<uint64_t>& peak, uint64_t value) {
  uint64_t seen = peak.load(std::memory_order_relaxed);
  while (value > seen &&
         !peak.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

// Set by ThreadCache's destructor. A trivially-destructible thread_local is
// never torn down, so this stays readable after the cache is gone — late
// deallocations (static-lifetime Buffers) then go straight to the shared
// layer instead of touching a dead cache.
thread_local bool tls_cache_dead = false;

}  // namespace

size_t BufferPool::class_of(size_t bytes) {
  if (bytes < kMinPooled || bytes > kMaxPooled) return SIZE_MAX;
  const size_t width = std::bit_width(bytes - 1);
  return (width < kMinShift ? kMinShift : width) - kMinShift;
}

size_t BufferPool::class_bytes(size_t cls) {
  return size_t{1} << (kMinShift + cls);
}

struct BufferPool::Shared {
  struct Class {
    std::mutex mu;
    std::vector<void*> free;
  };
  Class classes[kClasses];
};

struct BufferPool::ThreadCache {
  explicit ThreadCache(BufferPool& p) : pool(p) {}
  ~ThreadCache() {
    for (size_t c = 0; c < kClasses; ++c)
      for (size_t i = 0; i < count[c]; ++i) pool.to_shared(c, slots[c][i]);
    tls_cache_dead = true;
  }

  BufferPool& pool;
  void* slots[kClasses][kThreadSlots];
  size_t count[kClasses] = {};
};

BufferPool::BufferPool(bool enabled)
    : enabled_(enabled), shared_(new Shared) {}

BufferPool& BufferPool::global() {
  static BufferPool* pool = [] {
    bool enabled = true;
    if (const char* env = std::getenv("GALLOPER_BUFFER_POOL")) {
      const std::string v(env);
      enabled = !(v == "off" || v == "OFF" || v == "0");
    }
    return new BufferPool(enabled);  // leaked: lives for the process
  }();
  return *pool;
}

BufferPool::ThreadCache* BufferPool::thread_cache() {
  if (tls_cache_dead) return nullptr;
  thread_local ThreadCache cache(*this);
  return &cache;
}

void* BufferPool::from_shared(size_t cls) {
  Shared::Class& sc = shared_->classes[cls];
  std::lock_guard<std::mutex> lock(sc.mu);
  if (sc.free.empty()) return nullptr;
  void* p = sc.free.back();
  sc.free.pop_back();
  return p;
}

void BufferPool::to_shared(size_t cls, void* p) noexcept {
  {
    Shared::Class& sc = shared_->classes[cls];
    std::lock_guard<std::mutex> lock(sc.mu);
    if (sc.free.size() < kSharedSlots) {
      sc.free.push_back(p);
      return;
    }
  }
  cached_.fetch_sub(class_bytes(cls), std::memory_order_relaxed);
  heap_free(p, true);
}

void* BufferPool::allocate(size_t bytes) {
  const size_t cls = class_of(bytes);
  if (cls == SIZE_MAX) {
    bypass_.fetch_add(1, std::memory_order_relaxed);
    const uint64_t out =
        outstanding_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    update_peak(peak_outstanding_, out);
    return heap_alloc(bytes, bytes > kMaxPooled);
  }

  const size_t sz = class_bytes(cls);
  const uint64_t out =
      outstanding_.fetch_add(sz, std::memory_order_relaxed) + sz;
  update_peak(peak_outstanding_, out);

  if (enabled_) {
    if (ThreadCache* tc = thread_cache(); tc && tc->count[cls] > 0) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      cached_.fetch_sub(sz, std::memory_order_relaxed);
      return tc->slots[cls][--tc->count[cls]];
    }
    if (void* p = from_shared(cls)) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      cached_.fetch_sub(sz, std::memory_order_relaxed);
      return p;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return heap_alloc(sz, true);
}

void BufferPool::deallocate(void* p, size_t bytes) noexcept {
  if (p == nullptr) return;
  const size_t cls = class_of(bytes);
  if (cls == SIZE_MAX) {
    outstanding_.fetch_sub(bytes, std::memory_order_relaxed);
    heap_free(p, bytes > kMaxPooled);
    return;
  }

  const size_t sz = class_bytes(cls);
  outstanding_.fetch_sub(sz, std::memory_order_relaxed);
  if (!enabled_) {
    heap_free(p, true);
    return;
  }
  cached_.fetch_add(sz, std::memory_order_relaxed);
  if (ThreadCache* tc = thread_cache(); tc && tc->count[cls] < kThreadSlots) {
    tc->slots[cls][tc->count[cls]++] = p;
    return;
  }
  to_shared(cls, p);
}

BufferPoolStats BufferPool::stats() const {
  BufferPoolStats st;
  st.hits = hits_.load(std::memory_order_relaxed);
  st.misses = misses_.load(std::memory_order_relaxed);
  st.bypass = bypass_.load(std::memory_order_relaxed);
  st.outstanding_bytes = outstanding_.load(std::memory_order_relaxed);
  st.peak_outstanding_bytes = peak_outstanding_.load(std::memory_order_relaxed);
  st.cached_bytes = cached_.load(std::memory_order_relaxed);
  return st;
}

void BufferPool::trim() {
  if (ThreadCache* tc = thread_cache()) {
    for (size_t c = 0; c < kClasses; ++c) {
      for (size_t i = 0; i < tc->count[c]; ++i) {
        cached_.fetch_sub(class_bytes(c), std::memory_order_relaxed);
        heap_free(tc->slots[c][i], true);
      }
      tc->count[c] = 0;
    }
  }
  for (size_t c = 0; c < kClasses; ++c) {
    Shared::Class& sc = shared_->classes[c];
    std::lock_guard<std::mutex> lock(sc.mu);
    for (void* p : sc.free) {
      cached_.fetch_sub(class_bytes(c), std::memory_order_relaxed);
      heap_free(p, true);
    }
    sc.free.clear();
  }
}

void BufferPool::reset_peak() {
  peak_outstanding_.store(outstanding_.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
}

}  // namespace galloper::util
