#include "util/rational.h"

#include <cstdlib>
#include <sstream>

#include "util/check.h"

namespace galloper {

int64_t gcd64(int64_t a, int64_t b) {
  a = std::abs(a);
  b = std::abs(b);
  while (b != 0) {
    int64_t t = a % b;
    a = b;
    b = t;
  }
  return a;
}

int64_t lcm64(int64_t a, int64_t b) {
  if (a == 0 || b == 0) return 0;
  const int64_t g = gcd64(a, b);
  const int64_t q = a / g;
  GALLOPER_CHECK_MSG(q <= INT64_MAX / std::abs(b), "lcm overflow");
  return std::abs(q * b);
}

Rational::Rational(int64_t num, int64_t den) : num_(num), den_(den) {
  GALLOPER_CHECK_MSG(den != 0, "rational with zero denominator");
  normalize();
}

void Rational::normalize() {
  if (den_ < 0) {
    num_ = -num_;
    den_ = -den_;
  }
  if (num_ == 0) {
    den_ = 1;
    return;
  }
  const int64_t g = gcd64(num_, den_);
  num_ /= g;
  den_ /= g;
}

std::string Rational::to_string() const {
  std::ostringstream os;
  os << num_;
  if (den_ != 1) os << '/' << den_;
  return os.str();
}

Rational Rational::operator+(const Rational& o) const {
  return Rational(num_ * o.den_ + o.num_ * den_, den_ * o.den_);
}

Rational Rational::operator-(const Rational& o) const {
  return Rational(num_ * o.den_ - o.num_ * den_, den_ * o.den_);
}

Rational Rational::operator*(const Rational& o) const {
  return Rational(num_ * o.num_, den_ * o.den_);
}

Rational Rational::operator/(const Rational& o) const {
  GALLOPER_CHECK_MSG(o.num_ != 0, "division by zero rational");
  return Rational(num_ * o.den_, den_ * o.num_);
}

bool Rational::operator<(const Rational& o) const {
  // Denominators are positive after normalization.
  return num_ * o.den_ < o.num_ * den_;
}

int64_t common_denominator(const std::vector<Rational>& ws) {
  int64_t n = 1;
  for (const auto& w : ws) n = lcm64(n, w.den());
  return n;
}

Rational sum(const std::vector<Rational>& ws) {
  Rational s;
  for (const auto& w : ws) s = s + w;
  return s;
}

}  // namespace galloper
