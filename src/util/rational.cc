#include "util/rational.h"

#include <cstdlib>
#include <sstream>

#include "util/check.h"

namespace galloper {

int64_t gcd64(int64_t a, int64_t b) {
  a = std::abs(a);
  b = std::abs(b);
  while (b != 0) {
    int64_t t = a % b;
    a = b;
    b = t;
  }
  return a;
}

int64_t checked_add64(int64_t a, int64_t b) {
  int64_t out;
  GALLOPER_CHECK_MSG(!__builtin_add_overflow(a, b, &out),
                     "int64 overflow in " << a << " + " << b);
  return out;
}

int64_t checked_mul64(int64_t a, int64_t b) {
  int64_t out;
  GALLOPER_CHECK_MSG(!__builtin_mul_overflow(a, b, &out),
                     "int64 overflow in " << a << " * " << b);
  return out;
}

int64_t lcm64(int64_t a, int64_t b) {
  if (a == 0 || b == 0) return 0;
  GALLOPER_CHECK_MSG(a != INT64_MIN && b != INT64_MIN,
                     "lcm64 of INT64_MIN overflows");
  const int64_t g = gcd64(a, b);
  // |a/g * b| with the multiply checked: adversarial denominators (e.g.
  // two large coprime values) must fail loudly, not wrap into a bogus
  // stripe count.
  const int64_t q = std::abs(a) / g;
  return checked_mul64(q, std::abs(b));
}

Rational::Rational(int64_t num, int64_t den) : num_(num), den_(den) {
  GALLOPER_CHECK_MSG(den != 0, "rational with zero denominator");
  normalize();
}

void Rational::normalize() {
  if (den_ < 0) {
    num_ = -num_;
    den_ = -den_;
  }
  if (num_ == 0) {
    den_ = 1;
    return;
  }
  const int64_t g = gcd64(num_, den_);
  num_ /= g;
  den_ /= g;
}

std::string Rational::to_string() const {
  std::ostringstream os;
  os << num_;
  if (den_ != 1) os << '/' << den_;
  return os.str();
}

namespace {
int64_t checked_sub64(int64_t a, int64_t b) {
  int64_t out;
  GALLOPER_CHECK_MSG(!__builtin_sub_overflow(a, b, &out),
                     "int64 overflow in " << a << " - " << b);
  return out;
}
}  // namespace

Rational Rational::operator+(const Rational& o) const {
  // Add over the LCM of the denominators, not their raw product: exact
  // weights with large denominators stay representable far longer, and
  // every multiply/add is overflow-checked so an unrepresentable sum fails
  // loudly instead of wrapping into a bogus stripe count.
  const int64_t l = lcm64(den_, o.den_);
  return Rational(checked_add64(checked_mul64(num_, l / den_),
                                checked_mul64(o.num_, l / o.den_)),
                  l);
}

Rational Rational::operator-(const Rational& o) const {
  const int64_t l = lcm64(den_, o.den_);
  return Rational(checked_sub64(checked_mul64(num_, l / den_),
                                checked_mul64(o.num_, l / o.den_)),
                  l);
}

Rational Rational::operator*(const Rational& o) const {
  // Cross-reduce before multiplying so the checked products overflow only
  // when the RESULT itself is unrepresentable. gcd64 cannot return 0 here:
  // denominators are positive, so each pair has a nonzero member.
  const int64_t g1 = gcd64(num_, o.den_);
  const int64_t g2 = gcd64(o.num_, den_);
  return Rational(checked_mul64(num_ / g1, o.num_ / g2),
                  checked_mul64(den_ / g2, o.den_ / g1));
}

Rational Rational::operator/(const Rational& o) const {
  GALLOPER_CHECK_MSG(o.num_ != 0, "division by zero rational");
  return Rational(checked_mul64(num_, o.den_), checked_mul64(den_, o.num_));
}

bool Rational::operator<(const Rational& o) const {
  // Denominators are positive after normalization. 128-bit cross products
  // cannot overflow, so comparison never throws.
  return static_cast<__int128>(num_) * o.den_ <
         static_cast<__int128>(o.num_) * den_;
}

int64_t common_denominator(const std::vector<Rational>& ws) {
  int64_t n = 1;
  for (const auto& w : ws) n = lcm64(n, w.den());
  return n;
}

Rational sum(const std::vector<Rational>& ws) {
  Rational s;
  for (const auto& w : ws) s = s + w;
  return s;
}

}  // namespace galloper
