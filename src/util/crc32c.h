// CRC-32C (Castagnoli polynomial 0x1EDC6F41, reflected), the checksum used
// by most storage systems (HDFS, iSCSI, ext4). Table-driven software
// implementation; used by the FileStore scrubber to detect silent block
// corruption before repair.
#pragma once

#include <cstdint>

#include "util/bytes.h"

namespace galloper {

// One-shot CRC of a buffer.
uint32_t crc32c(ConstByteSpan data);

// Incremental form: crc32c_extend(crc32c_extend(kCrc32cInit, a), b)
// finalized with crc32c_finish equals crc32c(a ‖ b).
inline constexpr uint32_t kCrc32cInit = 0xffffffffu;
uint32_t crc32c_extend(uint32_t state, ConstByteSpan data);
inline uint32_t crc32c_finish(uint32_t state) { return state ^ 0xffffffffu; }

}  // namespace galloper
