// CRC-32C (Castagnoli polynomial 0x1EDC6F41, reflected), the checksum used
// by most storage systems (HDFS, iSCSI, ext4). Used by the FileStore
// scrubber to detect silent block corruption before repair.
//
// Two backends selected once at startup: the SSE4.2 CRC32 instruction
// (8 bytes/insn) when the CPU has it, else the table-driven software loop.
// Both produce identical values for every input; GALLOPER_CRC32C=scalar
// forces the software path.
#pragma once

#include <cstdint>

#include "util/bytes.h"

namespace galloper {

// One-shot CRC of a buffer.
uint32_t crc32c(ConstByteSpan data);

// Incremental form: crc32c_extend(crc32c_extend(kCrc32cInit, a), b)
// finalized with crc32c_finish equals crc32c(a ‖ b).
inline constexpr uint32_t kCrc32cInit = 0xffffffffu;
uint32_t crc32c_extend(uint32_t state, ConstByteSpan data);
inline uint32_t crc32c_finish(uint32_t state) { return state ^ 0xffffffffu; }

// Name of the backend in use: "sse4.2" or "scalar".
const char* crc32c_backend();

}  // namespace galloper
