#include "util/bytes.h"

#include <algorithm>

#include "util/check.h"

namespace galloper {

Buffer random_buffer(size_t size, Rng& rng) {
  Buffer b(size);
  rng.fill_bytes(b);
  return b;
}

std::string hex_dump(ConstByteSpan data, size_t max_bytes) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  const size_t n = std::min(data.size(), max_bytes);
  out.reserve(n * 3);
  for (size_t i = 0; i < n; ++i) {
    if (i) out.push_back(i % 16 == 0 ? '\n' : ' ');
    out.push_back(kHex[data[i] >> 4]);
    out.push_back(kHex[data[i] & 0xf]);
  }
  if (data.size() > max_bytes) out += " …";
  return out;
}

std::vector<ConstByteSpan> split_even(ConstByteSpan data, size_t parts) {
  GALLOPER_CHECK(parts > 0);
  GALLOPER_CHECK_MSG(data.size() % parts == 0,
                     "size " << data.size() << " not divisible by " << parts);
  const size_t piece = data.size() / parts;
  std::vector<ConstByteSpan> out;
  out.reserve(parts);
  for (size_t i = 0; i < parts; ++i)
    out.push_back(data.subspan(i * piece, piece));
  return out;
}

Buffer concat(const std::vector<ConstByteSpan>& pieces) {
  size_t total = 0;
  for (const auto& p : pieces) total += p.size();
  Buffer out;
  out.reserve(total);
  for (const auto& p : pieces) out.insert(out.end(), p.begin(), p.end());
  return out;
}

Buffer interleave_stripes(const std::vector<ConstByteSpan>& stripes,
                          size_t cell_bytes) {
  GALLOPER_CHECK(!stripes.empty() && cell_bytes > 0);
  const size_t stripe_size = stripes[0].size();
  GALLOPER_CHECK_MSG(stripe_size % cell_bytes == 0,
                     "stripe size " << stripe_size
                                    << " not a whole number of cells");
  const size_t cells = stripe_size / cell_bytes;
  const size_t batch = stripes.size();
  for (const auto& s : stripes)
    GALLOPER_CHECK_MSG(s.size() == stripe_size, "stripes of unequal size");
  Buffer out(batch * stripe_size);
  for (size_t j = 0; j < cells; ++j)
    for (size_t i = 0; i < batch; ++i)
      std::copy_n(stripes[i].data() + j * cell_bytes, cell_bytes,
                  out.data() + (j * batch + i) * cell_bytes);
  return out;
}

std::vector<Buffer> deinterleave_stripes(ConstByteSpan batched, size_t batch,
                                         size_t cell_bytes) {
  GALLOPER_CHECK(batch > 0 && cell_bytes > 0);
  GALLOPER_CHECK_MSG(batched.size() % (batch * cell_bytes) == 0,
                     "batched size " << batched.size()
                                     << " not a whole number of "
                                     << batch << "-stripe cells");
  const size_t cells = batched.size() / (batch * cell_bytes);
  std::vector<Buffer> out;
  out.reserve(batch);
  for (size_t i = 0; i < batch; ++i) {
    Buffer stripe(cells * cell_bytes);
    for (size_t j = 0; j < cells; ++j)
      std::copy_n(batched.data() + (j * batch + i) * cell_bytes, cell_bytes,
                  stripe.data() + j * cell_bytes);
    out.push_back(std::move(stripe));
  }
  return out;
}

uint64_t fingerprint(ConstByteSpan data) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (uint8_t b : data) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace galloper
