#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/check.h"

namespace galloper {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  GALLOPER_CHECK_MSG(cells.size() == header_.size(),
                     "row width " << cells.size() << " != header width "
                                  << header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os.precision(precision);
  os << v;
  return os.str();
}

std::string Table::to_string() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    for (size_t c = 0; c < row.size(); ++c) {
      out += "| ";
      out += row[c];
      out.append(widths[c] - row[c].size() + 1, ' ');
    }
    out += "|\n";
  };

  std::string out;
  emit_row(header_, out);
  for (size_t c = 0; c < header_.size(); ++c) {
    out += "|";
    out.append(widths[c] + 2, '-');
  }
  out += "|\n";
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

}  // namespace galloper
