#include "util/flags.h"

#include <cstdlib>

#include "util/check.h"

namespace galloper {

Flags::Flags(int argc, const char* const* argv,
             std::set<std::string> boolean_flags)
    : boolean_flags_(std::move(boolean_flags)) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  parse(args);
}

Flags::Flags(const std::vector<std::string>& args,
             std::set<std::string> boolean_flags)
    : boolean_flags_(std::move(boolean_flags)) {
  parse(args);
}

void Flags::parse(const std::vector<std::string>& args) {
  bool flags_done = false;
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (flags_done || arg.size() < 3 || arg.compare(0, 2, "--") != 0) {
      if (arg == "--") {
        flags_done = true;
        continue;
      }
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const size_t eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // --name value (if the next token isn't a flag), else boolean --name.
    // Registered boolean flags never consume the next token, so
    // "--stats <positional>" keeps the positional.
    if (boolean_flags_.count(body) == 0 && i + 1 < args.size() &&
        args[i + 1].compare(0, 2, "--") != 0) {
      values_[body] = args[++i];
    } else {
      values_[body] = "true";
    }
  }
}

void Flags::restrict_to(const std::set<std::string>& known) const {
  for (const auto& [name, value] : values_) {
    (void)value;
    GALLOPER_CHECK_MSG(known.count(name) > 0 || boolean_flags_.count(name) > 0,
                       "unknown flag --" << name
                                         << " (run with no arguments for "
                                            "usage)");
  }
}

bool Flags::has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::optional<std::string> Flags::get(const std::string& name) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Flags::get_or(const std::string& name,
                          const std::string& fallback) const {
  return get(name).value_or(fallback);
}

int64_t Flags::get_int(const std::string& name, int64_t fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v->c_str(), &end, 10);
  GALLOPER_CHECK_MSG(end && *end == '\0',
                     "flag --" << name << " is not an integer: " << *v);
  return parsed;
}

double Flags::get_double(const std::string& name, double fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v->c_str(), &end);
  GALLOPER_CHECK_MSG(end && *end == '\0',
                     "flag --" << name << " is not a number: " << *v);
  return parsed;
}

std::vector<double> Flags::get_doubles(const std::string& name) const {
  std::vector<double> out;
  const auto v = get(name);
  if (!v) return out;
  size_t start = 0;
  while (start <= v->size()) {
    size_t comma = v->find(',', start);
    if (comma == std::string::npos) comma = v->size();
    const std::string piece = v->substr(start, comma - start);
    GALLOPER_CHECK_MSG(!piece.empty(),
                       "empty element in list flag --" << name);
    char* end = nullptr;
    out.push_back(std::strtod(piece.c_str(), &end));
    GALLOPER_CHECK_MSG(end && *end == '\0',
                       "bad number '" << piece << "' in --" << name);
    start = comma + 1;
  }
  return out;
}

}  // namespace galloper
