// ASCII table printer. Benches use this to print paper-style rows
// (one table/figure per bench binary).
#pragma once

#include <string>
#include <vector>

namespace galloper {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  // Convenience: formats doubles with `precision` significant digits.
  static std::string num(double v, int precision = 4);

  // Renders with column alignment and a header rule.
  std::string to_string() const;

  // Prints to stdout.
  void print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace galloper
