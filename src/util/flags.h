// Minimal command-line flag parsing for the CLI tool.
// Supports --name=value, --name value, boolean --name, and positionals;
// "--" ends flag parsing.
//
// The bare "--name value" form is ambiguous for boolean flags whose next
// token is a positional ("--stats file.bin" would swallow the file), so
// callers may pass the names of their boolean flags: those never consume
// the following token.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace galloper {

class Flags {
 public:
  Flags(int argc, const char* const* argv,  // argv[0] is skipped
        std::set<std::string> boolean_flags = {});
  explicit Flags(const std::vector<std::string>& args,  // no program name
                 std::set<std::string> boolean_flags = {});

  const std::vector<std::string>& positional() const { return positional_; }

  // Strict mode: throws CheckError if any parsed flag is not in `known`
  // (registered boolean flags are implicitly known). A typo like
  // "--thread=8" must die loudly instead of silently no-opping — the CLI
  // calls this with its full flag vocabulary right after parsing.
  void restrict_to(const std::set<std::string>& known) const;

  bool has(const std::string& name) const;
  std::optional<std::string> get(const std::string& name) const;
  std::string get_or(const std::string& name,
                     const std::string& fallback) const;
  int64_t get_int(const std::string& name, int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;

  // Comma-separated doubles, e.g. --perf=1,0.4,1 → {1, 0.4, 1}.
  std::vector<double> get_doubles(const std::string& name) const;

 private:
  void parse(const std::vector<std::string>& args);

  std::set<std::string> boolean_flags_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace galloper
