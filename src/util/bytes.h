// Byte-buffer helpers shared across the coding and simulation layers.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/rng.h"

namespace galloper {

using Buffer = std::vector<uint8_t>;

// A non-owning view pair used by coding kernels.
using ByteSpan = std::span<uint8_t>;
using ConstByteSpan = std::span<const uint8_t>;

// Returns a buffer of `size` deterministic pseudo-random bytes.
Buffer random_buffer(size_t size, Rng& rng);

// Hex dump of at most `max_bytes` (for diagnostics and examples).
std::string hex_dump(ConstByteSpan data, size_t max_bytes = 64);

// Splits `data` into `parts` contiguous equal pieces; size must divide evenly.
std::vector<ConstByteSpan> split_even(ConstByteSpan data, size_t parts);

// Concatenates spans into one buffer.
Buffer concat(const std::vector<ConstByteSpan>& pieces);

// FNV-1a 64-bit hash, used to fingerprint buffers in tests and examples.
uint64_t fingerprint(ConstByteSpan data);

}  // namespace galloper
