// Byte-buffer helpers shared across the coding and simulation layers.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "util/buffer_pool.h"
#include "util/rng.h"

namespace galloper {

namespace detail {

// Allocator whose unparameterized construct() default-initializes instead of
// value-initializing, so growing a Buffer leaves the new bytes indeterminate
// rather than zero-filling them. The codec data paths overwrite every output
// byte exactly once (encode/decode/repair write parity regions with
// overwrite-mode kernels), so the zero-fill would be a second full pass over
// output memory. Buffer(n, 0) / resize(n, 0) still zero-fill explicitly.
template <typename T, typename A = std::allocator<T>>
class DefaultInitAllocator : public A {
  using Traits = std::allocator_traits<A>;

 public:
  template <typename U>
  struct rebind {
    using other =
        DefaultInitAllocator<U, typename Traits::template rebind_alloc<U>>;
  };

  using A::A;

  template <typename U>
  void construct(U* ptr) noexcept(
      std::is_nothrow_default_constructible_v<U>) {
    ::new (static_cast<void*>(ptr)) U;
  }
  template <typename U, typename... Args>
  void construct(U* ptr, Args&&... args) {
    Traits::construct(static_cast<A&>(*this), ptr,
                      std::forward<Args>(args)...);
  }
};

}  // namespace detail

// NOTE: Buffer(n) and resize(n) leave the bytes INDETERMINATE (see
// DefaultInitAllocator above); use Buffer(n, 0) when zeroed contents matter.
// Storage comes from the process-wide util::BufferPool (size-class-binned
// recycling, 64-byte aligned for pooled sizes), so the per-call output
// buffers of every codec data path and the streaming archive pipeline's
// queue slots are recycled instead of heap-churned. GALLOPER_BUFFER_POOL=off
// restores plain heap allocation.
using Buffer =
    std::vector<uint8_t, detail::DefaultInitAllocator<
                             uint8_t, util::PoolAllocator<uint8_t>>>;

// A non-owning view pair used by coding kernels.
using ByteSpan = std::span<uint8_t>;
using ConstByteSpan = std::span<const uint8_t>;

// Returns a buffer of `size` deterministic pseudo-random bytes.
Buffer random_buffer(size_t size, Rng& rng);

// Hex dump of at most `max_bytes` (for diagnostics and examples).
std::string hex_dump(ConstByteSpan data, size_t max_bytes = 64);

// Splits `data` into `parts` contiguous equal pieces; size must divide evenly.
std::vector<ConstByteSpan> split_even(ConstByteSpan data, size_t parts);

// Concatenates spans into one buffer.
Buffer concat(const std::vector<ConstByteSpan>& pieces);

// FNV-1a 64-bit hash, used to fingerprint buffers in tests and examples.
uint64_t fingerprint(ConstByteSpan data);

// ---- Batched (position-major) stripe layout ------------------------------
//
// The batched codec paths pack B logical stripes into one buffer whose unit
// is the CELL: cell j holds stripe 0's j-th piece, then stripe 1's, ...,
// stripe B-1's, contiguously (B·cell_bytes per cell). Because the GF region
// kernels are bytewise, executing a plan over cells of B·chunk bytes is
// bit-identical to executing it B times over the individual stripes — these
// helpers convert between the two layouts for tests, benches, and callers
// that hold per-stripe data.

// Interleaves equal-sized stripes (each a whole number of `cell_bytes`
// pieces) into one batched buffer of stripes.size()·stripe_size bytes.
Buffer interleave_stripes(const std::vector<ConstByteSpan>& stripes,
                          size_t cell_bytes);

// Inverse of interleave_stripes: splits a batched buffer back into `batch`
// per-stripe buffers.
std::vector<Buffer> deinterleave_stripes(ConstByteSpan batched, size_t batch,
                                         size_t cell_bytes);

}  // namespace galloper
