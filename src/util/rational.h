// Exact rational arithmetic for block weights.
//
// Galloper weights w_i are rationals whose common denominator determines the
// stripe count N (Sec. IV-B of the paper), so the weight pipeline must be
// exact; floating point would make N ill-defined.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace galloper {

int64_t gcd64(int64_t a, int64_t b);
int64_t lcm64(int64_t a, int64_t b);

// Overflow-checked int64 arithmetic. The weight pipeline multiplies
// denominators, and a silent wrap would make the stripe count N
// ill-defined — every product/sum in Rational and lcm64 goes through these
// and throws CheckError instead of wrapping.
int64_t checked_add64(int64_t a, int64_t b);
int64_t checked_mul64(int64_t a, int64_t b);

class Rational {
 public:
  Rational() : num_(0), den_(1) {}
  Rational(int64_t num, int64_t den);
  Rational(int64_t whole) : num_(whole), den_(1) {}  // NOLINT(implicit)

  int64_t num() const { return num_; }
  int64_t den() const { return den_; }

  double to_double() const { return static_cast<double>(num_) / den_; }
  std::string to_string() const;

  Rational operator+(const Rational& o) const;
  Rational operator-(const Rational& o) const;
  Rational operator*(const Rational& o) const;
  Rational operator/(const Rational& o) const;

  bool operator==(const Rational& o) const {
    return num_ == o.num_ && den_ == o.den_;
  }
  bool operator!=(const Rational& o) const { return !(*this == o); }
  bool operator<(const Rational& o) const;
  bool operator<=(const Rational& o) const { return *this < o || *this == o; }
  bool operator>(const Rational& o) const { return o < *this; }
  bool operator>=(const Rational& o) const { return o <= *this; }

 private:
  void normalize();

  int64_t num_;
  int64_t den_;  // always > 0
};

// Least common multiple of the denominators, i.e. the smallest N such that
// w * N is an integer for every w. Throws if the result overflows.
int64_t common_denominator(const std::vector<Rational>& ws);

// Sum of a vector of rationals.
Rational sum(const std::vector<Rational>& ws);

}  // namespace galloper
