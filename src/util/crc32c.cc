#include "util/crc32c.h"

#include <array>

namespace galloper {

namespace {

constexpr uint32_t kPolyReflected = 0x82f63b78u;  // 0x1EDC6F41 reflected

constexpr std::array<uint32_t, 256> build_table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit)
      crc = (crc >> 1) ^ ((crc & 1) ? kPolyReflected : 0);
    table[i] = crc;
  }
  return table;
}

constexpr auto kTable = build_table();

}  // namespace

uint32_t crc32c_extend(uint32_t state, ConstByteSpan data) {
  for (uint8_t b : data)
    state = kTable[(state ^ b) & 0xff] ^ (state >> 8);
  return state;
}

uint32_t crc32c(ConstByteSpan data) {
  return crc32c_finish(crc32c_extend(kCrc32cInit, data));
}

}  // namespace galloper
