#include "util/crc32c.h"

#include <array>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace galloper {

namespace {

constexpr uint32_t kPolyReflected = 0x82f63b78u;  // 0x1EDC6F41 reflected

constexpr std::array<uint32_t, 256> build_table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit)
      crc = (crc >> 1) ^ ((crc & 1) ? kPolyReflected : 0);
    table[i] = crc;
  }
  return table;
}

constexpr auto kTable = build_table();

uint32_t scalar_extend(uint32_t state, ConstByteSpan data) {
  for (uint8_t b : data)
    state = kTable[(state ^ b) & 0xff] ^ (state >> 8);
  return state;
}

#if defined(__x86_64__)

// SSE4.2 CRC32 instruction computes exactly this reflected-Castagnoli form,
// 8 bytes per instruction. Unaligned reads go through memcpy (folded into a
// plain mov by the compiler).
__attribute__((target("sse4.2"))) uint32_t sse42_extend(uint32_t state,
                                                        ConstByteSpan data) {
  const uint8_t* p = data.data();
  size_t n = data.size();
  uint64_t crc = state;
  while (n >= 8) {
    uint64_t word;
    std::memcpy(&word, p, 8);
    crc = _mm_crc32_u64(crc, word);
    p += 8;
    n -= 8;
  }
  uint32_t crc32 = static_cast<uint32_t>(crc);
  while (n--) crc32 = _mm_crc32_u8(crc32, *p++);
  return crc32;
}

#endif  // __x86_64__

using ExtendFn = uint32_t (*)(uint32_t, ConstByteSpan);

struct Backend {
  ExtendFn fn;
  const char* name;
};

Backend pick_backend() {
  // GALLOPER_CRC32C=scalar forces the table-driven path (the SIMD-equivalence
  // test uses it as its reference).
  const char* force = std::getenv("GALLOPER_CRC32C");
  const bool want_scalar = force && std::strcmp(force, "scalar") == 0;
#if defined(__x86_64__)
  if (!want_scalar && __builtin_cpu_supports("sse4.2"))
    return {sse42_extend, "sse4.2"};
#endif
  (void)want_scalar;
  return {scalar_extend, "scalar"};
}

const Backend& backend() {
  static const Backend b = pick_backend();
  return b;
}

}  // namespace

uint32_t crc32c_extend(uint32_t state, ConstByteSpan data) {
  return backend().fn(state, data);
}

uint32_t crc32c(ConstByteSpan data) {
  return crc32c_finish(crc32c_extend(kCrc32cInit, data));
}

const char* crc32c_backend() { return backend().name; }

}  // namespace galloper
