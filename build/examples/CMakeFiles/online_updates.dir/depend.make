# Empty dependencies file for online_updates.
# This may be replaced when dependencies are built.
