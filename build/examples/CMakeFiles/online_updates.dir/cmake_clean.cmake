file(REMOVE_RECURSE
  "CMakeFiles/online_updates.dir/online_updates.cpp.o"
  "CMakeFiles/online_updates.dir/online_updates.cpp.o.d"
  "online_updates"
  "online_updates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_updates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
