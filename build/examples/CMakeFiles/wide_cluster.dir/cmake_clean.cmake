file(REMOVE_RECURSE
  "CMakeFiles/wide_cluster.dir/wide_cluster.cpp.o"
  "CMakeFiles/wide_cluster.dir/wide_cluster.cpp.o.d"
  "wide_cluster"
  "wide_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wide_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
