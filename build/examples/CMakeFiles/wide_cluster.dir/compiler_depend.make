# Empty compiler generated dependencies file for wide_cluster.
# This may be replaced when dependencies are built.
