file(REMOVE_RECURSE
  "CMakeFiles/analytics_wordcount.dir/analytics_wordcount.cpp.o"
  "CMakeFiles/analytics_wordcount.dir/analytics_wordcount.cpp.o.d"
  "analytics_wordcount"
  "analytics_wordcount.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analytics_wordcount.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
