# Empty dependencies file for analytics_wordcount.
# This may be replaced when dependencies are built.
