# Empty compiler generated dependencies file for ablation_durability.
# This may be replaced when dependencies are built.
