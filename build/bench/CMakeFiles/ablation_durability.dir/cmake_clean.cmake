file(REMOVE_RECURSE
  "CMakeFiles/ablation_durability.dir/ablation_durability.cc.o"
  "CMakeFiles/ablation_durability.dir/ablation_durability.cc.o.d"
  "ablation_durability"
  "ablation_durability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_durability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
