# Empty dependencies file for ablation_allsymbol.
# This may be replaced when dependencies are built.
