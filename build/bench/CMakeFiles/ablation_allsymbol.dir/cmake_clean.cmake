file(REMOVE_RECURSE
  "CMakeFiles/ablation_allsymbol.dir/ablation_allsymbol.cc.o"
  "CMakeFiles/ablation_allsymbol.dir/ablation_allsymbol.cc.o.d"
  "ablation_allsymbol"
  "ablation_allsymbol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_allsymbol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
