# Empty dependencies file for ablation_decode.
# This may be replaced when dependencies are built.
