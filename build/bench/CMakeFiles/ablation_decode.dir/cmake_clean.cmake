file(REMOVE_RECURSE
  "CMakeFiles/ablation_decode.dir/ablation_decode.cc.o"
  "CMakeFiles/ablation_decode.dir/ablation_decode.cc.o.d"
  "ablation_decode"
  "ablation_decode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_decode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
