# Empty compiler generated dependencies file for fig7_encode_decode.
# This may be replaced when dependencies are built.
