file(REMOVE_RECURSE
  "CMakeFiles/fig7_encode_decode.dir/fig7_encode_decode.cc.o"
  "CMakeFiles/fig7_encode_decode.dir/fig7_encode_decode.cc.o.d"
  "fig7_encode_decode"
  "fig7_encode_decode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_encode_decode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
