# Empty dependencies file for fig8_reconstruction.
# This may be replaced when dependencies are built.
