file(REMOVE_RECURSE
  "CMakeFiles/fig8_reconstruction.dir/fig8_reconstruction.cc.o"
  "CMakeFiles/fig8_reconstruction.dir/fig8_reconstruction.cc.o.d"
  "fig8_reconstruction"
  "fig8_reconstruction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_reconstruction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
