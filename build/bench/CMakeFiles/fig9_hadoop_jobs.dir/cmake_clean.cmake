file(REMOVE_RECURSE
  "CMakeFiles/fig9_hadoop_jobs.dir/fig9_hadoop_jobs.cc.o"
  "CMakeFiles/fig9_hadoop_jobs.dir/fig9_hadoop_jobs.cc.o.d"
  "fig9_hadoop_jobs"
  "fig9_hadoop_jobs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_hadoop_jobs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
