# Empty compiler generated dependencies file for fig9_hadoop_jobs.
# This may be replaced when dependencies are built.
