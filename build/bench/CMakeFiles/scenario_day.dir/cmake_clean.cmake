file(REMOVE_RECURSE
  "CMakeFiles/scenario_day.dir/scenario_day.cc.o"
  "CMakeFiles/scenario_day.dir/scenario_day.cc.o.d"
  "scenario_day"
  "scenario_day.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scenario_day.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
