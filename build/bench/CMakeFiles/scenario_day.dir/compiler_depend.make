# Empty compiler generated dependencies file for scenario_day.
# This may be replaced when dependencies are built.
