file(REMOVE_RECURSE
  "CMakeFiles/ablation_update.dir/ablation_update.cc.o"
  "CMakeFiles/ablation_update.dir/ablation_update.cc.o.d"
  "ablation_update"
  "ablation_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
