file(REMOVE_RECURSE
  "CMakeFiles/ablation_stripes.dir/ablation_stripes.cc.o"
  "CMakeFiles/ablation_stripes.dir/ablation_stripes.cc.o.d"
  "ablation_stripes"
  "ablation_stripes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_stripes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
