# Empty dependencies file for ablation_stripes.
# This may be replaced when dependencies are built.
