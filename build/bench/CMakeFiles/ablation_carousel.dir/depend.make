# Empty dependencies file for ablation_carousel.
# This may be replaced when dependencies are built.
