file(REMOVE_RECURSE
  "CMakeFiles/ablation_carousel.dir/ablation_carousel.cc.o"
  "CMakeFiles/ablation_carousel.dir/ablation_carousel.cc.o.d"
  "ablation_carousel"
  "ablation_carousel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_carousel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
