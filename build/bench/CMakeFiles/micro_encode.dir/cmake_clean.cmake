file(REMOVE_RECURSE
  "CMakeFiles/micro_encode.dir/micro_encode.cc.o"
  "CMakeFiles/micro_encode.dir/micro_encode.cc.o.d"
  "micro_encode"
  "micro_encode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_encode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
