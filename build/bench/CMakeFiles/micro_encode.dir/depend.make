# Empty dependencies file for micro_encode.
# This may be replaced when dependencies are built.
