# Empty compiler generated dependencies file for galloper.
# This may be replaced when dependencies are built.
