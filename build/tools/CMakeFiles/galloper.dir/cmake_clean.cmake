file(REMOVE_RECURSE
  "CMakeFiles/galloper.dir/galloper_main.cc.o"
  "CMakeFiles/galloper.dir/galloper_main.cc.o.d"
  "galloper"
  "galloper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/galloper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
