# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/gf_test[1]_include.cmake")
include("/root/repo/build/tests/la_test[1]_include.cmake")
include("/root/repo/build/tests/lp_test[1]_include.cmake")
include("/root/repo/build/tests/gf16_test[1]_include.cmake")
include("/root/repo/build/tests/rs_test[1]_include.cmake")
include("/root/repo/build/tests/wide_rs_test[1]_include.cmake")
include("/root/repo/build/tests/block_group_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/update_read_test[1]_include.cmake")
include("/root/repo/build/tests/pyramid_test[1]_include.cmake")
include("/root/repo/build/tests/carousel_test[1]_include.cmake")
include("/root/repo/build/tests/remap_test[1]_include.cmake")
include("/root/repo/build/tests/weights_test[1]_include.cmake")
include("/root/repo/build/tests/galloper_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/input_format_test[1]_include.cmake")
include("/root/repo/build/tests/all_symbol_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/store_test[1]_include.cmake")
include("/root/repo/build/tests/placement_test[1]_include.cmake")
include("/root/repo/build/tests/cli_test[1]_include.cmake")
include("/root/repo/build/tests/durability_test[1]_include.cmake")
include("/root/repo/build/tests/mr_test[1]_include.cmake")
include("/root/repo/build/tests/scenario_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
