file(REMOVE_RECURSE
  "CMakeFiles/galloper_test.dir/galloper_test.cc.o"
  "CMakeFiles/galloper_test.dir/galloper_test.cc.o.d"
  "galloper_test"
  "galloper_test.pdb"
  "galloper_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/galloper_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
