# Empty compiler generated dependencies file for galloper_test.
# This may be replaced when dependencies are built.
