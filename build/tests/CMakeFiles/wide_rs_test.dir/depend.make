# Empty dependencies file for wide_rs_test.
# This may be replaced when dependencies are built.
