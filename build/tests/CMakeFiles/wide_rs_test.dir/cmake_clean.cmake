file(REMOVE_RECURSE
  "CMakeFiles/wide_rs_test.dir/wide_rs_test.cc.o"
  "CMakeFiles/wide_rs_test.dir/wide_rs_test.cc.o.d"
  "wide_rs_test"
  "wide_rs_test.pdb"
  "wide_rs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wide_rs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
