# Empty compiler generated dependencies file for update_read_test.
# This may be replaced when dependencies are built.
