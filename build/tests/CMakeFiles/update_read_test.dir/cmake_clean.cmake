file(REMOVE_RECURSE
  "CMakeFiles/update_read_test.dir/update_read_test.cc.o"
  "CMakeFiles/update_read_test.dir/update_read_test.cc.o.d"
  "update_read_test"
  "update_read_test.pdb"
  "update_read_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/update_read_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
