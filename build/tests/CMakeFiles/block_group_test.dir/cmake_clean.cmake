file(REMOVE_RECURSE
  "CMakeFiles/block_group_test.dir/block_group_test.cc.o"
  "CMakeFiles/block_group_test.dir/block_group_test.cc.o.d"
  "block_group_test"
  "block_group_test.pdb"
  "block_group_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/block_group_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
