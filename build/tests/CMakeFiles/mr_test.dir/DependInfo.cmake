
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mr_test.cc" "tests/CMakeFiles/mr_test.dir/mr_test.cc.o" "gcc" "tests/CMakeFiles/mr_test.dir/mr_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mr/CMakeFiles/galloper_mr.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/galloper_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/galloper_core.dir/DependInfo.cmake"
  "/root/repo/build/src/codes/CMakeFiles/galloper_codes.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/galloper_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/galloper_la.dir/DependInfo.cmake"
  "/root/repo/build/src/gf/CMakeFiles/galloper_gf.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/galloper_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
