file(REMOVE_RECURSE
  "CMakeFiles/all_symbol_test.dir/all_symbol_test.cc.o"
  "CMakeFiles/all_symbol_test.dir/all_symbol_test.cc.o.d"
  "all_symbol_test"
  "all_symbol_test.pdb"
  "all_symbol_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/all_symbol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
