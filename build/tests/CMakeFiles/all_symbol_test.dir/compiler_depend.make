# Empty compiler generated dependencies file for all_symbol_test.
# This may be replaced when dependencies are built.
