# Empty compiler generated dependencies file for input_format_test.
# This may be replaced when dependencies are built.
