file(REMOVE_RECURSE
  "CMakeFiles/input_format_test.dir/input_format_test.cc.o"
  "CMakeFiles/input_format_test.dir/input_format_test.cc.o.d"
  "input_format_test"
  "input_format_test.pdb"
  "input_format_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/input_format_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
