file(REMOVE_RECURSE
  "CMakeFiles/carousel_test.dir/carousel_test.cc.o"
  "CMakeFiles/carousel_test.dir/carousel_test.cc.o.d"
  "carousel_test"
  "carousel_test.pdb"
  "carousel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/carousel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
