# Empty dependencies file for carousel_test.
# This may be replaced when dependencies are built.
