file(REMOVE_RECURSE
  "CMakeFiles/gf16_test.dir/gf16_test.cc.o"
  "CMakeFiles/gf16_test.dir/gf16_test.cc.o.d"
  "gf16_test"
  "gf16_test.pdb"
  "gf16_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gf16_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
