# Empty compiler generated dependencies file for gf16_test.
# This may be replaced when dependencies are built.
