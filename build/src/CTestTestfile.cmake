# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("gf")
subdirs("la")
subdirs("lp")
subdirs("codes")
subdirs("core")
subdirs("sim")
subdirs("store")
subdirs("cli")
subdirs("analysis")
subdirs("mr")
subdirs("scenario")
