# Empty dependencies file for galloper_cli_lib.
# This may be replaced when dependencies are built.
