file(REMOVE_RECURSE
  "libgalloper_cli_lib.a"
)
