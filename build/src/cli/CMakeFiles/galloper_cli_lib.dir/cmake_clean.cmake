file(REMOVE_RECURSE
  "CMakeFiles/galloper_cli_lib.dir/archive.cc.o"
  "CMakeFiles/galloper_cli_lib.dir/archive.cc.o.d"
  "libgalloper_cli_lib.a"
  "libgalloper_cli_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/galloper_cli_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
