file(REMOVE_RECURSE
  "libgalloper_codes.a"
)
