
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codes/block_group.cc" "src/codes/CMakeFiles/galloper_codes.dir/block_group.cc.o" "gcc" "src/codes/CMakeFiles/galloper_codes.dir/block_group.cc.o.d"
  "/root/repo/src/codes/carousel.cc" "src/codes/CMakeFiles/galloper_codes.dir/carousel.cc.o" "gcc" "src/codes/CMakeFiles/galloper_codes.dir/carousel.cc.o.d"
  "/root/repo/src/codes/engine.cc" "src/codes/CMakeFiles/galloper_codes.dir/engine.cc.o" "gcc" "src/codes/CMakeFiles/galloper_codes.dir/engine.cc.o.d"
  "/root/repo/src/codes/erasure_code.cc" "src/codes/CMakeFiles/galloper_codes.dir/erasure_code.cc.o" "gcc" "src/codes/CMakeFiles/galloper_codes.dir/erasure_code.cc.o.d"
  "/root/repo/src/codes/pyramid.cc" "src/codes/CMakeFiles/galloper_codes.dir/pyramid.cc.o" "gcc" "src/codes/CMakeFiles/galloper_codes.dir/pyramid.cc.o.d"
  "/root/repo/src/codes/reed_solomon.cc" "src/codes/CMakeFiles/galloper_codes.dir/reed_solomon.cc.o" "gcc" "src/codes/CMakeFiles/galloper_codes.dir/reed_solomon.cc.o.d"
  "/root/repo/src/codes/remap.cc" "src/codes/CMakeFiles/galloper_codes.dir/remap.cc.o" "gcc" "src/codes/CMakeFiles/galloper_codes.dir/remap.cc.o.d"
  "/root/repo/src/codes/wide_rs.cc" "src/codes/CMakeFiles/galloper_codes.dir/wide_rs.cc.o" "gcc" "src/codes/CMakeFiles/galloper_codes.dir/wide_rs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/la/CMakeFiles/galloper_la.dir/DependInfo.cmake"
  "/root/repo/build/src/gf/CMakeFiles/galloper_gf.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/galloper_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
