# Empty compiler generated dependencies file for galloper_codes.
# This may be replaced when dependencies are built.
