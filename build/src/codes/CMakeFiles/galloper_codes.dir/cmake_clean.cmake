file(REMOVE_RECURSE
  "CMakeFiles/galloper_codes.dir/block_group.cc.o"
  "CMakeFiles/galloper_codes.dir/block_group.cc.o.d"
  "CMakeFiles/galloper_codes.dir/carousel.cc.o"
  "CMakeFiles/galloper_codes.dir/carousel.cc.o.d"
  "CMakeFiles/galloper_codes.dir/engine.cc.o"
  "CMakeFiles/galloper_codes.dir/engine.cc.o.d"
  "CMakeFiles/galloper_codes.dir/erasure_code.cc.o"
  "CMakeFiles/galloper_codes.dir/erasure_code.cc.o.d"
  "CMakeFiles/galloper_codes.dir/pyramid.cc.o"
  "CMakeFiles/galloper_codes.dir/pyramid.cc.o.d"
  "CMakeFiles/galloper_codes.dir/reed_solomon.cc.o"
  "CMakeFiles/galloper_codes.dir/reed_solomon.cc.o.d"
  "CMakeFiles/galloper_codes.dir/remap.cc.o"
  "CMakeFiles/galloper_codes.dir/remap.cc.o.d"
  "CMakeFiles/galloper_codes.dir/wide_rs.cc.o"
  "CMakeFiles/galloper_codes.dir/wide_rs.cc.o.d"
  "libgalloper_codes.a"
  "libgalloper_codes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/galloper_codes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
