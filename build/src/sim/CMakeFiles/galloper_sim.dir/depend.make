# Empty dependencies file for galloper_sim.
# This may be replaced when dependencies are built.
