file(REMOVE_RECURSE
  "CMakeFiles/galloper_sim.dir/cluster.cc.o"
  "CMakeFiles/galloper_sim.dir/cluster.cc.o.d"
  "CMakeFiles/galloper_sim.dir/des.cc.o"
  "CMakeFiles/galloper_sim.dir/des.cc.o.d"
  "CMakeFiles/galloper_sim.dir/storage.cc.o"
  "CMakeFiles/galloper_sim.dir/storage.cc.o.d"
  "libgalloper_sim.a"
  "libgalloper_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/galloper_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
