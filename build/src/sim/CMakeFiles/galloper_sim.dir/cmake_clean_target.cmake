file(REMOVE_RECURSE
  "libgalloper_sim.a"
)
