# Empty dependencies file for galloper_gf.
# This may be replaced when dependencies are built.
