file(REMOVE_RECURSE
  "libgalloper_gf.a"
)
