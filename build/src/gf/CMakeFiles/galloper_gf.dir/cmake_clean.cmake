file(REMOVE_RECURSE
  "CMakeFiles/galloper_gf.dir/gf256.cc.o"
  "CMakeFiles/galloper_gf.dir/gf256.cc.o.d"
  "CMakeFiles/galloper_gf.dir/gf65536.cc.o"
  "CMakeFiles/galloper_gf.dir/gf65536.cc.o.d"
  "CMakeFiles/galloper_gf.dir/region.cc.o"
  "CMakeFiles/galloper_gf.dir/region.cc.o.d"
  "libgalloper_gf.a"
  "libgalloper_gf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/galloper_gf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
