file(REMOVE_RECURSE
  "CMakeFiles/galloper_store.dir/file_store.cc.o"
  "CMakeFiles/galloper_store.dir/file_store.cc.o.d"
  "CMakeFiles/galloper_store.dir/placement.cc.o"
  "CMakeFiles/galloper_store.dir/placement.cc.o.d"
  "CMakeFiles/galloper_store.dir/recovery.cc.o"
  "CMakeFiles/galloper_store.dir/recovery.cc.o.d"
  "libgalloper_store.a"
  "libgalloper_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/galloper_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
