file(REMOVE_RECURSE
  "libgalloper_store.a"
)
