# Empty dependencies file for galloper_store.
# This may be replaced when dependencies are built.
