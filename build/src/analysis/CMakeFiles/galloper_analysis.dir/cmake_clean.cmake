file(REMOVE_RECURSE
  "CMakeFiles/galloper_analysis.dir/durability.cc.o"
  "CMakeFiles/galloper_analysis.dir/durability.cc.o.d"
  "libgalloper_analysis.a"
  "libgalloper_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/galloper_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
