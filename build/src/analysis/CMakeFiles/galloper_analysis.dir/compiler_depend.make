# Empty compiler generated dependencies file for galloper_analysis.
# This may be replaced when dependencies are built.
