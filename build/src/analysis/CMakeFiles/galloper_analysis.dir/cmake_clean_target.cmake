file(REMOVE_RECURSE
  "libgalloper_analysis.a"
)
