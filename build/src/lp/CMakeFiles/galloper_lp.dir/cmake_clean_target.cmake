file(REMOVE_RECURSE
  "libgalloper_lp.a"
)
