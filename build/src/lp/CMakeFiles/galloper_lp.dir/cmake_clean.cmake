file(REMOVE_RECURSE
  "CMakeFiles/galloper_lp.dir/simplex.cc.o"
  "CMakeFiles/galloper_lp.dir/simplex.cc.o.d"
  "libgalloper_lp.a"
  "libgalloper_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/galloper_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
