# Empty compiler generated dependencies file for galloper_lp.
# This may be replaced when dependencies are built.
