# Empty dependencies file for galloper_util.
# This may be replaced when dependencies are built.
