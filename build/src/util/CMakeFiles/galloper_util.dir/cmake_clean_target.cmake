file(REMOVE_RECURSE
  "libgalloper_util.a"
)
