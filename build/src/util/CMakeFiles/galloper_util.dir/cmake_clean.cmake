file(REMOVE_RECURSE
  "CMakeFiles/galloper_util.dir/bytes.cc.o"
  "CMakeFiles/galloper_util.dir/bytes.cc.o.d"
  "CMakeFiles/galloper_util.dir/crc32c.cc.o"
  "CMakeFiles/galloper_util.dir/crc32c.cc.o.d"
  "CMakeFiles/galloper_util.dir/flags.cc.o"
  "CMakeFiles/galloper_util.dir/flags.cc.o.d"
  "CMakeFiles/galloper_util.dir/rational.cc.o"
  "CMakeFiles/galloper_util.dir/rational.cc.o.d"
  "CMakeFiles/galloper_util.dir/rng.cc.o"
  "CMakeFiles/galloper_util.dir/rng.cc.o.d"
  "CMakeFiles/galloper_util.dir/stats.cc.o"
  "CMakeFiles/galloper_util.dir/stats.cc.o.d"
  "CMakeFiles/galloper_util.dir/table.cc.o"
  "CMakeFiles/galloper_util.dir/table.cc.o.d"
  "libgalloper_util.a"
  "libgalloper_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/galloper_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
