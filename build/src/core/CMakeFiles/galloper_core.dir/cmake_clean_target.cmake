file(REMOVE_RECURSE
  "libgalloper_core.a"
)
