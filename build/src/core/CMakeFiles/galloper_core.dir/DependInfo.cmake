
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/all_symbol.cc" "src/core/CMakeFiles/galloper_core.dir/all_symbol.cc.o" "gcc" "src/core/CMakeFiles/galloper_core.dir/all_symbol.cc.o.d"
  "/root/repo/src/core/construction.cc" "src/core/CMakeFiles/galloper_core.dir/construction.cc.o" "gcc" "src/core/CMakeFiles/galloper_core.dir/construction.cc.o.d"
  "/root/repo/src/core/galloper.cc" "src/core/CMakeFiles/galloper_core.dir/galloper.cc.o" "gcc" "src/core/CMakeFiles/galloper_core.dir/galloper.cc.o.d"
  "/root/repo/src/core/input_format.cc" "src/core/CMakeFiles/galloper_core.dir/input_format.cc.o" "gcc" "src/core/CMakeFiles/galloper_core.dir/input_format.cc.o.d"
  "/root/repo/src/core/weights.cc" "src/core/CMakeFiles/galloper_core.dir/weights.cc.o" "gcc" "src/core/CMakeFiles/galloper_core.dir/weights.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/codes/CMakeFiles/galloper_codes.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/galloper_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/galloper_la.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/galloper_util.dir/DependInfo.cmake"
  "/root/repo/build/src/gf/CMakeFiles/galloper_gf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
