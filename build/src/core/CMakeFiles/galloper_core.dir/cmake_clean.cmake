file(REMOVE_RECURSE
  "CMakeFiles/galloper_core.dir/all_symbol.cc.o"
  "CMakeFiles/galloper_core.dir/all_symbol.cc.o.d"
  "CMakeFiles/galloper_core.dir/construction.cc.o"
  "CMakeFiles/galloper_core.dir/construction.cc.o.d"
  "CMakeFiles/galloper_core.dir/galloper.cc.o"
  "CMakeFiles/galloper_core.dir/galloper.cc.o.d"
  "CMakeFiles/galloper_core.dir/input_format.cc.o"
  "CMakeFiles/galloper_core.dir/input_format.cc.o.d"
  "CMakeFiles/galloper_core.dir/weights.cc.o"
  "CMakeFiles/galloper_core.dir/weights.cc.o.d"
  "libgalloper_core.a"
  "libgalloper_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/galloper_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
