# Empty compiler generated dependencies file for galloper_core.
# This may be replaced when dependencies are built.
