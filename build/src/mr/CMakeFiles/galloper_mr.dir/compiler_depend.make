# Empty compiler generated dependencies file for galloper_mr.
# This may be replaced when dependencies are built.
