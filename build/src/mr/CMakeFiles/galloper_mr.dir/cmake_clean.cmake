file(REMOVE_RECURSE
  "CMakeFiles/galloper_mr.dir/framework.cc.o"
  "CMakeFiles/galloper_mr.dir/framework.cc.o.d"
  "CMakeFiles/galloper_mr.dir/grep.cc.o"
  "CMakeFiles/galloper_mr.dir/grep.cc.o.d"
  "CMakeFiles/galloper_mr.dir/simjob.cc.o"
  "CMakeFiles/galloper_mr.dir/simjob.cc.o.d"
  "CMakeFiles/galloper_mr.dir/terasort.cc.o"
  "CMakeFiles/galloper_mr.dir/terasort.cc.o.d"
  "CMakeFiles/galloper_mr.dir/wordcount.cc.o"
  "CMakeFiles/galloper_mr.dir/wordcount.cc.o.d"
  "libgalloper_mr.a"
  "libgalloper_mr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/galloper_mr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
