file(REMOVE_RECURSE
  "libgalloper_mr.a"
)
