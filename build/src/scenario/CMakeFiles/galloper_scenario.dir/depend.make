# Empty dependencies file for galloper_scenario.
# This may be replaced when dependencies are built.
