file(REMOVE_RECURSE
  "libgalloper_scenario.a"
)
