file(REMOVE_RECURSE
  "CMakeFiles/galloper_scenario.dir/scenario.cc.o"
  "CMakeFiles/galloper_scenario.dir/scenario.cc.o.d"
  "libgalloper_scenario.a"
  "libgalloper_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/galloper_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
