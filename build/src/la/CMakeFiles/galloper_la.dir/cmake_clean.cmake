file(REMOVE_RECURSE
  "CMakeFiles/galloper_la.dir/builders.cc.o"
  "CMakeFiles/galloper_la.dir/builders.cc.o.d"
  "CMakeFiles/galloper_la.dir/matrix.cc.o"
  "CMakeFiles/galloper_la.dir/matrix.cc.o.d"
  "CMakeFiles/galloper_la.dir/solve.cc.o"
  "CMakeFiles/galloper_la.dir/solve.cc.o.d"
  "libgalloper_la.a"
  "libgalloper_la.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/galloper_la.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
