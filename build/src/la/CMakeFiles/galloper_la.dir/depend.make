# Empty dependencies file for galloper_la.
# This may be replaced when dependencies are built.
