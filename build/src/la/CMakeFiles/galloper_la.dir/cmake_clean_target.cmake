file(REMOVE_RECURSE
  "libgalloper_la.a"
)
