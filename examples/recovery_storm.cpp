// Recovery storm: a server dies while it holds blocks of MANY files, and
// the cluster must rebuild all of them. Compares Reed-Solomon against
// Galloper on recovered bytes, disk I/O, and simulated makespan, then
// estimates what the repair speed means for durability (MTTDL).
//
//   $ ./recovery_storm
#include <cstdio>

#include "analysis/durability.h"
#include "codes/reed_solomon.h"
#include "core/galloper.h"
#include "store/file_store.h"
#include "store/recovery.h"
#include "util/rng.h"
#include "util/table.h"

using namespace galloper;

namespace {

struct Outcome {
  store::RecoveryReport report;
  bool verified = false;
};

Outcome storm(const codes::ErasureCode& code, size_t files,
              size_t file_bytes, uint64_t seed) {
  sim::Simulation simulation;
  sim::Cluster cluster(simulation, code.num_blocks(), sim::ServerSpec{});
  store::FileStore fs(cluster, code);
  Rng rng(seed);
  std::vector<Buffer> originals;
  for (size_t i = 0; i < files; ++i) {
    originals.push_back(random_buffer(file_bytes, rng));
    fs.write(originals.back());
  }
  fs.fail_server(0);
  fs.revive_server(0);
  store::RecoveryManager mgr(simulation, fs);
  Outcome out;
  out.report = mgr.recover_all();
  out.verified = true;
  for (size_t i = 0; i < files; ++i)
    out.verified &= (*fs.read(i) == originals[i]);
  return out;
}

}  // namespace

int main() {
  codes::ReedSolomonCode rs(4, 2);
  core::GalloperCode gal(4, 2, 1);

  const size_t files = 24;
  const size_t file_bytes = 28 * 4096;  // valid for both codes (28 chunks)

  std::printf("server 0 dies holding one block of each of %zu files "
              "(%zu bytes each)\n\n",
              files, file_bytes);

  Table table({"code", "blocks rebuilt", "plans compiled", "disk read (MB)",
               "makespan (s)", "bit-exact"});
  for (const codes::ErasureCode* code :
       std::initializer_list<const codes::ErasureCode*>{&rs, &gal}) {
    const Outcome out = storm(*code, files, file_bytes, 99);
    table.add_row(
        {code->name(), std::to_string(out.report.blocks_repaired),
         std::to_string(out.report.plans_compiled),
         Table::num(static_cast<double>(out.report.disk_bytes_read) / 1e6),
         Table::num(out.report.makespan), out.verified ? "yes" : "NO"});
  }
  table.print();
  std::printf(
      "\nEvery file shares one erasure pattern, so the storm runs ONE "
      "Gaussian\nelimination per code and reuses the compiled plan for all "
      "other repairs\n(blocks rebuilt / plans compiled = plan-reuse "
      "factor).\n");

  // What faster repair buys in durability (accelerated failure rates).
  analysis::DurabilityParams params{/*mtbf_hours=*/40.0,
                                    /*repair_hours_per_block=*/1.0};
  const auto d_rs = analysis::mttdl_monte_carlo(rs, params, 200, 1);
  const auto d_gal = analysis::mttdl_monte_carlo(gal, params, 200, 1);
  std::printf(
      "\nMTTDL (accelerated regime, 200 trials): RS %.0f h vs Galloper "
      "%.0f h — %0.1fx, from halving the repair window.\n",
      d_rs.mttdl_hours, d_gal.mttdl_hours,
      d_gal.mttdl_hours / d_rs.mttdl_hours);
  return 0;
}
