// Heterogeneous cluster walkthrough (paper Sec. IV-C / V-B and Fig. 10):
// derive Galloper weights from measured server performance via the linear
// program, and compare simulated map phases against homogeneous weights.
//
//   $ ./heterogeneous_cluster
#include <cstdio>

#include "core/galloper.h"
#include "core/input_format.h"
#include "core/weights.h"
#include "mr/simjob.h"
#include "mr/wordcount.h"
#include "sim/cluster.h"
#include "util/table.h"

using namespace galloper;

int main() {
  // Measured performance of the 7 servers that will hold the blocks
  // (e.g. sequential-read throughput or CPU benchmark scores).
  const std::vector<double> perf{2.0, 0.5, 1.0, 1.0, 1.5, 0.8, 1.2};

  // 1. Solve the weight LP (caps overqualified servers: d_i > 0).
  const auto sol = core::assign_weights(4, 2, 1, perf, /*resolution=*/12);
  Table t({"block", "perf p_i", "effective p_i - d_i", "weight w_i"});
  for (size_t i = 0; i < perf.size(); ++i)
    t.add_row({std::to_string(i), Table::num(perf[i]),
               Table::num(sol.effective[i]),
               sol.weights[i].to_string() + " = " +
                   Table::num(sol.weights[i].to_double(), 3)});
  t.print();
  std::printf("Σ d_i (performance discarded to stay feasible): %.3f\n\n",
              sol.lp_objective);

  // 2. Build both codes.
  core::GalloperCode adapted(4, 2, 1, sol.weights);
  core::GalloperCode uniform(4, 2, 1);
  std::printf("adapted code: %s with N = %zu stripes/block\n",
              adapted.name().c_str(), adapted.n_stripes());

  // 3. Simulate a wordcount map phase on the matching cluster.
  std::vector<sim::ServerSpec> specs(30, sim::ServerSpec{});
  for (size_t i = 0; i < perf.size(); ++i)
    specs[i] = specs[i].scaled_cpu(perf[i]);
  sim::Simulation simulation;
  sim::Cluster cluster(simulation, specs);

  mr::JobConfig config;
  config.max_split_bytes = 1ull << 40;  // one map task per block
  mr::SimulatedJob job(cluster, mr::wordcount_profile(), config);

  const size_t block_bytes =
      adapted.n_stripes() * uniform.n_stripes() * (1 << 18);
  core::InputFormat fa(adapted, block_bytes);
  core::InputFormat fu(uniform, block_bytes);
  const auto ra = job.run(fa);
  const auto ru = job.run(fu);

  std::printf("\nsimulated map phase (same %zu-byte blocks):\n", block_bytes);
  std::printf("  uniform weights:  %.3f s\n", ru.map_phase_end);
  std::printf("  adapted weights:  %.3f s  (%.1f%% faster)\n",
              ra.map_phase_end,
              (1 - ra.map_phase_end / ru.map_phase_end) * 100);

  // 4. The fast server (block 0) got more data; the slow one (block 1)
  // got less — inspect the original-data layout.
  std::printf("\noriginal bytes per block (adapted):");
  for (size_t b = 0; b < adapted.num_blocks(); ++b)
    std::printf(" %zu", fa.original_bytes_in_block(b));
  std::printf("\n");
  return 0;
}
