// Quickstart: encode a file with a (4,2,1) Galloper code, inspect where
// the original data live, lose two servers, and recover everything.
//
//   $ ./quickstart
#include <cstdio>

#include "core/galloper.h"
#include "core/input_format.h"
#include "util/rng.h"

using namespace galloper;

int main() {
  // 1. Build the code. Homogeneous servers: every block holds w = 4/7 of a
  // block of original data.
  core::GalloperCode code(4, 2, 1);
  std::printf("code: %s, %zu blocks, N = %zu stripes per block\n",
              code.name().c_str(), code.num_blocks(), code.n_stripes());
  std::printf("weights:");
  for (const auto& w : code.weights())
    std::printf(" %s", w.to_string().c_str());
  std::printf("\n\n");

  // 2. Encode a file. The file must be a multiple of k·N chunks; any chunk
  // size works — we use 4 KiB chunks → 448 KiB file, 112 KiB blocks.
  Rng rng(1);
  const size_t chunk = 4096;
  const Buffer file = random_buffer(code.engine().num_chunks() * chunk, rng);
  const auto blocks = code.encode(file);
  std::printf("encoded %zu bytes into %zu blocks of %zu bytes\n", file.size(),
              blocks.size(), blocks[0].size());

  // 3. Where can a data-parallel job run? Everywhere.
  core::InputFormat fmt(code, blocks[0].size());
  for (const auto& split : fmt.splits())
    std::printf("  block %zu: %6zu bytes of original data "
                "(file offset %7zu)\n",
                split.block, split.length, split.file_offset);

  // 4. Lose two servers — the guaranteed tolerance g+1 = 2.
  std::printf("\nfailing blocks 0 and 6 …\n");
  std::map<size_t, ConstByteSpan> survivors;
  for (size_t b = 0; b < blocks.size(); ++b)
    if (b != 0 && b != 6) survivors.emplace(b, blocks[b]);

  // 5a. Repair block 0 locally: only its k/l = 2 group peers are read.
  const auto helpers = code.repair_helpers(0);
  std::printf("repairing block 0 from blocks");
  std::map<size_t, ConstByteSpan> helper_view;
  for (size_t h : helpers) {
    std::printf(" %zu", h);
    helper_view.emplace(h, blocks[h]);
  }
  const auto rebuilt = code.repair_block(0, helper_view);
  std::printf(" → %s\n",
              rebuilt && *rebuilt == blocks[0] ? "bit-exact" : "FAILED");

  // 5b. Or decode the whole file from the survivors.
  const auto decoded = code.decode(survivors);
  std::printf("decoding the file from 5 surviving blocks → %s\n",
              decoded && *decoded == file ? "bit-exact" : "FAILED");

  // 6. Fingerprints, for the skeptical.
  std::printf("\nfile fingerprint    %016llx\n",
              static_cast<unsigned long long>(fingerprint(file)));
  std::printf("decoded fingerprint %016llx\n",
              static_cast<unsigned long long>(fingerprint(*decoded)));
  return (decoded && *decoded == file) ? 0 : 1;
}
