// Wide stripes with GF(2^16): the paper's Sec. VI remark in action — when
// a deployment wants more than 256 blocks in one stripe, switch to the
// 16-bit field. Encodes across 300 data + 4 parity blocks and recovers
// from 4 simultaneous losses.
//
//   $ ./wide_cluster
#include <algorithm>
#include <cstdio>

#include "codes/wide_rs.h"
#include "util/rng.h"

using namespace galloper;

int main() {
  const size_t k = 300, r = 4;
  codes::WideReedSolomonCode code(k, r);
  std::printf("%s — %zu blocks total (impossible in GF(2^8))\n",
              code.name().c_str(), code.num_blocks());

  Rng rng(2);
  const size_t symbols_per_block = 512;  // 1 KiB blocks
  const Buffer file = random_buffer(k * symbols_per_block * 2, rng);
  const auto blocks = code.encode(file);
  std::printf("encoded %zu bytes into %zu blocks of %zu bytes\n",
              file.size(), blocks.size(), blocks[0].size());

  // Lose r = 4 blocks at adversarial positions.
  const std::vector<size_t> dead{0, 150, 299, 303};
  std::map<size_t, ConstByteSpan> survivors;
  for (size_t b = 0; b < code.num_blocks(); ++b)
    if (std::find(dead.begin(), dead.end(), b) == dead.end())
      survivors.emplace(b, blocks[b]);
  std::printf("failing blocks 0, 150, 299, 303 …\n");

  const auto decoded = code.decode(survivors);
  std::printf("decode from %zu survivors: %s\n", survivors.size(),
              decoded && *decoded == file ? "bit-exact" : "FAILED");

  const auto rebuilt = code.repair_block(150, survivors);
  std::printf("rebuild block 150: %s\n",
              rebuilt && *rebuilt == blocks[150] ? "bit-exact" : "FAILED");
  return (decoded && *decoded == file) ? 0 : 1;
}
