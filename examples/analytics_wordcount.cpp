// Data-analytics example (the paper's headline use case): run a REAL
// wordcount over Galloper-encoded blocks, reading only original-data
// regions via InputFormat — the Hadoop FileInputFormat analogue — and show
// that the result is byte-identical to running over the plain file, while
// every server contributes map work.
//
//   $ ./analytics_wordcount
#include <algorithm>
#include <cstdio>

#include "codes/pyramid.h"
#include "core/galloper.h"
#include "core/input_format.h"
#include "mr/framework.h"
#include "mr/wordcount.h"
#include "util/rng.h"

using namespace galloper;

int main() {
  // 1. Generate a corpus and encode it.
  core::GalloperCode gal(4, 2, 1);
  codes::PyramidCode pyr(4, 2, 1);
  Rng rng(7);
  const size_t chunk = mr::kWordCountRecordBytes * 64;  // records | chunk
  const Buffer corpus =
      mr::generate_text(gal.engine().num_chunks() * chunk, rng);
  std::printf("corpus: %zu bytes of text\n", corpus.size());

  const auto gal_blocks = gal.encode(corpus);
  const auto pyr_blocks = pyr.encode(corpus);

  // 2. Run wordcount three ways.
  mr::WordCountMapper mapper;
  mr::WordCountReducer reducer;
  mr::LocalRunner runner(mapper, reducer);

  const auto plain = runner.run_plain(corpus);

  core::InputFormat gal_fmt(gal, gal_blocks[0].size());
  std::vector<ConstByteSpan> gv(gal_blocks.begin(), gal_blocks.end());
  const auto over_galloper = runner.run(gal_fmt, gv);

  core::InputFormat pyr_fmt(pyr, pyr_blocks[0].size());
  std::vector<ConstByteSpan> pv(pyr_blocks.begin(), pyr_blocks.end());
  const auto over_pyramid = runner.run(pyr_fmt, pv);

  std::printf("results identical (plain vs Galloper): %s\n",
              plain == over_galloper ? "yes" : "NO");
  std::printf("results identical (plain vs Pyramid):  %s\n",
              plain == over_pyramid ? "yes" : "NO");

  // 3. Parallelism: which servers ran map tasks?
  auto servers_used = [](const core::InputFormat& fmt) {
    std::vector<size_t> used;
    for (const auto& s : fmt.splits()) used.push_back(s.block);
    return used;
  };
  std::printf("\nservers with map work (Pyramid): ");
  for (size_t s : servers_used(pyr_fmt)) std::printf(" %zu", s);
  std::printf("  ← only the k data blocks\n");
  std::printf("servers with map work (Galloper):");
  for (size_t s : servers_used(gal_fmt)) std::printf(" %zu", s);
  std::printf("  ← all k+l+g blocks\n");

  // 4. Top words.
  std::printf("\ntop words:\n");
  auto sorted = plain;
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    return std::stoull(a.value) > std::stoull(b.value);
  });
  for (size_t i = 0; i < 5 && i < sorted.size(); ++i)
    std::printf("  %-8s %s\n", sorted[i].key.c_str(),
                sorted[i].value.c_str());

  return (plain == over_galloper && plain == over_pyramid) ? 0 : 1;
}
