// Online updates and partial reads: a "live" coded file that is edited in
// place (delta parity patching), scrubbed, and read at byte ranges even
// while a server is down.
//
//   $ ./online_updates
#include <cstdio>

#include "core/galloper.h"
#include "sim/cluster.h"
#include "store/file_store.h"
#include "util/rng.h"

using namespace galloper;

int main() {
  core::GalloperCode code(4, 2, 1);
  sim::Simulation simulation;
  sim::Cluster cluster(simulation, 7, sim::ServerSpec{});
  store::FileStore fs(cluster, code);

  const size_t chunk = 4096;
  Rng rng(42);
  Buffer file = random_buffer(code.engine().num_chunks() * chunk, rng);
  const store::FileId id = fs.write(file);
  std::printf("stored a %zu-byte file (chunk = %zu bytes)\n\n", file.size(),
              chunk);

  // 1. Overwrite two chunks in place; only the touched blocks are written.
  const Buffer fresh = random_buffer(2 * chunk, rng);
  const auto touched = fs.update_range(id, 5 * chunk, fresh);
  std::copy(fresh.begin(), fresh.end(),
            file.begin() + static_cast<ptrdiff_t>(5 * chunk));
  std::printf("updated chunks 5-6; blocks written:");
  for (size_t b : touched) std::printf(" %zu", b);
  std::printf("  (%zu of %zu blocks)\n", touched.size(), code.num_blocks());

  // 2. Scrub confirms checksums were kept in sync with the update.
  std::printf("scrub after update: %s\n\n",
              fs.scrub().empty() ? "clean" : "CORRUPTION?!");

  // 3. Partial reads, healthy and degraded.
  std::map<size_t, ConstByteSpan> all;
  for (size_t b = 0; b < code.num_blocks(); ++b)
    all.emplace(b, *fs.block(id, b));
  auto range = code.engine().read_range(all, 5 * chunk + 100, 300);
  std::printf("range read [5·chunk+100, +300) healthy: %s\n",
              range && std::equal(range->begin(), range->end(),
                                  file.begin() + 5 * chunk + 100)
                  ? "correct"
                  : "WRONG");

  std::printf("server 1 dies; same read, now degraded …\n");
  fs.fail_server(1);
  std::map<size_t, ConstByteSpan> degraded;
  for (size_t b = 0; b < code.num_blocks(); ++b)
    if (auto d = fs.block(id, b)) degraded.emplace(b, *d);
  // Read a range that lives in the dead block (block 1 holds chunks 4-7).
  range = code.engine().read_range(degraded, 4 * chunk, 2 * chunk);
  std::printf("range read over the dead block: %s (reconstructed %zu "
              "bytes from parity)\n",
              range && std::equal(range->begin(), range->end(),
                                  file.begin() + 4 * chunk)
                  ? "correct"
                  : "WRONG",
              range ? range->size() : 0);
  return 0;
}
