// Failure-recovery walkthrough on the simulated storage cluster: inject
// server failures, check durability, repair with real byte movement and
// verify the rebuilt blocks bit-for-bit, while accounting disk I/O — the
// operational story behind paper Figs. 1 and 8.
//
//   $ ./failure_recovery
#include <cstdio>

#include "codes/reed_solomon.h"
#include "core/galloper.h"
#include "sim/storage.h"
#include "util/rng.h"

using namespace galloper;

int main() {
  core::GalloperCode code(4, 2, 1);
  const size_t chunk = 64 * 1024;
  Rng rng(99);
  const Buffer file = random_buffer(code.engine().num_chunks() * chunk, rng);
  auto blocks = code.encode(file);
  const size_t block_bytes = blocks[0].size();

  sim::Simulation simulation;
  sim::Cluster cluster(simulation, 9, sim::ServerSpec{});
  sim::StorageSystem storage(simulation, cluster, code, block_bytes);
  std::printf("stored %zu blocks of %zu bytes on servers 0-6 "
              "(servers 7-8 spare)\n\n",
              blocks.size(), block_bytes);

  // --- failure 1: a data block — repaired locally -----------------------
  std::printf("server 2 dies.\n");
  storage.fail_block(2);
  std::printf("  data still available? %s\n",
              storage.data_available() ? "yes" : "no");

  const auto metrics = storage.simulate_repair(2, /*replacement=*/7);
  std::printf("  simulated repair onto server 7: %.3f s, %.1f MB disk I/O, "
              "helpers:",
              metrics.completion_time,
              static_cast<double>(metrics.disk_bytes_read) / 1e6);
  for (size_t h : metrics.helpers) std::printf(" %zu", h);
  std::printf("\n");

  // Real byte-level repair with the same helper set.
  std::map<size_t, ConstByteSpan> helper_view;
  for (size_t h : metrics.helpers) helper_view.emplace(h, blocks[h]);
  const auto rebuilt = code.repair_block(2, helper_view);
  std::printf("  rebuilt block matches original: %s\n\n",
              rebuilt && *rebuilt == blocks[2] ? "yes" : "NO");
  storage.recover_block(2);

  // --- failure 2: two failures at once (the guarantee boundary) ---------
  std::printf("servers 0 and 1 die together (both data blocks of group 0).\n");
  storage.fail_block(0);
  storage.fail_block(1);
  std::printf("  data still available? %s  (g+1 = 2 tolerated)\n",
              storage.data_available() ? "yes" : "no");
  std::printf("  … and the global parity dies too.\n");
  storage.fail_block(6);
  std::printf("  data still available? %s  (3 failures can exceed the "
              "guarantee)\n\n",
              storage.data_available() ? "yes" : "no");
  storage.recover_block(6);

  // Recover the two dead blocks for real, from the 5 survivors.
  std::map<size_t, ConstByteSpan> survivors;
  for (size_t b = 2; b < 7; ++b) survivors.emplace(b, blocks[b]);
  const auto decoded = code.decode(survivors);
  std::printf("decode whole file from survivors: %s\n",
              decoded && *decoded == file ? "bit-exact" : "FAILED");

  // --- comparison: the same double failure under Reed-Solomon ------------
  codes::ReedSolomonCode rs(4, 2);
  sim::Simulation sim2;
  sim::Cluster cluster2(sim2, 8, sim::ServerSpec{});
  sim::StorageSystem rs_storage(sim2, cluster2, rs, block_bytes);
  const auto rs_metrics = rs_storage.simulate_repair(2, 7);
  std::printf(
      "\nrepairing one block: Reed-Solomon reads %.1f MB vs Galloper's "
      "%.1f MB (the Fig. 1 saving)\n",
      static_cast<double>(rs_metrics.disk_bytes_read) / 1e6,
      static_cast<double>(metrics.disk_bytes_read) / 1e6);
  return (decoded && *decoded == file) ? 0 : 1;
}
