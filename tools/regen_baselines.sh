#!/usr/bin/env bash
# Regenerates every committed bench baseline (BENCH_*.json) with the exact
# incantations CI's smoke step uses — same env knobs, same composite
# wrapping — but at full default scale (MB=16, REPS=3) so the committed
# numbers are stable. Run from the repo root after a Release build:
#
#   cmake -B build -S . -DCMAKE_BUILD_TYPE=Release && cmake --build build -j
#   tools/regen_baselines.sh
#
# Then eyeball `git diff BENCH_*.json` before committing: ratios should
# move only if you meant them to. CI gates are relative/floor-based, so a
# different machine is fine; a different STORY (cache stops winning,
# pipeline stops overlapping, MR stops being bit-identical) is not.
#
# Atomicity: every baseline is generated into BENCH_<name>.json.tmp and
# only renamed over the committed file after EVERY bench ran and EVERY
# self-gate passed. A bench that crashes or a gate that trips therefore
# leaves all committed baselines byte-identical — no half-regenerated set
# can be committed by accident. CI keeps this honest with a must-fail run
# against a sabotaged bench dir (see "Regen script must not launder" in
# ci.yml), which is why BENCH is overridable.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH=${GALLOPER_BENCH_DIR:-build/bench}
for bin in micro_plan micro_batch micro_io micro_encode load_gen \
           micro_cache macro_mr macro_cluster compare; do
  [[ -x "$BENCH/$bin" ]] || {
    echo "missing $BENCH/$bin — build Release first" >&2; exit 1; }
done

TMPS=()
cleanup() { if ((${#TMPS[@]})); then rm -f "${TMPS[@]}"; fi; }
trap cleanup EXIT

# regen <name> [env VAR=...] <bench> [args...]: run the bench with
# GALLOPER_BENCH_JSON pointed at BENCH_<name>.json.tmp. Nothing touches
# the committed BENCH_<name>.json until the final publish step.
regen() {
  local name=$1; shift
  local tmp="BENCH_$name.json.tmp"
  TMPS+=("$tmp")
  echo "== BENCH_$name.json"
  GALLOPER_BENCH_JSON="$tmp" "$@"
}

regen plan "$BENCH/micro_plan"
regen batch "$BENCH/micro_batch"
regen io "$BENCH/micro_io"

# micro_encode emits a raw sweep; the committed baseline nests it under
# "micro_encode_sweep" (see ci.yml's smoke step, which wraps the same way).
regen parallel_raw "$BENCH/micro_encode"
TMPS+=(BENCH_parallel.json.tmp)
printf '{"micro_encode_sweep":%s}\n' "$(cat BENCH_parallel_raw.json.tmp)" \
  > BENCH_parallel.json.tmp
rm -f BENCH_parallel_raw.json.tmp

# Recorded cache-off so the serial/pipelined cells stay distinct; the
# cache's own win is the micro_cache baseline.
GALLOPER_CLIENT_CACHE=off regen load "$BENCH/load_gen" --sweep-admit
regen cache "$BENCH/micro_cache"
regen mr "$BENCH/macro_mr"
regen cluster "$BENCH/macro_cluster"

echo
echo "Sanity: every regenerated baseline must pass its own CI gate"
"$BENCH/compare" --baseline BENCH_batch.json.tmp \
  --current BENCH_batch.json.tmp \
  "speedup:higher:0.6" "bit_identical:min=1"
"$BENCH/compare" --baseline BENCH_io.json.tmp --current BENCH_io.json.tmp \
  "bit_identical:min=1" "cells[1].speedup:min=1.3" \
  "cells[2].speedup:min=1.3" "cells[3].speedup:min=2"
"$BENCH/compare" --baseline BENCH_plan.json.tmp \
  --current BENCH_plan.json.tmp \
  "speedup:higher:0.6" "speedup:min=0.8" "bit_identical:min=1"
"$BENCH/compare" --baseline BENCH_parallel.json.tmp \
  --current BENCH_parallel.json.tmp "bit_identical:min=1" "speedup:min=0.5"
"$BENCH/compare" --baseline BENCH_load.json.tmp \
  --current BENCH_load.json.tmp \
  "bit_identical:min=1" "pipelined_speedup:min=0.4" \
  "cells[2].pipelined_speedup:min=0.9" "cells[3].pipelined_speedup:min=0.9"
"$BENCH/compare" --baseline BENCH_cache.json.tmp \
  --current BENCH_cache.json.tmp \
  "bit_identical:min=1" "speedup:min=3" "mirror_mismatches:max=0"
"$BENCH/compare" --baseline BENCH_mr.json.tmp --current BENCH_mr.json.tmp \
  "bit_identical:min=1" "clean_decode_execs:max=0" \
  "degraded_completed:min=1" "degraded_fallback_splits:min=1" \
  "map_speedup:min=0.35"
"$BENCH/compare" --baseline BENCH_cluster.json.tmp \
  --current BENCH_cluster.json.tmp \
  "bit_identical:min=1" "mirror_mismatches:max=0" "queue_drained:min=1" \
  "multi_loss_first:min=1" "repairs:min=1"

# Publish: every bench ran and every gate passed, so the renames below are
# the only writes to committed files the whole script performs.
for tmp in "${TMPS[@]}"; do
  [[ -f "$tmp" ]] && mv "$tmp" "${tmp%.tmp}"
done
TMPS=()

echo
echo "All baselines regenerated and self-consistent."
git --no-pager diff --stat -- 'BENCH_*.json' || true
