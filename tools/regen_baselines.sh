#!/usr/bin/env bash
# Regenerates every committed bench baseline (BENCH_*.json) with the exact
# incantations CI's smoke step uses — same env knobs, same composite
# wrapping — but at full default scale (MB=16, REPS=3) so the committed
# numbers are stable. Run from the repo root after a Release build:
#
#   cmake -B build -S . -DCMAKE_BUILD_TYPE=Release && cmake --build build -j
#   tools/regen_baselines.sh
#
# Then eyeball `git diff BENCH_*.json` before committing: ratios should
# move only if you meant them to. CI gates are relative/floor-based, so a
# different machine is fine; a different STORY (cache stops winning,
# pipeline stops overlapping, MR stops being bit-identical) is not.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH=build/bench
for bin in micro_plan micro_batch micro_io micro_encode load_gen \
           micro_cache macro_mr compare; do
  [[ -x "$BENCH/$bin" ]] || {
    echo "missing $BENCH/$bin — build Release first" >&2; exit 1; }
done

echo "== BENCH_plan.json"
GALLOPER_BENCH_JSON=BENCH_plan.json "$BENCH/micro_plan"
echo "== BENCH_batch.json"
GALLOPER_BENCH_JSON=BENCH_batch.json "$BENCH/micro_batch"
echo "== BENCH_io.json"
GALLOPER_BENCH_JSON=BENCH_io.json "$BENCH/micro_io"

echo "== BENCH_parallel.json"
# micro_encode emits a raw sweep; the committed baseline nests it under
# "micro_encode_sweep" (see ci.yml's smoke step, which wraps the same way).
GALLOPER_BENCH_JSON=BENCH_parallel_raw.json "$BENCH/micro_encode"
printf '{"micro_encode_sweep":%s}\n' "$(cat BENCH_parallel_raw.json)" \
  > BENCH_parallel.json
rm -f BENCH_parallel_raw.json

echo "== BENCH_load.json"
# Recorded cache-off so the serial/pipelined cells stay distinct; the
# cache's own win is the micro_cache baseline.
GALLOPER_CLIENT_CACHE=off GALLOPER_BENCH_JSON=BENCH_load.json \
  "$BENCH/load_gen" --sweep-admit
echo "== BENCH_cache.json"
GALLOPER_BENCH_JSON=BENCH_cache.json "$BENCH/micro_cache"
echo "== BENCH_mr.json"
GALLOPER_BENCH_JSON=BENCH_mr.json "$BENCH/macro_mr"

echo
echo "Sanity: every regenerated baseline must pass its own CI gate"
"$BENCH/compare" --baseline BENCH_batch.json --current BENCH_batch.json \
  "speedup:higher:0.6" "bit_identical:min=1"
"$BENCH/compare" --baseline BENCH_io.json --current BENCH_io.json \
  "bit_identical:min=1" "cells[1].speedup:min=1.3" \
  "cells[2].speedup:min=1.3" "cells[3].speedup:min=2"
"$BENCH/compare" --baseline BENCH_plan.json --current BENCH_plan.json \
  "speedup:higher:0.6" "speedup:min=0.8" "bit_identical:min=1"
"$BENCH/compare" --baseline BENCH_parallel.json \
  --current BENCH_parallel.json "bit_identical:min=1" "speedup:min=0.5"
"$BENCH/compare" --baseline BENCH_load.json --current BENCH_load.json \
  "bit_identical:min=1" "pipelined_speedup:min=0.4" \
  "cells[2].pipelined_speedup:min=0.9" "cells[3].pipelined_speedup:min=0.9"
"$BENCH/compare" --baseline BENCH_cache.json --current BENCH_cache.json \
  "bit_identical:min=1" "speedup:min=3" "mirror_mismatches:max=0"
"$BENCH/compare" --baseline BENCH_mr.json --current BENCH_mr.json \
  "bit_identical:min=1" "clean_decode_execs:max=0" \
  "degraded_completed:min=1" "degraded_fallback_splits:min=1" \
  "map_speedup:min=0.35"

echo
echo "All baselines regenerated and self-consistent."
git --no-pager diff --stat -- 'BENCH_*.json' || true
