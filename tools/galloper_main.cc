// The `galloper` command-line tool: encode/decode/repair/inspect coded
// archives on the local filesystem.
//
//   galloper encode --k=4 --l=2 --g=1 [--perf=1,0.4,...] <file> <dir>
//   galloper decode <dir> <output-file>
//   galloper repair <dir> --block=N
//   galloper inspect <dir>
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include <memory>

#include "cli/archive.h"
#include "client/load_gen.h"
#include "client/striped.h"
#include "cluster/coordinator.h"
#include "cluster/node.h"
#include "cluster/repair_queue.h"
#include "codes/pyramid.h"
#include "core/galloper.h"
#include "fault/fault.h"
#include "fault/soak.h"
#include "mr/grep.h"
#include "mr/store_runner.h"
#include "mr/terasort.h"
#include "mr/wordcount.h"
#include "rt/pool.h"
#include "sim/cluster.h"
#include "util/check.h"
#include "util/flags.h"
#include "util/rng.h"

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  galloper encode --k=K --l=L --g=G [--perf=p0,p1,...]\n"
      "                  [--resolution=R] [--chunk=BYTES]\n"
      "                  <input-file> <archive-dir>\n"
      "  galloper decode <archive-dir> <output-file>\n"
      "  galloper repair <archive-dir> --block=N\n"
      "  galloper inspect <archive-dir>\n"
      "  galloper verify <archive-dir>\n"
      "  galloper update <archive-dir> <bytes-file> --offset=N\n"
      "          (offset and size must be chunk-aligned; see inspect)\n"
      "  galloper soak [--seed=S] [--ops=N] [--seconds=T] [--files=F]\n"
      "                [--k=K --l=L --g=G]\n"
      "          (randomized fault-injection soak: kill/corrupt/read/\n"
      "          update/repair against an in-memory store, asserting every\n"
      "          read is bit-identical; deterministic per seed)\n"
      "  galloper loadgen [--clients=N] [--ops=N] [--files=F] [--seed=S]\n"
      "                   [--k=K --l=L --g=G] [--chunk=BYTES] [--batch=C]\n"
      "                   [--zipf=THETA] [--updates=FRAC] [--degraded]\n"
      "                   [--corruptions=N] [--serial] [--cache=MiB]\n"
      "                   [--admit=N]\n"
      "          (closed-loop multi-client load over the pipelined striped\n"
      "          client against an in-memory store: every read verified\n"
      "          against a mirror; reports throughput and p50/p99/p99.9;\n"
      "          --serial uses direct per-batch reads for comparison,\n"
      "          --degraded adds injected stalls, --corruptions flips\n"
      "          bytes mid-run to exercise fallback + auto-repair;\n"
      "          --cache pins a private block cache in MiB (0 = off),\n"
      "          --admit pins a private admission-gate limit)\n"
      "  galloper cluster [--rolls=N] [--files=F] [--readers=R] [--seed=S]\n"
      "                   [--k=K --l=L --g=G] [--chunk=BYTES] [--workers=W]\n"
      "                   [--throttle=MBps]\n"
      "          (multi-node rolling-restart soak: a coordinator places\n"
      "          blocks one-per-node, then kills and restarts every hosting\n"
      "          node N times in sequence — waiting for the prioritized\n"
      "          background repair queue to drain between steps — while R\n"
      "          reader threads stream ranges through the pipelined client\n"
      "          and verify every byte against a mirror; --throttle caps\n"
      "          each node's repair bandwidth, --workers sizes the repair\n"
      "          worker pool; exits non-zero on any wrong byte or a queue\n"
      "          that fails to drain)\n"
      "  galloper mr --job=wordcount|terasort|grep [--mb=MB]\n"
      "              [--k=K --l=L --g=G] [--split=BYTES] [--threads=N]\n"
      "              [--reducers=R] [--seed=S] [--pyramid] [--degraded]\n"
      "              [--needle=STR]\n"
      "          (store-backed parallel MapReduce: generates ~MB of input,\n"
      "          encodes it into an in-memory store, runs the job with map\n"
      "          tasks reading original-data splits from all k+l+g blocks\n"
      "          — only the k data blocks with --pyramid — and checks the\n"
      "          output bit-identical to a plain single-split run; --split\n"
      "          caps the map split size (rounded down to whole chunks),\n"
      "          --degraded fails server 0 first so its splits fall back\n"
      "          to degraded decode)\n"
      "\n"
      "  encode/decode/repair stream segment by segment through bounded\n"
      "  read/codec/write queues, so memory stays O(segment) for any file\n"
      "  size. --chunk sets the per-stripe segment chunk on encode\n"
      "  (default 256 KiB; files fitting one segment use the v1 layout).\n"
      "  encode/decode/repair/update accept --threads=N (default: CPU\n"
      "  count, or GALLOPER_THREADS); results are identical for any N.\n"
      "  any command accepts --stats to print plan-cache, batched-executor,\n"
      "  buffer-pool, and plan-vs-execute timing counters on exit (cache\n"
      "  sized/disabled via GALLOPER_PLAN_CACHE=off|<entries>, default\n"
      "  1024; pool disabled via GALLOPER_BUFFER_POOL=off).\n"
      "  unknown --flags are an error (exit 2). archive commands sweep\n"
      "  orphaned *.tmp staging files (crash debris) from the archive dir\n"
      "  before running.\n"
      "\n"
      "exit codes: 0 ok, 1 failure, 2 usage, 3 CRC mismatch (corrupt\n"
      "data), 4 persistent transient read faults\n");
  return 2;
}

// The full flag vocabulary across every subcommand: a typo like --thread=8
// or --Seed=1 dies with exit 2 instead of silently running with defaults.
const std::set<std::string> kKnownFlags = {
    "k",     "l",       "g",    "perf",    "resolution", "chunk",
    "block", "offset",  "threads", "stats", "seed",      "ops",
    "seconds", "files", "clients", "zipf",  "updates",   "degraded",
    "serial", "batch",  "corruptions", "cache", "admit",
    "job",   "mb",      "split", "reducers", "pyramid",  "needle",
    "rolls", "readers", "throttle", "workers",
};

// Removes crash debris (orphaned .tmp staging files) before operating on an
// archive directory. Quiet when there is nothing to do.
void sweep_archive_dir(const std::string& dir) {
  const auto removed = galloper::cli::recover_archive_dir(dir);
  if (!removed.empty())
    std::fprintf(stderr,
                 "recovered %s: removed %zu orphaned .tmp staging file(s)\n",
                 dir.c_str(), removed.size());
}

// --threads=N; defaults to the pool's size (GALLOPER_THREADS env or the
// hardware thread count).
size_t threads_flag(const galloper::Flags& flags) {
  const int64_t n = flags.get_int(
      "threads",
      static_cast<int64_t>(galloper::rt::ThreadPool::default_threads()));
  GALLOPER_CHECK_MSG(n >= 1, "--threads must be >= 1");
  return static_cast<size_t>(n);
}

int run(const galloper::Flags& flags);

}  // namespace

int main(int argc, char** argv) {
  using galloper::Flags;
  namespace cli = galloper::cli;
  try {
    Flags flags(argc, argv,
                /*boolean_flags=*/{"stats", "degraded", "serial", "pyramid"});
    try {
      flags.restrict_to(kKnownFlags);
    } catch (const galloper::CheckError& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return usage();
    }
    const int rc = run(flags);
    // --stats: plan-cache hit rate + per-path plan/execute timing, after
    // the command's own output so scripts can keep parsing stdout.
    if (flags.has("stats"))
      std::fputs(cli::format_plan_stats().c_str(), stdout);
    return rc;
  } catch (const cli::CrcMismatchError& e) {
    // Distinct exit code: the input data itself is rotten (a repair's
    // helpers fail the manifest CRC) — retrying cannot help, re-verify.
    std::fprintf(stderr, "error: %s\n", e.what());
    return 3;
  } catch (const galloper::fault::TransientError& e) {
    // Reads kept failing past the retry budget — worth retrying later.
    std::fprintf(stderr, "error: %s\n", e.what());
    return 4;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

namespace {

int run(const galloper::Flags& flags) {
  namespace cli = galloper::cli;
  {
    const auto& pos = flags.positional();
    if (pos.empty()) return usage();
    const std::string& command = pos[0];

    if (command == "encode") {
      if (pos.size() != 3) return usage();
      const int64_t chunk = flags.get_int("chunk", 0);
      GALLOPER_CHECK_MSG(chunk >= 0, "--chunk must be >= 0");
      const auto m = cli::encode_archive(
          pos[1], pos[2], static_cast<size_t>(flags.get_int("k", 4)),
          static_cast<size_t>(flags.get_int("l", 2)),
          static_cast<size_t>(flags.get_int("g", 1)), flags.get_doubles("perf"),
          flags.get_int("resolution", 12), threads_flag(flags),
          static_cast<size_t>(chunk));
      std::printf("encoded %zu bytes into %zu blocks of %zu bytes in %s\n",
                  m.original_bytes, m.k + m.l + m.g, m.block_bytes,
                  pos[2].c_str());
      return 0;
    }
    if (command == "soak") {
      if (pos.size() != 1) return usage();
      // Flag fallbacks defer to the SoakOptions defaults (notably g = 2:
      // the harness wants slack beyond the erasures it schedules).
      galloper::fault::SoakOptions opt;
      opt.seed = static_cast<uint64_t>(flags.get_int("seed", 1));
      opt.ops = static_cast<size_t>(
          flags.get_int("ops", static_cast<int64_t>(opt.ops)));
      opt.files = static_cast<size_t>(
          flags.get_int("files", static_cast<int64_t>(opt.files)));
      opt.k = static_cast<size_t>(
          flags.get_int("k", static_cast<int64_t>(opt.k)));
      opt.l = static_cast<size_t>(
          flags.get_int("l", static_cast<int64_t>(opt.l)));
      opt.g = static_cast<size_t>(
          flags.get_int("g", static_cast<int64_t>(opt.g)));
      opt.verbose = true;
      const double seconds = flags.get_double("seconds", 0);
      // --seconds: repeat --ops-sized rounds on derived seeds until the
      // wall-clock budget is spent. Each round stays deterministic (its
      // seed is printed); only the number of rounds depends on timing.
      const auto start = std::chrono::steady_clock::now();
      size_t round = 0;
      do {
        opt.seed = static_cast<uint64_t>(flags.get_int("seed", 1)) + round++;
        galloper::fault::run_soak(opt);
      } while (std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             start)
                   .count() < seconds);
      std::printf("soak passed: %zu round(s), every read bit-identical\n",
                  round);
      return 0;
    }
    if (command == "loadgen") {
      if (pos.size() != 1) return usage();
      galloper::client::LoadGenOptions opt;
      opt.seed = static_cast<uint64_t>(flags.get_int("seed", 1));
      opt.clients = static_cast<size_t>(
          flags.get_int("clients", static_cast<int64_t>(opt.clients)));
      opt.ops_per_client = static_cast<size_t>(
          flags.get_int("ops", static_cast<int64_t>(opt.ops_per_client)));
      opt.files = static_cast<size_t>(
          flags.get_int("files", static_cast<int64_t>(opt.files)));
      opt.k = static_cast<size_t>(flags.get_int("k", static_cast<int64_t>(opt.k)));
      opt.l = static_cast<size_t>(flags.get_int("l", static_cast<int64_t>(opt.l)));
      opt.g = static_cast<size_t>(flags.get_int("g", static_cast<int64_t>(opt.g)));
      opt.chunk_bytes = static_cast<size_t>(
          flags.get_int("chunk", static_cast<int64_t>(opt.chunk_bytes)));
      opt.batch_chunks = static_cast<size_t>(
          flags.get_int("batch", static_cast<int64_t>(opt.batch_chunks)));
      opt.zipf_theta = flags.get_double("zipf", 0);
      opt.update_fraction = flags.get_double("updates", 0);
      opt.degraded = flags.has("degraded");
      opt.corruptions =
          static_cast<size_t>(flags.get_int("corruptions", 0));
      opt.pipelined = !flags.has("serial");
      // --cache=MiB pins a private block cache (0 = off); default -1
      // shares the process-wide GALLOPER_CLIENT_CACHE one. --admit=N pins
      // a private admission gate.
      opt.cache_mib = static_cast<int>(flags.get_int("cache", -1));
      opt.admit_limit = static_cast<size_t>(flags.get_int("admit", 0));
      const auto result = galloper::client::run_load(opt);
      std::printf("%s\n", galloper::client::format_result(result).c_str());
      return result.bit_identical ? 0 : 3;
    }
    if (command == "cluster") {
      if (pos.size() != 1) return usage();
      namespace cluster = galloper::cluster;
      const size_t k = static_cast<size_t>(flags.get_int("k", 4));
      const size_t l = static_cast<size_t>(flags.get_int("l", 2));
      const size_t g = static_cast<size_t>(flags.get_int("g", 1));
      const size_t rolls = static_cast<size_t>(flags.get_int("rolls", 1));
      const size_t num_files =
          static_cast<size_t>(flags.get_int("files", 3));
      const size_t num_readers =
          static_cast<size_t>(flags.get_int("readers", 3));
      const size_t chunk_bytes =
          static_cast<size_t>(flags.get_int("chunk", 4096));
      const double throttle_mbps = flags.get_double("throttle", 0);
      GALLOPER_CHECK_MSG(rolls >= 1 && num_files >= 1 && chunk_bytes >= 1,
                         "--rolls/--files/--chunk must be >= 1");

      galloper::core::GalloperCode code(k, l, g);
      galloper::sim::Simulation sim;
      galloper::sim::Cluster sim_cluster(sim, code.num_blocks() + 2,
                                         galloper::sim::ServerSpec{});
      galloper::store::FileStore fs(sim_cluster, code);
      cluster::CoordinatorOptions copt;
      copt.repair_workers =
          static_cast<size_t>(flags.get_int("workers", 2));
      copt.repair_bytes_per_s = throttle_mbps * 1e6;
      cluster::Coordinator coord(fs, copt);

      galloper::Rng rng(static_cast<uint64_t>(flags.get_int("seed", 1)));
      std::vector<galloper::Buffer> files;
      std::vector<galloper::store::FileId> ids;
      for (size_t i = 0; i < num_files; ++i) {
        files.push_back(galloper::random_buffer(
            code.engine().num_chunks() * chunk_bytes, rng));
        ids.push_back(fs.write(galloper::ConstByteSpan(files.back())));
      }

      std::atomic<bool> stop{false};
      std::atomic<uint64_t> reads{0}, mismatches{0}, unavailable{0};
      std::vector<std::thread> readers;
      for (size_t t = 0; t < num_readers; ++t) {
        readers.emplace_back([&, t] {
          galloper::client::StripedReader reader(fs);
          galloper::Rng trng(0x600d + t);
          while (!stop.load(std::memory_order_relaxed)) {
            const size_t i = trng.next_below(num_files);
            const size_t len = files[i].size();
            const size_t off = trng.next_below(len / 2);
            const size_t n = 1 + trng.next_below(len - off);
            const auto out = reader.read_range(ids[i], off, n);
            reads.fetch_add(1, std::memory_order_relaxed);
            if (!out.has_value()) {
              unavailable.fetch_add(1, std::memory_order_relaxed);
              continue;
            }
            if (!std::equal(out->begin(), out->end(),
                            files[i].begin() + off))
              mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        });
      }

      bool drained = true;
      const auto placement = fs.placement();
      for (size_t round = 0; round < rolls; ++round) {
        for (size_t srv : placement) {
          coord.fail_node(srv);
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
          coord.restart_node(srv);
          drained = coord.repair_queue().drain(300.0) && drained;
        }
      }
      stop.store(true);
      for (auto& t : readers) t.join();

      bool final_ok = true;
      for (size_t i = 0; i < num_files; ++i) {
        const auto back = fs.read(ids[i]);
        if (!back.has_value() || *back != files[i]) final_ok = false;
      }
      const auto qstats = coord.repair_queue().stats();
      std::printf(
          "rolled %zu node(s) x %zu round(s) over %zu file(s) "
          "(%zu+%zu+%zu, chunk %zu):\n"
          "  %llu concurrent reads (%llu transient-unavailable), "
          "%llu mismatches\n"
          "  repair queue: %zu completed, %zu requeued, %zu dropped-stale, "
          "%zu dropped-dead, drained %s\n"
          "  final reads %s\n",
          placement.size(), rolls, num_files, k, l, g, chunk_bytes,
          static_cast<unsigned long long>(reads.load()),
          static_cast<unsigned long long>(unavailable.load()),
          static_cast<unsigned long long>(mismatches.load()),
          qstats.completed, qstats.requeued, qstats.dropped_stale,
          qstats.dropped_dead, drained ? "yes" : "NO",
          final_ok ? "bit-identical" : "MISMATCH");
      if (mismatches.load() != 0 || !final_ok) return 3;
      return drained ? 0 : 1;
    }
    if (command == "mr") {
      if (pos.size() != 1) return usage();
      namespace mr = galloper::mr;
      const std::string job = flags.get_or("job", "wordcount");
      const size_t k = static_cast<size_t>(flags.get_int("k", 4));
      const size_t l = static_cast<size_t>(flags.get_int("l", 2));
      const size_t g = static_cast<size_t>(flags.get_int("g", 1));
      const double mb = flags.get_double("mb", 8);
      GALLOPER_CHECK_MSG(mb > 0, "--mb must be positive");

      std::unique_ptr<galloper::codes::ErasureCode> code;
      if (flags.has("pyramid"))
        code = std::make_unique<galloper::codes::PyramidCode>(k, l, g);
      else
        code = std::make_unique<galloper::core::GalloperCode>(k, l, g);

      // Chunk = a whole number of 200-byte record groups (200 divides into
      // both the 50-byte wordcount and 100-byte terasort records), so no
      // split boundary ever tears a record.
      const size_t chunks = code->engine().num_chunks();
      constexpr size_t kRecordLcm = 200;
      const size_t per_chunk = std::max<size_t>(
          1, static_cast<size_t>(mb * 1e6) / chunks / kRecordLcm);
      const size_t chunk_bytes = per_chunk * kRecordLcm;
      const size_t file_bytes = chunks * chunk_bytes;

      galloper::Rng rng(static_cast<uint64_t>(flags.get_int("seed", 1)));
      const std::string needle = flags.get_or("needle", "zqzq");
      galloper::Buffer file;
      std::unique_ptr<mr::Mapper> mapper;
      std::unique_ptr<mr::Reducer> reducer;
      if (job == "wordcount") {
        file = mr::generate_text(file_bytes, rng);
        mapper = std::make_unique<mr::WordCountMapper>();
        reducer = std::make_unique<mr::WordCountReducer>();
      } else if (job == "terasort") {
        file = mr::generate_records(file_bytes, rng);
        mapper = std::make_unique<mr::TeraSortMapper>();
        reducer = std::make_unique<mr::TeraSortReducer>();
      } else if (job == "grep") {
        file = mr::generate_grep_corpus(file_bytes, chunk_bytes, needle, rng);
        mapper = std::make_unique<mr::GrepMapper>(needle);
        reducer = std::make_unique<mr::GrepReducer>();
      } else {
        return usage();
      }

      galloper::sim::Simulation sim;
      galloper::sim::Cluster cluster(sim, code->num_blocks() + 2,
                                     galloper::sim::ServerSpec{});
      galloper::store::FileStore fs(cluster, *code);
      const galloper::store::FileId id = fs.write(file);
      if (flags.has("degraded")) fs.fail_server(0);

      mr::StoreRunnerOptions opt;
      opt.threads = threads_flag(flags);
      opt.reduce_tasks = static_cast<size_t>(flags.get_int("reducers", 0));
      // Split cap rounded down to whole chunks, so every map boundary
      // stays chunk- (hence record-) aligned. Default: ~4 tasks per block
      // — several tasks per map slot without tiny splits.
      const int64_t split = flags.get_int(
          "split",
          static_cast<int64_t>(std::max<size_t>(
              chunk_bytes, file_bytes / (4 * code->num_blocks()))));
      GALLOPER_CHECK_MSG(split >= 1, "--split must be >= 1");
      opt.max_split_bytes =
          std::max(chunk_bytes,
                   static_cast<size_t>(split) / chunk_bytes * chunk_bytes);
      mr::StoreRunner runner(*mapper, *reducer, opt);
      const mr::StoreJobReport report = runner.run_report(fs, id);

      const mr::LocalRunner oracle(*mapper, *reducer);
      const bool identical = report.output == oracle.run_plain(file);
      std::printf(
          "%s over %zu bytes (%s %zu+%zu+%zu, %zu map slots): %zu splits "
          "(%zu degraded), %.1f MB original / %.1f MB decoded\n"
          "  map %.1f ms, shuffle %.1f ms, reduce %.1f ms, %zu output "
          "records, %s\n",
          job.c_str(), file_bytes, flags.has("pyramid") ? "pyramid" : "galloper",
          k, l, g, opt.threads, report.splits, report.degraded_splits,
          static_cast<double>(report.bytes_original) * 1e-6,
          static_cast<double>(report.bytes_decoded) * 1e-6,
          static_cast<double>(report.map_ns) * 1e-6,
          static_cast<double>(report.shuffle_ns) * 1e-6,
          static_cast<double>(report.reduce_ns) * 1e-6, report.output.size(),
          identical ? "bit-identical to plain run" : "OUTPUT MISMATCH");
      return identical ? 0 : 3;
    }
    if (command == "decode") {
      if (pos.size() != 3) return usage();
      sweep_archive_dir(pos[1]);
      // Streaming: decoded segments flow straight to the output file, so
      // the decode never holds the whole file in memory.
      if (!cli::decode_archive_to(pos[1], pos[2], threads_flag(flags))) {
        std::fprintf(stderr, "decode failed: not enough blocks present\n");
        return 1;
      }
      std::printf("decoded %zu bytes to %s\n",
                  cli::read_manifest(pos[1]).original_bytes, pos[2].c_str());
      return 0;
    }
    if (command == "repair") {
      if (pos.size() != 2 || !flags.has("block")) return usage();
      sweep_archive_dir(pos[1]);
      const auto helpers = cli::repair_archive(
          pos[1], static_cast<size_t>(flags.get_int("block", 0)),
          threads_flag(flags));
      if (!helpers) {
        std::fprintf(stderr, "repair failed: insufficient blocks present\n");
        return 1;
      }
      std::printf("repaired block %lld reading blocks:",
                  static_cast<long long>(flags.get_int("block", 0)));
      for (size_t h : *helpers) std::printf(" %zu", h);
      std::printf("\n");
      return 0;
    }
    if (command == "inspect") {
      if (pos.size() != 2) return usage();
      std::fputs(cli::describe_archive(pos[1]).c_str(), stdout);
      return 0;
    }
    if (command == "update") {
      if (pos.size() != 3 || !flags.has("offset")) return usage();
      sweep_archive_dir(pos[1]);
      std::ifstream in(pos[2], std::ios::binary);
      if (!in.good()) {
        std::fprintf(stderr, "cannot open %s\n", pos[2].c_str());
        return 1;
      }
      std::ostringstream ss;
      ss << in.rdbuf();
      const std::string bytes = ss.str();
      const auto touched = cli::update_archive(
          pos[1], static_cast<size_t>(flags.get_int("offset", 0)),
          galloper::ConstByteSpan(
              reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size()),
          threads_flag(flags));
      std::printf("updated %zu bytes; rewrote blocks:", bytes.size());
      for (size_t b : touched) std::printf(" %zu", b);
      std::printf("\n");
      return 0;
    }
    if (command == "verify") {
      if (pos.size() != 2) return usage();
      sweep_archive_dir(pos[1]);
      const auto report = cli::verify_archive(pos[1]);
      if (report.clean()) {
        std::printf("all blocks present and CRC-clean\n");
        return 0;
      }
      for (size_t b : report.missing) std::printf("block %zu: MISSING\n", b);
      for (size_t b : report.corrupt) std::printf("block %zu: CORRUPT\n", b);
      std::printf("file %s recoverable from the clean blocks\n",
                  report.decodable ? "IS" : "is NOT");
      return report.decodable ? 1 : 2;
    }
    return usage();
  }
}

}  // namespace
