#include <gtest/gtest.h>

#include <numeric>

#include "core/weights.h"
#include "util/check.h"
#include "util/rng.h"

namespace galloper::core {
namespace {

using galloper::CheckError;
using galloper::Rational;
using galloper::Rng;

TEST(UniformWeights, SumToKAndEqual) {
  const auto ws = uniform_weights(4, 2, 1);
  ASSERT_EQ(ws.size(), 7u);
  for (const auto& w : ws) EXPECT_EQ(w, Rational(4, 7));
  EXPECT_EQ(sum(ws), Rational(4));
  EXPECT_TRUE(weights_valid(4, 2, 1, ws));
}

TEST(WeightsValid, DetectsViolations) {
  // Sum mismatch.
  EXPECT_FALSE(weights_valid(4, 0, 1, std::vector<Rational>(5, Rational(1))));
  // Over-one weight.
  EXPECT_FALSE(weights_valid(
      2, 0, 1, {Rational(3, 2), Rational(1, 4), Rational(1, 4)}));
  // Valid l = 0 case.
  EXPECT_TRUE(weights_valid(
      2, 0, 1, {Rational(1), Rational(1, 2), Rational(1, 2)}));
}

TEST(AssignWeights, HomogeneousGivesUniform) {
  const auto sol = assign_weights(4, 2, 1, std::vector<double>(7, 2.0));
  EXPECT_NEAR(sol.lp_objective, 0.0, 1e-7) << "no capping needed";
  for (const auto& w : sol.weights) EXPECT_EQ(w, Rational(4, 7));
}

TEST(AssignWeights, OneVeryFastServerIsCapped) {
  // l = 0: one server 100× faster must be capped so w ≤ 1.
  std::vector<double> perf{100, 1, 1, 1, 1};
  const auto sol = assign_weights(4, 0, 1, perf);
  EXPECT_TRUE(weights_valid(4, 0, 1, sol.weights));
  EXPECT_EQ(sol.weights[0], Rational(1)) << "fast server saturates at w=1";
  EXPECT_GT(sol.lp_objective, 90.0) << "most of its surplus is discarded";
}

TEST(AssignWeights, MatchesWaterfillForLZero) {
  Rng rng(11);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<double> perf(6);
    for (auto& p : perf) p = 0.5 + rng.next_double() * 9.5;
    const auto lp = assign_weights(4, 0, 2, perf, /*resolution=*/1000);
    const auto wf = waterfill_effective(perf, 4);
    const double lp_total =
        std::accumulate(lp.effective.begin(), lp.effective.end(), 0.0);
    const double wf_total = std::accumulate(wf.begin(), wf.end(), 0.0);
    EXPECT_NEAR(lp_total, wf_total, 1e-5 * wf_total) << "trial " << trial;
  }
}

TEST(Waterfill, HomogeneousNoCapping) {
  const auto q = waterfill_effective({2, 2, 2, 2, 2}, 4);
  for (double v : q) EXPECT_DOUBLE_EQ(v, 2.0);
}

TEST(Waterfill, CapsOnlyTheOutlier) {
  const auto q = waterfill_effective({10, 1, 1, 1, 1}, 4);
  // Constraint k·q_i ≤ Σq: 4·q0 ≤ q0 + 4 → q0 = 4/3.
  EXPECT_NEAR(q[0], 4.0 / 3.0, 1e-9);
  for (size_t i = 1; i < 5; ++i) EXPECT_DOUBLE_EQ(q[i], 1.0);
}

TEST(Waterfill, KEqualsNForcesEqualValues) {
  // g = 0: all effective values must equal the minimum.
  const auto q = waterfill_effective({5, 3, 7, 3}, 4);
  for (double v : q) EXPECT_DOUBLE_EQ(v, 3.0);
}

TEST(AssignWeights, GroupConstraintLimitsHotGroup) {
  // l = 2, k = 4: group 0 = blocks {0,1,4}. Make that whole group fast;
  // the w_g ≤ 1 constraint must cap it.
  std::vector<double> perf{10, 10, 1, 1, 10, 1, 1};
  const auto sol = assign_weights(4, 2, 1, perf);
  EXPECT_TRUE(weights_valid(4, 2, 1, sol.weights));
  // Group 0 weight sum ≤ k/l = 2 exactly.
  const Rational group0 =
      sol.weights[0] + sol.weights[1] + sol.weights[4];
  EXPECT_LE(group0.to_double(), 2.0 + 1e-9);
  EXPECT_GT(sol.lp_objective, 0.0);
}

TEST(AssignWeights, MemberConstraintWithinGroup) {
  // One member much faster than its group peers: capped at w_g.
  std::vector<double> perf{10, 1, 1, 1, 1, 1, 1};
  const auto sol = assign_weights(4, 2, 1, perf);
  EXPECT_TRUE(weights_valid(4, 2, 1, sol.weights));
  const Rational group0 =
      sol.weights[0] + sol.weights[1] + sol.weights[4];
  const Rational wg = group0 * Rational(2, 4);
  EXPECT_LE(sol.weights[0].to_double(), wg.to_double() + 1e-9);
}

TEST(AssignWeights, PaperHeterogeneousScenario) {
  // Fig. 10 scenario: some servers limited to 40% CPU. Weights should give
  // the slow servers ~40% of the fast servers' data.
  std::vector<double> perf{1.0, 0.4, 1.0, 0.4, 1.0, 0.4, 1.0};
  const auto sol = assign_weights(4, 2, 1, perf, /*resolution=*/10);
  EXPECT_TRUE(weights_valid(4, 2, 1, sol.weights));
  // Slow/fast ratio preserved where no capping occurred.
  const double r01 = sol.weights[1].to_double() / sol.weights[0].to_double();
  EXPECT_NEAR(r01, 0.4, 0.08);
}

TEST(AssignWeights, ResolutionBoundsDenominator) {
  Rng rng(5);
  std::vector<double> perf(7);
  for (auto& p : perf) p = 0.3 + rng.next_double() * 3;
  const auto sol = assign_weights(4, 2, 1, perf, /*resolution=*/8);
  // Units are ≤ resolution each, so the denominator (Σ units) stays small.
  const int64_t total =
      std::accumulate(sol.units.begin(), sol.units.end(), int64_t{0});
  EXPECT_LE(total, 8 * 7);
  for (const auto& w : sol.weights) EXPECT_LE(w.den(), total);
}

TEST(AssignWeights, RandomizedAlwaysValid) {
  Rng rng(99);
  for (int trial = 0; trial < 100; ++trial) {
    const size_t k = 4, l = 2, g = 1;
    std::vector<double> perf(k + l + g);
    for (auto& p : perf) p = 0.1 + rng.next_double() * 20.0;
    const auto sol = assign_weights(k, l, g, perf, 6);
    EXPECT_TRUE(weights_valid(k, l, g, sol.weights)) << "trial " << trial;
  }
}

TEST(AssignWeights, RandomizedValidForVariousShapes) {
  Rng rng(100);
  struct Shape {
    size_t k, l, g;
  };
  for (const auto& s : {Shape{6, 2, 1}, Shape{6, 3, 2}, Shape{8, 4, 1},
                        Shape{4, 0, 2}, Shape{12, 2, 2}}) {
    for (int trial = 0; trial < 20; ++trial) {
      std::vector<double> perf(s.k + s.l + s.g);
      for (auto& p : perf) p = 0.1 + rng.next_double() * 8.0;
      const auto sol = assign_weights(s.k, s.l, s.g, perf, 6);
      EXPECT_TRUE(weights_valid(s.k, s.l, s.g, sol.weights))
          << s.k << "," << s.l << "," << s.g << " trial " << trial;
    }
  }
}

TEST(AssignWeights, RejectsBadInput) {
  EXPECT_THROW(assign_weights(4, 2, 1, {1, 2, 3}), CheckError);  // wrong size
  EXPECT_THROW(assign_weights(4, 2, 1, std::vector<double>(7, -1.0)),
               CheckError);
  EXPECT_THROW(assign_weights(4, 3, 1, std::vector<double>(8, 1.0)),
               CheckError);  // l does not divide k
}

TEST(AssignWeights, FasterServersNeverGetLessData) {
  // Monotonicity within the same group role: sort-preserving.
  std::vector<double> perf{3.0, 1.0, 2.0, 4.0, 1.5, 2.5, 1.0};
  const auto sol = assign_weights(4, 2, 1, perf, 20);
  // Compare blocks within the same group (0 vs 1, 2 vs 3).
  EXPECT_GE(sol.weights[0].to_double(), sol.weights[1].to_double());
  EXPECT_GE(sol.weights[3].to_double(), sol.weights[2].to_double());
}

}  // namespace
}  // namespace galloper::core
