#include <gtest/gtest.h>

#include <numeric>

#include "codes/wide_rs.h"
#include "util/check.h"
#include "util/rng.h"

namespace galloper::codes {
namespace {

using galloper::Buffer;
using galloper::CheckError;
using galloper::ConstByteSpan;
using galloper::Rng;
using galloper::random_buffer;

std::map<size_t, ConstByteSpan> view(const std::vector<Buffer>& blocks,
                                     const std::vector<size_t>& ids) {
  std::map<size_t, ConstByteSpan> m;
  for (size_t id : ids) m.emplace(id, blocks[id]);
  return m;
}

TEST(WideRs, SystematicAndRoundTrip) {
  WideReedSolomonCode code(6, 3);
  Rng rng(1);
  const Buffer file = random_buffer(6 * 2 * 32, rng);
  const auto blocks = code.encode(file);
  ASSERT_EQ(blocks.size(), 9u);
  for (size_t i = 0; i < 6; ++i)
    EXPECT_EQ(Buffer(file.begin() + i * 64, file.begin() + (i + 1) * 64),
              blocks[i]);
  // Decode from random 6-subsets.
  for (int trial = 0; trial < 20; ++trial) {
    const auto ids = rng.sample_indices(9, 6);
    const auto decoded = code.decode(view(blocks, ids));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, file);
  }
}

TEST(WideRs, ExhaustiveKSubsetsSmall) {
  WideReedSolomonCode code(3, 3);
  Rng rng(2);
  const Buffer file = random_buffer(3 * 2 * 8, rng);
  const auto blocks = code.encode(file);
  // All C(6,3) = 20 subsets decode.
  for (size_t a = 0; a < 6; ++a)
    for (size_t b = a + 1; b < 6; ++b)
      for (size_t c = b + 1; c < 6; ++c) {
        const auto decoded = code.decode(view(blocks, {a, b, c}));
        ASSERT_TRUE(decoded.has_value()) << a << b << c;
        EXPECT_EQ(*decoded, file);
      }
}

TEST(WideRs, TooFewBlocksFail) {
  WideReedSolomonCode code(4, 2);
  Rng rng(3);
  const auto blocks = code.encode(random_buffer(4 * 2 * 4, rng));
  EXPECT_FALSE(code.decode(view(blocks, {0, 1, 2})).has_value());
}

TEST(WideRs, RepairEveryBlock) {
  WideReedSolomonCode code(4, 2);
  Rng rng(4);
  const Buffer file = random_buffer(4 * 2 * 16, rng);
  const auto blocks = code.encode(file);
  for (size_t failed = 0; failed < 6; ++failed) {
    std::vector<size_t> helpers;
    for (size_t b = 0; b < 6 && helpers.size() < 4; ++b)
      if (b != failed) helpers.push_back(b);
    const auto rebuilt = code.repair_block(failed, view(blocks, helpers));
    ASSERT_TRUE(rebuilt.has_value()) << failed;
    EXPECT_EQ(*rebuilt, blocks[failed]);
  }
}

TEST(WideRs, BeyondGf256BlockCount) {
  // The whole point: more than 256 blocks. k = 300 data blocks.
  const size_t k = 300, r = 4;
  WideReedSolomonCode code(k, r);
  Rng rng(5);
  const Buffer file = random_buffer(k * 2 * 2, rng);  // 2 symbols per block
  const auto blocks = code.encode(file);
  ASSERT_EQ(blocks.size(), k + r);

  // Lose r arbitrary blocks, decode from the rest.
  std::map<size_t, ConstByteSpan> survivors;
  const std::vector<size_t> dead{7, 123, 299, 301};
  for (size_t b = 0; b < k + r; ++b)
    if (std::find(dead.begin(), dead.end(), b) == dead.end())
      survivors.emplace(b, blocks[b]);
  const auto decoded = code.decode(survivors);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, file);
}

TEST(WideRs, CoefficientStructure) {
  WideReedSolomonCode code(5, 2);
  for (size_t i = 0; i < 5; ++i)
    for (size_t j = 0; j < 5; ++j)
      EXPECT_EQ(code.coefficient(i, j), i == j ? 1 : 0);
  for (size_t i = 5; i < 7; ++i)
    for (size_t j = 0; j < 5; ++j)
      EXPECT_NE(code.coefficient(i, j), 0) << "Cauchy rows are dense";
}

TEST(WideRs, RejectsInvalidInput) {
  EXPECT_THROW(WideReedSolomonCode(0, 1), CheckError);
  EXPECT_THROW(WideReedSolomonCode(65530, 10), CheckError);
  WideReedSolomonCode code(4, 2);
  EXPECT_THROW(code.encode(Buffer(7)), CheckError);  // odd / not 2k multiple
  EXPECT_THROW(code.encode(Buffer{}), CheckError);
}

TEST(WideRs, DecodeWithExtraBlocksUsesIndependentSubset) {
  WideReedSolomonCode code(2, 3);
  Rng rng(6);
  const Buffer file = random_buffer(2 * 2 * 8, rng);
  const auto blocks = code.encode(file);
  const auto decoded =
      code.decode(view(blocks, {0, 1, 2, 3, 4}));  // all 5 blocks
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, file);
}

}  // namespace
}  // namespace galloper::codes
