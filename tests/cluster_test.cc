#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include "client/striped.h"
#include "cluster/coordinator.h"
#include "cluster/node.h"
#include "cluster/repair_queue.h"
#include "core/galloper.h"
#include "fault/fault.h"
#include "store/file_store.h"
#include "util/rng.h"

namespace galloper::cluster {
namespace {

using galloper::Buffer;
using galloper::Rng;
using galloper::random_buffer;

// Every data path must run unchanged against the multi-node layout: the
// coordinator installs a placement and the store, the range reads, and the
// pipelined client all keep returning the exact original bytes.
TEST(CoordinatorTest, PlacementInstalledAndDataPathsUnchanged) {
  core::GalloperCode code(4, 2, 1);
  sim::Simulation sim;
  sim::Cluster cluster(sim, code.num_blocks() + 2, sim::ServerSpec{});
  store::FileStore fs(cluster, code);
  Coordinator coord(fs);

  const auto placement = fs.placement();
  ASSERT_EQ(placement.size(), code.num_blocks());
  std::set<size_t> servers(placement.begin(), placement.end());
  EXPECT_EQ(servers.size(), placement.size()) << "placement must be distinct";

  Rng rng(3);
  const Buffer file = random_buffer(code.engine().num_chunks() * 96, rng);
  const store::FileId id = fs.write(file);
  EXPECT_EQ(*fs.read(id), file);
  EXPECT_EQ(*fs.read_range(id, 5, 200), Buffer(file.begin() + 5,
                                               file.begin() + 205));
  client::StripedReader reader(fs);
  EXPECT_EQ(*reader.read_range(id, 0, file.size()), file);

  // blocks_on / health agree with the placement: one slot per hosting
  // node, zero on the spares, nothing lost.
  size_t total_slots = 0;
  for (const auto& h : coord.health()) {
    EXPECT_TRUE(h.alive);
    EXPECT_EQ(h.state, NodeState::kActive);
    EXPECT_EQ(h.lost_blocks, 0u);
    EXPECT_LE(h.slots, 1u);
    EXPECT_EQ(h.slots, coord.blocks_on(h.id).size());
    total_slots += h.slots;
  }
  EXPECT_EQ(total_slots, code.num_blocks());
}

// Whole-node kill and restart: the kill sweeps the node's slot lost in
// every file at once (reads degrade but stay correct), and the restart
// revives EMPTY and hands the rebuild to the background queue — drain()
// is the barrier after which everything is healed.
TEST(CoordinatorTest, FailRestartHealsThroughRepairQueue) {
  core::GalloperCode code(4, 2, 1);
  sim::Simulation sim;
  sim::Cluster cluster(sim, code.num_blocks() + 2, sim::ServerSpec{});
  store::FileStore fs(cluster, code);
  CoordinatorOptions opt;
  opt.repair_workers = 2;
  Coordinator coord(fs, opt);

  Rng rng(5);
  std::vector<Buffer> files;
  std::vector<store::FileId> ids;
  for (int i = 0; i < 3; ++i) {
    files.push_back(random_buffer(code.engine().num_chunks() * 64, rng));
    ids.push_back(fs.write(files.back()));
  }

  const size_t victim_block = 2;
  const size_t srv = fs.server_of(victim_block);
  coord.fail_node(srv);
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_FALSE(fs.block_available(ids[i], victim_block));
    EXPECT_EQ(*fs.read(ids[i]), files[i]) << "degraded read stays correct";
  }

  coord.restart_node(srv);
  ASSERT_TRUE(coord.repair_queue().drain(60.0));
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_TRUE(fs.block_available(ids[i], victim_block));
    EXPECT_EQ(*fs.read(ids[i]), files[i]);
  }
  const auto stats = coord.repair_queue().stats();
  EXPECT_EQ(stats.completed, ids.size());
  EXPECT_EQ(stats.pending, 0u);
  EXPECT_EQ(stats.in_flight, 0u);
  EXPECT_GE(coord.node(srv).repairs_completed(), ids.size());
  EXPECT_EQ(coord.node(srv).epoch() % 2, 0u);
  EXPECT_GE(coord.node(srv).epoch(), 2u);
}

// The queue's priority policy, observed end to end: tasks whose stripe has
// already lost a preferred helper (surviving-helper deficit 1) must all
// complete before any routine deficit-0 task, even though the deficit-0
// tasks of half the files were enqueued interleaved with them. Injected
// read latency slows each rebuild so the backlog sits in the queue where
// the live priority ordering is what decides pop order.
TEST(RepairQueueTest, MostEndangeredStripesRepairFirst) {
  core::GalloperCode code(4, 2, 1);
  sim::Simulation sim;
  sim::Cluster cluster(sim, code.num_blocks() + 2, sim::ServerSpec{});
  store::FileStore fs(cluster, code);
  CoordinatorOptions opt;
  opt.repair_workers = 1;  // sequential completions: order is observable
  Coordinator coord(fs, opt);

  Rng rng(7);
  const size_t num_files = 6;
  std::vector<Buffer> files;
  std::vector<store::FileId> ids;
  for (size_t i = 0; i < num_files; ++i) {
    files.push_back(random_buffer(code.engine().num_chunks() * 64, rng));
    ids.push_back(fs.write(files.back()));
  }

  const size_t victim = 0;
  const auto helpers = fs.code().repair_helpers(victim);
  ASSERT_FALSE(helpers.empty());
  const size_t helper = helpers[0];
  // Files 0..2 lose a preferred helper of the victim block first: their
  // victim repairs will pop at deficit 1, files 3..5 at deficit 0.
  const std::set<store::FileId> endangered{ids[0], ids[1], ids[2]};
  for (store::FileId id : endangered) fs.corrupt_block(id, helper, 0);
  fs.scrub(/*quarantine=*/true);
  for (store::FileId id : endangered)
    ASSERT_FALSE(fs.block_available(id, helper));

  // Slow every rebuild's gather so the backlog outlives the first pop.
  fault::FaultInjector inj(17);
  inj.set_read_latency(1.0, 0.03);
  fs.set_fault_injector(&inj);

  const size_t srv = fs.server_of(victim);
  coord.fail_node(srv);
  coord.restart_node(srv);  // enqueues the victim slot for all six files
  ASSERT_TRUE(coord.repair_queue().drain(120.0));
  fs.set_fault_injector(nullptr);

  std::vector<RepairQueue::Completion> victim_repairs;
  for (const auto& c : coord.repair_queue().completions())
    if (c.block == victim) victim_repairs.push_back(c);
  ASSERT_EQ(victim_repairs.size(), num_files);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(victim_repairs[i].deficit, 1u)
        << "completion " << i << " should be an endangered stripe";
    EXPECT_TRUE(endangered.count(victim_repairs[i].file));
  }
  for (size_t i = 3; i < num_files; ++i) {
    EXPECT_EQ(victim_repairs[i].deficit, 0u)
        << "routine repairs must not jump endangered ones";
    EXPECT_FALSE(endangered.count(victim_repairs[i].file));
  }

  // drain()'s closing scan also healed the quarantined helpers.
  for (size_t i = 0; i < num_files; ++i) {
    EXPECT_TRUE(fs.block_available(ids[i], victim));
    EXPECT_TRUE(fs.block_available(ids[i], helper));
    EXPECT_EQ(*fs.read(ids[i]), files[i]);
  }
}

// A task that exhausts its attempt budget (here: every helper gather is
// force-failed, so each execution throws TransientError) parks in the
// unrecoverable set instead of spinning forever. The queue still reports
// drained — a parked task is not pending WORK — and the next node
// lifecycle event un-parks it, after which the block heals.
TEST(RepairQueueTest, UnrecoverableParksAndRestartUnparks) {
  core::GalloperCode code(4, 2, 1);
  sim::Simulation sim;
  sim::Cluster cluster(sim, code.num_blocks() + 2, sim::ServerSpec{});
  store::FileStore fs(cluster, code);
  CoordinatorOptions opt;
  opt.repair_max_attempts = 2;
  Coordinator coord(fs, opt);

  Rng rng(9);
  const Buffer file = random_buffer(code.engine().num_chunks() * 64, rng);
  const store::FileId id = fs.write(file);

  const size_t srv = fs.server_of(0);
  coord.fail_node(srv);
  // Arm enough forced read failures to outlast both queue attempts (each
  // repair call burns a few on its internal retries).
  fault::FaultInjector inj(23);
  inj.fail_next_reads(10'000);
  fs.set_fault_injector(&inj);

  coord.restart_node(srv);  // enqueues a task whose every gather will fail
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (coord.repair_queue().stats().unrecoverable == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(coord.repair_queue().stats().unrecoverable, 1u);
  EXPECT_GE(coord.repair_queue().stats().requeued, 1u);
  EXPECT_TRUE(coord.repair_queue().drain(30.0))
      << "a parked task is not pending work: drain must still succeed";
  EXPECT_FALSE(fs.block_available(id, 0));

  // The fault storm passes; the next lifecycle event clears the parked
  // set and the closing drain scan picks the block back up.
  inj.clear();
  fs.set_fault_injector(nullptr);
  coord.restart_node(srv);
  ASSERT_TRUE(coord.repair_queue().drain(60.0));
  EXPECT_TRUE(fs.block_available(id, 0));
  EXPECT_EQ(*fs.read(id), file);
}

// Decommission drains a node with NO degraded reads: resident bytes ride
// the placement cutover (available before and after), and a slot that was
// lost at decommission time rebuilds onto its new home via the queue.
TEST(CoordinatorTest, DecommissionMovesBlocksWithoutDegradedReads) {
  core::GalloperCode code(4, 2, 1);
  sim::Simulation sim;
  sim::Cluster cluster(sim, code.num_blocks() + 2, sim::ServerSpec{});
  store::FileStore fs(cluster, code);
  Coordinator coord(fs);

  Rng rng(11);
  const Buffer file = random_buffer(code.engine().num_chunks() * 96, rng);
  const store::FileId id = fs.write(file);

  // Healthy-slot drain: bytes stay resident across the cutover.
  const size_t slot = 3;
  const size_t old_srv = fs.server_of(slot);
  const auto degraded_before = fs.read_stats().degraded_reads;
  const auto moved = coord.decommission(old_srv);
  ASSERT_EQ(moved, std::vector<size_t>{slot});
  EXPECT_NE(fs.server_of(slot), old_srv);
  EXPECT_TRUE(coord.blocks_on(old_srv).empty());
  EXPECT_EQ(coord.node(old_srv).state(), NodeState::kDecommissioned);
  EXPECT_TRUE(fs.block_available(id, slot))
      << "resident bytes must survive the cutover";
  EXPECT_EQ(*fs.read(id), file);
  EXPECT_EQ(fs.read_stats().degraded_reads, degraded_before)
      << "decommission of a healthy node must never degrade a read";

  // Lost-slot drain: the slot is quarantined first, the cutover moves the
  // (empty) slot, and the queue rebuilds it onto the new home.
  fs.corrupt_block(id, slot, 0);
  fs.scrub(/*quarantine=*/true);
  ASSERT_FALSE(fs.block_available(id, slot));
  const size_t second_srv = fs.server_of(slot);
  coord.decommission(second_srv);
  EXPECT_NE(fs.server_of(slot), second_srv);
  ASSERT_TRUE(coord.repair_queue().drain(60.0));
  EXPECT_TRUE(fs.block_available(id, slot));
  EXPECT_EQ(*fs.read(id), file);
}

// The per-node repair throttle is a real token bucket over wall time:
// charging it from empty paces the caller at the configured rate, and an
// unthrottled node never blocks.
TEST(DataNodeTest, RepairBandwidthThrottlePaces) {
  sim::Simulation sim;
  sim::Cluster cluster(sim, 2, sim::ServerSpec{});
  DataNode throttled(cluster.server(0), /*io_threads=*/1,
                     /*repair_bytes_per_s=*/1e7);
  DataNode open(cluster.server(1), /*io_threads=*/1, /*repair_bytes_per_s=*/0);

  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < 3; ++i) throttled.acquire_repair_bandwidth(500'000);
  const double paced =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  // Nominal wait is 0.10 s (the first acquire is free at tokens == 0, the
  // next two each wait 0.05 s of refill); leave a margin for clock and
  // sleep granularity, which can deliver a fraction of a ms early.
  EXPECT_GE(paced, 0.09) << "1.5 MB at 10 MB/s from an empty bucket";

  const auto t1 = std::chrono::steady_clock::now();
  open.acquire_repair_bandwidth(1'000'000'000);
  const double unthrottled =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t1)
          .count();
  EXPECT_LT(unthrottled, 0.05);

  throttled.set_repair_bandwidth(0);  // un-throttle: future charges are free
  const auto t2 = std::chrono::steady_clock::now();
  throttled.acquire_repair_bandwidth(1'000'000'000);
  EXPECT_LT(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t2)
          .count(),
      0.2);
}

// The rolling-restart soak (the satellite the CI smoke gates on): every
// hosting node is killed and restarted in sequence while reader threads
// hammer the files, and at every step — including mid-kill — delivered
// bytes are bit-identical to the originals. At exit the queue is fully
// drained and every block is back.
TEST(ClusterSoakTest, RollingRestartUnderConcurrentReadsIsBitIdentical) {
  core::GalloperCode code(4, 2, 1);
  sim::Simulation sim;
  sim::Cluster cluster(sim, code.num_blocks() + 2, sim::ServerSpec{});
  store::FileStore fs(cluster, code);
  CoordinatorOptions opt;
  opt.repair_workers = 2;
  Coordinator coord(fs, opt);

  Rng rng(13);
  const size_t num_files = 3;
  std::vector<Buffer> files;
  std::vector<store::FileId> ids;
  for (size_t i = 0; i < num_files; ++i) {
    files.push_back(random_buffer(code.engine().num_chunks() * 96, rng));
    ids.push_back(fs.write(files.back()));
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0}, mismatches{0}, unavailable{0};
  std::vector<std::thread> readers;
  for (size_t t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      client::StripedReader reader(fs);
      Rng trng(101 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        const size_t i = trng.next_below(num_files);
        const size_t len = files[i].size();
        const size_t off = trng.next_below(len / 2);
        const size_t n = 1 + trng.next_below(len - off);
        const auto out = reader.read_range(ids[i], off, n);
        reads.fetch_add(1, std::memory_order_relaxed);
        if (!out.has_value()) {
          // Transient undecodable window while a kill races a rebuild —
          // acceptable; silent wrong bytes are not.
          unavailable.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        if (!std::equal(out->begin(), out->end(), files[i].begin() + off))
          mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // The rolling restart: one hosting node at a time, waiting for the
  // cluster to heal before moving on — the rolling-upgrade discipline.
  const auto placement = fs.placement();
  for (size_t srv : placement) {
    coord.fail_node(srv);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    coord.restart_node(srv);
    ASSERT_TRUE(coord.repair_queue().drain(60.0))
        << "queue failed to drain after restarting node " << srv;
  }
  stop.store(true);
  for (auto& r : readers) r.join();

  EXPECT_GT(reads.load(), 0u);
  EXPECT_EQ(mismatches.load(), 0u) << "a read returned wrong bytes";
  for (size_t i = 0; i < num_files; ++i) {
    for (size_t b = 0; b < code.num_blocks(); ++b)
      EXPECT_TRUE(fs.block_available(ids[i], b))
          << "file " << i << " block " << b << " still lost after the roll";
    EXPECT_EQ(*fs.read(ids[i]), files[i]);
  }
  const auto stats = coord.repair_queue().stats();
  EXPECT_EQ(stats.pending, 0u);
  EXPECT_EQ(stats.in_flight, 0u);
  EXPECT_GE(stats.completed, placement.size() * num_files)
      << "every (file, slot) the roll killed must have been rebuilt";
}

}  // namespace
}  // namespace galloper::cluster
