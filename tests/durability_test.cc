#include <gtest/gtest.h>

#include "analysis/durability.h"
#include "codes/pyramid.h"
#include "codes/reed_solomon.h"
#include "core/galloper.h"
#include "util/check.h"

namespace galloper::analysis {
namespace {

using galloper::CheckError;

TEST(MttdlMarkov, ZeroToleranceIsFirstFailureTime) {
  // n blocks, any failure loses data: MTTDL = 1/(nλ).
  EXPECT_NEAR(mttdl_markov(10, 0, 0.01, 1.0), 1.0 / (10 * 0.01), 1e-9);
}

TEST(MttdlMarkov, ToleranceRaisesMttdl) {
  const double t0 = mttdl_markov(6, 0, 0.001, 0.5);
  const double t1 = mttdl_markov(6, 1, 0.001, 0.5);
  const double t2 = mttdl_markov(6, 2, 0.001, 0.5);
  EXPECT_GT(t1, t0 * 10);
  EXPECT_GT(t2, t1 * 10);
}

TEST(MttdlMarkov, FasterRepairRaisesMttdl) {
  const double slow = mttdl_markov(7, 2, 0.001, 0.1);
  const double fast = mttdl_markov(7, 2, 0.001, 1.0);
  EXPECT_GT(fast, slow * 10);
}

TEST(MttdlMarkov, MatchesClosedFormForToleranceOne) {
  // For t = 1: MTTDL = (λ_0 + λ_1 + µ_1) / (λ_0 λ_1) with λ_i = (n−i)λ,
  // µ_1 = µ (classic RAID-1 formula).
  const size_t n = 4;
  const double lambda = 0.002, mu = 0.7;
  const double l0 = n * lambda, l1 = (n - 1) * lambda;
  const double expect = (l0 + l1 + mu) / (l0 * l1);
  EXPECT_NEAR(mttdl_markov(n, 1, lambda, mu), expect, expect * 1e-9);
}

TEST(MttdlMarkov, RejectsBadArguments) {
  EXPECT_THROW(mttdl_markov(2, 2, 0.1, 1.0), CheckError);
  EXPECT_THROW(mttdl_markov(5, 1, 0.0, 1.0), CheckError);
}

TEST(MttdlMonteCarlo, DeterministicInSeed) {
  codes::ReedSolomonCode rs(4, 2);
  DurabilityParams p{/*mtbf=*/50.0, /*repair=*/1.0};
  const auto a = mttdl_monte_carlo(rs, p, 50, 7);
  const auto b = mttdl_monte_carlo(rs, p, 50, 7);
  EXPECT_DOUBLE_EQ(a.mttdl_hours, b.mttdl_hours);
  EXPECT_DOUBLE_EQ(a.mean_failures, b.mean_failures);
}

TEST(MttdlMonteCarlo, AtLeastTolerancePlusOneFailuresPerLoss) {
  core::GalloperCode gal(4, 2, 1);
  DurabilityParams p{/*mtbf=*/20.0, /*repair=*/1.0};
  const auto r = mttdl_monte_carlo(gal, p, 100, 11);
  EXPECT_GE(r.mean_failures, gal.guaranteed_tolerance() + 1);
}

TEST(MttdlMonteCarlo, LocalityBeatsReedSolomonUnderEqualTolerance) {
  // (6,2) RS and (4,2,1)... different shapes; compare RS(4,2) (tolerance 2,
  // repairs read 4 blocks) against Galloper(4,2,1) (tolerance 2 via g+1,
  // repairs mostly read 2 blocks). With repair time ∝ blocks read, the
  // locally repairable code shrinks the re-failure window.
  codes::ReedSolomonCode rs(4, 2);
  core::GalloperCode gal(4, 2, 1);
  DurabilityParams p{/*mtbf=*/40.0, /*repair=*/1.0};
  const auto r_rs = mttdl_monte_carlo(rs, p, 400, 13);
  const auto r_gal = mttdl_monte_carlo(gal, p, 400, 13);
  EXPECT_GT(r_gal.mttdl_hours, r_rs.mttdl_hours)
      << "faster (local) repair must win at these rates";
}

TEST(MttdlMonteCarlo, MarkovAgreesForMdsCode) {
  // For an MDS code the Markov chain's "any t+1 concurrent failures lose
  // data" assumption is exact; the Monte-Carlo estimate should be in the
  // same ballpark (loose factor-two band — 400 trials).
  codes::ReedSolomonCode rs(4, 2);
  const double mtbf = 30.0, repair = 1.0;
  DurabilityParams p{mtbf, repair};
  // Markov rates: per-block failure rate 1/mtbf; repair rate = 1/(4·1h)
  // since an RS repair reads 4 blocks.
  const double markov = mttdl_markov(6, 2, 1.0 / mtbf, 1.0 / (4 * repair));
  const auto mc = mttdl_monte_carlo(rs, p, 400, 17);
  EXPECT_GT(mc.mttdl_hours, markov * 0.5);
  EXPECT_LT(mc.mttdl_hours, markov * 2.0);
}

TEST(MttdlMonteCarlo, RejectsBadParams) {
  codes::ReedSolomonCode rs(2, 1);
  EXPECT_THROW(mttdl_monte_carlo(rs, DurabilityParams{0, 1}, 10, 1),
               CheckError);
  EXPECT_THROW(mttdl_monte_carlo(rs, DurabilityParams{1, 1}, 0, 1),
               CheckError);
}

}  // namespace
}  // namespace galloper::analysis
