// Soak harness: short deterministic runs over several seeds, asserting the
// runs complete (every read bit-identical — run_soak throws otherwise) AND
// that the schedule actually exercised the interesting paths. CI runs the
// same harness as a smoke via `galloper soak`.
#include <gtest/gtest.h>

#include "fault/soak.h"

namespace galloper::fault {
namespace {

TEST(SoakTest, ShortRunsAcrossSeedsStayBitIdentical) {
  for (uint64_t seed : {1, 7, 42, 100}) {
    SoakOptions opt;
    opt.seed = seed;
    opt.ops = 120;
    const SoakReport report = run_soak(opt);
    EXPECT_EQ(report.ops, opt.ops) << "seed " << seed;
    // Every kill must eventually be revived and healed.
    EXPECT_EQ(report.kills, report.revives) << "seed " << seed;
  }
}

TEST(SoakTest, ReportShowsFullFaultMix) {
  // One longer run; the chosen seed's schedule hits every path the
  // harness can drive (deterministic, so these bounds cannot flake).
  SoakOptions opt;
  opt.seed = 1;
  opt.ops = 300;
  const SoakReport report = run_soak(opt);
  EXPECT_GT(report.kills, 0u);
  EXPECT_GT(report.corruptions, 0u);
  EXPECT_GT(report.reads, 0u);
  EXPECT_GT(report.degraded_reads, 0u);
  EXPECT_GT(report.auto_repairs, 0u);
  EXPECT_GT(report.updates, 0u);
  EXPECT_GT(report.scrub_repairs, 0u);
  EXPECT_GT(report.repairs, 0u);
  EXPECT_GT(report.transient_faults, 0u);
  EXPECT_EQ(report.crashes_survived, 1u);  // the armed mid-run crash
}

TEST(SoakTest, SameSeedSameReport) {
  SoakOptions opt;
  opt.seed = 7;
  opt.ops = 100;
  const SoakReport a = run_soak(opt);
  const SoakReport b = run_soak(opt);
  EXPECT_EQ(format_report(a), format_report(b));
}

TEST(SoakTest, CrashFreeRunAlsoPasses)  {
  SoakOptions opt;
  opt.seed = 3;
  opt.ops = 120;
  opt.arm_crash = false;
  const SoakReport report = run_soak(opt);
  EXPECT_EQ(report.crashes_survived, 0u);
}

TEST(SoakTest, WiderCodeShape) {
  SoakOptions opt;
  opt.seed = 11;
  opt.ops = 100;
  opt.k = 6;
  opt.l = 3;
  opt.g = 2;
  opt.files = 2;
  EXPECT_NO_THROW(run_soak(opt));
}

}  // namespace
}  // namespace galloper::fault
