// Tests for the async I/O layer: positional File I/O with the O_DIRECT
// alignment fallback, AsyncIo submission/completion/cancellation, and
// FetchSet's first-result-wins hedging — including the determinism the
// store paths rely on (fixed hedge deadlines, loser cancellation).
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "io/async.h"
#include "io/fetch.h"
#include "io/io.h"
#include "util/bytes.h"
#include "util/check.h"
#include "util/rng.h"

namespace galloper {
namespace {

namespace fs = std::filesystem;

double seconds_of(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("galloper_io_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path path(const std::string& name) const { return dir_ / name; }

  fs::path dir_;
};

Buffer pattern(size_t n, uint64_t seed = 7) {
  Rng rng(seed);
  return random_buffer(n, rng);
}

// ---------- File -----------------------------------------------------------

TEST_F(IoTest, CreateWriteReadRoundTrip) {
  const Buffer data = pattern(100000);
  {
    io::File out = io::File::create(path("f.bin"));
    out.pwrite_full(data.data(), data.size(), 0);
    out.sync();
  }
  io::File in = io::File::open_read(path("f.bin"));
  EXPECT_EQ(in.size(), data.size());
  Buffer got(data.size());
  in.pread_full(got.data(), got.size(), 0);
  EXPECT_EQ(got, data);
}

TEST_F(IoTest, PositionalOpsAreIndependent) {
  const Buffer data = pattern(8192);
  io::File out = io::File::create(path("f.bin"));
  // Write out of order; positional ops carry their own offsets.
  out.pwrite_full(data.data() + 4096, 4096, 4096);
  out.pwrite_full(data.data(), 4096, 0);
  Buffer got(8192);
  io::File in = io::File::open_read(path("f.bin"));
  in.pread_full(got.data() + 4096, 4096, 4096);
  in.pread_full(got.data(), 4096, 0);
  EXPECT_EQ(got, data);
}

TEST_F(IoTest, ShortReadPastEofFailsLoudly) {
  const Buffer data = pattern(1000);
  {
    io::File out = io::File::create(path("f.bin"));
    out.pwrite_full(data.data(), data.size(), 0);
  }
  io::File in = io::File::open_read(path("f.bin"));
  Buffer got(2000);
  EXPECT_THROW(in.pread_full(got.data(), got.size(), 0), CheckError);
  // pread_some reports the truncation instead of throwing.
  EXPECT_EQ(in.pread_some(got.data(), got.size(), 0), 1000u);
  EXPECT_EQ(in.pread_some(got.data(), got.size(), 1000), 0u);
}

TEST_F(IoTest, OpenMissingFileThrows) {
  EXPECT_THROW(io::File::open_read(path("nope.bin")), CheckError);
}

TEST_F(IoTest, MoveTransfersOwnership) {
  io::File out = io::File::create(path("f.bin"));
  const Buffer data = pattern(64);
  out.pwrite_full(data.data(), data.size(), 0);
  io::File moved = std::move(out);
  EXPECT_FALSE(out.is_open());  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(moved.is_open());
  EXPECT_EQ(moved.size(), 64u);
}

// O_DIRECT is best-effort: tmpfs refuses it at open (the handle falls back
// to buffered), real filesystems grant it but then every unaligned op must
// route to the fallback descriptor. Both arms must yield identical bytes.
TEST_F(IoTest, DirectTryFallsBackAndStaysCorrect) {
  const Buffer data = pattern(3 * io::File::kDirectAlign + 123);
  {
    io::File out = io::File::create(path("f.bin"), io::File::Direct::kTry);
    // Unaligned length + unaligned offsets: must work whether or not the
    // direct descriptor was granted.
    out.pwrite_full(data.data(), data.size(), 0);
  }
  io::File in = io::File::open_read(path("f.bin"), io::File::Direct::kTry);
  Buffer got(data.size());
  // Aligned head (direct-eligible) and unaligned tail (fallback) both land.
  in.pread_full(got.data(), io::File::kDirectAlign, 0);
  in.pread_full(got.data() + io::File::kDirectAlign,
                got.size() - io::File::kDirectAlign, io::File::kDirectAlign);
  EXPECT_EQ(got, data);
  io::File never = io::File::open_read(path("f.bin"), io::File::Direct::kNever);
  EXPECT_FALSE(never.direct_active());
}

// ---------- AsyncIo --------------------------------------------------------

TEST_F(IoTest, ScatterGatherReadsAndWrites) {
  const size_t kBlocks = 8, kBytes = 4096;
  const Buffer data = pattern(kBlocks * kBytes);
  io::AsyncIo pool(3);
  io::File out = io::File::create(path("f.bin"));
  std::vector<io::OpRef> writes;
  for (size_t b = 0; b < kBlocks; ++b)
    writes.push_back(
        pool.submit_write(out, data.data() + b * kBytes, kBytes, b * kBytes));
  io::AsyncIo::wait_all(writes);

  io::File in = io::File::open_read(path("f.bin"));
  Buffer got(data.size());
  std::vector<io::OpRef> reads;
  for (size_t b = 0; b < kBlocks; ++b)
    reads.push_back(
        pool.submit_read(in, got.data() + b * kBytes, kBytes, b * kBytes));
  io::AsyncIo::wait_all(reads);
  EXPECT_EQ(got, data);

  const io::IoStats st = pool.stats();
  EXPECT_EQ(st.ops, 2 * kBlocks);
  EXPECT_EQ(st.reads, kBlocks);
  EXPECT_EQ(st.writes, kBlocks);
  EXPECT_EQ(st.bytes_read, kBlocks * kBytes);
  EXPECT_EQ(st.bytes_written, kBlocks * kBytes);
  EXPECT_EQ(st.threads, 3u);
  EXPECT_GE(st.queue_peak, 1u);
  EXPECT_GT(st.p50_s, 0.0);
  EXPECT_GE(st.p99_s, st.p50_s);
}

TEST_F(IoTest, SubmitManyEnqueuesWholeBatch) {
  io::AsyncIo pool(2);
  std::vector<int> hits(16, 0);
  std::vector<std::tuple<io::OpKind, size_t, io::Op::Body>> batch;
  for (size_t i = 0; i < hits.size(); ++i)
    batch.emplace_back(io::OpKind::kFetch, 0,
                       [&hits, i](io::Op&) { hits[i] = 1; });
  io::AsyncIo::wait_all(pool.submit_many(std::move(batch)));
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 16);
  EXPECT_EQ(pool.stats().fetches, 16u);
}

TEST_F(IoTest, WaitRethrowsBodyException) {
  io::AsyncIo pool(1);
  io::OpRef op = pool.submit(io::OpKind::kRead, 0, [](io::Op&) {
    throw std::runtime_error("boom");
  });
  EXPECT_THROW(op->wait(), std::runtime_error);
  // wait_all joins everything, then rethrows the first error in submission
  // order.
  std::vector<io::OpRef> ops;
  ops.push_back(pool.submit(io::OpKind::kRead, 0,
                            [](io::Op&) { throw std::runtime_error("first"); }));
  ops.push_back(pool.submit(io::OpKind::kRead, 0, [](io::Op&) {}));
  try {
    io::AsyncIo::wait_all(ops);
    FAIL() << "expected rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first");
  }
  EXPECT_TRUE(ops[1]->done());
}

TEST_F(IoTest, CancelQueuedOpNeverRuns) {
  io::AsyncIo pool(1);  // one worker → the second op waits in the queue
  io::OpRef blocker =
      pool.submit(io::OpKind::kRead, 0, [](io::Op& op) { op.stall(0.2); });
  io::OpRef victim =
      pool.submit(io::OpKind::kRead, 0, [](io::Op&) { ADD_FAILURE(); });
  victim->cancel();
  victim->wait();  // returns without rethrow; the body never ran
  EXPECT_TRUE(victim->cancelled());
  blocker->wait();
  EXPECT_EQ(pool.stats().cancelled, 1u);
  EXPECT_EQ(pool.stats().ops, 1u);  // only the blocker completed
}

TEST_F(IoTest, CancelWakesARunningStall) {
  io::AsyncIo pool(1);
  bool bailed = false;
  std::atomic<bool> started{false};
  io::OpRef op = pool.submit(io::OpKind::kRead, 0, [&](io::Op& o) {
    started.store(true, std::memory_order_release);
    bailed = !o.stall(30.0);  // would park for 30 s without the cancel
  });
  while (!started.load(std::memory_order_acquire)) std::this_thread::yield();
  const double took = seconds_of([&] {
    op->cancel();
    op->wait();
  });
  EXPECT_TRUE(bailed);
  EXPECT_LT(took, 5.0);  // woke immediately, not after 30 s
}

TEST_F(IoTest, DefaultThreadsRespectsEnv) {
  ::setenv("GALLOPER_IO_THREADS", "7", 1);
  EXPECT_EQ(io::AsyncIo::default_threads(), 7u);
  ::setenv("GALLOPER_IO_THREADS", "1000", 1);
  EXPECT_EQ(io::AsyncIo::default_threads(), 64u);  // clamp
  ::unsetenv("GALLOPER_IO_THREADS");
  EXPECT_EQ(io::AsyncIo::default_threads(), 4u);
}

TEST_F(IoTest, HedgeEnvControlsPolicy) {
  ::setenv("GALLOPER_HEDGE", "off", 1);
  {
    io::AsyncIo pool(1);
    EXPECT_FALSE(pool.hedge_policy().enabled);
    EXPECT_TRUE(std::isinf(pool.hedge_deadline_s()));
  }
  ::setenv("GALLOPER_HEDGE", "0.5", 1);
  {
    io::AsyncIo pool(1);
    EXPECT_TRUE(pool.hedge_policy().enabled);
    EXPECT_DOUBLE_EQ(pool.hedge_policy().quantile, 0.5);
  }
  ::unsetenv("GALLOPER_HEDGE");
  io::AsyncIo pool(1);
  io::HedgePolicy fixed;
  fixed.fixed_deadline_s = 0.125;
  pool.set_hedge_policy(fixed);
  EXPECT_DOUBLE_EQ(pool.hedge_deadline_s(), 0.125);
}

TEST_F(IoTest, HedgeBudgetEnvControlsPolicy) {
  ::setenv("GALLOPER_HEDGE_BUDGET", "off", 1);
  {
    io::AsyncIo pool(1);
    EXPECT_LT(pool.hedge_policy().budget_pct, 0.0);  // unlimited
    EXPECT_TRUE(pool.try_charge_hedge(uint64_t{1} << 40));
  }
  ::setenv("GALLOPER_HEDGE_BUDGET", "25", 1);
  {
    io::AsyncIo pool(1);
    EXPECT_DOUBLE_EQ(pool.hedge_policy().budget_pct, 25.0);
  }
  ::unsetenv("GALLOPER_HEDGE_BUDGET");
  io::AsyncIo pool(1);
  EXPECT_DOUBLE_EQ(pool.hedge_policy().budget_pct, 10.0);  // default
}

TEST_F(IoTest, HedgeBudgetTokenBucket) {
  io::AsyncIo pool(1);
  io::HedgePolicy policy;
  policy.budget_pct = 10.0;
  policy.budget_burst_bytes = 1000;
  pool.set_hedge_policy(policy);  // re-seeds the bucket to the burst

  EXPECT_TRUE(pool.try_charge_hedge(0));     // zero-byte always granted
  EXPECT_TRUE(pool.try_charge_hedge(600));   // 1000 → 400
  EXPECT_FALSE(pool.try_charge_hedge(600));  // 400 can't cover 600
  pool.note_fetched(3000);                   // +10% of 3000 → 700
  EXPECT_TRUE(pool.try_charge_hedge(600));   // 700 → 100
  pool.note_fetched(1u << 30);               // refill is CAPPED at the burst
  EXPECT_FALSE(pool.try_charge_hedge(1001));
  EXPECT_TRUE(pool.try_charge_hedge(1000));

  const io::IoStats st = pool.stats();
  EXPECT_EQ(st.hedge_bytes_granted, 600u + 600u + 1000u);
  EXPECT_EQ(st.hedge_denied, 2u);
  EXPECT_EQ(st.hedge_bytes_denied, 600u + 1001u);
  EXPECT_DOUBLE_EQ(st.hedge_budget_pct, 10.0);
}

TEST_F(IoTest, DeniedHedgeLeavesFetchSetUntouched) {
  io::AsyncIo pool(2);
  io::HedgePolicy policy;
  policy.fixed_deadline_s = 0.005;
  policy.budget_pct = 10.0;
  policy.budget_burst_bytes = 0;  // empty bucket: every sized hedge denied
  pool.set_hedge_policy(policy);

  io::FetchSet fetches(pool);
  EXPECT_TRUE(fetches.fetch(0, 0, [] { return true; },
                            /*hedge=*/false, /*bytes=*/512));
  // The denied hedge returns false and creates NO entry and NO pending
  // key: an exhaustive await must terminate on the primary alone.
  EXPECT_FALSE(fetches.fetch(7, 0, [] { return true; },
                             /*hedge=*/true, /*bytes=*/256));
  fetches.await([](const std::vector<size_t>&) { return false; }, nullptr);
  fetches.join();
  EXPECT_EQ(fetches.outcome(0), io::FetchSet::Outcome::kClean);
  EXPECT_EQ(fetches.outcome(7), io::FetchSet::Outcome::kPending);  // no key

  const io::IoStats st = pool.stats();
  EXPECT_EQ(st.hedge_denied, 1u);
  EXPECT_EQ(st.hedge_bytes_denied, 256u);
  EXPECT_EQ(st.hedges_issued, 0u);
  // Zero-byte hedges (legacy call sites) stay exempt from the budget.
  io::FetchSet more(pool);
  EXPECT_TRUE(more.fetch(1, 0, [] { return true; }, /*hedge=*/true));
  more.join();
  EXPECT_EQ(more.outcome(1), io::FetchSet::Outcome::kClean);
}

// ---------- FetchSet -------------------------------------------------------

TEST_F(IoTest, FetchSetResolvesCleanCorruptAndFailed) {
  io::AsyncIo pool(2);
  io::FetchSet fetches(pool);
  fetches.fetch(1, 0, [] { return true; });
  fetches.fetch(2, 0, [] { return false; });
  fetches.fetch(3, 0, []() -> bool { throw std::runtime_error("probe died"); });
  fetches.join();
  EXPECT_EQ(fetches.outcome(1), io::FetchSet::Outcome::kClean);
  EXPECT_EQ(fetches.outcome(2), io::FetchSet::Outcome::kCorrupt);
  EXPECT_EQ(fetches.outcome(3), io::FetchSet::Outcome::kFailed);
  EXPECT_EQ(fetches.clean_keys(), std::vector<size_t>{1});
  EXPECT_THROW(fetches.rethrow_any_failure(), std::runtime_error);
}

TEST_F(IoTest, AwaitReturnsAtReadinessNotCompletion) {
  io::AsyncIo pool(4);
  io::FetchSet fetches(pool);
  for (size_t key : {0u, 1u, 2u}) fetches.fetch(key, 0, [] { return true; });
  fetches.fetch(3, 30.0, [] { return true; });  // straggler
  const double took = seconds_of([&] {
    fetches.await(
        [](const std::vector<size_t>& clean) { return clean.size() >= 3; },
        nullptr);
  });
  EXPECT_LT(took, 5.0);  // did not wait out the 30 s stall
  EXPECT_GE(fetches.clean_keys().size(), 3u);
  fetches.cancel_and_join();
  EXPECT_EQ(fetches.outcome(3), io::FetchSet::Outcome::kCancelled);
}

TEST_F(IoTest, HedgeWinsDeterministicallyUnderFixedDeadline) {
  io::AsyncIo pool(4);  // private pool → counters belong to this test
  io::HedgePolicy fixed;
  fixed.fixed_deadline_s = 0.005;
  pool.set_hedge_policy(fixed);

  io::FetchSet fetches(pool);
  std::atomic<int> probes_run{0};
  fetches.fetch(0, 0, [&] { ++probes_run; return true; });
  fetches.fetch(1, 30.0, [&] { ++probes_run; return true; });  // the slow one
  std::vector<size_t> slow_keys;
  const double took = seconds_of([&] {
    fetches.await(
        [](const std::vector<size_t>& clean) { return clean.size() == 2; },
        [&](const std::vector<size_t>& pending) {
          slow_keys = pending;
          for (size_t key : pending)
            fetches.fetch(key, 0, [&] { ++probes_run; return true; },
                          /*hedge=*/true);
        });
  });
  fetches.cancel_and_join();

  EXPECT_EQ(slow_keys, std::vector<size_t>{1});
  EXPECT_EQ(fetches.outcome(0), io::FetchSet::Outcome::kClean);
  EXPECT_EQ(fetches.outcome(1), io::FetchSet::Outcome::kClean);
  EXPECT_LT(took, 5.0);  // hedge resolved the key; no 30 s wait
  EXPECT_EQ(probes_run.load(), 2);  // stalled primary bailed without probing
  const io::IoStats st = pool.stats();
  EXPECT_EQ(st.hedges_issued, 1u);
  EXPECT_EQ(st.hedges_won, 1u);
}

TEST_F(IoTest, FirstResultPerKeyWinsAndLoserIsCancelled) {
  io::AsyncIo pool(2);
  io::FetchSet fetches(pool);
  // Two fetches for one key: the no-stall one must win and cancel the
  // stalled sibling mid-park.
  fetches.fetch(9, 30.0, [] { return false; });  // would record kCorrupt
  fetches.fetch(9, 0, [] { return true; }, /*hedge=*/true);
  const double took = seconds_of([&] { fetches.join(); });
  EXPECT_EQ(fetches.outcome(9), io::FetchSet::Outcome::kClean);
  EXPECT_LT(took, 5.0);
}

// Regression: a loser cancelled while still QUEUED (saturated pool) never
// runs its body, so record() never fires for it — its completion must be
// accounted by the canceller, or an exhaustive await (the always-false
// predicate read_range uses before its final join) deadlocks.
TEST_F(IoTest, QueuedLoserStillCountsTowardCompletion) {
  io::AsyncIo pool(1);  // one worker → the duplicate waits in the queue
  io::FetchSet fetches(pool);
  std::atomic<bool> dup_submitted{false};
  // The primary's probe parks until the duplicate is in the queue, so its
  // record() is GUARANTEED to cancel the duplicate pre-run.
  fetches.fetch(7, 0, [&] {
    while (!dup_submitted.load(std::memory_order_acquire))
      std::this_thread::yield();
    return true;
  });
  fetches.fetch(7, 30.0, [] { return false; }, /*hedge=*/true);
  dup_submitted.store(true, std::memory_order_release);
  const double took = seconds_of([&] {
    fetches.await([](const std::vector<size_t>&) { return false; }, nullptr);
  });
  EXPECT_EQ(fetches.outcome(7), io::FetchSet::Outcome::kClean);
  EXPECT_LT(took, 5.0);  // neither the 30 s stall nor a completion deadlock
}

// Regression companion: cancel_and_join must account queued-cancelled ops
// the same way, so an await AFTER teardown still terminates.
TEST_F(IoTest, CancelAndJoinAccountsQueuedOps) {
  io::AsyncIo pool(1);
  io::FetchSet fetches(pool);
  fetches.fetch(0, 30.0, [] { return true; });  // running (or about to)
  fetches.fetch(1, 30.0, [] { return true; });  // queued behind it
  fetches.cancel_and_join();
  EXPECT_EQ(fetches.outcome(0), io::FetchSet::Outcome::kCancelled);
  EXPECT_EQ(fetches.outcome(1), io::FetchSet::Outcome::kCancelled);
  const double took = seconds_of([&] {
    fetches.await([](const std::vector<size_t>&) { return false; }, nullptr);
  });
  EXPECT_LT(took, 5.0);  // completed_ covers the never-ran op
}

TEST_F(IoTest, DestructorCancelsOutstandingFetches) {
  io::AsyncIo pool(1);
  const double took = seconds_of([&] {
    io::FetchSet fetches(pool);
    fetches.fetch(0, 30.0, [] { return true; });
    // ~FetchSet: cancel_and_join — must not wait out the stall.
  });
  EXPECT_LT(took, 5.0);
}

}  // namespace
}  // namespace galloper
