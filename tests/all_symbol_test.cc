#include <gtest/gtest.h>

#include <numeric>

#include "core/all_symbol.h"
#include "core/galloper.h"
#include "util/check.h"
#include "util/rng.h"

namespace galloper::core {
namespace {

using galloper::Buffer;
using galloper::CheckError;
using galloper::ConstByteSpan;
using galloper::Rational;
using galloper::Rng;
using galloper::random_buffer;

std::map<size_t, ConstByteSpan> view(const std::vector<Buffer>& blocks,
                                     const std::vector<size_t>& ids) {
  std::map<size_t, ConstByteSpan> m;
  for (size_t id : ids) m.emplace(id, blocks[id]);
  return m;
}

struct Shape {
  size_t k, l, g;
};

class AllSymbolShapes : public ::testing::TestWithParam<Shape> {};

TEST_P(AllSymbolShapes, ToleranceAtLeastGPlusOne) {
  const auto [k, l, g] = GetParam();
  AllSymbolGalloperCode code(k, l, g);
  EXPECT_TRUE(code.verify_tolerance()) << code.name();
}

TEST_P(AllSymbolShapes, EveryBlockRepairsFromItsSmallHelperSet) {
  const auto [k, l, g] = GetParam();
  AllSymbolGalloperCode code(k, l, g);
  Rng rng(100 + k + g);
  const Buffer file = random_buffer(code.engine().num_chunks() * 8, rng);
  const auto blocks = code.encode(file);
  ASSERT_EQ(blocks.size(), k + l + g + 1);
  for (size_t failed = 0; failed < code.num_blocks(); ++failed) {
    const auto helpers = code.repair_helpers(failed);
    const auto rebuilt = code.repair_block(failed, view(blocks, helpers));
    ASSERT_TRUE(rebuilt.has_value())
        << code.name() << " block " << failed;
    EXPECT_EQ(*rebuilt, blocks[failed]);
  }
}

TEST_P(AllSymbolShapes, GlobalLocalityIsGNotK) {
  const auto [k, l, g] = GetParam();
  AllSymbolGalloperCode ext(k, l, g);
  GalloperCode plain(k, l, g);
  for (size_t b = k + l; b < k + l + g; ++b) {
    EXPECT_EQ(ext.repair_helpers(b).size(), g) << "extended global locality";
    EXPECT_EQ(plain.repair_helpers(b).size(), k) << "plain global locality";
  }
  // The extra block itself repairs from the g globals.
  EXPECT_EQ(ext.repair_helpers(k + l + g).size(), g);
}

TEST_P(AllSymbolShapes, DataLayoutIdenticalToPlainGalloper) {
  const auto [k, l, g] = GetParam();
  AllSymbolGalloperCode ext(k, l, g);
  GalloperCode plain(k, l, g);
  // Same chunk placement in the shared blocks; extra block is pure parity.
  EXPECT_EQ(ext.engine().chunk_positions(), plain.engine().chunk_positions());
  EXPECT_EQ(ext.engine().data_stripes_in_block(k + l + g), 0u);
}

INSTANTIATE_TEST_SUITE_P(Shapes, AllSymbolShapes,
                         ::testing::Values(Shape{4, 2, 1}, Shape{4, 2, 2},
                                           Shape{6, 2, 2}, Shape{6, 3, 2},
                                           Shape{4, 0, 2}, Shape{8, 2, 3}));

TEST(AllSymbol, ExtraBlockIsXorOfGlobals) {
  AllSymbolGalloperCode code(4, 2, 2);
  Rng rng(1);
  const Buffer file = random_buffer(code.engine().num_chunks() * 16, rng);
  const auto blocks = code.encode(file);
  const size_t n = code.num_blocks();
  Buffer expect(blocks[0].size(), 0);
  for (size_t m = 0; m < 2; ++m)
    for (size_t i = 0; i < expect.size(); ++i)
      expect[i] ^= blocks[4 + 2 + m][i];
  EXPECT_EQ(blocks[n - 1], expect);
}

TEST(AllSymbol, DecodabilityIsSupersetOfPlain) {
  AllSymbolGalloperCode ext(4, 2, 2);
  GalloperCode plain(4, 2, 2);
  const size_t n_plain = plain.num_blocks();
  Rng rng(2);
  for (int trial = 0; trial < 200; ++trial) {
    // A random subset of the shared blocks: if plain decodes, ext must too.
    const size_t count = 1 + rng.next_below(n_plain);
    const auto subset = rng.sample_indices(n_plain, count);
    if (plain.decodable(subset)) {
      EXPECT_TRUE(ext.decodable(subset));
    }
  }
}

TEST(AllSymbol, StorageOverheadOneExtraBlock) {
  AllSymbolGalloperCode code(4, 2, 1);
  EXPECT_EQ(code.num_blocks(), 8u);
  EXPECT_EQ(code.all_symbol_locality(), 2u);  // max(k/l = 2, g = 1)
}

TEST(AllSymbol, HeterogeneousWeightsSupported) {
  AllSymbolGalloperCode code(
      4, 2, 1,
      {Rational(1, 2), Rational(1, 2), Rational(3, 4), Rational(5, 8),
       Rational(1, 2), Rational(5, 8), Rational(1, 2)});
  Rng rng(3);
  const Buffer file = random_buffer(code.engine().num_chunks() * 8, rng);
  const auto blocks = code.encode(file);
  std::vector<size_t> all(code.num_blocks());
  std::iota(all.begin(), all.end(), size_t{0});
  const auto decoded = code.decode(view(blocks, all));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, file);
}

TEST(AllSymbol, RequiresAtLeastOneGlobal) {
  EXPECT_THROW(AllSymbolGalloperCode(4, 2, 0), CheckError);
}

}  // namespace
}  // namespace galloper::core
