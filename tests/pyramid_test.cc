#include <gtest/gtest.h>

#include "codes/pyramid.h"
#include "codes/reed_solomon.h"
#include "util/check.h"
#include "util/rng.h"

namespace galloper::codes {
namespace {

using galloper::Buffer;
using galloper::CheckError;
using galloper::ConstByteSpan;
using galloper::Rng;
using galloper::random_buffer;

std::map<size_t, ConstByteSpan> view(const std::vector<Buffer>& blocks,
                                     const std::vector<size_t>& ids) {
  std::map<size_t, ConstByteSpan> m;
  for (size_t id : ids) m.emplace(id, blocks[id]);
  return m;
}

struct Shape {
  size_t k, l, g;
};

class PyramidShapes : public ::testing::TestWithParam<Shape> {};

TEST_P(PyramidShapes, ToleratesAnyGPlusOneFailures) {
  const auto [k, l, g] = GetParam();
  PyramidCode code(k, l, g);
  EXPECT_TRUE(code.verify_tolerance()) << code.name();
}

TEST_P(PyramidShapes, EncodeDecodeRoundTripAfterWorstTolerableFailure) {
  const auto [k, l, g] = GetParam();
  PyramidCode code(k, l, g);
  Rng rng(500 + k + l + g);
  const Buffer file = random_buffer(k * 24, rng);
  const auto blocks = code.encode(file);
  // Remove the last guaranteed_tolerance() blocks, decode from the rest.
  std::vector<size_t> available;
  for (size_t b = 0; b < code.num_blocks() - code.guaranteed_tolerance(); ++b)
    available.push_back(b);
  const auto decoded = code.decode(view(blocks, available));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, file);
}

TEST_P(PyramidShapes, LocalBlocksRepairFromGroupPeersOnly) {
  const auto [k, l, g] = GetParam();
  if (l == 0) return;
  PyramidCode code(k, l, g);
  Rng rng(600 + k);
  const Buffer file = random_buffer(k * 24, rng);
  const auto blocks = code.encode(file);
  for (size_t failed = 0; failed < k + l; ++failed) {
    const auto helpers = code.repair_helpers(failed);
    EXPECT_EQ(helpers.size(), k / l) << "locality must be k/l";
    const auto rebuilt = code.repair_block(failed, view(blocks, helpers));
    ASSERT_TRUE(rebuilt.has_value()) << code.name() << " block " << failed;
    EXPECT_EQ(*rebuilt, blocks[failed]);
  }
}

TEST_P(PyramidShapes, GlobalBlocksNeedKBlocks) {
  const auto [k, l, g] = GetParam();
  PyramidCode code(k, l, g);
  Rng rng(700 + k);
  const Buffer file = random_buffer(k * 24, rng);
  const auto blocks = code.encode(file);
  for (size_t failed = k + l; failed < code.num_blocks(); ++failed) {
    const auto helpers = code.repair_helpers(failed);
    EXPECT_EQ(helpers.size(), k);
    const auto rebuilt = code.repair_block(failed, view(blocks, helpers));
    ASSERT_TRUE(rebuilt.has_value());
    EXPECT_EQ(*rebuilt, blocks[failed]);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, PyramidShapes,
                         ::testing::Values(Shape{4, 2, 1}, Shape{4, 2, 2},
                                           Shape{4, 4, 1}, Shape{6, 2, 1},
                                           Shape{6, 3, 2}, Shape{8, 2, 1},
                                           Shape{8, 4, 2}, Shape{12, 2, 1},
                                           Shape{12, 3, 2}, Shape{4, 1, 1}));

TEST(Pyramid, DegeneratesToReedSolomonWhenLZero) {
  PyramidCode pyr(4, 0, 2);
  ReedSolomonCode rs(4, 2);
  EXPECT_EQ(pyr.num_blocks(), rs.num_blocks());
  EXPECT_EQ(pyr.guaranteed_tolerance(), rs.guaranteed_tolerance());
  Rng rng(1);
  const Buffer file = random_buffer(4 * 16, rng);
  EXPECT_EQ(pyr.encode(file), rs.encode(file));
}

TEST(Pyramid, PaperCounterexamplePatternUndecodable) {
  // Sec. III-B: with (4,2,1), losing both members of one local group plus
  // the global parity is NOT decodable (tolerance is g+1 = 2, not 3).
  PyramidCode code(4, 2, 1);
  // Lose data blocks 0, 1 (group 0) and global parity block 6.
  EXPECT_FALSE(code.decodable({2, 3, 4, 5}));
  // ...but losing one per group plus the global IS decodable.
  EXPECT_TRUE(code.decodable({1, 3, 4, 5}));
}

TEST(Pyramid, SomePatternsBeyondGuaranteeStillDecodable) {
  // "It is also possible to tolerate more than g+1 failures but not all
  // combinations of such failures."
  PyramidCode code(4, 2, 1);
  // Lose 3 blocks: one data block from each group + one local parity.
  EXPECT_TRUE(code.decodable({1, 3, 5, 6}));
}

TEST(Pyramid, LocalParityIsGroupCombination) {
  // Local parity row depends exactly on its own group's chunks.
  PyramidCode code(4, 2, 1);
  EXPECT_EQ(code.engine().row_support(4, 0), 2u);
  EXPECT_EQ(code.engine().row_support(5, 0), 2u);
  EXPECT_EQ(code.engine().row_support(6, 0), 4u);  // global touches all
}

TEST(Pyramid, GroupBookkeeping) {
  PyramidCode code(4, 2, 1);
  EXPECT_EQ(code.group_of(0), 0u);
  EXPECT_EQ(code.group_of(1), 0u);
  EXPECT_EQ(code.group_of(2), 1u);
  EXPECT_EQ(code.group_of(4), 0u);
  EXPECT_EQ(code.group_of(5), 1u);
  EXPECT_EQ(code.group_of(6), SIZE_MAX);
  EXPECT_EQ(code.group_blocks(0), (std::vector<size_t>{0, 1, 4}));
  EXPECT_EQ(code.group_blocks(1), (std::vector<size_t>{2, 3, 5}));
}

TEST(Pyramid, RejectsBadParameters) {
  EXPECT_THROW(PyramidCode(4, 3, 1), CheckError);  // 3 does not divide 4
  EXPECT_THROW(PyramidCode(0, 0, 1), CheckError);
}

TEST(Pyramid, StorageOverheadMatchesPaper) {
  // (k+l+g)/k × storage; for (4,2,1) that is 7/4 = 1.75×.
  PyramidCode code(4, 2, 1);
  EXPECT_EQ(code.num_blocks(), 7u);
  EXPECT_DOUBLE_EQ(static_cast<double>(code.num_blocks()) / code.k(), 1.75);
}

TEST(Pyramid, Fig1DiskIoComparison) {
  // The paper's Fig. 1: reconstructing a data block reads 4 blocks with
  // (4,2) RS but only 2 with the locally repairable code.
  ReedSolomonCode rs(4, 2);
  PyramidCode lrc(4, 2, 1);
  EXPECT_EQ(rs.repair_helpers(0).size(), 4u);
  EXPECT_EQ(lrc.repair_helpers(0).size(), 2u);
}

}  // namespace
}  // namespace galloper::codes
