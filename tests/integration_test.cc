// Cross-module integration: the extension codes driven through the full
// storage/analytics stack, end to end.
#include <gtest/gtest.h>

#include "codes/carousel.h"
#include "core/all_symbol.h"
#include "core/galloper.h"
#include "core/input_format.h"
#include "mr/framework.h"
#include "mr/wordcount.h"
#include "scenario/scenario.h"
#include "store/file_store.h"
#include "store/recovery.h"
#include "util/check.h"
#include "util/rng.h"

namespace galloper {
namespace {

TEST(Integration, AllSymbolCodeThroughFileStoreAndRecovery) {
  core::AllSymbolGalloperCode code(4, 2, 2);
  sim::Simulation simulation;
  sim::Cluster cluster(simulation, code.num_blocks(), sim::ServerSpec{});
  store::FileStore fs(cluster, code);
  Rng rng(1);
  const Buffer file = random_buffer(code.engine().num_chunks() * 64, rng);
  const auto id = fs.write(file);

  // Kill a global parity and the extra block — both repair locally (g
  // reads) under the extension.
  fs.fail_server(6);
  fs.fail_server(8);
  EXPECT_TRUE(fs.all_recoverable());
  for (size_t s : {6u, 8u}) fs.revive_server(s);
  store::RecoveryManager mgr(simulation, fs);
  const auto report = mgr.recover_all();
  EXPECT_EQ(report.blocks_repaired, 2u);
  EXPECT_EQ(*fs.read_original_only(id), file);
  EXPECT_TRUE(fs.scrub().empty());
}

TEST(Integration, AllSymbolCodeRunsAnalyticsOnAllDataBearingBlocks) {
  core::AllSymbolGalloperCode code(4, 2, 1);
  Rng rng(2);
  const size_t chunk = mr::kWordCountRecordBytes * 4;
  const Buffer corpus =
      mr::generate_text(code.engine().num_chunks() * chunk, rng);
  const auto blocks = code.encode(corpus);
  core::InputFormat fmt(code, blocks[0].size());
  // 7 data-bearing blocks; the extra block holds no original data.
  EXPECT_EQ(fmt.splits().size(), 7u);
  EXPECT_EQ(fmt.original_bytes_in_block(7), 0u);

  mr::WordCountMapper mapper;
  mr::WordCountReducer reducer;
  mr::LocalRunner runner(mapper, reducer);
  std::vector<ConstByteSpan> spans(blocks.begin(), blocks.end());
  EXPECT_EQ(runner.run(fmt, spans), runner.run_plain(corpus));
}

TEST(Integration, CarouselThroughFileStore) {
  codes::CarouselCode code(4, 2);
  sim::Simulation simulation;
  sim::Cluster cluster(simulation, 6, sim::ServerSpec{});
  store::FileStore fs(cluster, code);
  Rng rng(3);
  const Buffer file = random_buffer(code.engine().num_chunks() * 32, rng);
  const auto id = fs.write(file);
  fs.fail_server(0);
  fs.fail_server(5);
  EXPECT_TRUE(fs.all_recoverable());
  EXPECT_EQ(*fs.read(id), file);
  fs.revive_server(0);
  const auto helpers = fs.repair(id, 0);
  ASSERT_TRUE(helpers.has_value());
  EXPECT_EQ(helpers->size(), 4u) << "Carousel repairs like Reed-Solomon";
}

TEST(Integration, ScenarioRunsOnAllSymbolCode) {
  core::AllSymbolGalloperCode code(4, 2, 1);
  scenario::ScenarioConfig config;
  config.num_files = 2;
  config.file_bytes = 4096;
  config.num_jobs = 6;
  config.seed = 5;
  config.job_config.max_split_bytes = 1ull << 40;
  const auto r = scenario::run_scenario(code, config);
  EXPECT_EQ(r.jobs_run, 6u);
  EXPECT_TRUE(r.all_files_intact || r.data_loss_events > 0);
}

TEST(Integration, UpdateSurvivesSubsequentRepair) {
  // Update parity via delta, then lose and repair a block: the repaired
  // bytes must reflect the update.
  core::GalloperCode code(4, 2, 1);
  sim::Simulation simulation;
  sim::Cluster cluster(simulation, 7, sim::ServerSpec{});
  store::FileStore fs(cluster, code);
  Rng rng(6);
  const size_t chunk = 256;
  Buffer file = random_buffer(code.engine().num_chunks() * chunk, rng);
  const auto id = fs.write(file);

  const Buffer fresh = random_buffer(chunk, rng);
  fs.update_range(id, 2 * chunk, fresh);
  std::copy(fresh.begin(), fresh.end(),
            file.begin() + static_cast<ptrdiff_t>(2 * chunk));

  fs.fail_server(0);  // chunk 2 lives in block 0
  fs.revive_server(0);
  ASSERT_TRUE(fs.repair(id, 0).has_value());
  EXPECT_EQ(*fs.read_original_only(id), file);
  EXPECT_TRUE(fs.scrub().empty());
}

}  // namespace
}  // namespace galloper
