// Backend-equivalence tests for the GF(2^8) region kernels: every available
// ISA level (scalar / SSSE3 / AVX2) must produce bit-identical output for
// random sizes 0–4096, misaligned offsets, and odd tails. The scalar
// per-byte field ops (gf::mul) are the reference — the scalar *kernels* are
// themselves under test.
#include <gtest/gtest.h>

#include <vector>

#include "gf/gf256.h"
#include "gf/region.h"
#include "gf/region_dispatch.h"
#include "util/bytes.h"
#include "util/check.h"
#include "util/rng.h"

namespace galloper::gf {
namespace {

using galloper::Buffer;
using galloper::CheckError;
using galloper::Rng;
using galloper::random_buffer;

// Restores the dispatched backend after each test so forcing never leaks.
class RegionSimdTest : public ::testing::Test {
 protected:
  void TearDown() override { force_isa(best_available_isa()); }
};

// Random (size, offset) pairs covering empty, sub-vector, odd-tail, and
// vector-width-straddling regions at misaligned addresses.
struct Region {
  size_t size;
  size_t offset;
};

std::vector<Region> random_regions(Rng& rng) {
  std::vector<Region> out;
  for (size_t s : {0u, 1u, 15u, 16u, 17u, 31u, 32u, 33u, 63u, 64u, 65u,
                   255u, 1000u, 4095u, 4096u})
    out.push_back({s, 0});
  for (int i = 0; i < 60; ++i)
    out.push_back({rng.next_below(4097), rng.next_below(64)});
  return out;
}

TEST_F(RegionSimdTest, ReportsAvailability) {
  // Scalar is always first and always available.
  const auto isas = available_isas();
  ASSERT_FALSE(isas.empty());
  EXPECT_EQ(isas.front(), Isa::kScalar);
  for (Isa isa : isas) EXPECT_TRUE(isa_available(isa)) << isa_name(isa);
  EXPECT_TRUE(isa_available(best_available_isa()));
}

TEST_F(RegionSimdTest, ForcingUnavailableBackendThrows) {
  for (Isa isa : {Isa::kSsse3, Isa::kAvx2}) {
    if (!isa_available(isa)) {
      EXPECT_THROW(force_isa(isa), CheckError);
    }
  }
}

TEST_F(RegionSimdTest, ForcedBackendIsReported) {
  for (Isa isa : available_isas()) {
    force_isa(isa);
    EXPECT_EQ(active_isa(), isa);
  }
}

TEST_F(RegionSimdTest, MulRegionMatchesFieldReference) {
  Rng rng(101);
  for (Isa isa : available_isas()) {
    force_isa(isa);
    for (const Region& r : random_regions(rng)) {
      const Buffer src = random_buffer(r.offset + r.size, rng);
      Buffer dst(r.offset + r.size, 0xEE);
      const Elem c = static_cast<Elem>(rng.next_below(256));
      mul_region(std::span(dst).subspan(r.offset),
                 c, std::span<const uint8_t>(src).subspan(r.offset));
      for (size_t i = r.offset; i < dst.size(); ++i)
        ASSERT_EQ(dst[i], mul(c, src[i]))
            << isa_name(isa) << " c=" << unsigned(c) << " n=" << r.size
            << " off=" << r.offset << " i=" << i;
    }
  }
}

TEST_F(RegionSimdTest, MulAccRegionMatchesFieldReference) {
  Rng rng(102);
  for (Isa isa : available_isas()) {
    force_isa(isa);
    for (const Region& r : random_regions(rng)) {
      const Buffer src = random_buffer(r.offset + r.size, rng);
      const Buffer base = random_buffer(r.offset + r.size, rng);
      Buffer dst = base;
      const Elem c = static_cast<Elem>(rng.next_below(256));
      mul_acc_region(std::span(dst).subspan(r.offset),
                     c, std::span<const uint8_t>(src).subspan(r.offset));
      for (size_t i = r.offset; i < dst.size(); ++i)
        ASSERT_EQ(dst[i], add(base[i], mul(c, src[i])))
            << isa_name(isa) << " c=" << unsigned(c) << " n=" << r.size
            << " off=" << r.offset << " i=" << i;
    }
  }
}

TEST_F(RegionSimdTest, XorRegionMatchesFieldReference) {
  Rng rng(103);
  for (Isa isa : available_isas()) {
    force_isa(isa);
    for (const Region& r : random_regions(rng)) {
      const Buffer src = random_buffer(r.offset + r.size, rng);
      const Buffer base = random_buffer(r.offset + r.size, rng);
      Buffer dst = base;
      xor_region(std::span(dst).subspan(r.offset),
                 std::span<const uint8_t>(src).subspan(r.offset));
      for (size_t i = r.offset; i < dst.size(); ++i)
        ASSERT_EQ(dst[i], base[i] ^ src[i]) << isa_name(isa);
    }
  }
}

TEST_F(RegionSimdTest, ScaleRegionMatchesFieldReference) {
  Rng rng(104);
  for (Isa isa : available_isas()) {
    force_isa(isa);
    for (const Region& r : random_regions(rng)) {
      const Buffer orig = random_buffer(r.offset + r.size, rng);
      Buffer dst = orig;
      const Elem c = static_cast<Elem>(rng.next_below(256));
      scale_region(std::span(dst).subspan(r.offset), c);
      for (size_t i = r.offset; i < dst.size(); ++i)
        ASSERT_EQ(dst[i], mul(c, orig[i])) << isa_name(isa);
    }
  }
}

// The fused multi-source kernel against a term-by-term reference, covering
// group sizes 1..9 (exercising mad4/mad3/mad2/mad1 splits), zero and one
// coefficients, and misaligned odd-tail regions.
TEST_F(RegionSimdTest, MulAccMultiMatchesTermByTerm) {
  Rng rng(105);
  for (Isa isa : available_isas()) {
    force_isa(isa);
    for (size_t nsrc = 1; nsrc <= 9; ++nsrc) {
      for (int trial = 0; trial < 12; ++trial) {
        const size_t n = rng.next_below(4097);
        const size_t off = rng.next_below(48);
        std::vector<Buffer> srcs;
        std::vector<std::span<const uint8_t>> views;
        std::vector<Elem> coeffs;
        for (size_t j = 0; j < nsrc; ++j) {
          srcs.push_back(random_buffer(off + n, rng));
          // Bias towards the special values the kernel must handle.
          const unsigned pick = rng.next_below(8);
          coeffs.push_back(pick == 0   ? Elem{0}
                           : pick == 1 ? Elem{1}
                                       : static_cast<Elem>(
                                             rng.next_below(256)));
        }
        for (const Buffer& s : srcs)
          views.push_back(std::span<const uint8_t>(s).subspan(off));
        const Buffer base = random_buffer(off + n, rng);

        Buffer expect = base;
        for (size_t j = 0; j < nsrc; ++j)
          for (size_t i = 0; i < n; ++i)
            expect[off + i] ^= mul(coeffs[j], srcs[j][off + i]);

        Buffer dst = base;
        mul_acc_region_multi(std::span(dst).subspan(off), coeffs,
                             views.data(), views.size());
        ASSERT_EQ(dst, expect)
            << isa_name(isa) << " nsrc=" << nsrc << " n=" << n
            << " off=" << off;
      }
    }
  }
}

// The overwrite-mode fused kernel: dst = Σ c_j·src_j into a buffer of
// garbage, never read. Same group-size/coefficient coverage as the
// accumulate form, plus the all-zero-coefficient and nsrc = 0 edge cases
// (both must ZERO dst, the only time overwrite mode writes zeros).
TEST_F(RegionSimdTest, MulMultiOverwritesWithoutReadingDst) {
  Rng rng(107);
  for (Isa isa : available_isas()) {
    force_isa(isa);
    for (size_t nsrc = 0; nsrc <= 9; ++nsrc) {
      for (int trial = 0; trial < 12; ++trial) {
        const size_t n = rng.next_below(4097);
        const size_t off = rng.next_below(48);
        std::vector<Buffer> srcs;
        std::vector<std::span<const uint8_t>> views;
        std::vector<Elem> coeffs;
        for (size_t j = 0; j < nsrc; ++j) {
          srcs.push_back(random_buffer(off + n, rng));
          const unsigned pick = rng.next_below(8);
          // trial 0: every coefficient zero (dst must still be zeroed).
          coeffs.push_back(trial == 0  ? Elem{0}
                           : pick == 0 ? Elem{0}
                           : pick == 1 ? Elem{1}
                                       : static_cast<Elem>(
                                             rng.next_below(256)));
        }
        for (const Buffer& s : srcs)
          views.push_back(std::span<const uint8_t>(s).subspan(off));

        Buffer expect(off + n, 0);
        for (size_t j = 0; j < nsrc; ++j)
          for (size_t i = 0; i < n; ++i)
            expect[off + i] ^= mul(coeffs[j], srcs[j][off + i]);

        // dst starts as garbage; bytes before `off` must stay untouched.
        Buffer dst = random_buffer(off + n, rng);
        std::copy(dst.begin(),
                  dst.begin() + static_cast<ptrdiff_t>(off), expect.begin());
        mul_region_multi(std::span(dst).subspan(off), coeffs, views.data(),
                         views.size());
        ASSERT_EQ(dst, expect)
            << isa_name(isa) << " nsrc=" << nsrc << " n=" << n
            << " off=" << off;
      }
    }
  }
}

// Cross-backend bit-identity on one large awkwardly-sized buffer: whatever
// the scalar kernels produce, the SIMD kernels must reproduce exactly.
TEST_F(RegionSimdTest, BackendsAreBitIdentical) {
  Rng rng(106);
  const size_t n = 1 << 16 | 13;  // 64 KiB plus an odd tail
  const Buffer src = random_buffer(n, rng);
  const Buffer base = random_buffer(n, rng);

  force_isa(Isa::kScalar);
  Buffer golden = base;
  mul_acc_region(golden, 0x57, src);

  for (Isa isa : available_isas()) {
    force_isa(isa);
    Buffer dst = base;
    mul_acc_region(dst, 0x57, src);
    ASSERT_EQ(dst, golden) << isa_name(isa);
  }
}

}  // namespace
}  // namespace galloper::gf
