#include <gtest/gtest.h>

#include <cmath>

#include "lp/simplex.h"
#include "util/check.h"
#include "util/rng.h"

namespace galloper::lp {
namespace {

constexpr double kTol = 1e-7;

TEST(Simplex, SimpleMaximizationAsMinimization) {
  // max 3x + 2y s.t. x + y ≤ 4, x ≤ 2  →  min −3x − 2y.
  LinearProgram p(2);
  p.objective = {-3, -2};
  p.add_constraint({1, 1}, Relation::kLessEqual, 4);
  p.add_upper_bound(0, 2);
  const auto s = solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.x[0], 2, kTol);
  EXPECT_NEAR(s.x[1], 2, kTol);
  EXPECT_NEAR(s.objective, -10, kTol);
}

TEST(Simplex, TrivialMinimumAtZero) {
  LinearProgram p(3);
  p.objective = {1, 1, 1};
  p.add_constraint({1, 1, 1}, Relation::kLessEqual, 10);
  const auto s = solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 0, kTol);
}

TEST(Simplex, EqualityConstraint) {
  // min x + 2y s.t. x + y = 5, x ≤ 3.
  LinearProgram p(2);
  p.objective = {1, 2};
  p.add_constraint({1, 1}, Relation::kEqual, 5);
  p.add_upper_bound(0, 3);
  const auto s = solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.x[0], 3, kTol);
  EXPECT_NEAR(s.x[1], 2, kTol);
  EXPECT_NEAR(s.objective, 7, kTol);
}

TEST(Simplex, GreaterEqualConstraint) {
  // min 2x + y s.t. x + y ≥ 4, y ≤ 1  →  x = 3, y = 1.
  LinearProgram p(2);
  p.objective = {2, 1};
  p.add_constraint({1, 1}, Relation::kGreaterEqual, 4);
  p.add_upper_bound(1, 1);
  const auto s = solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.x[0], 3, kTol);
  EXPECT_NEAR(s.x[1], 1, kTol);
}

TEST(Simplex, DetectsInfeasible) {
  // x ≥ 5 and x ≤ 2.
  LinearProgram p(1);
  p.objective = {1};
  p.add_constraint({1}, Relation::kGreaterEqual, 5);
  p.add_upper_bound(0, 2);
  EXPECT_EQ(solve(p).status, LpStatus::kInfeasible);
}

TEST(Simplex, DetectsUnbounded) {
  // min −x with only x ≥ 0 (and one irrelevant constraint).
  LinearProgram p(1);
  p.objective = {-1};
  p.add_constraint({-1}, Relation::kLessEqual, 0);  // always true for x ≥ 0
  EXPECT_EQ(solve(p).status, LpStatus::kUnbounded);
}

TEST(Simplex, NegativeRhsNormalization) {
  // −x ≤ −3 means x ≥ 3; min x → 3.
  LinearProgram p(1);
  p.objective = {1};
  p.add_constraint({-1}, Relation::kLessEqual, -3);
  const auto s = solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.x[0], 3, kTol);
}

TEST(Simplex, DegenerateVertexTerminates) {
  // Multiple constraints meeting at the same vertex (degeneracy) must not
  // cycle thanks to Bland's rule.
  LinearProgram p(2);
  p.objective = {-1, -1};
  p.add_constraint({1, 0}, Relation::kLessEqual, 1);
  p.add_constraint({0, 1}, Relation::kLessEqual, 1);
  p.add_constraint({1, 1}, Relation::kLessEqual, 2);
  p.add_constraint({2, 1}, Relation::kLessEqual, 3);
  const auto s = solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, -2, kTol);
}

TEST(Simplex, RedundantEqualityRows) {
  // The same equality twice: phase 1 leaves an artificial basic at zero.
  LinearProgram p(2);
  p.objective = {1, 1};
  p.add_constraint({1, 1}, Relation::kEqual, 2);
  p.add_constraint({1, 1}, Relation::kEqual, 2);
  const auto s = solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.x[0] + s.x[1], 2, kTol);
}

TEST(Simplex, WrongWidthThrows) {
  LinearProgram p(2);
  EXPECT_THROW(p.add_constraint({1.0}, Relation::kLessEqual, 1),
               galloper::CheckError);
}

// Brute-force cross-check on random small LPs: enumerate basic feasible
// solutions by solving all constraint-pair intersections and compare.
TEST(Simplex, MatchesBruteForceOnRandom2DLps) {
  Rng rng(99);
  int compared = 0;
  for (int trial = 0; trial < 200; ++trial) {
    LinearProgram p(2);
    p.objective = {rng.next_double() * 4 - 2, rng.next_double() * 4 - 2};
    const int m = 3 + static_cast<int>(rng.next_below(3));
    struct Row {
      double a, b, c;
    };
    std::vector<Row> rows;
    for (int i = 0; i < m; ++i) {
      Row r{rng.next_double() * 2 - 0.5, rng.next_double() * 2 - 0.5,
            rng.next_double() * 5 + 0.5};
      rows.push_back(r);
      p.add_constraint({r.a, r.b}, Relation::kLessEqual, r.c);
    }
    const auto s = solve(p);
    if (s.status == LpStatus::kUnbounded) continue;
    ASSERT_TRUE(s.optimal());  // origin is feasible (c > 0)

    // Brute force: candidate vertices = origin, axis intercepts, and all
    // pairwise intersections; keep feasible ones, take the best objective.
    std::vector<std::pair<double, double>> cand{{0, 0}};
    for (const auto& r : rows) {
      if (std::fabs(r.a) > 1e-12) cand.push_back({r.c / r.a, 0});
      if (std::fabs(r.b) > 1e-12) cand.push_back({0, r.c / r.b});
    }
    for (int i = 0; i < m; ++i)
      for (int j = i + 1; j < m; ++j) {
        const double det = rows[i].a * rows[j].b - rows[j].a * rows[i].b;
        if (std::fabs(det) < 1e-9) continue;
        const double x =
            (rows[i].c * rows[j].b - rows[j].c * rows[i].b) / det;
        const double y =
            (rows[i].a * rows[j].c - rows[j].a * rows[i].c) / det;
        cand.push_back({x, y});
      }
    double best = 0;  // objective at origin
    for (auto [x, y] : cand) {
      if (x < -1e-9 || y < -1e-9) continue;
      bool ok = true;
      for (const auto& r : rows)
        ok &= (r.a * x + r.b * y <= r.c + 1e-7);
      if (!ok) continue;
      best = std::min(best, p.objective[0] * x + p.objective[1] * y);
    }
    EXPECT_NEAR(s.objective, best, 1e-5) << "trial " << trial;
    ++compared;
  }
  EXPECT_GT(compared, 100);
}

}  // namespace
}  // namespace galloper::lp
