#include <gtest/gtest.h>

#include "codes/block_group.h"
#include "codes/reed_solomon.h"
#include "core/galloper.h"
#include "util/check.h"
#include "util/rng.h"

namespace galloper::codes {
namespace {

using galloper::Buffer;
using galloper::CheckError;
using galloper::ConstByteSpan;
using galloper::Rng;
using galloper::random_buffer;

std::vector<std::map<size_t, ConstByteSpan>> all_blocks(
    const BlockGroupCodec::EncodedFile& enc) {
  std::vector<std::map<size_t, ConstByteSpan>> out(enc.groups.size());
  for (size_t g = 0; g < enc.groups.size(); ++g)
    for (size_t b = 0; b < enc.groups[g].size(); ++b)
      out[g].emplace(b, enc.groups[g][b]);
  return out;
}

class BlockGroupTest : public ::testing::Test {
 protected:
  core::GalloperCode code{4, 2, 1};
  // 28 chunks × 16 bytes per group.
  BlockGroupCodec codec{code, 28 * 16};
  Rng rng{42};
};

TEST_F(BlockGroupTest, MultiGroupRoundTripExactSize) {
  const Buffer file = random_buffer(3 * codec.group_data_bytes(), rng);
  const auto enc = codec.encode(file);
  EXPECT_EQ(enc.groups.size(), 3u);
  EXPECT_EQ(codec.num_groups(file.size()), 3u);
  const auto decoded = codec.decode(file.size(), all_blocks(enc));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, file);
}

TEST_F(BlockGroupTest, PaddedTailGroupRoundTrip) {
  // 2.5 groups → 3 groups with a padded tail; exact size restored.
  const Buffer file =
      random_buffer(2 * codec.group_data_bytes() + 117, rng);
  const auto enc = codec.encode(file);
  EXPECT_EQ(enc.groups.size(), 3u);
  const auto decoded = codec.decode(file.size(), all_blocks(enc));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, file);
}

TEST_F(BlockGroupTest, TinyFileSingleGroup) {
  const Buffer file = random_buffer(10, rng);
  const auto enc = codec.encode(file);
  EXPECT_EQ(enc.groups.size(), 1u);
  const auto decoded = codec.decode(file.size(), all_blocks(enc));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, file);
}

TEST_F(BlockGroupTest, DecodesAroundPerGroupFailures) {
  const Buffer file = random_buffer(2 * codec.group_data_bytes(), rng);
  const auto enc = codec.encode(file);
  auto avail = all_blocks(enc);
  // Different failures in different groups — independence means each group
  // only needs to handle its own.
  avail[0].erase(0);
  avail[0].erase(6);
  avail[1].erase(3);
  avail[1].erase(4);
  const auto decoded = codec.decode(file.size(), avail);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, file);
}

TEST_F(BlockGroupTest, UndecodableGroupFailsWholeDecode) {
  const Buffer file = random_buffer(2 * codec.group_data_bytes(), rng);
  const auto enc = codec.encode(file);
  auto avail = all_blocks(enc);
  avail[1].erase(0);
  avail[1].erase(1);
  avail[1].erase(6);  // group 0's wipeout pattern in group 1
  EXPECT_FALSE(codec.decode(file.size(), avail).has_value());
}

TEST_F(BlockGroupTest, RepairWithinOneGroup) {
  const Buffer file = random_buffer(2 * codec.group_data_bytes(), rng);
  const auto enc = codec.encode(file);
  const auto helpers = code.repair_helpers(1);
  std::map<size_t, ConstByteSpan> view;
  for (size_t h : helpers) view.emplace(h, enc.groups[1][h]);
  const auto rebuilt = codec.repair(1, 1, view);
  ASSERT_TRUE(rebuilt.has_value());
  EXPECT_EQ(*rebuilt, enc.groups[1][1]);
}

TEST_F(BlockGroupTest, BlockBytesConsistent) {
  EXPECT_EQ(codec.block_bytes(), 16u * 7);  // chunk 16 × N 7
  const auto enc = codec.encode(random_buffer(100, rng));
  EXPECT_EQ(enc.groups[0][0].size(), codec.block_bytes());
}

TEST(BlockGroup, WorksWithReedSolomonToo) {
  ReedSolomonCode rs(4, 2);
  BlockGroupCodec codec(rs, 4 * 100);
  Rng rng(1);
  const Buffer file = random_buffer(950, rng);
  const auto enc = codec.encode(file);
  EXPECT_EQ(enc.groups.size(), 3u);
  std::vector<std::map<size_t, ConstByteSpan>> avail(3);
  for (size_t g = 0; g < 3; ++g)
    for (size_t b = 2; b < 6; ++b)  // lose blocks 0 and 1 everywhere
      avail[g].emplace(b, enc.groups[g][b]);
  const auto decoded = codec.decode(file.size(), avail);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, file);
}

TEST(BlockGroup, RejectsBadParameters) {
  ReedSolomonCode rs(4, 2);
  EXPECT_THROW(BlockGroupCodec(rs, 0), CheckError);
  EXPECT_THROW(BlockGroupCodec(rs, 6), CheckError);  // not multiple of 4
  BlockGroupCodec codec(rs, 400);
  EXPECT_THROW(codec.encode(Buffer{}), CheckError);
  const Buffer file(500);
  const auto enc = codec.encode(file);
  std::vector<std::map<size_t, ConstByteSpan>> wrong(1);
  EXPECT_THROW(codec.decode(file.size(), wrong), CheckError);
}

}  // namespace
}  // namespace galloper::codes
