#include <gtest/gtest.h>

#include "gf/gf256.h"
#include "gf/region.h"
#include "util/bytes.h"
#include "util/check.h"
#include "util/rng.h"

namespace galloper::gf {
namespace {

using galloper::Buffer;
using galloper::CheckError;
using galloper::Rng;
using galloper::random_buffer;

// ---------- field axioms (exhaustive or sampled over the whole field) ----

TEST(Gf256, TableMatchesReferenceMultiply) {
  for (unsigned a = 0; a < 256; ++a)
    for (unsigned b = 0; b < 256; ++b)
      ASSERT_EQ(mul(a, b), slow_mul(static_cast<Elem>(a),
                                    static_cast<Elem>(b)));
}

TEST(Gf256, AdditionIsXor) {
  EXPECT_EQ(add(0x0f, 0xf0), 0xff);
  EXPECT_EQ(add(0xab, 0xab), 0x00);  // characteristic 2
  EXPECT_EQ(sub(0x13, 0x37), add(0x13, 0x37));
}

TEST(Gf256, MultiplicationCommutative) {
  for (unsigned a = 0; a < 256; ++a)
    for (unsigned b = a; b < 256; ++b) ASSERT_EQ(mul(a, b), mul(b, a));
}

TEST(Gf256, MultiplicationAssociativeSampled) {
  Rng rng(1);
  for (int i = 0; i < 20000; ++i) {
    const Elem a = static_cast<Elem>(rng.next_below(256));
    const Elem b = static_cast<Elem>(rng.next_below(256));
    const Elem c = static_cast<Elem>(rng.next_below(256));
    ASSERT_EQ(mul(mul(a, b), c), mul(a, mul(b, c)));
  }
}

TEST(Gf256, DistributiveSampled) {
  Rng rng(2);
  for (int i = 0; i < 20000; ++i) {
    const Elem a = static_cast<Elem>(rng.next_below(256));
    const Elem b = static_cast<Elem>(rng.next_below(256));
    const Elem c = static_cast<Elem>(rng.next_below(256));
    ASSERT_EQ(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
  }
}

TEST(Gf256, OneIsMultiplicativeIdentity) {
  for (unsigned a = 0; a < 256; ++a) ASSERT_EQ(mul(a, 1), a);
}

TEST(Gf256, ZeroAnnihilates) {
  for (unsigned a = 0; a < 256; ++a) ASSERT_EQ(mul(a, 0), 0);
}

TEST(Gf256, InverseExhaustive) {
  for (unsigned a = 1; a < 256; ++a)
    ASSERT_EQ(mul(a, inv(static_cast<Elem>(a))), 1) << "a=" << a;
}

TEST(Gf256, InverseOfZeroThrows) { EXPECT_THROW(inv(0), CheckError); }

TEST(Gf256, DivisionInvertsMultiplication) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const Elem a = static_cast<Elem>(rng.next_below(256));
    const Elem b = static_cast<Elem>(1 + rng.next_below(255));
    ASSERT_EQ(div(mul(a, b), b), a);
  }
}

TEST(Gf256, DivisionByZeroThrows) { EXPECT_THROW(div(5, 0), CheckError); }

TEST(Gf256, PowMatchesRepeatedMultiplication) {
  for (unsigned a = 0; a < 256; ++a) {
    Elem acc = 1;
    for (uint64_t e = 0; e < 10; ++e) {
      ASSERT_EQ(pow(static_cast<Elem>(a), e), acc) << "a=" << a << " e=" << e;
      acc = mul(acc, static_cast<Elem>(a));
    }
  }
}

TEST(Gf256, GeneratorHasFullOrder) {
  // g = 2 generates the multiplicative group: 2^255 = 1 and 2^m ≠ 1 for
  // any proper divisor m of 255.
  EXPECT_EQ(pow(kGenerator, 255), 1);
  for (uint64_t m : {1, 3, 5, 15, 17, 51, 85})
    EXPECT_NE(pow(kGenerator, m), 1) << "order divides " << m;
}

TEST(Gf256, FrobeniusSquareIsLinear) {
  // In characteristic 2, (a+b)^2 = a^2 + b^2.
  for (unsigned a = 0; a < 256; ++a)
    for (unsigned b = 0; b < 256; b += 7)
      ASSERT_EQ(pow(add(a, b), 2), add(pow(a, 2), pow(b, 2)));
}

// ---------- region kernels ----------

class RegionTest : public ::testing::TestWithParam<size_t> {};

TEST_P(RegionTest, XorRegionMatchesScalar) {
  const size_t n = GetParam();
  Rng rng(42);
  Buffer a = random_buffer(n, rng), b = random_buffer(n, rng);
  Buffer expect(n);
  for (size_t i = 0; i < n; ++i) expect[i] = a[i] ^ b[i];
  xor_region(a, b);
  EXPECT_EQ(a, expect);
}

TEST_P(RegionTest, MulRegionMatchesScalar) {
  const size_t n = GetParam();
  Rng rng(43);
  const Buffer src = random_buffer(n, rng);
  for (Elem c : {Elem{0}, Elem{1}, Elem{2}, Elem{0x53}, Elem{0xff}}) {
    Buffer dst(n, 0xEE);
    mul_region(dst, c, src);
    for (size_t i = 0; i < n; ++i)
      ASSERT_EQ(dst[i], mul(c, src[i])) << "c=" << unsigned(c) << " i=" << i;
  }
}

TEST_P(RegionTest, MulAccRegionMatchesScalar) {
  const size_t n = GetParam();
  Rng rng(44);
  const Buffer src = random_buffer(n, rng);
  const Buffer base = random_buffer(n, rng);
  for (Elem c : {Elem{0}, Elem{1}, Elem{7}, Elem{0x80}}) {
    Buffer dst = base;
    mul_acc_region(dst, c, src);
    for (size_t i = 0; i < n; ++i)
      ASSERT_EQ(dst[i], add(base[i], mul(c, src[i])));
  }
}

TEST_P(RegionTest, ScaleRegionMatchesScalar) {
  const size_t n = GetParam();
  Rng rng(45);
  const Buffer orig = random_buffer(n, rng);
  for (Elem c : {Elem{0}, Elem{1}, Elem{3}, Elem{0xa5}}) {
    Buffer dst = orig;
    scale_region(dst, c);
    for (size_t i = 0; i < n; ++i) ASSERT_EQ(dst[i], mul(c, orig[i]));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RegionTest,
                         ::testing::Values(0, 1, 7, 8, 9, 63, 64, 65, 1000,
                                           4096));

// Size preconditions on the region kernels are GALLOPER_DCHECKs: enforced
// in debug builds, compiled out under NDEBUG so the hot path pays no
// per-call branch.
#ifndef NDEBUG
TEST(Region, SizeMismatchThrows) {
  Buffer a(8), b(9);
  EXPECT_THROW(xor_region(a, b), CheckError);
  EXPECT_THROW(mul_region(a, 3, b), CheckError);
  EXPECT_THROW(mul_acc_region(a, 3, b), CheckError);
}
#endif

TEST(Region, DotProduct) {
  const std::vector<Elem> a{1, 2, 3};
  const std::vector<Elem> b{4, 5, 6};
  Elem expect = 0;
  for (size_t i = 0; i < 3; ++i) expect = add(expect, mul(a[i], b[i]));
  EXPECT_EQ(dot(a, b), expect);
}

TEST(Region, DotOfOrthogonalVectorsIsZero) {
  const std::vector<Elem> a{1, 1};
  const std::vector<Elem> b{5, 5};  // a·b = 5 + 5 = 0
  EXPECT_EQ(dot(a, b), 0);
}

// Linearity of the full region pipeline: encoding twice and XORing equals
// encoding the XOR — the property erasure codes rely on.
TEST(Region, MulAccIsLinearOverInputs) {
  Rng rng(46);
  const size_t n = 512;
  const Buffer x = random_buffer(n, rng), y = random_buffer(n, rng);
  Buffer xy(n);
  for (size_t i = 0; i < n; ++i) xy[i] = x[i] ^ y[i];

  const Elem c = 0x37;
  Buffer ax(n, 0), ay(n, 0), axy(n, 0);
  mul_acc_region(ax, c, x);
  mul_acc_region(ay, c, y);
  mul_acc_region(axy, c, xy);
  for (size_t i = 0; i < n; ++i) ASSERT_EQ(axy[i], ax[i] ^ ay[i]);
}

}  // namespace
}  // namespace galloper::gf
