#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "codes/reed_solomon.h"
#include "core/galloper.h"
#include "store/file_store.h"
#include "store/recovery.h"
#include "util/check.h"
#include "util/rng.h"

namespace galloper::store {
namespace {

using galloper::Buffer;
using galloper::CheckError;
using galloper::Rng;
using galloper::random_buffer;

class FileStoreTest : public ::testing::Test {
 protected:
  sim::Simulation simulation;
  sim::Cluster cluster{simulation, 9, sim::ServerSpec{}};
  core::GalloperCode code{4, 2, 1};
  FileStore fs{cluster, code};
  Rng rng{123};

  Buffer make_file(size_t chunk = 128) {
    return random_buffer(code.engine().num_chunks() * chunk, rng);
  }
};

TEST_F(FileStoreTest, WriteThenReadRoundTrip) {
  const Buffer file = make_file();
  const FileId id = fs.write(file);
  const auto back = fs.read(id);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, file);
}

TEST_F(FileStoreTest, ReadOriginalOnlyFastPath) {
  const Buffer file = make_file();
  const FileId id = fs.write(file);
  const auto back = fs.read_original_only(id);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, file);
}

TEST_F(FileStoreTest, MultipleFilesIndependent) {
  const Buffer f1 = make_file(64), f2 = make_file(256);
  const FileId id1 = fs.write(f1);
  const FileId id2 = fs.write(f2);
  EXPECT_EQ(*fs.read(id1), f1);
  EXPECT_EQ(*fs.read(id2), f2);
  EXPECT_NE(fs.block_bytes(id1), fs.block_bytes(id2));
}

TEST_F(FileStoreTest, FailureHidesBlocksButReadStillWorks) {
  const Buffer file = make_file();
  const FileId id = fs.write(file);
  fs.fail_server(0);
  fs.fail_server(5);
  EXPECT_FALSE(fs.block_available(id, 0));
  EXPECT_FALSE(fs.block_available(id, 5));
  EXPECT_TRUE(fs.all_recoverable());
  const auto back = fs.read(id);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, file);
}

TEST_F(FileStoreTest, OriginalOnlyReadFailsWhenDataBlockDead) {
  const Buffer file = make_file();
  const FileId id = fs.write(file);
  fs.fail_server(3);  // every Galloper block holds original data
  EXPECT_FALSE(fs.read_original_only(id).has_value());
  EXPECT_TRUE(fs.read(id).has_value()) << "decoding path still works";
}

TEST_F(FileStoreTest, RepairUsesLocalHelpersWhenAlive) {
  const Buffer file = make_file();
  const FileId id = fs.write(file);
  fs.fail_server(2);
  fs.revive_server(2);
  const auto helpers = fs.repair(id, 2);
  ASSERT_TRUE(helpers.has_value());
  EXPECT_EQ(*helpers, code.repair_helpers(2)) << "k/l group peers";
  EXPECT_EQ(Buffer(fs.block(id, 2)->begin(), fs.block(id, 2)->end()),
            Buffer(code.encode(file)[2]));
}

TEST_F(FileStoreTest, RepairFallsBackWhenLocalHelperDead) {
  const Buffer file = make_file();
  const FileId id = fs.write(file);
  // Kill block 2 and one of its group peers (block 3): local repair of 2
  // is impossible, the generic path must kick in.
  fs.fail_server(2);
  fs.fail_server(3);
  fs.revive_server(2);
  const auto helpers = fs.repair(id, 2);
  ASSERT_TRUE(helpers.has_value());
  EXPECT_GT(helpers->size(), code.repair_helpers(2).size());
  EXPECT_EQ(*fs.read(id), file);
}

TEST_F(FileStoreTest, UnrecoverableAfterTooManyFailures) {
  const Buffer file = make_file();
  const FileId id = fs.write(file);
  fs.fail_server(0);
  fs.fail_server(1);
  fs.fail_server(6);  // group 0 wiped + global parity: gone for good
  EXPECT_FALSE(fs.all_recoverable());
  EXPECT_FALSE(fs.read(id).has_value());
  fs.revive_server(0);
  EXPECT_FALSE(fs.repair(id, 0).has_value());
}

TEST_F(FileStoreTest, RepairOntoDeadServerReturnsNullopt) {
  // Not a CHECK: the cluster repair queue races chaos kills, so a target
  // that died between scheduling and execution must be a recoverable
  // "retry after revive", not a contract violation.
  const Buffer file = make_file();
  const FileId id = fs.write(file);
  fs.fail_server(1);
  EXPECT_FALSE(fs.repair(id, 1).has_value());
  fs.revive_server(1);
  EXPECT_TRUE(fs.repair(id, 1).has_value());
  EXPECT_EQ(*fs.read(id), file);
}

// The revive-vs-in-flight-repair race, pinned deterministically: a repair
// rebuilds block 2, and the write-fault gate — which fires between the
// rebuild and the install, exactly the race window — kills the target
// server. Pre-fix (raw alive flag, no install re-check) the install landed
// on the DEAD server, so the subsequent revive_server "brought back" a
// block that revive's contract declares lost: silent resurrection. The
// liveness-epoch re-check makes the install abort instead.
TEST_F(FileStoreTest, KillDuringRepairInstallCannotResurrectAcrossRevive) {
  const Buffer file = make_file();
  const FileId id = fs.write(file);
  fs.corrupt_block(id, 2, 0);
  fs.scrub(/*quarantine=*/true);
  ASSERT_FALSE(fs.block_available(id, 2));

  fault::FaultInjector inj(7);
  inj.set_bit_flip_rate(1.0);  // every store-back consults the gate
  bool killed = false;
  inj.set_write_gate([&](size_t, size_t b) {
    if (b == 2 && !killed) {
      killed = true;
      fs.fail_server(2);  // the kill lands mid-repair, pre-install
    }
    return false;  // veto the flip itself: only the timing matters
  });
  fs.set_fault_injector(&inj);
  EXPECT_FALSE(fs.repair(id, 2).has_value())
      << "target died mid-repair: the stale install must be aborted";
  fs.set_fault_injector(nullptr);
  ASSERT_TRUE(killed);

  fs.revive_server(2);
  EXPECT_FALSE(fs.block_available(id, 2))
      << "revive brings a server back EMPTY — a repair that started before "
         "the kill must not have resurrected the block onto it";
  EXPECT_TRUE(fs.repair(id, 2).has_value());
  EXPECT_EQ(*fs.read(id), file);
}

// Same window, but a full kill/REVIVE cycle: to a raw alive flag the
// target looks untouched at install time, which is precisely why the flag
// was insufficient. The epoch (bumped twice by the cycle) forces the
// repair to discard the pre-cycle rebuild and run a fresh attempt against
// the new incarnation — observable as a second store-back (second vetoed
// write draw).
TEST_F(FileStoreTest, KillReviveCycleDuringRepairForcesFreshAttempt) {
  const Buffer file = make_file();
  const FileId id = fs.write(file);
  fs.corrupt_block(id, 2, 0);
  fs.scrub(/*quarantine=*/true);

  fault::FaultInjector inj(7);
  inj.set_bit_flip_rate(1.0);
  bool cycled = false;
  inj.set_write_gate([&](size_t, size_t b) {
    if (b == 2 && !cycled) {
      cycled = true;
      fs.fail_server(2);
      fs.revive_server(2);  // alive again — but a NEW incarnation
    }
    return false;
  });
  fs.set_fault_injector(&inj);
  const auto helpers = fs.repair(id, 2);
  fs.set_fault_injector(nullptr);
  ASSERT_TRUE(cycled);
  ASSERT_TRUE(helpers.has_value()) << "target is alive: the repair retries";
  EXPECT_EQ(inj.stats().write_vetoes, 2u)
      << "the post-cycle attempt must re-gather and re-install — installing "
         "the pre-cycle rebuild would resurrect bytes the revive declared "
         "lost";
  EXPECT_EQ(*fs.read(id), file);
}

// Concurrency hammer for the same race (the TSan matrix runs this with a
// 2-thread pool): one thread cycles kill/revive on the target while
// another keeps repairing the block. No interleaving may corrupt state,
// and once the chaos stops the block must heal bit-exact.
TEST_F(FileStoreTest, RepairRacesKillReviveHammer) {
  const Buffer file = make_file();
  const FileId id = fs.write(file);
  fs.corrupt_block(id, 2, 0);
  fs.scrub(/*quarantine=*/true);

  std::atomic<bool> stop{false};
  std::thread chaos([&] {
    for (size_t i = 0; i < 200 && !stop.load(); ++i) {
      fs.fail_server(2);
      std::this_thread::sleep_for(std::chrono::microseconds(50));
      fs.revive_server(2);
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    stop.store(true);
  });
  std::thread repairer([&] {
    while (!stop.load()) {
      try {
        fs.repair(id, 2);
      } catch (const fault::TransientError&) {
        // Incarnation churn exhausted one call's retries; call again.
      }
    }
  });
  chaos.join();
  repairer.join();

  // Chaos is over: whatever state the races left, one clean repair pass
  // must converge to the exact original bytes.
  fs.revive_server(2);
  if (!fs.block_available(id, 2)) {
    ASSERT_TRUE(fs.repair(id, 2).has_value());
  }
  EXPECT_EQ(*fs.read(id), file);
}

// read_range_nofault is the pinned-schedule fallback path: it must return
// exactly the bytes read_range would, while consuming ZERO injector
// decisions — the caller (StripedReader's stale-session fallback) already
// drew its fault schedule and must not re-draw a fresh one.
TEST_F(FileStoreTest, ReadRangeNofaultDrawsNoInjectorDecisions) {
  const Buffer file = make_file();
  const FileId id = fs.write(file);

  fault::FaultInjector inj(11);
  inj.set_read_failure_rate(0.3);
  inj.set_read_latency(0.5, 0.0001);
  fs.set_fault_injector(&inj);
  fs.set_block_cache(nullptr);

  // Clean path: identical bytes, zero draws.
  const auto before = inj.stats().decisions;
  const auto out = fs.read_range_nofault(id, 3, file.size() - 10);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, Buffer(file.begin() + 3, file.end() - 7));
  EXPECT_EQ(inj.stats().decisions, before);

  // Degraded path (quarantined block decoded around): still zero draws,
  // and no opportunistic self-heal repair (that would draw write faults).
  fs.corrupt_block(id, 1, 0);
  fs.scrub(/*quarantine=*/true);
  const auto repairs_before = fs.read_stats().auto_repairs;
  const auto out2 = fs.read_range_nofault(id, 0, file.size());
  ASSERT_TRUE(out2.has_value());
  EXPECT_EQ(*out2, file);
  EXPECT_EQ(inj.stats().decisions, before);
  EXPECT_EQ(fs.read_stats().auto_repairs, repairs_before);
  EXPECT_FALSE(fs.block_available(id, 1));

  // Contrast: the regular faulted read_range consumes decisions.
  ASSERT_TRUE(fs.read_range(id, 0, file.size()).has_value());
  EXPECT_GT(inj.stats().decisions, before);
  fs.set_fault_injector(nullptr);
}

TEST_F(FileStoreTest, RepairOfHealthyBlockIsNoop) {
  const FileId id = fs.write(make_file());
  const auto helpers = fs.repair(id, 0);
  ASSERT_TRUE(helpers.has_value());
  EXPECT_TRUE(helpers->empty());
}

// ---------- in-place updates ----------

TEST_F(FileStoreTest, UpdateRangeChangesFileAndKeepsConsistency) {
  const size_t chunk = 128;
  Buffer file = make_file(chunk);
  const FileId id = fs.write(file);
  // Overwrite chunks 3..5.
  Rng r2(9);
  const Buffer fresh = random_buffer(3 * chunk, r2);
  const auto touched = fs.update_range(id, 3 * chunk, fresh);
  EXPECT_FALSE(touched.empty());
  std::copy(fresh.begin(), fresh.end(),
            file.begin() + static_cast<ptrdiff_t>(3 * chunk));
  EXPECT_EQ(*fs.read_original_only(id), file);
  EXPECT_EQ(*fs.read(id), file) << "parity patched consistently";
  EXPECT_TRUE(fs.scrub().empty()) << "checksums refreshed";
}

TEST_F(FileStoreTest, UpdateThenDegradedReadSeesNewData) {
  const size_t chunk = 64;
  Buffer file = make_file(chunk);
  const FileId id = fs.write(file);
  Rng r2(10);
  const Buffer fresh = random_buffer(chunk, r2);
  fs.update_range(id, 0, fresh);
  std::copy(fresh.begin(), fresh.end(), file.begin());
  fs.fail_server(0);  // chunk 0 lives in block 0
  const auto degraded = fs.read(id);
  ASSERT_TRUE(degraded.has_value());
  EXPECT_EQ(*degraded, file);
}

TEST_F(FileStoreTest, UpdateRejectsUnalignedOrDegraded) {
  const size_t chunk = 128;
  const FileId id = fs.write(make_file(chunk));
  EXPECT_THROW(fs.update_range(id, 1, Buffer(chunk)), CheckError);
  EXPECT_THROW(fs.update_range(id, 0, Buffer(chunk - 1)), CheckError);
  fs.fail_server(3);
  EXPECT_THROW(fs.update_range(id, 0, Buffer(chunk)), CheckError);
}

// ---------- scrubbing ----------

TEST_F(FileStoreTest, ScrubFindsNothingWhenClean) {
  fs.write(make_file());
  EXPECT_TRUE(fs.scrub().empty());
}

TEST_F(FileStoreTest, ScrubDetectsAndQuarantinesCorruption) {
  const Buffer file = make_file();
  const FileId id = fs.write(file);
  fs.corrupt_block(id, 3, 17);
  const auto corrupt = fs.scrub();
  ASSERT_EQ(corrupt.size(), 1u);
  EXPECT_EQ(corrupt[0].file, id);
  EXPECT_EQ(corrupt[0].block, 3u);
  EXPECT_FALSE(fs.block_available(id, 3)) << "quarantined";
  // Repair restores the block bit-exactly and a re-scrub is clean.
  ASSERT_TRUE(fs.repair(id, 3).has_value());
  EXPECT_TRUE(fs.scrub().empty());
  EXPECT_EQ(*fs.read_original_only(id), file);
}

TEST_F(FileStoreTest, ScrubWithoutQuarantineLeavesBlock) {
  const FileId id = fs.write(make_file());
  fs.corrupt_block(id, 0, 0);
  const auto corrupt = fs.scrub(/*quarantine=*/false);
  ASSERT_EQ(corrupt.size(), 1u);
  EXPECT_TRUE(fs.block_available(id, 0));
}

TEST_F(FileStoreTest, CorruptionInParityAlsoCaught) {
  const FileId id = fs.write(make_file());
  // Byte beyond the data region of the global parity block (weight 4/7 →
  // bottom 3/7 of block 6 is parity).
  fs.corrupt_block(id, 6, fs.block_bytes(id) - 1);
  const auto corrupt = fs.scrub();
  ASSERT_EQ(corrupt.size(), 1u);
  EXPECT_EQ(corrupt[0].block, 6u);
}

TEST_F(FileStoreTest, CorruptingLostBlockThrows) {
  const FileId id = fs.write(make_file());
  fs.fail_server(1);
  EXPECT_THROW(fs.corrupt_block(id, 1, 0), CheckError);
}

// ---------- RecoveryManager ----------

TEST(Recovery, RebuildsEverythingBitExact) {
  sim::Simulation simulation;
  sim::Cluster cluster(simulation, 8, sim::ServerSpec{});
  core::GalloperCode code(4, 2, 1);
  FileStore fs(cluster, code);
  Rng rng(7);
  std::vector<Buffer> files;
  std::vector<FileId> ids;
  for (int i = 0; i < 3; ++i) {
    files.push_back(random_buffer(code.engine().num_chunks() * 64, rng));
    ids.push_back(fs.write(files.back()));
  }
  fs.fail_server(1);
  fs.fail_server(4);
  fs.revive_server(1);
  fs.revive_server(4);

  RecoveryManager mgr(simulation, fs);
  const auto report = mgr.recover_all();
  EXPECT_EQ(report.blocks_repaired, 6u);  // 2 blocks × 3 files
  EXPECT_EQ(report.blocks_unrecoverable, 0u);
  EXPECT_GT(report.makespan, 0.0);
  for (size_t i = 0; i < ids.size(); ++i) {
    for (size_t b = 0; b < code.num_blocks(); ++b)
      EXPECT_TRUE(fs.block_available(ids[i], b));
    EXPECT_EQ(*fs.read_original_only(ids[i]), files[i]);
  }
}

TEST(Recovery, LrcReadsFewerBytesThanRsAndFinishesFaster) {
  Rng rng(8);
  // One file size that both codes accept (28 = lcm of 4 and 28 chunks), so
  // blocks are equally large and byte counts are comparable.
  auto run = [&](const codes::ErasureCode& code) {
    sim::Simulation simulation;
    sim::Cluster cluster(simulation, code.num_blocks(), sim::ServerSpec{});
    FileStore fs(cluster, code);
    Buffer file(28 * 512);
    rng.fill_bytes(file);
    for (int i = 0; i < 4; ++i) fs.write(file);
    fs.fail_server(0);
    fs.revive_server(0);
    RecoveryManager mgr(simulation, fs);
    return mgr.recover_all();
  };
  codes::ReedSolomonCode rs(4, 2);
  core::GalloperCode gal(4, 2, 1);
  const auto r_rs = run(rs);
  const auto r_gal = run(gal);
  EXPECT_EQ(r_rs.blocks_repaired, 4u);
  EXPECT_EQ(r_gal.blocks_repaired, 4u);
  EXPECT_LT(r_gal.disk_bytes_read, r_rs.disk_bytes_read);
  EXPECT_LT(r_gal.makespan, r_rs.makespan);
}

TEST(Recovery, ThrottlingStretchesMakespanOnly) {
  auto run = [](RecoveryConfig config) {
    sim::Simulation simulation;
    sim::Cluster cluster(simulation, 7, sim::ServerSpec{});
    core::GalloperCode code(4, 2, 1);
    FileStore fs(cluster, code);
    Rng rng(21);
    for (int i = 0; i < 4; ++i)
      fs.write(random_buffer(code.engine().num_chunks() * 256, rng));
    fs.fail_server(2);
    fs.revive_server(2);
    RecoveryManager mgr(simulation, fs, config);
    return mgr.recover_all();
  };
  const auto full = run({1.0, SIZE_MAX});
  const auto quarter = run({0.25, SIZE_MAX});
  EXPECT_EQ(full.blocks_repaired, quarter.blocks_repaired);
  EXPECT_EQ(full.disk_bytes_read, quarter.disk_bytes_read)
      << "throttling changes time, not bytes";
  EXPECT_GT(quarter.makespan, full.makespan * 2.0);
}

TEST(Recovery, WaveLimitSerializesRepairs) {
  auto run = [](size_t max_parallel) {
    sim::Simulation simulation;
    sim::Cluster cluster(simulation, 7, sim::ServerSpec{});
    core::GalloperCode code(4, 2, 1);
    FileStore fs(cluster, code);
    Rng rng(22);
    for (int i = 0; i < 6; ++i)
      fs.write(random_buffer(code.engine().num_chunks() * 512, rng));
    fs.fail_server(1);
    fs.revive_server(1);
    RecoveryManager mgr(simulation, fs, {1.0, max_parallel});
    return mgr.recover_all();
  };
  const auto serial = run(1);
  const auto parallel = run(SIZE_MAX);
  EXPECT_EQ(serial.blocks_repaired, parallel.blocks_repaired);
  EXPECT_GE(serial.makespan, parallel.makespan);
}

TEST(Recovery, RejectsBadConfig) {
  sim::Simulation simulation;
  sim::Cluster cluster(simulation, 7, sim::ServerSpec{});
  core::GalloperCode code(4, 2, 1);
  FileStore fs(cluster, code);
  EXPECT_THROW(RecoveryManager(simulation, fs, {0.0, 1}), CheckError);
  EXPECT_THROW(RecoveryManager(simulation, fs, {1.5, 1}), CheckError);
  EXPECT_THROW(RecoveryManager(simulation, fs, {1.0, 0}), CheckError);
}

// ---- Self-healing verified reads ------------------------------------------

TEST_F(FileStoreTest, ReadRangeReturnsCorrectBytesDespiteByteFlip) {
  const Buffer file = make_file();
  const FileId id = fs.write(file);
  fs.corrupt_block(id, 1, 5);

  // The corrupted read: CRC catches the flip, the decode goes degraded,
  // the returned bytes are still bit-identical, and the block self-heals.
  const auto got = fs.read_range(id, 0, fs.file_bytes(id));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, file);
  EXPECT_EQ(fs.read_stats().verified_reads, 1u);
  EXPECT_EQ(fs.read_stats().crc_failures, 1u);
  EXPECT_EQ(fs.read_stats().degraded_reads, 1u);
  EXPECT_EQ(fs.read_stats().auto_repairs, 1u);

  // The next read is clean: same bytes, no new CRC failures.
  const auto again = fs.read_range(id, 0, fs.file_bytes(id));
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(*again, file);
  EXPECT_EQ(fs.read_stats().verified_reads, 2u);
  EXPECT_EQ(fs.read_stats().crc_failures, 1u);
  EXPECT_EQ(fs.read_stats().degraded_reads, 1u);
  EXPECT_TRUE(fs.scrub(/*quarantine=*/false).empty());
}

TEST_F(FileStoreTest, ReadRangeSubrangesSurviveCorruption) {
  const size_t chunk = 96;
  const Buffer file = make_file(chunk);
  const FileId id = fs.write(file);
  Rng offsets(7);
  for (size_t i = 0; i < 8; ++i) {
    fs.corrupt_block(id, i % code.num_blocks(),
                     offsets.next_below(fs.block_bytes(id)));
    const size_t off = offsets.next_below(file.size());
    const size_t len = 1 + offsets.next_below(file.size() - off);
    const auto got = fs.read_range(id, off, len);
    ASSERT_TRUE(got.has_value()) << "iteration " << i;
    EXPECT_TRUE(std::equal(got->begin(), got->end(),
                           file.begin() + static_cast<ptrdiff_t>(off)))
        << "iteration " << i;
  }
}

TEST_F(FileStoreTest, ScrubAndRepairHealsMultipleCorruptions) {
  const Buffer file = make_file();
  const FileId id = fs.write(file);
  fs.corrupt_block(id, 0, 1);
  fs.corrupt_block(id, 5, 2);
  const auto report = fs.scrub_and_repair();
  EXPECT_EQ(report.corrupt.size(), 2u);
  EXPECT_EQ(report.repaired, 2u);
  EXPECT_EQ(report.unrecoverable, 0u);
  EXPECT_EQ(*fs.read(id), file);
  EXPECT_TRUE(fs.scrub(/*quarantine=*/false).empty());
}

TEST_F(FileStoreTest, UpdateRefusesSilentlyCorruptStripe) {
  const Buffer file = make_file();
  const FileId id = fs.write(file);
  fs.corrupt_block(id, 2, 9);

  // Patching a stripe whose block is silently rotten would launder the
  // corruption into fresh parity + a fresh checksum. The update must
  // refuse AND quarantine the bad block instead of trusting it.
  const size_t chunk = fs.block_bytes(id) / code.engine().stripes_per_block();
  const Buffer patch(chunk, 0x5A);
  EXPECT_THROW(fs.update_range(id, 0, patch), CheckError);
  EXPECT_EQ(fs.lost_blocks(id), std::vector<size_t>{2});

  // Repair, then the same update goes through and reads verify.
  ASSERT_TRUE(fs.repair(id, 2).has_value());
  Buffer want = file;
  std::copy(patch.begin(), patch.end(), want.begin());
  fs.update_range(id, 0, patch);
  const auto got = fs.read_range(id, 0, fs.file_bytes(id));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, want);
}

TEST_F(FileStoreTest, RepairNeverLaundersACorruptHelper) {
  const Buffer file = make_file();
  const FileId id = fs.write(file);

  // Lose block 0, then rot one of its local helpers. The repair must CRC
  // its helpers, quarantine the rotten one, reselect, and still rebuild
  // block 0 bit-exact — never feed corrupt bytes into the rebuild.
  fs.fail_server(0);
  fs.revive_server(0);
  const auto helpers = code.repair_helpers(0);
  ASSERT_FALSE(helpers.empty());
  fs.corrupt_block(id, helpers[0], 3);

  ASSERT_TRUE(fs.repair(id, 0).has_value());
  EXPECT_GE(fs.read_stats().crc_failures, 1u);
  // The rotten helper is quarantined, not trusted; heal it and verify
  // everything round-trips.
  EXPECT_EQ(fs.lost_blocks(id), std::vector<size_t>{helpers[0]});
  ASSERT_TRUE(fs.repair(id, helpers[0]).has_value());
  EXPECT_EQ(*fs.read(id), file);
  EXPECT_TRUE(fs.scrub(/*quarantine=*/false).empty());
}

TEST(Recovery, ReportsUnrecoverableBlocks) {
  sim::Simulation simulation;
  sim::Cluster cluster(simulation, 7, sim::ServerSpec{});
  core::GalloperCode code(4, 2, 1);
  FileStore fs(cluster, code);
  Rng rng(9);
  fs.write(random_buffer(code.engine().num_chunks() * 16, rng));
  for (size_t s : {0u, 1u, 6u}) fs.fail_server(s);
  for (size_t s : {0u, 1u, 6u}) fs.revive_server(s);
  RecoveryManager mgr(simulation, fs);
  const auto report = mgr.recover_all();
  EXPECT_EQ(report.blocks_repaired, 0u);
  EXPECT_EQ(report.blocks_unrecoverable, 3u);
}

}  // namespace
}  // namespace galloper::store
