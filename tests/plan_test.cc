// Plan layer tests: the sharded LRU PlanCache, cached-vs-fresh bit-identity
// on every data path, per-row solvability (decode_fast vs read_range), plan
// pinning, and a concurrent mixed-pattern stress (registered under the TSan
// matrix with a 2-worker pool).
#include <gtest/gtest.h>

#include <map>
#include <thread>
#include <vector>

#include "codes/engine.h"
#include "codes/plan.h"
#include "codes/reed_solomon.h"
#include "core/galloper.h"
#include "util/check.h"
#include "util/rng.h"

namespace galloper::codes {
namespace {

using galloper::Buffer;
using galloper::CheckError;
using galloper::ConstByteSpan;
using galloper::Rng;
using galloper::random_buffer;

// Every test here toggles the global cache; restore the default so suites
// that run after plan_test in the same binary see a fresh, enabled cache.
class PlanTest : public ::testing::Test {
 protected:
  void SetUp() override { PlanCache::global().reset(1024); }
  void TearDown() override { PlanCache::global().reset(1024); }
};

std::map<size_t, ConstByteSpan> view_of(const std::vector<Buffer>& blocks,
                                        const std::vector<size_t>& ids) {
  std::map<size_t, ConstByteSpan> view;
  for (size_t b : ids) view.emplace(b, blocks[b]);
  return view;
}

PlanKey key(uint64_t engine, uint64_t pattern) {
  PlanKey k;
  k.engine_id = engine;
  k.op = PlanOp::kDecode;
  k.available = {pattern};
  return k;
}

TEST(PlanCacheUnit, GetPutAndHitMissCounters) {
  PlanCache cache(8, /*shards=*/1);
  EXPECT_TRUE(cache.enabled());
  EXPECT_EQ(cache.get(key(1, 1)), nullptr);
  auto plan = std::make_shared<CodecPlan>();
  cache.put(key(1, 1), plan);
  EXPECT_EQ(cache.get(key(1, 1)), plan);
  EXPECT_EQ(cache.get(key(2, 1)), nullptr);  // other engine, same pattern
  const PlanCacheStats st = cache.stats();
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.misses, 2u);
  EXPECT_EQ(st.entries, 1u);
  EXPECT_EQ(st.evictions, 0u);
}

TEST(PlanCacheUnit, LruEvictsOldestAndGetPromotes) {
  PlanCache cache(3, /*shards=*/1);
  std::vector<std::shared_ptr<CodecPlan>> plans;
  for (uint64_t i = 0; i < 3; ++i) {
    plans.push_back(std::make_shared<CodecPlan>());
    cache.put(key(1, i), plans.back());
  }
  // Touch pattern 0, making pattern 1 the LRU entry.
  EXPECT_NE(cache.get(key(1, 0)), nullptr);
  cache.put(key(1, 3), std::make_shared<CodecPlan>());
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.get(key(1, 1)), nullptr);  // evicted
  EXPECT_NE(cache.get(key(1, 0)), nullptr);  // promoted, survived
  EXPECT_NE(cache.get(key(1, 2)), nullptr);
  EXPECT_NE(cache.get(key(1, 3)), nullptr);
  // An evicted plan stays valid for holders of the shared_ptr.
  EXPECT_EQ(plans[1].use_count(), 1);
}

TEST(PlanCacheUnit, DisabledCacheStoresNothing) {
  PlanCache cache(0);
  EXPECT_FALSE(cache.enabled());
  cache.put(key(1, 1), std::make_shared<CodecPlan>());
  EXPECT_EQ(cache.get(key(1, 1)), nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(PlanCacheUnit, ResetClearsEntriesAndResizes) {
  PlanCache cache(8, /*shards=*/1);
  cache.put(key(1, 1), std::make_shared<CodecPlan>());
  cache.reset(0);
  EXPECT_FALSE(cache.enabled());
  EXPECT_EQ(cache.stats().entries, 0u);
  cache.reset(8);
  EXPECT_TRUE(cache.enabled());
  EXPECT_EQ(cache.get(key(1, 1)), nullptr);  // reset dropped the entry
}

// Cached-vs-fresh bit-identity across all six data paths: run each path
// once with the global cache disabled (every call plans from scratch — the
// pre-plan-cache behavior) and twice with it enabled (miss, then hit), and
// demand identical bytes.
TEST_F(PlanTest, CachedMatchesFreshOnAllPaths) {
  core::GalloperCode code(4, 2, 1);
  const CodecEngine& e = code.engine();
  Rng rng(7);
  const size_t chunk = 512;
  const Buffer file = random_buffer(e.num_chunks() * chunk, rng);
  const auto blocks = e.encode(file);

  std::vector<size_t> some;  // a decodable proper subset: drop one block
  for (size_t b = 1; b < e.num_blocks(); ++b) some.push_back(b);
  ASSERT_TRUE(e.decodable(some));
  const auto view = view_of(blocks, some);

  PlanCache::global().reset(0);  // fresh planning on every call
  const auto fresh_decode = e.decode(view);
  const auto fresh_fast = e.decode_fast(view);
  const auto fresh_repair = e.repair_block(0, view);
  const auto fresh_range = e.read_range(view, chunk / 2, 3 * chunk);
  ASSERT_TRUE(fresh_decode && fresh_fast && fresh_repair && fresh_range);

  PlanCache::global().reset(1024);
  for (int round = 0; round < 2; ++round) {  // miss round, then hit round
    EXPECT_EQ(*e.decode(view), *fresh_decode);
    EXPECT_EQ(*e.decode_fast(view), *fresh_fast);
    EXPECT_EQ(*e.repair_block(0, view), *fresh_repair);
    EXPECT_EQ(*e.read_range(view, chunk / 2, 3 * chunk), *fresh_range);
  }
  const PlanCacheStats st = PlanCache::global().stats();
  EXPECT_GE(st.hits, 4u);  // the second round was all hits

  // Encode and update don't use the pattern cache (their schedules compile
  // at engine construction); verify them against an independent engine of
  // the same code, whose plans were compiled separately.
  core::GalloperCode twin(4, 2, 1);
  EXPECT_EQ(twin.engine().encode(file), blocks);
  auto a = e.encode(file);
  auto b = twin.engine().encode(file);
  const Buffer delta = random_buffer(chunk, rng);
  EXPECT_EQ(e.update_chunk(a, 3, delta), twin.engine().update_chunk(b, 3, delta));
  EXPECT_EQ(a, b);
}

TEST_F(PlanTest, RepeatedLookupReturnsTheSamePlanObject) {
  codes::ReedSolomonCode rs(4, 2);
  const CodecEngine& e = rs.engine();
  const std::vector<size_t> ids{0, 2, 3, 5};
  const auto p1 = e.plan_decode_fast(ids);
  const auto p2 = e.plan_decode_fast(ids);
  EXPECT_EQ(p1.get(), p2.get());  // cache hit: same object, not a recompile
  // Different pattern → different plan.
  EXPECT_NE(e.plan_decode_fast({0, 1, 2, 3}).get(), p1.get());
  // decode and decode_fast are different ops — distinct cache lines.
  EXPECT_NE(e.plan_decode(ids).get(), p1.get());
}

TEST_F(PlanTest, TwinEnginesShareCachedPlans) {
  // Copies carry the same engine_id (same immutable generator), so a plan
  // compiled through one copy is a cache hit for the other.
  codes::ReedSolomonCode rs(4, 2);
  const CodecEngine& e = rs.engine();
  const CodecEngine copy = e;  // NOLINT(performance-unnecessary-copy)
  const auto p1 = e.plan_repair(1, {0, 2, 3, 4});
  const auto p2 = copy.plan_repair(1, {0, 2, 3, 4});
  EXPECT_EQ(p1.get(), p2.get());
  // Independent constructions get distinct ids → no cross-engine sharing.
  codes::ReedSolomonCode other(4, 2);
  EXPECT_NE(other.engine().plan_repair(1, {0, 2, 3, 4}).get(), p1.get());
}

TEST_F(PlanTest, UnsolvablePatternsAreCachedToo) {
  codes::ReedSolomonCode rs(4, 2);
  const CodecEngine& e = rs.engine();
  Rng rng(11);
  const Buffer file = random_buffer(e.num_chunks() * 64, rng);
  const auto blocks = e.encode(file);
  const auto view = view_of(blocks, {0, 1, 2});  // 3 of 6: undecodable
  EXPECT_FALSE(e.decode(view).has_value());
  const uint64_t hits_before = PlanCache::global().stats().hits;
  EXPECT_FALSE(e.decode(view).has_value());  // negative result from cache
  EXPECT_GT(PlanCache::global().stats().hits, hits_before);
}

// decode_fast and read_range share one plan, but solvability is per ROW:
// with only data blocks {0, 1} of an RS(4, 2) code, whole-file paths fail
// while a range confined to the chunks those blocks hold still reads.
TEST_F(PlanTest, PerRowSolvabilityServesPartialReads) {
  codes::ReedSolomonCode rs(4, 2);
  const CodecEngine& e = rs.engine();
  Rng rng(23);
  const size_t chunk = 256;
  const Buffer file = random_buffer(e.num_chunks() * chunk, rng);
  const auto blocks = e.encode(file);
  const auto view = view_of(blocks, {0, 1});

  EXPECT_FALSE(e.decode_fast(view).has_value());
  EXPECT_FALSE(e.decode(view).has_value());

  for (size_t c = 0; c < e.num_chunks(); ++c) {
    const bool held = e.chunk_positions()[c].block <= 1;
    const auto got = e.read_range(view, c * chunk, chunk);
    ASSERT_EQ(got.has_value(), held) << "chunk " << c;
    if (held)
      EXPECT_EQ(*got, Buffer(file.begin() + c * chunk,
                             file.begin() + (c + 1) * chunk));
  }
}

TEST_F(PlanTest, PinnedRepairPlanSurvivesCacheDisableAndEviction) {
  codes::ReedSolomonCode rs(4, 2);
  const CodecEngine& e = rs.engine();
  Rng rng(31);
  const Buffer file = random_buffer(e.num_chunks() * 128, rng);
  const auto blocks = e.encode(file);
  const std::vector<size_t> helpers{1, 2, 3, 4};
  const auto view = view_of(blocks, helpers);
  const auto expected = e.repair_block(0, view);
  ASSERT_TRUE(expected.has_value());

  const auto plan = e.plan_repair(0, helpers);
  PlanCache::global().reset(0);  // pinned plans don't care about the cache
  for (size_t threads : {size_t{1}, size_t{3}}) {
    const auto got = e.repair_block_with_plan(*plan, view, threads);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, *expected);
  }
}

TEST_F(PlanTest, EvictionChurnKeepsResultsCorrect) {
  codes::ReedSolomonCode rs(4, 2);
  const CodecEngine& e = rs.engine();
  Rng rng(43);
  const Buffer file = random_buffer(e.num_chunks() * 64, rng);
  const auto blocks = e.encode(file);
  PlanCache::global().reset(2);  // tiny: every pattern change evicts
  for (int round = 0; round < 3; ++round) {
    for (size_t drop = 0; drop < e.num_blocks(); ++drop) {
      std::vector<size_t> ids;
      for (size_t b = 0; b < e.num_blocks(); ++b)
        if (b != drop) ids.push_back(b);
      EXPECT_EQ(*e.decode_fast(view_of(blocks, ids)), file);
    }
  }
  EXPECT_GT(PlanCache::global().stats().evictions, 0u);
}

// Mixed-pattern stress: threads hammer decode_fast and repair through a
// deliberately tiny shared cache (hits, misses, and evictions all racing)
// and every result must stay bit-exact. Registered in the *_tsan2 ctest
// matrix so the shard locking and counter atomics run under TSan.
TEST_F(PlanTest, ConcurrentMixedPatternStress) {
  codes::ReedSolomonCode rs(4, 2);
  const CodecEngine& e = rs.engine();
  Rng rng(57);
  const size_t chunk = 128;
  const Buffer file = random_buffer(e.num_chunks() * chunk, rng);
  const auto blocks = e.encode(file);

  // All 4-of-6 patterns are decodable for RS(4, 2).
  std::vector<std::vector<size_t>> patterns;
  for (size_t i = 0; i < e.num_blocks(); ++i)
    for (size_t j = i + 1; j < e.num_blocks(); ++j) {
      std::vector<size_t> ids;
      for (size_t b = 0; b < e.num_blocks(); ++b)
        if (b != i && b != j) ids.push_back(b);
      patterns.push_back(std::move(ids));
    }
  // Baselines computed up front, single-threaded.
  std::vector<Buffer> repaired0(patterns.size());
  for (size_t p = 0; p < patterns.size(); ++p)
    if (patterns[p][0] != 0)
      repaired0[p] = *e.repair_block(0, view_of(blocks, patterns[p]));

  PlanCache::global().reset(4);  // far fewer slots than live patterns
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  for (size_t t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      for (size_t i = 0; i < 40; ++i) {
        const size_t p = (t * 13 + i * 7) % patterns.size();
        const auto view = view_of(blocks, patterns[p]);
        if (i % 2 == 0) {
          const auto got = e.decode_fast(view);
          if (!got || *got != file) ++failures;
        } else if (patterns[p][0] != 0) {
          const auto got = e.repair_block(0, view);
          if (!got || *got != repaired0[p]) ++failures;
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0);
  const PlanCacheStats st = PlanCache::global().stats();
  EXPECT_GT(st.hits + st.misses, 0u);
  EXPECT_LE(st.entries, 8u);  // ceil-divided per-shard caps
}

TEST_F(PlanTest, PlanOpCountersAccumulate) {
  reset_plan_op_stats();
  codes::ReedSolomonCode rs(4, 2);
  const CodecEngine& e = rs.engine();
  Rng rng(61);
  const Buffer file = random_buffer(e.num_chunks() * 64, rng);
  const auto blocks = e.encode(file);
  const auto st_enc = plan_op_stats(PlanOp::kEncode);
  EXPECT_GE(st_enc.plans, 1u);  // engine construction compiled the plan
  EXPECT_GE(st_enc.execs, 1u);

  std::vector<size_t> all(e.num_blocks());
  for (size_t b = 0; b < all.size(); ++b) all[b] = b;
  ASSERT_TRUE(e.decode_fast(view_of(blocks, all)).has_value());
  ASSERT_TRUE(e.decode_fast(view_of(blocks, all)).has_value());
  const auto st = plan_op_stats(PlanOp::kDecodeFast);
  EXPECT_EQ(st.plans, 1u);  // second call hit the cache
  EXPECT_EQ(st.execs, 2u);
}

TEST_F(PlanTest, PlanRepairRejectsFailedAsHelper) {
  codes::ReedSolomonCode rs(4, 2);
  EXPECT_THROW(rs.engine().plan_repair(0, {0, 1, 2, 3}), CheckError);
}

}  // namespace
}  // namespace galloper::codes
