// Tests for the in-place update (delta parity maintenance) and partial
// range-read data paths of CodecEngine.
#include <gtest/gtest.h>

#include "codes/pyramid.h"
#include "codes/reed_solomon.h"
#include "core/galloper.h"
#include "util/check.h"
#include "util/rng.h"

namespace galloper::codes {
namespace {

using core::GalloperCode;
using galloper::Buffer;
using galloper::CheckError;
using galloper::ConstByteSpan;
using galloper::Rng;
using galloper::random_buffer;

std::map<size_t, ConstByteSpan> view(const std::vector<Buffer>& blocks,
                                     const std::vector<size_t>& ids) {
  std::map<size_t, ConstByteSpan> m;
  for (size_t id : ids) m.emplace(id, blocks[id]);
  return m;
}

std::vector<size_t> all_ids(size_t n) {
  std::vector<size_t> ids(n);
  for (size_t i = 0; i < n; ++i) ids[i] = i;
  return ids;
}

// ---------- update_chunk ----------

class UpdateTest : public ::testing::Test {
 protected:
  GalloperCode code{4, 2, 1};
  static constexpr size_t kChunk = 64;
  Rng rng{31};
  Buffer file = random_buffer(code.engine().num_chunks() * kChunk, rng);
  std::vector<Buffer> blocks = code.encode(file);
};

TEST_F(UpdateTest, UpdatedStateEqualsFreshEncode) {
  // Update several chunks and compare against re-encoding from scratch.
  for (size_t chunk : {0u, 5u, 13u, 27u}) {
    const Buffer new_data = random_buffer(kChunk, rng);
    std::copy(new_data.begin(), new_data.end(),
              file.begin() + static_cast<ptrdiff_t>(chunk * kChunk));
    const auto touched = code.engine().update_chunk(blocks, chunk, new_data);
    EXPECT_FALSE(touched.empty());
  }
  EXPECT_EQ(blocks, code.encode(file)) << "delta updates must be exact";
}

TEST_F(UpdateTest, NoopUpdateTouchesNothing) {
  const Buffer same(file.begin(), file.begin() + kChunk);  // chunk 0 as-is
  const auto touched = code.engine().update_chunk(blocks, 0, same);
  EXPECT_TRUE(touched.empty());
  EXPECT_EQ(blocks, code.encode(file));
}

TEST_F(UpdateTest, TouchedSetIsHomeBlockPlusParityConsumers) {
  const Buffer new_data = random_buffer(kChunk, rng);
  const auto touched = code.engine().update_chunk(blocks, 0, new_data);
  // Home block of chunk 0 is block 0 (data at top).
  EXPECT_NE(std::find(touched.begin(), touched.end(), 0u), touched.end());
  // Update I/O is bounded by the number of blocks (each whole block at
  // most once).
  EXPECT_LE(touched.size(), code.num_blocks());
  // Decodability intact after the patch.
  const auto decoded = code.decode(view(blocks, {1, 2, 3, 4, 5, 6}));
  ASSERT_TRUE(decoded.has_value());
}

TEST_F(UpdateTest, UpdateCostSmallerForLrcThanRs) {
  // With Reed-Solomon every parity block consumes every chunk; with the
  // Galloper/Pyramid structure a chunk's local group parity + globals
  // consume it but the OTHER group's local parity does not.
  ReedSolomonCode rs(4, 2);
  Rng r2(32);
  Buffer f2 = random_buffer(4 * kChunk, r2);
  auto b2 = rs.encode(f2);
  const auto rs_touched =
      rs.engine().update_chunk(b2, 0, random_buffer(kChunk, r2));
  EXPECT_EQ(rs_touched.size(), 3u);  // home + 2 parity blocks

  const auto gal_touched =
      code.engine().update_chunk(blocks, 0, random_buffer(kChunk, rng));
  EXPECT_LT(gal_touched.size(), code.num_blocks())
      << "at least one block must be untouched by a single-chunk update";
}

TEST_F(UpdateTest, RejectsBadArguments) {
  Buffer wrong(kChunk - 1);
  EXPECT_THROW(code.engine().update_chunk(blocks, 0, wrong), CheckError);
  EXPECT_THROW(code.engine().update_chunk(blocks, 9999, Buffer(kChunk)),
               CheckError);
  std::vector<Buffer> few(blocks.begin(), blocks.end() - 1);
  EXPECT_THROW(code.engine().update_chunk(few, 0, Buffer(kChunk)),
               CheckError);
}

// ---------- read_range ----------

class ReadRangeTest : public ::testing::Test {
 protected:
  GalloperCode code{4, 2, 1};
  static constexpr size_t kChunk = 32;
  Rng rng{33};
  Buffer file = random_buffer(code.engine().num_chunks() * kChunk, rng);
  std::vector<Buffer> blocks = code.encode(file);

  Buffer expect_range(size_t off, size_t len) const {
    return Buffer(file.begin() + static_cast<ptrdiff_t>(off),
                  file.begin() + static_cast<ptrdiff_t>(off + len));
  }
};

TEST_F(ReadRangeTest, WholeFileEqualsFile) {
  const auto out = code.engine().read_range(
      view(blocks, all_ids(7)), 0, file.size());
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, file);
}

TEST_F(ReadRangeTest, UnalignedRangesFromHealthyBlocks) {
  for (auto [off, len] : std::vector<std::pair<size_t, size_t>>{
           {0, 1}, {5, 60}, {31, 2}, {100, 333}, {file.size() - 7, 7}}) {
    const auto out =
        code.engine().read_range(view(blocks, all_ids(7)), off, len);
    ASSERT_TRUE(out.has_value()) << off << "+" << len;
    EXPECT_EQ(*out, expect_range(off, len));
  }
}

TEST_F(ReadRangeTest, DegradedRangeReconstructsMissingChunks) {
  // Remove block 0 (holds chunks 0..3): ranges crossing it still read.
  const std::vector<size_t> survivors{1, 2, 3, 4, 5, 6};
  const auto out = code.engine().read_range(view(blocks, survivors), 0,
                                            6 * kChunk);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, expect_range(0, 6 * kChunk));
}

TEST_F(ReadRangeTest, DegradedUnalignedSliver) {
  const std::vector<size_t> survivors{1, 2, 3, 4, 5, 6};
  const auto out =
      code.engine().read_range(view(blocks, survivors), kChunk + 3, 10);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, expect_range(kChunk + 3, 10));
}

TEST_F(ReadRangeTest, UnrecoverableRangeIsNullopt) {
  // Lose blocks 0, 1 and 6: chunks of group 0 become unrecoverable.
  const std::vector<size_t> survivors{2, 3, 4, 5};
  EXPECT_FALSE(code.engine()
                   .read_range(view(blocks, survivors), 0, kChunk)
                   .has_value());
  // But ranges entirely inside group 1's chunks still work.
  const auto group1 = code.engine().chunks_of_block(2)[0];  // a chunk id
  const auto out = code.engine().read_range(view(blocks, survivors),
                                            group1 * kChunk, kChunk);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, expect_range(group1 * kChunk, kChunk));
}

TEST_F(ReadRangeTest, ZeroLengthAndBoundsChecks) {
  const auto out = code.engine().read_range(view(blocks, all_ids(7)), 50, 0);
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(out->empty());
  EXPECT_THROW(code.engine().read_range(view(blocks, all_ids(7)),
                                        file.size(), 1),
               CheckError);
}

TEST(ReadRangePyramid, WorksOnUnstripedCodes) {
  PyramidCode code(4, 2, 1);
  Rng rng(34);
  const Buffer file = random_buffer(4 * 128, rng);
  const auto blocks = code.encode(file);
  std::map<size_t, ConstByteSpan> survivors;
  for (size_t b = 1; b < 7; ++b) survivors.emplace(b, blocks[b]);
  const auto out = code.engine().read_range(survivors, 64, 256);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, Buffer(file.begin() + 64, file.begin() + 64 + 256));
}

}  // namespace
}  // namespace galloper::codes
