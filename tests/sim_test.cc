#include <gtest/gtest.h>

#include "codes/pyramid.h"
#include "codes/reed_solomon.h"
#include "core/galloper.h"
#include "sim/cluster.h"
#include "sim/des.h"
#include "sim/storage.h"
#include "util/check.h"

namespace galloper::sim {
namespace {

using galloper::CheckError;

// ---------- DES kernel ----------

TEST(Des, EventsRunInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Des, TiesRunInInsertionOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    sim.schedule_at(1.0, [&order, i] { order.push_back(i); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Des, EventsCanScheduleMoreEvents) {
  Simulation sim;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 10) sim.schedule_after(1.0, chain);
  };
  sim.schedule_at(0.0, chain);
  sim.run();
  EXPECT_EQ(fired, 10);
  EXPECT_DOUBLE_EQ(sim.now(), 9.0);
}

TEST(Des, SchedulingInThePastThrows) {
  Simulation sim;
  sim.schedule_at(5.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(1.0, [] {}), CheckError);
  EXPECT_THROW(sim.schedule_after(-1.0, [] {}), CheckError);
}

TEST(Des, RunUntilStopsAtBoundary) {
  Simulation sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(5.0, [&] { ++fired; });
  sim.run_until(3.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
  sim.run();
  EXPECT_EQ(fired, 2);
}

// ---------- Resource ----------

TEST(Resource, SingleJobTakesAmountOverRate) {
  Simulation sim;
  Resource disk(sim, "disk", 100.0);
  Time done_at = -1;
  disk.submit(250.0, [&] { done_at = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(done_at, 2.5);
}

TEST(Resource, FifoQueueing) {
  Simulation sim;
  Resource disk(sim, "disk", 100.0);
  std::vector<Time> finishes;
  disk.submit(100.0, [&] { finishes.push_back(sim.now()); });
  disk.submit(100.0, [&] { finishes.push_back(sim.now()); });
  disk.submit(50.0, [&] { finishes.push_back(sim.now()); });
  sim.run();
  EXPECT_EQ(finishes, (std::vector<Time>{1.0, 2.0, 2.5}));
}

TEST(Resource, TracksTotalUnits) {
  Simulation sim;
  Resource r(sim, "nic", 10.0);
  r.submit(30.0);
  r.submit(20.0);
  sim.run();
  EXPECT_DOUBLE_EQ(r.total_units(), 50.0);
}

TEST(Resource, RejectsNonPositiveRate) {
  Simulation sim;
  EXPECT_THROW(Resource(sim, "bad", 0.0), CheckError);
  EXPECT_THROW(Resource(sim, "bad", -1.0), CheckError);
}

TEST(Resource, UtilizationFraction) {
  Simulation sim;
  Resource r(sim, "cpu", 1.0);
  r.submit(2.0);
  sim.schedule_at(4.0, [] {});
  sim.run();
  EXPECT_DOUBLE_EQ(r.utilization(), 0.5);
}

// ---------- Cluster ----------

TEST(Cluster, HomogeneousConstruction) {
  Simulation sim;
  Cluster cluster(sim, 5, ServerSpec{});
  EXPECT_EQ(cluster.size(), 5u);
  EXPECT_EQ(cluster.alive_servers().size(), 5u);
}

TEST(Cluster, FailAndRecover) {
  Simulation sim;
  Cluster cluster(sim, 3, ServerSpec{});
  cluster.server(1).fail();
  EXPECT_EQ(cluster.alive_servers(), (std::vector<size_t>{0, 2}));
  cluster.server(1).recover();
  EXPECT_EQ(cluster.alive_servers().size(), 3u);
}

TEST(Cluster, ScaledCpuSpec) {
  const ServerSpec slow = ServerSpec{}.scaled_cpu(0.4);
  EXPECT_DOUBLE_EQ(slow.cpu, 0.4);
  EXPECT_DOUBLE_EQ(slow.disk_bw, ServerSpec{}.disk_bw);
}

// ---------- StorageSystem ----------

class StorageFixture : public ::testing::Test {
 protected:
  Simulation sim;
  Cluster cluster{sim, 8, ServerSpec{}};
};

TEST_F(StorageFixture, RsRepairReadsKBlocks) {
  codes::ReedSolomonCode rs(4, 2);
  StorageSystem storage(sim, cluster, rs, 45 << 20);
  const auto m = storage.simulate_repair(0, 7);
  EXPECT_EQ(m.helpers.size(), 4u);
  EXPECT_EQ(m.disk_bytes_read, 4u * (45 << 20));
  EXPECT_GT(m.completion_time, 0.0);
}

TEST_F(StorageFixture, PyramidLocalRepairReadsHalfTheBytes) {
  codes::ReedSolomonCode rs(4, 2);
  codes::PyramidCode pyr(4, 2, 1);
  StorageSystem srs(sim, cluster, rs, 45 << 20);
  Simulation sim2;
  Cluster cluster2(sim2, 8, ServerSpec{});
  StorageSystem spyr(sim2, cluster2, pyr, 45 << 20);
  const auto mrs = srs.simulate_repair(0, 7);
  const auto mpyr = spyr.simulate_repair(0, 7);
  EXPECT_EQ(mpyr.disk_bytes_read * 2, mrs.disk_bytes_read)
      << "Fig. 1: the LRC halves reconstruction disk I/O";
  EXPECT_LT(mpyr.completion_time, mrs.completion_time);
}

TEST_F(StorageFixture, GalloperRepairMatchesPyramidBytes) {
  codes::PyramidCode pyr(4, 2, 1);
  core::GalloperCode gal(4, 2, 1);
  const size_t bytes = 7 * (1 << 20);
  Simulation s1, s2;
  Cluster c1(s1, 8, ServerSpec{}), c2(s2, 8, ServerSpec{});
  StorageSystem sp(s1, c1, pyr, bytes), sg(s2, c2, gal, bytes);
  for (size_t b = 0; b < 7; ++b) {
    const auto mp = sp.simulate_repair(b, 7);
    const auto mg = sg.simulate_repair(b, 7);
    EXPECT_EQ(mp.disk_bytes_read, mg.disk_bytes_read) << "block " << b;
    EXPECT_EQ(mp.helpers, mg.helpers) << "block " << b;
  }
}

TEST_F(StorageFixture, DataAvailabilityTracksFailures) {
  codes::PyramidCode pyr(4, 2, 1);
  StorageSystem storage(sim, cluster, pyr, 1 << 20);
  EXPECT_TRUE(storage.data_available());
  storage.fail_block(0);
  EXPECT_TRUE(storage.data_available());
  storage.fail_block(1);
  EXPECT_TRUE(storage.data_available()) << "g+1 = 2 failures tolerated";
  // Both data blocks of group 0 plus the global parity: the paper's
  // Sec. III-B counterexample — unrecoverable.
  storage.fail_block(6);
  EXPECT_FALSE(storage.data_available());
  storage.recover_block(6);
  EXPECT_TRUE(storage.data_available());
}

TEST_F(StorageFixture, RepairWithDeadHelperThrows) {
  codes::PyramidCode pyr(4, 2, 1);
  StorageSystem storage(sim, cluster, pyr, 1 << 20);
  storage.fail_block(1);  // helper of block 0
  EXPECT_THROW(storage.simulate_repair(0, 7), CheckError);
}

TEST_F(StorageFixture, DegradedReadCostsMoreThanPlainRead) {
  codes::PyramidCode pyr(4, 2, 1);
  StorageSystem storage(sim, cluster, pyr, 8 << 20);
  const auto plain = storage.simulate_read(0);
  EXPECT_EQ(plain.disk_bytes_read, 8u << 20);
  storage.fail_block(0);
  const auto degraded = storage.simulate_read(0);
  EXPECT_EQ(degraded.disk_bytes_read, 2u * (8 << 20));
  EXPECT_GT(degraded.completion_time, plain.completion_time);
}

TEST_F(StorageFixture, InvalidHelperSetThrows) {
  codes::ReedSolomonCode rs(4, 2);
  StorageSystem storage(sim, cluster, rs, 1 << 20);
  EXPECT_THROW(storage.simulate_repair(0, 7, {1, 2, 3}), CheckError);
}

TEST(Storage, ClusterTooSmallThrows) {
  Simulation sim;
  Cluster cluster(sim, 3, ServerSpec{});
  codes::ReedSolomonCode rs(4, 2);
  EXPECT_THROW(StorageSystem(sim, cluster, rs, 1024), CheckError);
}

TEST(Storage, SlowerDiskSlowsRepair) {
  codes::ReedSolomonCode rs(4, 2);
  Simulation s1;
  Cluster fast(s1, 8, ServerSpec{});
  StorageSystem sys_fast(s1, fast, rs, 32 << 20);
  const auto m_fast = sys_fast.simulate_repair(0, 7);

  Simulation s2;
  ServerSpec slow_spec;
  slow_spec.disk_bw /= 4;
  Cluster slow(s2, 8, slow_spec);
  StorageSystem sys_slow(s2, slow, rs, 32 << 20);
  const auto m_slow = sys_slow.simulate_repair(0, 7);
  EXPECT_GT(m_slow.completion_time, m_fast.completion_time);
}

}  // namespace
}  // namespace galloper::sim
