#include <gtest/gtest.h>

#include "codes/engine.h"
#include "la/builders.h"
#include "util/check.h"
#include "util/rng.h"

namespace galloper::codes {
namespace {

using galloper::Buffer;
using galloper::CheckError;
using galloper::ConstByteSpan;
using galloper::Rng;
using galloper::random_buffer;

// A tiny hand-built engine: 2 data blocks + XOR parity, 1 stripe each.
CodecEngine xor_engine() {
  la::Matrix gen(3, 2, {1, 0, 0, 1, 1, 1});
  return CodecEngine(std::move(gen), 3, 1, {{0, 0}, {1, 0}});
}

TEST(Engine, ConstructionValidatesShapes) {
  // Row count mismatch.
  EXPECT_THROW(CodecEngine(la::Matrix(2, 2), 3, 1, {{0, 0}, {1, 0}}),
               CheckError);
  // Column count vs chunk count mismatch.
  EXPECT_THROW(CodecEngine(la::Matrix(3, 3), 3, 1, {{0, 0}, {1, 0}}),
               CheckError);
}

TEST(Engine, ConstructionRejectsNonSystematicChunkRow) {
  la::Matrix gen(3, 2, {1, 1,   // claims to hold chunk 0 but row is (1,1)
                        0, 1, 1, 1});
  EXPECT_THROW(CodecEngine(std::move(gen), 3, 1, {{0, 0}, {1, 0}}),
               CheckError);
}

TEST(Engine, ConstructionRejectsDuplicateChunkStripe) {
  la::Matrix gen(3, 2, {1, 0, 0, 1, 1, 1});
  EXPECT_THROW(CodecEngine(std::move(gen), 3, 1, {{0, 0}, {0, 0}}),
               CheckError);
}

TEST(Engine, XorCodeEncodesParityAsXor) {
  const CodecEngine e = xor_engine();
  Rng rng(1);
  const Buffer file = random_buffer(2 * 10, rng);
  const auto blocks = e.encode(file);
  ASSERT_EQ(blocks.size(), 3u);
  for (size_t i = 0; i < 10; ++i)
    EXPECT_EQ(blocks[2][i], blocks[0][i] ^ blocks[1][i]);
}

TEST(Engine, OneByteChunksWork) {
  const CodecEngine e = xor_engine();
  Rng rng(2);
  const Buffer file = random_buffer(2, rng);  // chunk size 1
  const auto blocks = e.encode(file);
  std::map<size_t, ConstByteSpan> view{{1, blocks[1]}, {2, blocks[2]}};
  const auto decoded = e.decode(view);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, file);
}

TEST(Engine, DecodeRejectsUnequalBlockSizes) {
  const CodecEngine e = xor_engine();
  Buffer a(4), b(6);
  std::map<size_t, ConstByteSpan> view{{0, a}, {1, b}};
  EXPECT_THROW(e.decode(view), CheckError);
}

TEST(Engine, DecodeEmptyMapFails) {
  const CodecEngine e = xor_engine();
  EXPECT_FALSE(e.decode({}).has_value());
}

TEST(Engine, RepairEmptyHelpersFails) {
  const CodecEngine e = xor_engine();
  EXPECT_FALSE(e.repair_block(0, {}).has_value());
}

TEST(Engine, OraclesOnXorCode) {
  const CodecEngine e = xor_engine();
  EXPECT_TRUE(e.decodable({0, 1}));
  EXPECT_TRUE(e.decodable({0, 2}));
  EXPECT_TRUE(e.decodable({1, 2}));
  EXPECT_FALSE(e.decodable({2}));
  EXPECT_TRUE(e.can_repair(0, {1, 2}));
  EXPECT_FALSE(e.can_repair(0, {1}));
  EXPECT_THROW(e.can_repair(9, {0}), CheckError);
}

TEST(Engine, ChunkBookkeeping) {
  const CodecEngine e = xor_engine();
  EXPECT_EQ(e.num_chunks(), 2u);
  EXPECT_EQ(e.data_stripes_in_block(0), 1u);
  EXPECT_EQ(e.data_stripes_in_block(2), 0u);
  EXPECT_EQ(e.chunks_of_block(0), (std::vector<size_t>{0}));
  EXPECT_EQ(e.chunks_of_block(2), (std::vector<size_t>{SIZE_MAX}));
  EXPECT_EQ(e.row_support(2, 0), 2u);
}

TEST(Engine, EncodeDecodeLinearity) {
  // decode(encode(x) ⊕ encode(y)) = x ⊕ y: the engine is a linear map.
  const CodecEngine e = xor_engine();
  Rng rng(3);
  const Buffer x = random_buffer(2 * 8, rng), y = random_buffer(2 * 8, rng);
  Buffer xy(x.size());
  for (size_t i = 0; i < x.size(); ++i) xy[i] = x[i] ^ y[i];
  const auto bx = e.encode(x), by = e.encode(y), bxy = e.encode(xy);
  for (size_t b = 0; b < 3; ++b)
    for (size_t i = 0; i < bx[b].size(); ++i)
      ASSERT_EQ(bxy[b][i], bx[b][i] ^ by[b][i]);
}

TEST(Engine, DecodeFastEquivalentOnXorCode) {
  const CodecEngine e = xor_engine();
  Rng rng(5);
  const Buffer file = random_buffer(2 * 16, rng);
  const auto blocks = e.encode(file);
  for (const auto& ids : std::vector<std::vector<size_t>>{
           {0, 1}, {0, 2}, {1, 2}, {0, 1, 2}, {0}, {2}}) {
    std::map<size_t, ConstByteSpan> view;
    for (size_t id : ids) view.emplace(id, blocks[id]);
    const auto slow = e.decode(view);
    const auto fast = e.decode_fast(view);
    ASSERT_EQ(slow.has_value(), fast.has_value());
    if (slow) {
      EXPECT_EQ(*slow, *fast);
    }
  }
  EXPECT_FALSE(e.decode_fast({}).has_value());
}

TEST(Engine, DecodeFastAllDataBlocksIsPureCopy) {
  const CodecEngine e = xor_engine();
  Rng rng(6);
  const Buffer file = random_buffer(2 * 16, rng);
  const auto blocks = e.encode(file);
  std::map<size_t, ConstByteSpan> view{{0, blocks[0]}, {1, blocks[1]}};
  const auto out = e.decode_fast(view);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, file);
}

class ParallelEncodeTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ParallelEncodeTest, MatchesSerialEncode) {
  const size_t threads = GetParam();
  const CodecEngine e = xor_engine();
  Rng rng(7);
  // Chunk sizes around the slice-split edge cases.
  for (size_t chunk : {1u, 2u, 7u, 1024u, 10000u}) {
    const Buffer file = random_buffer(2 * chunk, rng);
    ASSERT_EQ(e.encode_parallel(file, threads), e.encode(file))
        << "threads=" << threads << " chunk=" << chunk;
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ParallelEncodeTest,
                         ::testing::Values(1, 2, 3, 8));

TEST(Engine, ParallelEncodeValidatesArguments) {
  const CodecEngine e = xor_engine();
  EXPECT_THROW(e.encode_parallel(Buffer(16), 0), CheckError);
  EXPECT_THROW(e.encode_parallel(Buffer(3), 2), CheckError);  // not 2k
}

TEST(Engine, MultiStripeLayoutRoundTrip) {
  // 2 blocks × 2 stripes, chunks scattered: block0 holds chunks {0,2},
  // block1 pos0 holds chunk 1, block1 pos1 is parity = c0+c1+c2.
  la::Matrix gen(4, 3,
                 {1, 0, 0,   // (0,0) → chunk 0
                  0, 0, 1,   // (0,1) → chunk 2
                  0, 1, 0,   // (1,0) → chunk 1
                  1, 1, 1});  // (1,1) parity
  CodecEngine e(std::move(gen), 2, 2, {{0, 0}, {1, 0}, {0, 1}});
  Rng rng(4);
  const Buffer file = random_buffer(3 * 5, rng);
  const auto blocks = e.encode(file);
  ASSERT_EQ(blocks[0].size(), 10u);
  // Parity stripe value check.
  for (size_t i = 0; i < 5; ++i)
    EXPECT_EQ(blocks[1][5 + i],
              file[i] ^ file[5 + i] ^ file[10 + i]);
  // Chunks land where the layout says.
  EXPECT_EQ(Buffer(blocks[0].begin() + 5, blocks[0].end() - 0),
            Buffer(file.begin() + 10, file.end()));
}

}  // namespace
}  // namespace galloper::codes
